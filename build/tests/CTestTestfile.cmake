# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_mem[1]_include.cmake")
include("/root/repo/build/tests/test_vfs[1]_include.cmake")
include("/root/repo/build/tests/test_mm[1]_include.cmake")
include("/root/repo/build/tests/test_osk_ipc[1]_include.cmake")
include("/root/repo/build/tests/test_syscalls[1]_include.cmake")
include("/root/repo/build/tests/test_gpu[1]_include.cmake")
include("/root/repo/build/tests/test_slot[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_pipes[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_stdio[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
