file(REMOVE_RECURSE
  "CMakeFiles/test_slot.dir/test_slot.cc.o"
  "CMakeFiles/test_slot.dir/test_slot.cc.o.d"
  "test_slot"
  "test_slot.pdb"
  "test_slot[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_slot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
