# Empty dependencies file for test_slot.
# This may be replaced when dependencies are built.
