# Empty dependencies file for test_osk_ipc.
# This may be replaced when dependencies are built.
