file(REMOVE_RECURSE
  "CMakeFiles/test_osk_ipc.dir/test_osk_ipc.cc.o"
  "CMakeFiles/test_osk_ipc.dir/test_osk_ipc.cc.o.d"
  "test_osk_ipc"
  "test_osk_ipc.pdb"
  "test_osk_ipc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_osk_ipc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
