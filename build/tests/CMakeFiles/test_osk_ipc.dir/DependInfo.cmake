
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_osk_ipc.cc" "tests/CMakeFiles/test_osk_ipc.dir/test_osk_ipc.cc.o" "gcc" "tests/CMakeFiles/test_osk_ipc.dir/test_osk_ipc.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/genesys_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/genesys_core.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/genesys_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/osk/CMakeFiles/genesys_osk.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/genesys_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/genesys_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/genesys_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
