file(REMOVE_RECURSE
  "CMakeFiles/test_pipes.dir/test_pipes.cc.o"
  "CMakeFiles/test_pipes.dir/test_pipes.cc.o.d"
  "test_pipes"
  "test_pipes.pdb"
  "test_pipes[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pipes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
