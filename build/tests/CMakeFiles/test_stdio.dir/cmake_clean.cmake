file(REMOVE_RECURSE
  "CMakeFiles/test_stdio.dir/test_stdio.cc.o"
  "CMakeFiles/test_stdio.dir/test_stdio.cc.o.d"
  "test_stdio"
  "test_stdio.pdb"
  "test_stdio[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stdio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
