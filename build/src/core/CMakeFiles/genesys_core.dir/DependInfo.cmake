
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/client.cc" "src/core/CMakeFiles/genesys_core.dir/client.cc.o" "gcc" "src/core/CMakeFiles/genesys_core.dir/client.cc.o.d"
  "/root/repo/src/core/gpu_signals.cc" "src/core/CMakeFiles/genesys_core.dir/gpu_signals.cc.o" "gcc" "src/core/CMakeFiles/genesys_core.dir/gpu_signals.cc.o.d"
  "/root/repo/src/core/host.cc" "src/core/CMakeFiles/genesys_core.dir/host.cc.o" "gcc" "src/core/CMakeFiles/genesys_core.dir/host.cc.o.d"
  "/root/repo/src/core/slot.cc" "src/core/CMakeFiles/genesys_core.dir/slot.cc.o" "gcc" "src/core/CMakeFiles/genesys_core.dir/slot.cc.o.d"
  "/root/repo/src/core/stdio.cc" "src/core/CMakeFiles/genesys_core.dir/stdio.cc.o" "gcc" "src/core/CMakeFiles/genesys_core.dir/stdio.cc.o.d"
  "/root/repo/src/core/system.cc" "src/core/CMakeFiles/genesys_core.dir/system.cc.o" "gcc" "src/core/CMakeFiles/genesys_core.dir/system.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gpu/CMakeFiles/genesys_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/osk/CMakeFiles/genesys_osk.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/genesys_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/genesys_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/genesys_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
