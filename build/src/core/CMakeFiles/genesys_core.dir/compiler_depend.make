# Empty compiler generated dependencies file for genesys_core.
# This may be replaced when dependencies are built.
