file(REMOVE_RECURSE
  "CMakeFiles/genesys_core.dir/client.cc.o"
  "CMakeFiles/genesys_core.dir/client.cc.o.d"
  "CMakeFiles/genesys_core.dir/gpu_signals.cc.o"
  "CMakeFiles/genesys_core.dir/gpu_signals.cc.o.d"
  "CMakeFiles/genesys_core.dir/host.cc.o"
  "CMakeFiles/genesys_core.dir/host.cc.o.d"
  "CMakeFiles/genesys_core.dir/slot.cc.o"
  "CMakeFiles/genesys_core.dir/slot.cc.o.d"
  "CMakeFiles/genesys_core.dir/stdio.cc.o"
  "CMakeFiles/genesys_core.dir/stdio.cc.o.d"
  "CMakeFiles/genesys_core.dir/system.cc.o"
  "CMakeFiles/genesys_core.dir/system.cc.o.d"
  "libgenesys_core.a"
  "libgenesys_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genesys_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
