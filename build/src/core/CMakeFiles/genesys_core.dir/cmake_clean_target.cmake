file(REMOVE_RECURSE
  "libgenesys_core.a"
)
