file(REMOVE_RECURSE
  "libgenesys_gpu.a"
)
