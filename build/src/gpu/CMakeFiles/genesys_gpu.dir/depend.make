# Empty dependencies file for genesys_gpu.
# This may be replaced when dependencies are built.
