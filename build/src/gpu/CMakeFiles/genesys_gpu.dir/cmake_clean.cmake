file(REMOVE_RECURSE
  "CMakeFiles/genesys_gpu.dir/gpu.cc.o"
  "CMakeFiles/genesys_gpu.dir/gpu.cc.o.d"
  "libgenesys_gpu.a"
  "libgenesys_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genesys_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
