# Empty compiler generated dependencies file for genesys_osk.
# This may be replaced when dependencies are built.
