file(REMOVE_RECURSE
  "CMakeFiles/genesys_osk.dir/block_device.cc.o"
  "CMakeFiles/genesys_osk.dir/block_device.cc.o.d"
  "CMakeFiles/genesys_osk.dir/classification.cc.o"
  "CMakeFiles/genesys_osk.dir/classification.cc.o.d"
  "CMakeFiles/genesys_osk.dir/devices.cc.o"
  "CMakeFiles/genesys_osk.dir/devices.cc.o.d"
  "CMakeFiles/genesys_osk.dir/file.cc.o"
  "CMakeFiles/genesys_osk.dir/file.cc.o.d"
  "CMakeFiles/genesys_osk.dir/mm.cc.o"
  "CMakeFiles/genesys_osk.dir/mm.cc.o.d"
  "CMakeFiles/genesys_osk.dir/net.cc.o"
  "CMakeFiles/genesys_osk.dir/net.cc.o.d"
  "CMakeFiles/genesys_osk.dir/pipe.cc.o"
  "CMakeFiles/genesys_osk.dir/pipe.cc.o.d"
  "CMakeFiles/genesys_osk.dir/process.cc.o"
  "CMakeFiles/genesys_osk.dir/process.cc.o.d"
  "CMakeFiles/genesys_osk.dir/signals.cc.o"
  "CMakeFiles/genesys_osk.dir/signals.cc.o.d"
  "CMakeFiles/genesys_osk.dir/syscalls.cc.o"
  "CMakeFiles/genesys_osk.dir/syscalls.cc.o.d"
  "CMakeFiles/genesys_osk.dir/sysfs.cc.o"
  "CMakeFiles/genesys_osk.dir/sysfs.cc.o.d"
  "CMakeFiles/genesys_osk.dir/vfs.cc.o"
  "CMakeFiles/genesys_osk.dir/vfs.cc.o.d"
  "CMakeFiles/genesys_osk.dir/workqueue.cc.o"
  "CMakeFiles/genesys_osk.dir/workqueue.cc.o.d"
  "libgenesys_osk.a"
  "libgenesys_osk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genesys_osk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
