
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/osk/block_device.cc" "src/osk/CMakeFiles/genesys_osk.dir/block_device.cc.o" "gcc" "src/osk/CMakeFiles/genesys_osk.dir/block_device.cc.o.d"
  "/root/repo/src/osk/classification.cc" "src/osk/CMakeFiles/genesys_osk.dir/classification.cc.o" "gcc" "src/osk/CMakeFiles/genesys_osk.dir/classification.cc.o.d"
  "/root/repo/src/osk/devices.cc" "src/osk/CMakeFiles/genesys_osk.dir/devices.cc.o" "gcc" "src/osk/CMakeFiles/genesys_osk.dir/devices.cc.o.d"
  "/root/repo/src/osk/file.cc" "src/osk/CMakeFiles/genesys_osk.dir/file.cc.o" "gcc" "src/osk/CMakeFiles/genesys_osk.dir/file.cc.o.d"
  "/root/repo/src/osk/mm.cc" "src/osk/CMakeFiles/genesys_osk.dir/mm.cc.o" "gcc" "src/osk/CMakeFiles/genesys_osk.dir/mm.cc.o.d"
  "/root/repo/src/osk/net.cc" "src/osk/CMakeFiles/genesys_osk.dir/net.cc.o" "gcc" "src/osk/CMakeFiles/genesys_osk.dir/net.cc.o.d"
  "/root/repo/src/osk/pipe.cc" "src/osk/CMakeFiles/genesys_osk.dir/pipe.cc.o" "gcc" "src/osk/CMakeFiles/genesys_osk.dir/pipe.cc.o.d"
  "/root/repo/src/osk/process.cc" "src/osk/CMakeFiles/genesys_osk.dir/process.cc.o" "gcc" "src/osk/CMakeFiles/genesys_osk.dir/process.cc.o.d"
  "/root/repo/src/osk/signals.cc" "src/osk/CMakeFiles/genesys_osk.dir/signals.cc.o" "gcc" "src/osk/CMakeFiles/genesys_osk.dir/signals.cc.o.d"
  "/root/repo/src/osk/syscalls.cc" "src/osk/CMakeFiles/genesys_osk.dir/syscalls.cc.o" "gcc" "src/osk/CMakeFiles/genesys_osk.dir/syscalls.cc.o.d"
  "/root/repo/src/osk/sysfs.cc" "src/osk/CMakeFiles/genesys_osk.dir/sysfs.cc.o" "gcc" "src/osk/CMakeFiles/genesys_osk.dir/sysfs.cc.o.d"
  "/root/repo/src/osk/vfs.cc" "src/osk/CMakeFiles/genesys_osk.dir/vfs.cc.o" "gcc" "src/osk/CMakeFiles/genesys_osk.dir/vfs.cc.o.d"
  "/root/repo/src/osk/workqueue.cc" "src/osk/CMakeFiles/genesys_osk.dir/workqueue.cc.o" "gcc" "src/osk/CMakeFiles/genesys_osk.dir/workqueue.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/genesys_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/genesys_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
