file(REMOVE_RECURSE
  "libgenesys_osk.a"
)
