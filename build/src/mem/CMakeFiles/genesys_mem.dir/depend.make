# Empty dependencies file for genesys_mem.
# This may be replaced when dependencies are built.
