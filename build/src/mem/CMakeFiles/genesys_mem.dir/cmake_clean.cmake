file(REMOVE_RECURSE
  "CMakeFiles/genesys_mem.dir/cache_model.cc.o"
  "CMakeFiles/genesys_mem.dir/cache_model.cc.o.d"
  "CMakeFiles/genesys_mem.dir/mem_bus.cc.o"
  "CMakeFiles/genesys_mem.dir/mem_bus.cc.o.d"
  "libgenesys_mem.a"
  "libgenesys_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genesys_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
