file(REMOVE_RECURSE
  "libgenesys_mem.a"
)
