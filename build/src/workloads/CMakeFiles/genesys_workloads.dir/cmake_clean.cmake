file(REMOVE_RECURSE
  "CMakeFiles/genesys_workloads.dir/fbdisplay.cc.o"
  "CMakeFiles/genesys_workloads.dir/fbdisplay.cc.o.d"
  "CMakeFiles/genesys_workloads.dir/grep.cc.o"
  "CMakeFiles/genesys_workloads.dir/grep.cc.o.d"
  "CMakeFiles/genesys_workloads.dir/memcached.cc.o"
  "CMakeFiles/genesys_workloads.dir/memcached.cc.o.d"
  "CMakeFiles/genesys_workloads.dir/miniamr.cc.o"
  "CMakeFiles/genesys_workloads.dir/miniamr.cc.o.d"
  "CMakeFiles/genesys_workloads.dir/permute.cc.o"
  "CMakeFiles/genesys_workloads.dir/permute.cc.o.d"
  "CMakeFiles/genesys_workloads.dir/sha512.cc.o"
  "CMakeFiles/genesys_workloads.dir/sha512.cc.o.d"
  "CMakeFiles/genesys_workloads.dir/signal_search.cc.o"
  "CMakeFiles/genesys_workloads.dir/signal_search.cc.o.d"
  "CMakeFiles/genesys_workloads.dir/wordcount.cc.o"
  "CMakeFiles/genesys_workloads.dir/wordcount.cc.o.d"
  "libgenesys_workloads.a"
  "libgenesys_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genesys_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
