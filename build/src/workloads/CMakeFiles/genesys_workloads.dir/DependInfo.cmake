
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/fbdisplay.cc" "src/workloads/CMakeFiles/genesys_workloads.dir/fbdisplay.cc.o" "gcc" "src/workloads/CMakeFiles/genesys_workloads.dir/fbdisplay.cc.o.d"
  "/root/repo/src/workloads/grep.cc" "src/workloads/CMakeFiles/genesys_workloads.dir/grep.cc.o" "gcc" "src/workloads/CMakeFiles/genesys_workloads.dir/grep.cc.o.d"
  "/root/repo/src/workloads/memcached.cc" "src/workloads/CMakeFiles/genesys_workloads.dir/memcached.cc.o" "gcc" "src/workloads/CMakeFiles/genesys_workloads.dir/memcached.cc.o.d"
  "/root/repo/src/workloads/miniamr.cc" "src/workloads/CMakeFiles/genesys_workloads.dir/miniamr.cc.o" "gcc" "src/workloads/CMakeFiles/genesys_workloads.dir/miniamr.cc.o.d"
  "/root/repo/src/workloads/permute.cc" "src/workloads/CMakeFiles/genesys_workloads.dir/permute.cc.o" "gcc" "src/workloads/CMakeFiles/genesys_workloads.dir/permute.cc.o.d"
  "/root/repo/src/workloads/sha512.cc" "src/workloads/CMakeFiles/genesys_workloads.dir/sha512.cc.o" "gcc" "src/workloads/CMakeFiles/genesys_workloads.dir/sha512.cc.o.d"
  "/root/repo/src/workloads/signal_search.cc" "src/workloads/CMakeFiles/genesys_workloads.dir/signal_search.cc.o" "gcc" "src/workloads/CMakeFiles/genesys_workloads.dir/signal_search.cc.o.d"
  "/root/repo/src/workloads/wordcount.cc" "src/workloads/CMakeFiles/genesys_workloads.dir/wordcount.cc.o" "gcc" "src/workloads/CMakeFiles/genesys_workloads.dir/wordcount.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/genesys_core.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/genesys_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/osk/CMakeFiles/genesys_osk.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/genesys_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/genesys_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/genesys_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
