file(REMOVE_RECURSE
  "libgenesys_workloads.a"
)
