# Empty dependencies file for genesys_workloads.
# This may be replaced when dependencies are built.
