file(REMOVE_RECURSE
  "CMakeFiles/genesys_support.dir/logging.cc.o"
  "CMakeFiles/genesys_support.dir/logging.cc.o.d"
  "CMakeFiles/genesys_support.dir/stats.cc.o"
  "CMakeFiles/genesys_support.dir/stats.cc.o.d"
  "CMakeFiles/genesys_support.dir/table.cc.o"
  "CMakeFiles/genesys_support.dir/table.cc.o.d"
  "CMakeFiles/genesys_support.dir/trace.cc.o"
  "CMakeFiles/genesys_support.dir/trace.cc.o.d"
  "libgenesys_support.a"
  "libgenesys_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genesys_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
