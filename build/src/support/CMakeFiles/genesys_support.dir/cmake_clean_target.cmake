file(REMOVE_RECURSE
  "libgenesys_support.a"
)
