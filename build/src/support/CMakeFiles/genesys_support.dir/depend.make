# Empty dependencies file for genesys_support.
# This may be replaced when dependencies are built.
