# Empty dependencies file for genesys_sim.
# This may be replaced when dependencies are built.
