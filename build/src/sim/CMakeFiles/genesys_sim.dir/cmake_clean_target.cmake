file(REMOVE_RECURSE
  "libgenesys_sim.a"
)
