file(REMOVE_RECURSE
  "CMakeFiles/genesys_sim.dir/event_queue.cc.o"
  "CMakeFiles/genesys_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/genesys_sim.dir/sim.cc.o"
  "CMakeFiles/genesys_sim.dir/sim.cc.o.d"
  "libgenesys_sim.a"
  "libgenesys_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genesys_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
