# Empty compiler generated dependencies file for gpu_grep.
# This may be replaced when dependencies are built.
