file(REMOVE_RECURSE
  "CMakeFiles/gpu_grep.dir/gpu_grep.cpp.o"
  "CMakeFiles/gpu_grep.dir/gpu_grep.cpp.o.d"
  "gpu_grep"
  "gpu_grep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpu_grep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
