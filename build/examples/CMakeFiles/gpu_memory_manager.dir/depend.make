# Empty dependencies file for gpu_memory_manager.
# This may be replaced when dependencies are built.
