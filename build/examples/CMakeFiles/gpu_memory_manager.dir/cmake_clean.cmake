file(REMOVE_RECURSE
  "CMakeFiles/gpu_memory_manager.dir/gpu_memory_manager.cpp.o"
  "CMakeFiles/gpu_memory_manager.dir/gpu_memory_manager.cpp.o.d"
  "gpu_memory_manager"
  "gpu_memory_manager.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpu_memory_manager.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
