# Empty compiler generated dependencies file for legacy_textproc.
# This may be replaced when dependencies are built.
