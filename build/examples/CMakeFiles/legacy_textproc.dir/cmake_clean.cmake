file(REMOVE_RECURSE
  "CMakeFiles/legacy_textproc.dir/legacy_textproc.cpp.o"
  "CMakeFiles/legacy_textproc.dir/legacy_textproc.cpp.o.d"
  "legacy_textproc"
  "legacy_textproc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/legacy_textproc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
