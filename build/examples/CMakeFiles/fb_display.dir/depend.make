# Empty dependencies file for fb_display.
# This may be replaced when dependencies are built.
