file(REMOVE_RECURSE
  "CMakeFiles/fb_display.dir/fb_display.cpp.o"
  "CMakeFiles/fb_display.dir/fb_display.cpp.o.d"
  "fb_display"
  "fb_display.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fb_display.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
