file(REMOVE_RECURSE
  "CMakeFiles/gpu_memcached.dir/gpu_memcached.cpp.o"
  "CMakeFiles/gpu_memcached.dir/gpu_memcached.cpp.o.d"
  "gpu_memcached"
  "gpu_memcached.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpu_memcached.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
