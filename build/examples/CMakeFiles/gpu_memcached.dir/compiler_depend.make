# Empty compiler generated dependencies file for gpu_memcached.
# This may be replaced when dependencies are built.
