# Empty dependencies file for abl_matrix.
# This may be replaced when dependencies are built.
