file(REMOVE_RECURSE
  "CMakeFiles/abl_matrix.dir/abl_matrix.cc.o"
  "CMakeFiles/abl_matrix.dir/abl_matrix.cc.o.d"
  "abl_matrix"
  "abl_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
