# Empty dependencies file for tab01_apps.
# This may be replaced when dependencies are built.
