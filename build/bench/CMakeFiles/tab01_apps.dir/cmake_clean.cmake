file(REMOVE_RECURSE
  "CMakeFiles/tab01_apps.dir/tab01_apps.cc.o"
  "CMakeFiles/tab01_apps.dir/tab01_apps.cc.o.d"
  "tab01_apps"
  "tab01_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab01_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
