file(REMOVE_RECURSE
  "CMakeFiles/fig16_framebuffer.dir/fig16_framebuffer.cc.o"
  "CMakeFiles/fig16_framebuffer.dir/fig16_framebuffer.cc.o.d"
  "fig16_framebuffer"
  "fig16_framebuffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_framebuffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
