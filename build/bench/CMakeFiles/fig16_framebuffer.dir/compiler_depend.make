# Empty compiler generated dependencies file for fig16_framebuffer.
# This may be replaced when dependencies are built.
