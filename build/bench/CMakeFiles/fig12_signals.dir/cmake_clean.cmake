file(REMOVE_RECURSE
  "CMakeFiles/fig12_signals.dir/fig12_signals.cc.o"
  "CMakeFiles/fig12_signals.dir/fig12_signals.cc.o.d"
  "fig12_signals"
  "fig12_signals.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_signals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
