# Empty dependencies file for fig12_signals.
# This may be replaced when dependencies are built.
