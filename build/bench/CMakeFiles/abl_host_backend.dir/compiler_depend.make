# Empty compiler generated dependencies file for abl_host_backend.
# This may be replaced when dependencies are built.
