file(REMOVE_RECURSE
  "CMakeFiles/abl_host_backend.dir/abl_host_backend.cc.o"
  "CMakeFiles/abl_host_backend.dir/abl_host_backend.cc.o.d"
  "abl_host_backend"
  "abl_host_backend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_host_backend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
