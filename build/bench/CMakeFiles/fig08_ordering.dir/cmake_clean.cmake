file(REMOVE_RECURSE
  "CMakeFiles/fig08_ordering.dir/fig08_ordering.cc.o"
  "CMakeFiles/fig08_ordering.dir/fig08_ordering.cc.o.d"
  "fig08_ordering"
  "fig08_ordering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_ordering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
