file(REMOVE_RECURSE
  "CMakeFiles/fig07_granularity.dir/fig07_granularity.cc.o"
  "CMakeFiles/fig07_granularity.dir/fig07_granularity.cc.o.d"
  "fig07_granularity"
  "fig07_granularity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_granularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
