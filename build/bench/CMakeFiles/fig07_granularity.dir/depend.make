# Empty dependencies file for fig07_granularity.
# This may be replaced when dependencies are built.
