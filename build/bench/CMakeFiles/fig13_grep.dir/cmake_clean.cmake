file(REMOVE_RECURSE
  "CMakeFiles/fig13_grep.dir/fig13_grep.cc.o"
  "CMakeFiles/fig13_grep.dir/fig13_grep.cc.o.d"
  "fig13_grep"
  "fig13_grep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_grep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
