# Empty dependencies file for fig13_grep.
# This may be replaced when dependencies are built.
