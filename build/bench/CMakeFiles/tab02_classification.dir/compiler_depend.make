# Empty compiler generated dependencies file for tab02_classification.
# This may be replaced when dependencies are built.
