file(REMOVE_RECURSE
  "CMakeFiles/tab02_classification.dir/tab02_classification.cc.o"
  "CMakeFiles/tab02_classification.dir/tab02_classification.cc.o.d"
  "tab02_classification"
  "tab02_classification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab02_classification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
