# Empty compiler generated dependencies file for fig13_wordcount.
# This may be replaced when dependencies are built.
