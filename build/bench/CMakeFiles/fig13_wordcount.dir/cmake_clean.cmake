file(REMOVE_RECURSE
  "CMakeFiles/fig13_wordcount.dir/fig13_wordcount.cc.o"
  "CMakeFiles/fig13_wordcount.dir/fig13_wordcount.cc.o.d"
  "fig13_wordcount"
  "fig13_wordcount.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_wordcount.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
