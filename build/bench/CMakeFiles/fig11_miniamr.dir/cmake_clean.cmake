file(REMOVE_RECURSE
  "CMakeFiles/fig11_miniamr.dir/fig11_miniamr.cc.o"
  "CMakeFiles/fig11_miniamr.dir/fig11_miniamr.cc.o.d"
  "fig11_miniamr"
  "fig11_miniamr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_miniamr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
