# Empty compiler generated dependencies file for fig11_miniamr.
# This may be replaced when dependencies are built.
