# Empty compiler generated dependencies file for fig09_polling.
# This may be replaced when dependencies are built.
