file(REMOVE_RECURSE
  "CMakeFiles/fig09_polling.dir/fig09_polling.cc.o"
  "CMakeFiles/fig09_polling.dir/fig09_polling.cc.o.d"
  "fig09_polling"
  "fig09_polling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_polling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
