# Empty compiler generated dependencies file for fig15_memcached.
# This may be replaced when dependencies are built.
