file(REMOVE_RECURSE
  "CMakeFiles/fig15_memcached.dir/fig15_memcached.cc.o"
  "CMakeFiles/fig15_memcached.dir/fig15_memcached.cc.o.d"
  "fig15_memcached"
  "fig15_memcached.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_memcached.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
