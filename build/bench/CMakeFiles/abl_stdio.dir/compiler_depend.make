# Empty compiler generated dependencies file for abl_stdio.
# This may be replaced when dependencies are built.
