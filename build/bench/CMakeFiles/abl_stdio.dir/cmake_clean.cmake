file(REMOVE_RECURSE
  "CMakeFiles/abl_stdio.dir/abl_stdio.cc.o"
  "CMakeFiles/abl_stdio.dir/abl_stdio.cc.o.d"
  "abl_stdio"
  "abl_stdio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_stdio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
