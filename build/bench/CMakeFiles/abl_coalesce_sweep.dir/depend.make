# Empty dependencies file for abl_coalesce_sweep.
# This may be replaced when dependencies are built.
