file(REMOVE_RECURSE
  "CMakeFiles/abl_coalesce_sweep.dir/abl_coalesce_sweep.cc.o"
  "CMakeFiles/abl_coalesce_sweep.dir/abl_coalesce_sweep.cc.o.d"
  "abl_coalesce_sweep"
  "abl_coalesce_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_coalesce_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
