# Empty dependencies file for tab04_atomics.
# This may be replaced when dependencies are built.
