file(REMOVE_RECURSE
  "CMakeFiles/tab04_atomics.dir/tab04_atomics.cc.o"
  "CMakeFiles/tab04_atomics.dir/tab04_atomics.cc.o.d"
  "tab04_atomics"
  "tab04_atomics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab04_atomics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
