/**
 * @file
 * Unit tests for the GPU execution model: dispatch, residency,
 * barriers, hardware slots, halt/resume, and the L2 polling path.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "gpu/gpu.hh"
#include "sim/sim.hh"
#include "support/logging.hh"

namespace genesys::gpu
{
namespace
{

GpuConfig
tinyGpu()
{
    GpuConfig cfg;
    cfg.numCus = 2;
    cfg.maxWavesPerCu = 4;
    cfg.maxWorkGroupsPerCu = 2;
    cfg.kernelLaunchLatency = 0;
    return cfg;
}

TEST(GpuConfig, DerivedQuantities)
{
    GpuConfig cfg; // defaults: 8 CUs x 40 waves x 64 lanes
    EXPECT_EQ(cfg.activeWorkItemSlots(), 8u * 40 * 64);
    // 1 GHz-ish clock: cycles round sensibly.
    EXPECT_EQ(cfg.cyclesToTicks(0), 0u);
    EXPECT_GE(cfg.cyclesToTicks(1), 1u);
    EXPECT_NEAR(static_cast<double>(cfg.cyclesToTicks(758'000'000)),
                1e9, 1e6); // one second of cycles at 758 MHz
}

TEST(GpuDevice, LaunchRunsEveryWorkItemExactlyOnce)
{
    sim::Sim s;
    GpuDevice gpu(s, tinyGpu());
    std::set<std::uint64_t> seen;
    KernelLaunch k;
    k.workItems = 1000; // not wavefront- or wg-aligned
    k.wgSize = 192;     // 3 waves per group
    k.program = [&seen](WavefrontCtx &ctx) -> sim::Task<> {
        for (std::uint32_t lane = 0; lane < ctx.laneCount(); ++lane) {
            const auto item = ctx.firstWorkItem() + lane;
            EXPECT_TRUE(seen.insert(item).second) << item;
        }
        co_return;
    };
    s.spawn(gpu.launch(std::move(k)));
    s.run();
    EXPECT_EQ(seen.size(), 1000u);
    EXPECT_EQ(*seen.begin(), 0u);
    EXPECT_EQ(*seen.rbegin(), 999u);
    EXPECT_EQ(gpu.launchedKernels(), 1u);
    EXPECT_EQ(gpu.launchedWorkGroups(), 6u); // ceil(1000/192)
}

TEST(GpuDevice, ResidencyLimitsConcurrentWorkGroups)
{
    sim::Sim s;
    GpuDevice gpu(s, tinyGpu()); // at most 2x2 = 4 resident groups
    std::uint32_t peak = 0;
    KernelLaunch k;
    k.workItems = 16 * 64;
    k.wgSize = 64;
    k.program = [&gpu, &peak](WavefrontCtx &ctx) -> sim::Task<> {
        peak = std::max(peak, gpu.residentWorkGroups());
        co_await ctx.compute(10000);
    };
    s.spawn(gpu.launch(std::move(k)));
    s.run();
    EXPECT_EQ(peak, 4u);
    EXPECT_EQ(gpu.residentWorkGroups(), 0u);
}

TEST(GpuDevice, WaveSlotsAlsoLimitResidency)
{
    sim::Sim s;
    GpuConfig cfg = tinyGpu(); // 4 wave slots per CU
    sim::Sim s2;
    GpuDevice gpu(s2, cfg);
    // Each group needs 4 waves = a whole CU's wave slots, so only one
    // group per CU can be resident despite 2 WG slots.
    std::uint32_t peak = 0;
    KernelLaunch k;
    k.workItems = 8 * 256;
    k.wgSize = 256;
    k.program = [&gpu, &peak](WavefrontCtx &ctx) -> sim::Task<> {
        peak = std::max(peak, gpu.residentWorkGroups());
        co_await ctx.compute(1000);
    };
    s2.spawn(gpu.launch(std::move(k)));
    s2.run();
    EXPECT_EQ(peak, 2u);
}

TEST(GpuDevice, KernelLaunchLatencyCharged)
{
    sim::Sim s;
    GpuConfig cfg = tinyGpu();
    cfg.kernelLaunchLatency = ticks::us(15);
    GpuDevice gpu(s, cfg);
    KernelLaunch k;
    k.workItems = 64;
    k.wgSize = 64;
    k.program = [](WavefrontCtx &) -> sim::Task<> { co_return; };
    s.spawn(gpu.launch(std::move(k)));
    EXPECT_EQ(s.run(), ticks::us(15));
}

TEST(GpuDevice, HwWaveSlotsAreUniqueAmongResidentWaves)
{
    sim::Sim s;
    GpuDevice gpu(s, tinyGpu());
    std::multiset<std::uint32_t> active;
    bool overlap = false;
    KernelLaunch k;
    k.workItems = 64 * 64;
    k.wgSize = 128;
    k.program = [&](WavefrontCtx &ctx) -> sim::Task<> {
        if (active.contains(ctx.hwWaveSlot()))
            overlap = true;
        active.insert(ctx.hwWaveSlot());
        co_await ctx.compute(500);
        active.erase(active.find(ctx.hwWaveSlot()));
    };
    s.spawn(gpu.launch(std::move(k)));
    s.run();
    EXPECT_FALSE(overlap);
    EXPECT_TRUE(active.empty());
}

TEST(GpuDevice, HwItemSlotIndexesLaneWithinWave)
{
    sim::Sim s;
    GpuDevice gpu(s, tinyGpu());
    KernelLaunch k;
    k.workItems = 70; // 2 waves: 64 + 6 lanes
    k.wgSize = 70;
    bool checked = false;
    k.program = [&checked, &gpu](WavefrontCtx &ctx) -> sim::Task<> {
        EXPECT_EQ(ctx.hwItemSlot(0),
                  ctx.hwWaveSlot() * gpu.config().wavefrontSize);
        if (ctx.laneCount() < 64) {
            EXPECT_EQ(ctx.laneCount(), 6u);
            EXPECT_THROW(ctx.hwItemSlot(6), PanicError);
            checked = true;
        }
        co_return;
    };
    s.spawn(gpu.launch(std::move(k)));
    s.run();
    EXPECT_TRUE(checked);
}

TEST(GpuDevice, WorkGroupBarrierSynchronizesWaves)
{
    sim::Sim s;
    GpuDevice gpu(s, tinyGpu());
    std::vector<Tick> after_barrier;
    KernelLaunch k;
    k.workItems = 256; // one group, 4 waves
    k.wgSize = 256;
    k.program = [&s, &after_barrier](WavefrontCtx &ctx) -> sim::Task<> {
        // Waves do different amounts of pre-barrier work.
        co_await ctx.compute(1000 * (ctx.waveInGroup() + 1));
        co_await ctx.wgBarrier();
        after_barrier.push_back(s.now());
    };
    s.spawn(gpu.launch(std::move(k)));
    s.run();
    ASSERT_EQ(after_barrier.size(), 4u);
    for (Tick t : after_barrier)
        EXPECT_EQ(t, after_barrier[0]);
}

TEST(GpuDevice, GroupLeaderIsWaveZero)
{
    sim::Sim s;
    GpuDevice gpu(s, tinyGpu());
    int leaders = 0;
    KernelLaunch k;
    k.workItems = 512; // 2 groups x 4 waves
    k.wgSize = 256;
    k.program = [&leaders](WavefrontCtx &ctx) -> sim::Task<> {
        if (ctx.isGroupLeader())
            ++leaders;
        co_return;
    };
    s.spawn(gpu.launch(std::move(k)));
    s.run();
    EXPECT_EQ(leaders, 2);
}

TEST(GpuDevice, HaltResumeRoundTrip)
{
    sim::Sim s;
    GpuConfig cfg = tinyGpu();
    cfg.waveResumeLatency = ticks::us(5);
    GpuDevice gpu(s, cfg);
    Tick resumed_at = 0;
    std::uint32_t slot = 0;
    KernelLaunch k;
    k.workItems = 64;
    k.wgSize = 64;
    k.program = [&](WavefrontCtx &ctx) -> sim::Task<> {
        slot = ctx.hwWaveSlot();
        co_await ctx.halt();
        resumed_at = ctx.sim().now();
    };
    s.spawn(gpu.launch(std::move(k)));
    s.run();
    EXPECT_EQ(resumed_at, 0u); // still halted
    const Tick wake_time = s.now();
    gpu.resumeWave(slot);
    s.run();
    EXPECT_EQ(resumed_at, wake_time + ticks::us(5));
}

TEST(GpuDevice, ResumeOfNonHaltedWaveIsNoop)
{
    sim::Sim s;
    GpuDevice gpu(s, tinyGpu());
    EXPECT_NO_THROW(gpu.resumeWave(0));
    EXPECT_THROW(gpu.resumeWave(100000), PanicError);
}

TEST(GpuDevice, InterruptReachesSink)
{
    sim::Sim s;
    GpuDevice gpu(s, tinyGpu());
    std::vector<std::uint32_t> seen;
    std::vector<std::uint32_t> cus;
    gpu.setInterruptSink([&seen, &cus](std::uint32_t cu,
                                       std::uint32_t id) {
        seen.push_back(id);
        cus.push_back(cu);
    });
    KernelLaunch k;
    k.workItems = 128;
    k.wgSize = 64;
    k.program = [&gpu](WavefrontCtx &ctx) -> sim::Task<> {
        gpu.sendInterrupt(ctx.hwWaveSlot());
        co_return;
    };
    s.spawn(gpu.launch(std::move(k)));
    s.run();
    EXPECT_EQ(seen.size(), 2u);
    // The message's routing tag names the originating CU.
    ASSERT_EQ(cus.size(), seen.size());
    for (std::size_t i = 0; i < seen.size(); ++i)
        EXPECT_EQ(cus[i], seen[i] / tinyGpu().maxWavesPerCu);
}

TEST(GpuDevice, SequentialKernelsReuseResources)
{
    sim::Sim s;
    GpuDevice gpu(s, tinyGpu());
    for (int i = 0; i < 3; ++i) {
        KernelLaunch k;
        k.workItems = 512;
        k.wgSize = 128;
        k.program = [](WavefrontCtx &ctx) -> sim::Task<> {
            co_await ctx.compute(100);
        };
        s.spawn(gpu.launch(std::move(k)));
        s.run();
    }
    EXPECT_EQ(gpu.launchedKernels(), 3u);
    EXPECT_EQ(gpu.residentWorkGroups(), 0u);
}

TEST(GpuDevice, LaunchValidation)
{
    sim::Sim s;
    GpuDevice gpu(s, tinyGpu());
    KernelLaunch empty;
    empty.workItems = 0;
    empty.wgSize = 64;
    empty.program = [](WavefrontCtx &) -> sim::Task<> { co_return; };
    EXPECT_THROW(
        {
            s.spawn(gpu.launch(std::move(empty)));
            s.run();
        },
        PanicError);

    KernelLaunch huge;
    huge.workItems = 64;
    huge.wgSize = 2048; // > 16 waves
    huge.program = [](WavefrontCtx &) -> sim::Task<> { co_return; };
    EXPECT_THROW(
        {
            sim::Sim s2;
            GpuDevice g2(s2, tinyGpu());
            s2.spawn(g2.launch(std::move(huge)));
            s2.run();
        },
        PanicError);
}

TEST(GpuDevice, AccessLinePollingHitsL2)
{
    sim::Sim s;
    mem::MemBusParams bp;
    mem::MemBus bus(s.events(), bp);
    GpuConfig cfg = tinyGpu();
    GpuDevice gpu(s, cfg, &bus);
    s.spawn([](GpuDevice &g) -> sim::Task<> {
        // Poll the same line repeatedly: one miss, then hits.
        for (int i = 0; i < 10; ++i)
            co_await g.accessLine(0x1000, g.config().atomicLoad);
    }(gpu));
    s.run();
    EXPECT_EQ(gpu.l2().misses(), 1u);
    EXPECT_EQ(gpu.l2().hits(), 9u);
    EXPECT_EQ(bus.bytesMoved("gpu"), 64u);
}

TEST(GpuDevice, AccessLineSpillGeneratesBusTraffic)
{
    sim::Sim s;
    mem::MemBusParams bp;
    mem::MemBus bus(s.events(), bp);
    GpuConfig cfg = tinyGpu(); // 256 KiB L2 = 4096 lines
    GpuDevice gpu(s, cfg, &bus);
    const std::uint64_t lines = 8192; // 2x capacity
    s.spawn([](GpuDevice &g, std::uint64_t n) -> sim::Task<> {
        for (int pass = 0; pass < 2; ++pass)
            for (std::uint64_t i = 0; i < n; ++i)
                co_await g.accessLine(i * 64, g.config().plainLoad);
    }(gpu, lines));
    s.run();
    // Sweep over 2x capacity thrashes: nearly everything misses.
    EXPECT_GT(bus.bytesMoved("gpu"), 2 * lines * 64 * 9 / 10);
}

} // namespace
} // namespace genesys::gpu
