/**
 * @file
 * Unit tests for UDP networking, signals, and CPU/workqueue scheduling.
 */

#include <gtest/gtest.h>

#include <string>

#include "osk/net.hh"
#include "osk/params.hh"
#include "osk/signals.hh"
#include "osk/workqueue.hh"
#include "sim/sim.hh"

namespace genesys::osk
{
namespace
{

std::vector<std::uint8_t>
bytes(const std::string &s)
{
    return {s.begin(), s.end()};
}

std::string
str(const std::vector<std::uint8_t> &v)
{
    return {v.begin(), v.end()};
}

// -------------------------------------------------------------------- UDP

class UdpTest : public ::testing::Test
{
  protected:
    UdpTest() : stack_(sim_.events(), params_) {}

    sim::Sim sim_;
    OskParams params_;
    UdpStack stack_;
};

TEST_F(UdpTest, BindRejectsDuplicateEndpoint)
{
    UdpSocket *a = stack_.createSocket();
    UdpSocket *b = stack_.createSocket();
    EXPECT_EQ(a->bind({1, 7000}), 0);
    EXPECT_EQ(b->bind({1, 7000}), -EADDRINUSE);
    EXPECT_EQ(b->bind({1, 7001}), 0);
}

TEST_F(UdpTest, SendDeliversToBoundSocket)
{
    UdpSocket *server = stack_.createSocket();
    ASSERT_EQ(server->bind({1, 9000}), 0);
    UdpSocket *client = stack_.createSocket();
    ASSERT_EQ(client->bind({2, 1234}), 0);

    std::string got;
    SockAddr from{};
    sim_.spawn([](UdpSocket *s, std::string &out,
                  SockAddr &src) -> sim::Task<> {
        Datagram d = co_await s->recvFrom(1500);
        out = str(d.payload);
        src = d.from;
    }(server, got, from));
    sim_.spawn([](UdpSocket *c) -> sim::Task<> {
        co_await c->sendTo({1, 9000}, bytes("ping"));
    }(client));
    sim_.run();
    EXPECT_EQ(got, "ping");
    EXPECT_EQ(from.host, 2u);
    EXPECT_EQ(from.port, 1234u);
    EXPECT_EQ(stack_.deliveredDatagrams(), 1u);
}

TEST_F(UdpTest, UnroutableDatagramsDropped)
{
    UdpSocket *client = stack_.createSocket();
    sim_.spawn([](UdpSocket *c) -> sim::Task<> {
        co_await c->sendTo({9, 9999}, bytes("void"));
    }(client));
    sim_.run();
    EXPECT_EQ(stack_.unroutable(), 1u);
}

TEST_F(UdpTest, RecvTruncatesOversizedDatagram)
{
    UdpSocket *server = stack_.createSocket();
    ASSERT_EQ(server->bind({1, 9000}), 0);
    UdpSocket *client = stack_.createSocket();
    std::string got;
    sim_.spawn([](UdpSocket *s, std::string &out) -> sim::Task<> {
        Datagram d = co_await s->recvFrom(4);
        out = str(d.payload);
    }(server, got));
    sim_.spawn([](UdpSocket *c) -> sim::Task<> {
        co_await c->sendTo({1, 9000}, bytes("truncated"));
    }(client));
    sim_.run();
    EXPECT_EQ(got, "trun");
}

TEST_F(UdpTest, QueueOverflowDropsNewDatagrams)
{
    UdpSocket *server = stack_.createSocket();
    ASSERT_EQ(server->bind({1, 9000}), 0);
    for (int i = 0; i < 1100; ++i) {
        Datagram d;
        d.payload = bytes("x");
        stack_.deliver({1, 9000}, std::move(d));
    }
    EXPECT_EQ(server->queued(), 1024u);
    EXPECT_EQ(server->dropped(), 76u);
}

TEST_F(UdpTest, TryRecvNonBlocking)
{
    UdpSocket *server = stack_.createSocket();
    ASSERT_EQ(server->bind({1, 9000}), 0);
    Datagram out;
    EXPECT_FALSE(server->tryRecv(out));
    Datagram d;
    d.payload = bytes("hi");
    stack_.deliver({1, 9000}, std::move(d));
    EXPECT_TRUE(server->tryRecv(out));
    EXPECT_EQ(str(out.payload), "hi");
}

TEST_F(UdpTest, CloseSocketFreesEndpoint)
{
    UdpSocket *a = stack_.createSocket();
    const int id = a->id();
    ASSERT_EQ(a->bind({1, 7000}), 0);
    EXPECT_TRUE(stack_.closeSocket(id));
    EXPECT_FALSE(stack_.closeSocket(id));
    UdpSocket *b = stack_.createSocket();
    EXPECT_EQ(b->bind({1, 7000}), 0); // endpoint reusable
}

// ---------------------------------------------------------------- signals

TEST(Signals, QueueAndWaitDeliversPayload)
{
    sim::Sim sim;
    OskParams params;
    SignalManager mgr(sim.events(), params);
    SigInfo got{};
    sim.spawn([](SignalManager &m, SigInfo &out) -> sim::Task<> {
        out = co_await m.waitInfo();
    }(mgr, got));
    sim.run();
    SigInfo info;
    info.signo = SIGRTMIN_;
    info.value = 0x1234;
    EXPECT_EQ(mgr.queueInfo(info), 0);
    sim.run();
    EXPECT_EQ(got.signo, SIGRTMIN_);
    EXPECT_EQ(got.value, 0x1234);
}

TEST(Signals, RealTimeSignalsQueueInOrder)
{
    sim::Sim sim;
    OskParams params;
    SignalManager mgr(sim.events(), params);
    for (int i = 0; i < 5; ++i) {
        SigInfo info;
        info.signo = SIGRTMIN_;
        info.value = i;
        ASSERT_EQ(mgr.queueInfo(info), 0);
    }
    EXPECT_EQ(mgr.pending(), 5u);
    std::vector<std::int64_t> seen;
    sim.spawn([](SignalManager &m,
                 std::vector<std::int64_t> &out) -> sim::Task<> {
        for (int i = 0; i < 5; ++i) {
            SigInfo s = co_await m.waitInfo();
            out.push_back(s.value);
        }
    }(mgr, seen));
    sim.run();
    EXPECT_EQ(seen, (std::vector<std::int64_t>{0, 1, 2, 3, 4}));
    EXPECT_EQ(mgr.totalQueued(), 5u);
}

TEST(Signals, BadSignalNumberRejected)
{
    sim::Sim sim;
    OskParams params;
    SignalManager mgr(sim.events(), params);
    SigInfo info;
    info.signo = 0;
    EXPECT_EQ(mgr.queueInfo(info), -EINVAL);
    info.signo = 65;
    EXPECT_EQ(mgr.queueInfo(info), -EINVAL);
}

// ------------------------------------------------------- CPU & workqueue

TEST(CpuCluster, ComputeOccupiesOneCore)
{
    sim::Sim sim;
    CpuCluster cpus(sim, 4);
    sim.spawn([](CpuCluster &c) -> sim::Task<> {
        co_await c.compute(ticks::us(10));
    }(cpus));
    const Tick end = sim.run();
    EXPECT_EQ(end, ticks::us(10));
    EXPECT_NEAR(cpus.utilization(0, end), 0.25, 1e-9);
}

TEST(CpuCluster, OversubscriptionSerializes)
{
    sim::Sim sim;
    CpuCluster cpus(sim, 2);
    for (int i = 0; i < 4; ++i) {
        sim.spawn([](CpuCluster &c) -> sim::Task<> {
            co_await c.compute(ticks::us(10));
        }(cpus));
    }
    const Tick end = sim.run();
    // 4 jobs of 10us on 2 cores = 20us wall clock, 100% busy.
    EXPECT_EQ(end, ticks::us(20));
    EXPECT_NEAR(cpus.utilization(0, end), 1.0, 1e-9);
}

TEST(CpuCluster, UtilizationWindowing)
{
    sim::Sim sim;
    CpuCluster cpus(sim, 1);
    sim.spawn([](sim::Sim &s, CpuCluster &c) -> sim::Task<> {
        co_await s.delay(ticks::us(10));
        co_await c.compute(ticks::us(10));
    }(sim, cpus));
    sim.run();
    EXPECT_NEAR(cpus.utilization(0, ticks::us(10)), 0.0, 1e-9);
    EXPECT_NEAR(cpus.utilization(ticks::us(10), ticks::us(20)), 1.0,
                1e-9);
    EXPECT_NEAR(cpus.utilization(0, ticks::us(20)), 0.5, 1e-9);
}

TEST(WorkQueue, ExecutesEnqueuedTasks)
{
    sim::Sim sim;
    OskParams params;
    CpuCluster cpus(sim, 4);
    WorkQueue wq(sim, cpus, params, 4);
    int done = 0;
    for (int i = 0; i < 8; ++i) {
        wq.enqueue([&sim, &done](std::uint32_t) -> sim::Task<> {
            co_await sim.delay(ticks::us(1));
            ++done;
        });
    }
    sim.run();
    EXPECT_EQ(done, 8);
    EXPECT_EQ(wq.executedTasks(), 8u);
    EXPECT_EQ(wq.queuedNow(), 0u);
}

TEST(WorkQueue, DispatchLatencyCharged)
{
    sim::Sim sim;
    OskParams params;
    CpuCluster cpus(sim, 1);
    WorkQueue wq(sim, cpus, params, 1);
    Tick started = 0;
    wq.enqueue([&sim, &started](std::uint32_t) -> sim::Task<> {
        started = sim.now();
        co_return;
    });
    sim.run();
    EXPECT_EQ(started, params.workerDispatch);
}

TEST(WorkQueue, LimitedWorkersBoundConcurrency)
{
    sim::Sim sim;
    OskParams params;
    params.workerDispatch = 0;
    CpuCluster cpus(sim, 4);
    WorkQueue wq(sim, cpus, params, 2);
    int active = 0, peak = 0;
    for (int i = 0; i < 6; ++i) {
        wq.enqueue([&sim, &active, &peak](std::uint32_t) -> sim::Task<> {
            ++active;
            peak = std::max(peak, active);
            co_await sim.delay(ticks::us(5));
            --active;
        });
    }
    sim.run();
    EXPECT_EQ(peak, 2);
}

} // namespace
} // namespace genesys::osk
