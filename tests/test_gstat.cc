/**
 * @file
 * Unit tests for the gstat static analyzer (src/analysis/).
 *
 * The seeded-defect corpus (`gstat --self-test`, also run here) is the
 * broad regression net; these tests pin the analyzer's contract at the
 * API level: witness chains, the suppression window, and the
 * resolution-hygiene mechanisms (noreturn terminators, explicit
 * qualifiers, opaque API-boundary classes, arity-refined resolution,
 * sign-context pruning) that keep the real tree free of false park
 * chains.
 */

#include "analysis/analyzer.hh"

#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace
{

using genesys::analysis::AnalysisResult;
using genesys::analysis::Finding;
using genesys::analysis::SourceFile;
using genesys::analysis::analyzeSources;
using genesys::analysis::loadTree;
using genesys::analysis::runSelfTest;

AnalysisResult
analyze(const std::string &text)
{
    return analyzeSources({{"t/x.cc", text}});
}

std::vector<std::string>
rulesOf(const AnalysisResult &r)
{
    std::vector<std::string> rules;
    for (const Finding &f : r.findings)
        rules.push_back(f.rule);
    return rules;
}

// A handler table where `ioctl` is classified non-blocking.
const char *kTablePrologue = R"src(
namespace osk { namespace sysno {
inline constexpr int ioctl = 16;
} }
bool mayBlockIndefinitely(int n) { return false; }
void buildTable() { install(sysno::ioctl, "ioctl", sysIoctl); }
)src";

TEST(Gstat, CleanSnippetHasNoFindings)
{
    const AnalysisResult r = analyze(R"src(
int add(int a, int b) { return a + b; }
int twice(int a) { return add(a, a); }
)src");
    EXPECT_TRUE(r.findings.empty());
    EXPECT_EQ(r.suppressed, 0);
    EXPECT_EQ(r.functionCount, 2u);
}

TEST(Gstat, TransitiveParkCarriesWitnessChain)
{
    const AnalysisResult r = analyze(std::string(kTablePrologue) + R"src(
long helper(WaitQueue &wq) { return wq.wait(); }
long sysIoctl(WaitQueue &wq) { return helper(wq); }
)src");
    ASSERT_EQ(rulesOf(r),
              std::vector<std::string>{"nonblocking-handler-parks"});
    const Finding &f = r.findings[0];
    // The witness walks handler -> helper -> the parking call site.
    ASSERT_GE(f.witness.size(), 2u);
    EXPECT_NE(f.witness[0].find("helper"), std::string::npos);
    EXPECT_NE(f.witness.back().find("wait"), std::string::npos);
    EXPECT_NE(f.witness.back().find("t/x.cc:"), std::string::npos);
}

TEST(Gstat, SuppressionWindowIsThreeLines)
{
    // allow() two lines above the finding line: suppressed.
    const AnalysisResult near = analyze(std::string(kTablePrologue) +
                                        R"src(
// gstat: allow(nonblocking-handler-parks)
long
sysIoctl(WaitQueue &wq) { return wq.wait(); }
)src");
    EXPECT_TRUE(near.findings.empty());
    EXPECT_EQ(near.suppressed, 1);

    // allow() five lines above: out of the window, finding survives.
    const AnalysisResult far = analyze(std::string(kTablePrologue) +
                                       R"src(
// gstat: allow(nonblocking-handler-parks)
//
//
//
long
sysIoctl(WaitQueue &wq) { return wq.wait(); }
)src");
    ASSERT_EQ(rulesOf(far),
              std::vector<std::string>{"nonblocking-handler-parks"});
    EXPECT_EQ(far.suppressed, 0);
}

TEST(Gstat, OpaqueClassBlocksUnqualifiedResolution)
{
    const char *wrapper = R"src(
class Wrapper
{
  public:
    long request(WaitQueue &wq) { return wq.wait(); }
};
long sysIoctl(int fd) { return request(fd); }
)src";
    // Without the annotation, `request(fd)` resolves into the class
    // and the handler appears to park.
    const AnalysisResult plain =
        analyze(std::string(kTablePrologue) + wrapper);
    EXPECT_EQ(rulesOf(plain),
              std::vector<std::string>{"nonblocking-handler-parks"});

    const AnalysisResult opaque =
        analyze(std::string(kTablePrologue) +
                "// gstat: opaque(Wrapper)\n" + wrapper);
    EXPECT_TRUE(opaque.findings.empty());
}

TEST(Gstat, QualifiedCallDoesNotResolveByShortName)
{
    // `ext::request` must not resolve to the in-tree parking
    // `Wrapper::request` — the qualifier does not match.
    const AnalysisResult r = analyze(std::string(kTablePrologue) + R"src(
class Wrapper
{
  public:
    long request(WaitQueue &wq) { return wq.wait(); }
};
long sysIoctl(int fd) { return ext::request(fd); }
)src");
    EXPECT_TRUE(r.findings.empty());
}

TEST(Gstat, NoreturnTerminatorCutsParkPropagation)
{
    // panic() happens to reach a park (its I/O path), but a call TO
    // panic never returns, so the handler cannot park through it.
    const AnalysisResult r = analyze(std::string(kTablePrologue) + R"src(
void panic(WaitQueue &wq) { wq.wait(); }
long sysIoctl(WaitQueue &wq) { panic(wq); return 0; }
)src");
    EXPECT_TRUE(r.findings.empty());
}

TEST(Gstat, SignGuardFlowPrunesDeadPark)
{
    // The pread-style flow: caller rejects off < 0, callee's park is
    // dead behind an off >= 0 early return. Guarded: clean.
    const char *callee = R"src(
long helper(WaitQueue &wq, long pos)
{
    if (pos >= 0)
        return -29;
    return wq.wait();
}
)src";
    const AnalysisResult guarded =
        analyze(std::string(kTablePrologue) + callee + R"src(
long sysIoctl(WaitQueue &wq, long off)
{
    if (off < 0)
        return -22;
    return helper(wq, off);
}
)src");
    EXPECT_TRUE(guarded.findings.empty());

    // Without the caller guard a negative offset reaches the park.
    const AnalysisResult unguarded =
        analyze(std::string(kTablePrologue) + callee + R"src(
long sysIoctl(WaitQueue &wq, long off)
{
    return helper(wq, off);
}
)src");
    EXPECT_EQ(rulesOf(unguarded),
              std::vector<std::string>{"nonblocking-handler-parks"});
}

TEST(Gstat, ArityRefinedResolution)
{
    // A one-argument call must not resolve to the parking
    // two-argument overload just because the short names collide.
    const AnalysisResult r = analyze(std::string(kTablePrologue) + R"src(
struct Stream
{
    WaitQueue wq_;
    long read(void *buf, unsigned long len) { return wq_.wait(); }
};
struct Device
{
    long read(unsigned long bytes) { return 0; }
};
long sysIoctl(Device &dev) { return dev.read(16); }
)src");
    EXPECT_TRUE(r.findings.empty());
}

TEST(Gstat, LockOrderCycleReportedOnceWithEdgeWitness)
{
    const AnalysisResult r = analyze(R"src(
struct S
{
    void ab()
    {
        std::lock_guard<std::mutex> g1(a_);
        std::lock_guard<std::mutex> g2(b_);
    }
    void ba()
    {
        std::lock_guard<std::mutex> g1(b_);
        std::lock_guard<std::mutex> g2(a_);
    }
    std::mutex a_;
    std::mutex b_;
};
)src");
    ASSERT_EQ(rulesOf(r), std::vector<std::string>{"lock-order-cycle"});
    EXPECT_FALSE(r.findings[0].witness.empty());
}

TEST(Gstat, UnpairedReleaseStore)
{
    const AnalysisResult r = analyze(R"src(
void badPublish(SyscallRing &r) { r.storeTailRelease(7); }
)src");
    EXPECT_EQ(rulesOf(r), std::vector<std::string>{"unpaired-release"});
}

TEST(Gstat, DeterministicAcrossRuns)
{
    const std::string text = std::string(kTablePrologue) +
        "long sysIoctl(WaitQueue &wq) { return wq.wait(); }\n";
    const AnalysisResult a = analyze(text);
    const AnalysisResult b = analyze(text);
    ASSERT_EQ(a.findings.size(), b.findings.size());
    for (std::size_t i = 0; i < a.findings.size(); ++i)
        EXPECT_EQ(a.findings[i].render(), b.findings[i].render());
}

TEST(Gstat, LoadTreeRejectsMissingRoot)
{
    std::vector<SourceFile> files;
    std::string err;
    EXPECT_FALSE(loadTree("definitely/not/a/dir", files, err));
    EXPECT_FALSE(err.empty());
}

TEST(Gstat, SeededDefectCorpusPasses)
{
    EXPECT_EQ(runSelfTest(), 0);
}

// ---- gflow: path-sensitive ownership / taint (DESIGN.md §16) ----------

TEST(Gflow, FdLeakOnErrorPathCarriesWitness)
{
    const AnalysisResult r = analyze(R"src(
int handler(Proc &p, File f) {
    int fd = p.fds.allocate(f);
    if (fd > 2)
        return -1;
    p.fds.close(fd);
    return 0;
}
)src");
    ASSERT_EQ(rulesOf(r),
              std::vector<std::string>{"must-release-fd"});
    const Finding &f = r.findings[0];
    ASSERT_GE(f.witness.size(), 2u);
    EXPECT_NE(f.witness.front().find("acquired"), std::string::npos);
    EXPECT_NE(f.witness.back().find("unreleased"), std::string::npos);
}

TEST(Gflow, UnboundedGpuLengthReachesMemcpy)
{
    const AnalysisResult r = analyze(R"src(
void copyOut(const SyscallArgs &args, char *dst, const char *src) {
    unsigned long len = args.a[2];
    std::memcpy(dst, src, len);
}
)src");
    EXPECT_EQ(rulesOf(r), std::vector<std::string>{"gpu-taint-mem"});
}

TEST(Gflow, ExplicitTemplateMinSanitizesCopySize)
{
    // `std::min<unsigned long>(...)` carries an explicit template
    // argument list; the extractor must still see the call so the
    // min/clamp sanitizer applies.
    const AnalysisResult r = analyze(R"src(
void copyOut(const SyscallArgs &args, char *dst, const Buf &b) {
    unsigned long len = args.a[2];
    const unsigned long n = std::min<unsigned long>(len, b.size);
    std::memcpy(dst, b.data, n);
}
)src");
    EXPECT_TRUE(r.findings.empty());
}

TEST(Gflow, ShortCircuitGuardInOneConditionIsClean)
{
    // `fd < 0 || fd >= n || slots[fd] == 0`: each operand is scanned
    // under the accumulated edge facts of the operands to its left.
    const AnalysisResult r = analyze(R"src(
int get(const SyscallArgs &args, Table &t) {
    int fd = args.as<int>(0);
    if (fd < 0 || fd >= t.n || t.slots[fd] == 0)
        return -1;
    return t.slots[fd];
}
)src");
    EXPECT_TRUE(r.findings.empty());
}

TEST(Gflow, CallReturnLaundersArgumentTaint)
{
    // `m.find(addr)` returns the callee's output, not raw GPU data;
    // the GENESYS_ASSERT bound then sanitizes the derived index.
    const AnalysisResult r = analyze(R"src(
void drop(const SyscallArgs &args, Mm &m) {
    unsigned long addr = args.a[0];
    Vma *vma = m.find(addr);
    unsigned long first = addr / 4096;
    GENESYS_ASSERT(first < vma->pages, "bounds");
    vma->state[first] = 1;
}
)src");
    EXPECT_TRUE(r.findings.empty());
}

TEST(Gflow, AssociativeContainerSubscriptIsClean)
{
    // A base used with keyed-container vocabulary (`contains`)
    // subscripts by key, not position.
    const AnalysisResult r = analyze(R"src(
void track(const SyscallArgs &args, Reg &r) {
    int fd = args.as<int>(0);
    if (r.interests.contains(fd))
        return;
    r.interests[fd] = 1;
}
)src");
    EXPECT_TRUE(r.findings.empty());
}

TEST(Gflow, NetSegSlotOverwriteReleasesLoan)
{
    // The gkv reclaim idiom: a subscript store INTO the loan
    // container drops that slot's loan; the assert's sign fact rules
    // out the zero-iteration path.
    const AnalysisResult r = analyze(R"src(
long drain(Sock &s) {
    NetSeg segs[4];
    long got = s.readSegments(segs, 4, false);
    GENESYS_ASSERT(got > 0, "drain");
    for (long i = 0; i < got; ++i)
        segs[i] = NetSeg{};
    return got;
}
)src");
    EXPECT_TRUE(r.findings.empty());
}

TEST(Gflow, InterproceduralTaintChainNamesCallee)
{
    const AnalysisResult r = analyze(R"src(
void sink(char *dst, const char *src, unsigned long n) {
    std::memcpy(dst, src, n);
}
long entry(const SyscallArgs &args, char *d, const char *s) {
    sink(d, s, args.a[2]);
    return 0;
}
)src");
    ASSERT_EQ(rulesOf(r), std::vector<std::string>{"gpu-taint-mem"});
    bool namesCallee = false;
    for (const std::string &step : r.findings[0].witness)
        if (step.find("sink") != std::string::npos)
            namesCallee = true;
    EXPECT_TRUE(namesCallee);
}

} // namespace
