/**
 * @file
 * Property and stress tests: randomized sequences checked against
 * reference models or invariants, parameterized over seeds.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "core/params.hh"
#include "core/slot.hh"
#include "gpu/gpu.hh"
#include "mem/cache_model.hh"
#include "osk/mm.hh"
#include "osk/pipe.hh"
#include "osk/process.hh"
#include "osk/syscalls.hh"
#include "sim/sim.hh"
#include "support/random.hh"
#include "workloads/memcached.hh"

namespace genesys
{
namespace
{

class Seeded : public ::testing::TestWithParam<std::uint64_t>
{};

// ------------------------------------------------------ EventQueue stress

TEST_P(Seeded, EventQueueExecutesInNondecreasingTimeOrder)
{
    Random rng(GetParam());
    sim::EventQueue eq;
    std::vector<Tick> executed;
    std::vector<sim::EventId> live;
    for (int i = 0; i < 2000; ++i) {
        const int action = static_cast<int>(rng.below(10));
        if (action < 6) {
            const Tick when = eq.now() + rng.below(1000);
            live.push_back(eq.schedule(
                when, [&executed, &eq] { executed.push_back(eq.now()); }));
        } else if (action < 8 && !live.empty()) {
            eq.deschedule(live[rng.below(live.size())]);
        } else {
            eq.runOne();
        }
    }
    eq.run();
    EXPECT_TRUE(std::is_sorted(executed.begin(), executed.end()));
    EXPECT_TRUE(eq.empty());
}

// ------------------------------------------- file ops vs reference model

TEST_P(Seeded, RandomFileOpsMatchReferenceModel)
{
    Random rng(GetParam() * 31 + 7);
    sim::Sim sim;
    osk::Kernel kernel(sim, osk::KernelConfig{});
    osk::Process &proc = kernel.createProcess();
    kernel.vfs().createFile("/model");

    auto sys = [&](int num, osk::SyscallArgs args) {
        std::int64_t ret = -1;
        sim.spawn([](osk::Kernel &k, osk::Process &p, int n,
                     osk::SyscallArgs a, std::int64_t &out)
                      -> sim::Task<> {
            out = co_await k.doSyscall(p, n, a);
        }(kernel, proc, num, args, ret));
        sim.run();
        return ret;
    };

    const auto fd = sys(osk::sysno::open,
                        osk::makeArgs("/model", osk::O_RDWR));
    ASSERT_GE(fd, 0);

    std::vector<std::uint8_t> model; // reference file contents
    std::uint64_t model_pos = 0;

    for (int step = 0; step < 300; ++step) {
        const int op = static_cast<int>(rng.below(4));
        std::uint8_t buf[64];
        const std::uint64_t len = rng.below(sizeof buf) + 1;
        switch (op) {
          case 0: { // write at current position
            for (std::uint64_t i = 0; i < len; ++i)
                buf[i] = static_cast<std::uint8_t>(rng.below(256));
            const auto n =
                sys(osk::sysno::write, osk::makeArgs(fd, buf, len));
            ASSERT_EQ(n, static_cast<std::int64_t>(len));
            if (model.size() < model_pos + len)
                model.resize(model_pos + len, 0);
            std::copy(buf, buf + len, model.begin() + model_pos);
            model_pos += len;
            break;
          }
          case 1: { // read at current position
            const auto n =
                sys(osk::sysno::read, osk::makeArgs(fd, buf, len));
            const std::uint64_t expect =
                model_pos >= model.size()
                    ? 0
                    : std::min<std::uint64_t>(len,
                                              model.size() - model_pos);
            ASSERT_EQ(n, static_cast<std::int64_t>(expect));
            for (std::uint64_t i = 0; i < expect; ++i)
                ASSERT_EQ(buf[i], model[model_pos + i]);
            model_pos += expect;
            break;
          }
          case 2: { // lseek
            const std::uint64_t target =
                rng.below(model.size() + 64);
            ASSERT_EQ(sys(osk::sysno::lseek,
                          osk::makeArgs(fd, target, osk::SEEK_SET_)),
                      static_cast<std::int64_t>(target));
            model_pos = target;
            break;
          }
          case 3: { // pwrite: must not disturb the position
            const std::uint64_t off = rng.below(model.size() + 16);
            for (std::uint64_t i = 0; i < len; ++i)
                buf[i] = static_cast<std::uint8_t>(rng.below(256));
            ASSERT_EQ(sys(osk::sysno::pwrite64,
                          osk::makeArgs(fd, buf, len, off)),
                      static_cast<std::int64_t>(len));
            if (model.size() < off + len)
                model.resize(off + len, 0);
            std::copy(buf, buf + len, model.begin() + off);
            break;
          }
        }
    }
    // Final content equality.
    auto *f = static_cast<osk::RegularFile *>(
        kernel.vfs().resolve("/model"));
    ASSERT_EQ(f->size(), model.size());
    EXPECT_TRUE(std::equal(model.begin(), model.end(),
                           f->data().begin()));
}

// -------------------------------------------------- memory-manager fuzz

TEST_P(Seeded, RandomMmInvariantsHold)
{
    Random rng(GetParam() * 977 + 3);
    sim::Sim sim;
    osk::OskParams params;
    const std::uint64_t limit_pages = 64;
    osk::MemoryManager mm(sim.events(), params,
                          limit_pages * osk::kPageSize);

    struct Mapping
    {
        osk::Addr base;
        std::uint64_t pages;
    };
    std::vector<Mapping> mappings;

    for (int step = 0; step < 400; ++step) {
        const int op = static_cast<int>(rng.below(10));
        if (op < 3) { // mmap
            const std::uint64_t pages = rng.below(32) + 1;
            const osk::Addr base =
                mm.mmapAnon(pages * osk::kPageSize);
            ASSERT_NE(base, 0u);
            mappings.push_back({base, pages});
        } else if (op < 6 && !mappings.empty()) { // touch a range
            const auto &m = mappings[rng.below(mappings.size())];
            const std::uint64_t first = rng.below(m.pages);
            const std::uint64_t count =
                rng.below(m.pages - first) + 1;
            mm.touchUntimed(m.base + first * osk::kPageSize,
                            count * osk::kPageSize);
        } else if (op < 8 && !mappings.empty()) { // madvise
            const auto &m = mappings[rng.below(mappings.size())];
            ASSERT_EQ(mm.madvise(m.base, m.pages * osk::kPageSize,
                                 osk::MADV_DONTNEED_),
                      0);
        } else if (op == 8 && !mappings.empty()) { // partial munmap
            const std::size_t idx = rng.below(mappings.size());
            const Mapping m = mappings[idx];
            const std::uint64_t first = rng.below(m.pages);
            const std::uint64_t count =
                rng.below(m.pages - first) + 1;
            ASSERT_TRUE(mm.munmap(m.base + first * osk::kPageSize,
                                  count * osk::kPageSize));
            // Mirror the split in the model: surviving head and/or
            // tail become separate mappings.
            mappings.erase(mappings.begin() +
                           static_cast<std::ptrdiff_t>(idx));
            if (first > 0)
                mappings.push_back({m.base, first});
            if (first + count < m.pages)
                mappings.push_back(
                    {m.base + (first + count) * osk::kPageSize,
                     m.pages - first - count});
        } else if (!mappings.empty()) { // full munmap
            const std::size_t idx = rng.below(mappings.size());
            ASSERT_TRUE(mm.munmap(mappings[idx].base,
                                  mappings[idx].pages *
                                      osk::kPageSize));
            mappings.erase(mappings.begin() +
                           static_cast<std::ptrdiff_t>(idx));
        }
        // Invariants: RSS never exceeds the physical limit; peak is a
        // high watermark; RSS fits within the mapped footprint.
        ASSERT_LE(mm.rssBytes(), limit_pages * osk::kPageSize);
        ASSERT_GE(mm.peakRssBytes(), mm.rssBytes());
        std::uint64_t mapped = 0;
        for (const auto &m : mappings)
            mapped += m.pages * osk::kPageSize;
        ASSERT_LE(mm.rssBytes() + mm.swappedBytes(), mapped);
        ASSERT_EQ(mm.vmaCount(), mappings.size());
    }
}

// ---------------------------------------------- slot FSM random walk

TEST_P(Seeded, SlotFsmCheckerAcceptsLegalAndPanicsOnIllegalEdges)
{
    // Drive a SyscallSlot with a random mix of its real entry points
    // and adversarial forced transitions, against a model of Fig 6.
    // Legal sequences must advance silently; every illegal edge must
    // panic and leave the slot state unchanged.
    Random rng(GetParam() * 67 + 11);
    core::SyscallSlot slot;
    core::SlotState model = core::SlotState::Free;
    bool blocking = true;
    std::uint64_t legal = 0;

    for (int step = 0; step < 5000; ++step) {
        if (rng.chance(0.3)) {
            // Adversarial forced edge to a random target state.
            const auto to =
                static_cast<core::SlotState>(rng.below(5));
            if (core::slotTransitionLegal(model, to, blocking)) {
                slot.forceState(to);
                model = to;
                ++legal;
            } else {
                EXPECT_THROW(slot.forceState(to), PanicError);
                EXPECT_EQ(slot.state(), model);
            }
            continue;
        }
        switch (rng.below(5)) {
          case 0: { // GPU claim
            const bool ok = slot.claim();
            EXPECT_EQ(ok, model == core::SlotState::Free);
            if (ok) {
                model = core::SlotState::Populating;
                ++legal;
            }
            break;
          }
          case 1: { // GPU publish
            const bool will_block = rng.chance(0.5);
            if (model == core::SlotState::Populating) {
                slot.publish(osk::sysno::getpid, {}, will_block,
                             core::WaitMode::Polling, 0);
                blocking = will_block;
                model = core::SlotState::Ready;
                ++legal;
            } else {
                EXPECT_THROW(slot.publish(osk::sysno::getpid, {},
                                          will_block,
                                          core::WaitMode::Polling, 0),
                             PanicError);
                EXPECT_EQ(slot.state(), model);
            }
            break;
          }
          case 2: { // CPU take
            const bool ok = slot.beginProcessing();
            EXPECT_EQ(ok, model == core::SlotState::Ready);
            if (ok) {
                model = core::SlotState::Processing;
                ++legal;
            }
            break;
          }
          case 3: { // CPU complete
            if (model == core::SlotState::Processing) {
                slot.complete(0);
                model = blocking ? core::SlotState::Finished
                                 : core::SlotState::Free;
                ++legal;
            } else {
                EXPECT_THROW(slot.complete(0), PanicError);
                EXPECT_EQ(slot.state(), model);
            }
            break;
          }
          case 4: { // GPU consume
            if (model == core::SlotState::Finished) {
                (void)slot.consume();
                model = core::SlotState::Free;
                ++legal;
            } else {
                EXPECT_THROW((void)slot.consume(), PanicError);
                EXPECT_EQ(slot.state(), model);
            }
            break;
          }
        }
    }
    // The transitions counter counts exactly the checker-approved
    // edges — no illegal attempt slipped through.
    EXPECT_EQ(slot.transitions(), legal);
    EXPECT_GT(legal, 0u);
}

TEST_P(Seeded, ShardedAreaQuiescenceMatchesPerSlotModel)
{
    // Random-walk a multi-shard SyscallArea through real slot entry
    // points against a per-slot model, checking after every step that
    // per-shard quiescence agrees with the model and that the shard
    // maps place each slot where the geometry says it lives.
    Random rng(GetParam() * 131 + 5);
    gpu::GpuConfig gcfg;
    gcfg.numCus = 4;
    gcfg.maxWavesPerCu = 2;
    gcfg.wavefrontSize = 4;
    core::GenesysParams params;
    params.areaShards = 2;
    core::SyscallArea area(gcfg, params);
    const auto n = static_cast<std::uint32_t>(area.slotCount());
    ASSERT_EQ(n, 4u * 2 * 4);
    ASSERT_EQ(area.shardSlotCount() * 2, n);

    std::vector<core::SlotState> model(n, core::SlotState::Free);
    std::vector<bool> blocking(n, true);
    // Slot index -> owning shard is static geometry: item slots of the
    // first two CUs' waves sit in shard 0, the rest in shard 1.
    for (std::uint32_t i = 0; i < n; ++i) {
        EXPECT_EQ(area.shardOfSlot(i),
                  i < area.shardSlotCount() ? 0u : 1u);
    }

    for (int step = 0; step < 4000; ++step) {
        const auto i = static_cast<std::uint32_t>(rng.below(n));
        auto &slot = area.slot(i);
        switch (model[i]) {
          case core::SlotState::Free:
            if (rng.chance(0.7)) {
                EXPECT_TRUE(slot.claim());
                model[i] = core::SlotState::Populating;
            }
            break;
          case core::SlotState::Populating: {
            const bool b = rng.chance(0.5);
            const auto wave = i / gcfg.wavefrontSize;
            slot.publish(osk::sysno::getpid, {}, b,
                         core::WaitMode::Polling, wave);
            blocking[i] = b;
            model[i] = core::SlotState::Ready;
            // The slot remembers a wave of its own shard.
            EXPECT_EQ(area.shardOfWave(slot.hwWaveSlot()),
                      area.shardOfSlot(i));
            break;
          }
          case core::SlotState::Ready:
            EXPECT_TRUE(slot.beginProcessing());
            model[i] = core::SlotState::Processing;
            break;
          case core::SlotState::Processing:
            slot.complete(0);
            model[i] = blocking[i] ? core::SlotState::Finished
                                   : core::SlotState::Free;
            break;
          case core::SlotState::Finished:
            (void)slot.consume();
            model[i] = core::SlotState::Free;
            break;
        }
        for (std::uint32_t s = 0; s < 2; ++s) {
            bool model_quiescent = true;
            const auto first = area.shardFirstSlot(s);
            for (std::uint32_t k = 0; k < area.shardSlotCount(); ++k) {
                model_quiescent &=
                    model[first + k] == core::SlotState::Free;
            }
            ASSERT_EQ(area.quiescent(s), model_quiescent)
                << "shard " << s << " at step " << step;
        }
        ASSERT_EQ(area.quiescent(),
                  area.quiescent(0) && area.quiescent(1));
    }

    // Drain everything; both shards must come back to quiescent.
    for (std::uint32_t i = 0; i < n; ++i) {
        auto &slot = area.slot(i);
        if (model[i] == core::SlotState::Populating) {
            slot.publish(osk::sysno::getpid, {}, true,
                         core::WaitMode::Polling, 0);
            blocking[i] = true;
            model[i] = core::SlotState::Ready;
        }
        if (model[i] == core::SlotState::Ready) {
            slot.beginProcessing();
            model[i] = core::SlotState::Processing;
        }
        if (model[i] == core::SlotState::Processing) {
            slot.complete(0);
            model[i] = blocking[i] ? core::SlotState::Finished
                                   : core::SlotState::Free;
        }
        if (model[i] == core::SlotState::Finished) {
            (void)slot.consume();
            model[i] = core::SlotState::Free;
        }
    }
    EXPECT_TRUE(area.quiescent(0));
    EXPECT_TRUE(area.quiescent(1));
    EXPECT_TRUE(area.quiescent());
}

// --------------------------------------------------------- cache property

TEST_P(Seeded, LargerCacheNeverMissesMoreOnSameTrace)
{
    // LRU inclusion property: doubling capacity (same line size and
    // set count scaling via associativity) cannot increase misses.
    Random rng(GetParam() * 13 + 1);
    std::vector<mem::Addr> trace;
    for (int i = 0; i < 5000; ++i)
        trace.push_back(rng.below(512) * 64);

    auto misses = [&trace](std::uint32_t assoc) {
        mem::CacheParams p;
        p.lineBytes = 64;
        p.associativity = assoc;
        p.sizeBytes = std::uint64_t(64) * 16 * assoc; // 16 sets
        mem::CacheModel c(p);
        for (auto a : trace)
            c.access(a);
        return c.misses();
    };
    EXPECT_GE(misses(2), misses(4));
    EXPECT_GE(misses(4), misses(8));
    EXPECT_GE(misses(8), misses(16));
}

// ----------------------------------------------------------- pipe stream

TEST_P(Seeded, PipePreservesByteStreamUnderRandomInterleaving)
{
    Random rng(GetParam() * 101 + 9);
    sim::Sim sim;
    osk::PipeInode pipe(sim.events(), /*capacity=*/128);
    pipe.addReader();
    pipe.addWriter();

    // Writer pushes a known sequence in random-sized chunks with
    // random pauses; reader pulls random-sized chunks. FIFO integrity
    // must hold regardless of interleaving.
    const std::size_t total = 4096;
    std::vector<std::uint8_t> sent(total);
    for (std::size_t i = 0; i < total; ++i)
        sent[i] = static_cast<std::uint8_t>(i * 7 + 1);
    std::vector<std::uint8_t> received;

    sim.spawn([](sim::Sim &s, osk::PipeInode &p,
                 const std::vector<std::uint8_t> &data, Random &r)
                  -> sim::Task<> {
        std::size_t off = 0;
        while (off < data.size()) {
            const std::size_t n =
                std::min<std::size_t>(r.below(96) + 1,
                                      data.size() - off);
            const auto wrote =
                co_await p.writeBlocking(data.data() + off, n);
            EXPECT_GT(wrote, 0);
            if (wrote <= 0)
                co_return;
            off += static_cast<std::size_t>(wrote);
            if (r.chance(0.3))
                co_await s.delay(r.below(100) + 1);
        }
        p.closeWriter();
    }(sim, pipe, sent, rng));

    Random rng2(GetParam() + 5);
    sim.spawn([](sim::Sim &s, osk::PipeInode &p,
                 std::vector<std::uint8_t> &out, Random &r)
                  -> sim::Task<> {
        std::uint8_t buf[128];
        for (;;) {
            const auto n = co_await p.readBlocking(
                buf, r.below(sizeof buf) + 1);
            if (n == 0)
                co_return;
            out.insert(out.end(), buf, buf + n);
            if (r.chance(0.3))
                co_await s.delay(r.below(100) + 1);
        }
    }(sim, pipe, received, rng2));

    sim.run();
    ASSERT_EQ(received.size(), sent.size());
    EXPECT_EQ(received, sent);
}

// ----------------------------------------------------------- wire fuzz

TEST_P(Seeded, McDecodeNeverCrashesOnGarbage)
{
    Random rng(GetParam() * 41 + 17);
    for (int i = 0; i < 2000; ++i) {
        std::vector<std::uint8_t> wire(rng.below(64));
        for (auto &b : wire)
            b = static_cast<std::uint8_t>(rng.below(256));
        const auto msg = workloads::mcDecode(wire);
        if (msg.has_value()) {
            // A successful decode must re-encode consistently.
            const auto round = workloads::mcEncode(
                msg->op, msg->key, msg->value);
            EXPECT_EQ(round.size(), wire.size());
        }
    }
}

TEST_P(Seeded, McEncodeDecodeRoundTrip)
{
    Random rng(GetParam() * 3 + 2);
    for (int i = 0; i < 200; ++i) {
        const std::string key = rng.lowerAlpha(rng.below(40));
        std::vector<std::uint8_t> value(rng.below(256));
        for (auto &b : value)
            b = static_cast<std::uint8_t>(rng.below(256));
        const auto wire =
            workloads::mcEncode(workloads::McOp::Set, key, value);
        const auto msg = workloads::mcDecode(wire);
        ASSERT_TRUE(msg.has_value());
        EXPECT_EQ(msg->op, workloads::McOp::Set);
        EXPECT_EQ(msg->key, key);
        EXPECT_EQ(msg->value, value);
    }
}

// ------------------------------------------------------- barrier property

TEST_P(Seeded, BarrierReleasesExactlyTogetherUnderRandomArrivals)
{
    Random rng(GetParam() * 19 + 23);
    sim::Sim sim;
    const std::size_t parties = rng.below(14) + 2;
    sim::Barrier bar(sim.events(), parties);
    std::vector<Tick> out;
    Tick latest_arrival = 0;
    for (std::size_t i = 0; i < parties; ++i) {
        const Tick arrive = rng.below(10000);
        latest_arrival = std::max(latest_arrival, arrive);
        sim.spawn([](sim::Sim &s, sim::Barrier &b, Tick when,
                     std::vector<Tick> &times) -> sim::Task<> {
            co_await s.delay(when);
            co_await b.arriveAndWait();
            times.push_back(s.now());
        }(sim, bar, arrive, out));
    }
    sim.run();
    ASSERT_EQ(out.size(), parties);
    for (Tick t : out)
        EXPECT_EQ(t, latest_arrival);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Seeded,
                         ::testing::Values(1u, 2u, 3u, 42u, 1337u));

} // namespace
} // namespace genesys
