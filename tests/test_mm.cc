/**
 * @file
 * Unit tests for the memory manager: mappings, faults, RSS accounting,
 * madvise, and swap behaviour (the substrate behind Figure 11).
 */

#include <gtest/gtest.h>

#include "osk/devices.hh"
#include "osk/mm.hh"
#include "osk/params.hh"
#include "sim/sim.hh"
#include "support/logging.hh"

namespace genesys::osk
{
namespace
{

class MmTest : public ::testing::Test
{
  protected:
    MmTest() : mm_(sim_.events(), params_, 1ull << 40) {}

    sim::Sim sim_;
    OskParams params_;
    MemoryManager mm_;
};

TEST_F(MmTest, MmapReturnsPageAlignedDisjointRanges)
{
    const Addr a = mm_.mmapAnon(10 * kPageSize);
    const Addr b = mm_.mmapAnon(4 * kPageSize);
    ASSERT_NE(a, 0u);
    ASSERT_NE(b, 0u);
    EXPECT_EQ(a % kPageSize, 0u);
    EXPECT_EQ(b % kPageSize, 0u);
    EXPECT_GE(b, a + 10 * kPageSize);
    EXPECT_EQ(mm_.vmaCount(), 2u);
}

TEST_F(MmTest, MmapZeroLengthFails)
{
    EXPECT_EQ(mm_.mmapAnon(0), 0u);
}

TEST_F(MmTest, TouchFaultsInPagesAndGrowsRss)
{
    const Addr a = mm_.mmapAnon(8 * kPageSize);
    EXPECT_EQ(mm_.rssBytes(), 0u);
    mm_.touchUntimed(a, 3 * kPageSize);
    EXPECT_EQ(mm_.rssBytes(), 3 * kPageSize);
    EXPECT_EQ(mm_.stats().minorFaults, 3u);
    // Re-touching present pages is free.
    mm_.touchUntimed(a, 3 * kPageSize);
    EXPECT_EQ(mm_.stats().minorFaults, 3u);
}

TEST_F(MmTest, TouchChargesFaultTime)
{
    const Addr a = mm_.mmapAnon(4 * kPageSize);
    sim_.spawn([](MemoryManager &mm, Addr base) -> sim::Task<> {
        co_await mm.touch(base, 2 * kPageSize);
    }(mm_, a));
    const Tick end = sim_.run();
    EXPECT_EQ(end, 2 * params_.minorFault);
}

TEST_F(MmTest, TouchUnmappedPanics)
{
    EXPECT_THROW(mm_.touchUntimed(0xdead000, kPageSize), PanicError);
}

TEST_F(MmTest, TouchBeyondMappingPanics)
{
    const Addr a = mm_.mmapAnon(2 * kPageSize);
    EXPECT_THROW(mm_.touchUntimed(a, 3 * kPageSize), PanicError);
}

TEST_F(MmTest, MunmapReleasesRss)
{
    const Addr a = mm_.mmapAnon(4 * kPageSize);
    mm_.touchUntimed(a, 4 * kPageSize);
    EXPECT_EQ(mm_.rssBytes(), 4 * kPageSize);
    EXPECT_TRUE(mm_.munmap(a, 4 * kPageSize));
    EXPECT_EQ(mm_.rssBytes(), 0u);
    EXPECT_EQ(mm_.vmaCount(), 0u);
    EXPECT_FALSE(mm_.munmap(a, 4 * kPageSize));
}

TEST_F(MmTest, PartialMunmapPrefixLeavesTail)
{
    const Addr a = mm_.mmapAnon(8 * kPageSize);
    mm_.touchUntimed(a, 8 * kPageSize);
    EXPECT_TRUE(mm_.munmap(a, 3 * kPageSize));
    EXPECT_EQ(mm_.vmaCount(), 1u);
    EXPECT_EQ(mm_.rssBytes(), 5 * kPageSize);
    // The surviving tail still works...
    mm_.touchUntimed(a + 3 * kPageSize, 5 * kPageSize);
    // ...and the unmapped prefix is really gone.
    EXPECT_THROW(mm_.touchUntimed(a, kPageSize), PanicError);
}

TEST_F(MmTest, PartialMunmapSuffixLeavesHead)
{
    const Addr a = mm_.mmapAnon(8 * kPageSize);
    mm_.touchUntimed(a, 8 * kPageSize);
    EXPECT_TRUE(mm_.munmap(a + 6 * kPageSize, 2 * kPageSize));
    EXPECT_EQ(mm_.vmaCount(), 1u);
    EXPECT_EQ(mm_.rssBytes(), 6 * kPageSize);
    mm_.touchUntimed(a, 6 * kPageSize);
    EXPECT_THROW(mm_.touchUntimed(a + 6 * kPageSize, kPageSize),
                 PanicError);
}

TEST_F(MmTest, PartialMunmapMiddleSplitsVmaInTwo)
{
    const Addr a = mm_.mmapAnon(8 * kPageSize);
    mm_.touchUntimed(a, 8 * kPageSize);
    EXPECT_TRUE(mm_.munmap(a + 2 * kPageSize, 3 * kPageSize));
    EXPECT_EQ(mm_.vmaCount(), 2u);
    EXPECT_EQ(mm_.rssBytes(), 5 * kPageSize);
    // Head [0,2) and tail [5,8) both survive with their pages.
    mm_.touchUntimed(a, 2 * kPageSize);
    mm_.touchUntimed(a + 5 * kPageSize, 3 * kPageSize);
    EXPECT_THROW(mm_.touchUntimed(a + 2 * kPageSize, kPageSize),
                 PanicError);
    // No new faults were needed: the surviving pages stayed present.
    EXPECT_EQ(mm_.stats().minorFaults, 8u);
    // The pieces can then be unmapped independently.
    EXPECT_TRUE(mm_.munmap(a, 2 * kPageSize));
    EXPECT_TRUE(mm_.munmap(a + 5 * kPageSize, 3 * kPageSize));
    EXPECT_EQ(mm_.vmaCount(), 0u);
    EXPECT_EQ(mm_.rssBytes(), 0u);
}

TEST_F(MmTest, PartialMunmapInteriorBaseWithZeroLengthDropsTail)
{
    const Addr a = mm_.mmapAnon(6 * kPageSize);
    EXPECT_TRUE(mm_.munmap(a + 4 * kPageSize, 0));
    EXPECT_EQ(mm_.vmaCount(), 1u);
    mm_.touchUntimed(a, 4 * kPageSize);
    EXPECT_THROW(mm_.touchUntimed(a + 4 * kPageSize, kPageSize),
                 PanicError);
}

TEST_F(MmTest, MunmapRejectsMisalignedAndSpillingRanges)
{
    const Addr a = mm_.mmapAnon(4 * kPageSize);
    EXPECT_FALSE(mm_.munmap(a + 512, kPageSize)); // misaligned
    EXPECT_FALSE(mm_.munmap(a + 2 * kPageSize,
                            4 * kPageSize)); // spills past the end
    EXPECT_FALSE(mm_.munmap(0xdead000, kPageSize)); // unmapped
    EXPECT_EQ(mm_.vmaCount(), 1u); // nothing was disturbed
    mm_.touchUntimed(a, 4 * kPageSize);
    EXPECT_EQ(mm_.rssBytes(), 4 * kPageSize);
}

TEST_F(MmTest, MadviseDontneedDropsPages)
{
    const Addr a = mm_.mmapAnon(8 * kPageSize);
    mm_.touchUntimed(a, 8 * kPageSize);
    EXPECT_EQ(mm_.madvise(a, 4 * kPageSize, MADV_DONTNEED_), 0);
    EXPECT_EQ(mm_.rssBytes(), 4 * kPageSize);
    EXPECT_EQ(mm_.lastReleasedPages(), 4u);
    // Released pages fault back in as minor faults (zero-filled).
    mm_.touchUntimed(a, 8 * kPageSize);
    EXPECT_EQ(mm_.rssBytes(), 8 * kPageSize);
}

TEST_F(MmTest, MadviseValidation)
{
    const Addr a = mm_.mmapAnon(4 * kPageSize);
    EXPECT_EQ(mm_.madvise(a, kPageSize, 99), -EINVAL);
    EXPECT_EQ(mm_.madvise(a + 1, kPageSize, MADV_DONTNEED_), -EINVAL);
    EXPECT_EQ(mm_.madvise(0xdead000, kPageSize, MADV_DONTNEED_),
              -EINVAL);
    EXPECT_EQ(mm_.madvise(a, kPageSize, MADV_WILLNEED_), 0);
}

TEST_F(MmTest, PeakRssTracksHighWatermark)
{
    const Addr a = mm_.mmapAnon(8 * kPageSize);
    mm_.touchUntimed(a, 8 * kPageSize);
    mm_.madvise(a, 8 * kPageSize, MADV_DONTNEED_);
    EXPECT_EQ(mm_.rssBytes(), 0u);
    EXPECT_EQ(mm_.peakRssBytes(), 8 * kPageSize);
}

TEST(MmSwap, ExceedingPhysLimitSwapsOut)
{
    sim::Sim sim;
    OskParams params;
    MemoryManager mm(sim.events(), params, 4 * kPageSize);
    const Addr a = mm.mmapAnon(8 * kPageSize);
    mm.touchUntimed(a, 8 * kPageSize);
    // Only 4 pages fit; the rest were pushed to swap.
    EXPECT_EQ(mm.rssBytes(), 4 * kPageSize);
    EXPECT_EQ(mm.swappedBytes(), 4 * kPageSize);
    EXPECT_GE(mm.stats().swapOuts, 4u);
}

TEST(MmSwap, SwappedPagesMajorFaultBack)
{
    sim::Sim sim;
    OskParams params;
    MemoryManager mm(sim.events(), params, 4 * kPageSize);
    const Addr a = mm.mmapAnon(8 * kPageSize);
    mm.touchUntimed(a, 8 * kPageSize); // pages 0-3 swapped out
    const auto majors_before = mm.stats().majorFaults;
    mm.touchUntimed(a, kPageSize); // page 0 comes back from swap
    EXPECT_EQ(mm.stats().majorFaults, majors_before + 1);
    EXPECT_GT(mm.stats().swapStall, 0u);
}

TEST(MmSwap, MadviseBreaksThrashing)
{
    // The Fig 11 story: working set > phys limit thrashes; madvising
    // cold ranges away lets the hot range stay resident.
    sim::Sim sim;
    OskParams params;
    MemoryManager mm(sim.events(), params, 64 * kPageSize);
    const Addr arena = mm.mmapAnon(128 * kPageSize);
    mm.touchUntimed(arena, 128 * kPageSize);
    const auto swap_before = mm.stats().swapOuts;
    EXPECT_GT(swap_before, 0u);
    // Drop the cold half, then iterate over the hot half: no new swaps.
    mm.madvise(arena, 64 * kPageSize, MADV_DONTNEED_);
    const Addr hot = arena + 64 * kPageSize;
    mm.touchUntimed(hot, 64 * kPageSize);
    mm.touchUntimed(hot, 64 * kPageSize);
    EXPECT_EQ(mm.stats().swapOuts, swap_before);
}

TEST(MmDevice, DeviceMappingResolvesToBackingBytes)
{
    sim::Sim sim;
    OskParams params;
    MemoryManager mm(sim.events(), params, 1ull << 30);
    FramebufferDevice fb(8, 8, 32); // 256 bytes
    const Addr a = mm.mmapDevice(&fb);
    ASSERT_NE(a, 0u);
    std::uint8_t *mem = mm.resolve(a, 256);
    ASSERT_NE(mem, nullptr);
    mem[7] = 0x5A;
    EXPECT_EQ(fb.pixels()[7], 0x5A);
    // Device pages are pinned resident.
    EXPECT_EQ(mm.rssBytes(), kPageSize);
    // And madvise cannot drop them.
    EXPECT_EQ(mm.madvise(a, kPageSize, MADV_DONTNEED_), -EINVAL);
}

TEST(MmDevice, AnonymousMappingDoesNotResolve)
{
    sim::Sim sim;
    OskParams params;
    MemoryManager mm(sim.events(), params, 1ull << 30);
    const Addr a = mm.mmapAnon(kPageSize);
    EXPECT_EQ(mm.resolve(a, 16), nullptr);
}

} // namespace
} // namespace genesys::osk
