/**
 * @file
 * Tests for the syscall dispatch table, exercised through a full Kernel
 * in the context of a process — the same path GENESYS worker threads
 * take when servicing GPU requests.
 */

#include <gtest/gtest.h>

#include <cerrno>
#include <cstring>
#include <string>

#include "osk/classification.hh"
#include "osk/devices.hh"
#include "osk/process.hh"
#include "osk/syscalls.hh"
#include "sim/sim.hh"

namespace genesys::osk
{
namespace
{

class SyscallTest : public ::testing::Test
{
  protected:
    SyscallTest() : kernel_(sim_, KernelConfig{}), proc_(&kernel_.createProcess())
    {}

    /** Run one syscall to completion and return its result. */
    std::int64_t
    sys(int num, const SyscallArgs &args)
    {
        std::int64_t ret = -1;
        sim_.spawn([](Kernel &k, Process &p, int n, SyscallArgs a,
                      std::int64_t &out) -> sim::Task<> {
            out = co_await k.doSyscall(p, n, a);
        }(kernel_, *proc_, num, args, ret));
        sim_.run();
        return ret;
    }

    sim::Sim sim_;
    Kernel kernel_;
    Process *proc_;
};

TEST_F(SyscallTest, UnknownSyscallReturnsEnosys)
{
    EXPECT_EQ(sys(9999, {}), -ENOSYS);
}

TEST_F(SyscallTest, TableNamesAndCount)
{
    EXPECT_TRUE(kernel_.syscalls().supported(sysno::pread64));
    EXPECT_EQ(kernel_.syscalls().name(sysno::madvise), "madvise");
    EXPECT_EQ(kernel_.syscalls().name(777), "sys_777");
    // The paper implements 14 calls + ioctl + socket/bind plumbing.
    EXPECT_GE(kernel_.syscalls().count(), 17u);
}

TEST_F(SyscallTest, OpenReadClose)
{
    kernel_.vfs().createFile("/data/f.txt")->setData("file-content");
    const std::int64_t fd =
        sys(sysno::open, makeArgs("/data/f.txt", O_RDONLY));
    ASSERT_GE(fd, 0);
    char buf[64] = {};
    EXPECT_EQ(sys(sysno::read, makeArgs(fd, buf, sizeof buf)), 12);
    EXPECT_EQ(std::string(buf), "file-content");
    // Sequential read continues from the file position.
    EXPECT_EQ(sys(sysno::read, makeArgs(fd, buf, sizeof buf)), 0);
    EXPECT_EQ(sys(sysno::close, makeArgs(fd)), 0);
    EXPECT_EQ(sys(sysno::read, makeArgs(fd, buf, sizeof buf)), -EBADF);
}

TEST_F(SyscallTest, OpenErrors)
{
    EXPECT_EQ(sys(sysno::open, makeArgs("/missing", O_RDONLY)), -ENOENT);
    EXPECT_EQ(sys(sysno::open, makeArgs("/dev", O_RDONLY)), -EISDIR);
    EXPECT_EQ(sys(sysno::open,
                  makeArgs(static_cast<const char *>(nullptr), 0)),
              -EFAULT);
}

TEST_F(SyscallTest, OpenCreatTruncAppend)
{
    const std::int64_t fd =
        sys(sysno::open, makeArgs("/new/file", O_WRONLY | O_CREAT));
    ASSERT_GE(fd, 0);
    EXPECT_EQ(sys(sysno::write, makeArgs(fd, "abc", 3)), 3);
    sys(sysno::close, makeArgs(fd));

    const std::int64_t fd2 = sys(
        sysno::open, makeArgs("/new/file", O_WRONLY | O_APPEND));
    ASSERT_GE(fd2, 0);
    EXPECT_EQ(sys(sysno::write, makeArgs(fd2, "def", 3)), 3);
    sys(sysno::close, makeArgs(fd2));

    auto *f =
        static_cast<RegularFile *>(kernel_.vfs().resolve("/new/file"));
    EXPECT_EQ(std::string(f->data().begin(), f->data().end()), "abcdef");

    const std::int64_t fd3 =
        sys(sysno::open, makeArgs("/new/file", O_WRONLY | O_TRUNC));
    ASSERT_GE(fd3, 0);
    EXPECT_EQ(f->size(), 0u);
}

TEST_F(SyscallTest, WritePermissionEnforced)
{
    kernel_.vfs().createFile("/ro")->setData("x");
    const std::int64_t fd = sys(sysno::open, makeArgs("/ro", O_RDONLY));
    EXPECT_EQ(sys(sysno::write, makeArgs(fd, "y", 1)), -EBADF);
    const std::int64_t wfd = sys(sysno::open, makeArgs("/ro", O_WRONLY));
    char buf[4];
    EXPECT_EQ(sys(sysno::read, makeArgs(wfd, buf, 4)), -EBADF);
}

TEST_F(SyscallTest, PreadPwriteArePositionIndependent)
{
    kernel_.vfs().createFile("/p")->setData("0123456789");
    const std::int64_t fd = sys(sysno::open, makeArgs("/p", O_RDWR));
    char buf[4] = {};
    EXPECT_EQ(sys(sysno::pread64, makeArgs(fd, buf, 4, 3)), 4);
    EXPECT_EQ(std::string(buf, 4), "3456");
    EXPECT_EQ(sys(sysno::pwrite64, makeArgs(fd, "XY", 2, 8)), 2);
    // File position untouched by positional I/O.
    EXPECT_EQ(sys(sysno::read, makeArgs(fd, buf, 4)), 4);
    EXPECT_EQ(std::string(buf, 4), "0123");
    auto *f = static_cast<RegularFile *>(kernel_.vfs().resolve("/p"));
    EXPECT_EQ(std::string(f->data().begin(), f->data().end()),
              "01234567XY");
}

TEST_F(SyscallTest, LseekWhenceVariants)
{
    kernel_.vfs().createFile("/s")->setData("0123456789");
    const std::int64_t fd = sys(sysno::open, makeArgs("/s", O_RDONLY));
    EXPECT_EQ(sys(sysno::lseek, makeArgs(fd, 4, SEEK_SET_)), 4);
    EXPECT_EQ(sys(sysno::lseek, makeArgs(fd, 2, SEEK_CUR_)), 6);
    EXPECT_EQ(sys(sysno::lseek, makeArgs(fd, -1, SEEK_END_)), 9);
    EXPECT_EQ(sys(sysno::lseek, makeArgs(fd, -20, SEEK_CUR_)), -EINVAL);
    EXPECT_EQ(sys(sysno::lseek, makeArgs(fd, 0, 42)), -EINVAL);
    char c;
    EXPECT_EQ(sys(sysno::read, makeArgs(fd, &c, 1)), 1);
    EXPECT_EQ(c, '9');
}

TEST_F(SyscallTest, TerminalWriteGoesToConsole)
{
    const std::int64_t fd =
        sys(sysno::open, makeArgs("/dev/console", O_WRONLY));
    ASSERT_GE(fd, 0);
    EXPECT_EQ(sys(sysno::write, makeArgs(fd, "match.txt\n", 10)), 10);
    EXPECT_EQ(kernel_.terminal().transcript(), "match.txt\n");
}

TEST_F(SyscallTest, ProcFileSnapshotAtOpen)
{
    const std::int64_t fd =
        sys(sysno::open, makeArgs("/proc/meminfo", O_RDONLY));
    ASSERT_GE(fd, 0);
    char buf[256] = {};
    const auto n = sys(sysno::read, makeArgs(fd, buf, sizeof buf));
    ASSERT_GT(n, 0);
    EXPECT_NE(std::string(buf).find("pid 1 rss_bytes"),
              std::string::npos);
}

TEST_F(SyscallTest, MmapMunmapAnonymous)
{
    const std::int64_t addr = sys(
        sysno::mmap, makeArgs(0, 64 * kPageSize, 3, 0x22, -1, 0));
    ASSERT_GT(addr, 0);
    EXPECT_EQ(sys(sysno::munmap, makeArgs(addr, 64 * kPageSize)), 0);
    EXPECT_EQ(sys(sysno::munmap, makeArgs(addr, 64 * kPageSize)),
              -EINVAL);
    EXPECT_EQ(sys(sysno::mmap, makeArgs(0, 0, 3, 0x22, -1, 0)), -EINVAL);
}

TEST_F(SyscallTest, MadviseAndGetrusageRoundTrip)
{
    const std::int64_t addr = sys(
        sysno::mmap, makeArgs(0, 16 * kPageSize, 3, 0x22, -1, 0));
    ASSERT_GT(addr, 0);
    proc_->mm().touchUntimed(static_cast<Addr>(addr), 16 * kPageSize);

    RUsage usage{};
    EXPECT_EQ(sys(sysno::getrusage, makeArgs(0, &usage)), 0);
    EXPECT_EQ(usage.curRssBytes, 16 * kPageSize);
    EXPECT_EQ(usage.ruMinFlt, 16u);

    EXPECT_EQ(sys(sysno::madvise,
                  makeArgs(addr, 8 * kPageSize, MADV_DONTNEED_)),
              0);
    EXPECT_EQ(sys(sysno::getrusage, makeArgs(0, &usage)), 0);
    EXPECT_EQ(usage.curRssBytes, 8 * kPageSize);
    EXPECT_EQ(usage.ruMaxRssKib, 16 * kPageSize / 1024);
}

TEST_F(SyscallTest, GetrusageNullPointerFaults)
{
    EXPECT_EQ(sys(sysno::getrusage,
                  makeArgs(0, static_cast<RUsage *>(nullptr))),
              -EFAULT);
}

TEST_F(SyscallTest, FramebufferIoctlAndMmap)
{
    const std::int64_t fd =
        sys(sysno::open, makeArgs("/dev/fb0", O_RDWR));
    ASSERT_GE(fd, 0);
    FbVarScreenInfo var{};
    EXPECT_EQ(sys(sysno::ioctl, makeArgs(fd, FBIOGET_VSCREENINFO, &var)),
              0);
    EXPECT_EQ(var.xres, 1024u);

    FbFixScreenInfo fix{};
    EXPECT_EQ(sys(sysno::ioctl, makeArgs(fd, FBIOGET_FSCREENINFO, &fix)),
              0);
    const std::int64_t addr =
        sys(sysno::mmap, makeArgs(0, fix.smemLen, 3, 1, fd, 0));
    ASSERT_GT(addr, 0);
    std::uint8_t *pix =
        proc_->mm().resolve(static_cast<Addr>(addr), 16);
    ASSERT_NE(pix, nullptr);
    pix[3] = 0x77;
    EXPECT_EQ(kernel_.framebuffer().pixels()[3], 0x77);
}

TEST_F(SyscallTest, IoctlOnRegularFileIsNotty)
{
    kernel_.vfs().createFile("/f")->setData("x");
    const std::int64_t fd = sys(sysno::open, makeArgs("/f", O_RDONLY));
    EXPECT_EQ(sys(sysno::ioctl, makeArgs(fd, FBIOGET_VSCREENINFO,
                                         static_cast<void *>(nullptr))),
              -ENOTTY);
    EXPECT_EQ(sys(sysno::ioctl, makeArgs(99, 0, nullptr)), -EBADF);
}

TEST_F(SyscallTest, UdpSocketSendRecvThroughSyscalls)
{
    const std::int64_t sfd = sys(sysno::socket, makeArgs(2, 2, 0));
    const std::int64_t cfd = sys(sysno::socket, makeArgs(2, 2, 0));
    ASSERT_GE(sfd, 0);
    ASSERT_GE(cfd, 0);
    SockAddr server_addr{1, 11211};
    SockAddr client_addr{1, 40000};
    EXPECT_EQ(sys(sysno::bind, makeArgs(sfd, &server_addr, 8)), 0);
    EXPECT_EQ(sys(sysno::bind, makeArgs(cfd, &client_addr, 8)), 0);

    // Receiver first (blocks), then sender; both as concurrent tasks.
    char rxbuf[64] = {};
    SockAddr src{};
    std::int64_t rx_n = -1, tx_n = -1;
    sim_.spawn([](Kernel &k, Process &p, int fd, char *buf, SockAddr *s,
                  std::int64_t &out) -> sim::Task<> {
        out = co_await k.doSyscall(
            p, sysno::recvfrom, makeArgs(fd, buf, 64, 0, s, nullptr));
    }(kernel_, *proc_, static_cast<int>(sfd), rxbuf, &src, rx_n));
    sim_.spawn([](Kernel &k, Process &p, int fd, SockAddr *dst,
                  std::int64_t &out) -> sim::Task<> {
        out = co_await k.doSyscall(
            p, sysno::sendto, makeArgs(fd, "GET k", 5, 0, dst, 8));
    }(kernel_, *proc_, static_cast<int>(cfd), &server_addr, tx_n));
    sim_.run();
    EXPECT_EQ(tx_n, 5);
    EXPECT_EQ(rx_n, 5);
    EXPECT_EQ(std::string(rxbuf, 5), "GET k");
    EXPECT_EQ(src.port, 40000u);

    // close() releases the socket endpoint.
    EXPECT_EQ(sys(sysno::close, makeArgs(sfd)), 0);
    const std::int64_t sfd2 = sys(sysno::socket, makeArgs(2, 2, 0));
    EXPECT_EQ(sys(sysno::bind, makeArgs(sfd2, &server_addr, 8)), 0);
}

TEST_F(SyscallTest, SendtoValidation)
{
    EXPECT_EQ(sys(sysno::sendto,
                  makeArgs(42, "x", 1, 0,
                           static_cast<SockAddr *>(nullptr), 0)),
              -EBADF);
    kernel_.vfs().createFile("/notsock")->setData("");
    const std::int64_t fd =
        sys(sysno::open, makeArgs("/notsock", O_RDWR));
    EXPECT_EQ(sys(sysno::sendto,
                  makeArgs(fd, "x", 1, 0,
                           static_cast<SockAddr *>(nullptr), 0)),
              -EBADF);
}

TEST_F(SyscallTest, RtSigqueueinfoDeliversToProcess)
{
    SigInfo info{};
    info.signo = SIGRTMIN_;
    info.value = 777;
    EXPECT_EQ(sys(sysno::rt_sigqueueinfo,
                  makeArgs(proc_->pid(), SIGRTMIN_, &info)),
              0);
    SigInfo got{};
    EXPECT_TRUE(proc_->signals().tryDequeue(got));
    EXPECT_EQ(got.value, 777);
    EXPECT_EQ(got.senderId, 1u);
}

TEST_F(SyscallTest, SyscallsChargeServiceTime)
{
    kernel_.vfs().createFile("/t")->setData(std::string(1 << 20, 'a'));
    const std::int64_t fd = sys(sysno::open, makeArgs("/t", O_RDONLY));
    const Tick before = sim_.now();
    std::vector<char> buf(1 << 20);
    sys(sysno::pread64, makeArgs(fd, buf.data(), buf.size(), 0));
    const Tick elapsed = sim_.now() - before;
    // 1 MiB at 6 GB/s is ~175 us, plus base costs.
    EXPECT_GT(elapsed, ticks::us(150));
    EXPECT_LT(elapsed, ticks::us(300));
}

TEST_F(SyscallTest, SsdBackedReadPaysDeviceTime)
{
    auto *f = kernel_.createSsdFile("/mnt/ssd/data");
    f->setSynthetic(1 << 20);
    const std::int64_t fd =
        sys(sysno::open, makeArgs("/mnt/ssd/data", O_RDONLY));
    const Tick before = sim_.now();
    sys(sysno::pread64, makeArgs(fd, nullptr, 1 << 20, 0));
    const Tick elapsed = sim_.now() - before;
    // 1 MiB at 520 MB/s is ~2 ms plus 90 us access latency.
    EXPECT_GT(elapsed, ticks::ms(2));
}

// ----------------------------------------------------- classification

TEST(Classification, CensusMatchesPaperProportions)
{
    const CensusCounts c = censusCounts();
    EXPECT_GE(c.total, 300u); // "all of Linux's 300+ system calls"
    EXPECT_NEAR(c.fraction(c.readily), 0.79, 0.04);
    EXPECT_NEAR(c.fraction(c.needsHw), 0.13, 0.03);
    EXPECT_NEAR(c.fraction(c.extensive), 0.08, 0.03);
    EXPECT_EQ(c.readily + c.needsHw + c.extensive, c.total);
}

TEST(Classification, TableTwoExamplesPresent)
{
    // Every example row of Table II must be in the needs-HW class.
    const auto hw = entriesOf(SyscallClass::NeedsHardwareChanges);
    auto has = [&hw](const std::string &name) {
        for (const auto &e : hw)
            if (e.name == name)
                return true;
        return false;
    };
    for (const char *n :
         {"capget", "capset", "setns", "set_mempolicy", "sched_yield",
          "sched_setaffinity", "rt_sigaction", "rt_sigsuspend",
          "rt_sigreturn", "rt_sigprocmask", "ioperm"}) {
        EXPECT_TRUE(has(n)) << n;
    }
}

TEST(Classification, NonReadilyEntriesCarryReasons)
{
    for (const auto &e : syscallCensus()) {
        if (e.cls == SyscallClass::ReadilyImplementable) {
            EXPECT_TRUE(e.reason.empty()) << e.name;
        } else {
            EXPECT_FALSE(e.reason.empty()) << e.name;
        }
        EXPECT_FALSE(e.type.empty()) << e.name;
    }
}

TEST(Classification, ImplementedCallsAreClassifiedReadily)
{
    // Everything GENESYS implements must be readily-implementable.
    const auto &census = syscallCensus();
    for (const char *n :
         {"read", "write", "pread64", "pwrite64", "open", "close",
          "lseek", "mmap", "munmap", "madvise", "getrusage",
          "rt_sigqueueinfo", "sendto", "recvfrom", "ioctl"}) {
        bool found = false;
        for (const auto &e : census) {
            if (e.name == n) {
                EXPECT_EQ(e.cls, SyscallClass::ReadilyImplementable)
                    << n;
                found = true;
            }
        }
        EXPECT_TRUE(found) << n;
    }
}

TEST(Classification, NoDuplicateNames)
{
    std::set<std::string> names;
    for (const auto &e : syscallCensus())
        EXPECT_TRUE(names.insert(e.name).second)
            << "duplicate " << e.name;
}

} // namespace
} // namespace genesys::osk
