/**
 * @file
 * gnet tests: the TCP stream-socket state machine (loss, retransmit,
 * backpressure, reset), epoll-style level-triggered readiness
 * multiplexing, the syscall surface on top of both, GPU epoll_wait
 * halt/resume through both service backends, and the gkv key-value
 * server end to end (GPU and CPU servers).
 */

#include <gtest/gtest.h>

#include <cerrno>
#include <cstring>
#include <string>
#include <vector>

#include "core/system.hh"
#include "osk/epoll.hh"
#include "osk/net.hh"
#include "osk/process.hh"
#include "osk/syscalls.hh"
#include "osk/tcp.hh"
#include "sim/sim.hh"
#include "support/gsan.hh"
#include "support/logging.hh"
#include "workloads/gkv.hh"

namespace genesys
{
namespace
{

// ==================================================== raw TCP stack

class TcpStackTest : public ::testing::Test
{
  protected:
    TcpStackTest() : sim_(1), tcp_(sim_.events(), params_) {}

    /** Bound listener on {1, port}. */
    osk::TcpSocket *
    listener(std::uint16_t port, int backlog = 8)
    {
        osk::TcpSocket *s = tcp_.createSocket();
        EXPECT_EQ(s->bind({1, port}), 0);
        EXPECT_EQ(s->listen(backlog), 0);
        return s;
    }

    /** Connected (client, server-conn) pair through {1, port}. */
    std::pair<osk::TcpSocket *, osk::TcpSocket *>
    establish(std::uint16_t port)
    {
        osk::TcpSocket *lst = listener(port);
        osk::TcpSocket *cli = tcp_.createSocket();
        int rc = -1;
        sim_.spawn([](osk::TcpSocket *c, std::uint16_t p,
                      int &out) -> sim::Task<> {
            out = co_await c->connect({1, p});
        }(cli, port, rc));
        sim_.run();
        EXPECT_EQ(rc, 0);
        int sid = -1;
        EXPECT_TRUE(lst->tryAccept(sid));
        return {cli, tcp_.socket(sid)};
    }

    osk::OskParams params_;
    sim::Sim sim_;
    osk::TcpStack tcp_;
};

TEST_F(TcpStackTest, ConnectAcceptEstablishes)
{
    auto [cli, srv] = establish(7000);
    ASSERT_NE(srv, nullptr);
    EXPECT_EQ(cli->state(), osk::TcpState::Established);
    EXPECT_EQ(srv->state(), osk::TcpState::Established);
    EXPECT_GE(cli->local().port, 49152); // ephemeral
    EXPECT_EQ(srv->peer(), cli->local());
    EXPECT_EQ(cli->peer(), (osk::SockAddr{1, 7000}));
    EXPECT_EQ(tcp_.counters().connects, 1u);
    EXPECT_EQ(tcp_.counters().accepts, 1u);
    // Handshake charged at least one RTT's worth of wire time.
    EXPECT_GE(sim_.now(), params_.tcpRtt);
}

TEST_F(TcpStackTest, ConnectWithoutListenerRefused)
{
    osk::TcpSocket *cli = tcp_.createSocket();
    int rc = 0;
    sim_.spawn([](osk::TcpSocket *c, int &out) -> sim::Task<> {
        out = co_await c->connect({1, 4242});
    }(cli, rc));
    sim_.run();
    EXPECT_EQ(rc, -ECONNREFUSED);
    EXPECT_EQ(cli->state(), osk::TcpState::Closed);
    EXPECT_EQ(tcp_.counters().refused, 1u);
}

TEST_F(TcpStackTest, DataRoundTripThenEofViaShutdown)
{
    auto [cli, srv] = establish(7001);
    std::vector<std::uint8_t> tx(300);
    for (std::size_t i = 0; i < tx.size(); ++i)
        tx[i] = static_cast<std::uint8_t>(i * 7);
    std::vector<std::uint8_t> rx(tx.size());
    std::uint64_t got = 0;
    bool eof_seen = false;
    sim_.spawn([](osk::TcpSocket *c,
                  std::vector<std::uint8_t> *data) -> sim::Task<> {
        const auto n = co_await c->write(data->data(), data->size());
        EXPECT_EQ(n, static_cast<std::int64_t>(data->size()));
        co_await c->shutdown(osk::SHUT_WR_);
    }(cli, &tx));
    sim_.spawn([](osk::TcpSocket *s, std::vector<std::uint8_t> *buf,
                  std::uint64_t &rcvd, bool &eof) -> sim::Task<> {
        for (;;) {
            const auto n = co_await s->read(buf->data() + rcvd,
                                            buf->size() - rcvd);
            if (n == 0) {
                eof = true;
                co_return;
            }
            EXPECT_GT(n, 0);
            if (n < 0)
                co_return;
            rcvd += static_cast<std::uint64_t>(n);
        }
    }(srv, &rx, got, eof_seen));
    sim_.run();
    EXPECT_TRUE(eof_seen);
    EXPECT_EQ(got, tx.size());
    EXPECT_EQ(rx, tx);
    EXPECT_EQ(srv->state(), osk::TcpState::CloseWait);
    // Server half-closes too: both FINs exchanged, both ends closed.
    sim_.spawn([](osk::TcpSocket *s) -> sim::Task<> {
        EXPECT_EQ(co_await s->shutdown(osk::SHUT_RDWR_), 0);
    }(srv));
    sim_.run();
    EXPECT_EQ(srv->state(), osk::TcpState::Closed);
    EXPECT_EQ(cli->state(), osk::TcpState::Closed);
}

TEST_F(TcpStackTest, LossyWireRetransmitsAndStillDelivers)
{
    auto [cli, srv] = establish(7002);
    tcp_.setLossPpm(300000); // 30% segment loss
    std::vector<std::uint8_t> tx(8 * 1024);
    for (std::size_t i = 0; i < tx.size(); ++i)
        tx[i] = static_cast<std::uint8_t>(i ^ (i >> 8));
    std::vector<std::uint8_t> rx(tx.size());
    std::uint64_t got = 0;
    sim_.spawn([](osk::TcpSocket *c,
                  std::vector<std::uint8_t> *data) -> sim::Task<> {
        EXPECT_EQ(co_await c->write(data->data(), data->size()),
                  static_cast<std::int64_t>(data->size()));
    }(cli, &tx));
    sim_.spawn([](osk::TcpSocket *s, std::vector<std::uint8_t> *buf,
                  std::uint64_t &rcvd) -> sim::Task<> {
        while (rcvd < buf->size()) {
            const auto n = co_await s->read(buf->data() + rcvd,
                                            buf->size() - rcvd);
            EXPECT_GT(n, 0);
            if (n <= 0)
                co_return;
            rcvd += static_cast<std::uint64_t>(n);
        }
    }(srv, &rx, got));
    sim_.run();
    EXPECT_EQ(got, tx.size());
    EXPECT_EQ(rx, tx); // lossy but reliable
    EXPECT_GT(tcp_.counters().segsLost, 0u);
    EXPECT_GT(tcp_.counters().retransmits, 0u);
    EXPECT_EQ(tcp_.counters().segsLost, tcp_.counters().retransmits);
}

TEST_F(TcpStackTest, AttemptBudgetExhaustionResetsConnection)
{
    auto [cli, srv] = establish(7003);
    tcp_.setLossPpm(1000000); // every transmission lost
    std::uint8_t byte = 0x5a;
    std::int64_t wrc = 0;
    sim_.spawn([](osk::TcpSocket *c, std::uint8_t *b,
                  std::int64_t &out) -> sim::Task<> {
        out = co_await c->write(b, 1);
    }(cli, &byte, wrc));
    sim_.run();
    EXPECT_EQ(wrc, -ECONNRESET);
    EXPECT_GE(tcp_.counters().resets, 1u);
    EXPECT_TRUE(srv->errorPending());
    std::int64_t rrc = 0;
    sim_.spawn([](osk::TcpSocket *s, std::int64_t &out) -> sim::Task<> {
        std::uint8_t b;
        out = co_await s->read(&b, 1);
    }(srv, rrc));
    sim_.run();
    EXPECT_EQ(rrc, -ECONNRESET);

    // A fresh connect through the dead wire times out entirely.
    osk::TcpSocket *c2 = tcp_.createSocket();
    int crc = 0;
    sim_.spawn([](osk::TcpSocket *c, int &out) -> sim::Task<> {
        out = co_await c->connect({1, 7003});
    }(c2, crc));
    sim_.run();
    EXPECT_EQ(crc, -ETIMEDOUT);
}

TEST_F(TcpStackTest, BackpressureBlocksWriterUntilReaderDrains)
{
    params_.tcpWindowBytes = 64; // tiny receive window
    auto [cli, srv] = establish(7004);
    std::vector<std::uint8_t> tx(512);
    for (std::size_t i = 0; i < tx.size(); ++i)
        tx[i] = static_cast<std::uint8_t>(i);
    std::vector<std::uint8_t> rx(tx.size());
    std::uint64_t got = 0;
    Tick write_done = 0;
    sim_.spawn([](sim::Sim &sim, osk::TcpSocket *c,
                  std::vector<std::uint8_t> *data,
                  Tick &done) -> sim::Task<> {
        EXPECT_EQ(co_await c->write(data->data(), data->size()),
                  static_cast<std::int64_t>(data->size()));
        done = sim.now();
    }(sim_, cli, &tx, write_done));
    sim_.spawn([](sim::Sim &sim, osk::TcpSocket *s,
                  std::vector<std::uint8_t> *buf,
                  std::uint64_t &rcvd) -> sim::Task<> {
        while (rcvd < buf->size()) {
            // Slow consumer: drain in small sips with think time.
            co_await sim.delay(ticks::us(100));
            const auto n = co_await s->read(buf->data() + rcvd, 32);
            EXPECT_GT(n, 0);
            if (n <= 0)
                co_return;
            rcvd += static_cast<std::uint64_t>(n);
        }
    }(sim_, srv, &rx, got));
    sim_.run();
    EXPECT_EQ(got, tx.size());
    EXPECT_EQ(rx, tx);
    EXPECT_GT(tcp_.counters().backpressureStalls, 0u);
    // The writer finished only after the reader opened the window.
    EXPECT_GE(write_done, ticks::us(100));
}

// ==================================================== raw epoll layer

class EpollTest : public ::testing::Test
{
  protected:
    EpollTest()
        : sim_(1), udp_(sim_.events(), params_),
          tcp_(sim_.events(), params_),
          ep_(sim_.events(), params_, udp_, tcp_)
    {}

    std::pair<osk::TcpSocket *, osk::TcpSocket *>
    establish(std::uint16_t port)
    {
        osk::TcpSocket *lst = tcp_.createSocket();
        EXPECT_EQ(lst->bind({1, port}), 0);
        EXPECT_EQ(lst->listen(8), 0);
        osk::TcpSocket *cli = tcp_.createSocket();
        int rc = -1;
        sim_.spawn([](osk::TcpSocket *c, std::uint16_t p,
                      int &out) -> sim::Task<> {
            out = co_await c->connect({1, p});
        }(cli, port, rc));
        sim_.run();
        EXPECT_EQ(rc, 0);
        int sid = -1;
        EXPECT_TRUE(lst->tryAccept(sid));
        return {cli, tcp_.socket(sid)};
    }

    std::int64_t
    waitOnce(osk::EpollInstance *inst, osk::EpollEvent *ev, int max,
             std::int64_t timeout_ns,
             std::uint64_t waiter = osk::kEpollHostWaiter)
    {
        std::int64_t out = -9999;
        sim_.spawn([](osk::EpollInstance *i, osk::EpollEvent *e, int m,
                      std::int64_t t, std::uint64_t w,
                      std::int64_t &o) -> sim::Task<> {
            o = co_await i->wait(e, m, t, w);
        }(inst, ev, max, timeout_ns, waiter, out));
        sim_.run();
        return out;
    }

    osk::OskParams params_;
    sim::Sim sim_;
    osk::UdpStack udp_;
    osk::TcpStack tcp_;
    osk::EpollSystem ep_;
};

TEST_F(EpollTest, LevelTriggeredReportsUntilDrained)
{
    auto [cli, srv] = establish(7100);
    osk::EpollInstance *inst = ep_.instance(ep_.create());
    ASSERT_EQ(inst->ctl(osk::EPOLL_CTL_ADD_, 5, osk::SockKind::Tcp,
                        srv->id(), osk::EPOLLIN_, 99),
              0);
    sim_.spawn([](osk::TcpSocket *c) -> sim::Task<> {
        co_await c->write("ping", 4);
    }(cli));
    sim_.run();

    osk::EpollEvent ev[4];
    // Level-triggered: the event repeats while data is queued.
    for (int round = 0; round < 3; ++round) {
        ASSERT_EQ(waitOnce(inst, ev, 4, 0), 1) << "round " << round;
        EXPECT_EQ(ev[0].data, 99u);
        EXPECT_TRUE(ev[0].events & osk::EPOLLIN_);
    }
    // Drain; readiness drops and a short wait now times out.
    std::uint8_t buf[8];
    sim_.spawn([](osk::TcpSocket *s, std::uint8_t *b) -> sim::Task<> {
        EXPECT_EQ(co_await s->read(b, 8), 4);
    }(srv, buf));
    sim_.run();
    EXPECT_EQ(waitOnce(inst, ev, 4, 1000), 0);
    EXPECT_GE(ep_.timeouts(), 1u);
}

TEST_F(EpollTest, MultiSocketReadinessCollected)
{
    auto [cli1, srv1] = establish(7101);
    auto [cli2, srv2] = establish(7102);
    osk::EpollInstance *inst = ep_.instance(ep_.create());
    ASSERT_EQ(inst->ctl(osk::EPOLL_CTL_ADD_, 10, osk::SockKind::Tcp,
                        srv1->id(), osk::EPOLLIN_, 1),
              0);
    ASSERT_EQ(inst->ctl(osk::EPOLL_CTL_ADD_, 11, osk::SockKind::Tcp,
                        srv2->id(), osk::EPOLLIN_, 2),
              0);
    sim_.spawn([](osk::TcpSocket *a, osk::TcpSocket *b) -> sim::Task<> {
        co_await a->write("x", 1);
        co_await b->write("y", 1);
    }(cli1, cli2));
    sim_.run();
    osk::EpollEvent ev[4];
    ASSERT_EQ(waitOnce(inst, ev, 4, 0), 2);
    EXPECT_EQ(ev[0].data + ev[1].data, 3u); // both cookies, any order
}

TEST_F(EpollTest, BlockedWaiterWokenByDataArrival)
{
    auto [cli, srv] = establish(7103);
    osk::EpollInstance *inst = ep_.instance(ep_.create());
    ASSERT_EQ(inst->ctl(osk::EPOLL_CTL_ADD_, 5, osk::SockKind::Tcp,
                        srv->id(), osk::EPOLLIN_, 7),
              0);
    std::vector<std::uint64_t> woken;
    ep_.setWakeObserver(
        [&woken](std::uint64_t cookie) { woken.push_back(cookie); });

    osk::EpollEvent ev[2];
    std::int64_t n = -1;
    Tick woke_at = 0;
    sim_.spawn([](osk::EpollInstance *i, osk::EpollEvent *e,
                  sim::Sim &sim, std::int64_t &out,
                  Tick &when) -> sim::Task<> {
        out = co_await i->wait(e, 2, -1, 42);
        when = sim.now();
    }(inst, ev, sim_, n, woke_at));
    sim_.spawn([](sim::Sim &sim, osk::TcpSocket *c) -> sim::Task<> {
        co_await sim.delay(ticks::us(250));
        co_await c->write("late", 4);
    }(sim_, cli));
    sim_.run();
    ASSERT_EQ(n, 1);
    EXPECT_EQ(ev[0].data, 7u);
    EXPECT_GE(woke_at, ticks::us(250));
    EXPECT_GE(ep_.wakeups(), 1u);
    ASSERT_FALSE(woken.empty());
    EXPECT_EQ(woken.front(), 42u);
}

TEST_F(EpollTest, ErrorReportedEvenWithEmptyMask)
{
    auto [cli, srv] = establish(7104);
    osk::EpollInstance *inst = ep_.instance(ep_.create());
    // Mask registers no interest bits at all.
    ASSERT_EQ(inst->ctl(osk::EPOLL_CTL_ADD_, 5, osk::SockKind::Tcp,
                        srv->id(), 0, 13),
              0);
    tcp_.setLossPpm(1000000);
    sim_.spawn([](osk::TcpSocket *c) -> sim::Task<> {
        EXPECT_EQ(co_await c->write("z", 1), -ECONNRESET);
    }(cli));
    sim_.run();
    osk::EpollEvent ev[2];
    ASSERT_EQ(waitOnce(inst, ev, 2, 0), 1);
    EXPECT_TRUE(ev[0].events & osk::EPOLLERR_);
    EXPECT_EQ(ev[0].data, 13u);
}

TEST_F(EpollTest, WriteReadinessFollowsWindow)
{
    params_.tcpWindowBytes = 64;
    auto [cli, srv] = establish(7105);
    osk::EpollInstance *inst = ep_.instance(ep_.create());
    ASSERT_EQ(inst->ctl(osk::EPOLL_CTL_ADD_, 5, osk::SockKind::Tcp,
                        cli->id(), osk::EPOLLOUT_, 21),
              0);
    osk::EpollEvent ev[2];
    ASSERT_EQ(waitOnce(inst, ev, 2, 0), 1);
    EXPECT_TRUE(ev[0].events & osk::EPOLLOUT_);
    // Fill the peer's window: EPOLLOUT drops.
    std::vector<std::uint8_t> blob(64, 0xaa);
    sim_.spawn([](osk::TcpSocket *c,
                  std::vector<std::uint8_t> *b) -> sim::Task<> {
        co_await c->write(b->data(), b->size());
    }(cli, &blob));
    sim_.run();
    EXPECT_EQ(waitOnce(inst, ev, 2, 1000), 0);
    // Drain at the server: EPOLLOUT returns.
    std::uint8_t buf[64];
    sim_.spawn([](osk::TcpSocket *s, std::uint8_t *b) -> sim::Task<> {
        EXPECT_EQ(co_await s->read(b, 64), 64);
    }(srv, buf));
    sim_.run();
    ASSERT_EQ(waitOnce(inst, ev, 2, 0), 1);
    EXPECT_TRUE(ev[0].events & osk::EPOLLOUT_);
}

TEST_F(EpollTest, CtlErrorContract)
{
    auto [cli, srv] = establish(7106);
    (void)cli;
    osk::EpollInstance *inst = ep_.instance(ep_.create());
    ASSERT_EQ(inst->ctl(osk::EPOLL_CTL_ADD_, 5, osk::SockKind::Tcp,
                        srv->id(), osk::EPOLLIN_, 0),
              0);
    EXPECT_EQ(inst->ctl(osk::EPOLL_CTL_ADD_, 5, osk::SockKind::Tcp,
                        srv->id(), osk::EPOLLIN_, 0),
              -EEXIST);
    EXPECT_EQ(inst->ctl(osk::EPOLL_CTL_MOD_, 6, osk::SockKind::Tcp,
                        srv->id(), osk::EPOLLIN_, 0),
              -ENOENT);
    EXPECT_EQ(inst->ctl(osk::EPOLL_CTL_DEL_, 6, osk::SockKind::Tcp,
                        srv->id(), 0, 0),
              -ENOENT);
    EXPECT_EQ(inst->ctl(99, 5, osk::SockKind::Tcp, srv->id(), 0, 0),
              -EINVAL);
    EXPECT_EQ(inst->ctl(osk::EPOLL_CTL_DEL_, 5, osk::SockKind::Tcp,
                        srv->id(), 0, 0),
              0);
}

TEST_F(EpollTest, EdgeTriggeredFiresOncePerTransition)
{
    auto [cli, srv] = establish(7110);
    osk::EpollInstance *inst = ep_.instance(ep_.create());
    ASSERT_EQ(inst->ctl(osk::EPOLL_CTL_ADD_, 5, osk::SockKind::Tcp,
                        srv->id(), osk::EPOLLIN_ | osk::EPOLLET_, 99),
              0);
    sim_.spawn([](osk::TcpSocket *c) -> sim::Task<> {
        co_await c->write("ping", 4);
    }(cli));
    sim_.run();

    osk::EpollEvent ev[4];
    ASSERT_EQ(waitOnce(inst, ev, 4, 0), 1);
    EXPECT_EQ(ev[0].data, 99u);
    EXPECT_TRUE(ev[0].events & osk::EPOLLIN_);
    // Strict ET: the not-ready -> ready transition was consumed; data
    // left queued does not re-report.
    EXPECT_EQ(waitOnce(inst, ev, 4, 1000), 0);
    // More data while the chain is already non-empty is not a
    // transition either — this is exactly why ET consumers must drain
    // to EAGAIN.
    sim_.spawn([](osk::TcpSocket *c) -> sim::Task<> {
        co_await c->write("more", 4);
    }(cli));
    sim_.run();
    EXPECT_EQ(waitOnce(inst, ev, 4, 1000), 0);
    // Drain to empty; the next arrival is a fresh edge.
    std::uint8_t buf[16];
    sim_.spawn([](osk::TcpSocket *s, std::uint8_t *b) -> sim::Task<> {
        EXPECT_EQ(co_await s->read(b, 16), 8);
    }(srv, buf));
    sim_.run();
    sim_.spawn([](osk::TcpSocket *c) -> sim::Task<> {
        co_await c->write("x", 1);
    }(cli));
    sim_.run();
    ASSERT_EQ(waitOnce(inst, ev, 4, 0), 1);
    EXPECT_EQ(ev[0].data, 99u);
}

TEST_F(EpollTest, EdgeRecordedWhileUnwatchedIsReplayed)
{
    auto [cli, srv] = establish(7111);
    osk::EpollInstance *inst = ep_.instance(ep_.create());
    ASSERT_EQ(inst->ctl(osk::EPOLL_CTL_ADD_, 5, osk::SockKind::Tcp,
                        srv->id(), osk::EPOLLIN_ | osk::EPOLLET_, 31),
              0);
    // The edge fires with nobody in epoll_wait; it must be latched as
    // pending and replayed to the next waiter, exactly once.
    sim_.spawn([](osk::TcpSocket *c) -> sim::Task<> {
        co_await c->write("late-edge", 9);
    }(cli));
    sim_.run();
    osk::EpollEvent ev[2];
    ASSERT_EQ(waitOnce(inst, ev, 2, 0), 1);
    EXPECT_EQ(ev[0].data, 31u);
    EXPECT_EQ(waitOnce(inst, ev, 2, 1000), 0);
    EXPECT_GE(ep_.edgesRecorded(), 1u);
    EXPECT_GE(ep_.edgesDelivered(), 1u);
    EXPECT_LE(ep_.edgesDelivered(), ep_.edgesRecorded());
}

TEST_F(EpollTest, OneshotDisarmsUntilRearmed)
{
    auto [cli, srv] = establish(7112);
    sim_.spawn([](osk::TcpSocket *c) -> sim::Task<> {
        co_await c->write("a", 1);
    }(cli));
    sim_.run();
    osk::EpollInstance *inst = ep_.instance(ep_.create());
    const std::uint32_t mask =
        osk::EPOLLIN_ | osk::EPOLLET_ | osk::EPOLLONESHOT_;
    // ADD probes the already-ready level as the initial edge.
    ASSERT_EQ(inst->ctl(osk::EPOLL_CTL_ADD_, 5, osk::SockKind::Tcp,
                        srv->id(), mask, 55),
              0);
    osk::EpollEvent ev[2];
    ASSERT_EQ(waitOnce(inst, ev, 2, 0), 1);
    EXPECT_EQ(ev[0].data, 55u);
    // Disarmed: a genuine fresh edge is latched but not delivered.
    std::uint8_t b;
    sim_.spawn([](osk::TcpSocket *s, std::uint8_t *p) -> sim::Task<> {
        EXPECT_EQ(co_await s->read(p, 1), 1);
    }(srv, &b));
    sim_.run();
    sim_.spawn([](osk::TcpSocket *c) -> sim::Task<> {
        co_await c->write("b", 1);
    }(cli));
    sim_.run();
    EXPECT_EQ(waitOnce(inst, ev, 2, 1000), 0);
    // MOD re-arms and replays the current level as a fresh edge.
    ASSERT_EQ(inst->ctl(osk::EPOLL_CTL_MOD_, 5, osk::SockKind::Tcp,
                        srv->id(), mask, 56),
              0);
    ASSERT_EQ(waitOnce(inst, ev, 2, 0), 1);
    EXPECT_EQ(ev[0].data, 56u);
}

TEST_F(EpollTest, EtWakeSuppressedWithoutFreshEdge)
{
    auto [cli, srv] = establish(7113);
    osk::EpollInstance *inst = ep_.instance(ep_.create());
    ASSERT_EQ(inst->ctl(osk::EPOLL_CTL_ADD_, 5, osk::SockKind::Tcp,
                        srv->id(), osk::EPOLLIN_ | osk::EPOLLET_, 42),
              0);
    sim_.spawn([](osk::TcpSocket *c) -> sim::Task<> {
        co_await c->write("one", 3);
    }(cli));
    sim_.run();
    osk::EpollEvent ev[2];
    ASSERT_EQ(waitOnce(inst, ev, 2, 0), 1); // edge consumed, NOT drained
    const std::uint64_t wakeups_before = ep_.wakeups();
    // New data lands while the level is already high: no transition,
    // and the only interest is ET, so the sleeping waiter is not
    // woken — it rides out its timeout.
    std::int64_t n = -1;
    sim_.spawn([](osk::EpollInstance *i, osk::EpollEvent *e,
                  std::int64_t &out) -> sim::Task<> {
        out = co_await i->wait(e, 2, ticks::ms(1), 42);
    }(inst, ev, n));
    sim_.spawn([](sim::Sim &sim, osk::TcpSocket *c) -> sim::Task<> {
        co_await sim.delay(ticks::us(250));
        co_await c->write("two", 3);
    }(sim_, cli));
    sim_.run();
    EXPECT_EQ(n, 0);
    EXPECT_EQ(ep_.wakeups(), wakeups_before);
}

TEST_F(EpollTest, LostEdgeReportedBySanitizer)
{
    gsan::Sanitizer san;
    san.setEnabled(true);
    ep_.setSanitizer(&san);
    ep_.setTestLostEdge(true);

    auto [cli, srv] = establish(7114);
    osk::EpollInstance *inst = ep_.instance(ep_.create());
    ASSERT_EQ(inst->ctl(osk::EPOLL_CTL_ADD_, 5, osk::SockKind::Tcp,
                        srv->id(), osk::EPOLLIN_ | osk::EPOLLET_, 77),
              0);
    // First transition: the edge channel observes it, but the seeded
    // mutant drops it before the pending bit is latched — the waiter
    // times out empty-handed. The loss is not yet provable (the next
    // noteEvent could still re-derive it if the probe state had not
    // advanced), so no report yet.
    sim_.spawn([](osk::TcpSocket *c) -> sim::Task<> {
        co_await c->write("lost", 4);
    }(cli));
    sim_.run();
    osk::EpollEvent ev[2];
    EXPECT_EQ(waitOnce(inst, ev, 2, 1000), 0);
    EXPECT_EQ(san.reportCount(), 0u);
    // Drain out of band so the level drops; the next arrival is a
    // second genuine transition, and at its observation gsan sees
    // seen > recorded: the earlier edge was consumed by the probe
    // state without ever being latched, so no future notification can
    // reconstruct it.
    std::uint8_t buf[8];
    sim_.spawn([](osk::TcpSocket *s, std::uint8_t *b) -> sim::Task<> {
        EXPECT_EQ(co_await s->read(b, 8), 4);
    }(srv, buf));
    sim_.run();
    sim_.spawn([](osk::TcpSocket *c) -> sim::Task<> {
        co_await c->write("next", 4);
    }(cli));
    sim_.run();
    EXPECT_EQ(san.countOf(gsan::ReportKind::LostEdge), 1u);
    EXPECT_EQ(san.reportCount(), 1u);
    // The second edge itself was recorded and delivers normally.
    ASSERT_EQ(waitOnce(inst, ev, 2, 0), 1);
    EXPECT_EQ(ev[0].data, 77u);
    ep_.setSanitizer(nullptr);
}

TEST_F(EpollTest, ClosedInstanceUnblocksWaiterWithEbadf)
{
    auto [cli, srv] = establish(7107);
    (void)cli;
    const int id = ep_.create();
    osk::EpollInstance *inst = ep_.instance(id);
    ASSERT_EQ(inst->ctl(osk::EPOLL_CTL_ADD_, 5, osk::SockKind::Tcp,
                        srv->id(), osk::EPOLLIN_, 0),
              0);
    osk::EpollEvent ev[2];
    std::int64_t n = 0;
    sim_.spawn([](osk::EpollInstance *i, osk::EpollEvent *e,
                  std::int64_t &out) -> sim::Task<> {
        out = co_await i->wait(e, 2, -1, osk::kEpollHostWaiter);
    }(inst, ev, n));
    sim_.spawn([](sim::Sim &sim, osk::EpollSystem &ep,
                  int epid) -> sim::Task<> {
        co_await sim.delay(ticks::us(10));
        EXPECT_TRUE(ep.close(epid));
    }(sim_, ep_, id));
    sim_.run();
    EXPECT_EQ(n, -EBADF);
    EXPECT_EQ(ep_.instance(id), nullptr);
}

// ==================================================== syscall surface

class NetSyscallTest : public ::testing::Test
{
  protected:
    NetSyscallTest()
        : kernel_(sim_, osk::KernelConfig{}),
          proc_(&kernel_.createProcess())
    {}

    std::int64_t
    sys(int num, const osk::SyscallArgs &args)
    {
        std::int64_t ret = -999999;
        sim_.spawn([](osk::Kernel &k, osk::Process &p, int n,
                      osk::SyscallArgs a,
                      std::int64_t &out) -> sim::Task<> {
            out = co_await k.doSyscall(p, n, a);
        }(kernel_, *proc_, num, args, ret));
        sim_.run();
        return ret;
    }

    sim::Sim sim_{1};
    osk::Kernel kernel_;
    osk::Process *proc_;
};

TEST_F(NetSyscallTest, StreamSocketLifecycleThroughSyscalls)
{
    const auto lfd =
        sys(osk::sysno::socket, osk::makeArgs(2, 1 /* STREAM */, 0));
    ASSERT_GE(lfd, 0);
    osk::SockAddr addr{1, 8200};
    ASSERT_EQ(sys(osk::sysno::bind, osk::makeArgs(lfd, &addr, 8)), 0);
    ASSERT_EQ(sys(osk::sysno::listen, osk::makeArgs(lfd, 16)), 0);

    const auto cfd = sys(osk::sysno::socket, osk::makeArgs(2, 1, 0));
    ASSERT_GE(cfd, 0);
    ASSERT_EQ(sys(osk::sysno::connect, osk::makeArgs(cfd, &addr, 8)),
              0);
    osk::SockAddr peer{};
    const auto afd =
        sys(osk::sysno::accept, osk::makeArgs(lfd, &peer, 8));
    ASSERT_GE(afd, 0);
    EXPECT_GE(peer.port, 49152); // the client's ephemeral port

    // Stream data through plain read/write on the connection fds.
    EXPECT_EQ(sys(osk::sysno::write, osk::makeArgs(cfd, "genesys", 7)),
              7);
    char buf[16] = {};
    EXPECT_EQ(sys(osk::sysno::read, osk::makeArgs(afd, buf, 16)), 7);
    EXPECT_EQ(std::string(buf), "genesys");

    // Positioned I/O is meaningless on a stream.
    EXPECT_EQ(sys(osk::sysno::pread64,
                  osk::makeArgs(afd, buf, 4, std::int64_t(0))),
              -ESPIPE);

    // Half-close propagates EOF; writes after SHUT_WR fail.
    EXPECT_EQ(sys(osk::sysno::shutdown,
                  osk::makeArgs(cfd, osk::SHUT_WR_)),
              0);
    EXPECT_EQ(sys(osk::sysno::read, osk::makeArgs(afd, buf, 16)), 0);
    EXPECT_EQ(sys(osk::sysno::write, osk::makeArgs(cfd, "x", 1)),
              -EPIPE);

    EXPECT_EQ(sys(osk::sysno::close, osk::makeArgs(afd)), 0);
    EXPECT_EQ(sys(osk::sysno::close, osk::makeArgs(cfd)), 0);
    EXPECT_EQ(sys(osk::sysno::close, osk::makeArgs(lfd)), 0);
}

TEST_F(NetSyscallTest, EpollSyscallSurface)
{
    const auto lfd = sys(osk::sysno::socket, osk::makeArgs(2, 1, 0));
    osk::SockAddr addr{1, 8201};
    ASSERT_EQ(sys(osk::sysno::bind, osk::makeArgs(lfd, &addr, 8)), 0);
    ASSERT_EQ(sys(osk::sysno::listen, osk::makeArgs(lfd, 16)), 0);

    const auto epfd = sys(osk::sysno::epoll_create, osk::makeArgs(1));
    ASSERT_GE(epfd, 0);
    osk::EpollEvent ev{osk::EPOLLIN_, 77};
    ASSERT_EQ(sys(osk::sysno::epoll_ctl,
                  osk::makeArgs(epfd, osk::EPOLL_CTL_ADD_, lfd, &ev)),
              0);

    // Nothing pending: timed wait returns 0.
    osk::EpollEvent out[4];
    EXPECT_EQ(sys(osk::sysno::epoll_wait,
                  osk::makeArgs(epfd, out, 4, std::int64_t(1000),
                                osk::kEpollHostWaiter)),
              0);

    // A pending connection makes the listener readable.
    const auto cfd = sys(osk::sysno::socket, osk::makeArgs(2, 1, 0));
    ASSERT_EQ(sys(osk::sysno::connect, osk::makeArgs(cfd, &addr, 8)),
              0);
    const auto n = sys(osk::sysno::epoll_wait,
                       osk::makeArgs(epfd, out, 4, std::int64_t(-1),
                                     osk::kEpollHostWaiter));
    ASSERT_EQ(n, 1);
    EXPECT_EQ(out[0].data, 77u);
    EXPECT_TRUE(out[0].events & osk::EPOLLIN_);

    // Non-socket targets are not pollable.
    kernel_.vfs().createFile("/plain");
    const auto ffd = sys(osk::sysno::open,
                         osk::makeArgs("/plain", osk::O_RDONLY));
    EXPECT_EQ(sys(osk::sysno::epoll_ctl,
                  osk::makeArgs(epfd, osk::EPOLL_CTL_ADD_, ffd, &ev)),
              -EPERM);

    // Closing the epoll fd tears the instance down.
    EXPECT_EQ(sys(osk::sysno::close, osk::makeArgs(epfd)), 0);
    EXPECT_EQ(sys(osk::sysno::epoll_wait,
                  osk::makeArgs(epfd, out, 4, std::int64_t(0),
                                osk::kEpollHostWaiter)),
              -EBADF);
}

TEST_F(NetSyscallTest, VectoredScatterGatherRoundTrip)
{
    const auto lfd = sys(osk::sysno::socket, osk::makeArgs(2, 1, 0));
    osk::SockAddr addr{1, 8202};
    ASSERT_EQ(sys(osk::sysno::bind, osk::makeArgs(lfd, &addr, 8)), 0);
    ASSERT_EQ(sys(osk::sysno::listen, osk::makeArgs(lfd, 16)), 0);
    const auto cfd = sys(osk::sysno::socket, osk::makeArgs(2, 1, 0));
    ASSERT_EQ(sys(osk::sysno::connect, osk::makeArgs(cfd, &addr, 8)),
              0);
    const auto afd =
        sys(osk::sysno::accept, osk::makeArgs(lfd, nullptr, 0));
    ASSERT_GE(afd, 0);

    // writev gathers two iovecs into the stream as one transfer.
    osk::IoVec wv[2] = {
        {osk::SyscallArgs::fromPtr("scatter-"), 8},
        {osk::SyscallArgs::fromPtr("gather"), 6},
    };
    EXPECT_EQ(sys(osk::sysno::writev, osk::makeArgs(cfd, wv, 2)), 14);
    // readv scatters the bytes back across two buffers.
    char a[9] = {};
    char b[7] = {};
    osk::IoVec rv[2] = {
        {osk::SyscallArgs::fromPtr(a), 8},
        {osk::SyscallArgs::fromPtr(b), 6},
    };
    EXPECT_EQ(sys(osk::sysno::readv, osk::makeArgs(afd, rv, 2)), 14);
    EXPECT_EQ(std::string(a), "scatter-");
    EXPECT_EQ(std::string(b), "gather");
    // The copy-out path is charged to the copied-bytes counter.
    EXPECT_EQ(kernel_.tcp().counters().copiedBytes, 14u);
    EXPECT_EQ(kernel_.tcp().counters().zerocopyBytes, 0u);
}

TEST_F(NetSyscallTest, RecvmsgZeroCopyLoanLifecycle)
{
    const auto lfd = sys(osk::sysno::socket, osk::makeArgs(2, 1, 0));
    osk::SockAddr addr{1, 8203};
    ASSERT_EQ(sys(osk::sysno::bind, osk::makeArgs(lfd, &addr, 8)), 0);
    ASSERT_EQ(sys(osk::sysno::listen, osk::makeArgs(lfd, 16)), 0);
    const auto cfd = sys(osk::sysno::socket, osk::makeArgs(2, 1, 0));
    ASSERT_EQ(sys(osk::sysno::connect, osk::makeArgs(cfd, &addr, 8)),
              0);
    const auto afd =
        sys(osk::sysno::accept, osk::makeArgs(lfd, nullptr, 0));
    ASSERT_GE(afd, 0);
    EXPECT_EQ(sys(osk::sysno::write, osk::makeArgs(cfd, "genesys", 7)),
              7);

    // Zero-copy receive: the iovec entries are rewritten in place to
    // point into the loaned wire segments; nothing is copied.
    osk::IoVec iov[4] = {};
    EXPECT_EQ(sys(osk::sysno::recvmsg,
                  osk::makeArgs(afd, iov, 4,
                                std::uint64_t(osk::MSG_ZEROCOPY_))),
              7);
    ASSERT_EQ(iov[0].len, 7u);
    EXPECT_EQ(std::memcmp(iov[0].asPtr(), "genesys", 7), 0);
    EXPECT_EQ(iov[1].len, 0u);
    EXPECT_EQ(kernel_.tcp().counters().copiedBytes, 0u);
    EXPECT_EQ(kernel_.tcp().counters().zerocopyBytes, 7u);
    osk::OpenFile *file =
        proc_->fds().get(static_cast<int>(afd));
    ASSERT_NE(file, nullptr);
    EXPECT_EQ(file->loanedSegs.size(), 1u);

    // An empty chain probes -EAGAIN with DONTWAIT — and entering
    // recvmsg retires the previous loan generation on this fd.
    EXPECT_EQ(sys(osk::sysno::recvmsg,
                  osk::makeArgs(afd, iov, 4,
                                std::uint64_t(osk::MSG_ZEROCOPY_ |
                                              osk::MSG_DONTWAIT_))),
              -EAGAIN);
    EXPECT_TRUE(file->loanedSegs.empty());
    // The copy path honors DONTWAIT too.
    EXPECT_EQ(sys(osk::sysno::recvmsg,
                  osk::makeArgs(afd, iov, 4,
                                std::uint64_t(osk::MSG_DONTWAIT_))),
              -EAGAIN);
}

// ============================================= GPU halt/resume paths

/** Host-side plumbing for the GPU epoll tests: a connected pair with
 *  the server end as a process fd. */
struct GpuNetRig
{
    std::int64_t listenFd = -1;
    std::int64_t connFd = -1;
    osk::TcpSocket *client = nullptr;
};

GpuNetRig
buildRig(core::System &sys, std::uint16_t port)
{
    GpuNetRig rig;
    rig.client = sys.kernel().tcp().createSocket();
    sys.sim().spawn([](core::System &s, GpuNetRig &r,
                       std::uint16_t lport) -> sim::Task<> {
        r.listenFd = co_await s.kernel().doSyscall(
            s.process(), osk::sysno::socket, osk::makeArgs(2, 1, 0));
        osk::SockAddr addr{1, lport};
        co_await s.kernel().doSyscall(s.process(), osk::sysno::bind,
                                      osk::makeArgs(r.listenFd, &addr,
                                                    8));
        co_await s.kernel().doSyscall(s.process(), osk::sysno::listen,
                                      osk::makeArgs(r.listenFd, 8));
        const int rc = co_await r.client->connect({1, lport});
        GENESYS_ASSERT(rc == 0, "rig connect failed");
        r.connFd = co_await s.kernel().doSyscall(
            s.process(), osk::sysno::accept,
            osk::makeArgs(r.listenFd, nullptr, 0));
    }(sys, rig, port));
    sys.run();
    EXPECT_GE(rig.connFd, 0);
    return rig;
}

/** GPU program: epoll_create/ctl/wait on @p conn_fd, then read. */
void
launchEpollWaiter(core::System &sys, int conn_fd,
                  core::WaitMode wait_mode,
                  std::int64_t *events_seen, std::int64_t *bytes_read,
                  bool stop_daemon_at_end = false)
{
    gpu::KernelLaunch k;
    const std::uint32_t wg = sys.config().gpu.wavefrontSize;
    k.workItems = wg;
    k.wgSize = wg;
    k.program = [&sys, conn_fd, wait_mode, events_seen, bytes_read,
                 stop_daemon_at_end](gpu::WavefrontCtx &ctx)
        -> sim::Task<> {
        core::Invocation inv;
        inv.ordering = core::Ordering::Relaxed;
        inv.waitMode = wait_mode;
        static osk::EpollEvent ctl_ev;
        static osk::EpollEvent evs[4];
        static std::uint8_t buf[128];
        const auto epfd = co_await sys.gpuSys().epollCreate(ctx, inv);
        ctl_ev = osk::EpollEvent{
            osk::EPOLLIN_, static_cast<std::uint64_t>(conn_fd)};
        co_await sys.gpuSys().epollCtl(ctx, inv,
                                       static_cast<int>(epfd),
                                       osk::EPOLL_CTL_ADD_, conn_fd,
                                       &ctl_ev);
        *events_seen = co_await sys.gpuSys().epollWait(
            ctx, inv, static_cast<int>(epfd), evs, 4, -1);
        *bytes_read = co_await sys.gpuSys().read(ctx, inv, conn_fd,
                                                 buf, 16);
        co_await sys.gpuSys().close(ctx, inv,
                                    static_cast<int>(epfd));
        // The daemon's scan timer would keep the sim alive forever.
        if (stop_daemon_at_end)
            sys.host().stopDaemon();
    };
    sys.launchGpuAndDrain(std::move(k));
}

TEST(GpuEpoll, WaitHaltsAndResumesViaInterruptBackend)
{
    core::SystemConfig cfg;
    cfg.gpu.numCus = 1;
    cfg.gpu.kernelLaunchLatency = ticks::us(5);
    core::System sys(cfg);
    GpuNetRig rig = buildRig(sys, 8300);

    std::int64_t events_seen = -1;
    std::int64_t bytes_read = -1;
    launchEpollWaiter(sys, static_cast<int>(rig.connFd),
                      core::WaitMode::HaltResume, &events_seen,
                      &bytes_read);
    // Data lands long after the GPU blocks in epoll_wait.
    sys.sim().spawn([](core::System &s, osk::TcpSocket *c)
                        -> sim::Task<> {
        co_await s.sim().delay(ticks::ms(2));
        co_await c->write("wakeup-payload!!", 16);
    }(sys, rig.client));
    sys.run();

    EXPECT_EQ(events_seen, 1);
    EXPECT_EQ(bytes_read, 16);
    EXPECT_GE(sys.kernel().epoll().waits(), 1u);
    EXPECT_GE(sys.kernel().epoll().wakeups(), 1u);
}

TEST(GpuEpoll, WaitHaltsAndResumesViaPollingDaemon)
{
    core::SystemConfig cfg;
    cfg.gpu.numCus = 1;
    cfg.gpu.kernelLaunchLatency = ticks::us(5);
    core::System sys(cfg);
    GpuNetRig rig = buildRig(sys, 8301);
    // Start the daemon only after the rig's own sys.run(): its scan
    // timer keeps the sim alive, so runs can't quiesce until the GPU
    // program calls stopDaemon().
    sys.host().startPollingDaemon(ticks::us(20));

    std::int64_t events_seen = -1;
    std::int64_t bytes_read = -1;
    launchEpollWaiter(sys, static_cast<int>(rig.connFd),
                      core::WaitMode::Polling, &events_seen,
                      &bytes_read, /*stop_daemon_at_end=*/true);
    sys.sim().spawn([](core::System &s, osk::TcpSocket *c)
                        -> sim::Task<> {
        co_await s.sim().delay(ticks::ms(2));
        co_await c->write("wakeup-payload!!", 16);
    }(sys, rig.client));
    sys.run();

    EXPECT_EQ(events_seen, 1);
    EXPECT_EQ(bytes_read, 16);
    EXPECT_GE(sys.kernel().epoll().wakeups(), 1u);
    EXPECT_GT(sys.host().batches(), 0u); // daemon sweeps serviced it
}

// ============================================ vectored GPU submission

TEST(GpuVectored, WritevThroughDescriptorWindow)
{
    core::SystemConfig cfg;
    cfg.gpu.numCus = 1;
    cfg.gpu.kernelLaunchLatency = ticks::us(5);
    cfg.genesys.useRings = true;
    core::System sys(cfg);
    GpuNetRig rig = buildRig(sys, 8400);

    static const char kPartA[] = "vect";
    static const char kPartB[] = "ored";
    static osk::IoVec iov[2];
    iov[0] = osk::IoVec{osk::SyscallArgs::fromPtr(kPartA), 4};
    iov[1] = osk::IoVec{osk::SyscallArgs::fromPtr(kPartB), 4};
    std::int64_t lane_ret = -1;

    gpu::KernelLaunch k;
    const std::uint32_t wg = sys.config().gpu.wavefrontSize;
    k.workItems = wg;
    k.wgSize = wg;
    const int conn_fd = static_cast<int>(rig.connFd);
    k.program = [&sys, conn_fd,
                 &lane_ret](gpu::WavefrontCtx &ctx) -> sim::Task<> {
        core::Invocation inv; // strong ordering, blocking
        inv.granularity = core::Granularity::WorkItem;
        // Lane 0 stages its gather list in the wave's descriptor
        // window; the single SQ entry carries the list by reference.
        co_await sys.gpuSys().invokeWorkItemsVectored(
            ctx, inv, osk::sysno::writev,
            [conn_fd](std::uint32_t lane)
                -> std::optional<core::GpuSyscalls::LaneVec> {
                if (lane != 0)
                    return std::nullopt;
                return core::GpuSyscalls::LaneVec{conn_fd, iov, 2, 0};
            },
            [&lane_ret](std::uint32_t lane, std::int64_t ret) {
                if (lane == 0)
                    lane_ret = ret;
            });
    };
    sys.launchGpuAndDrain(std::move(k));

    std::uint8_t buf[16] = {};
    std::int64_t got = 0;
    sys.sim().spawn([](osk::TcpSocket *c, std::uint8_t *b,
                       std::int64_t &out) -> sim::Task<> {
        out = co_await c->read(b, 8);
    }(rig.client, buf, got));
    sys.run();
    EXPECT_EQ(lane_ret, 8);
    EXPECT_EQ(got, 8);
    EXPECT_EQ(std::memcmp(buf, "vectored", 8), 0);
}

// ======================================================== gkv server

TEST(Gkv, GpuServerEndToEnd)
{
    core::SystemConfig cfg;
    cfg.gpu.numCus = 2;
    cfg.gpu.kernelLaunchLatency = ticks::us(5);
    core::System sys(cfg);
    workloads::GkvConfig gc;
    gc.useGpu = true;
    gc.numConnections = 4;
    gc.requestsPerConn = 6;
    gc.serverGroups = 2;
    gc.valueBytes = 128;
    gc.thinkNs = 500;
    const auto res = workloads::runGkv(sys, gc);
    EXPECT_TRUE(res.correct);
    EXPECT_EQ(res.gets + res.sets, 24u);
    EXPECT_EQ(res.accepted, 4u);
    EXPECT_GT(res.throughputKops, 0.0);
    EXPECT_GT(res.p50LatencyUs, 0.0);
    EXPECT_GE(res.p99LatencyUs, res.p50LatencyUs);
    // The whole request path rode the syscall slots.
    EXPECT_GT(sys.gpuSys().issuedRequests(), 0u);
    EXPECT_GE(sys.kernel().epoll().waits(), 1u);
}

TEST(Gkv, CpuServerEndToEnd)
{
    core::System sys;
    workloads::GkvConfig gc;
    gc.useGpu = false;
    gc.numConnections = 4;
    gc.requestsPerConn = 6;
    gc.serverGroups = 2;
    gc.valueBytes = 128;
    const auto res = workloads::runGkv(sys, gc);
    EXPECT_TRUE(res.correct);
    EXPECT_EQ(res.gets + res.sets, 24u);
    EXPECT_EQ(res.accepted, 4u);
    EXPECT_GT(res.p50LatencyUs, 0.0);
}

TEST(Gkv, PipelinedZeroCopyHotPath)
{
    core::SystemConfig cfg;
    cfg.gpu.numCus = 2;
    cfg.gpu.kernelLaunchLatency = ticks::us(5);
    core::System sys(cfg);
    workloads::GkvConfig gc;
    gc.useGpu = true;
    gc.numConnections = 4;
    gc.requestsPerConn = 8;
    gc.serverGroups = 2;
    gc.valueBytes = 128;
    gc.pipelineDepth = 4;
    gc.thinkNs = 200;
    const auto res = workloads::runGkv(sys, gc);
    EXPECT_TRUE(res.correct);
    EXPECT_EQ(res.gets + res.sets, 32u);
    // The serving path never copies received bytes: requests parse in
    // the loaned wire segments, replies gather through writev, and
    // the client parses replies off the segment chain.
    EXPECT_EQ(sys.kernel().tcp().counters().copiedBytes, 0u);
    EXPECT_GT(sys.kernel().tcp().counters().zerocopyBytes, 0u);
    // Edge-triggered readiness did the multiplexing.
    EXPECT_GT(sys.kernel().epoll().edgesRecorded(), 0u);
    EXPECT_GT(sys.kernel().epoll().edgesDelivered(), 0u);
}

TEST(Gkv, PipelinedRingModeCorrect)
{
    core::SystemConfig cfg;
    cfg.gpu.numCus = 2;
    cfg.gpu.kernelLaunchLatency = ticks::us(5);
    cfg.genesys.useRings = true;
    core::System sys(cfg);
    workloads::GkvConfig gc;
    gc.useGpu = true;
    gc.numConnections = 4;
    gc.requestsPerConn = 8;
    gc.serverGroups = 2;
    gc.valueBytes = 128;
    gc.pipelineDepth = 4;
    gc.thinkNs = 200;
    const auto res = workloads::runGkv(sys, gc);
    EXPECT_TRUE(res.correct);
    EXPECT_EQ(res.gets + res.sets, 32u);
    EXPECT_EQ(sys.kernel().tcp().counters().copiedBytes, 0u);
    EXPECT_GT(sys.gpuSys().issuedRequests(), 0u);
}

TEST(Gkv, LossyWireStillCorrect)
{
    core::System sys;
    sys.kernel().tcp().setLossPpm(100000); // 10% loss
    workloads::GkvConfig gc;
    gc.useGpu = false;
    gc.numConnections = 2;
    gc.requestsPerConn = 4;
    gc.serverGroups = 1;
    gc.valueBytes = 64;
    const auto res = workloads::runGkv(sys, gc);
    EXPECT_TRUE(res.correct);
    EXPECT_GT(sys.kernel().tcp().counters().retransmits, 0u);
}

// ==================================================== sysfs surface

class NetSysfsTest : public ::testing::Test
{
  protected:
    std::int64_t
    sys(int num, const osk::SyscallArgs &args)
    {
        std::int64_t ret = -999999;
        sys_.sim().spawn([](core::System &s, int n, osk::SyscallArgs a,
                            std::int64_t &out) -> sim::Task<> {
            out = co_await s.kernel().doSyscall(s.process(), n, a);
        }(sys_, num, args, ret));
        sys_.run();
        return ret;
    }

    std::string
    readFile(const std::string &path)
    {
        const auto fd = sys(osk::sysno::open,
                            osk::makeArgs(path.c_str(), osk::O_RDONLY));
        if (fd < 0)
            return "<open failed>";
        char buf[64] = {};
        sys(osk::sysno::read, osk::makeArgs(fd, buf, 63));
        sys(osk::sysno::close, osk::makeArgs(fd));
        return buf;
    }

    core::System sys_;
};

TEST_F(NetSysfsTest, CountersVisibleAfterTraffic)
{
    workloads::GkvConfig gc;
    gc.useGpu = false;
    gc.numConnections = 2;
    gc.requestsPerConn = 4;
    gc.serverGroups = 1;
    gc.valueBytes = 64;
    const auto res = workloads::runGkv(sys_, gc);
    ASSERT_TRUE(res.correct);

    const auto num = [this](const std::string &path) {
        return std::stoull(readFile(path));
    };
    EXPECT_GT(num("/sys/genesys/net/tcp/segs_sent"), 0u);
    EXPECT_EQ(num("/sys/genesys/net/tcp/connects"), 2u);
    EXPECT_EQ(num("/sys/genesys/net/tcp/accepts"), 2u);
    EXPECT_EQ(num("/sys/genesys/net/tcp/resets"), 0u);
    EXPECT_GT(num("/sys/genesys/net/epoll/waits"), 0u);
    EXPECT_GT(num("/sys/genesys/net/epoll/notifies"), 0u);
    EXPECT_EQ(num("/sys/genesys/net/udp/delivered"),
              sys_.kernel().udp().deliveredDatagrams());
    // Stats report mirrors the same counters.
    const std::string report = sys_.statsReport();
    EXPECT_NE(report.find("net.tcp_segs_sent"), std::string::npos);
    EXPECT_NE(report.find("net.epoll_waits"), std::string::npos);
}

TEST_F(NetSysfsTest, LossKnobWritableFromSimulatedCode)
{
    const auto fd =
        sys(osk::sysno::open,
            osk::makeArgs("/sys/genesys/net/tcp/loss_ppm",
                          osk::O_WRONLY));
    ASSERT_GE(fd, 0);
    EXPECT_EQ(sys(osk::sysno::write, osk::makeArgs(fd, "2500", 4)), 4);
    sys(osk::sysno::close, osk::makeArgs(fd));
    EXPECT_EQ(sys_.kernel().tcp().lossPpm(), 2500u);
    EXPECT_EQ(readFile("/sys/genesys/net/tcp/loss_ppm"), "2500\n");
    // Out-of-range rejected: sysfs reports a short (zero-byte) write
    // and the knob keeps its previous value.
    const auto fd2 =
        sys(osk::sysno::open,
            osk::makeArgs("/sys/genesys/net/tcp/loss_ppm",
                          osk::O_WRONLY));
    EXPECT_EQ(sys(osk::sysno::write, osk::makeArgs(fd2, "2000000", 7)),
              0);
    sys(osk::sysno::close, osk::makeArgs(fd2));
    EXPECT_EQ(sys_.kernel().tcp().lossPpm(), 2500u);
}

} // namespace
} // namespace genesys
