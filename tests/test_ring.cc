/**
 * @file
 * SQ/CQ ring protocol tests (DESIGN.md §13).
 *
 * Part 1 is a property suite over SyscallRing geometry: free-running
 * counters at non-power-of-two capacities, full/empty disambiguation
 * by counter distance, claim-order publishing under interleaved
 * producers, observed-head conservatism, and a randomized
 * model-equivalence check against a reference FIFO.
 *
 * Part 2 runs syscalls end to end through the rings on both service
 * backends (interrupt ring mode with doorbell suppression, and the
 * polling daemon's polled-completion mode), checks the batch/occupancy
 * stats and the /sys/genesys/rings knob surface, and pins that the
 * default (ring-off) configuration leaves the rings untouched.
 */

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <deque>
#include <random>
#include <string>
#include <vector>

#include "core/ring.hh"
#include "core/system.hh"
#include "support/logging.hh"

namespace genesys::core
{
namespace
{

// ======================================================= part 1: ring

TEST(RingGeometry, StartsEmptyWithRequestedCapacity)
{
    SyscallRing r(5);
    EXPECT_EQ(r.capacity(), 5u);
    EXPECT_TRUE(r.empty());
    EXPECT_FALSE(r.full());
    EXPECT_EQ(r.size(), 0u);
    EXPECT_EQ(r.claimedInFlight(), 0u);
    EXPECT_EQ(r.publishedTotal(), 0u);
    EXPECT_EQ(r.consumedTotal(), 0u);
}

TEST(RingGeometry, ClaimPublishConsumeRoundTrip)
{
    SyscallRing r(8);
    const auto base = r.tryClaim(3, r.loadHeadAcquire());
    ASSERT_TRUE(base.has_value());
    EXPECT_EQ(*base, 0u);
    EXPECT_EQ(r.claimedInFlight(), 3u);
    EXPECT_EQ(r.size(), 0u) << "claimed but unpublished is not visible";
    for (std::uint32_t i = 0; i < 3; ++i)
        r.writeEntry(*base + i, 100 + i);
    EXPECT_TRUE(r.tryPublish(*base, 3));
    EXPECT_EQ(r.size(), 3u);
    for (std::uint32_t i = 0; i < 3; ++i)
        EXPECT_EQ(r.popHead(), 100 + i) << "FIFO order";
    EXPECT_TRUE(r.empty());
}

TEST(RingGeometry, PeekAndPopAgreeOnTheOldestEntry)
{
    // entryAt() peeks a published position without consuming it;
    // popHead() then returns the same value and advances head.
    SyscallRing r(2);
    const auto base = r.tryClaim(1, r.loadHeadAcquire());
    ASSERT_TRUE(base.has_value());
    r.writeEntry(*base, 77);
    ASSERT_TRUE(r.tryPublish(*base, 1));
    EXPECT_EQ(r.entryAt(r.loadHeadAcquire()), 77u);
    EXPECT_EQ(r.size(), 1u) << "peek does not consume";
    EXPECT_EQ(r.popHead(), 77u);
    EXPECT_TRUE(r.empty());
}

TEST(RingGeometry, NonPowerOfTwoCapacityWrapsByModulo)
{
    for (std::uint32_t cap : {3u, 5u, 7u}) {
        SyscallRing r(cap);
        std::uint32_t next = 0;
        // Many rounds of publish-2 / consume-2 walk the free-running
        // counters far past the capacity; index = pos % capacity keeps
        // FIFO order with no power-of-two masking.
        for (int round = 0; round < 10; ++round) {
            const auto base = r.tryClaim(2, r.loadHeadAcquire());
            ASSERT_TRUE(base.has_value()) << "cap " << cap;
            r.writeEntry(*base, next);
            r.writeEntry(*base + 1, next + 1);
            ASSERT_TRUE(r.tryPublish(*base, 2));
            EXPECT_EQ(r.popHead(), next);
            EXPECT_EQ(r.popHead(), next + 1);
            next += 2;
        }
        EXPECT_EQ(r.publishedTotal(), 20u);
        EXPECT_EQ(r.consumedTotal(), 20u);
        EXPECT_EQ(r.indexOf(20), 20 % cap);
        EXPECT_TRUE(r.empty());
    }
}

TEST(RingGeometry, FullAndEmptyDisambiguatedByCounterDistance)
{
    SyscallRing r(4);
    const auto base = r.tryClaim(4, r.loadHeadAcquire());
    ASSERT_TRUE(base.has_value());
    for (std::uint32_t i = 0; i < 4; ++i)
        r.writeEntry(*base + i, i);
    ASSERT_TRUE(r.tryPublish(*base, 4));
    // tail % capacity == head % capacity here; only the counter
    // distance tells full from empty.
    EXPECT_EQ(r.indexOf(r.loadTailAcquire()),
              r.indexOf(r.loadHeadAcquire()));
    EXPECT_TRUE(r.full());
    EXPECT_FALSE(r.empty());
    (void)r.popHead();
    EXPECT_FALSE(r.full());
    EXPECT_FALSE(r.empty());
    (void)r.popHead();
    (void)r.popHead();
    (void)r.popHead();
    EXPECT_TRUE(r.empty());
    EXPECT_FALSE(r.full());
}

TEST(RingGeometry, ClaimFailsWhenObservedFull)
{
    SyscallRing r(2);
    const auto base = r.tryClaim(2, r.loadHeadAcquire());
    ASSERT_TRUE(base.has_value());
    EXPECT_FALSE(
        r.tryClaim(1, r.loadHeadAcquire()).has_value());
    ASSERT_TRUE(r.tryPublish(*base, 2));
    EXPECT_FALSE(
        r.tryClaim(1, r.loadHeadAcquire()).has_value());
    (void)r.popHead();
    EXPECT_TRUE(r.tryClaim(1, r.loadHeadAcquire()).has_value());
}

TEST(RingGeometry, StaleObservedHeadIsConservative)
{
    SyscallRing r(2);
    const std::uint64_t stale_head = r.loadHeadAcquire();
    auto base = r.tryClaim(2, stale_head);
    ASSERT_TRUE(base.has_value());
    ASSERT_TRUE(r.tryPublish(*base, 2));
    (void)r.popHead();
    (void)r.popHead();
    // Space exists, but a producer still holding the pre-consume head
    // sample must NOT claim it: stale observations under-report free
    // space, they never overwrite live entries.
    EXPECT_FALSE(r.tryClaim(1, stale_head).has_value());
    EXPECT_TRUE(r.tryClaim(1, r.loadHeadAcquire()).has_value());
}

TEST(RingGeometry, PublishesAreInClaimOrder)
{
    SyscallRing r(8);
    const auto a = r.tryClaim(2, r.loadHeadAcquire());
    const auto b = r.tryClaim(3, r.loadHeadAcquire());
    ASSERT_TRUE(a.has_value());
    ASSERT_TRUE(b.has_value());
    EXPECT_EQ(*b, *a + 2);
    for (std::uint32_t i = 0; i < 3; ++i)
        r.writeEntry(*b + i, 20 + i);
    // B finished populating first but must wait for A's publish.
    EXPECT_FALSE(r.tryPublish(*b, 3));
    EXPECT_EQ(r.size(), 0u);
    for (std::uint32_t i = 0; i < 2; ++i)
        r.writeEntry(*a + i, 10 + i);
    EXPECT_TRUE(r.tryPublish(*a, 2));
    EXPECT_TRUE(r.tryPublish(*b, 3));
    EXPECT_EQ(r.size(), 5u);
    const std::uint32_t want[] = {10, 11, 20, 21, 22};
    for (std::uint32_t w : want)
        EXPECT_EQ(r.popHead(), w);
}

TEST(RingGeometry, InterleavedProducersKeepFifoOrder)
{
    SyscallRing r(7);
    std::uint32_t next = 0;
    std::vector<std::uint32_t> consumed;
    for (int round = 0; round < 6; ++round) {
        // Two producers claim back to back (2 then 3 entries), then
        // publish in claim order; the consumer drains between rounds.
        const auto a = r.tryClaim(2, r.loadHeadAcquire());
        const auto b = r.tryClaim(3, r.loadHeadAcquire());
        ASSERT_TRUE(a.has_value());
        ASSERT_TRUE(b.has_value());
        for (std::uint32_t i = 0; i < 2; ++i)
            r.writeEntry(*a + i, next + i);
        for (std::uint32_t i = 0; i < 3; ++i)
            r.writeEntry(*b + i, next + 2 + i);
        ASSERT_TRUE(r.tryPublish(*a, 2));
        ASSERT_TRUE(r.tryPublish(*b, 3));
        while (!r.empty())
            consumed.push_back(r.popHead());
        next += 5;
    }
    ASSERT_EQ(consumed.size(), 30u);
    for (std::uint32_t i = 0; i < consumed.size(); ++i)
        EXPECT_EQ(consumed[i], i);
}

TEST(RingGeometry, ClaimAccountsForUnpublishedReservations)
{
    SyscallRing r(4);
    const auto a = r.tryClaim(3, r.loadHeadAcquire());
    ASSERT_TRUE(a.has_value());
    // Nothing is published (size 0), yet only one entry is claimable:
    // claim fullness is measured against the reservation cursor.
    EXPECT_FALSE(r.tryClaim(2, r.loadHeadAcquire()).has_value());
    EXPECT_TRUE(r.tryClaim(1, r.loadHeadAcquire()).has_value());
    EXPECT_EQ(r.claimedInFlight(), 4u);
    EXPECT_EQ(r.size(), 0u);
}

TEST(RingGeometry, CapacityOneAlternates)
{
    SyscallRing r(1);
    for (std::uint32_t i = 0; i < 5; ++i) {
        const auto base = r.tryClaim(1, r.loadHeadAcquire());
        ASSERT_TRUE(base.has_value());
        EXPECT_EQ(*base, i);
        EXPECT_FALSE(r.tryClaim(1, r.loadHeadAcquire()).has_value());
        r.writeEntry(*base, i);
        ASSERT_TRUE(r.tryPublish(*base, 1));
        EXPECT_TRUE(r.full());
        EXPECT_EQ(r.popHead(), i);
        EXPECT_TRUE(r.empty());
    }
}

TEST(RingGeometry, ReclaimOldestDropsWithoutConsuming)
{
    SyscallRing r(3);
    const auto base = r.tryClaim(3, r.loadHeadAcquire());
    ASSERT_TRUE(base.has_value());
    for (std::uint32_t i = 0; i < 3; ++i)
        r.writeEntry(*base + i, i);
    ASSERT_TRUE(r.tryPublish(*base, 3));
    r.reclaimOldest();
    EXPECT_EQ(r.reclaims(), 1u);
    EXPECT_EQ(r.size(), 2u);
    // The survivors are the younger entries.
    EXPECT_EQ(r.popHead(), 1u);
    EXPECT_EQ(r.popHead(), 2u);
    // Reclaimed + consumed both advance head.
    EXPECT_EQ(r.consumedTotal(), 3u);
}

TEST(RingGeometry, ProtocolMisusePanics)
{
    SyscallRing r(4);
    EXPECT_THROW((void)r.popHead(), PanicError) << "pop on empty";
    EXPECT_THROW((void)r.tryClaim(5, r.loadHeadAcquire()), PanicError)
        << "claim beyond capacity";
    EXPECT_THROW((void)r.tryClaim(0, r.loadHeadAcquire()), PanicError)
        << "zero-entry claim";
    const auto base = r.tryClaim(2, r.loadHeadAcquire());
    ASSERT_TRUE(base.has_value());
    EXPECT_THROW(r.writeEntry(*base + 2, 1), PanicError)
        << "write outside the claimed range";
    EXPECT_THROW((void)r.tryPublish(*base, 3), PanicError)
        << "publish beyond the claim";
    EXPECT_THROW((void)r.entryAt(0), PanicError)
        << "read of an unpublished position";
}

TEST(RingGeometry, RandomOpsMatchReferenceFifo)
{
    // Property check: under arbitrary interleavings of claim / publish
    // / consume at several (mostly non-power-of-two) capacities, the
    // ring behaves exactly like a bounded FIFO.
    for (std::uint32_t cap : {1u, 3u, 4u, 5u, 7u, 8u}) {
        SyscallRing r(cap);
        std::deque<std::uint32_t> model;
        // Claims not yet published, in claim order: {base, n, value0}.
        std::deque<std::array<std::uint64_t, 3>> pendingClaims;
        std::mt19937 rng(1234 + cap);
        std::uint32_t next = 0;
        for (int op = 0; op < 2000; ++op) {
            switch (rng() % 3) {
              case 0: { // claim
                const std::uint32_t n = 1 + rng() % cap;
                const auto base = r.tryClaim(n, r.loadHeadAcquire());
                const std::uint64_t in_flight =
                    model.size() + [&pendingClaims] {
                        std::uint64_t sum = 0;
                        for (const auto &c : pendingClaims)
                            sum += c[1];
                        return sum;
                    }();
                if (in_flight + n > cap) {
                    EXPECT_FALSE(base.has_value()) << "cap " << cap;
                    break;
                }
                ASSERT_TRUE(base.has_value()) << "cap " << cap;
                for (std::uint32_t i = 0; i < n; ++i)
                    r.writeEntry(*base + i, next + i);
                pendingClaims.push_back({*base, n, next});
                next += n;
                break;
              }
              case 1: { // publish the oldest pending claim
                if (pendingClaims.empty())
                    break;
                const auto c = pendingClaims.front();
                pendingClaims.pop_front();
                ASSERT_TRUE(r.tryPublish(
                    c[0], static_cast<std::uint32_t>(c[1])));
                for (std::uint64_t i = 0; i < c[1]; ++i)
                    model.push_back(
                        static_cast<std::uint32_t>(c[2] + i));
                break;
              }
              default: { // consume
                ASSERT_EQ(r.empty(), model.empty());
                if (model.empty())
                    break;
                EXPECT_EQ(r.popHead(), model.front());
                model.pop_front();
                break;
              }
            }
            ASSERT_EQ(r.size(), model.size()) << "cap " << cap;
            ASSERT_EQ(r.full(), model.size() == cap);
        }
    }
}

// ================================================ part 2: end to end

SystemConfig
ringConfig(std::uint32_t shards = 1, std::uint32_t ring_entries = 64)
{
    SystemConfig cfg;
    cfg.gpu.numCus = 2;
    cfg.gpu.maxWavesPerCu = 8;
    cfg.gpu.maxWorkGroupsPerCu = 4;
    cfg.gpu.kernelLaunchLatency = ticks::us(5);
    cfg.genesys.areaShards = shards;
    cfg.genesys.useRings = true;
    cfg.genesys.ringEntries = ring_entries;
    return cfg;
}

Invocation
wgInv(Blocking b = Blocking::Blocking,
      WaitMode w = WaitMode::Polling)
{
    Invocation i;
    i.granularity = Granularity::WorkGroup;
    i.ordering = Ordering::Relaxed;
    i.blocking = b;
    i.waitMode = w;
    return i;
}

/** One open + pwrite per work-group through the rings. */
void
runRingKernel(System &sys, std::uint32_t groups,
              Blocking b = Blocking::Blocking,
              WaitMode w = WaitMode::Polling)
{
    if (sys.kernel().vfs().resolve("/ring") == nullptr)
        sys.kernel().vfs().createFile("/ring");
    gpu::KernelLaunch k;
    k.workItems = groups * 64;
    k.wgSize = 64;
    k.program = [&sys, b, w](gpu::WavefrontCtx &ctx) -> sim::Task<> {
        const auto fd = co_await sys.gpuSys().open(ctx, wgInv(b, w),
                                                   "/ring", 1);
        co_await sys.gpuSys().pwrite(ctx, wgInv(b, w),
                                     static_cast<int>(fd), "r", 1,
                                     ctx.workgroupId());
    };
    sys.launchGpuAndDrain(std::move(k));
    sys.run();
}

TEST(RingE2E, InterruptBackendPollingWait)
{
    System sys(ringConfig());
    sys.gsan().setEnabled(true);
    runRingKernel(sys, 8);
    EXPECT_TRUE(sys.syscallArea().quiescent());
    EXPECT_TRUE(sys.syscallArea().ringsIdle());
    EXPECT_GT(sys.host().processedSyscalls(), 0u);
    // Every syscall rode the SQ, and blocking completions rode the CQ.
    EXPECT_EQ(sys.syscallArea().ringEntriesTotal(),
              sys.host().processedSyscalls());
    EXPECT_GT(sys.syscallArea().ringBatchesTotal(), 0u);
    EXPECT_EQ(sys.host().ringCqPosted(),
              sys.host().processedSyscalls());
    EXPECT_EQ(sys.gsan().reportCount(), 0u);
}

TEST(RingE2E, InterruptBackendHaltResumeWait)
{
    // Halt/resume waiters keep the wake-on-complete path; only the
    // submission side rides the ring.
    System sys(ringConfig());
    sys.gsan().setEnabled(true);
    runRingKernel(sys, 8, Blocking::Blocking, WaitMode::HaltResume);
    EXPECT_TRUE(sys.syscallArea().quiescent());
    EXPECT_TRUE(sys.syscallArea().ringsIdle());
    EXPECT_GT(sys.host().processedSyscalls(), 0u);
    EXPECT_EQ(sys.syscallArea().ringEntriesTotal(),
              sys.host().processedSyscalls());
    EXPECT_EQ(sys.gsan().reportCount(), 0u);
}

TEST(RingE2E, NonBlockingThroughRings)
{
    System sys(ringConfig());
    sys.gsan().setEnabled(true);
    runRingKernel(sys, 8, Blocking::NonBlocking);
    EXPECT_TRUE(sys.syscallArea().quiescent());
    EXPECT_TRUE(sys.syscallArea().ringsIdle());
    EXPECT_GT(sys.host().processedSyscalls(), 0u);
    EXPECT_EQ(sys.gsan().reportCount(), 0u);
}

TEST(RingE2E, PollingDaemonPolledCompletionMode)
{
    System sys(ringConfig(2));
    sys.gsan().setEnabled(true);
    sys.host().startPollingDaemon(ticks::us(20));
    sys.kernel().vfs().createFile("/ringd");
    gpu::KernelLaunch k;
    k.workItems = 8 * 64;
    k.wgSize = 64;
    k.program = [&sys](gpu::WavefrontCtx &ctx) -> sim::Task<> {
        const auto fd =
            co_await sys.gpuSys().open(ctx, wgInv(), "/ringd", 1);
        co_await sys.gpuSys().pwrite(ctx, wgInv(),
                                     static_cast<int>(fd), "d", 1,
                                     ctx.workgroupId());
        if (ctx.workgroupId() == 0)
            sys.host().stopDaemon();
    };
    sys.launchGpu(std::move(k));
    sys.run();
    EXPECT_TRUE(sys.syscallArea().quiescent());
    EXPECT_TRUE(sys.syscallArea().ringsIdle());
    EXPECT_GT(sys.host().processedSyscalls(), 0u);
    // The daemon found every batch by polling the SQ, not doorbells.
    EXPECT_EQ(sys.host().interrupts(), 0u);
    EXPECT_EQ(sys.syscallArea().ringEntriesTotal(),
              sys.host().processedSyscalls());
    EXPECT_EQ(sys.gsan().reportCount(), 0u);
    EXPECT_EQ(sys.host().daemonScansLive(), 0u);
}

TEST(RingE2E, WorkItemLanesShareOneBatch)
{
    System sys(ringConfig());
    sys.gsan().setEnabled(true);
    sys.kernel().vfs().createFile("/ringwi");
    gpu::KernelLaunch k;
    k.workItems = 64;
    k.wgSize = 64;
    k.program = [&sys](gpu::WavefrontCtx &ctx) -> sim::Task<> {
        Invocation inv;
        inv.granularity = Granularity::WorkGroup;
        inv.ordering = Ordering::Strong;
        const auto fd =
            co_await sys.gpuSys().open(ctx, inv, "/ringwi", 1);
        Invocation wi;
        wi.granularity = Granularity::WorkItem;
        wi.ordering = Ordering::Strong;
        static const char payload[] = "x";
        co_await sys.gpuSys().invokeWorkItems(
            ctx, wi, osk::sysno::pwrite64,
            [fd](std::uint32_t lane) {
                return std::optional<osk::SyscallArgs>(osk::makeArgs(
                    fd, &payload[0], 1,
                    static_cast<std::int64_t>(lane)));
            },
            [](std::uint32_t, std::int64_t) {});
    };
    sys.launchGpuAndDrain(std::move(k));
    sys.run();
    EXPECT_TRUE(sys.syscallArea().quiescent());
    // A full wavefront's lanes are published as batches, so mean batch
    // occupancy beats one-entry-per-doorbell submission.
    EXPECT_GT(sys.syscallArea().ringBatchOccupancy(), 1.0);
    EXPECT_LT(sys.syscallArea().ringBatchesTotal(),
              sys.syscallArea().ringEntriesTotal());
    EXPECT_EQ(sys.gsan().reportCount(), 0u);
}

TEST(RingE2E, ConcurrentGroupsSuppressDoorbells)
{
    // Many groups on one shard overlap their batches: while the
    // consume task drains, later doorbells are elided.
    System sys(ringConfig());
    sys.gsan().setEnabled(true);
    runRingKernel(sys, 16);
    EXPECT_TRUE(sys.syscallArea().quiescent());
    EXPECT_GT(sys.host().ringDoorbellsSuppressed(), 0u);
    // Suppressed doorbells never strand a batch.
    EXPECT_TRUE(sys.syscallArea().ringsIdle());
    EXPECT_EQ(sys.gsan().reportCount(), 0u);
}

TEST(RingE2E, TinyRingForcesChunkedSubmission)
{
    // A 2-entry SQ cannot hold a whole wavefront of lane requests; the
    // submitter chunks the batch and spins on claim-full.
    System sys(ringConfig(1, 2));
    sys.gsan().setEnabled(true);
    runRingKernel(sys, 8);
    EXPECT_TRUE(sys.syscallArea().quiescent());
    EXPECT_TRUE(sys.syscallArea().ringsIdle());
    EXPECT_GT(sys.host().processedSyscalls(), 0u);
    EXPECT_EQ(sys.gsan().reportCount(), 0u);
}

TEST(RingE2E, MultiShardRingStatsSumAcrossShards)
{
    SystemConfig cfg = ringConfig(2);
    cfg.gpu.numCus = 4;
    System sys(cfg);
    runRingKernel(sys, 16);
    EXPECT_TRUE(sys.syscallArea().quiescent());
    std::uint64_t batches = 0;
    std::uint64_t entries = 0;
    for (std::uint32_t s = 0; s < 2; ++s) {
        EXPECT_GT(sys.syscallArea().ringEntriesOnShard(s), 0u)
            << "shard " << s;
        batches += sys.syscallArea().ringBatchesOnShard(s);
        entries += sys.syscallArea().ringEntriesOnShard(s);
        EXPECT_EQ(sys.syscallArea().sq(s).publishedTotal(),
                  sys.syscallArea().sq(s).consumedTotal())
            << "shard " << s;
    }
    EXPECT_EQ(batches, sys.syscallArea().ringBatchesTotal());
    EXPECT_EQ(entries, sys.syscallArea().ringEntriesTotal());
    EXPECT_GE(sys.syscallArea().ringBatchOccupancy(), 1.0);
}

TEST(RingE2E, RingOffLeavesRingsUntouched)
{
    SystemConfig cfg = ringConfig();
    cfg.genesys.useRings = false;
    System sys(cfg);
    runRingKernel(sys, 8);
    EXPECT_TRUE(sys.syscallArea().quiescent());
    EXPECT_GT(sys.host().processedSyscalls(), 0u);
    EXPECT_FALSE(sys.syscallArea().ringsEnabled());
    EXPECT_EQ(sys.syscallArea().ringBatchesTotal(), 0u);
    EXPECT_EQ(sys.host().ringCqPosted(), 0u);
    EXPECT_EQ(sys.host().ringDoorbellsSuppressed(), 0u);
}

TEST(RingE2E, StatsReportCarriesRingCounters)
{
    System sys(ringConfig());
    runRingKernel(sys, 8);
    const std::string report = sys.statsReport();
    EXPECT_NE(report.find("genesys.rings_enabled"), std::string::npos);
    EXPECT_NE(report.find("genesys.ring_batches"), std::string::npos);
    EXPECT_NE(report.find("genesys.ring_batch_occupancy"),
              std::string::npos);
}

// -------------------------------------------------- sysfs knob surface

class RingSysfsTest : public ::testing::Test
{
  protected:
    RingSysfsTest() : sys_(ringConfig(2, 16)) {}

    std::int64_t
    sys(int num, const osk::SyscallArgs &args)
    {
        std::int64_t ret = -1;
        sys_.sim().spawn([](System &s, int n, osk::SyscallArgs a,
                            std::int64_t &out) -> sim::Task<> {
            out = co_await s.kernel().doSyscall(s.process(), n, a);
        }(sys_, num, args, ret));
        sys_.run();
        return ret;
    }

    std::string
    readFile(const std::string &path)
    {
        const auto fd = sys(osk::sysno::open,
                            osk::makeArgs(path.c_str(), osk::O_RDONLY));
        if (fd < 0)
            return "<open failed>";
        char buf[64] = {};
        sys(osk::sysno::read, osk::makeArgs(fd, buf, 63));
        sys(osk::sysno::close, osk::makeArgs(fd));
        return buf;
    }

    System sys_;
};

TEST_F(RingSysfsTest, GlobalKnobsReadable)
{
    EXPECT_EQ(readFile("/sys/genesys/rings/enabled"), "1\n");
    EXPECT_EQ(readFile("/sys/genesys/rings/entries"), "16\n");
    runRingKernel(sys_, 8);
    EXPECT_EQ(readFile("/sys/genesys/rings/batches"),
              logging::format("%llu\n",
                              static_cast<unsigned long long>(
                                  sys_.syscallArea().ringBatchesTotal())));
    EXPECT_EQ(
        readFile("/sys/genesys/rings/cq_posted"),
        logging::format("%llu\n", static_cast<unsigned long long>(
                                      sys_.host().ringCqPosted())));
}

TEST_F(RingSysfsTest, PerShardCursorsReadable)
{
    runRingKernel(sys_, 8);
    std::uint64_t cq_tail_sum = 0;
    for (std::uint32_t s = 0; s < 2; ++s) {
        const auto dir = logging::format("/sys/genesys/rings/%u/", s);
        // Drained: the SQ head caught up with its tail. The CQ head
        // deliberately does not — waiters never pop CQEs, they watch
        // the monotone tail counter (DESIGN.md §13).
        EXPECT_EQ(readFile(dir + "sq_head"),
                  readFile(dir + "sq_tail"));
        EXPECT_EQ(readFile(dir + "entries"),
                  logging::format(
                      "%llu\n",
                      static_cast<unsigned long long>(
                          sys_.syscallArea().ringEntriesOnShard(s))));
        cq_tail_sum += sys_.syscallArea().cq(s).publishedTotal();
    }
    EXPECT_EQ(cq_tail_sum, sys_.host().ringCqPosted());
}

TEST_F(RingSysfsTest, KnobsAreReadOnly)
{
    const auto fd =
        sys(osk::sysno::open,
            osk::makeArgs("/sys/genesys/rings/enabled", osk::O_RDWR));
    ASSERT_GE(fd, 0);
    EXPECT_EQ(sys(osk::sysno::write, osk::makeArgs(fd, "0\n", 2)), 0);
    EXPECT_TRUE(sys_.syscallArea().ringsEnabled());
}

} // namespace
} // namespace genesys::core
