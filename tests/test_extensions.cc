/**
 * @file
 * Tests for the extension surface: the sysfs coalescing controls
 * (Section VI) and the forward-looking GPU signal delivery built on
 * dynamic kernel launch + thread recombination (Section IV).
 */

#include <gtest/gtest.h>

#include <cerrno>
#include <set>
#include <string>

#include "core/gpu_signals.hh"
#include "core/system.hh"
#include "osk/file.hh"
#include "osk/sysfs.hh"

namespace genesys::core
{
namespace
{

// ------------------------------------------------------------- sysfs

class SysfsTest : public ::testing::Test
{
  protected:
    std::int64_t
    sys(int num, const osk::SyscallArgs &args)
    {
        std::int64_t ret = -1;
        sys_.sim().spawn([](System &s, int n, osk::SyscallArgs a,
                            std::int64_t &out) -> sim::Task<> {
            out = co_await s.kernel().doSyscall(s.process(), n, a);
        }(sys_, num, args, ret));
        sys_.run();
        return ret;
    }

    System sys_;
};

TEST_F(SysfsTest, CoalesceWindowReadableAndWritable)
{
    const auto fd = sys(osk::sysno::open,
                        osk::makeArgs("/sys/genesys/coalesce_window_ns",
                                      osk::O_RDWR));
    ASSERT_GE(fd, 0);
    char buf[32] = {};
    ASSERT_GT(sys(osk::sysno::read, osk::makeArgs(fd, buf, 31)), 0);
    EXPECT_EQ(std::string(buf), "0\n"); // coalescing off by default

    EXPECT_EQ(sys(osk::sysno::write, osk::makeArgs(fd, "25000\n", 6)),
              6);
    EXPECT_EQ(sys_.host().coalesceWindow(), 25000u);
}

TEST_F(SysfsTest, CoalesceBatchValidatesWrites)
{
    const auto fd = sys(osk::sysno::open,
                        osk::makeArgs("/sys/genesys/coalesce_max_batch",
                                      osk::O_RDWR));
    ASSERT_GE(fd, 0);
    EXPECT_EQ(sys(osk::sysno::write, osk::makeArgs(fd, "8\n", 2)), 2);
    EXPECT_EQ(sys_.host().coalesceMaxBatch(), 8u);
    // Zero batch and garbage are rejected (0 bytes written).
    EXPECT_EQ(sys(osk::sysno::write, osk::makeArgs(fd, "0\n", 2)), 0);
    EXPECT_EQ(sys_.host().coalesceMaxBatch(), 8u);
    EXPECT_EQ(sys(osk::sysno::write, osk::makeArgs(fd, "abc", 3)), 0);
    EXPECT_EQ(sys_.host().coalesceMaxBatch(), 8u);
}

TEST_F(SysfsTest, SysfsControlsActuallyCoalesce)
{
    // Turn coalescing on through the filesystem, then observe batched
    // interrupt handling — the full Section VI control loop.
    const auto wfd = sys(osk::sysno::open,
                         osk::makeArgs("/sys/genesys/coalesce_window_ns",
                                       osk::O_RDWR));
    const auto bfd = sys(osk::sysno::open,
                         osk::makeArgs("/sys/genesys/coalesce_max_batch",
                                       osk::O_RDWR));
    ASSERT_EQ(sys(osk::sysno::write, osk::makeArgs(wfd, "50000", 5)),
              5);
    ASSERT_EQ(sys(osk::sysno::write, osk::makeArgs(bfd, "8", 1)), 1);

    sys_.kernel().vfs().createFile("/co")->setSynthetic(1 << 20);
    gpu::KernelLaunch k;
    k.workItems = 16 * 64;
    k.wgSize = 64;
    k.program = [this](gpu::WavefrontCtx &ctx) -> sim::Task<> {
        Invocation wg;
        wg.ordering = Ordering::Relaxed;
        const auto fd =
            co_await sys_.gpuSys().open(ctx, wg, "/co", osk::O_RDONLY);
        co_await sys_.gpuSys().pread(ctx, wg, static_cast<int>(fd),
                                     nullptr, 1024,
                                     ctx.workgroupId() * 1024);
    };
    sys_.launchGpuAndDrain(std::move(k));
    sys_.run();
    EXPECT_GT(sys_.host().interrupts(), sys_.host().batches());
    EXPECT_GT(sys_.host().batchSizes().mean(), 1.0);
}

// -------------------------------------------------------- GPU signals

TEST(GpuSignals, SigactionValidation)
{
    sim::Sim sim;
    gpu::GpuConfig cfg;
    gpu::GpuDevice gpu(sim, cfg);
    GpuSignalDelivery sig(sim, gpu);
    EXPECT_EQ(sig.sigaction(0, nullptr), -EINVAL);
    EXPECT_EQ(sig.sigaction(
                  70, [](gpu::WavefrontCtx &,
                         std::span<const osk::SigInfo>) -> sim::Task<> {
                      co_return;
                  }),
              -EINVAL);
    EXPECT_EQ(sig.sigaction(
                  osk::SIGRTMIN_,
                  [](gpu::WavefrontCtx &,
                     std::span<const osk::SigInfo>) -> sim::Task<> {
                      co_return;
                  }),
              0);
    EXPECT_TRUE(sig.removeHandler(osk::SIGRTMIN_));
    EXPECT_FALSE(sig.removeHandler(osk::SIGRTMIN_));
}

TEST(GpuSignals, DeliverWithoutHandlerFails)
{
    sim::Sim sim;
    gpu::GpuConfig cfg;
    gpu::GpuDevice gpu(sim, cfg);
    GpuSignalDelivery sig(sim, gpu);
    osk::SigInfo info;
    info.signo = osk::SIGRTMIN_;
    EXPECT_EQ(sig.deliver(info), -EINVAL);
}

TEST(GpuSignals, HandlerRunsOncePerSignalValue)
{
    sim::Sim sim;
    gpu::GpuConfig cfg;
    cfg.kernelLaunchLatency = ticks::us(15);
    gpu::GpuDevice gpu(sim, cfg);
    GpuSignalDelivery sig(sim, gpu);

    std::multiset<std::int64_t> handled;
    ASSERT_EQ(sig.sigaction(
                  osk::SIGRTMIN_,
                  [&handled](gpu::WavefrontCtx &ctx,
                             std::span<const osk::SigInfo> infos)
                      -> sim::Task<> {
                      for (std::uint32_t lane = 0;
                           lane < infos.size(); ++lane) {
                          handled.insert(infos[lane].value);
                      }
                      co_await ctx.compute(100);
                  }),
              0);

    for (int i = 0; i < 5; ++i) {
        osk::SigInfo info;
        info.signo = osk::SIGRTMIN_;
        info.value = i;
        EXPECT_EQ(sig.deliver(info), 0);
    }
    sim.run();
    EXPECT_EQ(handled.size(), 5u);
    EXPECT_EQ(sig.delivered(), 5u);
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(handled.count(i), 1u);
}

TEST(GpuSignals, RecombinationBatchesIntoOneWave)
{
    sim::Sim sim;
    gpu::GpuConfig cfg;
    gpu::GpuDevice gpu(sim, cfg);
    GpuSignalParams params;
    params.recombineWindow = ticks::us(10);
    GpuSignalDelivery sig(sim, gpu, params);
    int waves = 0;
    sig.sigaction(osk::SIGRTMIN_,
                  [&waves](gpu::WavefrontCtx &,
                           std::span<const osk::SigInfo>)
                      -> sim::Task<> {
                      ++waves;
                      co_return;
                  });
    // 5 deliveries inside one window: one handler wavefront.
    for (int i = 0; i < 5; ++i) {
        osk::SigInfo info;
        info.signo = osk::SIGRTMIN_;
        sig.deliver(info);
    }
    sim.run();
    EXPECT_EQ(waves, 1);
    EXPECT_EQ(sig.handlerWaves(), 1u);
    EXPECT_DOUBLE_EQ(sig.recombination().mean(), 5.0);
}

TEST(GpuSignals, FullWaveFlushesImmediately)
{
    sim::Sim sim;
    gpu::GpuConfig cfg;
    gpu::GpuDevice gpu(sim, cfg);
    GpuSignalDelivery sig(sim, gpu);
    int lanes_seen = 0;
    sig.sigaction(osk::SIGRTMIN_,
                  [&lanes_seen](gpu::WavefrontCtx &,
                                std::span<const osk::SigInfo> infos)
                      -> sim::Task<> {
                      lanes_seen += static_cast<int>(infos.size());
                      co_return;
                  });
    // 130 deliveries = 2 full waves (64) + 2 stragglers.
    for (int i = 0; i < 130; ++i) {
        osk::SigInfo info;
        info.signo = osk::SIGRTMIN_;
        sig.deliver(info);
    }
    sim.run();
    EXPECT_EQ(lanes_seen, 130);
    EXPECT_EQ(sig.handlerWaves(), 3u);
    EXPECT_EQ(sig.recombination().max(), 64.0);
}

TEST(GpuSignals, DynamicLaunchFasterThanHostLaunch)
{
    // The point of the extension: handler startup skips the host
    // dispatch path. Compare time-to-handler for one delivery vs a
    // host-launched kernel.
    sim::Sim sim;
    gpu::GpuConfig cfg;
    cfg.kernelLaunchLatency = ticks::us(15);
    gpu::GpuDevice gpu(sim, cfg);
    GpuSignalParams params;
    params.recombineWindow = 0;
    params.dynamicLaunchLatency = ticks::us(3);
    GpuSignalDelivery sig(sim, gpu, params);
    Tick handler_at = 0;
    sig.sigaction(osk::SIGRTMIN_,
                  [&handler_at](gpu::WavefrontCtx &ctx,
                                std::span<const osk::SigInfo>)
                      -> sim::Task<> {
                      handler_at = ctx.sim().now();
                      co_return;
                  });
    osk::SigInfo info;
    info.signo = osk::SIGRTMIN_;
    sig.deliver(info);
    sim.run();
    EXPECT_GT(handler_at, 0u);
    EXPECT_LT(handler_at, ticks::us(15)); // beats a host launch
}

// ------------------------------------------------- dynamic launch

TEST(DynamicLaunch, ParentSpawnsChildrenWithoutCpuRoundTrip)
{
    sim::Sim sim;
    gpu::GpuConfig cfg;
    cfg.kernelLaunchLatency = ticks::us(15);
    cfg.dynamicLaunchLatency = ticks::us(3);
    gpu::GpuDevice gpu(sim, cfg);

    int child_waves = 0;
    Tick first_child_at = 0;
    gpu::KernelLaunch parent;
    parent.workItems = 64;
    parent.wgSize = 64;
    parent.program = [&](gpu::WavefrontCtx &ctx) -> sim::Task<> {
        for (int c = 0; c < 3; ++c) {
            gpu::KernelLaunch child;
            child.workItems = 2 * 64;
            child.wgSize = 64;
            child.program = [&](gpu::WavefrontCtx &cctx)
                -> sim::Task<> {
                if (first_child_at == 0)
                    first_child_at = cctx.sim().now();
                ++child_waves;
                co_await cctx.compute(100);
            };
            co_await ctx.launchKernel(std::move(child));
        }
    };
    sim.spawn(gpu.launch(std::move(parent)));
    sim.run();
    EXPECT_EQ(child_waves, 6);
    EXPECT_EQ(gpu.launchedKernels(), 4u);
    // First child starts ~3us after the parent begins (15us host
    // dispatch), not 15+15.
    EXPECT_LT(first_child_at, ticks::us(15) + ticks::us(5));
    EXPECT_GE(first_child_at, ticks::us(15) + ticks::us(3));
}

TEST(DynamicLaunch, ChildrenShareResidencyWithParent)
{
    sim::Sim sim;
    gpu::GpuConfig cfg;
    cfg.numCus = 1;
    cfg.maxWavesPerCu = 4;
    cfg.maxWorkGroupsPerCu = 4;
    cfg.kernelLaunchLatency = 0;
    gpu::GpuDevice gpu(sim, cfg);
    std::uint32_t peak = 0;
    gpu::KernelLaunch parent;
    parent.workItems = 64;
    parent.wgSize = 64;
    parent.program = [&](gpu::WavefrontCtx &ctx) -> sim::Task<> {
        gpu::KernelLaunch child;
        child.workItems = 8 * 64; // more groups than free residency
        child.wgSize = 64;
        child.program = [&](gpu::WavefrontCtx &cctx) -> sim::Task<> {
            peak = std::max(peak, gpu.residentWorkGroups());
            co_await cctx.compute(1000);
        };
        co_await ctx.launchKernel(std::move(child));
    };
    sim.spawn(gpu.launch(std::move(parent)));
    sim.run();
    // Parent holds one of the 4 WG slots while its children run.
    EXPECT_EQ(peak, 4u);
    EXPECT_EQ(gpu.residentWorkGroups(), 0u);
}

} // namespace
} // namespace genesys::core
