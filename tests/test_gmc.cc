/**
 * @file
 * gmc schedule-space model checker tests: schedule string round-trips,
 * exhaustive clean verification of the 1-shard × 1-worker configs,
 * seeded protocol mutants (each found with a replayable
 * counterexample), and replay determinism.
 */

#include <gtest/gtest.h>

#include "core/gmc.hh"
#include "sim/explore.hh"

// Mutant explorations deliberately produce stuck runs whose suspended
// coroutine frames are reclaimed only by process exit; waive leak
// checking around them so the asan CI job stays green.
#if defined(__has_feature)
#if __has_feature(address_sanitizer)
#define GMC_UNDER_ASAN 1
#endif
#elif defined(__SANITIZE_ADDRESS__)
#define GMC_UNDER_ASAN 1
#endif
#ifdef GMC_UNDER_ASAN
#include <sanitizer/lsan_interface.h>
#endif

namespace
{

using namespace genesys;
using core::Blocking;
using core::Granularity;
using core::Ordering;
using core::WaitMode;
using core::gmc::McConfig;
using sim::gmc::ExploreOptions;
using sim::gmc::ExploreResult;
using sim::gmc::RunOutcome;
using sim::gmc::Schedule;

struct LeakWaiver
{
    LeakWaiver()
    {
#ifdef GMC_UNDER_ASAN
        __lsan_disable();
#endif
    }
    ~LeakWaiver()
    {
#ifdef GMC_UNDER_ASAN
        __lsan_enable();
#endif
    }
};

McConfig
baseConfig(Granularity g, WaitMode wait)
{
    McConfig mc;
    mc.granularity = g;
    mc.ordering = Ordering::Strong;
    mc.blocking = Blocking::Blocking;
    mc.wait = wait;
    mc.areaShards = 1;
    mc.workers = 1;
    mc.groups = 1;
    return mc;
}

// ------------------------------------------------- schedule strings

TEST(GmcSchedule, RenderAndParseRoundTrip)
{
    EXPECT_EQ(sim::gmc::renderSchedule({}), "fifo");
    EXPECT_EQ(sim::gmc::renderSchedule({2, 0, 1}), "2.0.1");

    Schedule s;
    EXPECT_TRUE(sim::gmc::parseSchedule("fifo", s));
    EXPECT_TRUE(s.empty());
    EXPECT_TRUE(sim::gmc::parseSchedule("", s));
    EXPECT_TRUE(s.empty());
    EXPECT_TRUE(sim::gmc::parseSchedule("2.0.1", s));
    EXPECT_EQ(s, (Schedule{2, 0, 1}));
    // Trailing zeros are implied FIFO choices: canonicalized away.
    EXPECT_TRUE(sim::gmc::parseSchedule("1.0.0", s));
    EXPECT_EQ(s, (Schedule{1}));

    EXPECT_FALSE(sim::gmc::parseSchedule("1..2", s));
    EXPECT_FALSE(sim::gmc::parseSchedule(".1", s));
    EXPECT_FALSE(sim::gmc::parseSchedule("1.", s));
    EXPECT_FALSE(sim::gmc::parseSchedule("1.x", s));
    EXPECT_FALSE(sim::gmc::parseSchedule("99999999999", s));
}

TEST(GmcSchedule, ConfigNamesAreUniqueAndLookupWorks)
{
    const auto matrix = core::gmc::smallMatrix();
    ASSERT_FALSE(matrix.empty());
    for (std::size_t i = 0; i < matrix.size(); ++i) {
        for (std::size_t j = i + 1; j < matrix.size(); ++j)
            EXPECT_NE(matrix[i].name(), matrix[j].name());
    }
    const McConfig *mc =
        core::gmc::configByName(matrix, matrix.front().name());
    ASSERT_NE(mc, nullptr);
    EXPECT_EQ(mc->name(), matrix.front().name());
    EXPECT_EQ(core::gmc::configByName(matrix, "no-such-config"),
              nullptr);
}

// ------------------------------------------------ clean exploration

TEST(GmcClean, FifoRunIsDeterministic)
{
    const McConfig mc =
        baseConfig(Granularity::WorkGroup, WaitMode::Polling);
    const RunOutcome a = core::gmc::replayConfig(mc, {});
    const RunOutcome b = core::gmc::replayConfig(mc, {});
    EXPECT_FALSE(a.violation) << a.kind << ": " << a.detail;
    EXPECT_EQ(a.digest, b.digest);
    EXPECT_EQ(a.endTick, b.endTick);
    EXPECT_EQ(a.events, b.events);
}

TEST(GmcClean, WorkItemOneShardExhaustive)
{
    const McConfig mc =
        baseConfig(Granularity::WorkItem, WaitMode::Polling);
    const ExploreResult r = core::gmc::exploreConfig(mc, {});
    EXPECT_TRUE(r.stats.exhaustive);
    EXPECT_GT(r.stats.schedulesRun, 1u);
    for (const auto &v : r.violations) {
        ADD_FAILURE() << mc.name() << " schedule "
                      << sim::gmc::renderSchedule(v.schedule) << ": "
                      << v.outcome.kind << " — " << v.outcome.detail;
    }
}

TEST(GmcClean, WorkGroupOneShardExhaustive)
{
    const McConfig mc =
        baseConfig(Granularity::WorkGroup, WaitMode::Polling);
    const ExploreResult r = core::gmc::exploreConfig(mc, {});
    EXPECT_TRUE(r.stats.exhaustive);
    EXPECT_GT(r.stats.schedulesRun, 1u);
    for (const auto &v : r.violations) {
        ADD_FAILURE() << mc.name() << " schedule "
                      << sim::gmc::renderSchedule(v.schedule) << ": "
                      << v.outcome.kind << " — " << v.outcome.detail;
    }
}

TEST(GmcClean, WorkGroupHaltResumeExhaustive)
{
    const McConfig mc =
        baseConfig(Granularity::WorkGroup, WaitMode::HaltResume);
    const ExploreResult r = core::gmc::exploreConfig(mc, {});
    EXPECT_TRUE(r.stats.exhaustive);
    for (const auto &v : r.violations) {
        ADD_FAILURE() << mc.name() << " schedule "
                      << sim::gmc::renderSchedule(v.schedule) << ": "
                      << v.outcome.kind << " — " << v.outcome.detail;
    }
}

TEST(GmcClean, BoundedExplorationReportsNonExhaustive)
{
    const McConfig mc =
        baseConfig(Granularity::WorkGroup, WaitMode::Polling);
    ExploreOptions opts;
    opts.maxSchedules = 2;
    const ExploreResult r = core::gmc::exploreConfig(mc, opts);
    EXPECT_LE(r.stats.schedulesRun, 2u);
    EXPECT_FALSE(r.stats.exhaustive);
}

// ------------------------------------------------- seeded mutants

/** Explore @p mc expecting at least one violation of kind @p kind,
 *  then re-execute the counterexample schedule twice and require the
 *  identical outcome (replayability + determinism). */
void
expectMutantCaught(McConfig mc, const char *kind)
{
    LeakWaiver waiver;
    ExploreOptions opts;
    opts.maxCounterexamples = 1;
    const ExploreResult r = core::gmc::exploreConfig(mc, opts);
    ASSERT_FALSE(r.violations.empty())
        << mc.name() << ": mutant not found";
    const auto &cx = r.violations.front();
    EXPECT_EQ(cx.outcome.kind, kind)
        << "schedule " << sim::gmc::renderSchedule(cx.schedule) << ": "
        << cx.outcome.detail;

    const RunOutcome once = core::gmc::replayConfig(mc, cx.schedule);
    const RunOutcome twice = core::gmc::replayConfig(mc, cx.schedule);
    EXPECT_TRUE(once.violation);
    EXPECT_EQ(once.kind, cx.outcome.kind);
    EXPECT_EQ(once.kind, twice.kind);
    EXPECT_EQ(once.detail, twice.detail);
    EXPECT_EQ(once.endTick, twice.endTick);
    EXPECT_EQ(once.events, twice.events);
}

TEST(GmcMutant, DoorbellBeforePublishStrandsRequest)
{
    // FIFO hides this bug: the publish's zero-latency continuation
    // drains before the doorbell's multi-hop delivery. gmc must find
    // an adversarial order that services the still-Populating slot.
    McConfig mc = baseConfig(Granularity::WorkGroup, WaitMode::Polling);
    mc.hooks.doorbellBeforePublish = true;

    // First confirm FIFO really is blind to it — the whole reason a
    // model checker is needed.
    {
        LeakWaiver waiver;
        const RunOutcome fifo = core::gmc::replayConfig(mc, {});
        EXPECT_FALSE(fifo.violation)
            << "FIFO already catches it: " << fifo.kind;
    }
    expectMutantCaught(mc, "stuck");
}

TEST(GmcMutant, WakeBeforeCompleteLosesWakeup)
{
    McConfig mc =
        baseConfig(Granularity::WorkGroup, WaitMode::HaltResume);
    mc.hooks.wakeBeforeComplete = true;
    expectMutantCaught(mc, "stuck");
}

TEST(GmcMutant, SkipPostBarrierTripsGsan)
{
    McConfig mc = baseConfig(Granularity::WorkGroup, WaitMode::Polling);
    mc.hooks.skipPostBarrier = true;
    expectMutantCaught(mc, "gsan");
}

TEST(GmcPor, FootprintPorIsHeuristicNotSound)
{
    // The doorbell-before-publish mutant needs several dependent
    // same-tick flips; the footprint heuristic only sees the executed
    // window of each run and prunes the path to it. This test pins the
    // unsoundness that keeps ExploreOptions::por off by default — if
    // POR ever *does* find the mutant, the heuristic got stronger and
    // the documentation (DESIGN.md §11, explore.hh) must be revisited.
    LeakWaiver waiver;
    McConfig mc = baseConfig(Granularity::WorkGroup, WaitMode::Polling);
    mc.hooks.doorbellBeforePublish = true;

    ExploreOptions exhaustive;
    const ExploreResult full = core::gmc::exploreConfig(mc, exhaustive);
    ASSERT_FALSE(full.violations.empty());

    ExploreOptions heuristic;
    heuristic.por = true;
    const ExploreResult pruned =
        core::gmc::exploreConfig(mc, heuristic);
    EXPECT_GT(pruned.stats.branchesPruned, 0u);
    EXPECT_LT(pruned.stats.schedulesRun, full.stats.schedulesRun);
    EXPECT_TRUE(pruned.violations.empty())
        << "POR now finds the doorbell mutant (schedule "
        << sim::gmc::renderSchedule(
               pruned.violations.front().schedule)
        << "); update the soundness caveats before relying on it";
}

TEST(GmcReplay, OutOfRangeChoiceReportsPanic)
{
    const McConfig mc =
        baseConfig(Granularity::WorkGroup, WaitMode::Polling);
    // No tie point in this scenario has 1000 candidates.
    const RunOutcome out = core::gmc::replayConfig(mc, {999});
    EXPECT_TRUE(out.violation);
    EXPECT_EQ(out.kind, "panic");
}

// ------------------------------------------- gnet echo exploration

TEST(GmcNet, FifoRunIsCleanAndDeterministic)
{
    const McConfig mc =
        baseConfig(Granularity::WorkGroup, WaitMode::Polling);
    const RunOutcome a = core::gmc::replayNetConfig(mc, {});
    const RunOutcome b = core::gmc::replayNetConfig(mc, {});
    EXPECT_FALSE(a.violation) << a.kind << ": " << a.detail;
    EXPECT_EQ(a.digest, b.digest);
    EXPECT_EQ(a.endTick, b.endTick);
    EXPECT_EQ(a.events, b.events);
}

TEST(GmcNet, PollingBoundedExplorationIsClean)
{
    const McConfig mc =
        baseConfig(Granularity::WorkGroup, WaitMode::Polling);
    // The net scenario's schedule space is far larger than the pwrite
    // scenario's (wire deliveries and readiness callbacks add tie
    // points), so CI explores a bounded prefix rather than the full
    // space. Every explored schedule must still pass all oracles.
    ExploreOptions opts;
    opts.maxSchedules = 24;
    opts.maxDepth = 12;
    const ExploreResult r = core::gmc::exploreNetConfig(mc, opts);
    EXPECT_GT(r.stats.schedulesRun, 1u);
    for (const auto &v : r.violations) {
        ADD_FAILURE() << mc.name() << " net schedule "
                      << sim::gmc::renderSchedule(v.schedule) << ": "
                      << v.outcome.kind << " — " << v.outcome.detail;
    }
}

TEST(GmcNet, HaltResumeBoundedExplorationIsClean)
{
    // Halt/resume is where a lost epoll wake-up would strand the
    // server wave: a "stuck" or gsan violation on any schedule here
    // is a real wake/halt race in the readiness path.
    const McConfig mc =
        baseConfig(Granularity::WorkGroup, WaitMode::HaltResume);
    ExploreOptions opts;
    opts.maxSchedules = 24;
    opts.maxDepth = 12;
    const ExploreResult r = core::gmc::exploreNetConfig(mc, opts);
    EXPECT_GT(r.stats.schedulesRun, 1u);
    for (const auto &v : r.violations) {
        ADD_FAILURE() << mc.name() << " net schedule "
                      << sim::gmc::renderSchedule(v.schedule) << ": "
                      << v.outcome.kind << " — " << v.outcome.detail;
    }
}

// --------------------------------- edge-triggered gnet exploration

TEST(GmcEtNet, NameCarriesLostEdgeSuffix)
{
    McConfig mc = baseConfig(Granularity::WorkGroup, WaitMode::Polling);
    const std::string plain = mc.name();
    mc.lostEdge = true;
    EXPECT_EQ(mc.name(), plain + "-etlost");
}

TEST(GmcEtNet, FifoRunIsCleanAndDeterministic)
{
    const McConfig mc =
        baseConfig(Granularity::WorkGroup, WaitMode::Polling);
    const RunOutcome a = core::gmc::replayEtNetConfig(mc, {});
    const RunOutcome b = core::gmc::replayEtNetConfig(mc, {});
    EXPECT_FALSE(a.violation) << a.kind << ": " << a.detail;
    EXPECT_EQ(a.digest, b.digest);
    EXPECT_EQ(a.endTick, b.endTick);
    EXPECT_EQ(a.events, b.events);
}

TEST(GmcEtNet, PollingBoundedExplorationIsClean)
{
    // Like the LT net scenario, the schedule space is too large for
    // exhaustive CI exploration; every explored schedule must still
    // pass all oracles — in particular, no reordering of wire
    // deliveries against the drain loop may lose a readiness edge.
    const McConfig mc =
        baseConfig(Granularity::WorkGroup, WaitMode::Polling);
    ExploreOptions opts;
    opts.maxSchedules = 24;
    opts.maxDepth = 12;
    const ExploreResult r = core::gmc::exploreEtNetConfig(mc, opts);
    EXPECT_GT(r.stats.schedulesRun, 1u);
    for (const auto &v : r.violations) {
        ADD_FAILURE() << mc.name() << " ET net schedule "
                      << sim::gmc::renderSchedule(v.schedule) << ": "
                      << v.outcome.kind << " — " << v.outcome.detail;
    }
}

TEST(GmcEtNet, LostEdgeMutantStrandsServer)
{
    // The seeded mutant observes the connection's first readable
    // transition but never latches it as pending. Under strict ET no
    // later send can re-derive the edge (data arriving on a non-empty
    // chain is not a transition), so the server sleeps in epoll_wait
    // and the client blocks on its echo. Unlike the slot-protocol
    // mutants this drop is not a reordering — it fires on every
    // schedule — so the value here is the oracle coverage and the
    // replayable counterexample, exercised in the halt/resume wait
    // mode where a lost readiness edge really does strand the wave.
    LeakWaiver waiver;
    McConfig mc =
        baseConfig(Granularity::WorkGroup, WaitMode::HaltResume);
    mc.lostEdge = true;
    ExploreOptions opts;
    opts.maxCounterexamples = 1;
    const ExploreResult r = core::gmc::exploreEtNetConfig(mc, opts);
    ASSERT_FALSE(r.violations.empty())
        << mc.name() << ": lost-edge mutant not found";
    const auto &cx = r.violations.front();
    EXPECT_EQ(cx.outcome.kind, "stuck")
        << "schedule " << sim::gmc::renderSchedule(cx.schedule) << ": "
        << cx.outcome.detail;

    const RunOutcome once = core::gmc::replayEtNetConfig(mc, cx.schedule);
    const RunOutcome twice =
        core::gmc::replayEtNetConfig(mc, cx.schedule);
    EXPECT_TRUE(once.violation);
    EXPECT_EQ(once.kind, cx.outcome.kind);
    EXPECT_EQ(once.kind, twice.kind);
    EXPECT_EQ(once.detail, twice.detail);
    EXPECT_EQ(once.endTick, twice.endTick);
    EXPECT_EQ(once.events, twice.events);
}

// --------------------------------------- SQ/CQ ring exploration

/** Ring analogue of expectMutantCaught: explore the ringScenario of
 *  @p mc, require a counterexample of kind @p kind, then replay its
 *  schedule twice and require identical outcomes. */
void
expectRingMutantCaught(McConfig mc, const char *kind)
{
    LeakWaiver waiver;
    ExploreOptions opts;
    opts.maxCounterexamples = 1;
    const ExploreResult r = core::gmc::exploreRingConfig(mc, opts);
    ASSERT_FALSE(r.violations.empty())
        << mc.name() << ": ring mutant not found";
    const auto &cx = r.violations.front();
    EXPECT_EQ(cx.outcome.kind, kind)
        << "schedule " << sim::gmc::renderSchedule(cx.schedule) << ": "
        << cx.outcome.detail;

    const RunOutcome once =
        core::gmc::replayRingConfig(mc, cx.schedule);
    const RunOutcome twice =
        core::gmc::replayRingConfig(mc, cx.schedule);
    EXPECT_TRUE(once.violation);
    EXPECT_EQ(once.kind, cx.outcome.kind);
    EXPECT_EQ(once.kind, twice.kind);
    EXPECT_EQ(once.detail, twice.detail);
    EXPECT_EQ(once.endTick, twice.endTick);
    EXPECT_EQ(once.events, twice.events);
}

TEST(GmcRing, NameCarriesRingSuffix)
{
    McConfig mc = baseConfig(Granularity::WorkGroup, WaitMode::Polling);
    const std::string plain = mc.name();
    mc.useRings = true;
    mc.ringEntries = 4;
    EXPECT_EQ(mc.name(), plain + "-ring4");
}

TEST(GmcRing, FifoRunIsCleanAndDeterministic)
{
    const McConfig mc =
        baseConfig(Granularity::WorkGroup, WaitMode::Polling);
    const RunOutcome a = core::gmc::replayRingConfig(mc, {});
    const RunOutcome b = core::gmc::replayRingConfig(mc, {});
    EXPECT_FALSE(a.violation) << a.kind << ": " << a.detail;
    EXPECT_EQ(a.digest, b.digest);
    EXPECT_EQ(a.endTick, b.endTick);
    EXPECT_EQ(a.events, b.events);
    // Ring submission changes the event structure, so the digest must
    // differ from the slot-doorbell run of the same config — proof the
    // scenario actually went through the rings.
    const RunOutcome slots = core::gmc::replayConfig(mc, {});
    EXPECT_NE(a.digest, slots.digest);
}

TEST(GmcRing, WorkGroupOneShardExhaustive)
{
    const McConfig mc =
        baseConfig(Granularity::WorkGroup, WaitMode::Polling);
    const ExploreResult r = core::gmc::exploreRingConfig(mc, {});
    EXPECT_TRUE(r.stats.exhaustive);
    EXPECT_GT(r.stats.schedulesRun, 1u);
    for (const auto &v : r.violations) {
        ADD_FAILURE() << mc.name() << " ring schedule "
                      << sim::gmc::renderSchedule(v.schedule) << ": "
                      << v.outcome.kind << " — " << v.outcome.detail;
    }
}

TEST(GmcRing, WorkItemOneShardExhaustive)
{
    // Work-item granularity submits wavefront-sized batches through
    // the single-entry model ring, so every chunk exercises the
    // SQ-full claim-retry path and the multi-batch doorbell decision.
    const McConfig mc =
        baseConfig(Granularity::WorkItem, WaitMode::Polling);
    const ExploreResult r = core::gmc::exploreRingConfig(mc, {});
    EXPECT_TRUE(r.stats.exhaustive);
    EXPECT_GT(r.stats.schedulesRun, 1u);
    for (const auto &v : r.violations) {
        ADD_FAILURE() << mc.name() << " ring schedule "
                      << sim::gmc::renderSchedule(v.schedule) << ": "
                      << v.outcome.kind << " — " << v.outcome.detail;
    }
}

TEST(GmcRingMutant, DroppedDoorbellStrandsBatch)
{
    // The mutant samples SQ occupancy once at chunk start and skips
    // the doorbell whenever the ring looked non-empty. With chunked
    // work-item submission the consumer can drain the sampled entries
    // and go idle before the next chunk publishes — that chunk's
    // doorbell is the only wake-up, and it never rings.
    McConfig mc = baseConfig(Granularity::WorkItem, WaitMode::Polling);
    mc.hooks.ringDropDoorbell = true;
    expectRingMutantCaught(mc, "stuck");
}

TEST(GmcRingMutant, CompletionBeforePublishStrandsWaiter)
{
    // The mutant posts the CQE and yields before servicing the entry.
    // FIFO hides it (the service continuation runs before the waiter's
    // next poll); gmc must find the order where the waiter observes
    // the tail advance, re-sweeps a still-unfinished slot, and then
    // elides every later sweep because the tail never moves again.
    McConfig mc = baseConfig(Granularity::WorkGroup, WaitMode::Polling);
    mc.hooks.ringCompleteBeforePublish = true;

    {
        LeakWaiver waiver;
        const RunOutcome fifo = core::gmc::replayRingConfig(mc, {});
        EXPECT_FALSE(fifo.violation)
            << "FIFO already catches it: " << fifo.kind;
    }
    expectRingMutantCaught(mc, "stuck");
}

TEST(GmcRingMutant, StaleHeadReadSpinsOnFullRing)
{
    // The mutant never refreshes its observed head across claim
    // retries. The second chunk of a work-item batch finds the
    // single-entry ring full, and — with the head observation frozen
    // before the consumer's pop — retries forever on a ring that is
    // actually empty.
    McConfig mc = baseConfig(Granularity::WorkItem, WaitMode::Polling);
    mc.hooks.ringStaleHead = true;
    expectRingMutantCaught(mc, "stuck");
}

} // namespace
