/**
 * @file
 * Unit tests for the support library: logging, random, stats, tables.
 */

#include <gtest/gtest.h>

#include <set>

#include "support/logging.hh"
#include "support/random.hh"
#include "support/stats.hh"
#include "support/table.hh"
#include "support/types.hh"

namespace genesys
{
namespace
{

// ---------------------------------------------------------------- logging

TEST(Logging, FormatProducesPrintfOutput)
{
    EXPECT_EQ(logging::format("x=%d s=%s", 7, "hi"), "x=7 s=hi");
}

TEST(Logging, FormatHandlesLongStrings)
{
    const std::string big(10000, 'q');
    EXPECT_EQ(logging::format("%s", big.c_str()), big);
}

TEST(Logging, PanicThrowsPanicError)
{
    EXPECT_THROW(panic("boom %d", 42), PanicError);
}

TEST(Logging, FatalThrowsFatalError)
{
    EXPECT_THROW(fatal("user error"), FatalError);
}

TEST(Logging, FatalMessagePreserved)
{
    try {
        fatal("bad config: %s", "nofile");
        FAIL() << "fatal returned";
    } catch (const FatalError &e) {
        EXPECT_STREQ(e.what(), "bad config: nofile");
    }
}

TEST(Logging, AssertMacroPassesAndFails)
{
    EXPECT_NO_THROW(GENESYS_ASSERT(1 + 1 == 2, "fine"));
    EXPECT_THROW(GENESYS_ASSERT(false, "nope %d", 3), PanicError);
}

// ------------------------------------------------------------------ types

TEST(Types, TickUnitConversions)
{
    EXPECT_EQ(ticks::us(3), 3000u);
    EXPECT_EQ(ticks::ms(2), 2'000'000u);
    EXPECT_EQ(ticks::sec(1), 1'000'000'000u);
    EXPECT_DOUBLE_EQ(ticks::toUs(1500), 1.5);
    EXPECT_DOUBLE_EQ(ticks::toSec(ticks::sec(4)), 4.0);
}

TEST(Types, SizeLiterals)
{
    using namespace size_literals;
    EXPECT_EQ(4_KiB, 4096u);
    EXPECT_EQ(2_MiB, 2u * 1024 * 1024);
    EXPECT_EQ(1_GiB, 1024u * 1024 * 1024);
}

TEST(Types, TransferTicksMatchesBandwidth)
{
    // 1 GiB/s => 1 byte per ~1 ns.
    EXPECT_EQ(transferTicks(1000, 1e9), 1000u);
    // Sub-nanosecond transfers round up to one tick.
    EXPECT_EQ(transferTicks(1, 100e9), 1u);
    EXPECT_EQ(transferTicks(0, 1e9), 0u);
}

// ----------------------------------------------------------------- random

TEST(Random, DeterministicForSameSeed)
{
    Random a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Random, DifferentSeedsDiverge)
{
    Random a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 4);
}

TEST(Random, BelowStaysInRange)
{
    Random r(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.below(13), 13u);
}

TEST(Random, BelowCoversRange)
{
    Random r(9);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(r.below(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Random, BetweenInclusive)
{
    Random r(5);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 5000; ++i) {
        const auto v = r.between(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= (v == -3);
        saw_hi |= (v == 3);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Random, UniformInUnitInterval)
{
    Random r(11);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Random, LowerAlphaShapeAndCharset)
{
    Random r(3);
    const auto s = r.lowerAlpha(64);
    EXPECT_EQ(s.size(), 64u);
    for (char c : s)
        EXPECT_TRUE(c >= 'a' && c <= 'z');
}

// ------------------------------------------------------------------ stats

TEST(Stats, ScalarAccumulates)
{
    stats::Scalar s("s");
    s += 2.5;
    ++s;
    EXPECT_DOUBLE_EQ(s.value(), 3.5);
}

TEST(Stats, DistributionMoments)
{
    stats::Distribution d("d");
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        d.sample(v);
    EXPECT_EQ(d.count(), 8u);
    EXPECT_DOUBLE_EQ(d.mean(), 5.0);
    EXPECT_DOUBLE_EQ(d.min(), 2.0);
    EXPECT_DOUBLE_EQ(d.max(), 9.0);
    EXPECT_NEAR(d.stdev(), 2.138, 1e-3);
}

TEST(Stats, DistributionPercentiles)
{
    stats::Distribution d("d");
    for (int i = 0; i <= 100; ++i)
        d.sample(i);
    EXPECT_DOUBLE_EQ(d.percentile(0), 0.0);
    EXPECT_DOUBLE_EQ(d.percentile(50), 50.0);
    EXPECT_DOUBLE_EQ(d.percentile(100), 100.0);
    EXPECT_NEAR(d.percentile(95), 95.0, 1e-9);
}

TEST(Stats, DistributionPercentileOutOfRangePanics)
{
    stats::Distribution d("d");
    d.sample(1.0);
    EXPECT_THROW(d.percentile(101), PanicError);
}

TEST(Stats, EmptyDistributionIsSafe)
{
    stats::Distribution d("d");
    EXPECT_DOUBLE_EQ(d.mean(), 0.0);
    EXPECT_DOUBLE_EQ(d.stdev(), 0.0);
    EXPECT_DOUBLE_EQ(d.percentile(50), 0.0);
}

TEST(Stats, TimeSeriesWindowAverage)
{
    stats::TimeSeries ts("ts");
    ts.sample(100, 10.0);
    ts.sample(200, 20.0);
    ts.sample(300, 30.0);
    EXPECT_DOUBLE_EQ(ts.windowAverage(100, 300), 15.0);
    EXPECT_DOUBLE_EQ(ts.windowAverage(0, 1000), 20.0);
    EXPECT_DOUBLE_EQ(ts.windowAverage(400, 500), 0.0);
}

TEST(Stats, RegistryDumpsSorted)
{
    stats::Registry reg;
    stats::Scalar b("bbb", &reg), a("aaa", &reg);
    a.set(1);
    b.set(2);
    const auto dump = reg.dump();
    EXPECT_LT(dump.find("aaa"), dump.find("bbb"));
}

TEST(Stats, RegistryRemovesOnDestruction)
{
    stats::Registry reg;
    {
        stats::Scalar tmp("gone", &reg);
    }
    EXPECT_EQ(reg.dump().find("gone"), std::string::npos);
}

// ------------------------------------------------------------------ table

TEST(Table, RendersAlignedColumns)
{
    TextTable t("demo");
    t.setHeader({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"b", "22"});
    const auto out = t.render();
    EXPECT_NE(out.find("demo"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("22"), std::string::npos);
    EXPECT_EQ(t.rowCount(), 2u);
}

TEST(Table, NumericRowHelper)
{
    TextTable t;
    t.setHeader({"label", "x", "y"});
    t.addRow("row", {1.23456, 7.0}, 2);
    const auto csv = t.renderCsv();
    EXPECT_NE(csv.find("row,1.23,7.00"), std::string::npos);
}

TEST(Table, CsvHasHeaderAndRows)
{
    TextTable t;
    t.setHeader({"a", "b"});
    t.addRow({"1", "2"});
    EXPECT_EQ(t.renderCsv(), "a,b\n1,2\n");
}

} // namespace
} // namespace genesys
