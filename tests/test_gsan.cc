/**
 * @file
 * gsan tests: the vector-clock core at API level, then end-to-end
 * seeded-bug detection through the full GPU/CPU pipeline.
 *
 * The end-to-end tests come in pairs: a clean run of each invocation
 * shape must produce ZERO reports (no false positives), and every
 * deliberately re-introduced bug — dropped pre/post barrier, payload
 * read before Finished, halt after the wake already fired — must be
 * flagged (no false negatives on the seeded violations).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <string>

#include "core/system.hh"
#include "osk/epoll.hh"
#include "osk/fault.hh"
#include "osk/file.hh"
#include "support/gsan.hh"

namespace genesys::core
{
namespace
{

using gsan::ReportKind;
using gsan::Sanitizer;

SystemConfig
smallConfig()
{
    SystemConfig cfg;
    cfg.gpu.numCus = 2;
    cfg.gpu.maxWavesPerCu = 8;
    cfg.gpu.maxWorkGroupsPerCu = 4;
    cfg.gpu.kernelLaunchLatency = ticks::us(5);
    return cfg;
}

Invocation
inv(Granularity g, Ordering o, Blocking b,
    WaitMode w = WaitMode::Polling)
{
    Invocation i;
    i.granularity = g;
    i.ordering = o;
    i.blocking = b;
    i.waitMode = w;
    return i;
}

// ------------------------------------------------------ sanitizer core

TEST(GsanUnit, DisabledHooksAreNoOps)
{
    Sanitizer g;
    ASSERT_FALSE(g.enabled());
    const auto wave = g.waveThread(0); // explicit registration works
    g.setActor(wave);
    g.slotWrite(1, "args");
    g.slotRead(1, "args");
    g.slotWrite(1, "result"); // would race if enabled: no acquire
    g.invocationBegin(wave, true, 1, "strong");
    g.waveHalt(0);
    EXPECT_EQ(g.reportCount(), 0u);
}

TEST(GsanUnit, CleanReleaseAcquireChainHasNoReports)
{
    Sanitizer g;
    g.setEnabled(true);
    const auto wave = g.waveThread(0);
    const auto cpu = g.workerThread(0);
    g.setActor(wave);
    g.slotAcquire(7);
    g.slotWrite(7, "args");
    g.slotRelease(7); // publish
    g.setActor(cpu);
    g.slotAcquire(7); // beginProcessing
    g.slotRead(7, "args");
    g.slotWrite(7, "result");
    g.slotRelease(7); // complete
    g.setActor(wave);
    g.slotAcquire(7); // consume
    g.slotRead(7, "result");
    g.slotRelease(7);
    EXPECT_EQ(g.reportCount(), 0u);
}

TEST(GsanUnit, ReadWithoutAcquireIsReported)
{
    Sanitizer g;
    g.setEnabled(true);
    const auto wave = g.waveThread(0);
    const auto cpu = g.workerThread(0);
    g.setActor(wave);
    g.slotAcquire(7);
    g.slotWrite(7, "args");
    g.slotRelease(7);
    g.setActor(cpu);
    g.slotAcquire(7);
    g.slotWrite(7, "result");
    g.slotRelease(7);
    g.setActor(wave);
    g.slotRead(7, "result"); // no acquire first: race
    EXPECT_EQ(g.countOf(ReportKind::PayloadRace), 1u);
    ASSERT_EQ(g.reports().size(), 1u);
    EXPECT_NE(g.reports()[0].what.find("reads 'result'"),
              std::string::npos);
    EXPECT_NE(g.reports()[0].what.find("wave0"), std::string::npos);
    EXPECT_NE(g.reports()[0].what.find("cpu-worker0"),
              std::string::npos);
}

TEST(GsanUnit, UnorderedWriteWriteIsReported)
{
    Sanitizer g;
    g.setEnabled(true);
    const auto a = g.waveThread(0);
    const auto b = g.waveThread(1);
    g.setActor(a);
    g.slotWrite(3, "args");
    g.setActor(b);
    g.slotWrite(3, "args"); // no edge from a's write
    EXPECT_EQ(g.countOf(ReportKind::PayloadRace), 1u);
}

TEST(GsanUnit, WriteRacingPriorReadIsReported)
{
    Sanitizer g;
    g.setEnabled(true);
    const auto reader = g.waveThread(0);
    const auto writer = g.workerThread(0);
    g.setActor(reader);
    g.slotRead(5, "result");
    g.setActor(writer);
    g.slotWrite(5, "result"); // unordered with the read
    EXPECT_EQ(g.countOf(ReportKind::PayloadRace), 1u);
}

TEST(GsanUnit, BarrierCreatesHappensBefore)
{
    Sanitizer g;
    g.setEnabled(true);
    const auto a = g.waveThread(0);
    const auto b = g.waveThread(1);
    g.setActor(a);
    g.slotWrite(9, "args");
    g.barrierArrive(0xB, a);
    g.barrierArrive(0xB, b);
    g.barrierLeave(0xB, a);
    g.barrierLeave(0xB, b);
    g.setActor(b);
    g.slotWrite(9, "args"); // ordered through the barrier
    EXPECT_EQ(g.reportCount(), 0u);
}

TEST(GsanUnit, ExplicitEdgeOrdersAccesses)
{
    Sanitizer g;
    g.setEnabled(true);
    const auto a = g.namedThread("producer");
    const auto b = g.namedThread("consumer");
    g.setActor(a);
    g.slotWrite(2, "args");
    g.edge(a, b);
    g.setActor(b);
    g.slotRead(2, "args");
    EXPECT_EQ(g.reportCount(), 0u);
}

TEST(GsanUnit, ReportRenderingIsDeterministic)
{
    auto scenario = [](Sanitizer &g) {
        g.setEnabled(true);
        g.setActor(g.waveThread(4));
        g.slotWrite(1, "args");
        g.setActor(g.workerThread(2));
        g.slotWrite(1, "result");
        g.slotRead(1, "result");
        g.setActor(g.waveThread(4));
        g.slotWrite(1, "args");
    };
    Sanitizer g1, g2;
    scenario(g1);
    scenario(g2);
    EXPECT_GT(g1.reportCount(), 0u);
    EXPECT_EQ(g1.renderReports(), g2.renderReports());
    // Stable prefix: sequence number, tick, kind tag.
    EXPECT_EQ(g1.renderReports().rfind("gsan#0 @0 [payload-race]", 0),
              0u);
}

TEST(GsanUnit, ReportCapStoresPrefixButCountsAll)
{
    Sanitizer g;
    g.setEnabled(true);
    g.setMaxStoredReports(2);
    const auto a = g.waveThread(0);
    const auto b = g.waveThread(1);
    for (int i = 0; i < 5; ++i) {
        g.setActor(i % 2 ? a : b);
        g.slotWrite(0, "args"); // every write races the previous one
    }
    EXPECT_EQ(g.countOf(ReportKind::PayloadRace), 4u);
    EXPECT_EQ(g.reports().size(), 2u);
    EXPECT_NE(g.renderReports().find("2 more report(s)"),
              std::string::npos);
}

TEST(GsanUnit, MissingPreBarrierFlagged)
{
    Sanitizer g;
    g.setEnabled(true);
    const auto wave = g.waveThread(0);
    g.invocationBegin(wave, true, 17, "strong");
    EXPECT_EQ(g.countOf(ReportKind::OrderingViolation), 1u);
    EXPECT_NE(g.reports()[0].what.find("pre-invocation"),
              std::string::npos);
}

TEST(GsanUnit, BarrierBeforeInvocationSatisfiesContract)
{
    Sanitizer g;
    g.setEnabled(true);
    const auto wave = g.waveThread(0);
    g.barrierArrive(0xB, wave);
    g.barrierLeave(0xB, wave);
    g.invocationBegin(wave, true, 17, "strong");
    g.invocationEnd(wave, true, 17, "strong");
    g.barrierArrive(0xB, wave);
    g.barrierLeave(0xB, wave);
    g.waveRetire(0);
    EXPECT_EQ(g.reportCount(), 0u);
}

TEST(GsanUnit, PendingPostBarrierFlaggedAtNextInvocation)
{
    Sanitizer g;
    g.setEnabled(true);
    const auto wave = g.waveThread(0);
    g.invocationBegin(wave, false, 98, "relaxed");
    g.invocationEnd(wave, true, 98, "relaxed"); // producer: post needed
    g.invocationBegin(wave, false, 99, "relaxed"); // ...but none came
    EXPECT_EQ(g.countOf(ReportKind::OrderingViolation), 1u);
    EXPECT_NE(g.reports()[0].what.find("post-invocation"),
              std::string::npos);
}

TEST(GsanUnit, PendingPostBarrierFlaggedAtRetireAndSlotIsRecycled)
{
    Sanitizer g;
    g.setEnabled(true);
    const auto wave = g.waveThread(6);
    g.barrierArrive(0xB, wave);
    g.barrierLeave(0xB, wave);
    g.invocationBegin(wave, true, 17, "strong");
    g.invocationEnd(wave, true, 17, "strong");
    g.waveRetire(6); // post barrier never happened
    EXPECT_EQ(g.countOf(ReportKind::OrderingViolation), 1u);
    // The hw slot is recycled: the next wavefront in it must not
    // inherit the old wave's barrier credit.
    g.invocationBegin(wave, true, 17, "strong");
    EXPECT_EQ(g.countOf(ReportKind::OrderingViolation), 2u);
}

TEST(GsanUnit, DroppedWakeThenHaltReportsLostWakeupOnce)
{
    Sanitizer g;
    g.setEnabled(true);
    (void)g.waveThread(3);
    g.setActor(g.workerThread(0));
    g.resumeDropped(3);
    g.waveHalt(3);
    EXPECT_EQ(g.countOf(ReportKind::LostWakeup), 1u);
    EXPECT_NE(g.reports()[0].what.find("cpu-worker0"),
              std::string::npos);
    g.waveHalt(3); // the drop was consumed by the first report
    EXPECT_EQ(g.countOf(ReportKind::LostWakeup), 1u);
}

TEST(GsanUnit, ConsumingTheSlotClearsDroppedWake)
{
    Sanitizer g;
    g.setEnabled(true);
    (void)g.waveThread(3);
    g.setActor(g.workerThread(0));
    g.resumeDropped(3);
    // The polling sweep found the finished slot and consumed it: the
    // dropped wake is harmless, a later halt must not be flagged.
    g.slotConsumed(42, 3);
    g.waveHalt(3);
    EXPECT_EQ(g.reportCount(), 0u);
}

TEST(GsanUnit, DeliveredWakeCreatesHappensBefore)
{
    Sanitizer g;
    g.setEnabled(true);
    const auto wave = g.waveThread(3);
    const auto cpu = g.workerThread(0);
    g.setActor(cpu);
    g.slotWrite(8, "result");
    g.resumeDelivered(3); // wake carries the CPU's clock
    g.waveWake(3);
    g.setActor(wave);
    g.slotRead(8, "result"); // ordered through the wake message
    EXPECT_EQ(g.reportCount(), 0u);
}

TEST(GsanUnit, ResetClearsStateButKeepsConfig)
{
    Sanitizer g;
    g.setEnabled(true);
    g.setMaxStoredReports(7);
    g.setActor(g.waveThread(0));
    g.slotRead(1, "result");
    g.setActor(g.waveThread(1));
    g.slotWrite(1, "result");
    ASSERT_GT(g.reportCount(), 0u);
    g.reset();
    EXPECT_EQ(g.reportCount(), 0u);
    EXPECT_EQ(g.threadCount(), 0u);
    EXPECT_TRUE(g.enabled());
    EXPECT_EQ(g.maxStoredReports(), 7u);
}

TEST(GsanUnit, ThreadNamesAreStable)
{
    Sanitizer g;
    EXPECT_EQ(g.threadName(g.waveThread(3)), "wave3");
    EXPECT_EQ(g.threadName(g.workerThread(2)), "cpu-worker2");
    EXPECT_EQ(g.threadName(g.namedThread("cpu-daemon")), "cpu-daemon");
    EXPECT_EQ(g.waveThread(3), g.waveThread(3));
    EXPECT_EQ(g.findWaveThread(3), g.waveThread(3));
    EXPECT_EQ(g.findWaveThread(99), Sanitizer::kNoThread);
}

// ------------------------------------------------- end-to-end: clean

/**
 * Run a work-group kernel whose pwrite/getrusage use @p varied while
 * open/close stay strong+blocking (a usable fd needs a result), gsan
 * on; return the report count.
 */
std::uint64_t
cleanRunReports(Invocation varied)
{
    System sys(smallConfig());
    sys.gsan().setEnabled(true);
    sys.kernel().vfs().createFile("/out");
    gpu::KernelLaunch k;
    k.workItems = 2 * 128; // two work-groups of two waves each
    k.wgSize = 128;
    k.program = [&sys,
                 varied](gpu::WavefrontCtx &ctx) -> sim::Task<> {
        const auto fixed = inv(Granularity::WorkGroup,
                               Ordering::Strong, Blocking::Blocking);
        const auto fd = co_await sys.gpuSys().open(ctx, fixed, "/out",
                                                   osk::O_WRONLY);
        co_await sys.gpuSys().pwrite(ctx, varied,
                                     static_cast<int>(fd), "y", 1,
                                     ctx.workgroupId());
        if (varied.blocking == Blocking::Blocking) {
            // Only blocking calls may pass an out-pointer into the
            // coroutine frame: non-blocking results land later.
            osk::RUsage ru{};
            co_await sys.gpuSys().getrusage(ctx, varied, &ru);
        }
        co_await sys.gpuSys().close(ctx, fixed,
                                    static_cast<int>(fd));
    };
    sys.launchGpuAndDrain(std::move(k));
    sys.run();
    EXPECT_TRUE(sys.syscallArea().quiescent());
    return sys.gsan().reportCount();
}

TEST(GsanEndToEnd, CleanWorkGroupMatrixIsReportFree)
{
    for (const Ordering o : {Ordering::Strong, Ordering::Relaxed}) {
        for (const Blocking b :
             {Blocking::Blocking, Blocking::NonBlocking}) {
            for (const WaitMode w :
                 {WaitMode::Polling, WaitMode::HaltResume}) {
                EXPECT_EQ(cleanRunReports(
                              inv(Granularity::WorkGroup, o, b, w)),
                          0u)
                    << orderingName(o) << "/" << blockingName(b)
                    << "/" << waitModeName(w);
            }
        }
    }
}

TEST(GsanEndToEnd, CleanWorkItemInvocationsAreReportFree)
{
    System sys(smallConfig());
    sys.gsan().setEnabled(true);
    sys.kernel().vfs().createFile("/wi");
    gpu::KernelLaunch k;
    k.workItems = 64;
    k.wgSize = 64;
    k.program = [&sys](gpu::WavefrontCtx &ctx) -> sim::Task<> {
        auto i = inv(Granularity::WorkItem, Ordering::Strong,
                     Blocking::Blocking);
        const auto fd = co_await sys.gpuSys().open(
            ctx, inv(Granularity::WorkGroup, Ordering::Strong,
                     Blocking::Blocking),
            "/wi", osk::O_WRONLY);
        int failures = 0;
        co_await sys.gpuSys().invokeWorkItems(
            ctx, i, osk::sysno::pwrite64,
            [&](std::uint32_t lane) {
                return std::optional<osk::SyscallArgs>(osk::makeArgs(
                    static_cast<int>(fd), "z", 1, lane));
            },
            [&](std::uint32_t, std::int64_t r) {
                if (r != 1)
                    ++failures;
            });
        EXPECT_EQ(failures, 0);
    };
    sys.launchGpuAndDrain(std::move(k));
    sys.run();
    EXPECT_EQ(sys.gsan().reportCount(), 0u);
}

TEST(GsanEndToEnd, CleanDaemonBackendIsReportFree)
{
    System sys(smallConfig());
    sys.gsan().setEnabled(true);
    sys.kernel().vfs().createFile("/d");
    sys.host().startPollingDaemon(ticks::us(5));
    gpu::KernelLaunch k;
    k.workItems = 128;
    k.wgSize = 64;
    k.program = [&sys](gpu::WavefrontCtx &ctx) -> sim::Task<> {
        auto i = inv(Granularity::WorkGroup, Ordering::Strong,
                     Blocking::Blocking);
        const auto fd = co_await sys.gpuSys().open(ctx, i, "/d", 1);
        co_await sys.gpuSys().pwrite(ctx, i, static_cast<int>(fd),
                                     "q", 1, 0);
        co_await sys.gpuSys().close(ctx, i, static_cast<int>(fd));
    };
    sys.launchGpu(std::move(k));
    sys.run(ticks::ms(50));
    sys.host().stopDaemon();
    sys.run();
    EXPECT_EQ(sys.gsan().reportCount(), 0u);
    EXPECT_GT(sys.host().processedSyscalls(), 0u);
}

// --------------------------------------- end-to-end: seeded bugs

/** One strong blocking work-group getrusage with @p hooks planted. */
System
seededRun(GenesysParams::GsanTestHooks hooks,
          WaitMode w = WaitMode::Polling)
{
    SystemConfig cfg = smallConfig();
    cfg.genesys.gsanTest = hooks;
    System sys(cfg);
    sys.gsan().setEnabled(true);
    gpu::KernelLaunch k;
    k.workItems = 128; // one work-group, two waves
    k.wgSize = 128;
    k.program = [&sys, w](gpu::WavefrontCtx &ctx) -> sim::Task<> {
        osk::RUsage ru{};
        co_await sys.gpuSys().getrusage(
            ctx,
            inv(Granularity::WorkGroup, Ordering::Strong,
                Blocking::Blocking, w),
            &ru);
    };
    sys.launchGpu(std::move(k));
    sys.run();
    return sys;
}

TEST(GsanSeeded, DroppedPreBarrierIsDetected)
{
    GenesysParams::GsanTestHooks hooks;
    hooks.skipPreBarrier = true;
    System sys = seededRun(hooks);
    // Both waves of the group invoke without the required barrier.
    EXPECT_EQ(sys.gsan().countOf(ReportKind::OrderingViolation), 2u);
    EXPECT_EQ(sys.gsan().countOf(ReportKind::PayloadRace), 0u);
}

TEST(GsanSeeded, DroppedPostBarrierIsDetectedAtRetire)
{
    GenesysParams::GsanTestHooks hooks;
    hooks.skipPostBarrier = true;
    System sys = seededRun(hooks);
    EXPECT_EQ(sys.gsan().countOf(ReportKind::OrderingViolation), 2u);
    EXPECT_NE(sys.gsan().renderReports().find("retires"),
              std::string::npos);
}

TEST(GsanSeeded, DroppedBothBarriersDoubleFlagged)
{
    GenesysParams::GsanTestHooks hooks;
    hooks.skipPreBarrier = true;
    hooks.skipPostBarrier = true;
    System sys = seededRun(hooks);
    EXPECT_EQ(sys.gsan().countOf(ReportKind::OrderingViolation), 4u);
}

TEST(GsanSeeded, RelaxedProducerWithoutPostBarrierIsDetected)
{
    // The relaxed producer contract is barrier-after only; dropping
    // it must be flagged even though no pre barrier is required.
    SystemConfig cfg = smallConfig();
    cfg.genesys.gsanTest.skipPostBarrier = true;
    System sys(cfg);
    sys.gsan().setEnabled(true);
    gpu::KernelLaunch k;
    k.workItems = 64;
    k.wgSize = 64;
    k.program = [&sys](gpu::WavefrontCtx &ctx) -> sim::Task<> {
        osk::RUsage ru{}; // getrusage is a Producer (read-like) call
        co_await sys.gpuSys().getrusage(
            ctx,
            inv(Granularity::WorkGroup, Ordering::Relaxed,
                Blocking::Blocking),
            &ru);
    };
    sys.launchGpu(std::move(k));
    sys.run();
    EXPECT_EQ(sys.gsan().countOf(ReportKind::OrderingViolation), 1u);
}

TEST(GsanSeeded, PayloadReadBeforeFinishedIsDetected)
{
    GenesysParams::GsanTestHooks hooks;
    hooks.racyPeekBeforeFinished = true;
    System sys = seededRun(hooks);
    EXPECT_GE(sys.gsan().countOf(ReportKind::PayloadRace), 1u);
    EXPECT_NE(sys.gsan().renderReports().find("'result'"),
              std::string::npos);
}

TEST(GsanSeeded, ConsumeWithoutAcquireIsDetected)
{
    GenesysParams::GsanTestHooks hooks;
    hooks.racyConsume = true;
    System sys = seededRun(hooks);
    EXPECT_GE(sys.gsan().countOf(ReportKind::PayloadRace), 1u);
    EXPECT_NE(sys.gsan().renderReports().find("Finished"),
              std::string::npos);
}

TEST(GsanSeeded, HaltAfterWakeFiredIsDetected)
{
    GenesysParams::GsanTestHooks hooks;
    // ~130 simulated ms between the final sweep and the halt: the
    // CPU completes and fires its wake into the still-running wave.
    hooks.haltGapCycles = 100'000'000;
    System sys = seededRun(hooks, WaitMode::HaltResume);
    EXPECT_GE(sys.gsan().countOf(ReportKind::LostWakeup), 1u);
    EXPECT_NE(sys.gsan().renderReports().find("sleep forever"),
              std::string::npos);
}

TEST(GsanSeeded, FaultInjectionCrossTestStaysClean)
{
    // EINTR restarts reissue the whole claim/publish/consume cycle;
    // the recovery path must be as race-free as the happy path.
    System sys(smallConfig());
    sys.gsan().setEnabled(true);
    sys.kernel().vfs().createFile("/f");
    sys.kernel().faults().planFault(osk::sysno::pwrite64, 1,
                                    {osk::FaultKind::Eintr});
    sys.kernel().faults().planFault(osk::sysno::pwrite64, 2,
                                    {osk::FaultKind::Eagain});
    gpu::KernelLaunch k;
    k.workItems = 64;
    k.wgSize = 64;
    k.program = [&sys](gpu::WavefrontCtx &ctx) -> sim::Task<> {
        auto i = inv(Granularity::WorkGroup, Ordering::Strong,
                     Blocking::Blocking);
        const auto fd = co_await sys.gpuSys().open(ctx, i, "/f", 1);
        EXPECT_EQ(co_await sys.gpuSys().pwrite(
                      ctx, i, static_cast<int>(fd), "r", 1, 0),
                  1);
        co_await sys.gpuSys().close(ctx, i, static_cast<int>(fd));
    };
    sys.launchGpuAndDrain(std::move(k));
    sys.run();
    EXPECT_GE(sys.gpuSys().syscallRetries(), 2u);
    EXPECT_EQ(sys.gsan().reportCount(), 0u);
}

TEST(GsanEndToEnd, HaltResumeSlotRecyclingRegression)
{
    // Regression for the host bug gsan's ownership discipline found:
    // the requester's hw wave slot was read from the slot AFTER
    // complete() released it, so a consume+recycle could redirect the
    // wake. Back-to-back halt-resume calls recycle the slot as fast
    // as possible; the run must terminate (every wake reaches its
    // wave) and stay report-free.
    System sys(smallConfig());
    sys.gsan().setEnabled(true);
    gpu::KernelLaunch k;
    k.workItems = 4 * 64;
    k.wgSize = 64;
    k.program = [&sys](gpu::WavefrontCtx &ctx) -> sim::Task<> {
        for (int round = 0; round < 4; ++round) {
            osk::RUsage ru{};
            EXPECT_EQ(co_await sys.gpuSys().getrusage(
                          ctx,
                          inv(Granularity::WorkGroup,
                              Ordering::Strong, Blocking::Blocking,
                              WaitMode::HaltResume),
                          &ru),
                      0);
        }
    };
    sys.launchGpuAndDrain(std::move(k));
    sys.run();
    EXPECT_TRUE(sys.syscallArea().quiescent());
    EXPECT_EQ(sys.gsan().reportCount(), 0u);
    EXPECT_EQ(sys.host().processedSyscalls(), 16u);
}

// -------------------------------------------------- knob surface

TEST(GsanSysfs, EnableAndTuneThroughVfs)
{
    System sys;
    auto &k = sys.kernel();
    // Force a known starting state (GENESYS_GSAN may be set when the
    // whole suite runs under the gsan CI job).
    sys.gsan().setEnabled(false);
    ASSERT_FALSE(sys.gsan().enabled());

    auto poke = [&](const char *path, const char *val) -> sim::Task<> {
        const auto fd = co_await k.doSyscall(
            sys.process(), osk::sysno::open,
            osk::makeArgs(path, osk::O_RDWR));
        EXPECT_GE(fd, 0);
        co_await k.doSyscall(
            sys.process(), osk::sysno::write,
            osk::makeArgs(fd, val, std::strlen(val)));
        co_await k.doSyscall(sys.process(), osk::sysno::close,
                             osk::makeArgs(fd));
    };
    sys.sim().spawn(poke("/sys/genesys/gsan/enabled", "1"));
    sys.sim().spawn(poke("/sys/genesys/gsan/max_reports", "33"));
    sys.run();
    EXPECT_TRUE(sys.gsan().enabled());
    EXPECT_EQ(sys.gsan().maxStoredReports(), 33u);
}

TEST(GsanSysfs, ReportCountersAreReadOnly)
{
    System sys;
    std::int64_t wrote = 0;
    sys.sim().spawn([](System &s, std::int64_t &out) -> sim::Task<> {
        auto &k = s.kernel();
        const auto fd = co_await k.doSyscall(
            s.process(), osk::sysno::open,
            osk::makeArgs("/sys/genesys/gsan/reports", osk::O_RDWR));
        out = co_await k.doSyscall(s.process(), osk::sysno::write,
                                   osk::makeArgs(fd, "9", 1));
    }(sys, wrote));
    sys.run();
    EXPECT_NE(wrote, 1);
}

// --------------------------------------- epoll readiness channel

/** Raw-stack rig for the epoll check-then-sleep window tests: a
 *  connected TCP pair with the server end watched by one instance. */
struct EpollGsanRig
{
    EpollGsanRig()
        : sim(1), udp(sim.events(), params),
          tcp(sim.events(), params),
          ep(sim.events(), params, udp, tcp)
    {
        gsan.setEnabled(true);
        ep.setSanitizer(&gsan);
        osk::TcpSocket *lst = tcp.createSocket();
        EXPECT_EQ(lst->bind({1, 7100}), 0);
        EXPECT_EQ(lst->listen(4), 0);
        cli = tcp.createSocket();
        int rc = -1;
        sim.spawn([](osk::TcpSocket *c, int &out) -> sim::Task<> {
            out = co_await c->connect({1, 7100});
        }(cli, rc));
        sim.run();
        EXPECT_EQ(rc, 0);
        int sid = -1;
        EXPECT_TRUE(lst->tryAccept(sid));
        inst = ep.instance(ep.create());
        EXPECT_NE(inst, nullptr);
        EXPECT_EQ(inst->ctl(osk::EPOLL_CTL_ADD_, 40,
                            osk::SockKind::Tcp, sid, osk::EPOLLIN_,
                            40),
                  0);
    }

    osk::OskParams params;
    sim::Sim sim;
    osk::UdpStack udp;
    osk::TcpStack tcp;
    osk::EpollSystem ep;
    Sanitizer gsan;
    osk::TcpSocket *cli = nullptr;
    osk::EpollInstance *inst = nullptr;
};

TEST(GsanSeeded, EpollNotifyInsideCheckSleepWindowIsReported)
{
    EpollGsanRig rig;
    // Seeded bug: the waiter suspends for 1 ms between its readiness
    // probe and its sleep without re-probing.
    rig.inst->setTestSleepGap(ticks::ms(1));

    osk::EpollEvent evs[2];
    std::int64_t n = -1;
    rig.sim.spawn([](osk::EpollInstance *i, osk::EpollEvent *e,
                     std::int64_t &out) -> sim::Task<> {
        out = co_await i->wait(e, 2, ticks::ms(5), /*waiter=*/1);
    }(rig.inst, evs, n));
    // Data lands inside the gap: its wakeup is lost, and only the
    // timeout backstop rescues the (level-triggered) waiter.
    rig.sim.spawn([](osk::TcpSocket *c) -> sim::Task<> {
        co_await c->write("x", 1);
    }(rig.cli));
    rig.sim.run();

    EXPECT_EQ(n, 1); // the re-probe after the timer still finds data
    EXPECT_EQ(rig.gsan.countOf(ReportKind::LostWakeup), 1u);
    EXPECT_NE(rig.gsan.renderReports().find(
                  "check-then-sleep window"),
              std::string::npos);
}

TEST(GsanEndToEnd, EpollWaitWithoutSeededGapIsReportFree)
{
    EpollGsanRig rig;
    osk::EpollEvent evs[2];
    std::int64_t n = -1;
    rig.sim.spawn([](osk::EpollInstance *i, osk::EpollEvent *e,
                     std::int64_t &out) -> sim::Task<> {
        out = co_await i->wait(e, 2, /*timeout_ns=*/-1,
                               /*waiter=*/1);
    }(rig.inst, evs, n));
    // The write lands well after the waiter blocks; the notification
    // is delivered, not lost.
    rig.sim.spawn([](EpollGsanRig &r) -> sim::Task<> {
        co_await sim::Delay(r.sim.events(), ticks::us(500));
        co_await r.cli->write("x", 1);
    }(rig));
    rig.sim.run();

    EXPECT_EQ(n, 1);
    EXPECT_EQ(rig.gsan.reportCount(), 0u);
}

// ---------------------------------- SQ/CQ ring channel (§13)

TEST(GsanRing, CleanPublishDoorbellConsumeChainHasNoReports)
{
    Sanitizer g;
    g.setEnabled(true);
    const auto wave = g.waveThread(0);
    const auto cpu = g.workerThread(0);
    g.setActor(wave);
    g.ringPublish(/*key=*/0, /*entries=*/2); // one batch, two entries
    g.ringDoorbell(0);
    g.setActor(cpu);
    g.ringConsume(0);
    g.ringConsume(0);
    g.setActor(wave);
    g.ringObserve(1); // CQ waiter baseline read before any publish
    EXPECT_EQ(g.reportCount(), 0u);
}

TEST(GsanRing, ConsumeOvertakingPublishIsReported)
{
    Sanitizer g;
    g.setEnabled(true);
    const auto wave = g.waveThread(0);
    const auto cpu = g.workerThread(0);
    g.setActor(wave);
    g.ringPublish(0, 1);
    g.setActor(cpu);
    g.ringConsume(0);
    g.ringConsume(0); // second consume: only one publish happened
    EXPECT_EQ(g.countOf(ReportKind::OrderingViolation), 1u);
    EXPECT_NE(g.renderReports().find("overtakes the publish"),
              std::string::npos);
}

TEST(GsanRing, RacyEntryReadWithoutAcquireIsReported)
{
    Sanitizer g;
    g.setEnabled(true);
    const auto wave = g.waveThread(0);
    const auto cpu = g.workerThread(0);
    g.setActor(wave);
    g.ringPublish(0, 1);
    g.setActor(cpu);
    // Entry read with no ringConsume acquire first: the publish is
    // not ordered before it.
    g.ringConsumeRacy(0);
    EXPECT_EQ(g.countOf(ReportKind::PayloadRace), 1u);
    EXPECT_NE(g.renderReports().find("no happens-before edge"),
              std::string::npos);

    // After a proper acquire the same read is ordered — the check is
    // happens-before-based, not unconditional.
    g.ringConsume(0);
    g.ringConsumeRacy(0);
    EXPECT_EQ(g.countOf(ReportKind::PayloadRace), 1u);
}

TEST(GsanRing, CleanRingRunsAreReportFreeOnBothBackends)
{
    for (const bool daemon : {false, true}) {
        SystemConfig cfg = smallConfig();
        cfg.genesys.useRings = true;
        cfg.genesys.ringEntries = 8;
        System sys(cfg);
        sys.gsan().setEnabled(true);
        sys.kernel().vfs().createFile("/ring");
        if (daemon)
            sys.host().startPollingDaemon(ticks::us(5));
        gpu::KernelLaunch k;
        k.workItems = 128; // one work-group, two waves
        k.wgSize = 128;
        k.program = [&sys](gpu::WavefrontCtx &ctx) -> sim::Task<> {
            auto i = inv(Granularity::WorkGroup, Ordering::Strong,
                         Blocking::Blocking);
            const auto fd =
                co_await sys.gpuSys().open(ctx, i, "/ring", 1);
            co_await sys.gpuSys().pwrite(ctx, i,
                                         static_cast<int>(fd), "r", 1,
                                         0);
            co_await sys.gpuSys().close(ctx, i,
                                        static_cast<int>(fd));
        };
        if (daemon) {
            sys.launchGpu(std::move(k));
            sys.run(ticks::ms(50));
            sys.host().stopDaemon();
            sys.run();
        } else {
            sys.launchGpuAndDrain(std::move(k));
            sys.run();
        }
        EXPECT_EQ(sys.gsan().reportCount(), 0u)
            << (daemon ? "daemon" : "interrupt") << " backend:\n"
            << sys.gsan().renderReports();
        EXPECT_GT(sys.syscallArea().ringBatchesTotal(), 0u);
    }
}

TEST(GsanRing, SeededRacySqConsumeIsDetected)
{
    SystemConfig cfg = smallConfig();
    cfg.genesys.useRings = true;
    cfg.genesys.gsanTest.ringRacySqConsume = true;
    System sys(cfg);
    sys.gsan().setEnabled(true);
    gpu::KernelLaunch k;
    k.workItems = 128;
    k.wgSize = 128;
    k.program = [&sys](gpu::WavefrontCtx &ctx) -> sim::Task<> {
        osk::RUsage ru{};
        co_await sys.gpuSys().getrusage(
            ctx,
            inv(Granularity::WorkGroup, Ordering::Strong,
                Blocking::Blocking),
            &ru);
    };
    sys.launchGpuAndDrain(std::move(k));
    sys.run();
    EXPECT_GE(sys.gsan().countOf(ReportKind::PayloadRace), 1u);
    EXPECT_NE(sys.gsan().renderReports().find("ring"),
              std::string::npos);
}

TEST(GsanSysfs, EnvironmentVariableEnablesSanitizer)
{
    ::setenv("GENESYS_GSAN", "1", 1);
    System on;
    ::setenv("GENESYS_GSAN", "0", 1);
    System off;
    ::unsetenv("GENESYS_GSAN");
    EXPECT_TRUE(on.gsan().enabled());
    EXPECT_FALSE(off.gsan().enabled());
}

TEST(GsanSysfs, StatsReportCarriesGsanCounters)
{
    System sys;
    sys.gsan().setEnabled(true);
    const std::string report = sys.statsReport();
    EXPECT_NE(report.find("gsan.enabled"), std::string::npos);
    EXPECT_NE(report.find("gsan.payload_races"), std::string::npos);
    EXPECT_NE(report.find("gsan.ordering_violations"),
              std::string::npos);
    EXPECT_NE(report.find("gsan.lost_wakeups"), std::string::npos);
}

} // namespace
} // namespace genesys::core
