/**
 * @file
 * End-to-end tests of GENESYS: GPU programs invoking POSIX system
 * calls through the full slot/interrupt/workqueue pipeline, across the
 * design space of granularity x ordering x blocking x wait mode.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "core/system.hh"
#include "osk/devices.hh"
#include "support/logging.hh"

namespace genesys::core
{
namespace
{

SystemConfig
smallConfig()
{
    SystemConfig cfg;
    cfg.gpu.numCus = 2;
    cfg.gpu.maxWavesPerCu = 8;
    cfg.gpu.maxWorkGroupsPerCu = 4;
    cfg.gpu.kernelLaunchLatency = ticks::us(5);
    return cfg;
}

Invocation
inv(Granularity g, Ordering o, Blocking b,
    WaitMode w = WaitMode::Polling)
{
    Invocation i;
    i.granularity = g;
    i.ordering = o;
    i.blocking = b;
    i.waitMode = w;
    return i;
}

TEST(EnumNames, RenderProperly)
{
    EXPECT_STREQ(granularityName(Granularity::WorkItem), "work-item");
    EXPECT_STREQ(granularityName(Granularity::WorkGroup), "work-group");
    EXPECT_STREQ(granularityName(Granularity::Kernel), "kernel");
    EXPECT_STREQ(orderingName(Ordering::Strong), "strong");
    EXPECT_STREQ(orderingName(Ordering::Relaxed), "relaxed");
    EXPECT_STREQ(blockingName(Blocking::NonBlocking), "non-blocking");
    EXPECT_STREQ(waitModeName(WaitMode::HaltResume), "halt-resume");
}

TEST(System, PlatformStringMentionsKeyComponents)
{
    System sys(smallConfig());
    const auto s = sys.platformString();
    EXPECT_NE(s.find("CUs"), std::string::npos);
    EXPECT_NE(s.find("syscall area"), std::string::npos);
}

TEST(System, StatsReportTracksActivity)
{
    System sys(smallConfig());
    sys.kernel().vfs().createFile("/s");
    gpu::KernelLaunch k;
    k.workItems = 2 * 64;
    k.wgSize = 64;
    k.program = [&sys](gpu::WavefrontCtx &ctx) -> sim::Task<> {
        auto i = inv(Granularity::WorkGroup, Ordering::Relaxed,
                     Blocking::Blocking);
        const auto fd = co_await sys.gpuSys().open(ctx, i, "/s", 1);
        co_await sys.gpuSys().pwrite(ctx, i, static_cast<int>(fd),
                                     "x", 1, ctx.workgroupId());
    };
    sys.launchGpuAndDrain(std::move(k));
    sys.run();
    const std::string report = sys.statsReport();
    EXPECT_NE(report.find("gpu.kernels_launched"), std::string::npos);
    // 2 groups x (open + pwrite) = 4 requests.
    EXPECT_NE(report.find("genesys.requests_issued"),
              std::string::npos);
    EXPECT_NE(report.find(" 4\n"), std::string::npos);
    EXPECT_NE(report.find("sim.final_tick"), std::string::npos);
}

TEST(GenesysEndToEnd, WorkGroupBlockingPwriteWritesFile)
{
    System sys(smallConfig());
    sys.kernel().vfs().createFile("/out");
    const char *payload = "written-from-gpu";

    gpu::KernelLaunch k;
    k.workItems = 64;
    k.wgSize = 64;
    k.program = [&sys, payload](gpu::WavefrontCtx &ctx) -> sim::Task<> {
        auto i = inv(Granularity::WorkGroup, Ordering::Strong,
                     Blocking::Blocking);
        const auto fd = co_await sys.gpuSys().open(ctx, i, "/out", 1);
        EXPECT_GE(fd, 0);
        const auto n = co_await sys.gpuSys().pwrite(
            ctx, i, static_cast<int>(fd), payload, 16, 0);
        EXPECT_EQ(n, 16);
        EXPECT_EQ(co_await sys.gpuSys().close(ctx, i,
                                              static_cast<int>(fd)),
                  0);
    };
    sys.launchGpuAndDrain(std::move(k));
    sys.run();

    auto *f = static_cast<osk::RegularFile *>(
        sys.kernel().vfs().resolve("/out"));
    EXPECT_EQ(std::string(f->data().begin(), f->data().end()),
              "written-from-gpu");
    EXPECT_EQ(sys.host().processedSyscalls(), 3u);
    EXPECT_EQ(sys.gpuSys().issuedRequests(), 3u);
}

/**
 * The full ordering x blocking x wait-mode matrix must be functionally
 * identical for a producer+consumer pair of calls (timing differs;
 * correctness must not). Mirrors Section V-A's semantics table.
 */
class OrderingMatrix
    : public ::testing::TestWithParam<
          std::tuple<Ordering, Blocking, WaitMode>>
{};

TEST_P(OrderingMatrix, WorkGroupReadModifyWriteIsCorrect)
{
    const auto [ordering, blocking, wait_mode] = GetParam();
    System sys(smallConfig());
    sys.kernel().vfs().createFile("/in")->setData("abcdefgh");
    sys.kernel().vfs().createFile("/out");

    gpu::KernelLaunch k;
    k.workItems = 256; // one group, 4 waves: barriers really span waves
    k.wgSize = 256;
    auto *buf = new char[8];
    k.program = [&sys, ordering = ordering, blocking = blocking,
                 wait_mode = wait_mode,
                 buf](gpu::WavefrontCtx &ctx) -> sim::Task<> {
        // Producer (read) must be blocking to use its data.
        auto read_inv = inv(Granularity::WorkGroup, ordering,
                            Blocking::Blocking, wait_mode);
        const auto fd =
            co_await sys.gpuSys().open(ctx, read_inv, "/in", 0);
        co_await sys.gpuSys().pread(ctx, read_inv,
                                    static_cast<int>(fd), buf, 8, 0);
        // Every wave sees the data after the (post-)barrier.
        if (ctx.isGroupLeader())
            for (int c = 0; c < 8; ++c)
                buf[c] = static_cast<char>(buf[c] - 32); // to upper
        // open must block: its fd is consumed immediately.
        const auto wfd =
            co_await sys.gpuSys().open(ctx, read_inv, "/out", 1);
        auto write_inv = inv(Granularity::WorkGroup, ordering, blocking,
                             wait_mode);
        co_await sys.gpuSys().pwrite(ctx, write_inv,
                                     static_cast<int>(wfd), buf, 8, 0);
    };
    sys.launchGpuAndDrain(std::move(k));
    sys.run();

    auto *f = static_cast<osk::RegularFile *>(
        sys.kernel().vfs().resolve("/out"));
    EXPECT_EQ(std::string(f->data().begin(), f->data().end()),
              "ABCDEFGH");
    delete[] buf;
}

INSTANTIATE_TEST_SUITE_P(
    DesignSpace, OrderingMatrix,
    ::testing::Combine(
        ::testing::Values(Ordering::Strong, Ordering::Relaxed),
        ::testing::Values(Blocking::Blocking, Blocking::NonBlocking),
        ::testing::Values(WaitMode::Polling, WaitMode::HaltResume)));

TEST(GenesysEndToEnd, KernelGranularityInvokesOnce)
{
    System sys(smallConfig());
    sys.kernel().vfs().createFile("/once");
    gpu::KernelLaunch k;
    k.workItems = 8 * 256; // many work-groups
    k.wgSize = 256;
    k.program = [&sys](gpu::WavefrontCtx &ctx) -> sim::Task<> {
        auto i = inv(Granularity::Kernel, Ordering::Relaxed,
                     Blocking::Blocking);
        co_await sys.gpuSys().pwrite(ctx, i, -1, nullptr, 0, 0);
        (void)ctx;
    };
    // pwrite on bad fd: result irrelevant; count is the point.
    sys.launchGpuAndDrain(std::move(k));
    sys.run();
    EXPECT_EQ(sys.gpuSys().issuedRequests(), 1u);
    EXPECT_EQ(sys.host().processedSyscalls(), 1u);
}

TEST(GenesysEndToEnd, KernelStrongOrderingIsFatal)
{
    System sys(smallConfig());
    gpu::KernelLaunch k;
    k.workItems = 64;
    k.wgSize = 64;
    k.program = [&sys](gpu::WavefrontCtx &ctx) -> sim::Task<> {
        auto i = inv(Granularity::Kernel, Ordering::Strong,
                     Blocking::Blocking);
        co_await sys.gpuSys().pwrite(ctx, i, 0, nullptr, 0, 0);
    };
    sys.launchGpu(std::move(k));
    EXPECT_THROW(sys.run(), FatalError);
}

TEST(GenesysEndToEnd, WorkItemRelaxedOrderingIsFatal)
{
    System sys(smallConfig());
    gpu::KernelLaunch k;
    k.workItems = 64;
    k.wgSize = 64;
    k.program = [&sys](gpu::WavefrontCtx &ctx) -> sim::Task<> {
        Invocation i = inv(Granularity::WorkItem, Ordering::Relaxed,
                           Blocking::Blocking);
        co_await sys.gpuSys().invokeWorkItems(
            ctx, i, osk::sysno::write,
            [](std::uint32_t) { return std::nullopt; });
    };
    sys.launchGpu(std::move(k));
    EXPECT_THROW(sys.run(), FatalError);
}

TEST(GenesysEndToEnd, WorkItemGranularityPerLaneWrites)
{
    System sys(smallConfig());
    sys.kernel().vfs().createFile("/wi");
    // Each of 64 lanes pwrites its own byte at its own offset —
    // position-relative write would be racy, pwrite is not (Sec V-A).
    static char lane_bytes[64];
    for (int i = 0; i < 64; ++i)
        lane_bytes[i] = static_cast<char>('A' + (i % 26));

    gpu::KernelLaunch k;
    k.workItems = 64;
    k.wgSize = 64;
    int results = 0;
    k.program = [&sys, &results](gpu::WavefrontCtx &ctx) -> sim::Task<> {
        auto i = inv(Granularity::WorkGroup, Ordering::Strong,
                     Blocking::Blocking);
        const auto fd = co_await sys.gpuSys().open(ctx, i, "/wi", 1);
        Invocation wi = inv(Granularity::WorkItem, Ordering::Strong,
                            Blocking::Blocking);
        co_await sys.gpuSys().invokeWorkItems(
            ctx, wi, osk::sysno::pwrite64,
            [fd](std::uint32_t lane) {
                return std::optional(osk::makeArgs(
                    static_cast<int>(fd), &lane_bytes[lane], 1, lane));
            },
            [&results](std::uint32_t, std::int64_t ret) {
                EXPECT_EQ(ret, 1);
                ++results;
            });
    };
    sys.launchGpuAndDrain(std::move(k));
    sys.run();

    EXPECT_EQ(results, 64);
    auto *f = static_cast<osk::RegularFile *>(
        sys.kernel().vfs().resolve("/wi"));
    ASSERT_EQ(f->size(), 64u);
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(f->data()[i], lane_bytes[i]);
    // 64 lane requests + 1 open.
    EXPECT_EQ(sys.gpuSys().issuedRequests(), 65u);
}

TEST(GenesysEndToEnd, WorkItemDivergenceSkipsInactiveLanes)
{
    System sys(smallConfig());
    sys.kernel().vfs().createFile("/div");
    gpu::KernelLaunch k;
    k.workItems = 64;
    k.wgSize = 64;
    static const char byte = 'x';
    k.program = [&sys](gpu::WavefrontCtx &ctx) -> sim::Task<> {
        auto i = inv(Granularity::WorkGroup, Ordering::Strong,
                     Blocking::Blocking);
        const auto fd = co_await sys.gpuSys().open(ctx, i, "/div", 1);
        Invocation wi = inv(Granularity::WorkItem, Ordering::Strong,
                            Blocking::Blocking);
        co_await sys.gpuSys().invokeWorkItems(
            ctx, wi, osk::sysno::pwrite64,
            [fd](std::uint32_t lane)
                -> std::optional<osk::SyscallArgs> {
                if (lane % 4 != 0)
                    return std::nullopt; // diverged lanes
                return osk::makeArgs(static_cast<int>(fd), &byte, 1,
                                     lane);
            });
    };
    sys.launchGpuAndDrain(std::move(k));
    sys.run();
    EXPECT_EQ(sys.gpuSys().issuedRequests(), 17u); // open + 16 lanes
}

TEST(GenesysEndToEnd, NonBlockingDataVisibleAfterDrain)
{
    System sys(smallConfig());
    sys.kernel().vfs().createFile("/nb");
    Tick kernel_done = 0;
    gpu::KernelLaunch k;
    k.workItems = 64;
    k.wgSize = 64;
    static const char data[] = "late";
    k.program = [&sys, &kernel_done](gpu::WavefrontCtx &ctx)
        -> sim::Task<> {
        auto i = inv(Granularity::WorkGroup, Ordering::Relaxed,
                     Blocking::Blocking);
        const auto fd = co_await sys.gpuSys().open(ctx, i, "/nb", 1);
        auto nb = inv(Granularity::WorkGroup, Ordering::Relaxed,
                      Blocking::NonBlocking);
        co_await sys.gpuSys().pwrite(ctx, nb, static_cast<int>(fd),
                                     data, 4, 0);
        kernel_done = ctx.sim().now();
    };
    sys.launchGpuAndDrain(std::move(k));
    const Tick end = sys.run();
    // The kernel retired before the CPU finished the pwrite: the whole
    // point of non-blocking invocation (and of Section IX's hazard).
    EXPECT_LT(kernel_done, end);
    auto *f = static_cast<osk::RegularFile *>(
        sys.kernel().vfs().resolve("/nb"));
    EXPECT_EQ(std::string(f->data().begin(), f->data().end()), "late");
}

TEST(GenesysEndToEnd, CoalescingBatchesInterrupts)
{
    SystemConfig cfg = smallConfig();
    cfg.genesys.coalesceWindow = ticks::us(50);
    cfg.genesys.coalesceMaxBatch = 8;
    System sys(cfg);
    sys.kernel().vfs().createFile("/co")->setSynthetic(1 << 20);

    gpu::KernelLaunch k;
    k.workItems = 16 * 64;
    k.wgSize = 64;
    k.program = [&sys](gpu::WavefrontCtx &ctx) -> sim::Task<> {
        auto i = inv(Granularity::WorkGroup, Ordering::Relaxed,
                     Blocking::Blocking);
        const auto fd = co_await sys.gpuSys().open(ctx, i, "/co", 0);
        co_await sys.gpuSys().pread(ctx, i, static_cast<int>(fd),
                                    nullptr, 4096,
                                    ctx.workgroupId() * 4096);
    };
    sys.launchGpuAndDrain(std::move(k));
    sys.run();
    EXPECT_EQ(sys.host().processedSyscalls(), 32u);
    EXPECT_GT(sys.host().interrupts(), sys.host().batches());
    EXPECT_GT(sys.host().batchSizes().mean(), 1.0);
    EXPECT_LE(sys.host().batchSizes().max(), 8.0);
}

TEST(GenesysEndToEnd, SetCoalescingValidatesAndApplies)
{
    System sys(smallConfig());
    EXPECT_THROW(sys.host().setCoalescing(ticks::us(1), 0), PanicError);
    sys.host().setCoalescing(ticks::us(10), 4);
}

TEST(GenesysEndToEnd, HaltResumeCompletesAndFreesResources)
{
    System sys(smallConfig());
    sys.kernel().vfs().createFile("/hr")->setData("0123456789abcdef");
    std::int64_t got = -1;
    gpu::KernelLaunch k;
    k.workItems = 64;
    k.wgSize = 64;
    static char buf[16];
    k.program = [&sys, &got](gpu::WavefrontCtx &ctx) -> sim::Task<> {
        auto i = inv(Granularity::WorkGroup, Ordering::Strong,
                     Blocking::Blocking, WaitMode::HaltResume);
        const auto fd = co_await sys.gpuSys().open(ctx, i, "/hr", 0);
        got = co_await sys.gpuSys().pread(ctx, i, static_cast<int>(fd),
                                          buf, 16, 0);
    };
    sys.launchGpuAndDrain(std::move(k));
    sys.run();
    EXPECT_EQ(got, 16);
    EXPECT_EQ(std::string(buf, 16), "0123456789abcdef");
    EXPECT_EQ(sys.gpu().residentWorkGroups(), 0u);
}

TEST(GenesysEndToEnd, PollingDaemonBackendServicesRequests)
{
    System sys(smallConfig());
    sys.kernel().vfs().createFile("/pd");
    sys.host().startPollingDaemon(ticks::us(20));
    static const char data[] = "daemon";
    gpu::KernelLaunch k;
    k.workItems = 64;
    k.wgSize = 64;
    std::int64_t wrote = -1;
    k.program = [&sys, &wrote](gpu::WavefrontCtx &ctx) -> sim::Task<> {
        auto i = inv(Granularity::WorkGroup, Ordering::Strong,
                     Blocking::Blocking);
        const auto fd = co_await sys.gpuSys().open(ctx, i, "/pd", 1);
        wrote = co_await sys.gpuSys().pwrite(
            ctx, i, static_cast<int>(fd), data, 6, 0);
        sys.host().stopDaemon();
    };
    sys.launchGpu(std::move(k));
    sys.run();
    EXPECT_EQ(wrote, 6);
    EXPECT_EQ(sys.host().interrupts(), 0u); // no interrupt path used
    auto *f = static_cast<osk::RegularFile *>(
        sys.kernel().vfs().resolve("/pd"));
    EXPECT_EQ(std::string(f->data().begin(), f->data().end()),
              "daemon");
}

TEST(GenesysEndToEnd, GetrusageFromGpu)
{
    System sys(smallConfig());
    static osk::RUsage usage{};
    gpu::KernelLaunch k;
    k.workItems = 64;
    k.wgSize = 64;
    std::int64_t ret = -1;
    k.program = [&sys, &ret](gpu::WavefrontCtx &ctx) -> sim::Task<> {
        auto i = inv(Granularity::WorkGroup, Ordering::Strong,
                     Blocking::Blocking);
        ret = co_await sys.gpuSys().getrusage(ctx, i, &usage);
    };
    sys.launchGpuAndDrain(std::move(k));
    sys.run();
    EXPECT_EQ(ret, 0);
}

TEST(GenesysEndToEnd, SignalsFromGpuReachProcess)
{
    System sys(smallConfig());
    gpu::KernelLaunch k;
    k.workItems = 4 * 64;
    k.wgSize = 64;
    static osk::SigInfo info{};
    info.signo = osk::SIGRTMIN_;
    k.program = [&sys](gpu::WavefrontCtx &ctx) -> sim::Task<> {
        osk::SigInfo payload = info;
        payload.value = ctx.workgroupId();
        auto i = inv(Granularity::WorkGroup, Ordering::Relaxed,
                     Blocking::NonBlocking);
        // NOTE: payload must outlive the async call; use static copies
        // indexed by work-group for the test.
        static osk::SigInfo payloads[16];
        payloads[ctx.workgroupId()] = payload;
        co_await sys.gpuSys().rtSigqueueinfo(
            ctx, i, 0, osk::SIGRTMIN_, &payloads[ctx.workgroupId()]);
    };
    sys.launchGpuAndDrain(std::move(k));
    sys.run();
    EXPECT_EQ(sys.process().signals().pending(), 4u);
    std::set<std::int64_t> values;
    osk::SigInfo got{};
    while (sys.process().signals().tryDequeue(got))
        values.insert(got.value);
    EXPECT_EQ(values, (std::set<std::int64_t>{0, 1, 2, 3}));
}

TEST(GenesysEndToEnd, StatefulReadSharedFilePointer)
{
    // Sequential reads at work-group granularity advance the shared
    // file position — the statefulness hazard of Section IV.
    System sys(smallConfig());
    sys.kernel().vfs().createFile("/seq")->setData("aabbccdd");
    static char chunk[2];
    std::string assembled;
    gpu::KernelLaunch k;
    k.workItems = 64;
    k.wgSize = 64;
    k.program = [&sys, &assembled](gpu::WavefrontCtx &ctx)
        -> sim::Task<> {
        auto i = inv(Granularity::WorkGroup, Ordering::Strong,
                     Blocking::Blocking);
        const auto fd = co_await sys.gpuSys().open(ctx, i, "/seq", 0);
        for (int r = 0; r < 4; ++r) {
            const auto n = co_await sys.gpuSys().read(
                ctx, i, static_cast<int>(fd), chunk, 2);
            EXPECT_EQ(n, 2);
            assembled.append(chunk, 2);
        }
    };
    sys.launchGpuAndDrain(std::move(k));
    sys.run();
    EXPECT_EQ(assembled, "aabbccdd");
}

TEST(GenesysEndToEnd, ConcurrentWorkGroupsAllServiced)
{
    System sys(smallConfig());
    sys.kernel().vfs().createFile("/par");
    gpu::KernelLaunch k;
    k.workItems = 32 * 64; // more groups than device residency
    k.wgSize = 64;
    static char bytes[32];
    k.program = [&sys](gpu::WavefrontCtx &ctx) -> sim::Task<> {
        bytes[ctx.workgroupId()] =
            static_cast<char>('a' + ctx.workgroupId() % 26);
        auto i = inv(Granularity::WorkGroup, Ordering::Relaxed,
                     Blocking::Blocking);
        const auto fd = co_await sys.gpuSys().open(ctx, i, "/par", 1);
        co_await sys.gpuSys().pwrite(ctx, i, static_cast<int>(fd),
                                     &bytes[ctx.workgroupId()], 1,
                                     ctx.workgroupId());
    };
    sys.launchGpuAndDrain(std::move(k));
    sys.run();
    auto *f = static_cast<osk::RegularFile *>(
        sys.kernel().vfs().resolve("/par"));
    ASSERT_EQ(f->size(), 32u);
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(f->data()[i], 'a' + i % 26) << i;
    EXPECT_EQ(sys.host().processedSyscalls(), 64u);
}

TEST(GenesysEndToEnd, NonBlockingReusesSlotAfterCpuFreesIt)
{
    // Back-to-back non-blocking calls from the same wave reuse the
    // same slot; the second claim spins until the CPU frees it.
    System sys(smallConfig());
    sys.kernel().vfs().createFile("/reuse");
    gpu::KernelLaunch k;
    k.workItems = 64;
    k.wgSize = 64;
    static const char byte = 'r';
    k.program = [&sys](gpu::WavefrontCtx &ctx) -> sim::Task<> {
        auto i = inv(Granularity::WorkGroup, Ordering::Relaxed,
                     Blocking::Blocking);
        const auto fd = co_await sys.gpuSys().open(ctx, i, "/reuse", 1);
        auto nb = inv(Granularity::WorkGroup, Ordering::Relaxed,
                      Blocking::NonBlocking);
        for (int n = 0; n < 8; ++n) {
            co_await sys.gpuSys().pwrite(ctx, nb, static_cast<int>(fd),
                                         &byte, 1, n);
        }
    };
    sys.launchGpuAndDrain(std::move(k));
    sys.run();
    auto *f = static_cast<osk::RegularFile *>(
        sys.kernel().vfs().resolve("/reuse"));
    EXPECT_EQ(f->size(), 8u);
    EXPECT_EQ(sys.host().processedSyscalls(), 9u);
}

TEST(GenesysTiming, NonBlockingReturnsFasterThanBlocking)
{
    auto run = [](Blocking blocking) {
        System sys(smallConfig());
        sys.kernel().vfs().createFile("/t");
        Tick done = 0;
        gpu::KernelLaunch k;
        k.workItems = 64;
        k.wgSize = 64;
        static const char byte = 'x';
        k.program = [&sys, &done,
                     blocking](gpu::WavefrontCtx &ctx) -> sim::Task<> {
            auto i = inv(Granularity::WorkGroup, Ordering::Relaxed,
                         Blocking::Blocking);
            const auto fd =
                co_await sys.gpuSys().open(ctx, i, "/t", 1);
            auto w = inv(Granularity::WorkGroup, Ordering::Relaxed,
                         blocking);
            co_await sys.gpuSys().pwrite(ctx, w, static_cast<int>(fd),
                                         &byte, 1, 0);
            done = ctx.sim().now();
        };
        sys.launchGpuAndDrain(std::move(k));
        sys.run();
        return done;
    };
    EXPECT_LT(run(Blocking::NonBlocking), run(Blocking::Blocking));
}

TEST(GenesysTiming, RelaxedOrderingFreesNonLeaderWavesEarly)
{
    // Strong ordering holds every wave of the group at the post-call
    // barrier until the CPU finishes the pwrite; relaxed (consumer)
    // ordering lets the other 3 wavefronts retire as soon as they pass
    // the pre-call barrier (Fig 4 with Bar2 removed).
    struct Times
    {
        Tick earliestWaveDone = kMaxTick;
        Tick leaderCallDone = 0;
    };
    auto run = [](Ordering ordering) {
        System sys(smallConfig());
        sys.kernel().vfs().createFile("/o");
        auto times = std::make_shared<Times>();
        gpu::KernelLaunch k;
        k.workItems = 256; // one group, 4 waves
        k.wgSize = 256;
        static const char byte = 'x';
        k.program = [&sys, ordering,
                     times](gpu::WavefrontCtx &ctx) -> sim::Task<> {
            auto blocking_inv = inv(Granularity::WorkGroup,
                                    Ordering::Strong, Blocking::Blocking);
            const auto fd =
                co_await sys.gpuSys().open(ctx, blocking_inv, "/o", 1);
            auto i = inv(Granularity::WorkGroup, ordering,
                         Blocking::Blocking);
            co_await sys.gpuSys().pwrite(ctx, i, static_cast<int>(fd),
                                         &byte, 1, 0);
            if (ctx.isGroupLeader())
                times->leaderCallDone = ctx.sim().now();
            times->earliestWaveDone =
                std::min(times->earliestWaveDone, ctx.sim().now());
        };
        sys.launchGpuAndDrain(std::move(k));
        sys.run();
        return *times;
    };
    const Times strong = run(Ordering::Strong);
    const Times relaxed = run(Ordering::Relaxed);
    // Strong: nobody retires before the leader's call completes.
    EXPECT_GE(strong.earliestWaveDone, strong.leaderCallDone);
    // Relaxed: non-leader waves retire strictly earlier.
    EXPECT_LT(relaxed.earliestWaveDone, relaxed.leaderCallDone);
}

TEST(GenesysEndToEnd, MultiShardAreaWritesAllDataAndDrainsPerShard)
{
    // The smallConfig pipeline again, but with the syscall area split
    // into one shard per CU: results are identical (the file sees all
    // the bytes) and the drain leaves every shard quiescent.
    SystemConfig cfg = smallConfig();
    cfg.genesys.areaShards = 2; // one per CU
    System sys(cfg);
    sys.kernel().vfs().createFile("/ms");
    gpu::KernelLaunch k;
    k.workItems = 8 * 64;
    k.wgSize = 64;
    k.program = [&sys](gpu::WavefrontCtx &ctx) -> sim::Task<> {
        auto i = inv(Granularity::WorkGroup, Ordering::Relaxed,
                     Blocking::Blocking);
        const auto fd = co_await sys.gpuSys().open(ctx, i, "/ms", 1);
        co_await sys.gpuSys().pwrite(ctx, i, static_cast<int>(fd),
                                     "y", 1, ctx.workgroupId());
    };
    sys.launchGpuAndDrain(std::move(k));
    sys.run();

    auto *f = static_cast<osk::RegularFile *>(
        sys.kernel().vfs().resolve("/ms"));
    EXPECT_EQ(f->data().size(), 8u);
    for (std::uint8_t b : f->data())
        EXPECT_EQ(b, 'y');
    // 8 groups x (open + pwrite) processed, split across both shards.
    EXPECT_EQ(sys.host().processedSyscalls(), 16u);
    EXPECT_EQ(sys.syscallArea().processedOnShard(0) +
                  sys.syscallArea().processedOnShard(1),
              16u);
    for (std::uint32_t s = 0; s < 2; ++s) {
        EXPECT_GT(sys.syscallArea().processedOnShard(s), 0u)
            << "shard " << s;
        EXPECT_TRUE(sys.syscallArea().quiescent(s)) << "shard " << s;
    }
    EXPECT_EQ(sys.host().inFlight(), 0u);
}

} // namespace
} // namespace genesys::core
