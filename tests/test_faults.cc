/**
 * @file
 * Fault-injection subsystem and POSIX error-path recovery tests.
 *
 * Covers the FaultInjector itself (determinism, scripted plans, ppm
 * bands, sysfs knobs), the GPU client's recovery — EINTR restart,
 * EAGAIN retry-with-backoff, short-transfer continuation — at
 * work-group, work-item, and kernel granularity, the host-side
 * recovery for non-blocking requests, drain() with in-flight faulted
 * syscalls (Section IX under failure), and bit-reproducibility of a
 * probabilistic 1% plan across fresh simulations.
 */

#include <gtest/gtest.h>

#include <cerrno>
#include <cstring>
#include <string>
#include <vector>

#include "core/system.hh"
#include "osk/fault.hh"
#include "osk/file.hh"

namespace genesys::core
{
namespace
{

Invocation
weak()
{
    Invocation i;
    i.ordering = Ordering::Relaxed;
    return i;
}

// ------------------------------------------------------ injector unit

TEST(FaultInjector, UnarmedByDefaultAndNeverFires)
{
    osk::FaultInjector fi;
    EXPECT_FALSE(fi.armed());
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(fi.decide(osk::sysno::read, 64 * 1024).kind,
                  osk::FaultKind::None);
    EXPECT_EQ(fi.injected(), 0u);
    EXPECT_EQ(fi.deviceDelay(), 0u);
}

TEST(FaultInjector, DecisionsAreAPureFunctionOfSeedAndIndex)
{
    osk::FaultConfig cfg;
    cfg.seed = 42;
    cfg.eintrPpm = 100'000;
    cfg.eagainPpm = 50'000;
    cfg.shortPpm = 100'000;
    cfg.errnoPpm = 20'000;

    osk::FaultInjector a, b;
    a.configure(cfg);
    b.configure(cfg);
    for (int i = 0; i < 2000; ++i) {
        const auto da = a.decide(osk::sysno::write, 64 * 1024);
        const auto db = b.decide(osk::sysno::write, 64 * 1024);
        EXPECT_EQ(da.kind, db.kind) << i;
        EXPECT_EQ(da.keepPermille, db.keepPermille) << i;
    }
    EXPECT_EQ(a.injected(), b.injected());
    EXPECT_GT(a.injected(), 0u);

    // A different seed produces a different schedule.
    osk::FaultInjector c;
    cfg.seed = 43;
    c.configure(cfg);
    bool diverged = false;
    osk::FaultInjector a2;
    cfg.seed = 42;
    a2.configure(cfg);
    for (int i = 0; i < 2000 && !diverged; ++i) {
        diverged = a2.decide(osk::sysno::write, 64 * 1024).kind !=
                   c.decide(osk::sysno::write, 64 * 1024).kind;
    }
    EXPECT_TRUE(diverged);
}

TEST(FaultInjector, InterleavingOtherSyscallsDoesNotPerturbASchedule)
{
    osk::FaultConfig cfg;
    cfg.seed = 7;
    cfg.eintrPpm = 200'000;

    osk::FaultInjector solo, mixed;
    solo.configure(cfg);
    mixed.configure(cfg);
    for (int i = 0; i < 500; ++i) {
        // The read stream in `mixed` sees extra write dispatches
        // between its own; its decisions must not change.
        (void)mixed.decide(osk::sysno::write, 64 * 1024);
        EXPECT_EQ(solo.decide(osk::sysno::read, 64 * 1024).kind,
                  mixed.decide(osk::sysno::read, 64 * 1024).kind)
            << i;
        (void)mixed.decide(osk::sysno::write, 64 * 1024);
    }
}

TEST(FaultInjector, ScriptedPlanFiresOnExactInvocationAndIsConsumed)
{
    osk::FaultInjector fi;
    fi.planFault(osk::sysno::read, 3,
                 {osk::FaultKind::Errno, ENOSPC, 0, 0});
    EXPECT_TRUE(fi.armed());
    EXPECT_EQ(fi.plannedRemaining(), 1u);

    EXPECT_EQ(fi.decide(osk::sysno::read, 64 * 1024).kind,
              osk::FaultKind::None);
    // Other syscalls do not advance read's invocation count.
    EXPECT_EQ(fi.decide(osk::sysno::write, 64 * 1024).kind,
              osk::FaultKind::None);
    EXPECT_EQ(fi.decide(osk::sysno::read, 64 * 1024).kind,
              osk::FaultKind::None);
    const auto d = fi.decide(osk::sysno::read, 64 * 1024);
    EXPECT_EQ(d.kind, osk::FaultKind::Errno);
    EXPECT_EQ(d.err, ENOSPC);
    EXPECT_EQ(fi.plannedRemaining(), 0u);
    EXPECT_FALSE(fi.armed());
    EXPECT_EQ(fi.injected(), 1u);
    EXPECT_EQ(fi.injectedOf(osk::FaultKind::Errno), 1u);
    EXPECT_EQ(fi.invocations(osk::sysno::read), 3u);
}

TEST(FaultInjector, ShortTransferRequiresEligibility)
{
    osk::FaultInjector fi;
    fi.planFault(osk::sysno::close, 1,
                 {osk::FaultKind::ShortTransfer, 0, 500, 0});
    // close is not a transfer call: the scripted short fault degrades
    // to no fault rather than truncating a meaningless count.
    EXPECT_EQ(fi.decide(osk::sysno::close, 0).kind,
              osk::FaultKind::None);
    EXPECT_EQ(fi.injected(), 0u);
}

TEST(FaultInjector, RandomShortsNeverSplitAtomicSizedTransfers)
{
    // PIPE_BUF-style atomicity: a 100% random short-transfer rate must
    // leave transfers of at most atomicTransferBytes whole, while a
    // scripted fault still splits them (explicit test intent wins).
    osk::FaultConfig cfg;
    cfg.seed = 11;
    cfg.shortPpm = 1'000'000;
    osk::FaultInjector fi;
    fi.configure(cfg);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(fi.decide(osk::sysno::write, 512).kind,
                  osk::FaultKind::None);
    EXPECT_EQ(fi.decide(osk::sysno::write, 513).kind,
              osk::FaultKind::ShortTransfer);

    fi.planFault(osk::sysno::pwrite64, 1,
                 {osk::FaultKind::ShortTransfer, 0, 500, 0});
    EXPECT_EQ(fi.decide(osk::sysno::pwrite64, 16).kind,
              osk::FaultKind::ShortTransfer);
}

TEST(FaultInjector, RateBoundsRespected)
{
    osk::FaultConfig cfg;
    cfg.seed = 9;
    cfg.errnoPpm = 1'000'000; // always
    osk::FaultInjector always;
    always.configure(cfg);
    for (int i = 0; i < 200; ++i)
        EXPECT_EQ(always.decide(osk::sysno::open, 0).kind,
                  osk::FaultKind::Errno);

    cfg.errnoPpm = 0;
    osk::FaultInjector never;
    never.configure(cfg);
    for (int i = 0; i < 200; ++i)
        EXPECT_EQ(never.decide(osk::sysno::open, 0).kind,
                  osk::FaultKind::None);
}

TEST(FaultInjector, DeviceDelayDeterministicAndCounted)
{
    osk::FaultConfig cfg;
    cfg.seed = 5;
    cfg.deviceDelayPpm = 500'000;
    cfg.deviceDelay = ticks::us(123);

    osk::FaultInjector a, b;
    a.configure(cfg);
    b.configure(cfg);
    std::uint64_t hits = 0;
    for (int i = 0; i < 1000; ++i) {
        const Tick da = a.deviceDelay();
        EXPECT_EQ(da, b.deviceDelay()) << i;
        if (da != 0) {
            EXPECT_EQ(da, ticks::us(123));
            ++hits;
        }
    }
    EXPECT_GT(hits, 300u);
    EXPECT_LT(hits, 700u);
    EXPECT_EQ(a.injectedOf(osk::FaultKind::DeviceDelay), hits);
}

TEST(FaultInjector, ResetClearsCountersAndPlan)
{
    osk::FaultInjector fi;
    fi.config().errnoPpm = 1'000'000;
    fi.planFault(osk::sysno::read, 9, {osk::FaultKind::Eintr});
    (void)fi.decide(osk::sysno::read, 64 * 1024);
    EXPECT_GT(fi.injected(), 0u);
    fi.reset();
    EXPECT_EQ(fi.injected(), 0u);
    EXPECT_EQ(fi.plannedRemaining(), 0u);
    EXPECT_EQ(fi.invocations(osk::sysno::read), 0u);
    // Config survives a reset.
    EXPECT_TRUE(fi.armed());
}

// ------------------------------------------------------- sysfs knobs

TEST(FaultSysfs, KnobsReadableAndWritableThroughVfs)
{
    System sys;
    auto &k = sys.kernel();

    auto roundtrip = [&](const char *path, std::uint64_t value,
                         std::uint64_t &out) -> sim::Task<> {
        char buf[32];
        const int n =
            std::snprintf(buf, sizeof buf, "%llu",
                          static_cast<unsigned long long>(value));
        const auto fd = co_await k.doSyscall(
            sys.process(), osk::sysno::open,
            osk::makeArgs(path, osk::O_RDWR));
        co_await k.doSyscall(sys.process(), osk::sysno::write,
                             osk::makeArgs(fd, buf, n));
        char back[32] = {};
        co_await k.doSyscall(
            sys.process(), osk::sysno::pread64,
            osk::makeArgs(fd, back, sizeof back - 1, 0));
        out = std::strtoull(back, nullptr, 10);
        co_await k.doSyscall(sys.process(), osk::sysno::close,
                             osk::makeArgs(fd));
    };

    std::uint64_t eintr = 0, seed = 0;
    sys.sim().spawn(roundtrip("/sys/genesys/fault/eintr_ppm", 12345,
                              eintr));
    sys.sim().spawn(roundtrip("/sys/genesys/fault/seed", 777, seed));
    sys.run();

    EXPECT_EQ(eintr, 12345u);
    EXPECT_EQ(seed, 777u);
    EXPECT_EQ(k.faults().config().eintrPpm, 12345u);
    EXPECT_EQ(k.faults().config().seed, 777u);
    EXPECT_TRUE(k.faults().armed());
}

TEST(FaultSysfs, InjectedCounterIsReadOnly)
{
    System sys;
    auto &k = sys.kernel();
    std::int64_t wrote = -1;
    sys.sim().spawn([](System &s, osk::Kernel &kk,
                       std::int64_t &out) -> sim::Task<> {
        const auto fd = co_await kk.doSyscall(
            s.process(), osk::sysno::open,
            osk::makeArgs("/sys/genesys/fault/injected", osk::O_RDWR));
        out = co_await kk.doSyscall(s.process(), osk::sysno::write,
                                    osk::makeArgs(fd, "99", 2));
    }(sys, k, wrote));
    sys.run();
    EXPECT_EQ(wrote, 0); // setter rejects: 0 bytes accepted
    EXPECT_EQ(k.faults().injected(), 0u);
}

// ------------------------- GPU-side recovery, work-group granularity

TEST(FaultRecoveryWg, EintrRestartCompletesWrite)
{
    System sys;
    sys.kernel().vfs().createFile("/f");
    sys.kernel().faults().planFault(osk::sysno::write, 1,
                                    {osk::FaultKind::Eintr});

    static const char data[] = "hello, fault!";
    std::int64_t ret = 0;
    gpu::KernelLaunch k;
    k.workItems = 64;
    k.wgSize = 64;
    k.program = [&](gpu::WavefrontCtx &ctx) -> sim::Task<> {
        const auto fd = co_await sys.gpuSys().open(ctx, weak(), "/f",
                                                   osk::O_WRONLY);
        ret = co_await sys.gpuSys().write(ctx, weak(),
                                          static_cast<int>(fd), data,
                                          13);
    };
    sys.launchGpuAndDrain(std::move(k));
    sys.run();

    EXPECT_EQ(ret, 13);
    auto *f = static_cast<osk::RegularFile *>(
        sys.kernel().vfs().resolve("/f"));
    ASSERT_NE(f, nullptr);
    EXPECT_EQ(std::string(f->data().begin(), f->data().end()),
              "hello, fault!");
    EXPECT_GE(sys.gpuSys().syscallRetries(), 1u);
    EXPECT_EQ(sys.kernel().faults().injected(), 1u);
}

TEST(FaultRecoveryWg, ShortWriteContinuationDeliversAllBytes)
{
    System sys;
    sys.kernel().vfs().createFile("/f");
    // First write keeps only 25% of the count; the client must issue
    // a continuation for the rest.
    sys.kernel().faults().planFault(
        osk::sysno::write, 1, {osk::FaultKind::ShortTransfer, 0, 250});

    static const char data[] = "0123456789abcdef";
    std::int64_t ret = 0;
    gpu::KernelLaunch k;
    k.workItems = 64;
    k.wgSize = 64;
    k.program = [&](gpu::WavefrontCtx &ctx) -> sim::Task<> {
        const auto fd = co_await sys.gpuSys().open(ctx, weak(), "/f",
                                                   osk::O_WRONLY);
        ret = co_await sys.gpuSys().write(ctx, weak(),
                                          static_cast<int>(fd), data,
                                          16);
    };
    sys.launchGpuAndDrain(std::move(k));
    sys.run();

    EXPECT_EQ(ret, 16);
    auto *f = static_cast<osk::RegularFile *>(
        sys.kernel().vfs().resolve("/f"));
    EXPECT_EQ(std::string(f->data().begin(), f->data().end()),
              "0123456789abcdef");
    EXPECT_GE(sys.gpuSys().shortTransfers(), 1u);
}

TEST(FaultRecoveryWg, ShortReadContinuationAssemblesFullBuffer)
{
    System sys;
    auto *f = sys.kernel().vfs().createFile("/corpus");
    f->setData("the quick brown fox jumps over the lazy dog");
    auto &fi = sys.kernel().faults();
    // Two consecutive short reads, then clean completion.
    fi.planFault(osk::sysno::pread64, 1,
                 {osk::FaultKind::ShortTransfer, 0, 300});
    fi.planFault(osk::sysno::pread64, 2,
                 {osk::FaultKind::ShortTransfer, 0, 500});

    static char buf[64] = {};
    std::int64_t ret = 0;
    gpu::KernelLaunch k;
    k.workItems = 64;
    k.wgSize = 64;
    k.program = [&](gpu::WavefrontCtx &ctx) -> sim::Task<> {
        const auto fd = co_await sys.gpuSys().open(
            ctx, weak(), "/corpus", osk::O_RDONLY);
        ret = co_await sys.gpuSys().pread(ctx, weak(),
                                          static_cast<int>(fd), buf,
                                          43, 0);
    };
    sys.launchGpuAndDrain(std::move(k));
    sys.run();

    EXPECT_EQ(ret, 43);
    EXPECT_EQ(std::string(buf, 43),
              "the quick brown fox jumps over the lazy dog");
    EXPECT_GE(sys.gpuSys().shortTransfers(), 2u);
}

TEST(FaultRecoveryWg, EagainRetriesWithBackoffThenSucceeds)
{
    System sys;
    sys.kernel().vfs().createFile("/f");
    auto &fi = sys.kernel().faults();
    fi.planFault(osk::sysno::write, 1, {osk::FaultKind::Eagain});
    fi.planFault(osk::sysno::write, 2, {osk::FaultKind::Eagain});

    std::int64_t ret = 0;
    gpu::KernelLaunch k;
    k.workItems = 64;
    k.wgSize = 64;
    k.program = [&](gpu::WavefrontCtx &ctx) -> sim::Task<> {
        const auto fd = co_await sys.gpuSys().open(ctx, weak(), "/f",
                                                   osk::O_WRONLY);
        ret = co_await sys.gpuSys().write(ctx, weak(),
                                          static_cast<int>(fd), "xyz",
                                          3);
    };
    sys.launchGpuAndDrain(std::move(k));
    sys.run();

    EXPECT_EQ(ret, 3);
    EXPECT_GE(sys.gpuSys().syscallRetries(), 2u);
    EXPECT_EQ(fi.injectedOf(osk::FaultKind::Eagain), 2u);
}

TEST(FaultRecoveryWg, HardErrnoSurfacesToTheRequester)
{
    System sys;
    sys.kernel().vfs().createFile("/f");
    sys.kernel().faults().planFault(
        osk::sysno::write, 1, {osk::FaultKind::Errno, ENOSPC, 0, 0});

    std::int64_t ret = 0;
    gpu::KernelLaunch k;
    k.workItems = 64;
    k.wgSize = 64;
    k.program = [&](gpu::WavefrontCtx &ctx) -> sim::Task<> {
        const auto fd = co_await sys.gpuSys().open(ctx, weak(), "/f",
                                                   osk::O_WRONLY);
        ret = co_await sys.gpuSys().write(ctx, weak(),
                                          static_cast<int>(fd), "xyz",
                                          3);
    };
    sys.launchGpuAndDrain(std::move(k));
    sys.run();

    EXPECT_EQ(ret, -ENOSPC);
    EXPECT_EQ(sys.gpuSys().syscallRetries(), 0u);
}

TEST(FaultRecoveryWg, EintrBudgetExhaustionSurfacesEintr)
{
    SystemConfig cfg;
    cfg.genesys.eintrMaxRestarts = 2;
    System sys(cfg);
    sys.kernel().vfs().createFile("/f");
    auto &fi = sys.kernel().faults();
    // initial try + 2 restarts = 3 attempts, all interrupted.
    for (std::uint64_t n = 1; n <= 3; ++n)
        fi.planFault(osk::sysno::write, n, {osk::FaultKind::Eintr});

    std::int64_t ret = 0;
    gpu::KernelLaunch k;
    k.workItems = 64;
    k.wgSize = 64;
    k.program = [&](gpu::WavefrontCtx &ctx) -> sim::Task<> {
        const auto fd = co_await sys.gpuSys().open(ctx, weak(), "/f",
                                                   osk::O_WRONLY);
        ret = co_await sys.gpuSys().write(ctx, weak(),
                                          static_cast<int>(fd), "xyz",
                                          3);
    };
    sys.launchGpuAndDrain(std::move(k));
    sys.run();

    EXPECT_EQ(ret, -EINTR);
    EXPECT_EQ(sys.gpuSys().syscallRetries(), 2u);
}

TEST(FaultRecoveryWg, HaltResumeWaitersRecoverToo)
{
    System sys;
    auto *f = sys.kernel().vfs().createFile("/corpus");
    f->setData("halt-resume payload");
    auto &fi = sys.kernel().faults();
    fi.planFault(osk::sysno::pread64, 1, {osk::FaultKind::Eintr});
    fi.planFault(osk::sysno::pread64, 2,
                 {osk::FaultKind::ShortTransfer, 0, 400});

    static char buf[32] = {};
    std::int64_t ret = 0;
    gpu::KernelLaunch k;
    k.workItems = 64;
    k.wgSize = 64;
    k.program = [&](gpu::WavefrontCtx &ctx) -> sim::Task<> {
        Invocation inv = weak();
        inv.waitMode = WaitMode::HaltResume;
        const auto fd = co_await sys.gpuSys().open(
            ctx, inv, "/corpus", osk::O_RDONLY);
        ret = co_await sys.gpuSys().pread(ctx, inv,
                                          static_cast<int>(fd), buf,
                                          19, 0);
    };
    sys.launchGpuAndDrain(std::move(k));
    sys.run();

    EXPECT_EQ(ret, 19);
    EXPECT_EQ(std::string(buf, 19), "halt-resume payload");
    EXPECT_GE(sys.gpuSys().syscallRetries(), 1u);
    EXPECT_GE(sys.gpuSys().shortTransfers(), 1u);
}

// --------------------------- work-item and kernel granularity paths

TEST(FaultRecoveryWi, PerLaneRecoveryKeepsEveryLaneResultCorrect)
{
    SystemConfig cfg;
    cfg.genesys.eagainBackoffCycles = 64;
    System sys(cfg);
    auto *f = sys.kernel().vfs().createFile("/lanes");
    std::string content(64 * 4, '?');
    for (int i = 0; i < 64 * 4; ++i)
        content[static_cast<std::size_t>(i)] =
            static_cast<char>('A' + i % 23);
    f->setData(content);

    // Probabilistic plan heavy enough that many of the 64 lanes fault
    // (deterministically, per seed).
    auto &fi = sys.kernel().faults();
    fi.config().seed = 1234;
    fi.config().eintrPpm = 150'000;
    fi.config().eagainPpm = 100'000;
    fi.config().shortPpm = 150'000;

    static char out[64 * 4] = {};
    std::vector<std::int64_t> lane_ret(64, -1);
    gpu::KernelLaunch k;
    k.workItems = 64;
    k.wgSize = 64;
    k.program = [&](gpu::WavefrontCtx &ctx) -> sim::Task<> {
        const auto fd = co_await sys.gpuSys().open(
            ctx, weak(), "/lanes", osk::O_RDONLY);
        Invocation wi;
        wi.granularity = Granularity::WorkItem;
        co_await sys.gpuSys().invokeWorkItems(
            ctx, wi, osk::sysno::pread64,
            [&](std::uint32_t lane) -> std::optional<osk::SyscallArgs> {
                return osk::makeArgs(
                    static_cast<int>(fd), &out[lane * 4], 4,
                    static_cast<std::int64_t>(lane) * 4);
            },
            [&](std::uint32_t lane, std::int64_t r) {
                lane_ret[lane] = r;
            });
    };
    sys.launchGpuAndDrain(std::move(k));
    sys.run();

    for (std::uint32_t lane = 0; lane < 64; ++lane)
        EXPECT_EQ(lane_ret[lane], 4) << "lane " << lane;
    EXPECT_EQ(std::string(out, sizeof out), content);
    EXPECT_GT(sys.kernel().faults().injected(), 0u);
    EXPECT_GT(sys.gpuSys().syscallRetries() +
                  sys.gpuSys().shortTransfers(),
              0u);
}

TEST(FaultRecoveryKernel, KernelGranularityRestartsTransparently)
{
    System sys;
    auto *f = sys.kernel().vfs().createFile("/kfile");
    f->setData("kernel granularity data");
    auto &fi = sys.kernel().faults();
    fi.planFault(osk::sysno::pread64, 1, {osk::FaultKind::Eintr});

    static char buf[32] = {};
    std::int64_t ret = 0;
    gpu::KernelLaunch k;
    k.workItems = 4 * 64;
    k.wgSize = 64;
    k.program = [&](gpu::WavefrontCtx &ctx) -> sim::Task<> {
        Invocation inv = weak();
        inv.granularity = Granularity::Kernel;
        const auto fd = co_await sys.gpuSys().open(
            ctx, inv, "/kfile", osk::O_RDONLY);
        const auto r = co_await sys.gpuSys().pread(
            ctx, inv, static_cast<int>(fd), buf, 23, 0);
        if (ctx.workgroupId() == 0 && ctx.isGroupLeader())
            ret = r;
    };
    sys.launchGpuAndDrain(std::move(k));
    sys.run();

    EXPECT_EQ(ret, 23);
    EXPECT_EQ(std::string(buf, 23), "kernel granularity data");
    EXPECT_GE(sys.gpuSys().syscallRetries(), 1u);
}

// ----------------------- host-side recovery for non-blocking slots

TEST(FaultRecoveryHost, NonBlockingFaultedCallIsRestartedByTheHost)
{
    System sys;
    sys.kernel().vfs().createFile("/nb");
    auto &fi = sys.kernel().faults();
    fi.planFault(osk::sysno::pwrite64, 1, {osk::FaultKind::Eintr});
    fi.planFault(osk::sysno::pwrite64, 2,
                 {osk::FaultKind::ShortTransfer, 0, 500});

    static const char data[] = "fire-and-forget";
    gpu::KernelLaunch k;
    k.workItems = 64;
    k.wgSize = 64;
    k.program = [&](gpu::WavefrontCtx &ctx) -> sim::Task<> {
        const auto fd = co_await sys.gpuSys().open(ctx, weak(), "/nb",
                                                   osk::O_WRONLY);
        Invocation nb = weak();
        nb.blocking = Blocking::NonBlocking;
        co_await sys.gpuSys().pwrite(ctx, nb, static_cast<int>(fd),
                                     data, 15, 0);
    };
    sys.launchGpuAndDrain(std::move(k));
    sys.run();

    // Nobody consumed a result, yet the bytes all arrived: the host
    // restarted the interrupted call and continued the short write.
    auto *f = static_cast<osk::RegularFile *>(
        sys.kernel().vfs().resolve("/nb"));
    EXPECT_EQ(std::string(f->data().begin(), f->data().end()),
              "fire-and-forget");
    EXPECT_GE(sys.host().hostRestarts(), 2u);
    EXPECT_EQ(sys.host().inFlight(), 0u);
}

TEST(FaultRecoveryHost, DrainCompletesWithInFlightFaultedSyscalls)
{
    // Section IX under failure: a kernel ends with non-blocking
    // syscalls still in flight AND those syscalls hit injected
    // faults. drain() must still reach quiescence and the results
    // must be functionally complete.
    System sys;
    sys.kernel().vfs().createFile("/teardown");
    auto &fi = sys.kernel().faults();
    fi.config().seed = 99;
    fi.config().eintrPpm = 200'000;
    fi.config().shortPpm = 200'000;

    static char payload[8][8];
    gpu::KernelLaunch k;
    k.workItems = 8 * 64;
    k.wgSize = 64;
    k.program = [&](gpu::WavefrontCtx &ctx) -> sim::Task<> {
        const auto fd = co_await sys.gpuSys().open(
            ctx, weak(), "/teardown", osk::O_WRONLY);
        auto &msg = payload[ctx.workgroupId()];
        std::snprintf(msg, sizeof msg, "wg%04u;", ctx.workgroupId());
        Invocation nb = weak();
        nb.blocking = Blocking::NonBlocking;
        // The kernel returns immediately after publishing; the host
        // (and drain) own completion.
        co_await sys.gpuSys().pwrite(
            ctx, nb, static_cast<int>(fd), msg, 7,
            static_cast<std::int64_t>(ctx.workgroupId()) * 7);
    };
    sys.launchGpuAndDrain(std::move(k));
    sys.run();

    EXPECT_EQ(sys.host().inFlight(), 0u);
    EXPECT_TRUE(sys.syscallArea().quiescent());
    auto *f = static_cast<osk::RegularFile *>(
        sys.kernel().vfs().resolve("/teardown"));
    ASSERT_EQ(f->size(), 8u * 7u);
    for (std::uint32_t wg = 0; wg < 8; ++wg) {
        char expect[8];
        std::snprintf(expect, sizeof expect, "wg%04u;", wg);
        EXPECT_EQ(std::string(f->data().begin() + wg * 7,
                              f->data().begin() + (wg + 1) * 7),
                  std::string(expect, 7))
            << "wg " << wg;
    }
}

TEST(FaultRecoveryHost, DaemonBackendRecoversFaultsToo)
{
    System sys;
    sys.host().startPollingDaemon(ticks::us(5));
    auto *f = sys.kernel().vfs().createFile("/daemon");
    f->setData("daemon path data");
    auto &fi = sys.kernel().faults();
    fi.planFault(osk::sysno::pread64, 1, {osk::FaultKind::Eintr});

    static char buf[32] = {};
    std::int64_t ret = 0;
    gpu::KernelLaunch k;
    k.workItems = 64;
    k.wgSize = 64;
    k.program = [&](gpu::WavefrontCtx &ctx) -> sim::Task<> {
        const auto fd = co_await sys.gpuSys().open(
            ctx, weak(), "/daemon", osk::O_RDONLY);
        ret = co_await sys.gpuSys().pread(ctx, weak(),
                                          static_cast<int>(fd), buf,
                                          16, 0);
        sys.host().stopDaemon();
    };
    sys.launchGpu(std::move(k));
    sys.run();

    EXPECT_EQ(ret, 16);
    EXPECT_EQ(std::string(buf, 16), "daemon path data");
    EXPECT_GE(sys.gpuSys().syscallRetries(), 1u);
}

// ------------------------------------------- CPU path is unaffected

TEST(FaultScope, CpuSideDoSyscallBypassesInjection)
{
    System sys;
    sys.kernel().vfs().createFile("/cpu");
    // Even a 100% errno plan must not touch the CPU-side dispatch
    // path: only the GPU service path is faultable.
    sys.kernel().faults().config().errnoPpm = 1'000'000;

    std::int64_t ret = 0;
    sys.sim().spawn([](System &s, std::int64_t &out) -> sim::Task<> {
        const auto fd = co_await s.kernel().doSyscall(
            s.process(), osk::sysno::open,
            osk::makeArgs("/cpu", osk::O_WRONLY));
        out = co_await s.kernel().doSyscall(
            s.process(), osk::sysno::write,
            osk::makeArgs(fd, "ok", 2));
    }(sys, ret));
    sys.run();

    EXPECT_EQ(ret, 2);
    EXPECT_EQ(sys.kernel().faults().injected(), 0u);
}

// ------------------------------------------------ bit-reproducibility

TEST(FaultDeterminism, IdenticalSeedsGiveBitIdenticalRuns)
{
    auto run_once = [](std::uint64_t seed) {
        SystemConfig cfg;
        cfg.seed = seed;
        System sys(cfg);
        auto *f = sys.kernel().vfs().createFile("/det");
        std::string content(512, 'x');
        for (std::size_t i = 0; i < content.size(); ++i)
            content[i] = static_cast<char>('a' + i % 26);
        f->setData(content);

        auto &fi = sys.kernel().faults();
        fi.config().seed = seed;
        fi.config().eintrPpm = 120'000;
        fi.config().eagainPpm = 60'000;
        fi.config().shortPpm = 120'000;

        static char buf[512];
        std::memset(buf, 0, sizeof buf);
        gpu::KernelLaunch k;
        k.workItems = 4 * 64;
        k.wgSize = 64;
        k.program = [&sys](gpu::WavefrontCtx &ctx) -> sim::Task<> {
            const auto fd = co_await sys.gpuSys().open(
                ctx, weak(), "/det", osk::O_RDONLY);
            co_await sys.gpuSys().pread(
                ctx, weak(), static_cast<int>(fd), buf + 128 * ctx.workgroupId(),
                128, static_cast<std::int64_t>(ctx.workgroupId()) * 128);
        };
        sys.launchGpuAndDrain(std::move(k));
        sys.run();

        struct Snapshot
        {
            std::string data;
            std::uint64_t injected, retries, shorts;
            std::string stats;
        } s;
        s.data.assign(buf, sizeof buf);
        s.injected = sys.kernel().faults().injected();
        s.retries = sys.gpuSys().syscallRetries();
        s.shorts = sys.gpuSys().shortTransfers();
        s.stats = sys.statsReport();
        return std::make_tuple(s.data, s.injected, s.retries, s.shorts,
                               s.stats);
    };

    const auto a = run_once(4242);
    const auto b = run_once(4242);
    EXPECT_EQ(a, b);
    EXPECT_GT(std::get<1>(a), 0u); // faults actually fired

    const auto c = run_once(777);
    EXPECT_NE(std::get<4>(a), std::get<4>(c)); // schedule changed
    // ...but the functional result is seed-independent.
    EXPECT_EQ(std::get<0>(a), std::get<0>(c));
}

// -------------------------------------------------- device latency

TEST(FaultDevice, LatencySpikesSlowSsdReadsDeterministically)
{
    auto timed_read = [](std::uint32_t ppm) {
        SystemConfig cfg;
        System sys(cfg);
        auto *f = sys.kernel().createSsdFile("/ssd/blob");
        f->setSynthetic(2 * 1024 * 1024);
        auto &fi = sys.kernel().faults();
        fi.config().deviceDelayPpm = ppm;
        fi.config().deviceDelay = ticks::us(400);

        gpu::KernelLaunch k;
        k.workItems = 64;
        k.wgSize = 64;
        k.program = [&sys](gpu::WavefrontCtx &ctx) -> sim::Task<> {
            const auto fd = co_await sys.gpuSys().open(
                ctx, weak(), "/ssd/blob", osk::O_RDONLY);
            std::int64_t total = 0;
            for (;;) {
                const auto n = co_await sys.gpuSys().pread(
                    ctx, weak(), static_cast<int>(fd), nullptr,
                    256 * 1024, total);
                if (n <= 0)
                    break;
                total += n;
            }
        };
        sys.launchGpuAndDrain(std::move(k));
        sys.run();
        return std::make_pair(sys.sim().now(),
                              sys.kernel().ssd().delayedRequests());
    };

    const auto clean = timed_read(0);
    const auto spiky = timed_read(300'000);
    const auto spiky2 = timed_read(300'000);
    EXPECT_EQ(clean.second, 0u);
    EXPECT_GT(spiky.second, 0u);
    EXPECT_GT(spiky.first, clean.first);
    EXPECT_EQ(spiky, spiky2); // bit-reproducible
}

} // namespace
} // namespace genesys::core
