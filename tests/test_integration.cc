/**
 * @file
 * Cross-module integration scenarios: GPU and CPU code cooperating
 * through files, pipes, and signals — the heterogeneous programming
 * style GENESYS exists to enable.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/system.hh"
#include "osk/file.hh"
#include "osk/pipe.hh"

namespace genesys::core
{
namespace
{

Invocation
weak()
{
    Invocation i;
    i.ordering = Ordering::Relaxed;
    return i;
}

TEST(Integration, GpuWritesCpuReadsGpuReadsBack)
{
    System sys;
    sys.kernel().vfs().createFile("/shared");

    // Stage 1: GPU writes.
    static const char gpu_data[] = "gpu-was-here";
    gpu::KernelLaunch w;
    w.workItems = 64;
    w.wgSize = 64;
    w.program = [&sys](gpu::WavefrontCtx &ctx) -> sim::Task<> {
        const auto fd = co_await sys.gpuSys().open(
            ctx, weak(), "/shared", osk::O_WRONLY);
        co_await sys.gpuSys().pwrite(ctx, weak(),
                                     static_cast<int>(fd), gpu_data,
                                     12, 0);
    };
    sys.launchGpuAndDrain(std::move(w));
    sys.run();

    // Stage 2: CPU appends via its own syscalls.
    sys.sim().spawn([](System &s) -> sim::Task<> {
        const auto fd = co_await s.kernel().doSyscall(
            s.process(), osk::sysno::open,
            osk::makeArgs("/shared", osk::O_WRONLY | osk::O_APPEND));
        co_await s.kernel().doSyscall(
            s.process(), osk::sysno::write,
            osk::makeArgs(fd, "+cpu", 4));
    }(sys));
    sys.run();

    // Stage 3: GPU reads the combined content back.
    static char readback[32] = {};
    std::int64_t got = 0;
    gpu::KernelLaunch r;
    r.workItems = 64;
    r.wgSize = 64;
    r.program = [&sys, &got](gpu::WavefrontCtx &ctx) -> sim::Task<> {
        const auto fd = co_await sys.gpuSys().open(
            ctx, weak(), "/shared", osk::O_RDONLY);
        got = co_await sys.gpuSys().pread(
            ctx, weak(), static_cast<int>(fd), readback, 32, 0);
    };
    sys.launchGpuAndDrain(std::move(r));
    sys.run();

    EXPECT_EQ(got, 16);
    EXPECT_EQ(std::string(readback, 16), "gpu-was-here+cpu");
}

TEST(Integration, GpuProducesIntoPipeCpuConsumesConcurrently)
{
    // A streaming GPU->CPU pipeline over pipe(2), with both sides
    // running in the same simulation: the GPU writes through GENESYS
    // while the CPU read-loops — blocked reads must not wedge the
    // syscall service path.
    System sys;
    int fds[2] = {-1, -1};
    sys.sim().spawn([](System &s, int *out) -> sim::Task<> {
        co_await s.kernel().doSyscall(s.process(), osk::sysno::pipe,
                                      osk::makeArgs(out));
    }(sys, fds));
    sys.run();
    ASSERT_GE(fds[0], 0);

    std::string consumed;
    sys.sim().spawn([](System &s, int fd,
                       std::string &out) -> sim::Task<> {
        char buf[64];
        for (;;) {
            const auto n = co_await s.kernel().doSyscall(
                s.process(), osk::sysno::read,
                osk::makeArgs(fd, buf, sizeof buf));
            if (n <= 0)
                break;
            out.append(buf, static_cast<std::size_t>(n));
        }
    }(sys, fds[0], consumed));

    static char messages[8][16];
    gpu::KernelLaunch k;
    k.workItems = 8 * 64;
    k.wgSize = 64;
    k.program = [&sys, &fds](gpu::WavefrontCtx &ctx) -> sim::Task<> {
        auto &msg = messages[ctx.workgroupId()];
        std::snprintf(msg, sizeof msg, "block%02u;",
                      ctx.workgroupId());
        co_await ctx.compute(5000 * (ctx.workgroupId() + 1));
        co_await sys.gpuSys().write(ctx, weak(), fds[1], msg, 8);
    };
    sys.launchGpuAndDrain(std::move(k));
    sys.run();

    // Close the writer from the CPU: consumer sees EOF and finishes.
    sys.sim().spawn([](System &s, int fd) -> sim::Task<> {
        co_await s.kernel().doSyscall(s.process(), osk::sysno::close,
                                      osk::makeArgs(fd));
    }(sys, fds[1]));
    sys.run();

    EXPECT_EQ(consumed.size(), 8u * 8);
    for (int i = 0; i < 8; ++i) {
        EXPECT_NE(consumed.find(logging::format("block%02d;", i)),
                  std::string::npos);
    }
}

TEST(Integration, SignalsInterleavedWithFilesystemCalls)
{
    // Work-groups write a result file AND signal per-block completion;
    // a CPU consumer reacts to each signal by reading that block.
    System sys;
    sys.kernel().vfs().createFile("/results");
    static char block_data[8][8];

    int reacted = 0;
    sys.sim().spawn([](System &s, int &count) -> sim::Task<> {
        for (;;) {
            osk::SigInfo info =
                co_await s.process().signals().waitInfo();
            if (info.value < 0)
                co_return;
            char buf[8] = {};
            const auto fd = co_await s.kernel().doSyscall(
                s.process(), osk::sysno::open,
                osk::makeArgs("/results", osk::O_RDONLY));
            const auto n = co_await s.kernel().doSyscall(
                s.process(), osk::sysno::pread64,
                osk::makeArgs(fd, buf, 8, info.value * 8));
            EXPECT_EQ(n, 8);
            EXPECT_EQ(buf[0], 'b');
            ++count;
        }
    }(sys, reacted));

    gpu::KernelLaunch k;
    k.workItems = 8 * 64;
    k.wgSize = 64;
    k.program = [&sys](gpu::WavefrontCtx &ctx) -> sim::Task<> {
        const std::uint32_t wg = ctx.workgroupId();
        std::snprintf(block_data[wg], 8, "b%06u", wg);
        const auto fd = co_await sys.gpuSys().open(
            ctx, weak(), "/results", osk::O_WRONLY);
        co_await sys.gpuSys().pwrite(ctx, weak(),
                                     static_cast<int>(fd),
                                     block_data[wg], 8, wg * 8);
        static osk::SigInfo infos[8];
        infos[wg].signo = osk::SIGRTMIN_;
        infos[wg].value = wg;
        Invocation nb = weak();
        nb.blocking = Blocking::NonBlocking;
        co_await sys.gpuSys().rtSigqueueinfo(ctx, nb, 0,
                                             osk::SIGRTMIN_,
                                             &infos[wg]);
    };
    sys.launchGpuAndDrain(std::move(k));
    sys.run();
    osk::SigInfo sentinel;
    sentinel.signo = osk::SIGRTMIN_;
    sentinel.value = -1;
    sys.process().signals().queueInfo(sentinel);
    sys.run();
    EXPECT_EQ(reacted, 8);
}

TEST(Integration, SequentialKernelsWithDrainBetween)
{
    // The paper's continuation-free model: one logical task split
    // into phases, with Section IX's drain making phase boundaries
    // safe for non-blocking stragglers.
    System sys;
    sys.kernel().vfs().createFile("/acc");
    for (int phase = 0; phase < 4; ++phase) {
        static char byte[4];
        byte[phase] = static_cast<char>('0' + phase);
        gpu::KernelLaunch k;
        k.workItems = 64;
        k.wgSize = 64;
        k.program = [&sys, phase](gpu::WavefrontCtx &ctx)
            -> sim::Task<> {
            const auto fd = co_await sys.gpuSys().open(
                ctx, weak(), "/acc", osk::O_WRONLY);
            Invocation nb = weak();
            nb.blocking = Blocking::NonBlocking;
            co_await sys.gpuSys().pwrite(ctx, nb,
                                         static_cast<int>(fd),
                                         &byte[phase], 1, phase);
        };
        sys.launchGpuAndDrain(std::move(k));
        sys.run();
        // Drain guarantee: the non-blocking write has landed.
        auto *f = static_cast<osk::RegularFile *>(
            sys.kernel().vfs().resolve("/acc"));
        ASSERT_EQ(f->size(), static_cast<std::uint64_t>(phase + 1));
    }
}

TEST(Integration, TwoProcessesHaveIsolatedDescriptors)
{
    System sys;
    osk::Process &p2 = sys.kernel().createProcess();
    sys.kernel().vfs().createFile("/f")->setData("x");
    std::int64_t fd1 = -1, fd2 = -1, bad = 0;
    sys.sim().spawn([](System &s, osk::Process &other, std::int64_t &a,
                       std::int64_t &b, std::int64_t &c) -> sim::Task<> {
        a = co_await s.kernel().doSyscall(
            s.process(), osk::sysno::open,
            osk::makeArgs("/f", osk::O_RDONLY));
        b = co_await s.kernel().doSyscall(
            other, osk::sysno::open, osk::makeArgs("/f", osk::O_RDONLY));
        // p2's fd is not valid in p1 beyond its own table size.
        char buf[2];
        c = co_await s.kernel().doSyscall(
            s.process(), osk::sysno::read,
            osk::makeArgs(b + 10, buf, 1));
    }(sys, p2, fd1, fd2, bad));
    sys.run();
    EXPECT_GE(fd1, 3); // 0-2 are stdio
    EXPECT_GE(fd2, 3);
    EXPECT_EQ(bad, -EBADF);
}

TEST(Integration, ProcMeminfoReflectsGpuMadvise)
{
    // Everything-is-a-file meets memory management: the GPU maps and
    // touches memory, then /proc shows the RSS drop after madvise.
    SystemConfig cfg;
    System sys(cfg);
    std::int64_t arena = 0;
    sys.sim().spawn([](System &s, std::int64_t &out) -> sim::Task<> {
        out = co_await s.kernel().doSyscall(
            s.process(), osk::sysno::mmap,
            osk::makeArgs(0, 64 * osk::kPageSize, 3, 0x22, -1, 0));
    }(sys, arena));
    sys.run();
    sys.process().mm().touchUntimed(static_cast<osk::Addr>(arena),
                                    64 * osk::kPageSize);

    auto read_rss = [&sys]() {
        std::string content;
        sys.sim().spawn([](System &s, std::string &out) -> sim::Task<> {
            char buf[512] = {};
            const auto fd = co_await s.kernel().doSyscall(
                s.process(), osk::sysno::open,
                osk::makeArgs("/proc/meminfo", osk::O_RDONLY));
            co_await s.kernel().doSyscall(
                s.process(), osk::sysno::read,
                osk::makeArgs(fd, buf, sizeof buf - 1));
            out = buf;
        }(sys, content));
        sys.run();
        return content;
    };

    const std::string before = read_rss();
    EXPECT_NE(before.find(logging::format(
                  "rss_bytes %llu",
                  static_cast<unsigned long long>(64 * osk::kPageSize))),
              std::string::npos);

    gpu::KernelLaunch k;
    k.workItems = 64;
    k.wgSize = 64;
    k.program = [&sys, arena](gpu::WavefrontCtx &ctx) -> sim::Task<> {
        co_await sys.gpuSys().madvise(ctx, weak(),
                                      static_cast<std::uint64_t>(arena),
                                      32 * osk::kPageSize,
                                      osk::MADV_DONTNEED_);
    };
    sys.launchGpuAndDrain(std::move(k));
    sys.run();

    const std::string after = read_rss();
    EXPECT_NE(after.find(logging::format(
                  "rss_bytes %llu",
                  static_cast<unsigned long long>(32 * osk::kPageSize))),
              std::string::npos);
}

TEST(Integration, WorkItemAndWorkGroupCallsCoexistInOneKernel)
{
    // grep's pattern: coarse WG calls for setup, per-WI calls for
    // divergent output, non-blocking teardown — all in one kernel.
    System sys;
    sys.kernel().vfs().createFile("/mixed");
    gpu::KernelLaunch k;
    k.workItems = 2 * 64;
    k.wgSize = 64;
    k.program = [&sys](gpu::WavefrontCtx &ctx) -> sim::Task<> {
        const auto fd = co_await sys.gpuSys().open(
            ctx, weak(), "/mixed", osk::O_WRONLY);
        Invocation wi;
        wi.granularity = Granularity::WorkItem;
        static char lane_bytes[128];
        co_await sys.gpuSys().invokeWorkItems(
            ctx, wi, osk::sysno::pwrite64,
            [&](std::uint32_t lane) -> std::optional<osk::SyscallArgs> {
                const auto item = ctx.firstWorkItem() + lane;
                if (item % 2 != 0)
                    return std::nullopt; // divergence
                lane_bytes[item] = static_cast<char>('a' + item % 26);
                return osk::makeArgs(static_cast<int>(fd),
                                     &lane_bytes[item], 1,
                                     static_cast<std::int64_t>(item));
            });
        Invocation nb = weak();
        nb.blocking = Blocking::NonBlocking;
        co_await sys.gpuSys().close(ctx, nb, static_cast<int>(fd));
    };
    sys.launchGpuAndDrain(std::move(k));
    sys.run();
    auto *f = static_cast<osk::RegularFile *>(
        sys.kernel().vfs().resolve("/mixed"));
    ASSERT_EQ(f->size(), 127u); // last even item = 126
    for (std::size_t i = 0; i < f->size(); ++i) {
        if (i % 2 == 0)
            EXPECT_EQ(f->data()[i], 'a' + i % 26) << i;
        else
            EXPECT_EQ(f->data()[i], 0) << i;
    }
}

} // namespace
} // namespace genesys::core
