/**
 * @file
 * Tests for the application workloads: functional correctness of every
 * implementation variant, plus the qualitative timing relationships the
 * paper's evaluation hinges on.
 */

#include <gtest/gtest.h>

#include "core/system.hh"
#include "workloads/fbdisplay.hh"
#include "workloads/grep.hh"
#include "workloads/memcached.hh"
#include "workloads/miniamr.hh"
#include "workloads/permute.hh"
#include "workloads/sha512.hh"
#include "workloads/signal_search.hh"
#include "workloads/wordcount.hh"

namespace genesys::workloads
{
namespace
{

// ---------------------------------------------------------------- SHA-512

TEST(Sha512, Fips180TestVectors)
{
    // NIST FIPS 180-4 example vectors.
    EXPECT_EQ(toHex(sha512("abc", 3)),
              "ddaf35a193617abacc417349ae20413112e6fa4e89a97ea20a9eeee6"
              "4b55d39a2192992a274fc1a836ba3c23a3feebbd454d4423643ce80e"
              "2a9ac94fa54ca49f");
    EXPECT_EQ(toHex(sha512("", 0)),
              "cf83e1357eefb8bdf1542850d66d8007d620e4050b5715dc83f4a921"
              "d36ce9ce47d0d13c5d85f2b0ff8318d2877eec2f63b931bd47417a81"
              "a538327af927da3e");
    EXPECT_EQ(
        toHex(sha512("abcdefghbcdefghicdefghijdefghijkefghijklfghijklmg"
                     "hijklmnhijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmn"
                     "opqrstnopqrstu",
                     112)),
        "8e959b75dae313da8cf4f72814fc143f8f7779c6eb9f7fa17299aeadb6889018"
        "501d289e4900f7e4331b99dec4b5433ac7d329eeb6dd26545e96e55b874be909");
}

TEST(Sha512, PaddingBoundaries)
{
    // Lengths around the 111/112 and 128-byte block boundaries all
    // produce distinct, stable digests.
    std::string prev;
    for (std::size_t len : {110u, 111u, 112u, 127u, 128u, 129u, 255u}) {
        const std::string msg(len, 'x');
        const auto hex = toHex(sha512(msg.data(), msg.size()));
        EXPECT_EQ(hex.size(), 128u);
        EXPECT_NE(hex, prev);
        prev = hex;
    }
}

// ------------------------------------------------------------ permutation

TEST(Permute, TableIsAPermutation)
{
    const auto table = permutationTable(8192);
    std::vector<bool> seen(8192, false);
    for (auto idx : table) {
        ASSERT_LT(idx, 8192u);
        EXPECT_FALSE(seen[idx]);
        seen[idx] = true;
    }
}

TEST(Permute, ReferencePermutationInvertsAfterCycles)
{
    // Applying the permutation must change the data (and be
    // deterministic).
    std::vector<std::uint8_t> a(256), b;
    for (std::size_t i = 0; i < a.size(); ++i)
        a[i] = static_cast<std::uint8_t>(i);
    b = a;
    const auto table = permutationTable(256);
    permuteReference(a, table, 3);
    EXPECT_NE(a, b);
    std::vector<std::uint8_t> c = b;
    permuteReference(c, table, 3);
    EXPECT_EQ(a, c);
}

TEST(Permute, EndToEndOutputCorrect)
{
    core::System sys;
    PermuteConfig cfg;
    cfg.numBlocks = 16;
    cfg.blockBytes = 2048;
    cfg.iterations = 3;
    cfg.ordering = core::Ordering::Relaxed;
    cfg.blocking = core::Blocking::NonBlocking;
    const auto result = runPermute(sys, cfg);
    EXPECT_TRUE(result.outputCorrect);
    EXPECT_GT(result.elapsed, 0u);
    EXPECT_EQ(result.syscalls, 16u); // one pwrite per block
}

TEST(Permute, NonBlockingBeatsStrongBlockingAtLowCompute)
{
    auto run = [](core::Ordering o, core::Blocking b) {
        core::System sys;
        PermuteConfig cfg;
        cfg.numBlocks = 64;
        cfg.blockBytes = 2048;
        cfg.iterations = 1; // syscall-dominated region of Fig 8
        cfg.ordering = o;
        cfg.blocking = b;
        return runPermute(sys, cfg).elapsed;
    };
    const Tick strong_block =
        run(core::Ordering::Strong, core::Blocking::Blocking);
    const Tick strong_nonblock =
        run(core::Ordering::Strong, core::Blocking::NonBlocking);
    const Tick weak_nonblock =
        run(core::Ordering::Relaxed, core::Blocking::NonBlocking);
    EXPECT_LT(strong_nonblock, strong_block);
    // Weak + non-blocking tracks strong + non-blocking closely (the
    // paper's Fig 8 shows the same); it must never be meaningfully
    // slower.
    EXPECT_LE(static_cast<double>(weak_nonblock),
              static_cast<double>(strong_nonblock) * 1.05);
}

// ------------------------------------------------------------------- grep

class GrepModes : public ::testing::TestWithParam<GrepMode>
{};

TEST_P(GrepModes, FindsExactlyTheMatchingFiles)
{
    core::System sys;
    GrepCorpusConfig cfg;
    cfg.numFiles = 48;
    cfg.fileBytes = 4096;
    const auto corpus = buildGrepCorpus(sys, cfg);
    ASSERT_FALSE(corpus.expected.empty());
    ASSERT_LT(corpus.expected.size(), corpus.files.size());
    const auto result = runGrep(sys, corpus, GetParam());
    EXPECT_TRUE(result.correct)
        << grepModeName(GetParam()) << ": got "
        << result.matched.size() << " expected "
        << corpus.expected.size();
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, GrepModes,
    ::testing::Values(GrepMode::CpuSerial, GrepMode::CpuOpenMp,
                      GrepMode::GpuWorkGroup,
                      GrepMode::GpuWorkItemPolling,
                      GrepMode::GpuWorkItemHaltResume),
    [](const auto &param_info) {
        std::string name = grepModeName(param_info.param);
        for (auto &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

TEST(Grep, OpenMpBeatsSerialAndGpuBeatsOpenMp)
{
    // Fig 13a's ordering: parallel CPU > serial CPU; GENESYS > both.
    auto elapsed = [](GrepMode mode) {
        core::System sys;
        GrepCorpusConfig cfg;
        cfg.numFiles = 64;
        cfg.fileBytes = 32 * 1024;
        const auto corpus = buildGrepCorpus(sys, cfg);
        const auto r = runGrep(sys, corpus, mode);
        EXPECT_TRUE(r.correct);
        return r.elapsed;
    };
    const Tick serial = elapsed(GrepMode::CpuSerial);
    const Tick openmp = elapsed(GrepMode::CpuOpenMp);
    const Tick gpu_wg = elapsed(GrepMode::GpuWorkGroup);
    EXPECT_LT(openmp, serial);
    EXPECT_LT(gpu_wg, openmp);
}

TEST(Grep, ContainsAnyWordHelper)
{
    EXPECT_TRUE(containsAnyWord("the quick brown fox", {"quick"}));
    EXPECT_FALSE(containsAnyWord("the quick brown fox", {"slow"}));
    EXPECT_TRUE(containsAnyWord("abc", {"zzz", "bc"}));
    EXPECT_FALSE(containsAnyWord("", {"x"}));
}

// -------------------------------------------------------------- wordcount

TEST(Wordcount, CountOccurrencesHelper)
{
    EXPECT_EQ(countOccurrences("aaaa", "aa"), 2u); // non-overlapping
    EXPECT_EQ(countOccurrences("abcabcabc", "abc"), 3u);
    EXPECT_EQ(countOccurrences("abc", "d"), 0u);
    EXPECT_EQ(countOccurrences("abc", ""), 0u);
}

class WordcountModes : public ::testing::TestWithParam<WordcountMode>
{};

TEST_P(WordcountModes, CountsMatchReference)
{
    core::System sys;
    WordcountCorpusConfig cfg;
    cfg.numFiles = 12;
    cfg.fileBytes = 48 * 1024;
    cfg.numWords = 16;
    const auto corpus = buildWordcountCorpus(sys, cfg);
    const auto result = runWordcount(sys, corpus, GetParam());
    EXPECT_TRUE(result.correct) << wordcountModeName(GetParam());
    EXPECT_GT(result.ssdThroughputMBps, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, WordcountModes,
    ::testing::Values(WordcountMode::CpuOpenMp,
                      WordcountMode::GpuNoSyscall,
                      WordcountMode::Genesys),
    [](const auto &param_info) {
        std::string name = wordcountModeName(param_info.param);
        for (auto &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

TEST(Wordcount, GenesysFasterThanCpuFasterThanNoSyscall)
{
    // Fig 13b's ordering: GENESYS best; no-syscall GPU worst.
    auto run = [](WordcountMode mode) {
        core::System sys;
        WordcountCorpusConfig cfg;
        cfg.numFiles = 24;
        cfg.fileBytes = 64 * 1024;
        cfg.numWords = 16;
        const auto corpus = buildWordcountCorpus(sys, cfg);
        const auto r = runWordcount(sys, corpus, mode);
        EXPECT_TRUE(r.correct);
        return r;
    };
    const auto cpu = run(WordcountMode::CpuOpenMp);
    const auto nosys = run(WordcountMode::GpuNoSyscall);
    const auto genesys = run(WordcountMode::Genesys);
    EXPECT_LT(genesys.elapsed, cpu.elapsed);
    EXPECT_GT(nosys.elapsed, cpu.elapsed);
    // The GENESYS version extracts more I/O throughput (Fig 14).
    EXPECT_GT(genesys.ssdThroughputMBps, cpu.ssdThroughputMBps);
    EXPECT_FALSE(genesys.ioTrace.empty());
    EXPECT_FALSE(genesys.cpuTrace.empty());
}

// -------------------------------------------------------------- memcached

TEST(Memcached, HashTableSetGetAndChains)
{
    McHashTable table(8, 16);
    EXPECT_EQ(table.get("missing"), nullptr);
    table.set("k1", {1, 2, 3});
    table.set("k2", {4});
    ASSERT_NE(table.get("k1"), nullptr);
    EXPECT_EQ(table.get("k1")->value,
              (std::vector<std::uint8_t>{1, 2, 3}));
    // Overwrite.
    table.set("k1", {9});
    EXPECT_EQ(table.get("k1")->value, (std::vector<std::uint8_t>{9}));
    EXPECT_GE(table.chainLength("k1"), 1u);
}

TEST(Memcached, WireProtocolRoundTrip)
{
    const auto wire = mcEncode(McOp::Set, "hello", {10, 20});
    const auto msg = mcDecode(wire);
    ASSERT_TRUE(msg.has_value());
    EXPECT_EQ(msg->op, McOp::Set);
    EXPECT_EQ(msg->key, "hello");
    EXPECT_EQ(msg->value, (std::vector<std::uint8_t>{10, 20}));
    EXPECT_FALSE(mcDecode({1}).has_value());
    EXPECT_FALSE(mcDecode({2, 10, 0, 'a'}).has_value()); // short key
}

TEST(Memcached, CpuServerEndToEnd)
{
    core::System sys;
    MemcachedConfig cfg;
    cfg.buckets = 16;
    cfg.elemsPerBucket = 32;
    cfg.valueBytes = 64;
    cfg.numGets = 64;
    cfg.useGpu = false;
    const auto result = runMemcached(sys, cfg);
    EXPECT_TRUE(result.correct);
    EXPECT_GT(result.hits, 0u);
    EXPECT_GT(result.misses, 0u);
    EXPECT_GT(result.throughputKops, 0.0);
}

TEST(Memcached, GpuServerEndToEnd)
{
    core::System sys;
    MemcachedConfig cfg;
    cfg.buckets = 16;
    cfg.elemsPerBucket = 32;
    cfg.valueBytes = 64;
    cfg.numGets = 64;
    cfg.useGpu = true;
    cfg.gpuServerGroups = 4;
    const auto result = runMemcached(sys, cfg);
    EXPECT_TRUE(result.correct);
    EXPECT_GT(result.hits, 0u);
}

TEST(Memcached, GpuWinsOnDeepBuckets)
{
    // Fig 15: with 1024 elements per bucket the GPU's parallel chain
    // scan beats the CPU's serial one.
    auto run = [](bool gpu) {
        core::System sys;
        MemcachedConfig cfg;
        cfg.buckets = 8;
        cfg.elemsPerBucket = 1024;
        cfg.valueBytes = 256;
        cfg.numGets = 128;
        cfg.useGpu = gpu;
        const auto r = runMemcached(sys, cfg);
        EXPECT_TRUE(r.correct);
        return r;
    };
    const auto cpu = run(false);
    const auto gpu = run(true);
    EXPECT_LT(gpu.meanLatencyUs, cpu.meanLatencyUs);
    EXPECT_GT(gpu.throughputKops, cpu.throughputKops);
}

// ---------------------------------------------------------------- miniAMR

TEST(MiniAmr, CompletesWithMadviseWatermark)
{
    core::SystemConfig sc;
    sc.kernel.physMemBytes = 256ull * 1024 * 1024;
    core::System sys(sc);
    MiniAmrConfig cfg;
    cfg.datasetBytes = 272ull * 1024 * 1024; // just past the limit
    cfg.blockBytes = 4ull * 1024 * 1024;
    cfg.timesteps = 12;
    cfg.rssWatermarkBytes = 200ull * 1024 * 1024;
    const auto result = runMiniAmr(sys, cfg);
    EXPECT_TRUE(result.completed);
    EXPECT_FALSE(result.gpuTimeout);
    EXPECT_GT(result.madviseCalls, 0u);
    EXPECT_EQ(result.rssTimeline.size(), 12u);
}

TEST(MiniAmr, BaselineWithoutMadviseTimesOut)
{
    core::SystemConfig sc;
    sc.kernel.physMemBytes = 256ull * 1024 * 1024;
    core::System sys(sc);
    MiniAmrConfig cfg;
    cfg.datasetBytes = 272ull * 1024 * 1024;
    cfg.blockBytes = 4ull * 1024 * 1024;
    cfg.timesteps = 12;
    cfg.rssWatermarkBytes = 0; // no memory management
    cfg.gpuTimeout = ticks::ms(200);
    const auto result = runMiniAmr(sys, cfg);
    EXPECT_TRUE(result.gpuTimeout);
    EXPECT_FALSE(result.completed);
    EXPECT_LT(result.timestepsRun, cfg.timesteps);
}

TEST(MiniAmr, LowerWatermarkLowersFootprintButRunsLonger)
{
    auto run = [](std::uint64_t watermark) {
        core::SystemConfig sc;
        sc.kernel.physMemBytes = 256ull * 1024 * 1024;
        core::System sys(sc);
        MiniAmrConfig cfg;
        cfg.datasetBytes = 272ull * 1024 * 1024;
        cfg.blockBytes = 4ull * 1024 * 1024;
        cfg.timesteps = 12;
        cfg.rssWatermarkBytes = watermark;
        return runMiniAmr(sys, cfg);
    };
    const auto low = run(160ull * 1024 * 1024);  // "rss-3gb" analogue
    const auto high = run(224ull * 1024 * 1024); // "rss-4gb" analogue
    EXPECT_TRUE(low.completed);
    EXPECT_TRUE(high.completed);
    EXPECT_GE(low.elapsed, high.elapsed);
    EXPECT_GE(low.madviseCalls, high.madviseCalls);
}

// ----------------------------------------------------------- signal-search

TEST(SignalSearch, DigestsCorrectWithSignals)
{
    core::System sys;
    SignalSearchConfig cfg;
    cfg.numBlocks = 32;
    cfg.blockBytes = 8 * 1024;
    cfg.lookupQueriesPerBlock = 10'000;
    cfg.useSignals = true;
    const auto result = runSignalSearch(sys, cfg);
    EXPECT_TRUE(result.correct);
    EXPECT_GT(result.blocksSelected, 0u);
    EXPECT_EQ(result.blocksHashed, result.blocksSelected);
}

TEST(SignalSearch, DigestsCorrectBaseline)
{
    core::System sys;
    SignalSearchConfig cfg;
    cfg.numBlocks = 32;
    cfg.blockBytes = 8 * 1024;
    cfg.lookupQueriesPerBlock = 10'000;
    cfg.useSignals = false;
    const auto result = runSignalSearch(sys, cfg);
    EXPECT_TRUE(result.correct);
}

TEST(SignalSearch, SignalsOverlapPhasesAndWin)
{
    auto run = [](bool signals) {
        core::System sys;
        SignalSearchConfig cfg;
        cfg.numBlocks = 128;
        cfg.blockBytes = 32 * 1024;
        cfg.lookupQueriesPerBlock = 200'000;
        cfg.selectFraction = 0.3;
        cfg.useSignals = signals;
        const auto r = runSignalSearch(sys, cfg);
        EXPECT_TRUE(r.correct);
        return r.elapsed;
    };
    const Tick baseline = run(false);
    const Tick with_signals = run(true);
    EXPECT_LT(with_signals, baseline);
}

// ------------------------------------------------------------- fb-display

TEST(FbDisplay, RasterReachesFramebufferViaIoctlAndMmap)
{
    core::System sys;
    FbDisplayConfig cfg;
    cfg.width = 128;
    cfg.height = 96;
    const auto result = runFbDisplay(sys, cfg);
    EXPECT_TRUE(result.ok);
    EXPECT_EQ(result.width, 128u);
    EXPECT_EQ(result.height, 96u);
    EXPECT_EQ(result.pixelErrors, 0u);
    EXPECT_GE(result.ioctls, 4u); // get/put/fix/pan at least
}

TEST(FbDisplay, PpmRendering)
{
    const auto raster = makeTestRaster(4, 2);
    const auto ppm = framebufferToPpm(raster, 4, 2);
    EXPECT_EQ(ppm.substr(0, 2), "P6");
    EXPECT_NE(ppm.find("4 2"), std::string::npos);
    // Header + 4*2*3 payload bytes.
    EXPECT_EQ(ppm.size(), ppm.find("255\n") + 4 + 4 * 2 * 3);
}

TEST(FbDisplay, TestRasterIsDeterministic)
{
    EXPECT_EQ(makeTestRaster(16, 16), makeTestRaster(16, 16));
    const auto img = makeTestRaster(32, 32);
    EXPECT_EQ(img.size(), 32u * 32 * 4);
    // Center is inside the circle: blue channel saturated.
    const std::size_t center = (16 * 32 + 16) * 4;
    EXPECT_EQ(img[center + 2], 255);
    // Corner is outside.
    EXPECT_EQ(img[2], 64);
}

} // namespace
} // namespace genesys::workloads
