/**
 * @file
 * Unit and property tests for the syscall-area slot state machine
 * (paper Figures 5 and 6).
 */

#include <gtest/gtest.h>

#include "core/params.hh"
#include "core/slot.hh"
#include "gpu/gpu.hh"
#include "support/logging.hh"

namespace genesys::core
{
namespace
{

osk::SyscallArgs
someArgs()
{
    return osk::makeArgs(1, 2, 3);
}

TEST(SyscallSlot, BlockingLifeCycle)
{
    SyscallSlot slot;
    EXPECT_EQ(slot.state(), SlotState::Free);
    ASSERT_TRUE(slot.claim());
    EXPECT_EQ(slot.state(), SlotState::Populating);
    slot.publish(osk::sysno::pwrite64, someArgs(), /*blocking=*/true,
                 WaitMode::Polling, 7);
    EXPECT_EQ(slot.state(), SlotState::Ready);
    EXPECT_EQ(slot.sysno(), osk::sysno::pwrite64);
    EXPECT_EQ(slot.hwWaveSlot(), 7u);
    ASSERT_TRUE(slot.beginProcessing());
    EXPECT_EQ(slot.state(), SlotState::Processing);
    slot.complete(42);
    EXPECT_EQ(slot.state(), SlotState::Finished);
    EXPECT_EQ(slot.consume(), 42);
    EXPECT_EQ(slot.state(), SlotState::Free);
}

TEST(SyscallSlot, NonBlockingFreesOnCompletion)
{
    SyscallSlot slot;
    ASSERT_TRUE(slot.claim());
    slot.publish(osk::sysno::write, someArgs(), /*blocking=*/false,
                 WaitMode::Polling, 0);
    ASSERT_TRUE(slot.beginProcessing());
    slot.complete(10);
    EXPECT_EQ(slot.state(), SlotState::Free);
    // Slot is immediately reusable.
    EXPECT_TRUE(slot.claim());
}

TEST(SyscallSlot, ClaimFailsUnlessFree)
{
    SyscallSlot slot;
    ASSERT_TRUE(slot.claim());
    EXPECT_FALSE(slot.claim()); // populating
    slot.publish(0, someArgs(), true, WaitMode::Polling, 0);
    EXPECT_FALSE(slot.claim()); // ready
    slot.beginProcessing();
    EXPECT_FALSE(slot.claim()); // processing
    slot.complete(0);
    EXPECT_FALSE(slot.claim()); // finished
    slot.consume();
    EXPECT_TRUE(slot.claim());
}

TEST(SyscallSlot, BeginProcessingOnlyFromReady)
{
    SyscallSlot slot;
    EXPECT_FALSE(slot.beginProcessing()); // free
    slot.claim();
    EXPECT_FALSE(slot.beginProcessing()); // populating
    slot.publish(0, someArgs(), true, WaitMode::Polling, 0);
    EXPECT_TRUE(slot.beginProcessing());
    EXPECT_FALSE(slot.beginProcessing()); // already processing
}

TEST(SyscallSlot, InvalidTransitionsPanic)
{
    SyscallSlot slot;
    EXPECT_THROW(slot.publish(0, someArgs(), true, WaitMode::Polling, 0),
                 PanicError);
    EXPECT_THROW(slot.complete(0), PanicError);
    EXPECT_THROW(slot.consume(), PanicError);
}

TEST(SyscallSlot, StateNames)
{
    EXPECT_STREQ(slotStateName(SlotState::Free), "free");
    EXPECT_STREQ(slotStateName(SlotState::Populating), "populating");
    EXPECT_STREQ(slotStateName(SlotState::Ready), "ready");
    EXPECT_STREQ(slotStateName(SlotState::Processing), "processing");
    EXPECT_STREQ(slotStateName(SlotState::Finished), "finished");
}

/**
 * Property test: from any reachable state, exactly the legal edges of
 * Figure 6 succeed, for both blocking variants and wait modes.
 */
class SlotFsmProperty
    : public ::testing::TestWithParam<std::tuple<bool, WaitMode>>
{};

TEST_P(SlotFsmProperty, RandomWalkNeverViolatesFsm)
{
    const auto [blocking, wait_mode] = GetParam();
    Random rng(static_cast<std::uint64_t>(blocking) * 7 +
               static_cast<std::uint64_t>(wait_mode) + 1);
    SyscallSlot slot;
    for (int step = 0; step < 5000; ++step) {
        switch (slot.state()) {
          case SlotState::Free:
            EXPECT_FALSE(slot.beginProcessing());
            if (rng.chance(0.8)) {
                EXPECT_TRUE(slot.claim());
            }
            break;
          case SlotState::Populating:
            EXPECT_FALSE(slot.claim());
            EXPECT_FALSE(slot.beginProcessing());
            slot.publish(static_cast<int>(rng.below(300)), someArgs(),
                         blocking, wait_mode,
                         static_cast<std::uint32_t>(rng.below(320)));
            break;
          case SlotState::Ready:
            EXPECT_FALSE(slot.claim());
            EXPECT_TRUE(slot.beginProcessing());
            break;
          case SlotState::Processing:
            EXPECT_FALSE(slot.claim());
            EXPECT_FALSE(slot.beginProcessing());
            slot.complete(static_cast<std::int64_t>(rng.below(1000)));
            if (blocking) {
                EXPECT_EQ(slot.state(), SlotState::Finished);
            } else {
                EXPECT_EQ(slot.state(), SlotState::Free);
            }
            break;
          case SlotState::Finished:
            EXPECT_FALSE(slot.claim());
            EXPECT_FALSE(slot.beginProcessing());
            slot.consume();
            EXPECT_EQ(slot.state(), SlotState::Free);
            break;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    BlockingAndWaitModes, SlotFsmProperty,
    ::testing::Combine(::testing::Bool(),
                       ::testing::Values(WaitMode::Polling,
                                         WaitMode::HaltResume)));

// ------------------------------------------------------------ SyscallArea

TEST(SyscallArea, GeometryMatchesPaper)
{
    gpu::GpuConfig gpu_cfg; // 8 CUs x 40 waves x 64 lanes
    GenesysParams params;
    SyscallArea area(gpu_cfg, params);
    EXPECT_EQ(area.slotCount(), 8u * 40 * 64);
    // 20480 slots x 64 B = 1.25 MiB ("totaling 1.25 MBs").
    EXPECT_EQ(area.areaBytes(), 1'310'720u);
    EXPECT_EQ(area.wavefrontSize(), 64u);
}

TEST(SyscallArea, SlotAddressesAreDistinctCacheLines)
{
    gpu::GpuConfig gpu_cfg;
    GenesysParams params;
    SyscallArea area(gpu_cfg, params);
    const auto a0 = area.slotAddr(0);
    const auto a1 = area.slotAddr(1);
    EXPECT_EQ(a1 - a0, params.slotBytes);
    EXPECT_EQ(a0 % 64, 0u);
    // One slot per line: no false sharing (Section VI).
    EXPECT_EQ(a0 / 64 + 1, a1 / 64);
}

TEST(SyscallArea, WaveSlotMapping)
{
    gpu::GpuConfig gpu_cfg;
    GenesysParams params;
    SyscallArea area(gpu_cfg, params);
    EXPECT_EQ(area.firstItemSlotOfWave(0), 0u);
    EXPECT_EQ(area.firstItemSlotOfWave(5), 5u * 64);
    // Distinct waves own disjoint slot ranges.
    EXPECT_GE(area.firstItemSlotOfWave(1),
              area.firstItemSlotOfWave(0) + 64);
}

TEST(SyscallArea, OutOfRangeSlotPanics)
{
    gpu::GpuConfig gpu_cfg;
    GenesysParams params;
    SyscallArea area(gpu_cfg, params);
    EXPECT_THROW(area.slot(static_cast<std::uint32_t>(area.slotCount())),
                 PanicError);
}

// --------------------------------------------------- shard geometry

TEST(SyscallAreaShards, DefaultSingleShardOwnsEverything)
{
    gpu::GpuConfig gpu_cfg; // 8 CUs x 40 waves x 64 lanes
    GenesysParams params;
    SyscallArea area(gpu_cfg, params);
    EXPECT_EQ(area.shardCount(), 1u);
    EXPECT_EQ(area.cusPerShard(), 8u);
    EXPECT_EQ(area.shardFirstSlot(0), 0u);
    EXPECT_EQ(area.shardSlotCount(), area.slotCount());
    EXPECT_EQ(area.shardOfSlot(
                  static_cast<std::uint32_t>(area.slotCount()) - 1),
              0u);
}

TEST(SyscallAreaShards, GeometryPartitionsSlotsByCuBlocks)
{
    gpu::GpuConfig gpu_cfg; // 8 CUs
    GenesysParams params;
    params.areaShards = 4;
    SyscallArea area(gpu_cfg, params);
    EXPECT_EQ(area.shardCount(), 4u);
    EXPECT_EQ(area.cusPerShard(), 2u);
    EXPECT_EQ(area.shardSlotCount() * 4, area.slotCount());
    for (std::uint32_t cu = 0; cu < 8; ++cu)
        EXPECT_EQ(area.shardOfCu(cu), cu / 2) << "cu " << cu;
    // Wave and item-slot mappings agree with the CU mapping.
    const std::uint32_t waves = 40;
    EXPECT_EQ(area.shardOfWave(0), 0u);
    EXPECT_EQ(area.shardOfWave(2 * waves), 1u);
    EXPECT_EQ(area.shardOfWave(7 * waves + waves - 1), 3u);
    for (std::uint32_t s = 0; s < 4; ++s) {
        const auto first = area.shardFirstSlot(s);
        EXPECT_EQ(area.shardOfSlot(first), s);
        EXPECT_EQ(area.shardOfSlot(first + area.shardSlotCount() - 1),
                  s);
    }
    // Contiguous, non-overlapping ranges.
    EXPECT_EQ(area.shardFirstSlot(1),
              area.shardFirstSlot(0) + area.shardSlotCount());
    EXPECT_THROW(area.shardFirstSlot(4), PanicError);
}

TEST(SyscallAreaShards, DoorbellLinesLiveBeyondSlotsAndNeverShare)
{
    gpu::GpuConfig gpu_cfg;
    GenesysParams params;
    params.areaShards = 4;
    SyscallArea area(gpu_cfg, params);
    const auto last_slot_line =
        area.slotAddr(static_cast<std::uint32_t>(area.slotCount()) - 1) /
        64;
    for (std::uint32_t s = 0; s < 4; ++s) {
        const auto line = area.doorbellAddr(s) / 64;
        EXPECT_GT(line, last_slot_line) << "shard " << s;
        for (std::uint32_t t = s + 1; t < 4; ++t)
            EXPECT_NE(line, area.doorbellAddr(t) / 64)
                << s << " vs " << t;
    }
}

TEST(SyscallAreaShards, NonDividingShardCountPanics)
{
    gpu::GpuConfig gpu_cfg; // 8 CUs
    GenesysParams params;
    params.areaShards = 3; // does not divide 8
    EXPECT_THROW(SyscallArea(gpu_cfg, params), PanicError);
    params.areaShards = 16; // exceeds the CU count
    EXPECT_THROW(SyscallArea(gpu_cfg, params), PanicError);
}

TEST(SyscallAreaShards, PerShardQuiescenceTracksOccupancy)
{
    gpu::GpuConfig gpu_cfg;
    gpu_cfg.numCus = 4;
    gpu_cfg.maxWavesPerCu = 2;
    GenesysParams params;
    params.areaShards = 2;
    SyscallArea area(gpu_cfg, params);
    EXPECT_TRUE(area.quiescent());
    EXPECT_TRUE(area.quiescent(0));
    EXPECT_TRUE(area.quiescent(1));

    // Occupy one slot in shard 1 only.
    const auto s1 = area.shardFirstSlot(1);
    ASSERT_TRUE(area.slot(s1).claim());
    EXPECT_TRUE(area.quiescent(0));
    EXPECT_FALSE(area.quiescent(1));
    EXPECT_FALSE(area.quiescent());

    area.slot(s1).publish(osk::sysno::write, someArgs(), true,
                          WaitMode::Polling, 0);
    area.slot(s1).beginProcessing();
    area.slot(s1).complete(0);
    EXPECT_FALSE(area.quiescent(1)); // finished, not yet consumed
    area.slot(s1).consume();
    EXPECT_TRUE(area.quiescent(1));
    EXPECT_TRUE(area.quiescent());
}

TEST(SyscallAreaShards, PerShardCountersAreIndependent)
{
    gpu::GpuConfig gpu_cfg;
    gpu_cfg.numCus = 4;
    GenesysParams params;
    params.areaShards = 2;
    SyscallArea area(gpu_cfg, params);
    area.noteIssued(0);
    area.noteIssued(0);
    area.noteIssued(1);
    area.noteProcessed(1);
    EXPECT_EQ(area.issuedOnShard(0), 2u);
    EXPECT_EQ(area.issuedOnShard(1), 1u);
    EXPECT_EQ(area.processedOnShard(0), 0u);
    EXPECT_EQ(area.processedOnShard(1), 1u);
}

} // namespace
} // namespace genesys::core
