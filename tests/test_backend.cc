/**
 * @file
 * Service-path architecture tests (DESIGN.md §10): ServiceBackend
 * selection, the sharded syscall area end to end, shard->worker
 * steering, the per-worker workqueue (bounds, steal, runtime worker
 * count), the per-shard polling daemons, and the new sysfs knobs.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "core/system.hh"
#include "osk/workqueue.hh"
#include "support/logging.hh"

namespace genesys::core
{
namespace
{

SystemConfig
shardedConfig(std::uint32_t shards, std::uint32_t workers = 32)
{
    SystemConfig cfg;
    cfg.gpu.numCus = 4;
    cfg.gpu.maxWavesPerCu = 4;
    cfg.gpu.maxWorkGroupsPerCu = 4;
    cfg.gpu.kernelLaunchLatency = ticks::us(5);
    cfg.genesys.areaShards = shards;
    cfg.kernel.workqueueWorkers = workers;
    return cfg;
}

Invocation
wgInv(Blocking b = Blocking::Blocking)
{
    Invocation i;
    i.granularity = Granularity::WorkGroup;
    i.ordering = Ordering::Relaxed;
    i.blocking = b;
    return i;
}

/** One open + pwrite per work-group, enough groups to cover every CU. */
void
runSpanningKernel(System &sys, std::uint32_t groups)
{
    if (sys.kernel().vfs().resolve("/spread") == nullptr)
        sys.kernel().vfs().createFile("/spread");
    gpu::KernelLaunch k;
    k.workItems = groups * 64;
    k.wgSize = 64;
    k.program = [&sys](gpu::WavefrontCtx &ctx) -> sim::Task<> {
        const auto fd =
            co_await sys.gpuSys().open(ctx, wgInv(), "/spread", 1);
        co_await sys.gpuSys().pwrite(ctx, wgInv(),
                                     static_cast<int>(fd), "x", 1,
                                     ctx.workgroupId());
    };
    sys.launchGpuAndDrain(std::move(k));
    sys.run();
}

// ------------------------------------------------- backend selection

TEST(Backend, InterruptBackendIsDefaultAndNamed)
{
    System sys(shardedConfig(1));
    EXPECT_FALSE(sys.host().daemonMode());
    EXPECT_STREQ(sys.host().activeBackend().name(), "interrupt");
}

TEST(Backend, DaemonSelectionSwitchesActiveBackend)
{
    System sys(shardedConfig(1));
    sys.host().startPollingDaemon(ticks::us(20));
    EXPECT_TRUE(sys.host().daemonMode());
    EXPECT_STREQ(sys.host().activeBackend().name(), "polling-daemon");
    sys.host().stopDaemon();
    EXPECT_FALSE(sys.host().daemonMode());
    EXPECT_STREQ(sys.host().activeBackend().name(), "interrupt");
    sys.run();
    EXPECT_EQ(sys.host().daemonScansLive(), 0u);
}

// ------------------------------------------------- sharded interrupts

TEST(Backend, MultiShardServicesAcrossAllShards)
{
    System sys(shardedConfig(4));
    runSpanningKernel(sys, 16);
    EXPECT_EQ(sys.syscallArea().shardCount(), 4u);
    std::uint64_t int_sum = 0;
    std::uint64_t proc_sum = 0;
    for (std::uint32_t s = 0; s < 4; ++s) {
        // 16 work-groups over 4 CUs: every shard saw traffic.
        EXPECT_GT(sys.host().interruptsOnShard(s), 0u) << "shard " << s;
        EXPECT_GT(sys.syscallArea().processedOnShard(s), 0u)
            << "shard " << s;
        EXPECT_GT(sys.syscallArea().issuedOnShard(s), 0u)
            << "shard " << s;
        EXPECT_TRUE(sys.syscallArea().quiescent(s)) << "shard " << s;
        int_sum += sys.host().interruptsOnShard(s);
        proc_sum += sys.syscallArea().processedOnShard(s);
    }
    EXPECT_EQ(int_sum, sys.host().interrupts());
    EXPECT_EQ(proc_sum, sys.host().processedSyscalls());
    EXPECT_EQ(sys.host().inFlight(), 0u);
}

TEST(Backend, ShardAffinitySteeringSpreadsWorkers)
{
    SystemConfig cfg = shardedConfig(4, 4);
    cfg.genesys.steering = SteeringPolicy::ShardAffinity;
    System sys(cfg);
    runSpanningKernel(sys, 16);
    // Every shard steers to its own worker; all four executed batches.
    std::uint32_t busy = 0;
    for (std::uint32_t w = 0; w < 4; ++w)
        busy += sys.kernel().workqueue().executedBy(w) > 0 ? 1 : 0;
    EXPECT_EQ(busy, 4u);
}

TEST(Backend, RoundRobinSteeringAlsoCompletes)
{
    SystemConfig cfg = shardedConfig(4, 4);
    cfg.genesys.steering = SteeringPolicy::RoundRobin;
    System sys(cfg);
    runSpanningKernel(sys, 16);
    EXPECT_TRUE(sys.syscallArea().quiescent());
    EXPECT_GT(sys.kernel().workqueue().executedTasks(), 0u);
}

TEST(Backend, GsanCleanOnMultiShardRun)
{
    System sys(shardedConfig(4));
    sys.gsan().setEnabled(true);
    runSpanningKernel(sys, 16);
    EXPECT_EQ(sys.gsan().reportCount(), 0u);
}

// ------------------------------------------------- per-shard daemons

TEST(Backend, PerShardDaemonsServiceTheirShards)
{
    System sys(shardedConfig(2));
    sys.gsan().setEnabled(true);
    sys.host().startPollingDaemon(ticks::us(20));
    sys.kernel().vfs().createFile("/pd");
    gpu::KernelLaunch k;
    k.workItems = 16 * 64;
    k.wgSize = 64;
    k.program = [&sys](gpu::WavefrontCtx &ctx) -> sim::Task<> {
        const auto fd =
            co_await sys.gpuSys().open(ctx, wgInv(), "/pd", 1);
        co_await sys.gpuSys().pwrite(ctx, wgInv(),
                                     static_cast<int>(fd), "d", 1,
                                     ctx.workgroupId());
        if (ctx.workgroupId() == 0)
            sys.host().stopDaemon();
    };
    sys.launchGpu(std::move(k));
    sys.run();
    for (std::uint32_t s = 0; s < 2; ++s) {
        EXPECT_GT(sys.syscallArea().processedOnShard(s), 0u)
            << "shard " << s;
        EXPECT_TRUE(sys.syscallArea().quiescent(s));
    }
    // Each shard's daemon registered its own gsan thread: re-asking
    // for the per-shard names must not create new threads.
    auto &g = sys.gsan();
    const auto before = g.threadCount();
    (void)g.namedThread("cpu-daemon-0");
    (void)g.namedThread("cpu-daemon-1");
    EXPECT_EQ(g.threadCount(), before);
    EXPECT_EQ(g.reportCount(), 0u);
    EXPECT_EQ(sys.host().daemonScansLive(), 0u);
}

TEST(Backend, StopDaemonDrainJoinsScanLoops)
{
    System sys(shardedConfig(2));
    sys.host().startPollingDaemon(ticks::us(50));
    sys.kernel().vfs().createFile("/drain");
    gpu::KernelLaunch k;
    k.workItems = 64;
    k.wgSize = 64;
    k.program = [&sys](gpu::WavefrontCtx &ctx) -> sim::Task<> {
        const auto fd =
            co_await sys.gpuSys().open(ctx, wgInv(), "/drain", 1);
        co_await sys.gpuSys().pwrite(ctx, wgInv(),
                                     static_cast<int>(fd), "z", 1, 0);
        sys.host().stopDaemon();
    };
    std::uint32_t live_after_drain = 99;
    sys.sim().spawn([](System &s, gpu::KernelLaunch launch,
                       std::uint32_t &live) -> sim::Task<> {
        co_await s.gpu().launch(std::move(launch));
        co_await s.host().drain();
        // drain() joins the final sweeps: no scan coroutine survives.
        live = s.host().daemonScansLive();
    }(sys, std::move(k), live_after_drain));
    sys.run();
    EXPECT_EQ(live_after_drain, 0u);
    EXPECT_TRUE(sys.syscallArea().quiescent());
    EXPECT_EQ(sys.host().daemonScansLive(), 0u);
}

TEST(Backend, DaemonIgnoresDoorbellsWhileRunning)
{
    System sys(shardedConfig(2));
    sys.host().startPollingDaemon(ticks::us(20));
    sys.kernel().vfs().createFile("/quiet");
    gpu::KernelLaunch k;
    k.workItems = 4 * 64;
    k.wgSize = 64;
    k.program = [&sys](gpu::WavefrontCtx &ctx) -> sim::Task<> {
        const auto fd =
            co_await sys.gpuSys().open(ctx, wgInv(), "/quiet", 1);
        co_await sys.gpuSys().pwrite(ctx, wgInv(),
                                     static_cast<int>(fd), "q", 1,
                                     ctx.workgroupId());
    };
    // The daemon's scan timer keeps the sim alive, so stop it from a
    // coroutine once the kernel (and thus every syscall) completed —
    // after snapshotting the interrupt counter.
    std::uint64_t interrupts_at_finish = 99;
    sys.sim().spawn([](System &s, gpu::KernelLaunch launch,
                       std::uint64_t &snap) -> sim::Task<> {
        co_await s.gpu().launch(std::move(launch));
        snap = s.host().interrupts();
        s.host().stopDaemon();
    }(sys, std::move(k), interrupts_at_finish));
    sys.run();
    // Doorbells rang but the daemon backend swallowed them all.
    EXPECT_EQ(interrupts_at_finish, 0u);
    EXPECT_GT(sys.host().processedSyscalls(), 0u);
    EXPECT_EQ(sys.host().daemonScansLive(), 0u);
}

// ------------------------------------------------- workqueue dispatch

TEST(WorkQueuePerWorker, EnqueueOnTargetsWorkerAndIdleStealCovers)
{
    sim::Sim s;
    osk::CpuCluster cpus(s, 4);
    osk::OskParams params;
    osk::WorkQueue wq(s, cpus, params, 4);
    std::uint64_t ran = 0;
    for (int i = 0; i < 8; ++i) {
        wq.enqueueOn(2, [&ran](std::uint32_t) -> sim::Task<> {
            ++ran;
            co_return;
        });
    }
    EXPECT_EQ(wq.queuedOn(2), 8u);
    s.run();
    EXPECT_EQ(ran, 8u);
    EXPECT_EQ(wq.executedTasks(), 8u);
    EXPECT_EQ(wq.queuedNow(), 0u);
    // Worker 0 is woken first (FIFO wait queue) and has to steal from
    // worker 2's backlog.
    EXPECT_GE(wq.steals(), 1u);
}

TEST(WorkQueuePerWorker, BoundedQueueSpillsToLeastLoaded)
{
    sim::Sim s;
    osk::CpuCluster cpus(s, 4);
    osk::OskParams params;
    osk::WorkQueue wq(s, cpus, params, 2);
    wq.setQueueBound(2);
    // Target worker 0 five times without running the sim. The bound
    // redirects overflow to the least-loaded queue until both queues
    // are full; a full-everywhere enqueue stays on its target.
    for (int i = 0; i < 5; ++i)
        wq.enqueueOn(0, [](std::uint32_t) -> sim::Task<> { co_return; });
    EXPECT_EQ(wq.spills(), 2u);
    EXPECT_EQ(wq.queuedOn(1), 2u);
    EXPECT_EQ(wq.queuedOn(0), 3u);
    s.run();
    EXPECT_EQ(wq.executedTasks(), 5u);
    EXPECT_EQ(wq.queuedNow(), 0u);
}

TEST(WorkQueuePerWorker, SetMaxWorkersTakesEffectOnNextDispatch)
{
    sim::Sim s;
    osk::CpuCluster cpus(s, 4);
    osk::OskParams params;
    osk::WorkQueue wq(s, cpus, params, 4);
    auto burst = [&wq](int n) {
        for (int i = 0; i < n; ++i) {
            wq.enqueueOn(
                static_cast<std::uint32_t>(i),
                [](std::uint32_t) -> sim::Task<> { co_return; });
        }
    };
    burst(8);
    s.run();
    const auto w0_before = wq.executedBy(0);
    wq.setMaxWorkers(1);
    EXPECT_EQ(wq.maxWorkers(), 1u);
    burst(8);
    s.run();
    // Every post-shrink dispatch landed on worker 0.
    EXPECT_EQ(wq.executedBy(0), w0_before + 8);
    // Growing again works too (retired loops respawn).
    wq.setMaxWorkers(4);
    burst(8);
    s.run();
    EXPECT_EQ(wq.executedTasks(), 24u);
    EXPECT_EQ(wq.queuedNow(), 0u);
}

TEST(WorkQueuePerWorker, MaxWorkersClampAndCap)
{
    sim::Sim s;
    osk::CpuCluster cpus(s, 4);
    osk::OskParams params;
    osk::WorkQueue wq(s, cpus, params, 4);
    EXPECT_EQ(wq.workerCap(), 4u);
    wq.setMaxWorkers(0);
    EXPECT_EQ(wq.maxWorkers(), 1u);
    wq.setMaxWorkers(99);
    EXPECT_EQ(wq.maxWorkers(), 4u);
}

// ------------------------------------------------- sysfs knob surface

class ShardSysfsTest : public ::testing::Test
{
  protected:
    ShardSysfsTest() : sys_(shardedConfig(2, 4)) {}

    std::int64_t
    sys(int num, const osk::SyscallArgs &args)
    {
        std::int64_t ret = -1;
        sys_.sim().spawn([](System &s, int n, osk::SyscallArgs a,
                            std::int64_t &out) -> sim::Task<> {
            out = co_await s.kernel().doSyscall(s.process(), n, a);
        }(sys_, num, args, ret));
        sys_.run();
        return ret;
    }

    std::string
    readFile(const std::string &path)
    {
        const auto fd = sys(osk::sysno::open,
                            osk::makeArgs(path.c_str(), osk::O_RDONLY));
        if (fd < 0)
            return "<open failed>";
        char buf[64] = {};
        sys(osk::sysno::read, osk::makeArgs(fd, buf, 63));
        sys(osk::sysno::close, osk::makeArgs(fd));
        return buf;
    }

    System sys_;
};

TEST_F(ShardSysfsTest, ShardCountAndPerShardCountersReadable)
{
    EXPECT_EQ(readFile("/sys/genesys/shards/count"), "2\n");
    runSpanningKernel(sys_, 8);
    for (std::uint32_t s = 0; s < 2; ++s) {
        const auto base =
            logging::format("/sys/genesys/shards/%u/", s);
        EXPECT_EQ(
            readFile(base + "issued"),
            logging::format("%llu\n",
                            static_cast<unsigned long long>(
                                sys_.syscallArea().issuedOnShard(s))));
        EXPECT_EQ(readFile(base + "processed"),
                  logging::format(
                      "%llu\n",
                      static_cast<unsigned long long>(
                          sys_.syscallArea().processedOnShard(s))));
        EXPECT_EQ(readFile(base + "interrupts"),
                  logging::format(
                      "%llu\n", static_cast<unsigned long long>(
                                    sys_.host().interruptsOnShard(s))));
    }
}

TEST_F(ShardSysfsTest, MaxWorkersKnobTakesEffectMidRun)
{
    // Phase 1: the default worker pool services a kernel.
    runSpanningKernel(sys_, 8);
    const auto fd =
        sys(osk::sysno::open,
            osk::makeArgs("/sys/genesys/workqueue/max_workers",
                          osk::O_RDWR));
    ASSERT_GE(fd, 0);
    EXPECT_EQ(readFile("/sys/genesys/workqueue/max_workers"), "4\n");
    ASSERT_EQ(sys(osk::sysno::write, osk::makeArgs(fd, "1\n", 2)), 2);
    EXPECT_EQ(sys_.kernel().workqueue().maxWorkers(), 1u);
    // Out-of-range writes are rejected (0 bytes written).
    EXPECT_EQ(sys(osk::sysno::write, osk::makeArgs(fd, "0\n", 2)), 0);
    EXPECT_EQ(sys(osk::sysno::write, osk::makeArgs(fd, "64\n", 3)), 0);
    EXPECT_EQ(sys_.kernel().workqueue().maxWorkers(), 1u);

    // Phase 2: every dispatch after the write lands on worker 0.
    const auto others_before =
        sys_.kernel().workqueue().executedTasks() -
        sys_.kernel().workqueue().executedBy(0);
    runSpanningKernel(sys_, 8);
    const auto others_after =
        sys_.kernel().workqueue().executedTasks() -
        sys_.kernel().workqueue().executedBy(0);
    EXPECT_EQ(others_after, others_before);
    EXPECT_TRUE(sys_.syscallArea().quiescent());
}

TEST_F(ShardSysfsTest, QueueBoundKnobRoundTrips)
{
    const auto fd =
        sys(osk::sysno::open,
            osk::makeArgs("/sys/genesys/workqueue/queue_bound",
                          osk::O_RDWR));
    ASSERT_GE(fd, 0);
    ASSERT_EQ(sys(osk::sysno::write, osk::makeArgs(fd, "16\n", 3)), 3);
    EXPECT_EQ(sys_.kernel().workqueue().queueBound(), 16u);
    EXPECT_EQ(sys(osk::sysno::write, osk::makeArgs(fd, "0\n", 2)), 0);
    EXPECT_EQ(sys_.kernel().workqueue().queueBound(), 16u);
}

} // namespace
} // namespace genesys::core
