/**
 * @file
 * Timing-parity regression tests for the service path.
 *
 * Each scenario drives the full GPU->slot->service->wake pipeline in a
 * shape borrowed from the fig07-fig16 benches (granularity sweep,
 * ordering/blocking/wait-mode matrix, coalescing, residency pressure,
 * polling daemon, grep) and asserts the *exact* simulated completion
 * tick against a golden value captured from the pre-refactor host.
 *
 * The golden numbers pin down the contract of the backend refactor:
 * with the default configuration (areaShards=1, default workers,
 * shard-affinity steering) the layered ServiceBackend/SlotScanner/
 * sharded-WorkQueue architecture must be bit-identical in modeled time
 * to the monolithic GenesysHost it replaced. Any intentional timing
 * change must update these constants in the same commit and say why.
 *
 * Set GENESYS_PARITY_CAPTURE=1 to print actual values instead of
 * asserting (used to regenerate the table).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>

#include "core/system.hh"
#include "workloads/grep.hh"

namespace genesys::core
{
namespace
{

bool
captureMode()
{
    const char *env = std::getenv("GENESYS_PARITY_CAPTURE");
    return env != nullptr && env[0] != '\0' && env[0] != '0';
}

/** EXPECT the golden tick, or print the actual in capture mode. */
void
checkTick(const char *name, Tick actual, Tick golden)
{
    if (captureMode()) {
        std::printf("PARITY %s = %llu\n", name,
                    static_cast<unsigned long long>(actual));
        return;
    }
    EXPECT_EQ(actual, golden) << name;
}

SystemConfig
smallConfig()
{
    SystemConfig cfg;
    cfg.gpu.numCus = 2;
    cfg.gpu.maxWavesPerCu = 8;
    cfg.gpu.maxWorkGroupsPerCu = 4;
    cfg.gpu.kernelLaunchLatency = ticks::us(5);
    return cfg;
}

Invocation
inv(Granularity g, Ordering o, Blocking b,
    WaitMode w = WaitMode::Polling)
{
    Invocation i;
    i.granularity = g;
    i.ordering = o;
    i.blocking = b;
    i.waitMode = w;
    return i;
}

/** One work-group: open + pwrite + close, returns the final tick. */
Tick
runBasicWorkGroup(const SystemConfig &cfg, Invocation i)
{
    System sys(cfg);
    sys.kernel().vfs().createFile("/p");
    static const char payload[] = "parity-check-abcdef";
    gpu::KernelLaunch k;
    k.workItems = 256; // one group, 4 waves: barriers span waves
    k.wgSize = 256;
    k.program = [&sys, i](gpu::WavefrontCtx &ctx) -> sim::Task<> {
        auto open_inv = i;
        open_inv.blocking = Blocking::Blocking; // fd consumed below
        const auto fd =
            co_await sys.gpuSys().open(ctx, open_inv, "/p", 1);
        co_await sys.gpuSys().pwrite(ctx, i, static_cast<int>(fd),
                                     payload, 16, 0);
    };
    sys.launchGpuAndDrain(std::move(k));
    return sys.run();
}

TEST(TimingParity, OrderingBlockingWaitMatrix)
{
    // The fig08 axes: ordering x blocking x wait mode.
    const SystemConfig cfg = smallConfig();
    struct Case
    {
        const char *name;
        Ordering o;
        Blocking b;
        WaitMode w;
        Tick golden;
    };
    const Case cases[] = {
        {"strong_blocking_poll", Ordering::Strong, Blocking::Blocking,
         WaitMode::Polling, 54515},
        {"strong_blocking_halt", Ordering::Strong, Blocking::Blocking,
         WaitMode::HaltResume, 63897},
        {"strong_nonblocking_poll", Ordering::Strong,
         Blocking::NonBlocking, WaitMode::Polling, 54307},
        {"relaxed_blocking_poll", Ordering::Relaxed, Blocking::Blocking,
         WaitMode::Polling, 54515},
        {"relaxed_blocking_halt", Ordering::Relaxed, Blocking::Blocking,
         WaitMode::HaltResume, 63897},
        {"relaxed_nonblocking_poll", Ordering::Relaxed,
         Blocking::NonBlocking, WaitMode::Polling, 54307},
    };
    for (const Case &c : cases) {
        checkTick(c.name,
                  runBasicWorkGroup(
                      cfg, inv(Granularity::WorkGroup, c.o, c.b, c.w)),
                  c.golden);
    }
}

TEST(TimingParity, KernelGranularityManyGroups)
{
    const SystemConfig cfg = smallConfig();
    System sys(cfg);
    sys.kernel().vfs().createFile("/k");
    gpu::KernelLaunch k;
    k.workItems = 8 * 256;
    k.wgSize = 256;
    k.program = [&sys](gpu::WavefrontCtx &ctx) -> sim::Task<> {
        auto i = inv(Granularity::Kernel, Ordering::Relaxed,
                     Blocking::Blocking);
        co_await sys.gpuSys().pwrite(ctx, i, -1, nullptr, 0, 0);
    };
    sys.launchGpuAndDrain(std::move(k));
    checkTick("kernel_granularity", sys.run(), 30230);
}

TEST(TimingParity, WorkItemPerLanePwrites)
{
    const SystemConfig cfg = smallConfig();
    System sys(cfg);
    sys.kernel().vfs().createFile("/wi");
    static char lane_bytes[64];
    for (int i = 0; i < 64; ++i)
        lane_bytes[i] = static_cast<char>('A' + (i % 26));
    gpu::KernelLaunch k;
    k.workItems = 64;
    k.wgSize = 64;
    k.program = [&sys](gpu::WavefrontCtx &ctx) -> sim::Task<> {
        auto i = inv(Granularity::WorkGroup, Ordering::Strong,
                     Blocking::Blocking);
        const auto fd = co_await sys.gpuSys().open(ctx, i, "/wi", 1);
        Invocation wi = inv(Granularity::WorkItem, Ordering::Strong,
                            Blocking::Blocking);
        co_await sys.gpuSys().invokeWorkItems(
            ctx, wi, osk::sysno::pwrite64, [fd](std::uint32_t lane) {
                return std::optional(osk::makeArgs(
                    static_cast<int>(fd), &lane_bytes[lane], 1, lane));
            });
    };
    sys.launchGpuAndDrain(std::move(k));
    checkTick("workitem_lane_pwrites", sys.run(), 264398);
}

TEST(TimingParity, CoalescedInterruptBatches)
{
    SystemConfig cfg = smallConfig();
    cfg.genesys.coalesceWindow = ticks::us(50);
    cfg.genesys.coalesceMaxBatch = 8;
    System sys(cfg);
    sys.kernel().vfs().createFile("/co")->setSynthetic(1 << 20);
    gpu::KernelLaunch k;
    k.workItems = 16 * 64;
    k.wgSize = 64;
    k.program = [&sys](gpu::WavefrontCtx &ctx) -> sim::Task<> {
        auto i = inv(Granularity::WorkGroup, Ordering::Relaxed,
                     Blocking::Blocking);
        const auto fd = co_await sys.gpuSys().open(ctx, i, "/co", 0);
        co_await sys.gpuSys().pread(ctx, i, static_cast<int>(fd),
                                    nullptr, 4096,
                                    ctx.workgroupId() * 4096);
    };
    sys.launchGpuAndDrain(std::move(k));
    checkTick("coalesced_batches", sys.run(), 161476);
}

TEST(TimingParity, ResidencyPressureManyGroups)
{
    // More work-groups than the small device can hold resident.
    const SystemConfig cfg = smallConfig();
    System sys(cfg);
    sys.kernel().vfs().createFile("/rp");
    gpu::KernelLaunch k;
    k.workItems = 32 * 64;
    k.wgSize = 64;
    static char bytes[32];
    k.program = [&sys](gpu::WavefrontCtx &ctx) -> sim::Task<> {
        bytes[ctx.workgroupId()] =
            static_cast<char>('a' + ctx.workgroupId() % 26);
        auto i = inv(Granularity::WorkGroup, Ordering::Relaxed,
                     Blocking::Blocking);
        const auto fd = co_await sys.gpuSys().open(ctx, i, "/rp", 1);
        co_await sys.gpuSys().pwrite(ctx, i, static_cast<int>(fd),
                                     &bytes[ctx.workgroupId()], 1,
                                     ctx.workgroupId());
    };
    sys.launchGpuAndDrain(std::move(k));
    checkTick("residency_pressure", sys.run(), 208769);
}

TEST(TimingParity, NonBlockingSlotReuse)
{
    const SystemConfig cfg = smallConfig();
    System sys(cfg);
    sys.kernel().vfs().createFile("/reuse");
    gpu::KernelLaunch k;
    k.workItems = 64;
    k.wgSize = 64;
    static const char byte = 'r';
    k.program = [&sys](gpu::WavefrontCtx &ctx) -> sim::Task<> {
        auto i = inv(Granularity::WorkGroup, Ordering::Relaxed,
                     Blocking::Blocking);
        const auto fd = co_await sys.gpuSys().open(ctx, i, "/reuse", 1);
        auto nb = inv(Granularity::WorkGroup, Ordering::Relaxed,
                      Blocking::NonBlocking);
        for (int n = 0; n < 8; ++n) {
            co_await sys.gpuSys().pwrite(ctx, nb, static_cast<int>(fd),
                                         &byte, 1, n);
        }
    };
    sys.launchGpuAndDrain(std::move(k));
    checkTick("nonblocking_reuse", sys.run(), 215138);
}

TEST(TimingParity, PollingDaemonBackend)
{
    const SystemConfig cfg = smallConfig();
    System sys(cfg);
    sys.kernel().vfs().createFile("/pd");
    sys.host().startPollingDaemon(ticks::us(20));
    static const char data[] = "daemon";
    gpu::KernelLaunch k;
    k.workItems = 64;
    k.wgSize = 64;
    k.program = [&sys](gpu::WavefrontCtx &ctx) -> sim::Task<> {
        auto i = inv(Granularity::WorkGroup, Ordering::Strong,
                     Blocking::Blocking);
        const auto fd = co_await sys.gpuSys().open(ctx, i, "/pd", 1);
        co_await sys.gpuSys().pwrite(ctx, i, static_cast<int>(fd),
                                     data, 6, 0);
        sys.host().stopDaemon();
    };
    sys.launchGpu(std::move(k));
    checkTick("polling_daemon", sys.run(), 77801);
}

TEST(TimingParity, GrepWorkGroupAndWorkItem)
{
    // fig13a shape on a reduced corpus; syscall-heavy (open/read/write
    // per file) and residency-limited, via both granularities.
    auto run = [](workloads::GrepMode mode) {
        SystemConfig cfg = smallConfig();
        System sys(cfg);
        workloads::GrepCorpusConfig cc;
        cc.numFiles = 32;
        cc.fileBytes = 2 * 1024;
        const auto corpus = workloads::buildGrepCorpus(sys, cc);
        const auto res = workloads::runGrep(sys, corpus, mode);
        EXPECT_TRUE(res.correct);
        return res.elapsed;
    };
    checkTick("grep_workgroup", run(workloads::GrepMode::GpuWorkGroup),
              902796);
    checkTick("grep_workitem_poll",
              run(workloads::GrepMode::GpuWorkItemPolling), 477865);
}

} // namespace
} // namespace genesys::core
