/**
 * @file
 * Tests for the tracing facility and its integration with the
 * GENESYS pipeline.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/system.hh"
#include "osk/file.hh"
#include "support/trace.hh"

namespace genesys
{
namespace
{

struct Record
{
    Tick when;
    std::string category;
    std::string message;
};

class TraceTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        trace::reset();
        trace::setSink([this](Tick when, const std::string &cat,
                              const std::string &msg) {
            records_.push_back({when, cat, msg});
        });
    }

    void
    TearDown() override
    {
        trace::reset();
        trace::setSink(nullptr);
    }

    std::vector<Record> records_;
};

TEST_F(TraceTest, DisabledCategoriesEmitNothing)
{
    sim::EventQueue eq;
    GENESYS_TRACE(eq, "quiet", "should not appear %d", 1);
    EXPECT_TRUE(records_.empty());
    EXPECT_FALSE(trace::enabled("quiet"));
}

TEST_F(TraceTest, EnabledCategoryEmitsWithTimestamp)
{
    sim::EventQueue eq;
    eq.schedule(1234, [] {});
    eq.run();
    trace::enable("unit");
    GENESYS_TRACE(eq, "unit", "value=%d", 7);
    ASSERT_EQ(records_.size(), 1u);
    EXPECT_EQ(records_[0].when, 1234u);
    EXPECT_EQ(records_[0].category, "unit");
    EXPECT_EQ(records_[0].message, "value=7");
}

TEST_F(TraceTest, AllWildcardAndDisable)
{
    sim::EventQueue eq;
    trace::enable("all");
    EXPECT_TRUE(trace::enabled("anything"));
    GENESYS_TRACE(eq, "anything", "on");
    trace::disable("all");
    EXPECT_FALSE(trace::enabled("anything"));
    GENESYS_TRACE(eq, "anything", "off");
    ASSERT_EQ(records_.size(), 1u);
    EXPECT_EQ(records_[0].message, "on");
}

TEST_F(TraceTest, GenesysPipelineEmitsLifecycleRecords)
{
    trace::enable("genesys");
    trace::enable("gpu");
    trace::enable("syscall");

    core::System sys;
    sys.kernel().vfs().createFile("/t");
    gpu::KernelLaunch k;
    k.workItems = 64;
    k.wgSize = 64;
    k.program = [&sys](gpu::WavefrontCtx &ctx) -> sim::Task<> {
        core::Invocation weak;
        weak.ordering = core::Ordering::Relaxed;
        const auto fd = co_await sys.gpuSys().open(
            ctx, weak, "/t", osk::O_WRONLY);
        co_await sys.gpuSys().pwrite(ctx, weak, static_cast<int>(fd),
                                     "x", 1, 0);
    };
    sys.launchGpuAndDrain(std::move(k));
    sys.run();

    auto count = [this](const std::string &cat,
                        const std::string &needle) {
        int n = 0;
        for (const auto &r : records_) {
            if (r.category == cat &&
                r.message.find(needle) != std::string::npos) {
                ++n;
            }
        }
        return n;
    };
    EXPECT_EQ(count("gpu", "kernel launch"), 1);
    EXPECT_EQ(count("gpu", "retired"), 1);
    EXPECT_EQ(count("genesys", "interrupt"), 2);  // open + pwrite
    EXPECT_EQ(count("genesys", "publishes"), 2);
    EXPECT_EQ(count("syscall", "open ->"), 1);
    EXPECT_EQ(count("syscall", "pwrite64 -> 1"), 1);
    // Timestamps are monotone.
    for (std::size_t i = 1; i < records_.size(); ++i)
        EXPECT_LE(records_[i - 1].when, records_[i].when);
}

TEST_F(TraceTest, EmittedCounterAdvances)
{
    sim::EventQueue eq;
    const auto before = trace::emittedRecords();
    trace::enable("c");
    GENESYS_TRACE(eq, "c", "one");
    GENESYS_TRACE(eq, "c", "two");
    EXPECT_EQ(trace::emittedRecords(), before + 2);
}

} // namespace
} // namespace genesys
