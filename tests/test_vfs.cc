/**
 * @file
 * Unit tests for the VFS, devices, descriptor tables, and the SSD model.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "osk/block_device.hh"
#include "osk/devices.hh"
#include "osk/file.hh"
#include "osk/vfs.hh"
#include "sim/sim.hh"

namespace genesys::osk
{
namespace
{

// -------------------------------------------------------------------- Vfs

TEST(Vfs, CreateAndResolveFile)
{
    Vfs vfs;
    RegularFile *f = vfs.createFile("/data/input.txt");
    ASSERT_NE(f, nullptr);
    f->setData("hello");
    Inode *node = vfs.resolve("/data/input.txt");
    ASSERT_EQ(node, f);
    EXPECT_EQ(node->size(), 5u);
}

TEST(Vfs, ResolveMissingReturnsNull)
{
    Vfs vfs;
    EXPECT_EQ(vfs.resolve("/nope"), nullptr);
    EXPECT_EQ(vfs.resolve("relative/path"), nullptr);
    EXPECT_EQ(vfs.resolve(""), nullptr);
}

TEST(Vfs, CreateFileTruncatesExisting)
{
    Vfs vfs;
    RegularFile *f = vfs.createFile("/a/b");
    f->setData("0123456789");
    RegularFile *again = vfs.createFile("/a/b");
    EXPECT_EQ(again, f);
    EXPECT_EQ(f->size(), 0u);
}

TEST(Vfs, CreateFileRefusesNonRegularConflict)
{
    Vfs vfs;
    ASSERT_TRUE(vfs.install("/dev/null", std::make_shared<NullDevice>()));
    EXPECT_EQ(vfs.createFile("/dev/null"), nullptr);
    // Parent path through a non-directory also fails.
    vfs.createFile("/file");
    EXPECT_EQ(vfs.createFile("/file/child"), nullptr);
}

TEST(Vfs, UnlinkRemovesEntry)
{
    Vfs vfs;
    vfs.createFile("/tmp/x");
    EXPECT_TRUE(vfs.unlink("/tmp/x"));
    EXPECT_EQ(vfs.resolve("/tmp/x"), nullptr);
    EXPECT_FALSE(vfs.unlink("/tmp/x"));
}

TEST(Vfs, ListFilesReturnsOnlyRegularFiles)
{
    Vfs vfs;
    vfs.createFile("/corpus/a.txt");
    vfs.createFile("/corpus/b.txt");
    vfs.createFile("/corpus/sub/nested.txt"); // dir entry, not a file
    auto files = vfs.listFiles("/corpus");
    ASSERT_EQ(files.size(), 2u);
    EXPECT_EQ(files[0], "/corpus/a.txt");
    EXPECT_EQ(files[1], "/corpus/b.txt");
}

TEST(Vfs, ComponentCount)
{
    EXPECT_EQ(Vfs::componentCount("/a/b/c"), 3u);
    EXPECT_EQ(Vfs::componentCount("/"), 0u);
    EXPECT_EQ(Vfs::componentCount("/x"), 1u);
}

// ------------------------------------------------------------ RegularFile

TEST(RegularFile, ReadAtHonorsEofAndOffset)
{
    RegularFile f;
    f.setData("abcdef");
    char buf[8] = {};
    EXPECT_EQ(f.readAt(2, buf, 3), 3u);
    EXPECT_EQ(std::string(buf, 3), "cde");
    EXPECT_EQ(f.readAt(6, buf, 3), 0u);
    EXPECT_EQ(f.readAt(4, buf, 100), 2u);
}

TEST(RegularFile, WriteExtendsAndZeroFills)
{
    RegularFile f;
    f.writeAt(4, "xy", 2);
    EXPECT_EQ(f.size(), 6u);
    char buf[6];
    f.readAt(0, buf, 6);
    EXPECT_EQ(buf[0], 0);
    EXPECT_EQ(buf[4], 'x');
}

TEST(RegularFile, SyntheticGeneratesDeterministicContent)
{
    RegularFile f;
    f.setSynthetic(1ull << 33, // 8 GiB costs no host memory
                   [](std::uint64_t off) {
                       return static_cast<std::uint8_t>(off % 251);
                   });
    EXPECT_EQ(f.size(), 1ull << 33);
    std::uint8_t buf[16];
    EXPECT_EQ(f.readAt(1000, buf, 16), 16u);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(buf[i], (1000 + i) % 251);
}

TEST(RegularFile, SyntheticNullReaderAndSinkWrites)
{
    RegularFile f;
    f.setSynthetic(4096);
    EXPECT_EQ(f.readAt(0, nullptr, 4096), 4096u);
    EXPECT_EQ(f.writeAt(10000, nullptr, 100), 100u);
    EXPECT_EQ(f.size(), 10100u);
    EXPECT_TRUE(f.data().empty()); // nothing materialized
}

// ---------------------------------------------------------------- devices

TEST(Devices, TerminalCapturesWrites)
{
    TerminalDevice term;
    term.write(0, "hello ", 6);
    term.write(0, "world", 5);
    EXPECT_EQ(term.transcript(), "hello world");
}

TEST(Devices, TerminalReadsPresetInput)
{
    TerminalDevice term;
    term.setInput("stdin-data");
    char buf[5];
    EXPECT_EQ(term.read(0, buf, 5), 5u);
    EXPECT_EQ(std::string(buf, 5), "stdin");
    EXPECT_EQ(term.read(0, buf, 100), 5u);
    EXPECT_EQ(term.read(0, buf, 5), 0u); // drained
}

TEST(Devices, FramebufferIoctlGetReturnsGeometry)
{
    FramebufferDevice fb(640, 480, 32);
    FbVarScreenInfo var;
    EXPECT_EQ(fb.ioctl(FBIOGET_VSCREENINFO, &var), 0);
    EXPECT_EQ(var.xres, 640u);
    EXPECT_EQ(var.yres, 480u);
    EXPECT_EQ(var.bitsPerPixel, 32u);
    EXPECT_EQ(fb.size(), 640u * 480 * 4);
}

TEST(Devices, FramebufferIoctlPutReshapes)
{
    FramebufferDevice fb(640, 480, 32);
    FbVarScreenInfo var = fb.var();
    var.xres = var.xresVirtual = 800;
    var.yres = var.yresVirtual = 600;
    var.bitsPerPixel = 16;
    EXPECT_EQ(fb.ioctl(FBIOPUT_VSCREENINFO, &var), 0);
    EXPECT_EQ(fb.size(), 800u * 600 * 2);
}

TEST(Devices, FramebufferRejectsBadMode)
{
    FramebufferDevice fb(640, 480, 32);
    FbVarScreenInfo var = fb.var();
    var.bitsPerPixel = 13;
    EXPECT_EQ(fb.ioctl(FBIOPUT_VSCREENINFO, &var), -EINVAL);
    var = fb.var();
    var.xres = 0;
    EXPECT_EQ(fb.ioctl(FBIOPUT_VSCREENINFO, &var), -EINVAL);
    EXPECT_EQ(fb.ioctl(0xdead, nullptr), -ENOTTY);
}

TEST(Devices, FramebufferMmapExposesPixels)
{
    FramebufferDevice fb(4, 4, 32);
    std::uint64_t len = 0;
    std::uint8_t *mem = fb.mmapMemory(len);
    ASSERT_NE(mem, nullptr);
    EXPECT_EQ(len, 64u);
    mem[0] = 0xAB;
    EXPECT_EQ(fb.pixels()[0], 0xAB);
}

TEST(Devices, FramebufferFixInfo)
{
    FramebufferDevice fb(320, 200, 32);
    FbFixScreenInfo fix;
    EXPECT_EQ(fb.ioctl(FBIOGET_FSCREENINFO, &fix), 0);
    EXPECT_EQ(fix.lineLength, 320u * 4);
    EXPECT_EQ(fix.smemLen, 320u * 200 * 4);
}

// ---------------------------------------------------------------- FdTable

TEST(FdTable, AllocatesLowestFreeDescriptor)
{
    FdTable fds;
    auto mk = [] { return std::make_shared<OpenFile>(); };
    EXPECT_EQ(fds.allocate(mk()), 0);
    EXPECT_EQ(fds.allocate(mk()), 1);
    EXPECT_EQ(fds.allocate(mk()), 2);
    fds.close(1);
    EXPECT_EQ(fds.allocate(mk()), 1);
    EXPECT_EQ(fds.openCount(), 3u);
}

TEST(FdTable, GetAndCloseValidate)
{
    FdTable fds;
    EXPECT_EQ(fds.get(0), nullptr);
    EXPECT_EQ(fds.get(-1), nullptr);
    EXPECT_FALSE(fds.close(5));
    const int fd = fds.allocate(std::make_shared<OpenFile>());
    EXPECT_NE(fds.get(fd), nullptr);
    EXPECT_TRUE(fds.close(fd));
    EXPECT_FALSE(fds.close(fd));
}

TEST(OpenFile, ReadWriteFlagChecks)
{
    OpenFile ro;
    ro.flags = O_RDONLY;
    EXPECT_TRUE(ro.readable());
    EXPECT_FALSE(ro.writable());
    OpenFile wo;
    wo.flags = O_WRONLY;
    EXPECT_FALSE(wo.readable());
    EXPECT_TRUE(wo.writable());
    OpenFile rw;
    rw.flags = O_RDWR;
    EXPECT_TRUE(rw.readable());
    EXPECT_TRUE(rw.writable());
}

// ------------------------------------------------------------ BlockDevice

TEST(BlockDevice, SingleReadPaysLatencyPlusTransfer)
{
    sim::Sim s;
    BlockDeviceParams p;
    p.channels = 8;
    p.accessLatency = ticks::us(90);
    p.bytesPerSec = 500e6;
    BlockDevice dev(s.events(), p);
    s.spawn([](BlockDevice &d) -> sim::Task<> {
        co_await d.read(500000); // 1 ms transfer at 500 MB/s
    }(dev));
    const Tick end = s.run();
    // One stream splits into ceil(500000/32768) = 16 readahead-sized
    // sub-requests issued back to back: 16 access latencies + 1 ms of
    // transfer time.
    EXPECT_NEAR(static_cast<double>(end),
                static_cast<double>(16 * ticks::us(90) + ticks::ms(1)),
                1e3);
    EXPECT_EQ(dev.bytesRead(), 500000u);
    EXPECT_EQ(dev.requests(), 16u);
}

TEST(BlockDevice, QueueDepthRaisesThroughput)
{
    // The effect behind Fig 14: one serial reader is latency-bound,
    // many concurrent readers approach device bandwidth.
    auto run = [](int concurrent, int requests) {
        sim::Sim s;
        BlockDeviceParams p;
        BlockDevice dev(s.events(), p);
        for (int c = 0; c < concurrent; ++c) {
            s.spawn([](BlockDevice &d, int n) -> sim::Task<> {
                for (int i = 0; i < n; ++i)
                    co_await d.read(4 * 1024);
            }(dev, requests / concurrent));
        }
        const Tick end = s.run();
        return dev.throughput(0, end);
    };
    const double serial = run(1, 64);
    const double parallel = run(8, 64);
    EXPECT_GT(parallel, serial * 2.5);
    EXPECT_LT(parallel, 520e6 * 1.01); // cannot beat device bandwidth
}

} // namespace
} // namespace genesys::osk
