/**
 * @file
 * Tests for pipes and the second batch of readily-implementable
 * syscalls (pipe/dup/dup2/fstat/ftruncate/unlink/getpid/nanosleep) —
 * the "everything is a file" breadth Section IV claims.
 */

#include <gtest/gtest.h>

#include <cerrno>
#include <string>

#include "osk/pipe.hh"
#include "osk/process.hh"
#include "osk/syscalls.hh"
#include "sim/sim.hh"

namespace genesys::osk
{
namespace
{

class PipeSyscallTest : public ::testing::Test
{
  protected:
    PipeSyscallTest()
        : kernel_(sim_, KernelConfig{}), proc_(&kernel_.createProcess())
    {}

    std::int64_t
    sys(int num, const SyscallArgs &args)
    {
        std::int64_t ret = -1;
        sim_.spawn([](Kernel &k, Process &p, int n, SyscallArgs a,
                      std::int64_t &out) -> sim::Task<> {
            out = co_await k.doSyscall(p, n, a);
        }(kernel_, *proc_, num, args, ret));
        sim_.run();
        return ret;
    }

    sim::Sim sim_;
    Kernel kernel_;
    Process *proc_;
};

TEST_F(PipeSyscallTest, PipeRoundTrip)
{
    int fds[2] = {-1, -1};
    ASSERT_EQ(sys(sysno::pipe, makeArgs(fds)), 0);
    ASSERT_GE(fds[0], 0);
    ASSERT_GE(fds[1], 0);
    EXPECT_EQ(sys(sysno::write, makeArgs(fds[1], "hello", 5)), 5);
    char buf[8] = {};
    EXPECT_EQ(sys(sysno::read, makeArgs(fds[0], buf, 8)), 5);
    EXPECT_EQ(std::string(buf), "hello");
}

TEST_F(PipeSyscallTest, ReadBlocksUntilWriterDelivers)
{
    int fds[2];
    ASSERT_EQ(sys(sysno::pipe, makeArgs(fds)), 0);
    char buf[16] = {};
    std::int64_t n = -1;
    Tick read_done = 0;
    sim_.spawn([](Kernel &k, Process &p, int fd, char *b,
                  std::int64_t &out, Tick &when) -> sim::Task<> {
        out = co_await k.doSyscall(p, sysno::read,
                                   makeArgs(fd, b, 16));
        when = k.sim().now();
    }(kernel_, *proc_, fds[0], buf, n, read_done));
    sim_.run();
    EXPECT_EQ(n, -1); // still blocked
    sim_.spawn([](Kernel &k, Process &p, int fd) -> sim::Task<> {
        co_await k.sim().delay(ticks::us(50));
        co_await k.doSyscall(p, sysno::write, makeArgs(fd, "x", 1));
    }(kernel_, *proc_, fds[1]));
    sim_.run();
    EXPECT_EQ(n, 1);
    EXPECT_GE(read_done, ticks::us(50));
}

TEST_F(PipeSyscallTest, EofWhenAllWritersClose)
{
    int fds[2];
    ASSERT_EQ(sys(sysno::pipe, makeArgs(fds)), 0);
    sys(sysno::write, makeArgs(fds[1], "ab", 2));
    ASSERT_EQ(sys(sysno::close, makeArgs(fds[1])), 0);
    char buf[4];
    EXPECT_EQ(sys(sysno::read, makeArgs(fds[0], buf, 4)), 2);
    EXPECT_EQ(sys(sysno::read, makeArgs(fds[0], buf, 4)), 0); // EOF
}

TEST_F(PipeSyscallTest, EpipeWhenAllReadersClose)
{
    int fds[2];
    ASSERT_EQ(sys(sysno::pipe, makeArgs(fds)), 0);
    ASSERT_EQ(sys(sysno::close, makeArgs(fds[0])), 0);
    EXPECT_EQ(sys(sysno::write, makeArgs(fds[1], "x", 1)), -EPIPE);
}

TEST_F(PipeSyscallTest, PipesAreNotSeekable)
{
    int fds[2];
    ASSERT_EQ(sys(sysno::pipe, makeArgs(fds)), 0);
    sys(sysno::write, makeArgs(fds[1], "x", 1));
    char c;
    EXPECT_EQ(sys(sysno::pread64, makeArgs(fds[0], &c, 1, 0)), -ESPIPE);
    EXPECT_EQ(sys(sysno::pwrite64, makeArgs(fds[1], &c, 1, 0)),
              -ESPIPE);
}

TEST_F(PipeSyscallTest, WriterBlocksWhenFull)
{
    sim::Sim local;
    PipeInode pipe(local.events(), /*capacity=*/4);
    pipe.addReader();
    pipe.addWriter();
    std::int64_t wrote = -1;
    local.spawn([](PipeInode &pp, std::int64_t &out) -> sim::Task<> {
        out = co_await pp.writeBlocking("123456", 6);
    }(pipe, wrote));
    local.run();
    EXPECT_EQ(wrote, -1); // blocked: only 4 bytes fit
    char buf[4];
    std::int64_t got = 0;
    local.spawn([](PipeInode &pp, char *b, std::int64_t &out)
                    -> sim::Task<> {
        out = co_await pp.readBlocking(b, 4);
    }(pipe, buf, got));
    local.run();
    EXPECT_EQ(got, 4);
    EXPECT_EQ(wrote, 6); // writer completed after drain
}

TEST_F(PipeSyscallTest, StdoutRedirectionThroughDup2)
{
    // The classic shell pattern: redirect fd 1 into a pipe, write(1),
    // read the other end.
    int fds[2];
    ASSERT_EQ(sys(sysno::pipe, makeArgs(fds)), 0);
    EXPECT_EQ(sys(sysno::dup2, makeArgs(fds[1], 1)), 1);
    EXPECT_EQ(sys(sysno::write, makeArgs(1, "redirected", 10)), 10);
    char buf[16] = {};
    EXPECT_EQ(sys(sysno::read, makeArgs(fds[0], buf, 16)), 10);
    EXPECT_EQ(std::string(buf), "redirected");
    // The console did NOT receive the write.
    EXPECT_EQ(kernel_.terminal().transcript().find("redirected"),
              std::string::npos);
}

TEST_F(PipeSyscallTest, DupSharesFilePosition)
{
    kernel_.vfs().createFile("/d")->setData("abcdef");
    const auto fd = sys(sysno::open, makeArgs("/d", O_RDONLY));
    const auto fd2 = sys(sysno::dup, makeArgs(fd));
    ASSERT_GE(fd2, 0);
    EXPECT_NE(fd, fd2);
    char buf[3] = {};
    sys(sysno::read, makeArgs(fd, buf, 2));
    sys(sysno::read, makeArgs(fd2, buf, 2));
    EXPECT_EQ(std::string(buf, 2), "cd"); // shared offset advanced
}

TEST_F(PipeSyscallTest, DupOfPipeEndCountsEndpoints)
{
    int fds[2];
    ASSERT_EQ(sys(sysno::pipe, makeArgs(fds)), 0);
    const auto w2 = sys(sysno::dup, makeArgs(fds[1]));
    // Closing one writer leaves the pipe open.
    sys(sysno::close, makeArgs(fds[1]));
    EXPECT_EQ(sys(sysno::write, makeArgs(w2, "q", 1)), 1);
    sys(sysno::close, makeArgs(w2));
    char buf[4];
    EXPECT_EQ(sys(sysno::read, makeArgs(fds[0], buf, 4)), 1);
    EXPECT_EQ(sys(sysno::read, makeArgs(fds[0], buf, 4)), 0); // EOF
}

TEST_F(PipeSyscallTest, Dup2Validation)
{
    EXPECT_EQ(sys(sysno::dup, makeArgs(99)), -EBADF);
    EXPECT_EQ(sys(sysno::dup2, makeArgs(99, 5)), -EBADF);
    kernel_.vfs().createFile("/v")->setData("x");
    const auto fd = sys(sysno::open, makeArgs("/v", O_RDONLY));
    EXPECT_EQ(sys(sysno::dup2, makeArgs(fd, fd)), fd);
    EXPECT_EQ(sys(sysno::dup2, makeArgs(fd, -3)), -EBADF);
}

TEST_F(PipeSyscallTest, FstatReportsSizeAndType)
{
    kernel_.vfs().createFile("/s")->setData("0123456");
    const auto fd = sys(sysno::open, makeArgs("/s", O_RDONLY));
    StatLite st{};
    EXPECT_EQ(sys(sysno::fstat, makeArgs(fd, &st)), 0);
    EXPECT_EQ(st.stSize, 7u);
    EXPECT_EQ(st.stMode, 1u); // regular
    const auto cfd = sys(sysno::open, makeArgs("/dev/console", 1));
    EXPECT_EQ(sys(sysno::fstat, makeArgs(cfd, &st)), 0);
    EXPECT_EQ(st.stMode, 3u); // chardev
    int fds[2];
    sys(sysno::pipe, makeArgs(fds));
    EXPECT_EQ(sys(sysno::fstat, makeArgs(fds[0], &st)), 0);
    EXPECT_EQ(st.stMode, 5u); // pipe
    EXPECT_EQ(sys(sysno::fstat, makeArgs(99, &st)), -EBADF);
    EXPECT_EQ(sys(sysno::fstat,
                  makeArgs(fd, static_cast<StatLite *>(nullptr))),
              -EFAULT);
}

TEST_F(PipeSyscallTest, FtruncateAndUnlink)
{
    kernel_.vfs().createFile("/t")->setData("0123456789");
    const auto fd = sys(sysno::open, makeArgs("/t", O_WRONLY));
    EXPECT_EQ(sys(sysno::ftruncate, makeArgs(fd, 4)), 0);
    auto *f = static_cast<RegularFile *>(kernel_.vfs().resolve("/t"));
    EXPECT_EQ(f->size(), 4u);
    // Read-only fd cannot truncate.
    const auto ro = sys(sysno::open, makeArgs("/t", O_RDONLY));
    EXPECT_EQ(sys(sysno::ftruncate, makeArgs(ro, 1)), -EBADF);

    EXPECT_EQ(sys(sysno::unlink, makeArgs("/t")), 0);
    EXPECT_EQ(kernel_.vfs().resolve("/t"), nullptr);
    EXPECT_EQ(sys(sysno::unlink, makeArgs("/t")), -ENOENT);
}

TEST_F(PipeSyscallTest, GetpidAndNanosleep)
{
    EXPECT_EQ(sys(sysno::getpid, makeArgs()), proc_->pid());

    TimeSpec req{0, 500'000}; // 500 us
    const Tick before = sim_.now();
    EXPECT_EQ(sys(sysno::nanosleep, makeArgs(&req)), 0);
    EXPECT_GE(sim_.now() - before, ticks::us(500));

    TimeSpec bad{-1, 0};
    EXPECT_EQ(sys(sysno::nanosleep, makeArgs(&bad)), -EINVAL);
    TimeSpec bad2{0, 2'000'000'000};
    EXPECT_EQ(sys(sysno::nanosleep, makeArgs(&bad2)), -EINVAL);
    EXPECT_EQ(sys(sysno::nanosleep,
                  makeArgs(static_cast<TimeSpec *>(nullptr))),
              -EFAULT);
}

TEST_F(PipeSyscallTest, GpuProducerCpuConsumerPipeline)
{
    // A GPU->CPU pipe: impossible without generic syscalls. Uses the
    // raw pipe object with a GPU-side writer via the syscall table.
    int fds[2];
    ASSERT_EQ(sys(sysno::pipe, makeArgs(fds)), 0);
    std::string received;
    sim_.spawn([](Kernel &k, Process &p, int fd,
                  std::string &out) -> sim::Task<> {
        char buf[64];
        for (;;) {
            const auto n = co_await k.doSyscall(
                p, sysno::read, makeArgs(fd, buf, sizeof buf));
            if (n <= 0)
                break;
            out.append(buf, static_cast<std::size_t>(n));
        }
    }(kernel_, *proc_, fds[0], received));
    sim_.spawn([](Kernel &k, Process &p, int fd) -> sim::Task<> {
        for (int i = 0; i < 3; ++i) {
            co_await k.sim().delay(ticks::us(10));
            co_await k.doSyscall(p, sysno::write,
                                 makeArgs(fd, "chunk;", 6));
        }
        co_await k.doSyscall(p, sysno::close, makeArgs(fd));
    }(kernel_, *proc_, fds[1]));
    sim_.run();
    EXPECT_EQ(received, "chunk;chunk;chunk;");
}

} // namespace
} // namespace genesys::osk
