/**
 * @file
 * Unit tests for the discrete-event kernel and coroutine primitives.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/future.hh"
#include "sim/sim.hh"
#include "sim/sync.hh"
#include "sim/task.hh"
#include "support/logging.hh"

namespace genesys::sim
{
namespace
{

// ------------------------------------------------------------ EventQueue

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTickFifo)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        eq.schedule(100, [&order, i] { order.push_back(i); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, ScheduleInPastPanics)
{
    EventQueue eq;
    eq.schedule(10, [] {});
    eq.run();
    EXPECT_THROW(eq.schedule(5, [] {}), PanicError);
}

TEST(EventQueue, DescheduleCancelsEvent)
{
    EventQueue eq;
    bool fired = false;
    auto id = eq.schedule(10, [&] { fired = true; });
    EXPECT_TRUE(eq.deschedule(id));
    eq.run();
    EXPECT_FALSE(fired);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, DoubleDescheduleIsNoop)
{
    EventQueue eq;
    auto id = eq.schedule(10, [] {});
    EXPECT_TRUE(eq.deschedule(id));
    EXPECT_FALSE(eq.deschedule(id));
}

TEST(EventQueue, RunHonorsLimit)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(100, [&] { ++fired; });
    eq.run(50);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 50u);
    eq.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, EventsCanScheduleEvents)
{
    EventQueue eq;
    int depth = 0;
    std::function<void()> chain = [&] {
        if (++depth < 10)
            eq.scheduleIn(1, chain);
    };
    eq.schedule(0, chain);
    eq.run();
    EXPECT_EQ(depth, 10);
    EXPECT_EQ(eq.now(), 9u);
}

// ------------------------------------------------------------------ tasks

Task<int>
answer()
{
    co_return 42;
}

Task<int>
addOne(Task<int> inner)
{
    const int v = co_await std::move(inner);
    co_return v + 1;
}

TEST(Task, SpawnedTaskRunsToCompletion)
{
    Sim sim;
    int result = 0;
    sim.spawn([](Sim &, int &out) -> Task<> {
        out = co_await answer();
    }(sim, result));
    sim.run();
    EXPECT_EQ(result, 42);
    EXPECT_EQ(sim.liveTasks(), 0u);
}

TEST(Task, NestedAwaitPropagatesValues)
{
    Sim sim;
    int result = 0;
    sim.spawn([](int &out) -> Task<> {
        out = co_await addOne(addOne(answer()));
    }(result));
    sim.run();
    EXPECT_EQ(result, 44);
}

TEST(Task, ExceptionPropagatesThroughAwaitChain)
{
    Sim sim;
    bool caught = false;
    sim.spawn([](bool &flag) -> Task<> {
        auto thrower = []() -> Task<int> {
            fatal("inner failure");
            co_return 0;
        };
        try {
            co_await thrower();
        } catch (const FatalError &) {
            flag = true;
        }
    }(caught));
    sim.run();
    EXPECT_TRUE(caught);
}

TEST(Task, UncaughtExceptionSurfacesFromRun)
{
    Sim sim;
    sim.spawn([]() -> Task<> {
        fatal("root failure");
        co_return;
    }());
    EXPECT_THROW(sim.run(), FatalError);
}

TEST(Task, DelayAdvancesSimTime)
{
    Sim sim;
    Tick observed = 0;
    sim.spawn([](Sim &s, Tick &out) -> Task<> {
        co_await s.delay(250);
        out = s.now();
    }(sim, observed));
    sim.run();
    EXPECT_EQ(observed, 250u);
}

TEST(Task, ConcurrentTasksInterleaveDeterministically)
{
    Sim sim;
    std::string trace;
    auto worker = [](Sim &s, std::string &t, char tag,
                     Tick step) -> Task<> {
        for (int i = 0; i < 3; ++i) {
            co_await s.delay(step);
            t.push_back(tag);
        }
    };
    sim.spawn(worker(sim, trace, 'a', 10));
    sim.spawn(worker(sim, trace, 'b', 15));
    sim.run();
    // a: 10,20,30  b: 15,30,45. At tick 30 both fire; b scheduled its
    // event earlier (at t=15) than a (at t=20), so FIFO runs b first.
    EXPECT_EQ(trace, "ababab");
}

// ------------------------------------------------------------------- sync

TEST(Sync, WaitQueueWakesInFifoOrder)
{
    Sim sim;
    WaitQueue q(sim.events());
    std::vector<int> order;
    for (int i = 0; i < 3; ++i) {
        sim.spawn([](WaitQueue &wq, std::vector<int> &out,
                     int id) -> Task<> {
            co_await wq.wait();
            out.push_back(id);
        }(q, order, i));
    }
    sim.run();
    EXPECT_EQ(q.waiting(), 3u);
    q.notifyAll();
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(Sync, WaitQueueNotifyOneWakesSingleWaiter)
{
    Sim sim;
    WaitQueue q(sim.events());
    int woke = 0;
    for (int i = 0; i < 2; ++i) {
        sim.spawn([](WaitQueue &wq, int &n) -> Task<> {
            co_await wq.wait();
            ++n;
        }(q, woke));
    }
    sim.run();
    q.notifyOne();
    sim.run();
    EXPECT_EQ(woke, 1);
    EXPECT_EQ(q.waiting(), 1u);
}

TEST(Sync, NotifyLatencyDelaysWake)
{
    Sim sim;
    WaitQueue q(sim.events());
    Tick woke_at = 0;
    sim.spawn([](Sim &s, WaitQueue &wq, Tick &out) -> Task<> {
        co_await wq.wait();
        out = s.now();
    }(sim, q, woke_at));
    sim.run();
    q.notifyOne(ticks::us(5));
    sim.run();
    EXPECT_EQ(woke_at, ticks::us(5));
}

TEST(Sync, SemaphoreLimitsConcurrency)
{
    Sim sim;
    Semaphore sem(sim.events(), 2);
    int active = 0, peak = 0;
    for (int i = 0; i < 6; ++i) {
        sim.spawn([](Sim &s, Semaphore &sm, int &act, int &pk) -> Task<> {
            co_await sm.acquire();
            ++act;
            pk = std::max(pk, act);
            co_await s.delay(10);
            --act;
            sm.release();
        }(sim, sem, active, peak));
    }
    sim.run();
    EXPECT_EQ(peak, 2);
    EXPECT_EQ(active, 0);
    EXPECT_EQ(sem.available(), 2u);
}

TEST(Sync, SemaphoreTryAcquire)
{
    Sim sim;
    Semaphore sem(sim.events(), 1);
    EXPECT_TRUE(sem.tryAcquire());
    EXPECT_FALSE(sem.tryAcquire());
    sem.release();
    EXPECT_TRUE(sem.tryAcquire());
}

TEST(Sync, BarrierReleasesAllPartiesTogether)
{
    Sim sim;
    Barrier bar(sim.events(), 4);
    std::vector<Tick> release_times;
    for (int i = 0; i < 4; ++i) {
        sim.spawn([](Sim &s, Barrier &b, std::vector<Tick> &out,
                     Tick arrive) -> Task<> {
            co_await s.delay(arrive);
            co_await b.arriveAndWait();
            out.push_back(s.now());
        }(sim, bar, release_times, Tick(i * 100)));
    }
    sim.run();
    ASSERT_EQ(release_times.size(), 4u);
    for (Tick t : release_times)
        EXPECT_EQ(t, 300u); // all released when the last (300ns) arrives
}

TEST(Sync, BarrierIsReusableAcrossRounds)
{
    Sim sim;
    Barrier bar(sim.events(), 2);
    int rounds_done = 0;
    for (int i = 0; i < 2; ++i) {
        sim.spawn([](Sim &s, Barrier &b, int &done, int id) -> Task<> {
            for (int round = 0; round < 3; ++round) {
                co_await s.delay(Tick(10 * (id + 1)));
                co_await b.arriveAndWait();
            }
            ++done;
        }(sim, bar, rounds_done, i));
    }
    sim.run();
    EXPECT_EQ(rounds_done, 2);
}

TEST(Sync, BarrierZeroPartiesPanics)
{
    Sim sim;
    EXPECT_THROW(Barrier(sim.events(), 0), PanicError);
}

// ----------------------------------------------------------------- future

TEST(Future, ValueDeliveredToAwaiter)
{
    Sim sim;
    Promise<int> p(sim.events());
    int got = 0;
    sim.spawn([](Promise<int> &pr, int &out) -> Task<> {
        out = co_await pr.future();
    }(p, got));
    sim.run();
    EXPECT_EQ(got, 0);
    p.set(99);
    sim.run();
    EXPECT_EQ(got, 99);
}

TEST(Future, ReadyFutureDoesNotSuspend)
{
    Sim sim;
    Promise<int> p(sim.events());
    p.set(5);
    int got = 0;
    sim.spawn([](Promise<int> &pr, int &out) -> Task<> {
        out = co_await pr.future();
    }(p, got));
    sim.run();
    EXPECT_EQ(got, 5);
}

TEST(Future, MultipleWaitersAllWoken)
{
    Sim sim;
    Promise<int> p(sim.events());
    int sum = 0;
    for (int i = 0; i < 3; ++i) {
        sim.spawn([](Promise<int> &pr, int &s) -> Task<> {
            s += co_await pr.future();
        }(p, sum));
    }
    sim.run();
    p.set(10);
    sim.run();
    EXPECT_EQ(sum, 30);
}

TEST(Future, ErrorRethrownAtAwaiter)
{
    Sim sim;
    Promise<int> p(sim.events());
    bool caught = false;
    sim.spawn([](Promise<int> &pr, bool &flag) -> Task<> {
        try {
            co_await pr.future();
        } catch (const FatalError &) {
            flag = true;
        }
    }(p, caught));
    sim.run();
    p.setError(std::make_exception_ptr(FatalError("io error")));
    sim.run();
    EXPECT_TRUE(caught);
}

TEST(Future, DoubleSetPanics)
{
    Sim sim;
    Promise<int> p(sim.events());
    p.set(1);
    EXPECT_THROW(p.set(2), PanicError);
}

} // namespace
} // namespace genesys::sim
