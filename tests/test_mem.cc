/**
 * @file
 * Unit tests for the memory-system models.
 */

#include <gtest/gtest.h>

#include "mem/cache_model.hh"
#include "mem/mem_bus.hh"
#include "sim/sim.hh"
#include "support/types.hh"

namespace genesys::mem
{
namespace
{

CacheParams
smallCache()
{
    CacheParams p;
    p.sizeBytes = 4096; // 64 lines
    p.lineBytes = 64;
    p.associativity = 4; // 16 sets
    return p;
}

TEST(CacheModel, FirstTouchMissesThenHits)
{
    CacheModel c(smallCache());
    EXPECT_FALSE(c.access(0x1000));
    EXPECT_TRUE(c.access(0x1000));
    EXPECT_TRUE(c.access(0x1004)); // same line
    EXPECT_EQ(c.hits(), 2u);
    EXPECT_EQ(c.misses(), 1u);
}

TEST(CacheModel, WorkingSetWithinCapacityAllHits)
{
    CacheModel c(smallCache());
    const auto lines = c.lineCapacity();
    // Warm-up pass misses; steady-state passes all hit.
    for (std::uint64_t i = 0; i < lines; ++i)
        c.access(i * 64);
    c.resetStats();
    for (int pass = 0; pass < 3; ++pass)
        for (std::uint64_t i = 0; i < lines; ++i)
            c.access(i * 64);
    EXPECT_EQ(c.misses(), 0u);
    EXPECT_DOUBLE_EQ(c.missRatio(), 0.0);
}

TEST(CacheModel, WorkingSetBeyondCapacityThrashes)
{
    CacheModel c(smallCache());
    const auto lines = c.lineCapacity() * 2;
    for (int pass = 0; pass < 3; ++pass)
        for (std::uint64_t i = 0; i < lines; ++i)
            c.access(i * 64);
    // Sequential sweep over 2x capacity with LRU: every access misses.
    EXPECT_GT(c.missRatio(), 0.9);
}

TEST(CacheModel, LruEvictsLeastRecentlyUsed)
{
    CacheParams p;
    p.sizeBytes = 2 * 64; // one set, two ways
    p.lineBytes = 64;
    p.associativity = 2;
    CacheModel c(p);
    c.access(0 * 64); // A miss
    c.access(1 * 64); // B miss
    c.access(0 * 64); // A hit -> B is LRU
    c.access(2 * 64); // C miss, evicts B
    EXPECT_TRUE(c.access(0 * 64));  // A still present
    EXPECT_FALSE(c.access(1 * 64)); // B was evicted
}

TEST(CacheModel, InvalidateDropsSingleLine)
{
    CacheModel c(smallCache());
    c.access(0x40);
    c.invalidate(0x40);
    EXPECT_FALSE(c.access(0x40));
}

TEST(CacheModel, FlushAllDropsEverything)
{
    CacheModel c(smallCache());
    for (std::uint64_t i = 0; i < 8; ++i)
        c.access(i * 64);
    c.flushAll();
    c.resetStats();
    for (std::uint64_t i = 0; i < 8; ++i)
        c.access(i * 64);
    EXPECT_EQ(c.hits(), 0u);
}

TEST(CacheModel, BadGeometryPanics)
{
    CacheParams p;
    p.sizeBytes = 64;
    p.lineBytes = 64;
    p.associativity = 4; // cache smaller than one set
    EXPECT_THROW(CacheModel c(p), PanicError);
}

// ----------------------------------------------------------------- MemBus

TEST(MemBus, TransferTakesBandwidthTime)
{
    sim::Sim s;
    MemBusParams p;
    p.bytesPerSec = 1e9; // 1 byte/ns
    p.requestOverhead = 0;
    MemBus bus(s.events(), p);
    s.spawn([](sim::Sim &, MemBus &b) -> sim::Task<> {
        co_await b.transfer("cpu", 1000);
    }(s, bus));
    const Tick end = s.run();
    EXPECT_EQ(end, 1000u);
    EXPECT_EQ(bus.bytesMoved("cpu"), 1000u);
}

TEST(MemBus, AgentsSerializeOnSharedBandwidth)
{
    sim::Sim s;
    MemBusParams p;
    p.bytesPerSec = 1e9;
    p.requestOverhead = 0;
    MemBus bus(s.events(), p);
    Tick cpu_done = 0, gpu_done = 0;
    s.spawn([](sim::Sim &sm, MemBus &b, Tick &done) -> sim::Task<> {
        co_await b.transfer("cpu", 500);
        done = sm.now();
    }(s, bus, cpu_done));
    s.spawn([](sim::Sim &sm, MemBus &b, Tick &done) -> sim::Task<> {
        co_await b.transfer("gpu", 500);
        done = sm.now();
    }(s, bus, gpu_done));
    s.run();
    // FIFO: the cpu transfer (spawned first) completes at 500, the gpu
    // one waits behind it and completes at 1000.
    EXPECT_EQ(cpu_done, 500u);
    EXPECT_EQ(gpu_done, 1000u);
}

TEST(MemBus, ThroughputAccountsPerAgent)
{
    sim::Sim s;
    MemBusParams p;
    p.bytesPerSec = 2e9;
    p.requestOverhead = 0;
    MemBus bus(s.events(), p);
    s.spawn([](sim::Sim &, MemBus &b) -> sim::Task<> {
        for (int i = 0; i < 10; ++i)
            co_await b.transfer("cpu", 1000);
    }(s, bus));
    const Tick end = s.run();
    const double tput = bus.throughput("cpu", 0, end);
    EXPECT_NEAR(tput, 2e9, 2e7);
    EXPECT_EQ(bus.bytesMoved("nic"), 0u);
}

TEST(MemBus, RequestOverheadCharged)
{
    sim::Sim s;
    MemBusParams p;
    p.bytesPerSec = 1e9;
    p.requestOverhead = 40;
    MemBus bus(s.events(), p);
    s.spawn([](sim::Sim &, MemBus &b) -> sim::Task<> {
        co_await b.transfer("cpu", 64);
    }(s, bus));
    EXPECT_EQ(s.run(), 104u);
}

} // namespace
} // namespace genesys::mem
