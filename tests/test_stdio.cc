/**
 * @file
 * Tests for gstdio — the buffered C-stdio layer over GENESYS, the
 * adoption path for legacy line/byte-oriented code.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/stdio.hh"
#include "core/system.hh"
#include "osk/file.hh"

namespace genesys::core
{
namespace
{

/** Run a single-wave GPU program to completion. */
void
runProgram(System &sys, gpu::WaveProgram program)
{
    gpu::KernelLaunch k;
    k.workItems = 64;
    k.wgSize = 64;
    k.program = std::move(program);
    sys.launchGpuAndDrain(std::move(k));
    sys.run();
}

TEST(GpuStdio, WriteThenReadBackRoundTrip)
{
    System sys;
    GpuStdio stdio(sys.gpuSys());
    runProgram(sys, [&](gpu::WavefrontCtx &ctx) -> sim::Task<> {
        GpuFile *f = co_await stdio.fopen(ctx, "/doc.txt", "w");
        EXPECT_NE(f, nullptr);
        if (f == nullptr)
            co_return;
        co_await stdio.fputs(ctx, f, "line one\n");
        co_await stdio.fprintf(ctx, f, "line %d, pi=%.2f\n", 2, 3.14159);
        EXPECT_EQ(co_await stdio.fclose(ctx, f), 0);
    });
    runProgram(sys, [&](gpu::WavefrontCtx &ctx) -> sim::Task<> {
        GpuFile *f = co_await stdio.fopen(ctx, "/doc.txt", "r");
        EXPECT_NE(f, nullptr);
        if (f == nullptr)
            co_return;
        auto l1 = co_await stdio.fgets(ctx, f);
        auto l2 = co_await stdio.fgets(ctx, f);
        auto l3 = co_await stdio.fgets(ctx, f);
        EXPECT_TRUE(l1.has_value());
        EXPECT_TRUE(l2.has_value());
        EXPECT_EQ(l1.value_or(""), "line one");
        EXPECT_EQ(l2.value_or(""), "line 2, pi=3.14");
        EXPECT_FALSE(l3.has_value()); // EOF
        EXPECT_TRUE(f->eof());
        co_await stdio.fclose(ctx, f);
    });
    EXPECT_EQ(stdio.openStreams(), 0u);
}

TEST(GpuStdio, ModeSemantics)
{
    System sys;
    sys.kernel().vfs().createFile("/m")->setData("seed");
    GpuStdio stdio(sys.gpuSys());
    runProgram(sys, [&](gpu::WavefrontCtx &ctx) -> sim::Task<> {
        // "r" cannot write; missing file fails; bad mode fails.
        GpuFile *r = co_await stdio.fopen(ctx, "/m", "r");
        EXPECT_NE(r, nullptr);
        if (r == nullptr)
            co_return;
        EXPECT_EQ(co_await stdio.fwrite(ctx, r, "x", 1), 0u);
        co_await stdio.fclose(ctx, r);
        EXPECT_EQ(co_await stdio.fopen(ctx, "/missing", "r"), nullptr);
        EXPECT_EQ(co_await stdio.fopen(ctx, "/m", "q"), nullptr);
        // "w" truncates.
        GpuFile *w = co_await stdio.fopen(ctx, "/m", "w");
        co_await stdio.fputs(ctx, w, "new");
        co_await stdio.fclose(ctx, w);
        // "a" appends.
        GpuFile *a = co_await stdio.fopen(ctx, "/m", "a");
        co_await stdio.fputs(ctx, a, "+tail");
        co_await stdio.fclose(ctx, a);
    });
    auto *f =
        static_cast<osk::RegularFile *>(sys.kernel().vfs().resolve("/m"));
    EXPECT_EQ(std::string(f->data().begin(), f->data().end()),
              "new+tail");
}

TEST(GpuStdio, BufferingAmortizesSyscalls)
{
    // The adoption argument, quantified: 4096 fgetc calls over a
    // 4 KiB file must cost ~1 read syscall per buffer, not per byte.
    System sys;
    std::string content(4096, 'z');
    content[1000] = 'Q';
    sys.kernel().vfs().createFile("/big")->setData(content);
    GpuStdio stdio(sys.gpuSys(), /*buffer_bytes=*/1024);
    int bytes = 0, q_at = -1;
    runProgram(sys, [&](gpu::WavefrontCtx &ctx) -> sim::Task<> {
        GpuFile *f = co_await stdio.fopen(ctx, "/big", "r");
        for (;;) {
            const int c = co_await stdio.fgetc(ctx, f);
            if (c < 0)
                break;
            if (c == 'Q')
                q_at = bytes;
            ++bytes;
        }
        co_await stdio.fclose(ctx, f);
    });
    EXPECT_EQ(bytes, 4096);
    EXPECT_EQ(q_at, 1000);
    // open + ceil(4096/1024) refills + 1 EOF probe + close ~= 7.
    EXPECT_LE(sys.gpuSys().issuedRequests(), 8u);
}

TEST(GpuStdio, WriteBufferFlushesOnOverflowAndClose)
{
    System sys;
    GpuStdio stdio(sys.gpuSys(), /*buffer_bytes=*/64);
    runProgram(sys, [&](gpu::WavefrontCtx &ctx) -> sim::Task<> {
        GpuFile *f = co_await stdio.fopen(ctx, "/w", "w");
        // 10 x 10 bytes: crosses the 64-byte buffer once mid-way.
        for (int i = 0; i < 10; ++i)
            co_await stdio.fprintf(ctx, f, "chunk %03d\n", i);
        EXPECT_GT(f->pendingWrite(), 0u); // tail still buffered
        co_await stdio.fclose(ctx, f);    // flushes the rest
    });
    auto *f =
        static_cast<osk::RegularFile *>(sys.kernel().vfs().resolve("/w"));
    ASSERT_EQ(f->size(), 100u);
    const std::string text(f->data().begin(), f->data().end());
    EXPECT_EQ(text.substr(0, 10), "chunk 000\n");
    EXPECT_EQ(text.substr(90), "chunk 009\n");
}

TEST(GpuStdio, FreadAcrossBufferBoundaries)
{
    System sys;
    std::vector<std::uint8_t> data(3000);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<std::uint8_t>(i % 251);
    sys.kernel().vfs().createFile("/bin")->setData(data);
    GpuStdio stdio(sys.gpuSys(), /*buffer_bytes=*/512);
    static std::uint8_t out[3000];
    std::size_t got = 0, tail = 0;
    runProgram(sys, [&](gpu::WavefrontCtx &ctx) -> sim::Task<> {
        GpuFile *f = co_await stdio.fopen(ctx, "/bin", "r");
        got = co_await stdio.fread(ctx, f, out, 2900);
        tail = co_await stdio.fread(ctx, f, out + 2900, 500);
        co_await stdio.fclose(ctx, f);
    });
    EXPECT_EQ(got, 2900u);
    EXPECT_EQ(tail, 100u); // short read at EOF
    for (std::size_t i = 0; i < 3000; ++i)
        ASSERT_EQ(out[i], i % 251) << i;
}

TEST(GpuStdio, PerWorkGroupStreamsAreIndependent)
{
    // Eight work-groups each own a stream on their own file — the
    // paper's "legacy thread per work-group" mapping.
    System sys;
    GpuStdio stdio(sys.gpuSys());
    gpu::KernelLaunch k;
    k.workItems = 8 * 64;
    k.wgSize = 64;
    k.program = [&](gpu::WavefrontCtx &ctx) -> sim::Task<> {
        static char paths[8][16];
        const std::uint32_t wg = ctx.workgroupId();
        std::snprintf(paths[wg], sizeof paths[wg], "/out%u", wg);
        GpuFile *f = co_await stdio.fopen(ctx, paths[wg], "w");
        EXPECT_NE(f, nullptr);
        if (f == nullptr)
            co_return;
        co_await stdio.fprintf(ctx, f, "owned by wg %u\n", wg);
        co_await stdio.fclose(ctx, f);
    };
    sys.launchGpuAndDrain(std::move(k));
    sys.run();
    for (int wg = 0; wg < 8; ++wg) {
        auto *f = static_cast<osk::RegularFile *>(
            sys.kernel().vfs().resolve(logging::format("/out%d", wg)));
        ASSERT_NE(f, nullptr);
        EXPECT_EQ(std::string(f->data().begin(), f->data().end()),
                  logging::format("owned by wg %d\n", wg));
    }
}

TEST(GpuStdio, MultiWaveGroupsAreRejected)
{
    System sys;
    GpuStdio stdio(sys.gpuSys());
    gpu::KernelLaunch k;
    k.workItems = 128; // two wavefronts in one group
    k.wgSize = 128;
    k.program = [&](gpu::WavefrontCtx &ctx) -> sim::Task<> {
        co_await stdio.fopen(ctx, "/x", "w");
    };
    sys.launchGpu(std::move(k));
    EXPECT_THROW(sys.run(), PanicError);
}

TEST(GpuStdio, TerminalStreamsWork)
{
    // Legacy printf-to-stdout: open the console as a stream.
    System sys;
    GpuStdio stdio(sys.gpuSys());
    runProgram(sys, [&](gpu::WavefrontCtx &ctx) -> sim::Task<> {
        GpuFile *out = co_await stdio.fopen(ctx, "/dev/console", "a");
        EXPECT_NE(out, nullptr);
        if (out == nullptr)
            co_return;
        co_await stdio.fprintf(ctx, out, "result=%d\n", 42);
        co_await stdio.fclose(ctx, out);
    });
    EXPECT_EQ(sys.kernel().terminal().transcript(), "result=42\n");
}

} // namespace
} // namespace genesys::core
