/**
 * @file
 * gflow's dataflow passes (DESIGN.md §16).
 *
 * Two pass families over the PathWalker:
 *
 *  - runOwnershipPass: resource-lifecycle / must-release checking.
 *    Acquire sites (fd allocation, ring claim, slot beginProcessing,
 *    zero-copy segment loans, epoll interest registration) must reach
 *    a matching release on every path that ends the function; a path
 *    that returns, throws, or falls off the end with a live resource
 *    is reported with the acquire site and the branch decisions that
 *    led there as witness.
 *
 *  - runTaintPass: GPU-argument taint. Slot/ring payload reads
 *    (`args.a[i]`, `args.as<T>(i)`, SQ ring entries, loads through
 *    `args.ptr<T>(i)` windows) are untrusted; flows into memory-op
 *    sizes, allocation sizes, container indexing, or GPU-window walks
 *    with no dominating bounds guard are reported, including through
 *    calls via bottom-up parameter summaries.
 */

#ifndef GENESYS_ANALYSIS_FLOWPASSES_HH
#define GENESYS_ANALYSIS_FLOWPASSES_HH

#include <vector>

#include "analysis/callgraph.hh"
#include "analysis/model.hh"

namespace genesys::analysis
{

/** Must-release resource-lifecycle pass. */
std::vector<Finding> runOwnershipPass(CallGraph &cg);

/** GPU-argument taint pass. */
std::vector<Finding> runTaintPass(CallGraph &cg);

} // namespace genesys::analysis

#endif // GENESYS_ANALYSIS_FLOWPASSES_HH
