#include "analysis/callgraph.hh"

#include <sstream>

namespace genesys::analysis
{

const char *
parkKindName(ParkKind k)
{
    switch (k) {
    case ParkKind::None:
        return "none";
    case ParkKind::Bounded:
        return "bounded";
    case ParkKind::Indefinite:
        return "indefinite";
    }
    return "?";
}

CallGraph::CallGraph(const Program &prog) : prog_(prog)
{
    // Parking primitives, by the name a call site spells. Indefinite:
    // woken only by another party that may never act. Bounded: the
    // resource is guaranteed to free (cores, DMA channels, bands).
    seeds_["wait"] = ParkKind::Indefinite;
    seeds_["arriveAndWait"] = ParkKind::Indefinite;
    seeds_["epoll_wait"] = ParkKind::Indefinite;
    seeds_["acquire"] = ParkKind::Bounded;
    seeds_["acquireCore"] = ParkKind::Bounded;
    seeds_["wait_for"] = ParkKind::Bounded;
    seeds_["wait_until"] = ParkKind::Bounded;

    // Noreturn terminators: the program is dead past these, so their
    // bodies (error printing through the stdio model) must not feed
    // park or lock facts into the callers' summaries.
    terminals_.insert("panic");
    terminals_.insert("fatal");
    terminals_.insert("abort");
    terminals_.insert("exit");
    terminals_.insert("terminate");

    for (std::size_t i = 0; i < prog_.functions.size(); ++i) {
        const Function &f = prog_.functions[i];
        if (f.parent >= 0)
            lambdas_[f.parent].push_back(static_cast<int>(i));
    }
}

std::vector<int>
CallGraph::resolveDefs(const CallSite &call) const
{
    std::vector<int> out;
    if (terminals_.count(call.callee) != 0)
        return out;
    auto defs = prog_.byShortName.find(call.callee);
    if (defs == prog_.byShortName.end())
        return out;
    if (call.qualifier.empty())
        return defs->second;
    const std::string want = call.qualifier + "::" + call.callee;
    const std::string wantSuffix = "::" + want;
    for (int def : defs->second) {
        const std::string &qual =
            prog_.functions[static_cast<std::size_t>(def)].qualName;
        if (qual == want ||
            (qual.size() > wantSuffix.size() &&
             qual.compare(qual.size() - wantSuffix.size(),
                          wantSuffix.size(), wantSuffix) == 0))
            out.push_back(def);
    }
    return out;
}

std::string
CallGraph::callStep(int fromIdx, const CallSite &call) const
{
    const Function &f =
        prog_.functions[static_cast<std::size_t>(fromIdx)];
    std::ostringstream os;
    os << prog_.fileOf(f).path << ":" << call.line << ": "
       << f.qualName << " -> " << call.callee;
    return os.str();
}

const std::vector<CallSite> &
CallGraph::syncCalls(int idx)
{
    auto it = syncMemo_.find(idx);
    if (it != syncMemo_.end())
        return it->second;
    std::vector<CallSite> out;
    // Walk this function plus all transitively non-deferred lambdas.
    std::vector<int> stack{idx};
    while (!stack.empty()) {
        const int cur = stack.back();
        stack.pop_back();
        const Function &f =
            prog_.functions[static_cast<std::size_t>(cur)];
        for (const CallSite &c : f.calls) {
            if (!c.deferred)
                out.push_back(c);
        }
        auto kids = lambdas_.find(cur);
        if (kids == lambdas_.end())
            continue;
        for (int kid : kids->second) {
            if (!prog_.functions[static_cast<std::size_t>(kid)]
                     .deferred)
                stack.push_back(kid);
        }
    }
    return syncMemo_.emplace(idx, std::move(out)).first->second;
}

ParkSummary
CallGraph::callParkSummary(int fromIdx, const CallSite &call)
{
    ParkSummary best;
    if (terminals_.count(call.callee) != 0)
        return best;
    auto seed = seeds_.find(call.callee);
    if (seed != seeds_.end() && call.qualifier.empty()) {
        best.kind = seed->second;
        const Function &f =
            prog_.functions[static_cast<std::size_t>(fromIdx)];
        std::ostringstream os;
        os << prog_.fileOf(f).path << ":" << call.line << ": "
           << call.callee << "() parks ("
           << parkKindName(seed->second) << ")";
        best.witness.push_back(os.str());
        return best;
    }
    for (int def : resolveDefs(call)) {
        if (def == fromIdx)
            continue;
        const ParkSummary &sub = parkSummary(def);
        if (sub.kind > best.kind) {
            best.kind = sub.kind;
            best.witness.clear();
            best.witness.push_back(callStep(fromIdx, call));
            best.witness.insert(best.witness.end(),
                                sub.witness.begin(),
                                sub.witness.end());
        }
    }
    return best;
}

const ParkSummary &
CallGraph::parkSummary(int idx)
{
    auto it = parkMemo_.find(idx);
    if (it != parkMemo_.end())
        return it->second;
    if (onStack_[idx]) {
        // Back edge: contributes nothing beyond the cycle body.
        static const ParkSummary none;
        return none;
    }
    onStack_[idx] = true;
    ParkSummary result = computePark(idx);
    onStack_[idx] = false;
    return parkMemo_.emplace(idx, std::move(result)).first->second;
}

ParkSummary
CallGraph::computePark(int idx)
{
    ParkSummary best;
    for (const CallSite &c : syncCalls(idx)) {
        ParkSummary s = callParkSummary(idx, c);
        if (s.kind > best.kind)
            best = std::move(s);
        if (best.kind == ParkKind::Indefinite)
            break; // cannot get stronger
    }
    return best;
}

const std::map<std::string, LockAcq> &
CallGraph::lockSummary(int idx)
{
    auto it = lockMemo_.find(idx);
    if (it != lockMemo_.end())
        return it->second;
    if (onStack_[idx]) {
        static const std::map<std::string, LockAcq> none;
        return none;
    }
    onStack_[idx] = true;
    auto result = computeLocks(idx);
    onStack_[idx] = false;
    return lockMemo_.emplace(idx, std::move(result)).first->second;
}

std::map<std::string, LockAcq>
CallGraph::computeLocks(int idx)
{
    std::map<std::string, LockAcq> out;
    const Function &f = prog_.functions[static_cast<std::size_t>(idx)];
    // Direct acquisitions in this body and non-deferred lambdas.
    std::vector<int> bodies{idx};
    auto kids = lambdas_.find(idx);
    if (kids != lambdas_.end()) {
        for (int kid : kids->second) {
            if (!prog_.functions[static_cast<std::size_t>(kid)]
                     .deferred)
                bodies.push_back(kid);
        }
    }
    for (int b : bodies) {
        const Function &bf =
            prog_.functions[static_cast<std::size_t>(b)];
        for (const LockEvent &e : bf.lockEvents) {
            if (!e.acquire || out.count(e.lockId) != 0)
                continue;
            std::ostringstream os;
            os << prog_.fileOf(bf).path << ":" << e.line << ": "
               << f.qualName << " acquires " << e.lockId;
            out[e.lockId].witness.push_back(os.str());
        }
    }
    // Transitive acquisitions through synchronous calls.
    for (const CallSite &c : syncCalls(idx)) {
        for (int def : resolveDefs(c)) {
            if (def == idx)
                continue;
            for (const auto &entry : lockSummary(def)) {
                if (out.count(entry.first) != 0)
                    continue;
                LockAcq acq;
                acq.witness.push_back(callStep(idx, c));
                acq.witness.insert(acq.witness.end(),
                                   entry.second.witness.begin(),
                                   entry.second.witness.end());
                out.emplace(entry.first, std::move(acq));
            }
        }
    }
    return out;
}

} // namespace genesys::analysis
