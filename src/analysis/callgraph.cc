#include "analysis/callgraph.hh"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace genesys::analysis
{

namespace
{

/// Memo key component: the sign context, joined deterministically.
std::string
ctxKey(const std::set<std::string> &ctx)
{
    std::string key;
    for (const std::string &s : ctx) {
        key += s;
        key += ',';
    }
    return key;
}

} // namespace

const char *
parkKindName(ParkKind k)
{
    switch (k) {
    case ParkKind::None:
        return "none";
    case ParkKind::Bounded:
        return "bounded";
    case ParkKind::Indefinite:
        return "indefinite";
    }
    return "?";
}

CallGraph::CallGraph(const Program &prog) : prog_(prog)
{
    // Parking primitives, by the name a call site spells. Indefinite:
    // woken only by another party that may never act. Bounded: the
    // resource is guaranteed to free (cores, DMA channels, bands).
    seeds_["wait"] = ParkKind::Indefinite;
    seeds_["arriveAndWait"] = ParkKind::Indefinite;
    seeds_["epoll_wait"] = ParkKind::Indefinite;
    seeds_["acquire"] = ParkKind::Bounded;
    seeds_["acquireCore"] = ParkKind::Bounded;
    seeds_["wait_for"] = ParkKind::Bounded;
    seeds_["wait_until"] = ParkKind::Bounded;

    // Noreturn terminators: the program is dead past these, so their
    // bodies (error printing through the stdio model) must not feed
    // park or lock facts into the callers' summaries.
    terminals_.insert("panic");
    terminals_.insert("fatal");
    terminals_.insert("abort");
    terminals_.insert("exit");
    terminals_.insert("terminate");

    for (std::size_t i = 0; i < prog_.functions.size(); ++i) {
        const Function &f = prog_.functions[i];
        if (f.parent >= 0)
            lambdas_[f.parent].push_back(static_cast<int>(i));
    }
}

bool
CallGraph::arityOk(const CallSite &call, int def) const
{
    if (call.argCount < 0)
        return true; // unparsed site: stay conservative
    const Function &f =
        prog_.functions[static_cast<std::size_t>(def)];
    if (f.minArgs >= 0 && call.argCount < f.minArgs)
        return false;
    if (f.maxArgs >= 0 && call.argCount > f.maxArgs)
        return false;
    return true;
}

std::vector<int>
CallGraph::resolveDefs(const CallSite &call) const
{
    std::vector<int> out;
    if (terminals_.count(call.callee) != 0)
        return out;
    auto defs = prog_.byShortName.find(call.callee);
    if (defs == prog_.byShortName.end())
        return out;
    if (call.qualifier.empty()) {
        for (int def : defs->second) {
            if (arityOk(call, def))
                out.push_back(def);
        }
        return out;
    }
    const std::string want = call.qualifier + "::" + call.callee;
    const std::string wantSuffix = "::" + want;
    for (int def : defs->second) {
        const std::string &qual =
            prog_.functions[static_cast<std::size_t>(def)].qualName;
        if ((qual == want ||
             (qual.size() > wantSuffix.size() &&
              qual.compare(qual.size() - wantSuffix.size(),
                           wantSuffix.size(), wantSuffix) == 0)) &&
            arityOk(call, def))
            out.push_back(def);
    }
    return out;
}

std::string
CallGraph::callStep(int fromIdx, const CallSite &call) const
{
    const Function &f =
        prog_.functions[static_cast<std::size_t>(fromIdx)];
    std::ostringstream os;
    os << prog_.fileOf(f).path << ":" << call.line << ": "
       << f.qualName << " -> " << call.callee;
    return os.str();
}

const std::vector<CallSite> &
CallGraph::syncCalls(int idx)
{
    auto it = syncMemo_.find(idx);
    if (it != syncMemo_.end())
        return it->second;
    std::vector<CallSite> out;
    // Walk this function plus all transitively non-deferred lambdas.
    std::vector<int> stack{idx};
    while (!stack.empty()) {
        const int cur = stack.back();
        stack.pop_back();
        const Function &f =
            prog_.functions[static_cast<std::size_t>(cur)];
        for (const CallSite &c : f.calls) {
            if (!c.deferred)
                out.push_back(c);
        }
        auto kids = lambdas_.find(cur);
        if (kids == lambdas_.end())
            continue;
        for (int kid : kids->second) {
            if (!prog_.functions[static_cast<std::size_t>(kid)]
                     .deferred)
                stack.push_back(kid);
        }
    }
    return syncMemo_.emplace(idx, std::move(out)).first->second;
}

std::set<std::string>
CallGraph::calleeCtx(const CallSite &call, int def,
                     const std::set<std::string> &ctx) const
{
    std::set<std::string> out;
    const Function &cf =
        prog_.functions[static_cast<std::size_t>(def)];
    const std::size_t n =
        std::min(call.args.size(), cf.params.size());
    for (std::size_t p = 0; p < n; ++p) {
        const std::string &a = call.args[p];
        if (a.empty() || cf.params[p].empty())
            continue;
        // Number tokens never carry a sign, so a literal argument is
        // always non-negative.
        const bool literal =
            std::isdigit(static_cast<unsigned char>(a[0])) != 0;
        if (literal || call.nonNegHere.count(a) != 0 ||
            ctx.count(a) != 0)
            out.insert(cf.params[p]);
    }
    return out;
}

ParkSummary
CallGraph::callParkSummary(int fromIdx, const CallSite &call)
{
    static const std::set<std::string> empty;
    return callParkSummary(fromIdx, call, empty);
}

ParkSummary
CallGraph::callParkSummary(int fromIdx, const CallSite &call,
                           const std::set<std::string> &ctx)
{
    ParkSummary best;
    if (terminals_.count(call.callee) != 0)
        return best;
    // Unreachable under this context: the site sits behind an
    // `x >= 0` early return while the caller guarantees x >= 0.
    for (const std::string &n : call.negHere) {
        if (ctx.count(n) != 0)
            return best;
    }
    auto seed = seeds_.find(call.callee);
    if (seed != seeds_.end() && call.qualifier.empty()) {
        best.kind = seed->second;
        const Function &f =
            prog_.functions[static_cast<std::size_t>(fromIdx)];
        std::ostringstream os;
        os << prog_.fileOf(f).path << ":" << call.line << ": "
           << call.callee << "() parks ("
           << parkKindName(seed->second) << ")";
        best.witness.push_back(os.str());
        return best;
    }
    for (int def : resolveDefs(call)) {
        if (def == fromIdx)
            continue;
        const ParkSummary &sub =
            parkSummary(def, calleeCtx(call, def, ctx));
        if (sub.kind > best.kind) {
            best.kind = sub.kind;
            best.witness.clear();
            best.witness.push_back(callStep(fromIdx, call));
            best.witness.insert(best.witness.end(),
                                sub.witness.begin(),
                                sub.witness.end());
        }
    }
    return best;
}

const ParkSummary &
CallGraph::parkSummary(int idx)
{
    static const std::set<std::string> empty;
    return parkSummary(idx, empty);
}

const ParkSummary &
CallGraph::parkSummary(int idx, const std::set<std::string> &ctx)
{
    auto key = std::make_pair(idx, ctxKey(ctx));
    auto it = parkMemo_.find(key);
    if (it != parkMemo_.end())
        return it->second;
    if (onStack_[idx]) {
        // Back edge: contributes nothing beyond the cycle body.
        static const ParkSummary none;
        return none;
    }
    onStack_[idx] = true;
    ParkSummary result = computePark(idx, ctx);
    onStack_[idx] = false;
    return parkMemo_.emplace(std::move(key), std::move(result))
        .first->second;
}

ParkSummary
CallGraph::computePark(int idx, const std::set<std::string> &ctx)
{
    ParkSummary best;
    for (const CallSite &c : syncCalls(idx)) {
        ParkSummary s = callParkSummary(idx, c, ctx);
        if (s.kind > best.kind)
            best = std::move(s);
        if (best.kind == ParkKind::Indefinite)
            break; // cannot get stronger
    }
    return best;
}

const std::map<std::string, LockAcq> &
CallGraph::lockSummary(int idx)
{
    auto it = lockMemo_.find(idx);
    if (it != lockMemo_.end())
        return it->second;
    if (onStack_[idx]) {
        static const std::map<std::string, LockAcq> none;
        return none;
    }
    onStack_[idx] = true;
    auto result = computeLocks(idx);
    onStack_[idx] = false;
    return lockMemo_.emplace(idx, std::move(result)).first->second;
}

std::map<std::string, LockAcq>
CallGraph::computeLocks(int idx)
{
    std::map<std::string, LockAcq> out;
    const Function &f = prog_.functions[static_cast<std::size_t>(idx)];
    // Direct acquisitions in this body and non-deferred lambdas.
    std::vector<int> bodies{idx};
    auto kids = lambdas_.find(idx);
    if (kids != lambdas_.end()) {
        for (int kid : kids->second) {
            if (!prog_.functions[static_cast<std::size_t>(kid)]
                     .deferred)
                bodies.push_back(kid);
        }
    }
    for (int b : bodies) {
        const Function &bf =
            prog_.functions[static_cast<std::size_t>(b)];
        for (const LockEvent &e : bf.lockEvents) {
            if (!e.acquire || out.count(e.lockId) != 0)
                continue;
            std::ostringstream os;
            os << prog_.fileOf(bf).path << ":" << e.line << ": "
               << f.qualName << " acquires " << e.lockId;
            out[e.lockId].witness.push_back(os.str());
        }
    }
    // Transitive acquisitions through synchronous calls.
    for (const CallSite &c : syncCalls(idx)) {
        for (int def : resolveDefs(c)) {
            if (def == idx)
                continue;
            for (const auto &entry : lockSummary(def)) {
                if (out.count(entry.first) != 0)
                    continue;
                LockAcq acq;
                acq.witness.push_back(callStep(idx, c));
                acq.witness.insert(acq.witness.end(),
                                   entry.second.witness.begin(),
                                   entry.second.witness.end());
                out.emplace(entry.first, std::move(acq));
            }
        }
    }
    return out;
}

} // namespace genesys::analysis
