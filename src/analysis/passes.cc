#include "analysis/passes.hh"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "analysis/flowpasses.hh"

namespace genesys::analysis
{

namespace
{

// ---- pass 1: may-park ------------------------------------------------

struct HandlerRow
{
    std::string sysnoName;
    std::string handlerName;
    int fileIndex = 0;
    int line = 0;
};

/// Recover `install(sysno::X, "x", sysX)` rows from the token stream.
std::vector<HandlerRow>
scanHandlerRows(const Program &prog)
{
    std::vector<HandlerRow> rows;
    for (std::size_t fi = 0; fi < prog.files.size(); ++fi) {
        const auto &toks = prog.files[fi].tokens;
        for (std::size_t i = 0; i + 8 < toks.size(); ++i) {
            if (toks[i].kind != TokKind::Ident ||
                toks[i].text != "install")
                continue;
            const bool shape =
                toks[i + 1].kind == TokKind::Punct &&
                toks[i + 1].text == "(" &&
                toks[i + 2].kind == TokKind::Ident &&
                toks[i + 2].text == "sysno" &&
                toks[i + 3].kind == TokKind::Punct &&
                toks[i + 3].text == "::" &&
                toks[i + 4].kind == TokKind::Ident &&
                toks[i + 5].kind == TokKind::Punct &&
                toks[i + 5].text == "," &&
                toks[i + 6].kind == TokKind::String &&
                toks[i + 7].kind == TokKind::Punct &&
                toks[i + 7].text == "," &&
                toks[i + 8].kind == TokKind::Ident;
            if (!shape)
                continue;
            HandlerRow row;
            row.sysnoName = toks[i + 4].text;
            row.handlerName = toks[i + 8].text;
            row.fileIndex = static_cast<int>(fi);
            row.line = toks[i].line;
            rows.push_back(std::move(row));
        }
    }
    return rows;
}

/// The sysnos the runtime classifies may-block-indefinitely: every
/// `sysno::X` referenced inside `mayBlockIndefinitely`.
std::set<std::string>
blockingClassification(const Program &prog)
{
    std::set<std::string> out;
    auto defs = prog.byShortName.find("mayBlockIndefinitely");
    if (defs == prog.byShortName.end())
        return out;
    for (int idx : defs->second) {
        const Function &f =
            prog.functions[static_cast<std::size_t>(idx)];
        for (const SysnoRef &r : f.sysnoRefs)
            out.insert(r.name);
    }
    return out;
}

// ---- pass 2: lock order ----------------------------------------------

struct LockEdge
{
    std::string from;
    std::string to;
    std::string path;
    int line = 0;
    std::vector<std::string> witness;
};

void
addEdge(std::map<std::pair<std::string, std::string>, LockEdge> &edges,
        LockEdge edge)
{
    auto key = std::make_pair(edge.from, edge.to);
    if (edges.count(key) == 0)
        edges.emplace(std::move(key), std::move(edge));
}

} // namespace

std::vector<Finding>
runMayParkPass(CallGraph &cg)
{
    const Program &prog = cg.program();
    std::vector<Finding> findings;

    // Rule nonblocking-handler-parks: handler outside the blocking
    // classification reaches an indefinite park.
    const std::set<std::string> blocking = blockingClassification(prog);
    for (const HandlerRow &row : scanHandlerRows(prog)) {
        if (blocking.count(row.sysnoName) != 0)
            continue;
        auto defs = prog.byShortName.find(row.handlerName);
        if (defs == prog.byShortName.end())
            continue;
        for (int idx : defs->second) {
            const ParkSummary &s = cg.parkSummary(idx);
            if (s.kind != ParkKind::Indefinite)
                continue;
            const Function &f =
                prog.functions[static_cast<std::size_t>(idx)];
            Finding fd;
            fd.path = prog.fileOf(f).path;
            fd.line = f.line;
            fd.rule = "nonblocking-handler-parks";
            fd.message =
                "handler " + row.handlerName + " for syscall '" +
                row.sysnoName +
                "' is classified non-blocking (absent from "
                "mayBlockIndefinitely) but can park indefinitely";
            fd.witness = s.witness;
            findings.push_back(std::move(fd));
        }
    }

    for (std::size_t i = 0; i < prog.functions.size(); ++i) {
        const Function &f = prog.functions[i];
        const int idx = static_cast<int>(i);

        // Rule drain-loop-park: the ring consumer must stay runnable;
        // an indefinite park wedges every shard behind this one.
        if (f.shortName == "ringConsumeTask") {
            const ParkSummary &s = cg.parkSummary(idx);
            if (s.kind == ParkKind::Indefinite) {
                Finding fd;
                fd.path = prog.fileOf(f).path;
                fd.line = f.line;
                fd.rule = "drain-loop-park";
                fd.message = "ring consumer drain loop " + f.qualName +
                             " can park indefinitely";
                fd.witness = s.witness;
                findings.push_back(std::move(fd));
            }
        }

        // Rule park-under-lock: no park of any kind with a lock held.
        for (const CallSite &c : f.calls) {
            if (c.deferred || c.heldLocks.empty())
                continue;
            ParkSummary s = cg.callParkSummary(idx, c);
            if (s.kind == ParkKind::None)
                continue;
            Finding fd;
            fd.path = prog.fileOf(f).path;
            fd.line = c.line;
            fd.rule = "park-under-lock";
            fd.message = f.qualName + " may park (" +
                         parkKindName(s.kind) + ") while holding " +
                         c.heldLocks.front();
            fd.witness = s.witness;
            findings.push_back(std::move(fd));
        }
    }
    return findings;
}

std::vector<Finding>
runLockOrderPass(CallGraph &cg)
{
    const Program &prog = cg.program();
    std::map<std::pair<std::string, std::string>, LockEdge> edges;

    for (std::size_t i = 0; i < prog.functions.size(); ++i) {
        const Function &f = prog.functions[i];
        const int idx = static_cast<int>(i);
        const std::string &path = prog.fileOf(f).path;

        // Direct acquisition-order edges within one body.
        for (const LockEvent &e : f.lockEvents) {
            if (!e.acquire)
                continue;
            for (const std::string &held : e.heldBefore) {
                LockEdge edge;
                edge.from = held;
                edge.to = e.lockId;
                edge.path = path;
                edge.line = e.line;
                std::ostringstream os;
                os << path << ":" << e.line << ": " << f.qualName
                   << " acquires " << e.lockId << " while holding "
                   << held;
                edge.witness.push_back(os.str());
                addEdge(edges, std::move(edge));
            }
        }

        // Edges through calls made with locks held: the callee may
        // acquire more locks (transitively).
        for (const CallSite &c : f.calls) {
            if (c.deferred || c.heldLocks.empty())
                continue;
            for (int def : cg.resolveDefs(c)) {
                if (def == idx)
                    continue;
                for (const auto &acq : cg.lockSummary(def)) {
                    for (const std::string &held : c.heldLocks) {
                        LockEdge edge;
                        edge.from = held;
                        edge.to = acq.first;
                        edge.path = path;
                        edge.line = c.line;
                        edge.witness.push_back(
                            cg.callStep(idx, c) + " (holding " +
                            held + ")");
                        edge.witness.insert(
                            edge.witness.end(),
                            acq.second.witness.begin(),
                            acq.second.witness.end());
                        addEdge(edges, std::move(edge));
                    }
                }
            }
        }
    }

    // Cycle detection: for each node (in sorted order), BFS for the
    // shortest path back to itself; report the cycle only from its
    // lexicographically smallest member so each cycle appears once.
    std::map<std::string, std::vector<std::string>> adj;
    for (const auto &entry : edges)
        adj[entry.first.first].push_back(entry.first.second);

    std::vector<Finding> findings;
    std::set<std::string> reported;
    for (const auto &node : adj) {
        const std::string &start = node.first;
        // BFS from start; parent map reconstructs the cycle.
        std::map<std::string, std::string> parent;
        std::vector<std::string> queue{start};
        std::set<std::string> seen{start};
        std::string last; // predecessor of start on the cycle
        bool closed = false;
        for (std::size_t qi = 0; qi < queue.size() && !closed; ++qi) {
            const std::string cur = queue[qi];
            auto next = adj.find(cur);
            if (next == adj.end())
                continue;
            for (const std::string &to : next->second) {
                if (to == start) {
                    last = cur;
                    closed = true;
                    break;
                }
                if (seen.insert(to).second) {
                    parent[to] = cur;
                    queue.push_back(to);
                }
            }
        }
        if (!closed)
            continue;
        // Reconstruct start -> ... -> last -> start.
        std::vector<std::string> cycle;
        for (std::string cur = last; cur != start; cur = parent[cur])
            cycle.push_back(cur);
        cycle.push_back(start);
        std::reverse(cycle.begin(), cycle.end());
        // Only report from the smallest member (self-loops trivially
        // qualify), and only once per member set.
        if (*std::min_element(cycle.begin(), cycle.end()) != start)
            continue;
        std::string canon;
        for (const auto &n : std::set<std::string>(cycle.begin(),
                                                   cycle.end()))
            canon += n + "|";
        if (!reported.insert(canon).second)
            continue;

        Finding fd;
        fd.rule = "lock-order-cycle";
        std::string order;
        for (const std::string &n : cycle)
            order += n + " -> ";
        order += start;
        fd.message = "lock acquisition order cycle: " + order;
        for (std::size_t k = 0; k < cycle.size(); ++k) {
            const std::string &from = cycle[k];
            const std::string &to =
                cycle[(k + 1) % cycle.size()];
            const LockEdge &e = edges.at({from, to});
            if (k == 0) {
                fd.path = e.path;
                fd.line = e.line;
            }
            fd.witness.push_back("edge " + from + " -> " + to + ":");
            fd.witness.insert(fd.witness.end(), e.witness.begin(),
                              e.witness.end());
        }
        findings.push_back(std::move(fd));
    }
    return findings;
}

std::vector<Finding>
runOrderingPass(const Program &prog)
{
    // The gsan annotation API's own implementation is exempt: those
    // bodies define the annotations, they do not use them.
    const std::set<std::string> annotationImpls = {
        "ringPublish", "ringConsume", "ringConsumeRacy", "ringObserve",
        "ringDoorbell"};

    auto endsWith = [](const std::string &s, const std::string &suf) {
        return s.size() >= suf.size() &&
               s.compare(s.size() - suf.size(), suf.size(), suf) == 0;
    };

    std::vector<Finding> findings;
    for (const Function &f : prog.functions) {
        const LexedFile &file = prog.fileOf(f);
        if (annotationImpls.count(f.shortName) != 0)
            continue;

        bool hasConsume = false;
        bool hasTailStore = false;
        bool hasHeadStore = false;
        std::vector<std::size_t> loadIdx;
        for (const CallSite &c : f.calls) {
            // ringConsumeRacy is a deliberate-race annotation: the
            // body documents an unordered read, which is exactly what
            // this rule wants made explicit.
            if (c.callee == "ringConsume" ||
                c.callee == "ringConsumeRacy")
                hasConsume = true;
            else if (c.callee == "storeTailRelease")
                hasTailStore = true;
            else if (c.callee == "storeHeadRelease")
                hasHeadStore = true;
            else if (c.callee == "loadHeadAcquire" ||
                     c.callee == "loadTailAcquire")
                loadIdx.push_back(c.tokenIndex);
        }

        for (const CallSite &c : f.calls) {
            const bool isStore = c.callee == "storeTailRelease" ||
                                 c.callee == "storeHeadRelease";
            if (isStore) {
                // The acquire load may sit inside the store's own
                // argument list: accept any load before the store
                // call's closing paren.
                std::size_t close = c.tokenIndex + 1;
                int depth = 0;
                for (; close < file.tokens.size(); ++close) {
                    const Token &t = file.tokens[close];
                    if (t.kind == TokKind::Punct && t.text == "(")
                        ++depth;
                    else if (t.kind == TokKind::Punct &&
                             t.text == ")" && --depth == 0)
                        break;
                }
                const bool paired = std::any_of(
                    loadIdx.begin(), loadIdx.end(),
                    [close](std::size_t li) { return li < close; });
                if (!paired) {
                    Finding fd;
                    fd.path = file.path;
                    fd.line = c.line;
                    fd.rule = "unpaired-release";
                    fd.message =
                        c.callee + " in " + f.qualName +
                        " has no prior acquire load of a ring "
                        "counter in the same body";
                    findings.push_back(std::move(fd));
                }
            }
            if (c.callee == "ringPublish" && !hasTailStore) {
                Finding fd;
                fd.path = file.path;
                fd.line = c.line;
                fd.rule = "unpaired-hb-annotation";
                fd.message =
                    "ringPublish annotation in " + f.qualName +
                    " models a publish, but the body performs no "
                    "storeTailRelease";
                findings.push_back(std::move(fd));
            }
            if (c.callee == "ringConsume" && !hasHeadStore) {
                Finding fd;
                fd.path = file.path;
                fd.line = c.line;
                fd.rule = "unpaired-hb-annotation";
                fd.message =
                    "ringConsume annotation in " + f.qualName +
                    " models a consume, but the body performs no "
                    "storeHeadRelease";
                findings.push_back(std::move(fd));
            }
        }

        for (const EntriesAccess &a : f.entriesAccesses) {
            if (a.isWrite || hasConsume)
                continue;
            // A read already ordered after an acquire load of a ring
            // counter in the same body (the bounds-check reclaim
            // pattern: assert head/tail, then read) is disciplined
            // without a separate annotation.
            const bool afterLoad = std::any_of(
                loadIdx.begin(), loadIdx.end(),
                [&a](std::size_t li) { return li < a.tokenIndex; });
            if (afterLoad)
                continue;
            Finding fd;
            fd.path = file.path;
            fd.line = a.line;
            fd.rule = "unannotated-consume";
            fd.message = "entries_ read in " + f.qualName +
                         " without a ringConsume() acquire "
                         "annotation in the same body";
            findings.push_back(std::move(fd));
        }

        if (!endsWith(file.path, "core/ring.hh")) {
            for (const RawCounterUse &u : f.rawCounters) {
                Finding fd;
                fd.path = file.path;
                fd.line = u.line;
                fd.rule = "raw-counter-access";
                fd.message =
                    "raw ring counter " + u.counter + " accessed in " +
                    f.qualName +
                    "; only core/ring.hh accessors may touch it";
                findings.push_back(std::move(fd));
            }
        }
    }
    return findings;
}

std::vector<Finding>
runPasses(const Program &prog, const PassSet &ps)
{
    CallGraph cg(prog);
    std::vector<Finding> findings;
    auto append = [&findings](std::vector<Finding> more) {
        findings.insert(findings.end(),
                        std::make_move_iterator(more.begin()),
                        std::make_move_iterator(more.end()));
    };
    if (ps.mayPark)
        append(runMayParkPass(cg));
    if (ps.lockOrder)
        append(runLockOrderPass(cg));
    if (ps.ordering)
        append(runOrderingPass(prog));
    if (ps.ownership)
        append(runOwnershipPass(cg));
    if (ps.taint)
        append(runTaintPass(cg));
    sortFindings(findings);
    return findings;
}

std::vector<Finding>
runAllPasses(const Program &prog)
{
    return runPasses(prog, PassSet{});
}

} // namespace genesys::analysis
