/**
 * @file
 * gflow's ownership and GPU-taint dataflow passes (DESIGN.md §16).
 *
 * Both passes lower each root function (lambda bodies stay inside
 * their parent's statement spans; their call sites are merged back by
 * token index) and enumerate paths with the PathWalker. Ownership
 * tracks an acquire→release lattice per resource variable with
 * branch-edge kill semantics for conditional acquires; taint tracks a
 * tainted/bounded/window lattice with direction-aware sanitizers and
 * bottom-up callee parameter summaries.
 */

#include "analysis/flowpasses.hh"

#include <algorithm>
#include <cstdio>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "analysis/cfg.hh"
#include "analysis/dataflow.hh"

namespace genesys::analysis
{

namespace
{

bool
isId(const Token &t)
{
    return t.kind == TokKind::Ident;
}

bool
isId(const Token &t, const char *text)
{
    return t.kind == TokKind::Ident && t.text == text;
}

bool
isP(const Token &t, const char *text)
{
    return t.kind == TokKind::Punct && t.text == text;
}

std::string
fmtStep(const std::string &path, int line, const std::string &what)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, ":%d: ", line);
    return path + buf + what;
}

/** All call sites lexically inside functions[rootIdx]'s span: its own
 *  plus every descendant lambda's, sorted by token index. */
std::vector<const CallSite *>
collectCalls(const Program &prog, int rootIdx)
{
    std::vector<const CallSite *> out;
    for (std::size_t fi = 0; fi < prog.functions.size(); ++fi) {
        int cur = static_cast<int>(fi);
        bool under = false;
        while (cur >= 0) {
            if (cur == rootIdx) {
                under = true;
                break;
            }
            cur = prog.functions[static_cast<std::size_t>(cur)].parent;
        }
        if (!under)
            continue;
        for (const CallSite &c : prog.functions[fi].calls)
            out.push_back(&c);
    }
    std::sort(out.begin(), out.end(),
              [](const CallSite *a, const CallSite *b) {
                  return a->tokenIndex < b->tokenIndex;
              });
    return out;
}

/** Calls whose name token lies in [b, e). */
template <typename Fn>
void
forCallsIn(const std::vector<const CallSite *> &calls, std::size_t b,
           std::size_t e, Fn fn)
{
    for (const CallSite *c : calls) {
        if (c->tokenIndex >= e)
            break;
        if (c->tokenIndex >= b)
            fn(*c);
    }
}

/** Top-level '=' of span [b, e): returns its index (or e) and whether
 *  it is a compound assignment (+=, &=, ...). Comparison operators
 *  and nested spans are skipped. */
std::pair<std::size_t, bool>
findAssign(const std::vector<Token> &toks, std::size_t b, std::size_t e)
{
    int depth = 0;
    for (std::size_t j = b; j < e; ++j) {
        const Token &t = toks[j];
        if (isP(t, "(") || isP(t, "[") || isP(t, "{")) {
            ++depth;
            continue;
        }
        if (isP(t, ")") || isP(t, "]") || isP(t, "}")) {
            --depth;
            continue;
        }
        if (depth != 0 || !isP(t, "="))
            continue;
        if (j + 1 < e && isP(toks[j + 1], "="))
            { ++j; continue; } // ==
        if (j > b && (isP(toks[j - 1], "=") || isP(toks[j - 1], "!") ||
                      isP(toks[j - 1], "<") || isP(toks[j - 1], ">")))
            continue; // ==, !=, <=, >=
        if (j > b && (isP(toks[j - 1], "+") || isP(toks[j - 1], "-") ||
                      isP(toks[j - 1], "*") || isP(toks[j - 1], "/") ||
                      isP(toks[j - 1], "%") || isP(toks[j - 1], "&") ||
                      isP(toks[j - 1], "|") || isP(toks[j - 1], "^")))
            return {j, true};
        return {j, false};
    }
    return {e, false};
}

/** Declared/assigned variable of a plain assignment: the last
 *  identifier of [b, eq) — "" when the lhs is a member, subscript, or
 *  dereferenced store rather than a simple variable. */
std::string
lhsVar(const std::vector<Token> &toks, std::size_t b, std::size_t eq)
{
    std::string last;
    for (std::size_t j = b; j < eq; ++j) {
        const Token &t = toks[j];
        if (isP(t, ".") || isP(t, "->") || isP(t, "["))
            return "";
        if (!isId(t))
            continue;
        if (j + 1 < eq && isP(toks[j + 1], "::"))
            continue;
        if (j > b && isP(toks[j - 1], "::"))
            continue;
        last = t.text;
    }
    return last;
}

/** Variable bound by the nearest '=' left of token @p at inside
 *  [b, at): handles parenthesized forms like `while ((x = f()))`. */
std::string
boundVarBefore(const std::vector<Token> &toks, std::size_t b,
               std::size_t at)
{
    for (std::size_t j = at; j > b; --j) {
        if (!isP(toks[j - 1], "="))
            continue;
        if (j >= 2 && (isP(toks[j - 2], "=") || isP(toks[j - 2], "!") ||
                       isP(toks[j - 2], "<") || isP(toks[j - 2], ">")))
            continue;
        if (j < at && isP(toks[j], "="))
            continue;
        if (j >= 2 && isId(toks[j - 2]))
            return toks[j - 2].text;
        return "";
    }
    return "";
}

/** Per-position argument token spans of a call site. Template heads
 *  (`as<int>(0)`) are skipped so their commas don't split. */
std::vector<std::pair<std::size_t, std::size_t>>
argSpans(const std::vector<Token> &toks, const CallSite &cs)
{
    std::vector<std::pair<std::size_t, std::size_t>> out;
    std::size_t lp = cs.tokenIndex + 1;
    // `f<T>(...)`: hop over the template section to the '('.
    if (lp < toks.size() && isP(toks[lp], "<")) {
        int d = 0;
        for (std::size_t j = lp; j < toks.size() && j < lp + 24; ++j) {
            if (isP(toks[j], "<"))
                ++d;
            else if (isP(toks[j], ">") && --d == 0) {
                lp = j + 1;
                break;
            }
        }
    }
    if (lp >= toks.size() || !isP(toks[lp], "("))
        return out;
    int depth = 0;
    std::size_t start = lp + 1;
    for (std::size_t j = lp; j < toks.size(); ++j) {
        const Token &t = toks[j];
        if (isP(t, "(") || isP(t, "[") || isP(t, "{")) {
            ++depth;
            continue;
        }
        if (isP(t, ")") || isP(t, "]") || isP(t, "}")) {
            if (--depth == 0) {
                if (j > start)
                    out.push_back({start, j});
                return out;
            }
            continue;
        }
        if (depth == 1 && isP(t, ",")) {
            out.push_back({start, j});
            start = j + 1;
        } else if (depth == 1 && isId(t) && j + 1 < toks.size() &&
                   isP(toks[j + 1], "<")) {
            // Possible template head inside an argument.
            int d = 0;
            for (std::size_t k = j + 1;
                 k < toks.size() && k < j + 24; ++k) {
                if (isP(toks[k], "<"))
                    ++d;
                else if (isP(toks[k], ">")) {
                    if (--d == 0) {
                        if (k + 1 < toks.size() &&
                            isP(toks[k + 1], "("))
                            j = k;
                        break;
                    }
                } else if (isP(toks[k], ";") || isP(toks[k], ","))
                    break;
            }
        }
    }
    return out;
}

bool
spanHasIdent(const std::vector<Token> &toks, std::size_t b,
             std::size_t e, const char *name)
{
    for (std::size_t j = b; j < e; ++j)
        if (isId(toks[j], name))
            return true;
    return false;
}

// ====================================================================
// Ownership pass
// ====================================================================

enum class ResKind
{
    Fd = 0,
    RingClaim,
    Slot,
    NetSeg,
    Epoll,
};

const char *
resKindName(ResKind k)
{
    switch (k) {
    case ResKind::Fd:
        return "fd";
    case ResKind::RingClaim:
        return "ring-claim";
    case ResKind::Slot:
        return "slot";
    case ResKind::NetSeg:
        return "netseg-loan";
    case ResKind::Epoll:
        return "epoll-interest";
    }
    return "?";
}

const char *
resRule(ResKind k)
{
    switch (k) {
    case ResKind::Fd:
        return "must-release-fd";
    case ResKind::RingClaim:
        return "must-release-ring-claim";
    case ResKind::Slot:
        return "must-release-slot";
    case ResKind::NetSeg:
        return "must-release-netseg";
    case ResKind::Epoll:
        return "must-release-epoll";
    }
    return "?";
}

const char *
resReleaseName(ResKind k)
{
    switch (k) {
    case ResKind::Fd:
        return "close()";
    case ResKind::RingClaim:
        return "tryPublish()";
    case ResKind::Slot:
        return "complete()";
    case ResKind::NetSeg:
        return "transferring the loaned segments to an owner";
    case ResKind::Epoll:
        return "EPOLL_CTL_DEL";
    }
    return "?";
}

struct Res
{
    ResKind kind = ResKind::Fd;
    std::string var;
    int line = 0;
    /// Acquire may have failed; killed by the failure edge
    /// (Falsy / negative-result facts) until confirmed.
    bool conditional = false;
};

struct OwnState
{
    std::map<std::string, Res> live;
    /// aliasVar -> live key (`auto &seg = segs[i]`).
    std::map<std::string, std::string> alias;
    /// guardVar -> live key: a variable whose sign decides whether
    /// the acquire happened (`got = readSegments(...)`).
    std::map<std::string, std::string> guard;
    std::set<std::string> posKnown; ///< proven > 0
    std::set<std::string> zeroInit; ///< last assigned literal 0
    bool dead = false;              ///< contradictory branch facts
};

/// Container-handoff callees that transfer ownership of an argument.
const std::set<std::string> &
escapeSinks()
{
    static const std::set<std::string> s = {
        "push_back", "emplace_back", "insert", "emplace", "assign",
    };
    return s;
}

class OwnershipPass
{
  public:
    explicit OwnershipPass(CallGraph &cg)
        : cg_(cg), prog_(cg.program())
    {
    }

    std::vector<Finding>
    run()
    {
        for (std::size_t i = 0; i < prog_.functions.size(); ++i) {
            const Function &fn = prog_.functions[i];
            if (fn.isLambda || fn.parent >= 0 ||
                fn.bodyEnd <= fn.bodyBegin + 1)
                continue;
            analyze(static_cast<int>(i));
        }
        sortFindings(findings_);
        return std::move(findings_);
    }

    // --- PathWalker client interface -------------------------------
    void
    onSimple(const FlowStmt &s, OwnState &st)
    {
        processSpan(s.begin, s.end, st, false);
    }

    void
    onCondition(const FlowStmt &s, OwnState &st)
    {
        processSpan(s.condBegin, s.condEnd, st, false);
    }

    void
    onBranch(const FlowStmt &s, bool sense, OwnState &st)
    {
        const auto facts =
            parseCondFacts(*toks_, s.condBegin, s.condEnd, sense);
        for (const CondFact &f : facts)
            applyFact(f, st);
    }

    void
    onRangeFor(const FlowStmt &s, OwnState &st)
    {
        if (s.loopVar.empty())
            return;
        const std::string key = resolve(st, s.rangeRoot);
        if (!key.empty())
            st.alias[s.loopVar] = key;
    }

    void
    onExit(const FlowStmt *s, ExitKind kind, OwnState &st,
           const std::vector<PathStep> &trace)
    {
        if (st.dead || kind == ExitKind::InfiniteLoop ||
            st.live.empty())
            return;
        // A resource whose root appears in the return (or throw)
        // value transfers to the caller.
        if (s != nullptr) {
            for (std::size_t j = s->begin; j < s->end; ++j) {
                if (!isId((*toks_)[j]))
                    continue;
                const std::string key =
                    resolve(st, (*toks_)[j].text);
                if (!key.empty())
                    st.live.erase(key);
            }
        }
        const int exitLine =
            s != nullptr ? s->line : (*toks_)[fn_->bodyEnd].line;
        const char *how = kind == ExitKind::Return ? "return"
                          : kind == ExitKind::Throw
                              ? "throw"
                              : "end of function";
        for (const auto &[var, res] : st.live) {
            const std::string key = path_ + ":" +
                                    std::to_string(res.line) + ":" +
                                    resRule(res.kind);
            if (!reported_.insert(key).second)
                continue;
            Finding f;
            f.path = path_;
            f.line = res.line;
            f.rule = resRule(res.kind);
            f.message = std::string(resKindName(res.kind)) + " '" +
                        var + "' acquired in " + fn_->qualName +
                        " leaks on a path ending at line " +
                        std::to_string(exitLine) + " (" + how +
                        ") without " + resReleaseName(res.kind);
            f.witness.push_back(fmtStep(
                path_, res.line,
                std::string("acquired ") + resKindName(res.kind) +
                    " '" + var + "' here"));
            appendTrace(f.witness, trace);
            f.witness.push_back(fmtStep(
                path_, exitLine,
                std::string("path ends (") + how + ") with '" + var +
                    "' unreleased"));
            findings_.push_back(std::move(f));
        }
    }

  private:
    void
    analyze(int fnIdx)
    {
        fn_ = &prog_.functions[static_cast<std::size_t>(fnIdx)];
        toks_ = &prog_.fileOf(*fn_).tokens;
        path_ = prog_.fileOf(*fn_).path;
        calls_ = collectCalls(prog_, fnIdx);
        const FlowTree tree = lowerFunction(prog_, fnIdx);
        PathWalker<OwnState, OwnershipPass> walker(tree, *this, 200);
        walker.run(OwnState{});
    }

    void
    appendTrace(std::vector<std::string> &witness,
                const std::vector<PathStep> &trace) const
    {
        // Keep the witness compact: first and last few decisions.
        const std::size_t n = trace.size();
        for (std::size_t j = 0; j < n; ++j) {
            if (n > 6 && j == 3) {
                witness.push_back("    ...");
                j = n - 3;
            }
            witness.push_back(fmtStep(path_, trace[j].line,
                                      trace[j].sense
                                          ? "branch taken"
                                          : "branch not taken"));
        }
    }

    /// Resolve a name through aliases to a live-resource key ("" if
    /// it doesn't name a live resource).
    std::string
    resolve(const OwnState &st, const std::string &name) const
    {
        if (name.empty())
            return "";
        auto a = st.alias.find(name);
        const std::string &key =
            a != st.alias.end() ? a->second : name;
        return st.live.count(key) != 0 ? key : "";
    }

    void
    release(OwnState &st, const std::string &key)
    {
        st.live.erase(key);
    }

    void
    processSpan(std::size_t b, std::size_t e, OwnState &st,
                bool isReturn)
    {
        if (st.dead || b >= e)
            return;
        forCallsIn(calls_, b, e, [&](const CallSite &cs) {
            if (cs.callee == "GENESYS_ASSERT") {
                // The asserted condition holds from here on: sign
                // facts (`got > 0`) feed guard confirmation and the
                // zero-iteration infeasibility check.
                const auto spans = argSpans(*toks_, cs);
                if (!spans.empty())
                    for (const CondFact &f :
                         parseCondFacts(*toks_, spans[0].first,
                                        spans[0].second, true))
                        applyFact(f, st);
                return;
            }
            handleRelease(cs, st);
            if (!isReturn)
                handleAcquire(cs, b, st);
        });
        handleAssign(b, e, st);
    }

    void
    handleRelease(const CallSite &cs, OwnState &st)
    {
        auto releaseArgRoot = [&](ResKind kind) {
            for (std::size_t p = 0; p < cs.argRoots.size(); ++p) {
                const std::string key = resolve(st, cs.argRoots[p]);
                if (key.empty())
                    continue;
                if (st.live[key].kind == kind) {
                    release(st, key);
                    return true;
                }
            }
            return false;
        };
        if (cs.callee == "close") {
            if (!cs.argRoots.empty()) {
                const std::string key = resolve(st, cs.argRoots[0]);
                if (!key.empty() &&
                    (st.live[key].kind == ResKind::Fd ||
                     st.live[key].kind == ResKind::Epoll))
                    release(st, key);
            }
            return;
        }
        if (cs.callee == "tryPublish") {
            releaseArgRoot(ResKind::RingClaim);
            return;
        }
        if (cs.callee == "complete") {
            const std::string key = resolve(st, cs.receiver);
            if (!key.empty() && st.live[key].kind == ResKind::Slot)
                release(st, key);
            return;
        }
        if (escapeSinks().count(cs.callee) != 0) {
            releaseArgRoot(ResKind::NetSeg);
            releaseArgRoot(ResKind::Fd);
            return;
        }
        if (cs.callee == "ctl") {
            for (std::size_t p = 0; p < cs.args.size(); ++p) {
                if (cs.args[p].rfind("EPOLL_CTL_DEL", 0) != 0)
                    continue;
                const std::string key =
                    p + 1 < cs.argRoots.size()
                        ? resolve(st, cs.argRoots[p + 1])
                        : std::string();
                if (!key.empty() &&
                    st.live[key].kind == ResKind::Epoll)
                    release(st, key);
                return;
            }
            return;
        }
        // std::move(x) into any call transfers ownership.
        for (std::size_t p = 0; p < cs.argRoots.size(); ++p) {
            const std::string key = resolve(st, cs.argRoots[p]);
            if (key.empty())
                continue;
            const auto spans = argSpans(*toks_, cs);
            if (p < spans.size() &&
                spanHasIdent(*toks_, spans[p].first, spans[p].second,
                             "move"))
                release(st, key);
        }
        // Callee-release summary: does the callee release this
        // argument (transitively)?
        for (std::size_t p = 0; p < cs.argRoots.size(); ++p) {
            const std::string key = resolve(st, cs.argRoots[p]);
            if (key.empty())
                continue;
            const ResKind kind = st.live[key].kind;
            for (int def : cg_.resolveDefs(cs)) {
                if (calleeReleasesParam(def, static_cast<int>(p),
                                        kind, 3)) {
                    release(st, key);
                    break;
                }
            }
        }
    }

    void
    handleAcquire(const CallSite &cs, std::size_t spanBegin,
                  OwnState &st)
    {
        auto bind = [&](ResKind kind, const std::string &var,
                        bool conditional,
                        const std::string &guardVar) {
            if (var.empty())
                return;
            Res r;
            r.kind = kind;
            r.var = var;
            r.line = cs.line;
            r.conditional = conditional;
            st.live[var] = r;
            st.alias.erase(var);
            if (!guardVar.empty() && guardVar != var)
                st.guard[guardVar] = var;
        };
        if (cs.callee == "allocate" && cs.receiver == "fds") {
            bind(ResKind::Fd,
                 boundVarBefore(*toks_, spanBegin, cs.tokenIndex),
                 false, "");
            return;
        }
        if (cs.callee == "tryClaim") {
            bind(ResKind::RingClaim,
                 boundVarBefore(*toks_, spanBegin, cs.tokenIndex),
                 true, "");
            return;
        }
        if (cs.callee == "beginProcessing" && !cs.receiver.empty()) {
            const std::string bound =
                boundVarBefore(*toks_, spanBegin, cs.tokenIndex);
            bind(ResKind::Slot, cs.receiver, true, bound);
            return;
        }
        if (cs.callee == "readSegments" && !cs.argRoots.empty() &&
            !cs.argRoots[0].empty()) {
            const std::string bound =
                boundVarBefore(*toks_, spanBegin, cs.tokenIndex);
            bind(ResKind::NetSeg, cs.argRoots[0], true, bound);
            return;
        }
        if (cs.callee == "ctl") {
            for (std::size_t p = 0; p < cs.args.size(); ++p) {
                if (cs.args[p].rfind("EPOLL_CTL_ADD", 0) != 0)
                    continue;
                const std::string key =
                    p + 1 < cs.argRoots.size() ? cs.argRoots[p + 1]
                                               : std::string();
                bind(ResKind::Epoll,
                     key.empty() ? cs.receiver : key, false, "");
                return;
            }
        }
    }

    void
    handleAssign(std::size_t b, std::size_t e, OwnState &st)
    {
        const auto [eq, compound] = findAssign(*toks_, b, e);
        if (eq >= e || compound)
            return;
        const std::string lhs = lhsVar(*toks_, b, eq);
        if (lhs.empty()) {
            // Member/subscript store: a tracked resource on the rhs
            // escapes into an owner.
            for (std::size_t j = eq + 1; j < e; ++j) {
                if (!isId((*toks_)[j]))
                    continue;
                const std::string key =
                    resolve(st, (*toks_)[j].text);
                if (!key.empty())
                    release(st, key);
            }
            // `segs[i] = NetSeg{}`: a subscript store INTO the loan
            // container overwrites that slot, dropping its loan by
            // hand (the gkv zero-copy reclaim idiom).
            for (std::size_t j = b; j + 1 < eq; ++j) {
                if (!isId((*toks_)[j]) || !isP((*toks_)[j + 1], "["))
                    continue;
                const std::string key =
                    resolve(st, (*toks_)[j].text);
                if (!key.empty() &&
                    st.live[key].kind == ResKind::NetSeg)
                    release(st, key);
            }
            return;
        }
        // Literal-zero inits feed the loop-infeasibility check.
        if (e == eq + 2 && (*toks_)[eq + 1].kind == TokKind::Number &&
            (*toks_)[eq + 1].text == "0")
            st.zeroInit.insert(lhs);
        else
            st.zeroInit.erase(lhs);
        // `auto &seg = segs[i]` aliases the element to the resource.
        if (st.live.count(lhs) == 0) {
            const std::string rhsRoot = spanRoot(*toks_, eq + 1, e);
            const std::string key = resolve(st, rhsRoot);
            if (!key.empty() && key != lhs)
                st.alias[lhs] = key;
            else
                st.alias.erase(lhs);
        }
    }

    void
    applyFact(const CondFact &f, OwnState &st)
    {
        if (st.dead)
            return;
        // Call-atom: `if (!slot.beginProcessing())` — the receiver's
        // acquire is decided by this edge.
        if (!f.callCallee.empty() &&
            f.callCallee == "beginProcessing") {
            const std::string key = resolve(st, f.callReceiver);
            if (!key.empty() && st.live[key].conditional) {
                if (f.kind == CondFact::Kind::Falsy)
                    release(st, key);
                else if (f.kind == CondFact::Kind::Truthy)
                    st.live[key].conditional = false;
            }
            return;
        }
        // Guard variables decide the acquire they guard.
        std::string target = resolve(st, f.subject);
        auto g = st.guard.find(f.subject);
        if (target.empty() && g != st.guard.end() &&
            st.live.count(g->second) != 0)
            target = g->second;
        if (!target.empty() && st.live[target].conditional) {
            switch (f.kind) {
            case CondFact::Kind::Falsy:
                release(st, target);
                break;
            case CondFact::Kind::Truthy:
                st.live[target].conditional = false;
                break;
            case CondFact::Kind::Cmp:
                if (f.rhsIsZero &&
                    (f.op == "<" || f.op == "<=" || f.op == "=="))
                    release(st, target); // error/empty result
                else if (f.rhsIsZero &&
                         (f.op == ">" || f.op == ">="))
                    st.live[target].conditional = false;
                break;
            }
        }
        // Sign facts and path infeasibility.
        if (f.kind == CondFact::Kind::Cmp && f.rhsIsZero &&
            f.op == ">")
            st.posKnown.insert(f.subject);
        if (f.kind == CondFact::Kind::Cmp &&
            st.posKnown.count(f.subject) != 0 && f.rhsIsZero &&
            (f.op == "<" || f.op == "<=" || f.op == "=="))
            st.dead = true; // contradicts subject > 0
        if (f.kind == CondFact::Kind::Falsy &&
            st.posKnown.count(f.subject) != 0)
            st.dead = true;
        // Zero-init loop counter vs a proven-positive bound: the
        // zero-iteration edge `i >= got` with i == 0 and got > 0 is
        // infeasible (the recvmsg loan-distribution loop).
        if (f.kind == CondFact::Kind::Cmp && f.op == ">=" &&
            st.zeroInit.count(f.subject) != 0 &&
            st.posKnown.count(f.rhsRoot) != 0)
            st.dead = true;
        if (f.kind == CondFact::Kind::Cmp && f.op == "<=" &&
            st.posKnown.count(f.subject) != 0 &&
            st.zeroInit.count(f.rhsRoot) != 0)
            st.dead = true;
    }

    /// Does functions[def] release parameter @p paramIdx of kind
    /// @p kind on some path (a may-release used to credit the
    /// caller)? Transitive through simple argument forwarding.
    bool
    calleeReleasesParam(int def, int paramIdx, ResKind kind,
                        int depth)
    {
        if (depth <= 0)
            return false;
        const Function &fn =
            prog_.functions[static_cast<std::size_t>(def)];
        if (paramIdx < 0 ||
            paramIdx >= static_cast<int>(fn.params.size()))
            return false;
        const std::string &p =
            fn.params[static_cast<std::size_t>(paramIdx)];
        if (p.empty())
            return false;
        const auto memoKey = std::make_tuple(def, paramIdx,
                                             static_cast<int>(kind));
        auto it = releaseMemo_.find(memoKey);
        if (it != releaseMemo_.end())
            return it->second;
        releaseMemo_[memoKey] = false; // recursion guard
        bool releases = false;
        for (const CallSite &c : fn.calls) {
            const bool onParam =
                (!c.argRoots.empty() && c.argRoots[0] == p) ||
                c.receiver == p;
            if (onParam) {
                if ((kind == ResKind::Fd && c.callee == "close") ||
                    (kind == ResKind::RingClaim &&
                     c.callee == "tryPublish") ||
                    (kind == ResKind::Slot && c.callee == "complete" &&
                     c.receiver == p) ||
                    (kind == ResKind::NetSeg &&
                     escapeSinks().count(c.callee) != 0)) {
                    releases = true;
                    break;
                }
            }
            for (std::size_t q = 0; q < c.argRoots.size() && !releases;
                 ++q) {
                if (c.argRoots[q] != p)
                    continue;
                for (int sub : cg_.resolveDefs(c)) {
                    if (calleeReleasesParam(sub,
                                            static_cast<int>(q), kind,
                                            depth - 1)) {
                        releases = true;
                        break;
                    }
                }
            }
            if (releases)
                break;
        }
        releaseMemo_[memoKey] = releases;
        return releases;
    }

    CallGraph &cg_;
    const Program &prog_;
    const Function *fn_ = nullptr;
    const std::vector<Token> *toks_ = nullptr;
    std::string path_;
    std::vector<const CallSite *> calls_;
    std::vector<Finding> findings_;
    std::set<std::string> reported_;
    std::map<std::tuple<int, int, int>, bool> releaseMemo_;
};

// ====================================================================
// Taint pass
// ====================================================================

struct TaintState
{
    /// var -> origin line (first taint site in this function).
    std::map<std::string, int> tainted;
    /// Loop counters bounded above only by a tainted value.
    std::set<std::string> bounded;
    /// Pointers into GPU-shared windows (args.ptr<T>() and friends).
    std::set<std::string> gpuPtr;
};

/// A callee parameter's path to a sink, for call-site reporting.
struct ParamSinkSummary
{
    std::string rule;
    std::vector<std::string> steps; ///< formatted, outermost first
};

class TaintPass
{
  public:
    explicit TaintPass(CallGraph &cg) : cg_(cg), prog_(cg.program())
    {
    }

    std::vector<Finding>
    run()
    {
        for (std::size_t i = 0; i < prog_.functions.size(); ++i) {
            const Function &fn = prog_.functions[i];
            if (fn.isLambda || fn.parent >= 0 ||
                fn.bodyEnd <= fn.bodyBegin + 1)
                continue;
            analyzeEntry(static_cast<int>(i));
        }
        sortFindings(findings_);
        return std::move(findings_);
    }

    // --- PathWalker client interface -------------------------------
    void
    onSimple(const FlowStmt &s, TaintState &st)
    {
        scanSinks(s.begin, s.end, st);
        applyAssign(s.begin, s.end, st);
    }

    void
    onCondition(const FlowStmt &s, TaintState &st)
    {
        scanCondition(s.condBegin, s.condEnd, st);
        applyAssign(s.condBegin, s.condEnd, st);
    }

    void
    onBranch(const FlowStmt &s, bool sense, TaintState &st)
    {
        const auto facts =
            parseCondFacts(*toks_, s.condBegin, s.condEnd, sense);
        for (const CondFact &f : facts)
            applyFact(f, st);
    }

    void
    onRangeFor(const FlowStmt &s, TaintState &st)
    {
        (void)s;
        (void)st;
    }

    void
    onExit(const FlowStmt *s, ExitKind kind, TaintState &st,
           const std::vector<PathStep> &trace)
    {
        (void)kind;
        (void)trace;
        if (s != nullptr && s->begin < s->end)
            scanSinks(s->begin, s->end, st);
    }

  private:
    void
    analyzeEntry(int fnIdx)
    {
        setupFunction(fnIdx);
        summaryMode_ = false;
        summaryOut_ = nullptr;
        const FlowTree tree = lowerFunction(prog_, fnIdx);
        PathWalker<TaintState, TaintPass> walker(tree, *this, 200);
        walker.run(TaintState{});
    }

    void
    setupFunction(int fnIdx)
    {
        fnIdx_ = fnIdx;
        fn_ = &prog_.functions[static_cast<std::size_t>(fnIdx)];
        toks_ = &prog_.fileOf(*fn_).tokens;
        path_ = prog_.fileOf(*fn_).path;
        calls_ = collectCalls(prog_, fnIdx);
    }

    // --- sources ---------------------------------------------------
    /// `args.a[...]` / `args.as<T>(...)` scalar payload read in
    /// [b, e)? (`args.ptr` yields a pre-translated pointer, handled
    /// as a window, not a scalar taint.)
    bool
    spanHasScalarSource(std::size_t b, std::size_t e) const
    {
        const std::vector<Token> &toks = *toks_;
        for (std::size_t j = b; j + 3 < e; ++j) {
            if (!isId(toks[j], "args") || !isP(toks[j + 1], "."))
                continue;
            if (isId(toks[j + 2], "a") && isP(toks[j + 3], "["))
                return true;
            if (isId(toks[j + 2], "as") && isP(toks[j + 3], "<"))
                return true;
        }
        return false;
    }

    bool
    spanHasPtrSource(std::size_t b, std::size_t e) const
    {
        const std::vector<Token> &toks = *toks_;
        for (std::size_t j = b; j + 3 < e; ++j) {
            if (isId(toks[j], "args") && isP(toks[j + 1], ".") &&
                isId(toks[j + 2], "ptr") && isP(toks[j + 3], "<"))
                return true;
        }
        return false;
    }

    /// Host-side SQ consumption: the popped value is GPU-written.
    bool
    spanHasRingPop(std::size_t b, std::size_t e) const
    {
        bool found = false;
        forCallsIn(calls_, b, e, [&](const CallSite &cs) {
            if (cs.callee == "tryPopRingEntry")
                found = true;
        });
        return found;
    }

    /// Is the value of expression [b, e) tainted under @p st?
    bool
    spanTainted(const TaintState &st, std::size_t b,
                std::size_t e) const
    {
        const std::vector<Token> &toks = *toks_;
        if (spanHasScalarSource(b, e) || spanHasRingPop(b, e))
            return true;
        for (std::size_t j = b; j < e; ++j) {
            if (!isId(toks[j]))
                continue;
            if (j > b && isP(toks[j - 1], "::"))
                continue;
            if (st.tainted.count(toks[j].text) != 0)
                return true;
            // A load through a GPU window pointer is GPU data.
            if (st.gpuPtr.count(toks[j].text) != 0 && j + 1 < e &&
                isP(toks[j + 1], "["))
                return true;
        }
        return false;
    }

    /**
     * Like spanTainted, but identifiers that only appear as argument
     * of a call do not taint the expression's VALUE: a call's return
     * is the callee's output (`vma = find(addr)` yields a validated
     * mapping, not raw GPU data); the argument->sink axis is covered
     * separately by parameter summaries. Casts, moves, and the
     * min/max family are value-preserving and stay transparent (the
     * min/clamp sanitizer runs first and wins when a clean bound is
     * present).
     */
    bool
    spanValueTainted(const TaintState &st, std::size_t b,
                     std::size_t e) const
    {
        if (spanHasScalarSource(b, e) || spanHasRingPop(b, e))
            return true;
        static const std::set<std::string> transparent = {
            "static_cast", "reinterpret_cast", "const_cast",
            "dynamic_cast", "move", "forward", "min", "max", "clamp",
        };
        std::vector<std::pair<std::size_t, std::size_t>> excluded;
        forCallsIn(calls_, b, e, [&](const CallSite &cs) {
            if (transparent.count(cs.callee) != 0)
                return;
            for (const auto &sp : argSpans(*toks_, cs))
                excluded.push_back(sp);
        });
        const std::vector<Token> &toks = *toks_;
        for (std::size_t j = b; j < e; ++j) {
            if (!isId(toks[j]))
                continue;
            if (j > b && isP(toks[j - 1], "::"))
                continue;
            bool inCallArg = false;
            for (const auto &sp : excluded) {
                if (j >= sp.first && j < sp.second) {
                    inCallArg = true;
                    break;
                }
            }
            if (inCallArg)
                continue;
            if (st.tainted.count(toks[j].text) != 0)
                return true;
            if (st.gpuPtr.count(toks[j].text) != 0 && j + 1 < e &&
                isP(toks[j + 1], "["))
                return true;
        }
        return false;
    }

    int
    spanTaintLine(const TaintState &st, std::size_t b,
                  std::size_t e) const
    {
        const std::vector<Token> &toks = *toks_;
        for (std::size_t j = b; j < e; ++j) {
            if (!isId(toks[j]))
                continue;
            auto it = st.tainted.find(toks[j].text);
            if (it != st.tainted.end())
                return it->second;
        }
        return b < e ? toks[b].line : 0;
    }

    // --- transfer --------------------------------------------------
    void
    applyAssign(std::size_t b, std::size_t e, TaintState &st)
    {
        if (b >= e)
            return;
        const std::vector<Token> &toks = *toks_;
        const auto [eq, compound] = findAssign(toks, b, e);
        if (eq >= e)
            return;
        std::size_t lb = b;
        std::size_t le = compound ? eq - 1 : eq;
        const std::string lhs = lhsVar(toks, lb, le);
        if (lhs.empty())
            return;
        const std::size_t rb = eq + 1;
        // min/clamp against an untainted bound launders the value.
        bool sanitized = false;
        forCallsIn(calls_, rb, e, [&](const CallSite &cs) {
            if (cs.callee != "min" && cs.callee != "clamp")
                return;
            const auto spans = argSpans(toks, cs);
            for (const auto &sp : spans) {
                if (!spanTainted(st, sp.first, sp.second)) {
                    sanitized = true;
                    return;
                }
            }
        });
        // `x & 0xff` masks the range.
        {
            int depth = 0;
            for (std::size_t j = rb; j + 1 < e; ++j) {
                if (isP(toks[j], "(") || isP(toks[j], "[") ||
                    isP(toks[j], "{"))
                    ++depth;
                else if (isP(toks[j], ")") || isP(toks[j], "]") ||
                         isP(toks[j], "}"))
                    --depth;
                else if (depth == 0 && isP(toks[j], "&") &&
                         toks[j + 1].kind == TokKind::Number &&
                         j > rb && !isP(toks[j - 1], "&"))
                    sanitized = true;
            }
        }
        const bool rhsPtr =
            spanHasPtrSource(rb, e) ||
            [&] {
                const std::string r = spanRoot(toks, rb, e);
                return !r.empty() && st.gpuPtr.count(r) != 0 &&
                       !spanTainted(st, rb, e);
            }();
        if (rhsPtr) {
            st.gpuPtr.insert(lhs);
            st.tainted.erase(lhs);
            return;
        }
        if (!sanitized && spanValueTainted(st, rb, e)) {
            if (st.tainted.count(lhs) == 0)
                st.tainted[lhs] = spanTaintLine(st, rb, e);
            return;
        }
        if (!compound) {
            st.tainted.erase(lhs);
            st.bounded.erase(lhs);
            st.gpuPtr.erase(lhs);
        }
    }

    void
    applyFact(const CondFact &f, TaintState &st)
    {
        if (f.kind == CondFact::Kind::Falsy) {
            st.tainted.erase(f.subject); // asserted zero
            return;
        }
        if (f.kind != CondFact::Kind::Cmp)
            return;
        const bool upperBound = f.op == "<" || f.op == "<=";
        const bool rhsTainted =
            !f.rhsRoot.empty() && st.tainted.count(f.rhsRoot) != 0;
        if (st.tainted.count(f.subject) != 0) {
            // An asserted upper bound against an untainted, nonzero
            // limit sanitizes; `== anything` pins the value. Lower
            // bounds (`cnt >= 0`) prove nothing about size abuse.
            const bool boundClean =
                (f.rhsIsLiteral && !f.rhsIsZero) ||
                (!f.rhsRoot.empty() && !rhsTainted);
            if ((upperBound && boundClean) || f.op == "==")
                st.tainted.erase(f.subject);
            return;
        }
        // An untainted counter bounded above by a tainted value walks
        // as far as the GPU says: dangerous only against windows.
        if (upperBound && rhsTainted)
            st.bounded.insert(f.subject);
    }

    // --- sinks -----------------------------------------------------
    /**
     * Short-circuit-aware sink scan of a condition. The right side of
     * `a || b` only evaluates once `a` is false (and of `a && b` once
     * `a` is true), so each operand is scanned under the accumulated
     * edge facts of the operands to its left — the canonical
     * `fd < 0 || fd >= n || table_[fd] == nullptr` guard-and-use
     * shape is clean, not a finding. Fact application happens on a
     * scratch copy; the walker re-derives the taken edge's facts via
     * onBranch.
     */
    void
    scanCondition(std::size_t b, std::size_t e, TaintState &st)
    {
        const std::vector<Token> &toks = *toks_;
        TaintState scratch = st;
        int depth = 0;
        std::size_t segBegin = b;
        for (std::size_t j = b; j < e; ++j) {
            const Token &t = toks[j];
            if (isP(t, "(") || isP(t, "[") || isP(t, "{")) {
                ++depth;
                continue;
            }
            if (isP(t, ")") || isP(t, "]") || isP(t, "}")) {
                --depth;
                continue;
            }
            if (depth != 0 || j + 1 >= e)
                continue;
            const bool isOr = isP(t, "|") && isP(toks[j + 1], "|");
            // `&&` after a value token is logical; after `(`/`,`/an
            // operator it is an rvalue reference or address-of.
            const bool isAnd =
                isP(t, "&") && isP(toks[j + 1], "&") && j > b &&
                (isId(toks[j - 1]) || isP(toks[j - 1], ")") ||
                 isP(toks[j - 1], "]") ||
                 toks[j - 1].kind == TokKind::Number);
            if (!isOr && !isAnd)
                continue;
            scanSinks(segBegin, j, scratch);
            for (const CondFact &f :
                 parseCondFacts(toks, segBegin, j, isAnd))
                applyFact(f, scratch);
            segBegin = j + 2;
            ++j;
        }
        scanSinks(segBegin, e, scratch);
    }

    void
    scanSinks(std::size_t b, std::size_t e, TaintState &st)
    {
        if (b >= e || (summaryOut_ != nullptr && summaryFound_))
            return;
        const std::vector<Token> &toks = *toks_;
        forCallsIn(calls_, b, e, [&](const CallSite &cs) {
            if (cs.callee == "GENESYS_ASSERT") {
                // The asserted condition holds from here on.
                const auto spans = argSpans(toks, cs);
                if (!spans.empty()) {
                    const auto facts = parseCondFacts(
                        toks, spans[0].first, spans[0].second, true);
                    for (const CondFact &f : facts)
                        applyFact(f, st);
                }
                return;
            }
            checkCallSinks(cs, st);
        });
        scanSubscripts(b, e, st);
        scanAllocs(b, e, st);
    }

    void
    checkCallSinks(const CallSite &cs, TaintState &st)
    {
        const auto spans = argSpans(*toks_, cs);
        if ((cs.callee == "memcpy" || cs.callee == "memmove" ||
             cs.callee == "memset") &&
            spans.size() >= 3 &&
            spanTainted(st, spans[2].first, spans[2].second)) {
            report("gpu-taint-mem", cs.line,
                   "GPU-controlled size reaches " + cs.callee +
                       "() with no dominating bound",
                   st, spans[2]);
            return;
        }
        if ((cs.callee == "resize" || cs.callee == "reserve") &&
            !spans.empty() &&
            spanTainted(st, spans[0].first, spans[0].second)) {
            report("gpu-taint-alloc", cs.line,
                   "GPU-controlled size reaches " + cs.callee +
                       "() with no dominating bound",
                   st, spans[0]);
            return;
        }
        // Interprocedural: a tainted argument whose parameter reaches
        // a sink in the callee (bottom-up summaries).
        for (std::size_t p = 0; p < spans.size(); ++p) {
            if (!spanTainted(st, spans[p].first, spans[p].second))
                continue;
            for (int def : cg_.resolveDefs(cs)) {
                const ParamSinkSummary *sum =
                    paramSink(def, static_cast<int>(p));
                if (sum == nullptr)
                    continue;
                const int origin =
                    spanTaintLine(st, spans[p].first, spans[p].second);
                reportViaCall(cs, *sum, origin);
                return;
            }
        }
    }

    /// Is @p base used with a keyed-container API anywhere in the
    /// program (std::map/set vocabulary that std::vector lacks)? The
    /// lookup may sit in a sibling accessor, so the census is global.
    bool
    isAssociative(const std::string &base)
    {
        if (!keyedBasesBuilt_) {
            static const std::set<std::string> keyed = {
                "find", "contains", "count", "try_emplace",
            };
            for (const Function &fn : prog_.functions)
                for (const CallSite &c : fn.calls)
                    if (!c.receiver.empty() &&
                        keyed.count(c.callee) != 0)
                        keyedBases_.insert(c.receiver);
            keyedBasesBuilt_ = true;
        }
        return keyedBases_.count(base) != 0;
    }

    void
    scanSubscripts(std::size_t b, std::size_t e, TaintState &st)
    {
        const std::vector<Token> &toks = *toks_;
        for (std::size_t j = b; j + 1 < e; ++j) {
            if (!isId(toks[j]) || !isP(toks[j + 1], "["))
                continue;
            if (j > b && (isP(toks[j - 1], "::")))
                continue;
            // Matching ']' of this subscript.
            int depth = 0;
            std::size_t close = e;
            for (std::size_t k = j + 1; k < e; ++k) {
                if (isP(toks[k], "["))
                    ++depth;
                else if (isP(toks[k], "]") && --depth == 0) {
                    close = k;
                    break;
                }
            }
            if (close == e)
                continue;
            const std::string base = toks[j].text;
            // An index that is entirely a call's return value
            // (`buckets_[bucketOf(key)]`) is the callee's output, not
            // the caller's raw input — hash and mapping helpers bound
            // their own result.
            if (close > j + 4 && isId(toks[j + 2]) &&
                isP(toks[j + 3], "(")) {
                int d = 0;
                std::size_t m = j + 3;
                for (; m < close; ++m) {
                    if (isP(toks[m], "("))
                        ++d;
                    else if (isP(toks[m], ")") && --d == 0)
                        break;
                }
                if (m == close - 1)
                    continue;
            }
            const std::string idx =
                spanRoot(toks, j + 2, close);
            if (idx.empty())
                continue;
            // Keyed-container bases (`m.find(k)` / `m.contains(k)`
            // nearby) subscript by key, not position: operator[] on a
            // map cannot run off the end.
            if (isAssociative(base))
                continue;
            const bool idxTainted = st.tainted.count(idx) != 0;
            const bool idxBounded = st.bounded.count(idx) != 0;
            const bool baseWindow =
                st.gpuPtr.count(base) != 0 ||
                (summaryMode_ && paramNames_.count(base) != 0);
            if (idxTainted && st.tainted.count(base) == 0) {
                report("gpu-taint-index", toks[j].line,
                       "GPU-controlled index '" + idx +
                           "' subscripts '" + base +
                           "' with no dominating bound",
                       st, {j + 2, close});
            } else if (idxBounded && baseWindow) {
                report("gpu-taint-window", toks[j].line,
                       "walk of GPU window '" + base +
                           "' is bounded only by a GPU-controlled "
                           "count ('" +
                           idx + "')",
                       st, {j + 2, close});
            }
        }
    }

    void
    scanAllocs(std::size_t b, std::size_t e, TaintState &st)
    {
        const std::vector<Token> &toks = *toks_;
        // `std::vector<T> v(tainted)` / `std::string s(tainted, c)`.
        for (std::size_t j = b; j < e; ++j) {
            if (!isId(toks[j]) || (toks[j].text != "vector" &&
                                   toks[j].text != "string"))
                continue;
            bool flagged = false;
            forCallsIn(calls_, j + 1, e, [&](const CallSite &cs) {
                if (flagged)
                    return;
                const auto spans = argSpans(toks, cs);
                for (const auto &sp : spans) {
                    if (spanTainted(st, sp.first, sp.second)) {
                        report("gpu-taint-alloc", cs.line,
                               "GPU-controlled element count reaches "
                               "a container allocation with no "
                               "dominating bound",
                               st, sp);
                        flagged = true;
                        return;
                    }
                }
            });
            break;
        }
        // `new T[tainted]`.
        for (std::size_t j = b; j + 1 < e; ++j) {
            if (!isId(toks[j], "new"))
                continue;
            for (std::size_t k = j + 1; k < e && k < j + 12; ++k) {
                if (!isP(toks[k], "["))
                    continue;
                int depth = 0;
                std::size_t close = e;
                for (std::size_t m = k; m < e; ++m) {
                    if (isP(toks[m], "["))
                        ++depth;
                    else if (isP(toks[m], "]") && --depth == 0) {
                        close = m;
                        break;
                    }
                }
                if (close < e &&
                    spanTainted(st, k + 1, close)) {
                    report("gpu-taint-alloc", toks[j].line,
                           "GPU-controlled element count reaches "
                           "new[] with no dominating bound",
                           st, {k + 1, close});
                }
                break;
            }
        }
    }

    // --- reporting / summaries -------------------------------------
    void
    report(const std::string &rule, int line, const std::string &msg,
           const TaintState &st,
           std::pair<std::size_t, std::size_t> span)
    {
        if (summaryOut_ != nullptr) {
            if (summaryFound_)
                return;
            summaryFound_ = true;
            summaryOut_->rule = rule;
            summaryOut_->steps.push_back(
                fmtStep(path_, line, msg + " (in " + fn_->qualName +
                                         ")"));
            return;
        }
        const std::string key =
            path_ + ":" + std::to_string(line) + ":" + rule;
        if (!seen_.insert(key).second)
            return;
        Finding f;
        f.path = path_;
        f.line = line;
        f.rule = rule;
        f.message = msg;
        const int origin = spanTaintLine(st, span.first, span.second);
        if (origin != 0 && origin != line)
            f.witness.push_back(
                fmtStep(path_, origin, "value becomes GPU-controlled here"));
        f.witness.push_back(fmtStep(path_, line, "sink reached here"));
        findings_.push_back(std::move(f));
    }

    void
    reportViaCall(const CallSite &cs, const ParamSinkSummary &sum,
                  int originLine)
    {
        if (summaryOut_ != nullptr) {
            if (summaryFound_)
                return;
            summaryFound_ = true;
            summaryOut_->rule = sum.rule;
            summaryOut_->steps.push_back(fmtStep(
                path_, cs.line,
                "forwarded to " + cs.callee + "() (in " +
                    fn_->qualName + ")"));
            summaryOut_->steps.insert(summaryOut_->steps.end(),
                                      sum.steps.begin(),
                                      sum.steps.end());
            return;
        }
        const std::string key = path_ + ":" +
                                std::to_string(cs.line) + ":" +
                                sum.rule;
        if (!seen_.insert(key).second)
            return;
        Finding f;
        f.path = path_;
        f.line = cs.line;
        f.rule = sum.rule;
        f.message = "GPU-controlled argument of " + cs.callee +
                    "() reaches a sink in the callee with no "
                    "dominating bound";
        if (originLine != 0 && originLine != cs.line)
            f.witness.push_back(fmtStep(
                path_, originLine, "value becomes GPU-controlled here"));
        f.witness.push_back(
            fmtStep(path_, cs.line, "passed to " + cs.callee + "()"));
        f.witness.insert(f.witness.end(), sum.steps.begin(),
                         sum.steps.end());
        findings_.push_back(std::move(f));
    }

    /**
     * Does parameter @p paramIdx of functions[def] reach a sink when
     * treated as GPU-controlled? Memoized; pointer-typed peers are
     * treated as windows inside the summary walk (the caller vouches
     * for nothing). Returns nullptr when the parameter is laundered
     * through a dominating bound on every path.
     */
    const ParamSinkSummary *
    paramSink(int def, int paramIdx)
    {
        const auto key = std::make_pair(def, paramIdx);
        auto it = summaryMemo_.find(key);
        if (it != summaryMemo_.end())
            return it->second ? &*it->second : nullptr;
        const Function &fn =
            prog_.functions[static_cast<std::size_t>(def)];
        if (fn.bodyEnd <= fn.bodyBegin + 1 || paramIdx < 0 ||
            paramIdx >= static_cast<int>(fn.params.size()) ||
            fn.params[static_cast<std::size_t>(paramIdx)].empty() ||
            inProgress_.count(def) != 0) {
            summaryMemo_[key] = std::nullopt;
            return nullptr;
        }

        // Save entry-walk context, run the summary walk, restore.
        const int savedIdx = fnIdx_;
        const Function *savedFn = fn_;
        const std::vector<Token> *savedToks = toks_;
        std::string savedPath = path_;
        auto savedCalls = std::move(calls_);
        const bool savedMode = summaryMode_;
        ParamSinkSummary *savedOut = summaryOut_;
        const bool savedFound = summaryFound_;
        auto savedParams = std::move(paramNames_);

        inProgress_.insert(def);
        setupFunction(def);
        summaryMode_ = true;
        ParamSinkSummary sum;
        summaryOut_ = &sum;
        summaryFound_ = false;
        paramNames_.clear();
        TaintState init;
        for (std::size_t q = 0; q < fn.params.size(); ++q) {
            if (fn.params[q].empty())
                continue;
            if (static_cast<int>(q) == paramIdx)
                init.tainted[fn.params[q]] = fn.line;
            else
                paramNames_.insert(fn.params[q]);
        }
        const FlowTree tree = lowerFunction(prog_, def);
        PathWalker<TaintState, TaintPass> walker(tree, *this, 120);
        walker.run(std::move(init));
        const bool found = summaryFound_;
        inProgress_.erase(def);

        fnIdx_ = savedIdx;
        fn_ = savedFn;
        toks_ = savedToks;
        path_ = std::move(savedPath);
        calls_ = std::move(savedCalls);
        summaryMode_ = savedMode;
        summaryOut_ = savedOut;
        summaryFound_ = savedFound;
        paramNames_ = std::move(savedParams);

        if (found)
            summaryMemo_[key] = std::move(sum);
        else
            summaryMemo_[key] = std::nullopt;
        auto &slot = summaryMemo_[key];
        return slot ? &*slot : nullptr;
    }

    CallGraph &cg_;
    const Program &prog_;
    int fnIdx_ = -1;
    const Function *fn_ = nullptr;
    const std::vector<Token> *toks_ = nullptr;
    std::string path_;
    std::vector<const CallSite *> calls_;
    bool summaryMode_ = false;
    ParamSinkSummary *summaryOut_ = nullptr;
    bool summaryFound_ = false;
    std::set<std::string> paramNames_;
    bool keyedBasesBuilt_ = false;
    std::set<std::string> keyedBases_;
    std::set<int> inProgress_;
    std::map<std::pair<int, int>, std::optional<ParamSinkSummary>>
        summaryMemo_;
    std::vector<Finding> findings_;
    std::set<std::string> seen_;
};

} // namespace

std::vector<Finding>
runOwnershipPass(CallGraph &cg)
{
    OwnershipPass pass(cg);
    return pass.run();
}

std::vector<Finding>
runTaintPass(CallGraph &cg)
{
    TaintPass pass(cg);
    return pass.run();
}

} // namespace genesys::analysis
