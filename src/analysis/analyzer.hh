/**
 * @file
 * gstat front end: source loading, pass orchestration, suppressions.
 *
 * A finding can be suppressed with a `gstat: allow(<rule>)` comment on
 * the finding's line or up to three lines above it (so a justification
 * sentence fits in the same comment block). Suppressions are counted
 * and reported — a silent allow is still visible in the summary line.
 */

#ifndef GENESYS_ANALYSIS_ANALYZER_HH
#define GENESYS_ANALYSIS_ANALYZER_HH

#include <string>
#include <vector>

#include "analysis/model.hh"
#include "analysis/passes.hh"

namespace genesys::analysis
{

struct SourceFile
{
    std::string path;
    std::string text;
};

struct AnalysisResult
{
    std::vector<Finding> findings; ///< post-suppression, sorted
    int suppressed = 0;
    std::size_t functionCount = 0;
    std::size_t fileCount = 0;
};

/** Lex + extract + run all passes + apply allow() suppressions. */
AnalysisResult analyzeSources(const std::vector<SourceFile> &sources);

/** Same, restricted to the selected passes. */
AnalysisResult analyzeSources(const std::vector<SourceFile> &sources,
                              const PassSet &ps);

/** Recursively collect .hh/.cc files under @p root, sorted by path.
 *  Returns false (and sets @p err) when the root is unreadable. */
bool loadTree(const std::string &root, std::vector<SourceFile> &out,
              std::string &err);

/** Seeded-defect corpus; prints per-case results. Returns 0 on pass.
 *  With @p flowOnly, runs only the gflow ("flow-") cases. */
int runSelfTest(bool flowOnly = false);

} // namespace genesys::analysis

#endif // GENESYS_ANALYSIS_ANALYZER_HH
