#include "analysis/analyzer.hh"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include "analysis/extract.hh"
#include "analysis/passes.hh"

namespace genesys::analysis
{

namespace
{

/// Does @p comment carry `gstat: allow(<rule>)` (possibly among a
/// comma-separated list)?
bool
commentAllows(const std::string &comment, const std::string &rule)
{
    std::size_t pos = 0;
    while ((pos = comment.find("gstat:", pos)) != std::string::npos) {
        std::size_t p = pos + 6;
        while (p < comment.size() && comment[p] == ' ')
            ++p;
        if (comment.compare(p, 6, "allow(") != 0) {
            pos = p;
            continue;
        }
        p += 6;
        const std::size_t close = comment.find(')', p);
        if (close == std::string::npos)
            return false;
        std::string list = comment.substr(p, close - p);
        std::stringstream ss(list);
        std::string item;
        while (std::getline(ss, item, ',')) {
            item.erase(std::remove(item.begin(), item.end(), ' '),
                       item.end());
            if (item == rule)
                return true;
        }
        pos = close;
    }
    return false;
}

bool
suppressed(const LexedFile &file, const Finding &f)
{
    // The allow() may sit on the finding's line or up to three lines
    // above, so a justification comment block covers it.
    for (int line = f.line; line >= f.line - 3 && line > 0; --line) {
        auto it = file.comments.find(line);
        if (it != file.comments.end() &&
            commentAllows(it->second, f.rule))
            return true;
    }
    return false;
}

} // namespace

namespace
{

/// Collect `gstat: opaque(Class)` boundary annotations from comments.
void
collectOpaqueClasses(Program &prog)
{
    for (const LexedFile &file : prog.files) {
        for (const auto &entry : file.comments) {
            const std::string &c = entry.second;
            std::size_t pos = 0;
            while ((pos = c.find("gstat:", pos)) !=
                   std::string::npos) {
                std::size_t p = pos + 6;
                while (p < c.size() && c[p] == ' ')
                    ++p;
                if (c.compare(p, 7, "opaque(") != 0) {
                    pos = p;
                    continue;
                }
                p += 7;
                const std::size_t close = c.find(')', p);
                if (close == std::string::npos)
                    break;
                std::string name = c.substr(p, close - p);
                name.erase(
                    std::remove(name.begin(), name.end(), ' '),
                    name.end());
                if (!name.empty())
                    prog.opaqueClasses.insert(std::move(name));
                pos = close;
            }
        }
    }
}

} // namespace

AnalysisResult
analyzeSources(const std::vector<SourceFile> &sources)
{
    return analyzeSources(sources, PassSet{});
}

AnalysisResult
analyzeSources(const std::vector<SourceFile> &sources,
               const PassSet &ps)
{
    Program prog;
    prog.files.reserve(sources.size());
    for (const SourceFile &s : sources)
        prog.files.push_back(lex(s.path, s.text));
    for (std::size_t i = 0; i < prog.files.size(); ++i)
        extractFile(prog, static_cast<int>(i));
    collectOpaqueClasses(prog);
    indexFunctions(prog);

    std::vector<Finding> all = runPasses(prog, ps);

    std::map<std::string, const LexedFile *> byPath;
    for (const LexedFile &f : prog.files)
        byPath[f.path] = &f;

    AnalysisResult result;
    result.fileCount = prog.files.size();
    result.functionCount = prog.functions.size();
    for (Finding &f : all) {
        auto it = byPath.find(f.path);
        if (it != byPath.end() && suppressed(*it->second, f)) {
            ++result.suppressed;
            continue;
        }
        result.findings.push_back(std::move(f));
    }
    return result;
}

bool
loadTree(const std::string &root, std::vector<SourceFile> &out,
         std::string &err)
{
    namespace fs = std::filesystem;
    std::error_code ec;
    if (!fs::is_directory(root, ec)) {
        err = root + " is not a directory";
        return false;
    }
    std::vector<std::string> paths;
    for (fs::recursive_directory_iterator it(root, ec), end;
         it != end; it.increment(ec)) {
        if (ec) {
            err = "cannot walk " + root + ": " + ec.message();
            return false;
        }
        if (!it->is_regular_file())
            continue;
        const std::string p = it->path().generic_string();
        if (p.size() > 3 && (p.compare(p.size() - 3, 3, ".hh") == 0 ||
                             p.compare(p.size() - 3, 3, ".cc") == 0))
            paths.push_back(p);
    }
    std::sort(paths.begin(), paths.end());
    for (const std::string &p : paths) {
        std::ifstream in(p, std::ios::binary);
        if (!in) {
            err = "cannot read " + p;
            return false;
        }
        std::ostringstream text;
        text << in.rdbuf();
        out.push_back({p, text.str()});
    }
    return true;
}

} // namespace genesys::analysis
