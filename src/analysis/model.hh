/**
 * @file
 * gstat's program model: functions, call sites, lock events, findings.
 *
 * The extractor (extract.cc) populates a Program from lexed files; the
 * call graph (callgraph.cc) and the passes (passes.cc) consume it.
 * Containers are ordered (std::map / vectors in source order) so every
 * run of the analyzer over the same tree produces byte-identical
 * output.
 */

#ifndef GENESYS_ANALYSIS_MODEL_HH
#define GENESYS_ANALYSIS_MODEL_HH

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/lexer.hh"

namespace genesys::analysis
{

/** A call site inside a function body. */
struct CallSite
{
    std::string callee; ///< unqualified name as spelled
    /// Explicit qualification as spelled ("std", "sim", "A::B");
    /// empty for receiver calls and plain names. An explicitly
    /// qualified call never resolves to a definition whose qualified
    /// name does not match — `std::fprintf` must not resolve to some
    /// in-tree `GpuStdio::fprintf`.
    std::string qualifier;
    /// Receiver identifier for member calls: the `x` of `x.f(...)` /
    /// `x->f(...)`. When the receiver is itself a call chain
    /// (`p.fds().allocate(...)`), the name of the innermost call
    /// ("fds") — enough for the flow passes to recognize the API
    /// without a type system. Empty for free calls.
    std::string receiver;
    int line = 0;
    std::size_t tokenIndex = 0; ///< into the owning file's tokens
    /// Inside a lambda (or call argument) handed to a deferral sink
    /// (WorkQueue::enqueue*, EventQueue::scheduleIn, Sim::spawn, ...):
    /// runs later on another logical thread, not synchronously here.
    bool deferred = false;
    /// Lock ids held at this call site (empty for most).
    std::vector<std::string> heldLocks;
    /// Number of top-level arguments spelled at the site, for
    /// arity-refined resolution; -1 when the list was unparseable.
    int argCount = -1;
    /// Per-position arguments: the spelled name when the argument is
    /// a single identifier or number token, "" for anything richer.
    std::vector<std::string> args;
    /// Per-position argument root: the identifier an argument
    /// expression is "about" — `*base` and `base` root at "base",
    /// `segs.data()` and `std::move(seg.data)` at "segs"/"seg",
    /// `fd + 1` at "fd". "" when no plausible root exists. The flow
    /// passes use roots to follow a resource or a tainted value
    /// through a call boundary.
    std::vector<std::string> argRoots;
    /// Identifiers a dominating `if (x < 0) return ...;` guard proves
    /// non-negative at this site.
    std::set<std::string> nonNegHere;
    /// Identifiers a dominating `if (x >= 0) return ...;` guard
    /// proves negative at this site — the site is unreachable when a
    /// caller guarantees x >= 0 (the pread/pwrite -ESPIPE flow).
    std::set<std::string> negHere;
};

/** One lock acquisition event, in body token order. */
struct LockEvent
{
    std::string lockId;
    bool acquire = true;
    int line = 0;
    std::size_t tokenIndex = 0;
    /// Locks already held when this acquisition happened.
    std::vector<std::string> heldBefore;
    /// True for std::scoped_lock groups (deadlock-avoiding: members
    /// of one group get no pairwise order edges).
    bool atomicGroup = false;
};

/** A `sysno::name` reference inside a body. */
struct SysnoRef
{
    std::string name;
    int line = 0;
};

/** A raw ring-counter token (headRaw_/tailRaw_/claimedRaw_). */
struct RawCounterUse
{
    std::string counter;
    int line = 0;
};

/** An `entries_[...]` access, classified read vs write. */
struct EntriesAccess
{
    bool isWrite = false;
    int line = 0;
    std::size_t tokenIndex = 0;
};

/** One extracted function, method, or lambda body. */
struct Function
{
    std::string qualName;  ///< e.g. "SyscallRing::popHead"
    std::string shortName; ///< last component, e.g. "popHead"
    int fileIndex = 0;     ///< into Program::files
    int line = 0;          ///< definition line
    std::size_t bodyBegin = 0; ///< token index of '{'
    std::size_t bodyEnd = 0;   ///< token index of matching '}'
    int parent = -1;       ///< enclosing function for lambdas
    bool isLambda = false;
    /// Lambda handed to a deferral sink: calls inside it are NOT
    /// synchronous work of the parent.
    bool deferred = false;
    /// Parameter names in declaration order ("" when unnamed or not
    /// recovered from the signature).
    std::vector<std::string> params;
    /// Arity bounds for call-site resolution: required (non-defaulted)
    /// parameters and total parameters. -1 = unknown / unbounded
    /// (unparsed signature or a parameter pack).
    int minArgs = -1;
    int maxArgs = -1;

    std::vector<CallSite> calls;
    std::vector<LockEvent> lockEvents;
    std::vector<SysnoRef> sysnoRefs;
    std::vector<RawCounterUse> rawCounters;
    std::vector<EntriesAccess> entriesAccesses;
};

/** The whole analyzed tree. */
struct Program
{
    std::vector<LexedFile> files;
    std::vector<Function> functions;
    /// shortName -> indices into functions (all definitions sharing it).
    /// Members of opaque classes are excluded.
    std::map<std::string, std::vector<int>> byShortName;
    /// qualName -> index of the first definition with that name.
    std::map<std::string, int> byQualName;
    /// Classes marked `gstat: opaque(Name)`: their members never
    /// resolve from unqualified call sites. Used for API-boundary
    /// classes whose method names deliberately mirror an external
    /// interface (the device-side POSIX wrappers) and would otherwise
    /// swallow every same-named call in the host tree.
    std::set<std::string> opaqueClasses;

    const LexedFile &fileOf(const Function &f) const
    {
        return files[static_cast<std::size_t>(f.fileIndex)];
    }
};

/** One reported defect, with an interprocedural witness chain. */
struct Finding
{
    std::string path;
    int line = 0;
    std::string rule;
    std::string message;
    /// Witness call path / acquisition sites, outermost first. Each
    /// entry is already formatted "path:line: description".
    std::vector<std::string> witness;

    std::string render() const;
};

/** Sort by (path, line, rule) for stable reports. */
void sortFindings(std::vector<Finding> &findings);

} // namespace genesys::analysis

#endif // GENESYS_ANALYSIS_MODEL_HH
