#include "analysis/cfg.hh"

namespace genesys::analysis
{

namespace
{

bool
isIdent(const Token &t, const char *text)
{
    return t.kind == TokKind::Ident && t.text == text;
}

bool
isPunct(const Token &t, const char *text)
{
    return t.kind == TokKind::Punct && t.text == text;
}

class Lowerer
{
  public:
    explicit Lowerer(const std::vector<Token> &toks) : toks_(toks) {}

    std::vector<FlowStmt>
    lowerRange(std::size_t begin, std::size_t end)
    {
        std::vector<FlowStmt> out;
        std::size_t i = begin;
        while (i < end)
            parseInto(i, end, out);
        return out;
    }

  private:
    std::size_t
    matchForward(std::size_t i, const char *open, const char *close,
                 std::size_t limit) const
    {
        int depth = 0;
        for (std::size_t j = i; j < limit; ++j) {
            if (isPunct(toks_[j], open))
                ++depth;
            else if (isPunct(toks_[j], close) && --depth == 0)
                return j;
        }
        return limit;
    }

    /// End of a plain statement starting at @p i: the first ';' with
    /// (), [], {} balanced. Returns the ';' index (or limit).
    std::size_t
    stmtEnd(std::size_t i, std::size_t limit) const
    {
        int depth = 0;
        for (std::size_t j = i; j < limit; ++j) {
            const Token &t = toks_[j];
            if (isPunct(t, "(") || isPunct(t, "[") || isPunct(t, "{"))
                ++depth;
            else if (isPunct(t, ")") || isPunct(t, "]") ||
                     isPunct(t, "}"))
                --depth;
            else if (isPunct(t, ";") && depth == 0)
                return j;
        }
        return limit;
    }

    /// Parse one statement-or-block at @p i into its own list
    /// (the body of an if/loop arm). Advances @p i past it.
    std::vector<FlowStmt>
    parseArm(std::size_t &i, std::size_t limit)
    {
        std::vector<FlowStmt> out;
        if (i < limit)
            parseInto(i, limit, out);
        return out;
    }

    /**
     * Parse one statement at @p i, appending nodes to @p out (a bare
     * `{}` block splices its contents). Advances @p i past it.
     */
    void
    parseInto(std::size_t &i, std::size_t limit,
              std::vector<FlowStmt> &out)
    {
        const Token &t = toks_[i];

        if (isPunct(t, ";")) { // empty statement
            ++i;
            return;
        }
        if (isPunct(t, "{")) { // bare block: splice contents
            const std::size_t close =
                matchForward(i, "{", "}", limit);
            std::size_t j = i + 1;
            while (j < close)
                parseInto(j, close, out);
            i = close + 1;
            return;
        }
        // Case labels are runtime no-ops (fallthrough): skip to ':'.
        if (isIdent(t, "case") || isIdent(t, "default")) {
            std::size_t j = i + 1;
            while (j < limit && !isPunct(toks_[j], ":"))
                ++j;
            i = j + 1;
            return;
        }
        if (isIdent(t, "if")) {
            parseIf(i, limit, out);
            return;
        }
        if (isIdent(t, "while")) {
            FlowStmt s;
            s.kind = StmtKind::Loop;
            s.line = t.line;
            std::size_t lp = i + 1;
            const std::size_t rp =
                matchForward(lp, "(", ")", limit);
            s.condBegin = lp + 1;
            s.condEnd = rp;
            // `while (true)` / `while (1)`: the false edge is
            // infeasible; model as an infinite loop (exits by break).
            if (s.condEnd == s.condBegin + 1 &&
                (isIdent(toks_[s.condBegin], "true") ||
                 (toks_[s.condBegin].kind == TokKind::Number &&
                  toks_[s.condBegin].text == "1")))
                s.condEnd = s.condBegin;
            std::size_t j = rp + 1;
            s.thenBody = parseArm(j, limit);
            out.push_back(std::move(s));
            i = j;
            return;
        }
        if (isIdent(t, "do")) {
            FlowStmt s;
            s.kind = StmtKind::Loop;
            s.line = t.line;
            s.bodyFirst = true;
            std::size_t j = i + 1;
            s.thenBody = parseArm(j, limit);
            // `while (cond) ;`
            if (j < limit && isIdent(toks_[j], "while")) {
                const std::size_t rp =
                    matchForward(j + 1, "(", ")", limit);
                s.condBegin = j + 2;
                s.condEnd = rp;
                j = rp + 1;
                if (j < limit && isPunct(toks_[j], ";"))
                    ++j;
            }
            out.push_back(std::move(s));
            i = j;
            return;
        }
        if (isIdent(t, "for")) {
            parseFor(i, limit, out);
            return;
        }
        if (isIdent(t, "switch")) {
            parseSwitch(i, limit, out);
            return;
        }
        if (isIdent(t, "try")) {
            FlowStmt s;
            s.kind = StmtKind::Try;
            s.line = t.line;
            std::size_t j = i + 1;
            if (j < limit && isPunct(toks_[j], "{")) {
                const std::size_t close =
                    matchForward(j, "{", "}", limit);
                s.thenBody = lowerRange(j + 1, close);
                j = close + 1;
            }
            while (j < limit && isIdent(toks_[j], "catch")) {
                std::size_t k = j + 1;
                if (k < limit && isPunct(toks_[k], "("))
                    k = matchForward(k, "(", ")", limit) + 1;
                if (k < limit && isPunct(toks_[k], "{")) {
                    const std::size_t close =
                        matchForward(k, "{", "}", limit);
                    s.alternatives.push_back(
                        lowerRange(k + 1, close));
                    k = close + 1;
                }
                j = k;
            }
            out.push_back(std::move(s));
            i = j;
            return;
        }
        if (isIdent(t, "return") || isIdent(t, "co_return")) {
            FlowStmt s;
            s.kind = StmtKind::Return;
            s.line = t.line;
            s.begin = i + 1;
            s.end = stmtEnd(i, limit);
            out.push_back(std::move(s));
            i = s.end == limit ? limit : s.end + 1;
            return;
        }
        if (isIdent(t, "throw")) {
            FlowStmt s;
            s.kind = StmtKind::Throw;
            s.line = t.line;
            s.begin = i + 1;
            s.end = stmtEnd(i, limit);
            out.push_back(std::move(s));
            i = s.end == limit ? limit : s.end + 1;
            return;
        }
        if (isIdent(t, "break")) {
            FlowStmt s;
            s.kind = StmtKind::Break;
            s.line = t.line;
            out.push_back(std::move(s));
            i = stmtEnd(i, limit) + 1;
            return;
        }
        if (isIdent(t, "continue")) {
            FlowStmt s;
            s.kind = StmtKind::Continue;
            s.line = t.line;
            out.push_back(std::move(s));
            i = stmtEnd(i, limit) + 1;
            return;
        }

        // Plain statement.
        FlowStmt s;
        s.kind = StmtKind::Simple;
        s.line = t.line;
        s.begin = i;
        s.end = stmtEnd(i, limit);
        const std::size_t next = s.end == limit ? limit : s.end + 1;
        out.push_back(std::move(s));
        i = next;
    }

    void
    parseIf(std::size_t &i, std::size_t limit,
            std::vector<FlowStmt> &out)
    {
        FlowStmt s;
        s.kind = StmtKind::If;
        s.line = toks_[i].line;
        std::size_t lp = i + 1;
        // `if constexpr (...)`
        if (lp < limit && isIdent(toks_[lp], "constexpr"))
            ++lp;
        const std::size_t rp = matchForward(lp, "(", ")", limit);
        s.condBegin = lp + 1;
        s.condEnd = rp;
        std::size_t j = rp + 1;
        s.thenBody = parseArm(j, limit);
        if (j < limit && isIdent(toks_[j], "else")) {
            ++j;
            s.elseBody = parseArm(j, limit);
        }
        out.push_back(std::move(s));
        i = j;
    }

    void
    parseFor(std::size_t &i, std::size_t limit,
             std::vector<FlowStmt> &out)
    {
        const int line = toks_[i].line;
        const std::size_t lp = i + 1;
        const std::size_t rp = matchForward(lp, "(", ")", limit);

        // Range-for: a top-level ':' inside the parens.
        std::size_t colon = rp;
        {
            int depth = 0;
            for (std::size_t k = lp + 1; k < rp; ++k) {
                const Token &tk = toks_[k];
                if (isPunct(tk, "(") || isPunct(tk, "[") ||
                    isPunct(tk, "{"))
                    ++depth;
                else if (isPunct(tk, ")") || isPunct(tk, "]") ||
                         isPunct(tk, "}"))
                    --depth;
                else if (depth == 0 && isPunct(tk, ":")) {
                    colon = k;
                    break;
                }
                else if (depth == 0 && isPunct(tk, ";"))
                    break; // classic for
            }
        }
        std::size_t j = rp + 1;
        if (colon < rp) {
            FlowStmt s;
            s.kind = StmtKind::RangeFor;
            s.line = line;
            // Loop variable: last identifier before the ':'.
            for (std::size_t k = colon; k > lp; --k) {
                if (toks_[k - 1].kind == TokKind::Ident) {
                    s.loopVar = toks_[k - 1].text;
                    break;
                }
            }
            // Range root: first identifier after the ':' that is not
            // a qualifier or call head.
            for (std::size_t k = colon + 1; k < rp; ++k) {
                const Token &tk = toks_[k];
                if (tk.kind != TokKind::Ident)
                    continue;
                if (k + 1 < rp && (isPunct(toks_[k + 1], "::") ||
                                   isPunct(toks_[k + 1], "<") ||
                                   isPunct(toks_[k + 1], "(")))
                    continue;
                s.rangeRoot = tk.text;
                break;
            }
            s.thenBody = parseArm(j, limit);
            out.push_back(std::move(s));
            i = j;
            return;
        }

        // Classic for: init; cond; inc.
        std::size_t semi1 = rp, semi2 = rp;
        {
            int depth = 0;
            for (std::size_t k = lp + 1; k < rp; ++k) {
                const Token &tk = toks_[k];
                if (isPunct(tk, "(") || isPunct(tk, "[") ||
                    isPunct(tk, "{"))
                    ++depth;
                else if (isPunct(tk, ")") || isPunct(tk, "]") ||
                         isPunct(tk, "}"))
                    --depth;
                else if (depth == 0 && isPunct(tk, ";")) {
                    if (semi1 == rp)
                        semi1 = k;
                    else if (semi2 == rp) {
                        semi2 = k;
                        break;
                    }
                }
            }
        }
        if (semi1 < rp && semi1 > lp + 1) { // init as its own stmt
            FlowStmt init;
            init.kind = StmtKind::Simple;
            init.line = line;
            init.begin = lp + 1;
            init.end = semi1;
            out.push_back(std::move(init));
        }
        FlowStmt s;
        s.kind = StmtKind::Loop;
        s.line = line;
        if (semi1 < rp && semi2 < rp && semi2 > semi1 + 1) {
            s.condBegin = semi1 + 1;
            s.condEnd = semi2;
        } // else: no condition -> infinite loop
        s.thenBody = parseArm(j, limit);
        if (semi2 < rp && semi2 + 1 < rp) { // increment at body end
            FlowStmt inc;
            inc.kind = StmtKind::Simple;
            inc.line = line;
            inc.begin = semi2 + 1;
            inc.end = rp;
            s.thenBody.push_back(std::move(inc));
        }
        out.push_back(std::move(s));
        i = j;
    }

    void
    parseSwitch(std::size_t &i, std::size_t limit,
                std::vector<FlowStmt> &out)
    {
        FlowStmt s;
        s.kind = StmtKind::Switch;
        s.line = toks_[i].line;
        const std::size_t lp = i + 1;
        const std::size_t rp = matchForward(lp, "(", ")", limit);
        s.condBegin = lp + 1;
        s.condEnd = rp;
        std::size_t j = rp + 1;
        if (j < limit && isPunct(toks_[j], "{")) {
            const std::size_t close =
                matchForward(j, "{", "}", limit);
            // One alternative per case label, each running to the end
            // of the switch so fallthrough is modeled exactly.
            int depth = 0;
            for (std::size_t k = j + 1; k < close; ++k) {
                const Token &tk = toks_[k];
                if (isPunct(tk, "{") || isPunct(tk, "(") ||
                    isPunct(tk, "["))
                    ++depth;
                else if (isPunct(tk, "}") || isPunct(tk, ")") ||
                         isPunct(tk, "]"))
                    --depth;
                if (depth != 0 || tk.kind != TokKind::Ident)
                    continue;
                if (tk.text != "case" && tk.text != "default")
                    continue;
                if (tk.text == "default")
                    s.hasDefault = true;
                std::size_t c = k;
                while (c < close && !isPunct(toks_[c], ":"))
                    ++c;
                s.alternatives.push_back(lowerRange(c + 1, close));
            }
            j = close + 1;
        }
        out.push_back(std::move(s));
        i = j;
    }

    const std::vector<Token> &toks_;
};

} // namespace

FlowTree
lowerFunction(const Program &prog, int funcIdx)
{
    const Function &fn =
        prog.functions[static_cast<std::size_t>(funcIdx)];
    const std::vector<Token> &toks = prog.fileOf(fn).tokens;
    FlowTree tree;
    if (fn.bodyEnd > fn.bodyBegin + 1) {
        Lowerer lo(toks);
        tree.body = lo.lowerRange(fn.bodyBegin + 1, fn.bodyEnd);
    }
    return tree;
}

} // namespace genesys::analysis
