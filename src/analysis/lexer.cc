#include "analysis/lexer.hh"

#include <cctype>

namespace genesys::analysis
{

namespace
{

bool
identStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool
identCont(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/**
 * True when the quote at @p i opens a raw string literal: the
 * characters before it spell an `R` (optionally prefixed `u8`, `u`,
 * `U`, or `L`) that is not the tail of a longer identifier.
 */
bool
rawStringAt(const std::string &t, std::size_t i)
{
    if (i == 0 || t[i] != '"' || t[i - 1] != 'R')
        return false;
    std::size_t p = i - 1; // index of 'R'
    if (p >= 2 && t[p - 2] == 'u' && t[p - 1] == '8')
        p -= 2;
    else if (p >= 1 && (t[p - 1] == 'u' || t[p - 1] == 'U' ||
                        t[p - 1] == 'L'))
        p -= 1;
    return p == 0 || !identCont(t[p - 1]);
}

} // namespace

LexedFile
lex(const std::string &path, const std::string &text)
{
    LexedFile out;
    out.path = path;
    std::size_t i = 0;
    const std::size_t n = text.size();
    int line = 1;
    bool atLineStart = true; // only whitespace seen since the newline

    auto addComment = [&out](int at, const std::string &body) {
        auto &slot = out.comments[at];
        if (!slot.empty())
            slot += ' ';
        slot += body;
    };

    while (i < n) {
        const char c = text[i];
        if (c == '\n') {
            ++line;
            ++i;
            atLineStart = true;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c)) != 0) {
            ++i;
            continue;
        }
        // Preprocessor directive: skip to end of line, honouring
        // backslash continuations (their newlines still count).
        if (c == '#' && atLineStart) {
            while (i < n && text[i] != '\n') {
                if (text[i] == '\\' && i + 1 < n &&
                    text[i + 1] == '\n') {
                    ++line;
                    i += 2;
                    continue;
                }
                ++i;
            }
            continue;
        }
        atLineStart = false;
        // Line comment.
        if (c == '/' && i + 1 < n && text[i + 1] == '/') {
            std::size_t j = i + 2;
            while (j < n && text[j] != '\n')
                ++j;
            addComment(line, text.substr(i + 2, j - (i + 2)));
            i = j;
            continue;
        }
        // Block comment (may span lines; text lands on each line it
        // covers so a one-line allow() inside it is still found).
        if (c == '/' && i + 1 < n && text[i + 1] == '*') {
            std::size_t j = i + 2;
            std::size_t segStart = j;
            while (j + 1 < n &&
                   !(text[j] == '*' && text[j + 1] == '/')) {
                if (text[j] == '\n') {
                    addComment(line,
                               text.substr(segStart, j - segStart));
                    ++line;
                    segStart = j + 1;
                }
                ++j;
            }
            addComment(line, text.substr(segStart, j - segStart));
            i = j + 1 < n ? j + 2 : n;
            continue;
        }
        // Raw string literal: R"delim( ... )delim".
        if (c == '"' && rawStringAt(text, i)) {
            std::size_t j = i + 1;
            std::string delim;
            while (j < n && text[j] != '(' && delim.size() < 16)
                delim += text[j++];
            const std::string closer = ")" + delim + "\"";
            const int startLine = line;
            std::size_t body = j < n ? j + 1 : n;
            std::size_t end = text.find(closer, body);
            if (end == std::string::npos)
                end = n;
            std::string contents = text.substr(body, end - body);
            for (char bc : contents) {
                if (bc == '\n')
                    ++line;
            }
            out.tokens.push_back(
                {TokKind::String, std::move(contents), startLine});
            i = end == n ? n : end + closer.size();
            continue;
        }
        // Ordinary string / char literal.
        if (c == '"' || c == '\'') {
            const char quote = c;
            std::size_t j = i + 1;
            std::string contents;
            while (j < n && text[j] != quote) {
                if (text[j] == '\\' && j + 1 < n) {
                    if (text[j + 1] == '\n')
                        ++line;
                    contents += text[j + 1];
                    j += 2;
                    continue;
                }
                if (text[j] == '\n') // unterminated; bail at EOL
                    break;
                contents += text[j];
                ++j;
            }
            out.tokens.push_back(
                {quote == '"' ? TokKind::String : TokKind::CharLit,
                 std::move(contents), line});
            i = j < n && text[j] == quote ? j + 1 : j;
            continue;
        }
        // Identifier (string prefixes like R/u8 are consumed by the
        // raw-string case above before we ever get here).
        if (identStart(c)) {
            std::size_t j = i + 1;
            while (j < n && identCont(text[j]))
                ++j;
            out.tokens.push_back(
                {TokKind::Ident, text.substr(i, j - i), line});
            i = j;
            continue;
        }
        // Number (good enough: digits, dots, exponents, suffixes).
        if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
            std::size_t j = i + 1;
            while (j < n && (identCont(text[j]) || text[j] == '.' ||
                             ((text[j] == '+' || text[j] == '-') &&
                              (text[j - 1] == 'e' ||
                               text[j - 1] == 'E'))))
                ++j;
            out.tokens.push_back(
                {TokKind::Number, text.substr(i, j - i), line});
            i = j;
            continue;
        }
        // Punctuation: fuse only :: and ->.
        if (c == ':' && i + 1 < n && text[i + 1] == ':') {
            out.tokens.push_back({TokKind::Punct, "::", line});
            i += 2;
            continue;
        }
        if (c == '-' && i + 1 < n && text[i + 1] == '>') {
            out.tokens.push_back({TokKind::Punct, "->", line});
            i += 2;
            continue;
        }
        out.tokens.push_back({TokKind::Punct, std::string(1, c), line});
        ++i;
    }
    return out;
}

} // namespace genesys::analysis
