#include "analysis/model.hh"

#include <algorithm>
#include <sstream>

namespace genesys::analysis
{

std::string
Finding::render() const
{
    std::ostringstream os;
    os << path << ":" << line << ": [" << rule << "] " << message;
    for (const auto &step : witness)
        os << "\n    " << step;
    return os.str();
}

void
sortFindings(std::vector<Finding> &findings)
{
    std::sort(findings.begin(), findings.end(),
              [](const Finding &a, const Finding &b) {
                  if (a.path != b.path)
                      return a.path < b.path;
                  if (a.line != b.line)
                      return a.line < b.line;
                  if (a.rule != b.rule)
                      return a.rule < b.rule;
                  return a.message < b.message;
              });
}

} // namespace genesys::analysis
