/**
 * @file
 * gstat's C++ lexer (DESIGN.md §14).
 *
 * Produces the token stream the function extractor and the analysis
 * passes walk. The lexer is deliberately small — it understands exactly
 * as much C++ as the passes need:
 *
 *  - identifiers, numbers, string/char literals (including raw string
 *    literals `R"delim(...)delim"` with encoding prefixes), and
 *    punctuation (only `::` and `->` are fused into one token; every
 *    other operator is emitted character by character so downstream
 *    bracket matching never has to split a fused token);
 *  - comments are not tokens: their text is collected per line so the
 *    suppression scanner can find `gstat: allow(<rule>)` annotations
 *    without prose ever reaching a pass;
 *  - preprocessor directives are skipped whole (with backslash
 *    continuations), so an `#include "tailRaw_.hh"` can never trip a
 *    token-level rule.
 *
 * Every token carries its 1-based source line for findings.
 */

#ifndef GENESYS_ANALYSIS_LEXER_HH
#define GENESYS_ANALYSIS_LEXER_HH

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace genesys::analysis
{

enum class TokKind
{
    Ident,   ///< identifier or keyword
    Number,  ///< numeric literal (integer or floating)
    String,  ///< string literal; text holds the decoded contents
    CharLit, ///< character literal; text holds the raw contents
    Punct,   ///< punctuation; "::" and "->" fused, all else single char
};

struct Token
{
    TokKind kind;
    std::string text;
    int line;
};

/** One lexed translation unit (or header). */
struct LexedFile
{
    std::string path; ///< repo-relative path, forward slashes
    std::vector<Token> tokens;
    /// line -> concatenated comment text on that line (for allow()).
    std::map<int, std::string> comments;
};

/** Lex @p text (the contents of @p path) into tokens + comment map. */
LexedFile lex(const std::string &path, const std::string &text);

} // namespace genesys::analysis

#endif // GENESYS_ANALYSIS_LEXER_HH
