/**
 * @file
 * gstat's interprocedural layer (DESIGN.md §14).
 *
 * Resolution is name-based: a call site `f(...)` is connected to every
 * extracted definition whose short name is `f` (a may-call
 * over-approximation). On top of that graph this layer computes, per
 * function:
 *
 *  - a **park summary**: the strongest parking behavior reachable
 *    through synchronous edges (direct calls plus non-deferred lambda
 *    bodies), with a witness call chain to the parking primitive.
 *    Primitives are seeded by name — WaitQueue::wait /
 *    Barrier::arriveAndWait / condition_variable wait are indefinite,
 *    Semaphore::acquire / CpuCluster::acquireCore and timed waits are
 *    bounded (a core eventually frees; a peer may never send bytes);
 *  - a **lock summary**: every lock id the function may acquire
 *    (directly or transitively), with a witness chain to the
 *    acquisition site.
 *
 * Edges through deferral sinks (WorkQueue::enqueue*, scheduleIn,
 * spawn, ...) are excluded: that work runs later on another logical
 * thread and must not be charged to the caller's synchronous flow.
 * Recursion is handled by treating back edges as contributing nothing
 * (a cycle alone cannot introduce a park the cycle body lacks).
 */

#ifndef GENESYS_ANALYSIS_CALLGRAPH_HH
#define GENESYS_ANALYSIS_CALLGRAPH_HH

#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/model.hh"

namespace genesys::analysis
{

/// Strength ordering matters: None < Bounded < Indefinite.
enum class ParkKind
{
    None = 0,
    Bounded = 1,
    Indefinite = 2,
};

const char *parkKindName(ParkKind k);

struct ParkSummary
{
    ParkKind kind = ParkKind::None;
    /// Formatted "path:line: ..." steps from the function's own call
    /// site down to the parking primitive.
    std::vector<std::string> witness;
};

struct LockAcq
{
    std::vector<std::string> witness; ///< chain to the acquisition
};

class CallGraph
{
  public:
    explicit CallGraph(const Program &prog);

    /** Park summary of functions[idx] (memoized). */
    const ParkSummary &parkSummary(int idx);

    /**
     * Park behavior of a single call site resolved in @p fromIdx:
     * seed-name parks resolve at the site itself, otherwise the
     * strongest summary among same-named definitions. Returns a
     * summary whose witness starts at the call site.
     */
    ParkSummary callParkSummary(int fromIdx, const CallSite &call);

    /** lockId -> witness chain for every lock functions[idx] may
     *  acquire, directly or transitively (memoized). */
    const std::map<std::string, LockAcq> &lockSummary(int idx);

    /** Synchronous call sites of functions[idx]: its own non-deferred
     *  calls plus those of non-deferred child lambdas. */
    const std::vector<CallSite> &syncCalls(int idx);

    /** Definitions a call site may target. Unqualified calls match
     *  every definition sharing the short name; explicitly qualified
     *  calls (std::fprintf, A::B::f) only match definitions whose
     *  qualified name agrees — an external qualified call resolves to
     *  nothing. Calls to noreturn terminators resolve to nothing. */
    std::vector<int> resolveDefs(const CallSite &call) const;

    const Program &program() const { return prog_; }

    /** "path:line: caller -> callee" step for a witness chain. */
    std::string callStep(int fromIdx, const CallSite &call) const;

  private:
    ParkSummary computePark(int idx);
    std::map<std::string, LockAcq> computeLocks(int idx);

    const Program &prog_;
    /// Seed park kinds by callee short name.
    std::map<std::string, ParkKind> seeds_;
    /// Noreturn terminators: calls to these propagate nothing.
    std::set<std::string> terminals_;
    std::map<int, ParkSummary> parkMemo_;
    std::map<int, std::map<std::string, LockAcq>> lockMemo_;
    std::map<int, std::vector<CallSite>> syncMemo_;
    std::map<int, bool> onStack_;
    /// Child lambdas per function index.
    std::map<int, std::vector<int>> lambdas_;
};

} // namespace genesys::analysis

#endif // GENESYS_ANALYSIS_CALLGRAPH_HH
