/**
 * @file
 * gstat's interprocedural layer (DESIGN.md §14).
 *
 * Resolution is name-based: a call site `f(...)` is connected to every
 * extracted definition whose short name is `f` (a may-call
 * over-approximation), refined by arity — a call spelling k arguments
 * only targets definitions whose parameter count admits k. On top of
 * that graph this layer computes, per function:
 *
 *  - a **park summary**: the strongest parking behavior reachable
 *    through synchronous edges (direct calls plus non-deferred lambda
 *    bodies), with a witness call chain to the parking primitive.
 *    Primitives are seeded by name — WaitQueue::wait /
 *    Barrier::arriveAndWait / condition_variable wait are indefinite,
 *    Semaphore::acquire / CpuCluster::acquireCore and timed waits are
 *    bounded (a core eventually frees; a peer may never send bytes);
 *  - a **lock summary**: every lock id the function may acquire
 *    (directly or transitively), with a witness chain to the
 *    acquisition site.
 *
 * Edges through deferral sinks (WorkQueue::enqueue*, scheduleIn,
 * spawn, ...) are excluded: that work runs later on another logical
 * thread and must not be charged to the caller's synchronous flow.
 * Recursion is handled by treating back edges as contributing nothing
 * (a cycle alone cannot introduce a park the cycle body lacks).
 *
 * Park summaries are additionally **sign-context sensitive**: the
 * extractor records, per call site, identifiers a dominating
 * `if (x < 0) return ...;` / `if (x >= 0) return ...;` guard proves
 * non-negative / negative, and simple positional argument forwarding
 * carries the facts across calls. A handler that rejects `off < 0`
 * with -EINVAL before forwarding `off` therefore does not inherit
 * parks that sit behind the callee's `pos_override >= 0` -ESPIPE
 * early return (the pread/pwrite seekable-flow false positives).
 */

#ifndef GENESYS_ANALYSIS_CALLGRAPH_HH
#define GENESYS_ANALYSIS_CALLGRAPH_HH

#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/model.hh"

namespace genesys::analysis
{

/// Strength ordering matters: None < Bounded < Indefinite.
enum class ParkKind
{
    None = 0,
    Bounded = 1,
    Indefinite = 2,
};

const char *parkKindName(ParkKind k);

struct ParkSummary
{
    ParkKind kind = ParkKind::None;
    /// Formatted "path:line: ..." steps from the function's own call
    /// site down to the parking primitive.
    std::vector<std::string> witness;
};

struct LockAcq
{
    std::vector<std::string> witness; ///< chain to the acquisition
};

class CallGraph
{
  public:
    explicit CallGraph(const Program &prog);

    /** Park summary of functions[idx] (memoized). */
    const ParkSummary &parkSummary(int idx);

    /**
     * Park summary of functions[idx] under a sign context: @p ctx
     * names parameters of functions[idx] known non-negative at the
     * call being analyzed. Call sites dominated by an
     * `if (param >= 0) return ...;` guard on a ctx member are
     * unreachable and contribute nothing; the context propagates
     * through simple argument forwarding (an argument that is a
     * non-negative literal, locally guarded, or itself a ctx member
     * makes the callee's parameter a ctx member in turn).
     */
    const ParkSummary &parkSummary(int idx,
                                   const std::set<std::string> &ctx);

    /**
     * Park behavior of a single call site resolved in @p fromIdx:
     * seed-name parks resolve at the site itself, otherwise the
     * strongest summary among same-named definitions. Returns a
     * summary whose witness starts at the call site.
     */
    ParkSummary callParkSummary(int fromIdx, const CallSite &call);

    /** callParkSummary under a sign context (see parkSummary). */
    ParkSummary callParkSummary(int fromIdx, const CallSite &call,
                                const std::set<std::string> &ctx);

    /** lockId -> witness chain for every lock functions[idx] may
     *  acquire, directly or transitively (memoized). */
    const std::map<std::string, LockAcq> &lockSummary(int idx);

    /** Synchronous call sites of functions[idx]: its own non-deferred
     *  calls plus those of non-deferred child lambdas. */
    const std::vector<CallSite> &syncCalls(int idx);

    /** Definitions a call site may target. Unqualified calls match
     *  every definition sharing the short name; explicitly qualified
     *  calls (std::fprintf, A::B::f) only match definitions whose
     *  qualified name agrees — an external qualified call resolves to
     *  nothing. Calls to noreturn terminators resolve to nothing.
     *  Arity-refined: a call spelling k arguments never targets a
     *  definition requiring more than k or accepting fewer (defaults
     *  and packs widen a definition's acceptable range), so
     *  `dev->read(pos, buf, len)` does not resolve to the two-argument
     *  `TcpSocket::read` just because the short names collide. */
    std::vector<int> resolveDefs(const CallSite &call) const;

    const Program &program() const { return prog_; }

    /** "path:line: caller -> callee" step for a witness chain. */
    std::string callStep(int fromIdx, const CallSite &call) const;

  private:
    ParkSummary computePark(int idx, const std::set<std::string> &ctx);
    std::map<std::string, LockAcq> computeLocks(int idx);
    /// Can @p call's spelled arity target functions[def]?
    bool arityOk(const CallSite &call, int def) const;
    /// The callee-side sign context induced by @p call under @p ctx.
    std::set<std::string> calleeCtx(const CallSite &call, int def,
                                    const std::set<std::string> &ctx)
        const;

    const Program &prog_;
    /// Seed park kinds by callee short name.
    std::map<std::string, ParkKind> seeds_;
    /// Noreturn terminators: calls to these propagate nothing.
    std::set<std::string> terminals_;
    /// Keyed by (function index, joined sign context).
    std::map<std::pair<int, std::string>, ParkSummary> parkMemo_;
    std::map<int, std::map<std::string, LockAcq>> lockMemo_;
    std::map<int, std::vector<CallSite>> syncMemo_;
    std::map<int, bool> onStack_;
    /// Child lambdas per function index.
    std::map<int, std::vector<int>> lambdas_;
};

} // namespace genesys::analysis

#endif // GENESYS_ANALYSIS_CALLGRAPH_HH
