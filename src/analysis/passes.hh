/**
 * @file
 * gstat's structural analysis passes (DESIGN.md §14). The two gflow
 * dataflow passes (ownership, GPU taint — DESIGN.md §16) are declared
 * in flowpasses.hh and selected through the same PassSet.
 *
 * 1. May-park (`nonblocking-handler-parks`, `drain-loop-park`,
 *    `park-under-lock`): transitive reachability to parking primitives
 *    over synchronous call edges. The syscall blocking classification
 *    is recovered from the tree itself — the `install(sysno::X, "x",
 *    sysX)` rows of the syscall table bind numbers to handlers, and
 *    the `sysno::` references inside `mayBlockIndefinitely` form the
 *    set the runtime treats as may-block. A handler outside that set
 *    that can reach an indefinite park is a classification bug: the
 *    ring consumer would service it inline and wedge a shared OS core.
 *    The same reachability must not hold from the ring consumer's
 *    drain loop (`ringConsumeTask`), and no park of any kind may
 *    happen while a lock is held.
 *
 * 2. Lock order (`lock-order-cycle`): acquisition-order edges from
 *    held-set snapshots at acquisition sites and at call sites
 *    (through callee lock summaries), cycle detection over the edge
 *    graph, and a witness path per edge. std::scoped_lock groups are
 *    acquired atomically and produce no intra-group edges.
 *
 * 3. Ordering discipline (`unpaired-release`,
 *    `unpaired-hb-annotation`, `unannotated-consume`,
 *    `raw-counter-access`): flow-sensitive per-body pairing of ring
 *    counter accesses. A release store must be ordered after an
 *    acquire load in the same body (the load may appear inside the
 *    store's own argument list, as in
 *    `storeHeadRelease(loadHeadAcquire() + 1)`); a gsan ring
 *    annotation must sit next to the counter operation it models;
 *    an `entries_[...]` read needs a `ringConsume()` acquire in the
 *    same body; raw counter members are only touched inside
 *    core/ring.hh.
 */

#ifndef GENESYS_ANALYSIS_PASSES_HH
#define GENESYS_ANALYSIS_PASSES_HH

#include <vector>

#include "analysis/callgraph.hh"
#include "analysis/model.hh"

namespace genesys::analysis
{

std::vector<Finding> runMayParkPass(CallGraph &cg);
std::vector<Finding> runLockOrderPass(CallGraph &cg);
std::vector<Finding> runOrderingPass(const Program &prog);

/** Pass selection for runPasses. Defaults to everything. The gflow
 *  passes (DESIGN.md §16) live in flowpasses.cc. */
struct PassSet
{
    bool mayPark = true;
    bool lockOrder = true;
    bool ordering = true;
    bool ownership = true;
    bool taint = true;
};

/** Run the selected passes, sorted for stable output. */
std::vector<Finding> runPasses(const Program &prog, const PassSet &ps);

/** All passes, sorted for stable output. */
std::vector<Finding> runAllPasses(const Program &prog);

} // namespace genesys::analysis

#endif // GENESYS_ANALYSIS_PASSES_HH
