#include "analysis/dataflow.hh"

#include <set>

namespace genesys::analysis
{

namespace
{

bool
isP(const Token &t, const char *text)
{
    return t.kind == TokKind::Punct && t.text == text;
}

const std::set<std::string> &
exprKeywords()
{
    static const std::set<std::string> kw = {
        "auto",        "bool",       "char",
        "const",       "constexpr",  "double",
        "false",       "float",      "int",
        "long",        "short",      "signed",
        "sizeof",      "static_cast","const_cast",
        "dynamic_cast","reinterpret_cast",
        "true",        "unsigned",   "void",
        "co_await",    "nullptr",    "new",
        "delete",      "this",
    };
    return kw;
}

/// Matching ')' for the '(' at @p i, searching below @p limit.
std::size_t
closeParen(const std::vector<Token> &toks, std::size_t i,
           std::size_t limit)
{
    int depth = 0;
    for (std::size_t j = i; j < limit; ++j) {
        if (isP(toks[j], "("))
            ++depth;
        else if (isP(toks[j], ")") && --depth == 0)
            return j;
    }
    return limit;
}

/// Does the '<' at @p i look like a template head? Heuristic: a '>'
/// within a short window whose next token is '(' — `as<T>(...)`.
std::size_t
templateSkip(const std::vector<Token> &toks, std::size_t i,
             std::size_t limit)
{
    int depth = 0;
    const std::size_t window = i + 24 < limit ? i + 24 : limit;
    for (std::size_t j = i; j < window; ++j) {
        if (isP(toks[j], "<"))
            ++depth;
        else if (isP(toks[j], ">")) {
            if (--depth == 0) {
                if (j + 1 < limit && isP(toks[j + 1], "("))
                    return j; // ident<...>( — a template call head
                return 0;
            }
        } else if (isP(toks[j], ";") || isP(toks[j], "{"))
            return 0;
    }
    return 0;
}

std::string
invertOp(const std::string &op)
{
    if (op == "<")
        return ">=";
    if (op == "<=")
        return ">";
    if (op == ">")
        return "<=";
    if (op == ">=")
        return "<";
    if (op == "==")
        return "!=";
    return "==";
}

std::string
mirrorOp(const std::string &op)
{
    if (op == "<")
        return ">";
    if (op == "<=")
        return ">=";
    if (op == ">")
        return "<";
    if (op == ">=")
        return "<=";
    return op; // == and != are symmetric
}

void
fillRhs(CondFact &f, const std::vector<Token> &toks, std::size_t b,
        std::size_t e)
{
    if (e == b + 1 && toks[b].kind == TokKind::Number) {
        f.rhsIsLiteral = true;
        f.rhsIsZero = toks[b].text == "0";
        return;
    }
    f.rhsRoot = spanRoot(toks, b, e);
}

void
collect(const std::vector<Token> &toks, std::size_t b, std::size_t e,
        bool sense, std::vector<CondFact> &out, int depthBudget)
{
    if (depthBudget <= 0)
        return;
    // Strip redundant outer parens.
    while (e > b + 1 && isP(toks[b], "(") &&
           closeParen(toks, b, e) == e - 1) {
        ++b;
        --e;
    }
    if (b >= e)
        return;

    // Top-level connectors: `||` binds looser than `&&`.
    std::size_t orPos = e, andPos = e;
    {
        int depth = 0;
        for (std::size_t j = b; j + 1 < e; ++j) {
            const Token &t = toks[j];
            if (isP(t, "(") || isP(t, "[") || isP(t, "{"))
                ++depth;
            else if (isP(t, ")") || isP(t, "]") || isP(t, "}"))
                --depth;
            else if (depth == 0 && isP(t, "|") &&
                     isP(toks[j + 1], "|")) {
                if (orPos == e)
                    orPos = j;
            } else if (depth == 0 && isP(t, "&") &&
                       isP(toks[j + 1], "&") &&
                       j > b && // leading && is an rvalue-ref, skip
                       !isP(toks[j - 1], "(") && !isP(toks[j - 1], ","))
            {
                if (andPos == e)
                    andPos = j;
            }
        }
    }
    if (orPos < e) {
        // `A || B`: on the false edge both disjuncts are false; the
        // true edge pins down neither.
        if (!sense) {
            collect(toks, b, orPos, false, out, depthBudget - 1);
            collect(toks, orPos + 2, e, false, out, depthBudget - 1);
        }
        return;
    }
    if (andPos < e) {
        // `A && B`: on the true edge both conjuncts hold.
        if (sense) {
            collect(toks, b, andPos, true, out, depthBudget - 1);
            collect(toks, andPos + 2, e, true, out, depthBudget - 1);
        }
        return;
    }

    // Leading negation (but not `!=`).
    if (isP(toks[b], "!") && (b + 1 >= e || !isP(toks[b + 1], "="))) {
        collect(toks, b + 1, e, !sense, out, depthBudget - 1);
        return;
    }

    // Top-level comparison / assignment.
    {
        int depth = 0;
        for (std::size_t j = b; j < e; ++j) {
            const Token &t = toks[j];
            if (isP(t, "(") || isP(t, "[") || isP(t, "{")) {
                ++depth;
                continue;
            }
            if (isP(t, ")") || isP(t, "]") || isP(t, "}")) {
                --depth;
                continue;
            }
            if (depth != 0 || t.kind != TokKind::Punct)
                continue;
            if (t.text == "<") {
                const std::size_t skip = templateSkip(toks, j, e);
                if (skip != 0) {
                    j = skip;
                    continue;
                }
            }
            std::string op;
            std::size_t opEnd = j + 1;
            if (t.text == "<" || t.text == ">") {
                op = t.text;
                if (j + 1 < e && isP(toks[j + 1], "=")) {
                    op += "=";
                    ++opEnd;
                }
            } else if (t.text == "=" && j + 1 < e &&
                       isP(toks[j + 1], "=")) {
                op = "==";
                ++opEnd;
            } else if (t.text == "!" && j + 1 < e &&
                       isP(toks[j + 1], "=")) {
                op = "!=";
                ++opEnd;
            } else if (t.text == "=" &&
                       (j == b || !isP(toks[j - 1], "=")) &&
                       (j + 1 >= e || !isP(toks[j + 1], "="))) {
                // Assignment-in-condition: `if (auto r = f())`.
                // The bound variable is truthy on the true edge.
                CondFact f;
                f.kind = sense ? CondFact::Kind::Truthy
                               : CondFact::Kind::Falsy;
                for (std::size_t k = j; k > b; --k) {
                    if (toks[k - 1].kind == TokKind::Ident) {
                        f.subject = toks[k - 1].text;
                        break;
                    }
                }
                if (!f.subject.empty())
                    out.push_back(std::move(f));
                return;
            }
            if (op.empty())
                continue;

            CondFact f;
            f.kind = CondFact::Kind::Cmp;
            f.op = sense ? op : invertOp(op);
            f.subject = spanRoot(toks, b, j);
            fillRhs(f, toks, opEnd, e);
            if (!f.subject.empty())
                out.push_back(f);
            // Mirrored fact for the rhs root: `kMax >= cnt` also
            // pins down `cnt`.
            const std::string rhsSubject = spanRoot(toks, opEnd, e);
            if (!rhsSubject.empty() && rhsSubject != f.subject) {
                CondFact m;
                m.kind = CondFact::Kind::Cmp;
                m.op = mirrorOp(f.op);
                m.subject = rhsSubject;
                fillRhs(m, toks, b, j);
                out.push_back(std::move(m));
            }
            return;
        }
    }

    // Atom: a plain variable or a member-call truthiness test.
    CondFact f;
    f.kind = sense ? CondFact::Kind::Truthy : CondFact::Kind::Falsy;
    f.subject = spanRoot(toks, b, e);
    if (f.subject.empty())
        return;
    if (isP(toks[e - 1], ")")) {
        // `recv.callee(...)` (possibly chained): the callee is the
        // identifier before the '(' matching the final ')'.
        int depth = 0;
        std::size_t open = e;
        for (std::size_t j = e; j > b; --j) {
            const Token &t = toks[j - 1];
            if (isP(t, ")"))
                ++depth;
            else if (isP(t, "(") && --depth == 0) {
                open = j - 1;
                break;
            }
        }
        if (open < e && open > b &&
            toks[open - 1].kind == TokKind::Ident) {
            f.callCallee = toks[open - 1].text;
            if (open >= b + 3 && (isP(toks[open - 2], ".") ||
                                  isP(toks[open - 2], "->")) &&
                toks[open - 3].kind == TokKind::Ident)
                f.callReceiver = toks[open - 3].text;
        }
    }
    out.push_back(std::move(f));
}

} // namespace

std::string
spanRoot(const std::vector<Token> &toks, std::size_t begin,
         std::size_t end)
{
    for (std::size_t k = begin; k < end; ++k) {
        const Token &t = toks[k];
        if (t.kind != TokKind::Ident ||
            exprKeywords().count(t.text) != 0)
            continue;
        if (k + 1 < end && (isP(toks[k + 1], "::") ||
                            isP(toks[k + 1], "<") ||
                            isP(toks[k + 1], "(")))
            continue;
        if (k > begin && isP(toks[k - 1], "::"))
            continue;
        return t.text;
    }
    return "";
}

std::vector<CondFact>
parseCondFacts(const std::vector<Token> &toks, std::size_t begin,
               std::size_t end, bool sense)
{
    std::vector<CondFact> out;
    if (begin < end && end <= toks.size())
        collect(toks, begin, end, sense, out, 8);
    return out;
}

} // namespace genesys::analysis
