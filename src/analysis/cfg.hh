/**
 * @file
 * gflow's structured control-flow IR (DESIGN.md §16).
 *
 * A function body is lowered from the token stream into a tree of
 * FlowStmt nodes rather than a flat basic-block graph: the source is
 * structured C++, so the tree keeps branch conditions attached to
 * their regions for free, and the path walker (dataflow.hh) gets
 * break/continue/return semantics by construction instead of by edge
 * bookkeeping. Nodes carry token spans, never copies of text — every
 * consumer reads through the owning LexedFile.
 *
 * What the lowering models:
 *  - `if (c) A else B` with full condition spans (else-if chains
 *    nest in elseBody);
 *  - `while` / `for` / range-`for` / `do-while` loops, with the
 *    range-for's loop variable and range root recovered so a client
 *    can alias them (`for (auto &seg : segs)`);
 *  - `switch` lowered to one alternative per case label, where an
 *    alternative runs from its label to the end of the switch so
 *    fallthrough is modeled exactly (a `break` ends it);
 *  - `try { A } catch { B }` approximated as "A entirely or B
 *    entirely"; `throw` is an exiting statement;
 *  - everything else as a Simple statement spanning to its `;` with
 *    brackets balanced, so lambda bodies and brace-init lists stay
 *    inside one statement.
 */

#ifndef GENESYS_ANALYSIS_CFG_HH
#define GENESYS_ANALYSIS_CFG_HH

#include <cstddef>
#include <string>
#include <vector>

#include "analysis/model.hh"

namespace genesys::analysis
{

enum class StmtKind
{
    Simple,   ///< expression / declaration statement
    If,       ///< cond + thenBody / elseBody
    Loop,     ///< while / for / do-while; cond + thenBody
    RangeFor, ///< range-for; thenBody, loopVar/rangeRoot set
    Switch,   ///< cond + one alternatives entry per case label
    Try,      ///< thenBody = try block, alternatives = handlers
    Return,   ///< return / co_return; span covers the value tokens
    Throw,    ///< throw; exits the function (nearest catch at best)
    Break,
    Continue,
};

struct FlowStmt
{
    StmtKind kind = StmtKind::Simple;
    int line = 0;
    /// Simple/Return/Throw: token span of the statement (excluding
    /// the final ';'). Others: unused.
    std::size_t begin = 0;
    std::size_t end = 0;
    /// If/Loop/Switch: token span of the condition (inside parens).
    /// Empty (condBegin == condEnd) for an infinite `for (;;)`.
    std::size_t condBegin = 0;
    std::size_t condEnd = 0;
    /// True for do-while: the body runs at least once.
    bool bodyFirst = false;
    std::vector<FlowStmt> thenBody;
    std::vector<FlowStmt> elseBody;
    /// Switch: each alternative is the statement list from one case
    /// label to the end of the switch body (fallthrough included).
    std::vector<std::vector<FlowStmt>> alternatives;
    /// Switch: true when one of the labels is `default:` (without it
    /// the walker adds a no-case-taken path).
    bool hasDefault = false;
    /// RangeFor: `for (auto &seg : segs)` binds loopVar "seg" to
    /// rangeRoot "segs".
    std::string loopVar;
    std::string rangeRoot;
};

/// A lowered function body.
struct FlowTree
{
    std::vector<FlowStmt> body;
};

/** Lower functions[funcIdx]'s body tokens into a FlowTree. */
FlowTree lowerFunction(const Program &prog, int funcIdx);

} // namespace genesys::analysis

#endif // GENESYS_ANALYSIS_CFG_HH
