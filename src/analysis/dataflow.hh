/**
 * @file
 * gflow's path walker and branch-condition facts (DESIGN.md §16).
 *
 * PathWalker enumerates acyclic paths through a FlowTree by
 * depth-first continuation passing: at every If/Loop/Switch the state
 * forks, loops contribute a zero-iteration and a one-iteration path
 * (enough for acquire/release and taint lattices, which are
 * idempotent over repetition), and break/continue/return resolve
 * lexically through continuation records instead of CFG edges. The
 * walk is deterministic (source order, then-edge before else-edge)
 * and budgeted: past maxPaths only the first branch of each fork is
 * followed, so pathological functions degrade to a single-path scan
 * instead of exploding.
 *
 * The Client type supplies the transfer functions:
 *
 *   void onSimple(const FlowStmt &s, State &st);
 *   void onCondition(const FlowStmt &s, State &st);   // both edges
 *   void onBranch(const FlowStmt &s, bool sense, State &st);
 *   void onRangeFor(const FlowStmt &s, State &st);    // alias bind
 *   void onExit(const FlowStmt *s, ExitKind k, State &st,
 *               const std::vector<PathStep> &trace);
 *
 * onCondition sees the condition span once per fork — side effects
 * that happen regardless of the edge taken (a `tryPublish` spelled
 * inside an `if`) belong there. onBranch then asserts the edge.
 * onExit receives the branch-decision trace that led to this path
 * end; pass it through condFacts-driven state to build witnesses.
 */

#ifndef GENESYS_ANALYSIS_DATAFLOW_HH
#define GENESYS_ANALYSIS_DATAFLOW_HH

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "analysis/cfg.hh"

namespace genesys::analysis
{

/** How a path ended. */
enum class ExitKind
{
    Fall,         ///< fell off the end of the function
    Return,       ///< return / co_return statement
    Throw,        ///< throw statement
    InfiniteLoop, ///< entered a condition-less loop with no break
};

/** One branch decision on the way to a path end. */
struct PathStep
{
    int line = 0;     ///< line of the condition
    bool sense = false; ///< edge taken: condition true or false
};

/**
 * A single asserted fact derived from a branch condition under a
 * known edge sense. `parseCondFacts` decomposes top-level `&&` (both
 * conjuncts hold on the true edge), `||` (both disjuncts fail on the
 * false edge), and `!`, then classifies each atom.
 */
struct CondFact
{
    enum class Kind
    {
        Truthy, ///< `x` asserted nonzero / engaged
        Falsy,  ///< `x` asserted zero / empty
        Cmp,    ///< `subject op rhs` asserted to hold
    };
    Kind kind = Kind::Truthy;
    /// The variable the fact is about (root identifier of the lhs).
    std::string subject;
    /// Truthy/Falsy only: when the atom was a member call
    /// `recv.callee(...)`, the receiver and callee ("slot",
    /// "beginProcessing"); empty for plain variables.
    std::string callReceiver;
    std::string callCallee;
    /// Cmp only: the asserted operator after sense folding —
    /// `!(a < b)` on the true edge and `a < b` on the false edge both
    /// yield op ">=".
    std::string op;
    /// Cmp only: rhs shape, for bounds reasoning.
    bool rhsIsLiteral = false;
    bool rhsIsZero = false;
    std::string rhsRoot; ///< root identifier of the rhs ("" if none)
};

/**
 * Decompose the condition tokens [begin, end) under edge @p sense
 * into asserted facts. Returns an empty vector when the condition is
 * too rich to decompose (the client then learns nothing — sound for
 * both the ownership lattice and the taint lattice, which only act
 * on known facts).
 */
std::vector<CondFact> parseCondFacts(const std::vector<Token> &toks,
                                     std::size_t begin,
                                     std::size_t end, bool sense);

/**
 * Root identifier of an expression span: the first identifier that is
 * not a qualifier (`std::`), template head, or call head — the same
 * notion CallSite::argRoots uses. "" when none exists.
 */
std::string spanRoot(const std::vector<Token> &toks, std::size_t begin,
                     std::size_t end);

template <typename State, typename Client> class PathWalker
{
  public:
    PathWalker(const FlowTree &tree, Client &client,
               std::size_t maxPaths = 512)
        : tree_(tree), client_(client), maxPaths_(maxPaths)
    {
    }

    void
    run(State initial)
    {
        Cont atEnd = [this](State st) {
            client_.onExit(nullptr, ExitKind::Fall, st, trace_);
            ++paths_;
        };
        walkSeq(tree_.body, 0, std::move(initial), atEnd, nullptr);
    }

    /// Paths enumerated so far (diagnostic).
    std::size_t pathCount() const { return paths_; }

  private:
    using Cont = std::function<void(State)>;

    /// Lexical loop/switch context for break/continue resolution.
    struct FlowCtx
    {
        const Cont *onBreak = nullptr;
        const Cont *onContinue = nullptr;
    };

    bool
    forkAllowed() const
    {
        return paths_ < maxPaths_;
    }

    void
    walkSeq(const std::vector<FlowStmt> &stmts, std::size_t idx,
            State st, const Cont &after, const FlowCtx *ctx)
    {
        if (idx == stmts.size()) {
            after(std::move(st));
            return;
        }
        const FlowStmt &s = stmts[idx];
        Cont rest = [this, &stmts, idx, &after, ctx](State st2) {
            walkSeq(stmts, idx + 1, std::move(st2), after, ctx);
        };

        switch (s.kind) {
        case StmtKind::Simple:
            client_.onSimple(s, st);
            rest(std::move(st));
            return;
        case StmtKind::Return:
            client_.onExit(&s, ExitKind::Return, st, trace_);
            ++paths_;
            return;
        case StmtKind::Throw:
            client_.onExit(&s, ExitKind::Throw, st, trace_);
            ++paths_;
            return;
        case StmtKind::Break:
            if (ctx != nullptr && ctx->onBreak != nullptr)
                (*ctx->onBreak)(std::move(st));
            else
                rest(std::move(st)); // malformed; keep walking
            return;
        case StmtKind::Continue:
            if (ctx != nullptr && ctx->onContinue != nullptr)
                (*ctx->onContinue)(std::move(st));
            else
                rest(std::move(st));
            return;
        case StmtKind::If:
            walkIf(s, std::move(st), rest, ctx);
            return;
        case StmtKind::Loop:
            walkLoop(s, std::move(st), rest, ctx);
            return;
        case StmtKind::RangeFor:
            walkRangeFor(s, std::move(st), rest, ctx);
            return;
        case StmtKind::Switch:
            walkSwitch(s, std::move(st), rest, ctx);
            return;
        case StmtKind::Try:
            walkTry(s, std::move(st), rest, ctx);
            return;
        }
    }

    void
    walkIf(const FlowStmt &s, State st, const Cont &rest,
           const FlowCtx *ctx)
    {
        client_.onCondition(s, st);
        {
            State thenSt = st;
            client_.onBranch(s, true, thenSt);
            trace_.push_back({s.line, true});
            walkSeq(s.thenBody, 0, std::move(thenSt), rest, ctx);
            trace_.pop_back();
        }
        if (!forkAllowed())
            return;
        State elseSt = std::move(st);
        client_.onBranch(s, false, elseSt);
        trace_.push_back({s.line, false});
        walkSeq(s.elseBody, 0, std::move(elseSt), rest, ctx);
        trace_.pop_back();
    }

    void
    walkLoop(const FlowStmt &s, State st, const Cont &rest,
             const FlowCtx *ctx)
    {
        (void)ctx; // body break/continue bind to this loop
        const bool infinite = s.condBegin >= s.condEnd;
        if (s.condBegin < s.condEnd)
            client_.onCondition(s, st);

        // Zero-iteration path (not for do-while / infinite loops).
        if (!infinite && !s.bodyFirst) {
            State zero = st;
            client_.onBranch(s, false, zero);
            trace_.push_back({s.line, false});
            rest(std::move(zero));
            trace_.pop_back();
            if (!forkAllowed())
                return;
        }

        // One-iteration path. After the body completes (fall off or
        // `continue`), a finite loop re-tests and exits on the false
        // edge; an infinite loop never exits except by break.
        Cont endIter = [this, &s, &rest, infinite](State st2) {
            if (infinite) {
                client_.onExit(&s, ExitKind::InfiniteLoop, st2,
                               trace_);
                ++paths_;
                return;
            }
            client_.onBranch(s, false, st2);
            rest(std::move(st2));
        };
        FlowCtx loopCtx;
        loopCtx.onBreak = &rest;
        loopCtx.onContinue = &endIter;
        State once = std::move(st);
        if (!infinite)
            client_.onBranch(s, true, once);
        trace_.push_back({s.line, true});
        walkSeq(s.thenBody, 0, std::move(once), endIter, &loopCtx);
        trace_.pop_back();
    }

    void
    walkRangeFor(const FlowStmt &s, State st, const Cont &rest,
                 const FlowCtx *ctx)
    {
        (void)ctx;
        // Empty-range path.
        {
            State zero = st;
            trace_.push_back({s.line, false});
            rest(std::move(zero));
            trace_.pop_back();
            if (!forkAllowed())
                return;
        }
        FlowCtx loopCtx;
        loopCtx.onBreak = &rest;
        loopCtx.onContinue = &rest;
        State once = std::move(st);
        client_.onRangeFor(s, once);
        trace_.push_back({s.line, true});
        walkSeq(s.thenBody, 0, std::move(once), rest, &loopCtx);
        trace_.pop_back();
    }

    void
    walkSwitch(const FlowStmt &s, State st, const Cont &rest,
               const FlowCtx *ctx)
    {
        client_.onCondition(s, st);
        // `continue` inside a switch belongs to the enclosing loop;
        // `break` exits the switch.
        FlowCtx swCtx;
        swCtx.onBreak = &rest;
        swCtx.onContinue =
            ctx != nullptr ? ctx->onContinue : nullptr;
        bool first = true;
        for (const auto &alt : s.alternatives) {
            if (!first && !forkAllowed())
                return;
            first = false;
            State altSt = st;
            trace_.push_back({s.line, true});
            walkSeq(alt, 0, std::move(altSt), rest, &swCtx);
            trace_.pop_back();
        }
        if (!s.hasDefault && (first || forkAllowed())) {
            trace_.push_back({s.line, false});
            rest(std::move(st));
            trace_.pop_back();
        }
    }

    void
    walkTry(const FlowStmt &s, State st, const Cont &rest,
            const FlowCtx *ctx)
    {
        // "A entirely or B entirely": the try block as one path, each
        // handler as another starting from the pre-try state.
        {
            State trySt = st;
            walkSeq(s.thenBody, 0, std::move(trySt), rest, ctx);
        }
        for (const auto &handler : s.alternatives) {
            if (!forkAllowed())
                return;
            State hSt = st;
            trace_.push_back({s.line, false});
            walkSeq(handler, 0, std::move(hSt), rest, ctx);
            trace_.pop_back();
        }
    }

    const FlowTree &tree_;
    Client &client_;
    std::size_t maxPaths_;
    std::size_t paths_ = 0;
    std::vector<PathStep> trace_;
};

} // namespace genesys::analysis

#endif // GENESYS_ANALYSIS_DATAFLOW_HH
