#include "analysis/extract.hh"

#include <algorithm>
#include <set>

namespace genesys::analysis
{

namespace
{

const std::set<std::string> &
keywords()
{
    static const std::set<std::string> kw = {
        "alignas",     "alignof",  "assert",     "auto",
        "bool",        "break",    "case",       "catch",
        "char",        "class",    "co_await",   "co_return",
        "co_yield",    "const",    "const_cast", "constexpr",
        "continue",    "decltype", "default",    "delete",
        "do",          "double",   "dynamic_cast", "else",
        "enum",        "explicit", "float",      "for",
        "goto",        "if",       "inline",     "int",
        "long",        "namespace", "new",       "noexcept",
        "operator",    "private",  "protected",  "public",
        "reinterpret_cast", "requires", "return", "short",
        "signed",      "sizeof",   "static",     "static_assert",
        "static_cast", "struct",   "switch",     "template",
        "throw",       "typedef",  "typename",   "union",
        "unsigned",    "using",    "virtual",    "void",
        "while",
    };
    return kw;
}

/// Calls whose arguments (and lambdas) execute later, on another
/// logical thread: workqueue dispatch, event scheduling, task spawn.
const std::set<std::string> &
deferralSinks()
{
    static const std::set<std::string> sinks = {
        "enqueue", "enqueueOn", "scheduleIn", "schedule", "spawn",
        "post",    "defer",
    };
    return sinks;
}

bool
isIdent(const Token &t)
{
    return t.kind == TokKind::Ident;
}

bool
isPunct(const Token &t, const char *text)
{
    return t.kind == TokKind::Punct && t.text == text;
}

struct OpenParen
{
    std::string callee; ///< empty for grouping parens
    bool deferral = false;
};

struct Guard
{
    std::string lockId;
    int depth = 0; ///< brace depth the guard dies at; 0 = manual
};

class FileExtractor
{
  public:
    FileExtractor(Program &prog, int fileIndex)
        : prog_(prog), file_(prog.files[static_cast<std::size_t>(
                           fileIndex)]),
          toks_(file_.tokens), fileIndex_(fileIndex)
    {}

    void
    run()
    {
        std::size_t i = 0;
        parseDeclScope(i, toks_.size(), {});
        markGuardFacts();
    }

  private:
    // ---- small helpers --------------------------------------------
    std::size_t
    matchForward(std::size_t i, const char *open, const char *close,
                 std::size_t limit) const
    {
        // i points at `open`; returns index of the matching `close`
        // (or limit when unbalanced).
        int depth = 0;
        for (std::size_t j = i; j < limit; ++j) {
            if (isPunct(toks_[j], open))
                ++depth;
            else if (isPunct(toks_[j], close) && --depth == 0)
                return j;
        }
        return limit;
    }

    /// Skip a template argument / angle-bracket section starting at
    /// `<`. Returns the index after the matching `>`.
    std::size_t
    skipAngles(std::size_t i, std::size_t limit) const
    {
        int depth = 0;
        std::size_t j = i;
        for (; j < limit; ++j) {
            if (isPunct(toks_[j], "<"))
                ++depth;
            else if (isPunct(toks_[j], ">") && --depth == 0)
                return j + 1;
            else if (isPunct(toks_[j], ";") || isPunct(toks_[j], "{"))
                break; // malformed / not really a template section
        }
        return j;
    }

    std::string
    classQualOf(const std::vector<std::string> &classes) const
    {
        std::string q;
        for (const auto &c : classes) {
            if (!q.empty())
                q += "::";
            q += c;
        }
        return q;
    }

    // ---- namespace / class level ----------------------------------
    /**
     * Parse tokens [i, limit) at declaration scope. @p classes holds
     * the enclosing class names (namespaces are not recorded: park
     * seeds and qual names stay namespace-free). Advances @p i.
     */
    void
    parseDeclScope(std::size_t &i, std::size_t limit,
                   std::vector<std::string> classes)
    {
        while (i < limit) {
            const Token &t = toks_[i];
            if (isPunct(t, "}")) {
                ++i;
                return;
            }
            if (isIdent(t) && t.text == "namespace") {
                std::size_t j = i + 1;
                while (j < limit && (isIdent(toks_[j]) ||
                                     isPunct(toks_[j], "::")))
                    ++j;
                if (j < limit && isPunct(toks_[j], "{")) {
                    i = j + 1;
                    parseDeclScope(i, limit, classes);
                    continue;
                }
                // alias or malformed: skip the statement
                while (j < limit && !isPunct(toks_[j], ";"))
                    ++j;
                i = j + 1;
                continue;
            }
            if (isIdent(t) &&
                (t.text == "class" || t.text == "struct" ||
                 t.text == "union")) {
                // Find the tag name: last ident before ':'/'{'/';'.
                std::string name;
                std::size_t j = i + 1;
                for (; j < limit; ++j) {
                    if (isPunct(toks_[j], "{") ||
                        isPunct(toks_[j], ";") ||
                        isPunct(toks_[j], ":"))
                        break;
                    if (isPunct(toks_[j], "<")) {
                        j = skipAngles(j, limit) - 1;
                        continue;
                    }
                    if (isIdent(toks_[j]) && toks_[j].text != "final" &&
                        toks_[j].text != "alignas")
                        name = toks_[j].text;
                }
                // Skip a base-clause to the opening brace.
                while (j < limit && !isPunct(toks_[j], "{") &&
                       !isPunct(toks_[j], ";"))
                    ++j;
                if (j < limit && isPunct(toks_[j], "{")) {
                    i = j + 1;
                    std::vector<std::string> inner = classes;
                    if (!name.empty())
                        inner.push_back(name);
                    parseDeclScope(i, limit, inner);
                    // Skip trailing declarator list up to ';'.
                    while (i < limit && !isPunct(toks_[i], ";") &&
                           !isPunct(toks_[i], "}") &&
                           !isIdent(toks_[i]))
                        ++i;
                    continue;
                }
                i = j + 1;
                continue;
            }
            if (isIdent(t) && t.text == "enum") {
                std::size_t j = i;
                while (j < limit && !isPunct(toks_[j], "{") &&
                       !isPunct(toks_[j], ";"))
                    ++j;
                if (j < limit && isPunct(toks_[j], "{"))
                    j = matchForward(j, "{", "}", limit);
                i = j + 1;
                continue;
            }
            if (isIdent(t) && t.text == "template") {
                std::size_t j = i + 1;
                if (j < limit && isPunct(toks_[j], "<"))
                    j = skipAngles(j, limit);
                i = j;
                continue;
            }
            // Candidate function: ident followed by '('.
            if (isIdent(t) && keywords().count(t.text) == 0 &&
                i + 1 < limit && isPunct(toks_[i + 1], "(")) {
                if (tryFunction(i, limit, classes))
                    continue;
            }
            // Stray open brace (array initializer, extern "C", ...).
            if (isPunct(t, "{")) {
                i = matchForward(i, "{", "}", limit) + 1;
                continue;
            }
            ++i;
        }
    }

    /**
     * Try to parse a function definition whose name token is at @p i
     * (with `(` at i+1). On success extracts the body, advances @p i
     * past it, and returns true. On a plain declaration or a
     * variable-with-initializer, advances past the ';' and returns
     * true as well (the construct is consumed either way). Returns
     * false only when this is not a parseable candidate.
     */
    bool
    tryFunction(std::size_t &i, std::size_t limit,
                const std::vector<std::string> &classes)
    {
        // Qualified-name walk-back: A::B::name.
        std::string prefix;
        {
            std::size_t k = i;
            while (k >= 2 && isPunct(toks_[k - 1], "::") &&
                   isIdent(toks_[k - 2])) {
                prefix = toks_[k - 2].text +
                         (prefix.empty() ? "" : "::") + prefix;
                k -= 2;
            }
        }
        const std::string shortName = toks_[i].text;
        const int defLine = toks_[i].line;
        std::size_t close = matchForward(i + 1, "(", ")", limit);
        if (close >= limit)
            return false;
        std::size_t j = close + 1;
        // Trailing qualifiers.
        while (j < limit) {
            const Token &q = toks_[j];
            if (isIdent(q) &&
                (q.text == "const" || q.text == "override" ||
                 q.text == "final" || q.text == "mutable" ||
                 q.text == "constexpr")) {
                ++j;
                continue;
            }
            if (isIdent(q) && q.text == "noexcept") {
                ++j;
                if (j < limit && isPunct(toks_[j], "("))
                    j = matchForward(j, "(", ")", limit) + 1;
                continue;
            }
            if (isPunct(q, "->")) { // trailing return type
                ++j;
                while (j < limit && !isPunct(toks_[j], "{") &&
                       !isPunct(toks_[j], ";")) {
                    if (isPunct(toks_[j], "<")) {
                        j = skipAngles(j, limit);
                        continue;
                    }
                    ++j;
                }
                continue;
            }
            break;
        }
        if (j >= limit)
            return false;
        if (isPunct(toks_[j], ";")) {
            i = j + 1; // declaration only
            return true;
        }
        if (isPunct(toks_[j], "=")) {
            // `= default` / `= delete` / variable initializer.
            while (j < limit && !isPunct(toks_[j], ";"))
                ++j;
            i = j + 1;
            return true;
        }
        if (isPunct(toks_[j], ":")) {
            // Constructor-initializer list: member(init) or
            // member{init} groups separated by commas, then the body.
            ++j;
            while (j < limit && !isPunct(toks_[j], "{")) {
                if (isPunct(toks_[j], "(")) {
                    j = matchForward(j, "(", ")", limit) + 1;
                    if (j < limit && isPunct(toks_[j], "{") &&
                        !nextIsComma(j, limit))
                        break; // this '{' is the body
                    continue;
                }
                if (isPunct(toks_[j], "<")) {
                    j = skipAngles(j, limit);
                    continue;
                }
                if (isPunct(toks_[j], "{")) {
                    // Brace-init of a member, only when followed by
                    // ',' or another init; otherwise it is the body.
                    std::size_t end =
                        matchForward(j, "{", "}", limit);
                    if (end + 1 < limit &&
                        (isPunct(toks_[end + 1], ",") ||
                         isPunct(toks_[end + 1], "{"))) {
                        j = end + 1;
                        continue;
                    }
                    // Could still be the body if what precedes was a
                    // complete init; treat as body.
                    break;
                }
                ++j;
            }
        }
        if (j >= limit || !isPunct(toks_[j], "{"))
            return false;

        std::string qual;
        if (!prefix.empty())
            qual = prefix + "::" + shortName;
        else if (!classes.empty())
            qual = classQualOf(classes) + "::" + shortName;
        else
            qual = shortName;

        const int funcIdx = static_cast<int>(prog_.functions.size());
        Function fn;
        fn.qualName = qual;
        fn.shortName = shortName;
        fn.fileIndex = fileIndex_;
        fn.line = defLine;
        fn.bodyBegin = j;
        parseParams(i + 1, close, fn);
        prog_.functions.push_back(std::move(fn));
        std::size_t end = scanBody(j, limit, funcIdx, qual);
        prog_.functions[static_cast<std::size_t>(funcIdx)].bodyEnd =
            end;
        i = end + 1;
        return true;
    }

    bool
    nextIsComma(std::size_t braceIdx, std::size_t limit) const
    {
        std::size_t end = matchForward(braceIdx, "{", "}", limit);
        return end + 1 < limit && isPunct(toks_[end + 1], ",");
    }

    /**
     * Recover parameter names and arity bounds from the signature
     * parens [@p lparen, @p rparen]. A parameter's name is the last
     * top-level identifier of its comma segment that is neither a
     * keyword nor part of a qualified type (adjacent to `::`),
     * stopping at a default-value `=`. Defaulted parameters lower the
     * required arity; a pack/ellipsis makes the maximum unbounded.
     */
    void
    parseParams(std::size_t lparen, std::size_t rparen,
                Function &fn) const
    {
        fn.minArgs = 0;
        fn.maxArgs = 0;
        if (rparen <= lparen + 1)
            return; // ()
        auto flush = [&](std::size_t b, std::size_t e) {
            if (fn.maxArgs < 0)
                return; // already unbounded past a pack
            std::string name;
            bool defaulted = false;
            int depth = 0;
            for (std::size_t k = b; k < e; ++k) {
                const Token &t = toks_[k];
                if (isPunct(t, "(") || isPunct(t, "[") ||
                    isPunct(t, "{")) {
                    ++depth;
                    continue;
                }
                if (isPunct(t, ")") || isPunct(t, "]") ||
                    isPunct(t, "}")) {
                    --depth;
                    continue;
                }
                if (depth > 0)
                    continue;
                if (isPunct(t, "<")) {
                    k = skipAngles(k, e) - 1;
                    continue;
                }
                if (isPunct(t, "=")) {
                    defaulted = true;
                    break;
                }
                if (isPunct(t, ".")) { // ellipsis / parameter pack
                    fn.maxArgs = -1;
                    return;
                }
                if (isIdent(t) && keywords().count(t.text) == 0) {
                    const bool qualified =
                        (k > b && isPunct(toks_[k - 1], "::")) ||
                        (k + 1 < e && isPunct(toks_[k + 1], "::"));
                    if (!qualified)
                        name = t.text;
                }
            }
            if (e == b + 1 && isIdent(toks_[b]) &&
                toks_[b].text == "void")
                return; // (void): no parameters
            fn.params.push_back(name);
            ++fn.maxArgs;
            if (!defaulted)
                ++fn.minArgs;
        };
        int depth = 0;
        std::size_t b = lparen + 1;
        for (std::size_t k = lparen + 1; k < rparen; ++k) {
            const Token &t = toks_[k];
            if (isPunct(t, "(") || isPunct(t, "[") ||
                isPunct(t, "{")) {
                ++depth;
                continue;
            }
            if (isPunct(t, ")") || isPunct(t, "]") ||
                isPunct(t, "}")) {
                --depth;
                continue;
            }
            if (depth != 0)
                continue;
            if (isPunct(t, "<")) {
                k = skipAngles(k, rparen) - 1;
                continue;
            }
            if (isPunct(t, ",")) {
                flush(b, k);
                b = k + 1;
            }
        }
        flush(b, rparen);
    }

    /**
     * Split a call's argument list [@p lparen, @p rparen] on
     * top-level commas into @p cs: the arity plus, per position, the
     * spelled name when the argument is a single identifier or number
     * token. Template argument sections after an identifier
     * (`as<int>(0)`) are skipped; a lone `<` with no matching `>`
     * stays an ordinary comparison.
     */
    void
    captureArgs(std::size_t lparen, std::size_t rparen, CallSite &cs)
        const
    {
        if (rparen <= lparen)
            return; // unbalanced: leave argCount unknown
        if (rparen == lparen + 1) {
            cs.argCount = 0;
            return;
        }
        auto flush = [&](std::size_t b, std::size_t e) {
            if (e == b + 1 && (isIdent(toks_[b]) ||
                               toks_[b].kind == TokKind::Number))
                cs.args.push_back(toks_[b].text);
            else
                cs.args.push_back("");
            cs.argRoots.push_back(argRoot(b, e));
        };
        int depth = 0;
        std::size_t b = lparen + 1;
        for (std::size_t k = lparen + 1; k < rparen; ++k) {
            const Token &t = toks_[k];
            if (isPunct(t, "(") || isPunct(t, "[") ||
                isPunct(t, "{")) {
                ++depth;
                continue;
            }
            if (isPunct(t, ")") || isPunct(t, "]") ||
                isPunct(t, "}")) {
                --depth;
                continue;
            }
            if (depth != 0)
                continue;
            if (isPunct(t, "<") && isIdent(toks_[k - 1])) {
                const std::size_t after = skipAngles(k, rparen);
                if (after > k + 1 && after <= rparen &&
                    isPunct(toks_[after - 1], ">")) {
                    k = after - 1;
                    continue;
                }
            }
            if (isPunct(t, ",")) {
                flush(b, k);
                b = k + 1;
            }
        }
        flush(b, rparen);
        cs.argCount = static_cast<int>(cs.args.size());
    }

    /**
     * The identifier an argument expression [@p b, @p e) is "about":
     * the first identifier that is not a qualifier (`std::`), not a
     * template/cast head (`min<`), not a function name (`move(`) and
     * not itself qualified (`::ptrdiff_t`). `*base` roots at "base",
     * `std::move(seg.data)` at "seg", `segs.data()` at "segs".
     */
    std::string
    argRoot(std::size_t b, std::size_t e) const
    {
        for (std::size_t k = b; k < e; ++k) {
            const Token &t = toks_[k];
            if (!isIdent(t) || keywords().count(t.text) != 0)
                continue;
            if (k + 1 < e && (isPunct(toks_[k + 1], "::") ||
                              isPunct(toks_[k + 1], "<") ||
                              isPunct(toks_[k + 1], "(")))
                continue;
            if (k > b && isPunct(toks_[k - 1], "::"))
                continue;
            return t.text;
        }
        return "";
    }

    // ---- body scanning --------------------------------------------
    std::string
    qualifyLock(const std::string &expr,
                const std::string &ownerQual) const
    {
        // A simple identifier that is plausibly a member (and the
        // owner is a member function) is qualified by the class so
        // `mu_` means the same lock from every method. Everything
        // else keeps its spelled form.
        const bool simple =
            !expr.empty() &&
            expr.find_first_of(".:-<>()[]") == std::string::npos;
        auto pos = ownerQual.rfind("::");
        if (simple && pos != std::string::npos)
            return ownerQual.substr(0, pos) + "::" + expr;
        return expr;
    }

    /// Root (non-lambda) ancestor qual name, for lock qualification.
    std::string
    rootQual(int funcIdx) const
    {
        const Function *f =
            &prog_.functions[static_cast<std::size_t>(funcIdx)];
        while (f->parent >= 0)
            f = &prog_.functions[static_cast<std::size_t>(f->parent)];
        return f->qualName;
    }

    std::vector<std::string>
    heldNow(const std::vector<Guard> &guards) const
    {
        std::vector<std::string> held;
        held.reserve(guards.size());
        for (const auto &g : guards)
            held.push_back(g.lockId);
        return held;
    }

    /**
     * Scan a function body starting at its '{' (index @p lbrace).
     * Records call sites, lock events, lambdas (recursively), sysno
     * refs, raw counters and entries_ accesses into function
     * @p funcIdx. Returns the index of the matching '}'.
     */
    std::size_t
    scanBody(std::size_t lbrace, std::size_t limit, int funcIdx,
             const std::string &ownerQual)
    {
        int depth = 0;
        std::vector<OpenParen> parens;
        std::vector<Guard> guards;
        std::size_t i = lbrace;

        auto fn = [this, funcIdx]() -> Function & {
            return prog_.functions[static_cast<std::size_t>(funcIdx)];
        };
        auto inDeferral = [&parens]() {
            return std::any_of(parens.begin(), parens.end(),
                               [](const OpenParen &p) {
                                   return p.deferral;
                               });
        };

        for (; i < limit; ++i) {
            const Token &t = toks_[i];
            if (isPunct(t, "{")) {
                ++depth;
                continue;
            }
            if (isPunct(t, "}")) {
                --depth;
                // Block-scoped guards die with their block.
                guards.erase(
                    std::remove_if(guards.begin(), guards.end(),
                                   [depth](const Guard &g) {
                                       return g.depth > depth;
                                   }),
                    guards.end());
                if (depth == 0)
                    return i;
                continue;
            }
            if (isPunct(t, "(")) {
                OpenParen op;
                std::size_t nameIdx = 0; // 0 = not a call
                if (i > lbrace && isIdent(toks_[i - 1]) &&
                    keywords().count(toks_[i - 1].text) == 0) {
                    nameIdx = i - 1;
                } else if (i > lbrace && isPunct(toks_[i - 1], ">")) {
                    // Explicit template argument list:
                    // `min<std::uint64_t>(...)` — hop back over the
                    // balanced angle section to the name. Comparison
                    // and shift `>` fail the balance check and are
                    // left alone (as are cast keywords).
                    int d = 0;
                    std::size_t k = i - 1;
                    bool matched = false;
                    for (; k > lbrace && (i - 1) - k < 24; --k) {
                        if (isPunct(toks_[k], ">"))
                            ++d;
                        else if (isPunct(toks_[k], "<") && --d == 0) {
                            matched = true;
                            break;
                        }
                    }
                    if (matched && k > lbrace && isIdent(toks_[k - 1]) &&
                        keywords().count(toks_[k - 1].text) == 0)
                        nameIdx = k - 1;
                }
                if (nameIdx != 0) {
                    op.callee = toks_[nameIdx].text;
                    op.deferral = deferralSinks().count(op.callee) > 0;
                    CallSite cs;
                    cs.callee = op.callee;
                    // Explicit qualification: walk back over ident::
                    // pairs (e.g. std::fprintf, sim::Delay).
                    {
                        std::size_t k = nameIdx;
                        while (k >= 2 && isPunct(toks_[k - 1], "::") &&
                               isIdent(toks_[k - 2])) {
                            cs.qualifier =
                                toks_[k - 2].text +
                                (cs.qualifier.empty() ? "" : "::") +
                                cs.qualifier;
                            k -= 2;
                        }
                    }
                    // Receiver: the ident before a '.'/'->' ahead of
                    // the name — or, for a chained receiver like
                    // `p.fds().allocate(...)`, the innermost call's
                    // name ("fds").
                    if (cs.qualifier.empty() && nameIdx >= 2) {
                        const Token &sep = toks_[nameIdx - 1];
                        if (isPunct(sep, ".") || isPunct(sep, "->")) {
                            if (isIdent(toks_[nameIdx - 2])) {
                                cs.receiver = toks_[nameIdx - 2].text;
                            } else if (isPunct(toks_[nameIdx - 2], ")")) {
                                int d = 0;
                                std::size_t k = nameIdx - 2;
                                for (; k > 0; --k) {
                                    if (isPunct(toks_[k], ")"))
                                        ++d;
                                    else if (isPunct(toks_[k], "(") &&
                                             --d == 0)
                                        break;
                                }
                                if (k > 0 && isIdent(toks_[k - 1]))
                                    cs.receiver = toks_[k - 1].text;
                            }
                        }
                    }
                    cs.line = toks_[nameIdx].line;
                    cs.tokenIndex = nameIdx;
                    cs.deferred = inDeferral();
                    cs.heldLocks = heldNow(guards);
                    captureArgs(i, matchForward(i, "(", ")", limit),
                                cs);
                    // lock()/unlock() through a receiver are lock
                    // events, not interesting call sites.
                    if (cs.callee == "lock" || cs.callee == "unlock") {
                        handleManualLock(i, funcIdx, guards);
                    } else {
                        fn().calls.push_back(std::move(cs));
                    }
                }
                parens.push_back(op);
                continue;
            }
            if (isPunct(t, ")")) {
                if (!parens.empty())
                    parens.pop_back();
                continue;
            }
            if (isPunct(t, "[")) {
                // Lambda introducer iff not a subscript.
                const Token &prev = toks_[i - 1];
                const bool subscript =
                    isIdent(prev) || prev.kind == TokKind::Number ||
                    isPunct(prev, ")") || isPunct(prev, "]");
                if (!subscript &&
                    !(i + 1 < limit && isPunct(toks_[i + 1], "["))) {
                    std::size_t consumed = tryLambda(
                        i, limit, funcIdx, ownerQual, inDeferral());
                    if (consumed != i) {
                        i = consumed; // at lambda's '}'
                        continue;
                    }
                }
                continue;
            }
            if (!isIdent(t))
                continue;

            // sysno::name reference.
            if (t.text == "sysno" && i + 2 < limit &&
                isPunct(toks_[i + 1], "::") && isIdent(toks_[i + 2])) {
                fn().sysnoRefs.push_back(
                    {toks_[i + 2].text, toks_[i + 2].line});
                continue;
            }
            // Raw ring counters.
            if (t.text == "headRaw_" || t.text == "tailRaw_" ||
                t.text == "claimedRaw_") {
                fn().rawCounters.push_back({t.text, t.line});
                continue;
            }
            // entries_[...] read/write.
            if (t.text == "entries_" && i + 1 < limit &&
                isPunct(toks_[i + 1], "[")) {
                std::size_t rb = matchForward(i + 1, "[", "]", limit);
                bool write = false;
                if (rb + 1 < limit && isPunct(toks_[rb + 1], "=") &&
                    !(rb + 2 < limit && isPunct(toks_[rb + 2], "=")))
                    write = true;
                fn().entriesAccesses.push_back({write, t.line, i});
                continue;
            }
            // Scoped guard declarations.
            if (t.text == "lock_guard" || t.text == "unique_lock" ||
                t.text == "scoped_lock") {
                i = handleGuardDecl(i, limit, funcIdx, depth,
                                    guards);
                continue;
            }
        }
        return limit == 0 ? 0 : limit - 1;
    }

    /**
     * Parse `lock_guard<T> name(args)` (and unique_lock/scoped_lock)
     * starting at the template name token @p i. Records acquisitions
     * and guard lifetimes. Returns the index to resume from.
     */
    std::size_t
    handleGuardDecl(std::size_t i, std::size_t limit, int funcIdx,
                    int depth, std::vector<Guard> &guards)
    {
        Function &fn =
            prog_.functions[static_cast<std::size_t>(funcIdx)];
        const bool scoped = toks_[i].text == "scoped_lock";
        std::size_t j = i + 1;
        if (j < limit && isPunct(toks_[j], "<"))
            j = skipAngles(j, limit);
        if (j >= limit || !isIdent(toks_[j]))
            return i; // a mention, not a declaration
        const int line = toks_[j].line;
        ++j;
        if (j >= limit || !isPunct(toks_[j], "("))
            return i;
        std::size_t close = matchForward(j, "(", ")", limit);
        // Split args on top-level commas.
        std::vector<std::string> exprs;
        std::string cur;
        int pdepth = 0;
        for (std::size_t k = j + 1; k < close; ++k) {
            const Token &a = toks_[k];
            if (isPunct(a, "(") || isPunct(a, "[") || isPunct(a, "{"))
                ++pdepth;
            else if (isPunct(a, ")") || isPunct(a, "]") ||
                     isPunct(a, "}"))
                --pdepth;
            if (isPunct(a, ",") && pdepth == 0) {
                exprs.push_back(cur);
                cur.clear();
                continue;
            }
            cur += a.text;
        }
        if (!cur.empty())
            exprs.push_back(cur);
        // std::defer_lock: no acquisition happens here.
        for (const auto &e : exprs) {
            if (e.find("defer_lock") != std::string::npos)
                return close;
        }
        const std::string root = rootQual(funcIdx);
        // Snapshot once: members of a scoped_lock group are acquired
        // atomically, so no member is "held before" another.
        const std::vector<std::string> held = heldNow(guards);
        for (const auto &e : exprs) {
            if (e.find("adopt_lock") != std::string::npos ||
                e.find("try_to_lock") != std::string::npos)
                continue;
            LockEvent ev;
            ev.lockId = qualifyLock(e, root);
            ev.acquire = true;
            ev.line = line;
            ev.tokenIndex = j;
            ev.heldBefore = held;
            ev.atomicGroup = scoped && exprs.size() > 1;
            fn.lockEvents.push_back(ev);
            guards.push_back({ev.lockId, depth});
        }
        return close;
    }

    /** Manual x.lock() / x->unlock(); @p lparen is the '(' index. */
    void
    handleManualLock(std::size_t lparen, int funcIdx,
                     std::vector<Guard> &guards)
    {
        // toks_[lparen-1] is lock/unlock; receiver sits before a
        // '.'/'->' at lparen-2.
        if (lparen < 3)
            return;
        const Token &dot = toks_[lparen - 2];
        if (!isPunct(dot, ".") && !isPunct(dot, "->"))
            return; // free lock()/unlock(): not a mutex op we model
        const Token &recv = toks_[lparen - 3];
        if (!isIdent(recv))
            return;
        Function &fn =
            prog_.functions[static_cast<std::size_t>(funcIdx)];
        const std::string lockId =
            qualifyLock(recv.text, rootQual(funcIdx));
        if (toks_[lparen - 1].text == "lock") {
            LockEvent ev;
            ev.lockId = lockId;
            ev.acquire = true;
            ev.line = recv.line;
            ev.tokenIndex = lparen - 1;
            ev.heldBefore = heldNow(guards);
            fn.lockEvents.push_back(ev);
            guards.push_back({lockId, 0});
            return;
        }
        // unlock: drop the most recent matching guard.
        for (auto it = guards.rbegin(); it != guards.rend(); ++it) {
            if (it->lockId == lockId) {
                guards.erase(std::next(it).base());
                break;
            }
        }
    }

    /**
     * Try to parse a lambda whose '[' is at @p i. On success, records
     * a child function for the body and returns the index of the
     * body's closing '}'. Returns @p i unchanged when this bracket is
     * not a lambda.
     */
    std::size_t
    tryLambda(std::size_t i, std::size_t limit, int parentIdx,
              const std::string &ownerQual, bool deferredCtx)
    {
        std::size_t rb = matchForward(i, "[", "]", limit);
        if (rb >= limit)
            return i;
        std::size_t j = rb + 1;
        if (j < limit && isPunct(toks_[j], "("))
            j = matchForward(j, "(", ")", limit) + 1;
        while (j < limit && isIdent(toks_[j]) &&
               (toks_[j].text == "mutable" ||
                toks_[j].text == "constexpr" ||
                toks_[j].text == "noexcept"))
            ++j;
        if (j < limit && isPunct(toks_[j], "->")) {
            ++j;
            while (j < limit && !isPunct(toks_[j], "{") &&
                   !isPunct(toks_[j], ";") && !isPunct(toks_[j], ",") &&
                   !isPunct(toks_[j], ")")) {
                if (isPunct(toks_[j], "<")) {
                    j = skipAngles(j, limit);
                    continue;
                }
                ++j;
            }
        }
        if (j >= limit || !isPunct(toks_[j], "{"))
            return i;

        const int funcIdx = static_cast<int>(prog_.functions.size());
        Function fn;
        fn.qualName = ownerQual + "::<lambda>";
        fn.shortName = "<lambda>";
        fn.fileIndex = fileIndex_;
        fn.line = toks_[i].line;
        fn.bodyBegin = j;
        fn.parent = parentIdx;
        fn.isLambda = true;
        fn.deferred = deferredCtx;
        prog_.functions.push_back(std::move(fn));
        std::size_t end = scanBody(j, limit, funcIdx, ownerQual);
        prog_.functions[static_cast<std::size_t>(funcIdx)].bodyEnd =
            end;
        return end;
    }

    /// A dominating sign guard and the token range it covers.
    struct GuardRange
    {
        std::string name;
        bool nonNeg = false; ///< true: name >= 0 past the guard
        std::size_t begin = 0;
        std::size_t end = 0; ///< inclusive (the block's '}')
    };

    /**
     * Find dominating sign guards and stamp their facts onto call
     * sites: `if (x < 0) return ...;` proves x non-negative from the
     * guard to the end of its enclosing brace block, and
     * `if (x >= 0) return ...;` proves it negative. The guarded
     * statement must divert control (a lone return/co_return, or a
     * block starting with one); anything else contributes no fact.
     * The callgraph uses these to prune sites unreachable under a
     * caller-provided sign context — the pread/pwrite handlers guard
     * `off < 0` with -EINVAL, so the stream/pipe parks behind the
     * callee's `pos_override >= 0` -ESPIPE return cannot be reached.
     */
    void
    markGuardFacts()
    {
        std::vector<GuardRange> ranges;
        std::vector<std::size_t> braces;
        for (std::size_t i = 0; i < toks_.size(); ++i) {
            const Token &t = toks_[i];
            if (isPunct(t, "{")) {
                braces.push_back(i);
                continue;
            }
            if (isPunct(t, "}")) {
                if (!braces.empty())
                    braces.pop_back();
                continue;
            }
            if (!isIdent(t) || t.text != "if" || braces.empty())
                continue;
            if (i + 5 >= toks_.size() || !isPunct(toks_[i + 1], "(") ||
                !isIdent(toks_[i + 2]))
                continue;
            std::size_t r = 0; // index of the condition's ')'
            bool nonNeg = false;
            if (isPunct(toks_[i + 3], "<") &&
                toks_[i + 4].kind == TokKind::Number &&
                toks_[i + 4].text == "0" && isPunct(toks_[i + 5], ")")) {
                r = i + 5;
                nonNeg = true;
            } else if (i + 6 < toks_.size() &&
                       isPunct(toks_[i + 3], ">") &&
                       isPunct(toks_[i + 4], "=") &&
                       toks_[i + 5].kind == TokKind::Number &&
                       toks_[i + 5].text == "0" &&
                       isPunct(toks_[i + 6], ")")) {
                r = i + 6;
                nonNeg = false;
            } else {
                continue;
            }
            std::size_t stmtEnd = 0;
            if (r + 1 < toks_.size() && isIdent(toks_[r + 1]) &&
                (toks_[r + 1].text == "return" ||
                 toks_[r + 1].text == "co_return")) {
                std::size_t s = r + 1;
                while (s < toks_.size() && !isPunct(toks_[s], ";"))
                    ++s;
                stmtEnd = s;
            } else if (r + 2 < toks_.size() &&
                       isPunct(toks_[r + 1], "{") &&
                       isIdent(toks_[r + 2]) &&
                       (toks_[r + 2].text == "return" ||
                        toks_[r + 2].text == "co_return")) {
                stmtEnd = matchForward(r + 1, "{", "}", toks_.size());
            } else {
                continue;
            }
            const std::size_t blockEnd =
                matchForward(braces.back(), "{", "}", toks_.size());
            if (stmtEnd + 1 >= blockEnd)
                continue;
            ranges.push_back(
                {toks_[i + 2].text, nonNeg, stmtEnd + 1, blockEnd});
        }
        if (ranges.empty())
            return;
        for (Function &f : prog_.functions) {
            if (f.fileIndex != fileIndex_)
                continue;
            for (CallSite &c : f.calls) {
                for (const GuardRange &g : ranges) {
                    if (c.tokenIndex < g.begin ||
                        c.tokenIndex > g.end)
                        continue;
                    (g.nonNeg ? c.nonNegHere : c.negHere)
                        .insert(g.name);
                }
            }
        }
    }

    Program &prog_;
    const LexedFile &file_;
    const std::vector<Token> &toks_;
    int fileIndex_;
};

} // namespace

void
extractFile(Program &prog, int fileIndex)
{
    FileExtractor ex(prog, fileIndex);
    ex.run();
}

void
indexFunctions(Program &prog)
{
    prog.byShortName.clear();
    prog.byQualName.clear();
    for (std::size_t idx = 0; idx < prog.functions.size(); ++idx) {
        const Function &f = prog.functions[idx];
        if (f.isLambda)
            continue;
        prog.byQualName.emplace(f.qualName, static_cast<int>(idx));
        const std::size_t sep = f.qualName.find("::");
        if (sep != std::string::npos &&
            prog.opaqueClasses.count(f.qualName.substr(0, sep)) != 0)
            continue;
        prog.byShortName[f.shortName].push_back(
            static_cast<int>(idx));
    }
}

} // namespace genesys::analysis
