/**
 * @file
 * gstat's function/method/lambda extractor (DESIGN.md §14).
 *
 * Walks each lexed file with a scope stack (namespace / class / other
 * braces), recognizes function definitions by their `name(args)
 * [qualifiers] {` shape (including out-of-class `Class::name` and
 * constructor-initializer lists), and scans every body for:
 *
 *  - call sites (`ident(`), with the set of locks held at the call and
 *    a `deferred` bit when the call is an argument to a deferral sink
 *    (WorkQueue::enqueue/enqueueOn, EventQueue::scheduleIn, spawn, …);
 *  - lambda bodies, extracted as child functions of their enclosing
 *    function; a lambda handed to a deferral sink is marked deferred —
 *    its calls run later on another logical thread, so the may-park
 *    and lock passes must not charge them to the parent;
 *  - lock events: `std::lock_guard/unique_lock/scoped_lock` guards
 *    (block-scoped) and manual `x.lock()/x.unlock()` (function-scoped),
 *    with member locks qualified by the enclosing class;
 *  - `sysno::name` references, raw ring-counter tokens, and
 *    `entries_[...]` accesses (read vs write) for the classification
 *    and ordering passes.
 *
 * Known soundness limits (documented in DESIGN.md §14): resolution is
 * name-based, operator overloads and function pointers are not modeled,
 * and a lock's identity is its spelled expression (qualified by class
 * for simple member names).
 */

#ifndef GENESYS_ANALYSIS_EXTRACT_HH
#define GENESYS_ANALYSIS_EXTRACT_HH

#include "analysis/model.hh"

namespace genesys::analysis
{

/** Extract all functions of files[fileIndex] into prog.functions. */
void extractFile(Program &prog, int fileIndex);

/** Rebuild byShortName / byQualName after extraction. */
void indexFunctions(Program &prog);

} // namespace genesys::analysis

#endif // GENESYS_ANALYSIS_EXTRACT_HH
