/**
 * @file
 * gstat's seeded-defect corpus (`gstat --self-test`).
 *
 * Every analysis rule is exercised twice: a seeded defect the analyzer
 * must catch (with a witness path for the interprocedural rules) and a
 * nearby negative the analyzer must stay silent on. The corpus is the
 * regression net for the extractor and passes: a lexer desync, a
 * broken deferral edge, or a lost lock snapshot all surface here as a
 * missing or spurious finding.
 */

#include "analysis/analyzer.hh"

#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace genesys::analysis
{

namespace
{

struct Expect
{
    const char *rule;
    int count;
};

struct CorpusCase
{
    const char *name;
    std::vector<SourceFile> files;
    std::vector<Expect> expects;
    int suppressed = 0;
};

// Rules whose findings must carry a witness (an interprocedural call
// chain, or a gflow path trace from acquire/source to exit/sink).
const std::set<std::string> &
witnessRules()
{
    static const std::set<std::string> rules = {
        "nonblocking-handler-parks", "drain-loop-park",
        "park-under-lock", "lock-order-cycle",
        "must-release-fd", "must-release-ring-claim",
        "must-release-slot", "must-release-netseg",
        "must-release-epoll", "gpu-taint-mem", "gpu-taint-alloc",
        "gpu-taint-index", "gpu-taint-window"};
    return rules;
}

std::vector<CorpusCase>
buildCorpus()
{
    std::vector<CorpusCase> cases;

    // ---- may-park: handler classification ---------------------------
    cases.push_back(
        {"handler-classification",
         {{"corpus/handlers.cc", R"src(
namespace osk
{
namespace sysno
{
inline constexpr int read = 0;
inline constexpr int ioctl = 16;
inline constexpr int getpid = 39;
inline constexpr int futex = 98;
inline constexpr int dup = 32;
} // namespace sysno
} // namespace osk

bool
mayBlockIndefinitely(int n)
{
    return n == osk::sysno::read;
}

long
sysRead(WaitQueue &wq)
{
    return wq.wait(); // classified blocking: the park is expected
}

long
sysIoctl(WaitQueue &wq)
{
    return wq.wait(); // seeded defect: direct indefinite park
}

long
parkHelper(WaitQueue &wq)
{
    return wq.wait();
}

long
sysGetpid(WaitQueue &wq)
{
    return parkHelper(wq); // seeded defect: transitive indefinite park
}

long
sysFutex(Semaphore &sem)
{
    sem.acquire(); // bounded park: fine for a non-blocking handler
    return 0;
}

long
sysDup(WorkQueue &q, WaitQueue &wq)
{
    q.enqueue([&wq] { wq.wait(); }); // deferred: runs on a worker
    return 0;
}

void
buildTable()
{
    install(sysno::read, "read", sysRead);
    install(sysno::ioctl, "ioctl", sysIoctl);
    install(sysno::getpid, "getpid", sysGetpid);
    install(sysno::futex, "futex", sysFutex);
    install(sysno::dup, "dup", sysDup);
}
)src"}},
         {{"nonblocking-handler-parks", 2}}});

    // ---- may-park: sign-context sensitivity -------------------------
    // The pread/pwrite -ESPIPE flow: the handler rejects a negative
    // offset up front, and the shared path's parks all sit behind an
    // `off >= 0` early return, so the handler can never reach them.
    cases.push_back(
        {"sign-guard-flow-clean",
         {{"corpus/sign_guard.cc", R"src(
namespace osk
{
namespace sysno
{
inline constexpr int pread64 = 17;
} // namespace sysno
} // namespace osk

bool
mayBlockIndefinitely(int n)
{
    return false;
}

long
doStreamRead(WaitQueue &wq, long pos_override)
{
    if (pos_override >= 0)
        return -29; // -ESPIPE: streams are not seekable
    return wq.wait(); // only reachable with pos_override < 0
}

long
sysPread(WaitQueue &wq, long off)
{
    if (off < 0)
        return -22; // -EINVAL: negative offsets rejected up front
    return doStreamRead(wq, off); // negative: the park is dead here
}

void
buildTable()
{
    install(sysno::pread64, "pread64", sysPread);
}
)src"}},
         {}});

    // Without the caller-side guard the same callee park is live: the
    // handler can forward a negative offset straight into the wait.
    cases.push_back(
        {"sign-guard-flow-unguarded",
         {{"corpus/sign_unguarded.cc", R"src(
namespace osk
{
namespace sysno
{
inline constexpr int pread64 = 17;
} // namespace sysno
} // namespace osk

bool
mayBlockIndefinitely(int n)
{
    return false;
}

long
doStreamRead(WaitQueue &wq, long pos_override)
{
    if (pos_override >= 0)
        return -29;
    return wq.wait();
}

long
sysPread(WaitQueue &wq, long off)
{
    return doStreamRead(wq, off); // seeded defect: off may be < 0
}

void
buildTable()
{
    install(sysno::pread64, "pread64", sysPread);
}
)src"}},
         {{"nonblocking-handler-parks", 1}}});

    // ---- may-park: arity-refined resolution -------------------------
    // Two definitions share a short name; only the arity-matching one
    // is a may-call target. The two-argument stream read parks, the
    // one-argument device read does not.
    cases.push_back(
        {"arity-refined-resolution",
         {{"corpus/arity.cc", R"src(
namespace osk
{
namespace sysno
{
inline constexpr int ioctl = 16;
inline constexpr int dup = 32;
} // namespace sysno
} // namespace osk

bool
mayBlockIndefinitely(int n)
{
    return false;
}

struct Stream
{
    WaitQueue wq_;
    long read(void *buf, unsigned long len) { return wq_.wait(); }
};

struct Device
{
    long read(unsigned long bytes) { return 0; }
};

long
sysIoctl(Device &dev)
{
    return dev.read(16); // negative: one arg cannot be Stream::read
}

long
sysDup(Stream &s, void *buf)
{
    return s.read(buf, 16); // seeded defect: two args reach the park
}

void
buildTable()
{
    install(sysno::ioctl, "ioctl", sysIoctl);
    install(sysno::dup, "dup", sysDup);
}
)src"}},
         {{"nonblocking-handler-parks", 1}}});

    // ---- may-park: ring consumer drain loop -------------------------
    cases.push_back(
        {"drain-loop-parks",
         {{"corpus/drain.cc", R"src(
sim::Task<>
InterruptBackend::ringConsumeTask(unsigned shard)
{
    for (;;) {
        cpus.acquireCore(); // bounded: a core always frees
        auto inlinePark = [&] { wq.wait(); };
        inlinePark(); // seeded defect: inline park wedges the shard
    }
}
)src"}},
         {{"drain-loop-park", 1}}});

    cases.push_back(
        {"drain-loop-clean",
         {{"corpus/drain_ok.cc", R"src(
sim::Task<>
InterruptBackend::ringConsumeTask(unsigned shard)
{
    cpus.acquireCore();
    queue.enqueueOn(shard, [&] { wq.wait(); }); // punted, not inline
}
)src"}},
         {}});

    // ---- may-park: park while holding a lock ------------------------
    cases.push_back(
        {"park-under-lock",
         {{"corpus/park_lock.cc", R"src(
struct Shard
{
    std::mutex mu_;
    WaitQueue wq_;

    void direct()
    {
        std::lock_guard<std::mutex> g(mu_);
        wq_.wait(); // seeded defect: indefinite park under mu_
    }

    void parkHelper() { wq_.wait(); }

    void transitive()
    {
        std::lock_guard<std::mutex> g(mu_);
        parkHelper(); // seeded defect: callee parks under mu_
    }

    void released()
    {
        {
            std::lock_guard<std::mutex> g(mu_);
        }
        wq_.wait(); // negative: the guard died with its block
    }
};
)src"}},
         {{"park-under-lock", 2}}});

    // ---- lock order -------------------------------------------------
    cases.push_back(
        {"lock-order",
         {{"corpus/locks.cc", R"src(
struct Inverted
{
    std::mutex a_;
    std::mutex b_;
    void ab()
    {
        std::lock_guard<std::mutex> g1(a_);
        std::lock_guard<std::mutex> g2(b_);
    }
    void ba()
    {
        std::lock_guard<std::mutex> g1(b_);
        std::lock_guard<std::mutex> g2(a_); // seeded defect: AB/BA
    }
};

struct Triangle
{
    std::mutex a_;
    std::mutex b_;
    std::mutex c_;
    void ab()
    {
        std::lock_guard<std::mutex> g1(a_);
        std::lock_guard<std::mutex> g2(b_);
    }
    void bc()
    {
        std::lock_guard<std::mutex> g1(b_);
        std::lock_guard<std::mutex> g2(c_);
    }
    void ca()
    {
        std::lock_guard<std::mutex> g1(c_);
        std::lock_guard<std::mutex> g2(a_); // seeded defect: 3-cycle
    }
};

struct Recursive
{
    std::mutex m_;
    void again()
    {
        std::lock_guard<std::mutex> g(m_);
        std::lock_guard<std::mutex> h(m_); // seeded defect: self-lock
    }
};

struct ThroughCalls
{
    std::mutex x_;
    std::mutex y_;
    void takeY() { std::lock_guard<std::mutex> g(y_); }
    void lockX() { std::lock_guard<std::mutex> g(x_); }
    void first()
    {
        std::lock_guard<std::mutex> g(x_);
        takeY();
    }
    void second()
    {
        std::lock_guard<std::mutex> g(y_);
        lockX(); // seeded defect: inversion through the call graph
    }
};

struct Consistent
{
    std::mutex a_;
    std::mutex b_;
    void one()
    {
        std::lock_guard<std::mutex> g1(a_);
        std::lock_guard<std::mutex> g2(b_);
    }
    void two()
    {
        std::lock_guard<std::mutex> g1(a_);
        std::lock_guard<std::mutex> g2(b_); // negative: same order
    }
    void atomicPair(std::mutex &m, std::mutex &n)
    {
        std::scoped_lock<std::mutex, std::mutex> g(m, n); // negative
    }
};
)src"}},
         {{"lock-order-cycle", 4}}});

    // ---- ordering discipline ----------------------------------------
    cases.push_back(
        {"ordering-discipline",
         {{"corpus/ordering.cc", R"src(
struct Ring
{
    int entries_[16];
    unsigned long loadHeadAcquire() const;
    unsigned long loadTailAcquire() const;
    void storeHeadRelease(unsigned long v);
    void storeTailRelease(unsigned long v);

    void goodPublish(Gsan *g)
    {
        unsigned long t = loadTailAcquire();
        storeTailRelease(t + 1);
        g->ringPublish(1, 1); // negative: store + annotation paired
    }

    void badPublish()
    {
        storeTailRelease(7); // seeded defect: no acquire load first
    }

    void badAnnotation(Gsan *g)
    {
        g->ringPublish(1, 1); // seeded defect: annotation, no store
    }

    int badPeek()
    {
        return entries_[0]; // seeded defect: unannotated read
    }

    int goodPop(Gsan *g)
    {
        g->ringConsume(1);
        int v = entries_[indexOf(loadHeadAcquire())];
        storeHeadRelease(loadHeadAcquire() + 1); // load inside args
        return v;
    }
};

void
touchRaw(Ring &r)
{
    r.headRaw_ = 1; // seeded defect: raw counter outside core/ring.hh
}
)src"}},
         {{"unannotated-consume", 1},
          {"unpaired-hb-annotation", 1},
          {"unpaired-release", 1},
          {"raw-counter-access", 1}}});

    // ---- suppressions -----------------------------------------------
    cases.push_back(
        {"suppressions",
         {{"corpus/suppress.cc", R"src(
struct Near
{
    void storeTailRelease(unsigned long v);
    // Intentional: exercises the allow() window.
    // gstat: allow(unpaired-release)
    void resetTail() { storeTailRelease(0); }
};

struct Far
{
    void storeTailRelease(unsigned long v);
    // gstat: allow(unpaired-release)
    //
    //
    //
    void resetTail() { storeTailRelease(0); } // allow is out of range
};
)src"}},
         {{"unpaired-release", 1}},
         1});

    // ---- raw string literals must not desync the lexer --------------
    cases.push_back(
        {"raw-string-literals",
         {{"corpus/rawstring.cc", R"src(
const char *kScript = R"(storeTailRelease(99); " stray quote ' )";

struct Q
{
    void storeTailRelease(unsigned long v);
    void bad()
    {
        storeTailRelease(1); // seeded defect: proves lexing stayed
                             // in sync past the raw string
    }
};
)src"}},
         {{"unpaired-release", 1}}});

    // ---- gflow: fd lifecycle ----------------------------------------
    cases.push_back(
        {"flow-fd-lifecycle",
         {{"corpus/flow_fd.cc", R"src(
long
leakOnError(Proc &p, File f, bool bad)
{
    const int fd = p.fds().allocate(f);
    if (bad)
        return -1; // seeded defect: fd leaks on the error path
    p.fds().close(fd);
    return fd;
}

long
closedOnAllPaths(Proc &p, File f, bool bad)
{
    const int fd = p.fds().allocate(f);
    if (bad) {
        p.fds().close(fd);
        return -1; // negative: error path closes first
    }
    p.fds().close(fd);
    return 0;
}

long
transferred(Proc &p, File f)
{
    return p.fds().allocate(f); // negative: ownership moves up
}

void
shutdownFd(Proc &p, int fd)
{
    p.fds().close(fd);
}

long
releasedViaHelper(Proc &p, File f)
{
    const int fd = p.fds().allocate(f);
    shutdownFd(p, fd); // negative: the helper closes it
    return 0;
}
)src"}},
         {{"must-release-fd", 1}}});

    // ---- gflow: ring claim ------------------------------------------
    cases.push_back(
        {"flow-ring-claim",
         {{"corpus/flow_claim.cc", R"src(
struct CompletionRing
{
    std::optional<unsigned long> tryClaim(unsigned long n,
                                          unsigned long head);
    unsigned long loadHeadAcquire() const;
    void writeEntry(unsigned long pos, unsigned v);
    bool tryPublish(unsigned long base, unsigned long n);
};

bool
claimDroppedOnThrow(CompletionRing &cq, unsigned v, bool full)
{
    auto base = cq.tryClaim(1, cq.loadHeadAcquire());
    if (!base)
        return false; // negative edge: the claim never happened
    cq.writeEntry(*base, v);
    if (full)
        throw RingOverflow{}; // seeded defect: claimed, not published
    cq.tryPublish(*base, 1);
    return true;
}

bool
publishedOnAllPaths(CompletionRing &cq, unsigned v)
{
    auto base = cq.tryClaim(1, cq.loadHeadAcquire());
    if (!base)
        return false;
    cq.writeEntry(*base, v);
    cq.tryPublish(*base, 1); // negative: straight-line publish
    return true;
}
)src"}},
         {{"must-release-ring-claim", 1}}});

    // ---- gflow: slot FSM --------------------------------------------
    cases.push_back(
        {"flow-slot-fsm",
         {{"corpus/flow_slot.cc", R"src(
sim::Task<bool>
abandonedSlot(SyscallSlot &slot, bool fail)
{
    if (!slot.beginProcessing())
        co_return false; // negative edge: never acquired
    const long ret = runHandler(slot);
    if (fail)
        co_return false; // seeded defect: slot never completed
    slot.complete(ret);
    co_return true;
}

sim::Task<bool>
completedSlot(SyscallSlot &slot, bool fail)
{
    if (!slot.beginProcessing())
        co_return false;
    const long ret = runHandler(slot);
    if (fail) {
        slot.complete(-4); // negative: error path completes too
        co_return false;
    }
    slot.complete(ret);
    co_return true;
}
)src"}},
         {{"must-release-slot", 1}}});

    // ---- gflow: zero-copy segment loans -----------------------------
    cases.push_back(
        {"flow-netseg-loan",
         {{"corpus/flow_netseg.cc", R"src(
sim::Task<long>
loanDropped(TcpSocket *sock, OpenFile *file)
{
    std::vector<NetSeg> segs(16);
    const auto got = co_await sock->readSegments(segs.data(), 16);
    if (got <= 0)
        co_return got; // negative edge: nothing was loaned
    if (got > 8)
        co_return -1; // seeded defect: loaned segments dropped
    for (int i = 0; i < got; ++i) {
        auto &seg = segs[i];
        file->loanedSegs.push_back(std::move(seg.data));
    }
    co_return got;
}

sim::Task<long>
loanDistributed(TcpSocket *sock, OpenFile *file)
{
    std::vector<NetSeg> segs(16);
    const auto got = co_await sock->readSegments(segs.data(), 16);
    if (got <= 0)
        co_return got;
    for (int i = 0; i < got; ++i) {
        auto &seg = segs[i];
        file->loanedSegs.push_back(std::move(seg.data));
    }
    co_return got; // negative: every loan reached an owner
}
)src"}},
         {{"must-release-netseg", 1}}});

    // ---- gflow: epoll interest registration -------------------------
    cases.push_back(
        {"flow-epoll-interest",
         {{"corpus/flow_epoll.cc", R"src(
long
interestLeaked(EpollInstance &ep, OpenFile *target, bool fail)
{
    ep.ctl(EPOLL_CTL_ADD_, target, 7);
    if (fail)
        return -1; // seeded defect: interest never deregistered
    ep.ctl(EPOLL_CTL_DEL_, target, 0);
    return 0;
}

long
interestBalanced(EpollInstance &ep, OpenFile *target, bool fail)
{
    ep.ctl(EPOLL_CTL_ADD_, target, 7);
    if (fail) {
        ep.ctl(EPOLL_CTL_DEL_, target, 0); // negative: balanced
        return -1;
    }
    ep.ctl(EPOLL_CTL_DEL_, target, 0);
    return 0;
}
)src"}},
         {{"must-release-epoll", 1}}});

    // ---- gflow: taint into memory ops -------------------------------
    cases.push_back(
        {"flow-taint-mem",
         {{"corpus/flow_mem.cc", R"src(
long
unboundedCopy(const SyscallArgs &args, char *dst, const char *src)
{
    const unsigned long n = args.a[2];
    std::memcpy(dst, src, n); // seeded defect: GPU-controlled size
    return 0;
}

long
boundedCopy(const SyscallArgs &args, char *dst, const char *src)
{
    const unsigned long n = args.a[2];
    if (n > 4096)
        return -1;
    std::memcpy(dst, src, n); // negative: dominated by the bound
    return 0;
}

long
clampedCopy(const SyscallArgs &args, char *dst, const char *src,
            unsigned long cap)
{
    const unsigned long n = std::min(args.a[2], cap);
    std::memcpy(dst, src, n); // negative: min() launders the size
    return 0;
}
)src"}},
         {{"gpu-taint-mem", 1}}});

    // ---- gflow: taint into allocation sizes -------------------------
    cases.push_back(
        {"flow-taint-alloc",
         {{"corpus/flow_alloc.cc", R"src(
long
unboundedVec(const SyscallArgs &args)
{
    const int cnt = args.as<int>(2);
    if (cnt < 0)
        return -22; // lower bound only: proves nothing about size
    std::vector<NetSeg> segs(static_cast<unsigned long>(cnt));
    return 0; // seeded defect above: GPU-controlled element count
}

long
boundedVec(const SyscallArgs &args)
{
    const int cnt = args.as<int>(2);
    if (cnt < 0 || cnt > 64)
        return -22;
    std::vector<NetSeg> segs(static_cast<unsigned long>(cnt));
    return 0; // negative: both bounds dominate the allocation
}

long
unboundedResize(const SyscallArgs &args, std::vector<char> &buf)
{
    buf.resize(args.a[3]); // seeded defect: direct source into resize
    return 0;
}
)src"}},
         {{"gpu-taint-alloc", 2}}});

    // ---- gflow: taint into container indexing -----------------------
    cases.push_back(
        {"flow-taint-index",
         {{"corpus/flow_index.cc", R"src(
long
rawIndex(const SyscallArgs &args, FdTable &table)
{
    const unsigned idx = args.as<unsigned>(0);
    return table.rows[idx]; // seeded defect: unchecked GPU index
}

long
assertedIndex(const SyscallArgs &args, FdTable &table)
{
    const unsigned idx = args.as<unsigned>(0);
    GENESYS_ASSERT(idx < table.count, "fd index in range");
    return table.rows[idx]; // negative: asserted bound dominates
}

long
poppedIndex(ServiceCore &core, Shard &shard, SyscallSlot *slots)
{
    const unsigned item = core.tryPopRingEntry(shard);
    return slots[item].state; // seeded defect: ring payload indexes
}
)src"}},
         {{"gpu-taint-index", 2}}});

    // ---- gflow: GPU-window walks, incl. through a call --------------
    cases.push_back(
        {"flow-taint-window",
         {{"corpus/flow_window.cc", R"src(
long
walkWindow(const SyscallArgs &args)
{
    const IoVec *iov = args.ptr<IoVec>(1);
    const int cnt = args.as<int>(2);
    if (cnt < 0)
        return -22;
    long total = 0;
    for (int i = 0; i < cnt; ++i)
        total += iov[i].len; // seeded defect: GPU-bounded walk
    return total;
}

long
sumSpans(const IoVec *iov, int iov_cnt)
{
    long cap = 0;
    for (int i = 0; i < iov_cnt; ++i)
        cap += iov[i].len;
    return cap;
}

long
forwardedCount(const SyscallArgs &args)
{
    const IoVec *iov = args.ptr<IoVec>(1);
    const int cnt = args.as<int>(2);
    return sumSpans(iov, cnt); // seeded defect: crosses the call
}

long
clampedForward(const SyscallArgs &args)
{
    const IoVec *iov = args.ptr<IoVec>(1);
    const int cnt = args.as<int>(2);
    if (cnt < 0 || cnt > 1024)
        return -22;
    return sumSpans(iov, cnt); // negative: bounded before the call
}
)src"}},
         {{"gpu-taint-window", 2}}});

    return cases;
}

bool
runCase(const CorpusCase &c)
{
    const AnalysisResult result = analyzeSources(c.files);
    std::map<std::string, int> got;
    bool ok = true;
    for (const Finding &f : result.findings) {
        ++got[f.rule];
        if (witnessRules().count(f.rule) != 0 && f.witness.empty()) {
            std::printf("FAIL %s: finding without witness: %s\n",
                        c.name, f.render().c_str());
            ok = false;
        }
    }
    std::map<std::string, int> want;
    for (const Expect &e : c.expects)
        want[e.rule] = e.count;
    if (got != want) {
        std::printf("FAIL %s: expected vs got findings differ\n",
                    c.name);
        for (const auto &w : want)
            std::printf("  want %-28s x%d\n", w.first.c_str(),
                        w.second);
        for (const Finding &f : result.findings)
            std::printf("  got  %s\n", f.render().c_str());
        ok = false;
    }
    if (result.suppressed != c.suppressed) {
        std::printf("FAIL %s: expected %d suppressed, got %d\n",
                    c.name, c.suppressed, result.suppressed);
        ok = false;
    }
    if (ok)
        std::printf("PASS %s\n", c.name);
    return ok;
}

} // namespace

int
runSelfTest(bool flowOnly)
{
    int failures = 0;
    int defects = 0;
    std::size_t ran = 0;
    const std::vector<CorpusCase> corpus = buildCorpus();
    for (const CorpusCase &c : corpus) {
        if (flowOnly &&
            std::string(c.name).compare(0, 5, "flow-") != 0)
            continue;
        ++ran;
        if (!runCase(c))
            ++failures;
        for (const Expect &e : c.expects)
            defects += e.count;
    }
    std::printf("gstat self-test: %zu cases, %d seeded defects, "
                "%d failure(s)\n",
                ran, defects, failures);
    return failures == 0 ? 0 : 1;
}

} // namespace genesys::analysis
