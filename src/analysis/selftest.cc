/**
 * @file
 * gstat's seeded-defect corpus (`gstat --self-test`).
 *
 * Every analysis rule is exercised twice: a seeded defect the analyzer
 * must catch (with a witness path for the interprocedural rules) and a
 * nearby negative the analyzer must stay silent on. The corpus is the
 * regression net for the extractor and passes: a lexer desync, a
 * broken deferral edge, or a lost lock snapshot all surface here as a
 * missing or spurious finding.
 */

#include "analysis/analyzer.hh"

#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace genesys::analysis
{

namespace
{

struct Expect
{
    const char *rule;
    int count;
};

struct CorpusCase
{
    const char *name;
    std::vector<SourceFile> files;
    std::vector<Expect> expects;
    int suppressed = 0;
};

// Rules whose findings must carry an interprocedural witness chain.
const std::set<std::string> &
witnessRules()
{
    static const std::set<std::string> rules = {
        "nonblocking-handler-parks", "drain-loop-park",
        "park-under-lock", "lock-order-cycle"};
    return rules;
}

std::vector<CorpusCase>
buildCorpus()
{
    std::vector<CorpusCase> cases;

    // ---- may-park: handler classification ---------------------------
    cases.push_back(
        {"handler-classification",
         {{"corpus/handlers.cc", R"src(
namespace osk
{
namespace sysno
{
inline constexpr int read = 0;
inline constexpr int ioctl = 16;
inline constexpr int getpid = 39;
inline constexpr int futex = 98;
inline constexpr int dup = 32;
} // namespace sysno
} // namespace osk

bool
mayBlockIndefinitely(int n)
{
    return n == osk::sysno::read;
}

long
sysRead(WaitQueue &wq)
{
    return wq.wait(); // classified blocking: the park is expected
}

long
sysIoctl(WaitQueue &wq)
{
    return wq.wait(); // seeded defect: direct indefinite park
}

long
parkHelper(WaitQueue &wq)
{
    return wq.wait();
}

long
sysGetpid(WaitQueue &wq)
{
    return parkHelper(wq); // seeded defect: transitive indefinite park
}

long
sysFutex(Semaphore &sem)
{
    sem.acquire(); // bounded park: fine for a non-blocking handler
    return 0;
}

long
sysDup(WorkQueue &q, WaitQueue &wq)
{
    q.enqueue([&wq] { wq.wait(); }); // deferred: runs on a worker
    return 0;
}

void
buildTable()
{
    install(sysno::read, "read", sysRead);
    install(sysno::ioctl, "ioctl", sysIoctl);
    install(sysno::getpid, "getpid", sysGetpid);
    install(sysno::futex, "futex", sysFutex);
    install(sysno::dup, "dup", sysDup);
}
)src"}},
         {{"nonblocking-handler-parks", 2}}});

    // ---- may-park: sign-context sensitivity -------------------------
    // The pread/pwrite -ESPIPE flow: the handler rejects a negative
    // offset up front, and the shared path's parks all sit behind an
    // `off >= 0` early return, so the handler can never reach them.
    cases.push_back(
        {"sign-guard-flow-clean",
         {{"corpus/sign_guard.cc", R"src(
namespace osk
{
namespace sysno
{
inline constexpr int pread64 = 17;
} // namespace sysno
} // namespace osk

bool
mayBlockIndefinitely(int n)
{
    return false;
}

long
doStreamRead(WaitQueue &wq, long pos_override)
{
    if (pos_override >= 0)
        return -29; // -ESPIPE: streams are not seekable
    return wq.wait(); // only reachable with pos_override < 0
}

long
sysPread(WaitQueue &wq, long off)
{
    if (off < 0)
        return -22; // -EINVAL: negative offsets rejected up front
    return doStreamRead(wq, off); // negative: the park is dead here
}

void
buildTable()
{
    install(sysno::pread64, "pread64", sysPread);
}
)src"}},
         {}});

    // Without the caller-side guard the same callee park is live: the
    // handler can forward a negative offset straight into the wait.
    cases.push_back(
        {"sign-guard-flow-unguarded",
         {{"corpus/sign_unguarded.cc", R"src(
namespace osk
{
namespace sysno
{
inline constexpr int pread64 = 17;
} // namespace sysno
} // namespace osk

bool
mayBlockIndefinitely(int n)
{
    return false;
}

long
doStreamRead(WaitQueue &wq, long pos_override)
{
    if (pos_override >= 0)
        return -29;
    return wq.wait();
}

long
sysPread(WaitQueue &wq, long off)
{
    return doStreamRead(wq, off); // seeded defect: off may be < 0
}

void
buildTable()
{
    install(sysno::pread64, "pread64", sysPread);
}
)src"}},
         {{"nonblocking-handler-parks", 1}}});

    // ---- may-park: arity-refined resolution -------------------------
    // Two definitions share a short name; only the arity-matching one
    // is a may-call target. The two-argument stream read parks, the
    // one-argument device read does not.
    cases.push_back(
        {"arity-refined-resolution",
         {{"corpus/arity.cc", R"src(
namespace osk
{
namespace sysno
{
inline constexpr int ioctl = 16;
inline constexpr int dup = 32;
} // namespace sysno
} // namespace osk

bool
mayBlockIndefinitely(int n)
{
    return false;
}

struct Stream
{
    WaitQueue wq_;
    long read(void *buf, unsigned long len) { return wq_.wait(); }
};

struct Device
{
    long read(unsigned long bytes) { return 0; }
};

long
sysIoctl(Device &dev)
{
    return dev.read(16); // negative: one arg cannot be Stream::read
}

long
sysDup(Stream &s, void *buf)
{
    return s.read(buf, 16); // seeded defect: two args reach the park
}

void
buildTable()
{
    install(sysno::ioctl, "ioctl", sysIoctl);
    install(sysno::dup, "dup", sysDup);
}
)src"}},
         {{"nonblocking-handler-parks", 1}}});

    // ---- may-park: ring consumer drain loop -------------------------
    cases.push_back(
        {"drain-loop-parks",
         {{"corpus/drain.cc", R"src(
sim::Task<>
InterruptBackend::ringConsumeTask(unsigned shard)
{
    for (;;) {
        cpus.acquireCore(); // bounded: a core always frees
        auto inlinePark = [&] { wq.wait(); };
        inlinePark(); // seeded defect: inline park wedges the shard
    }
}
)src"}},
         {{"drain-loop-park", 1}}});

    cases.push_back(
        {"drain-loop-clean",
         {{"corpus/drain_ok.cc", R"src(
sim::Task<>
InterruptBackend::ringConsumeTask(unsigned shard)
{
    cpus.acquireCore();
    queue.enqueueOn(shard, [&] { wq.wait(); }); // punted, not inline
}
)src"}},
         {}});

    // ---- may-park: park while holding a lock ------------------------
    cases.push_back(
        {"park-under-lock",
         {{"corpus/park_lock.cc", R"src(
struct Shard
{
    std::mutex mu_;
    WaitQueue wq_;

    void direct()
    {
        std::lock_guard<std::mutex> g(mu_);
        wq_.wait(); // seeded defect: indefinite park under mu_
    }

    void parkHelper() { wq_.wait(); }

    void transitive()
    {
        std::lock_guard<std::mutex> g(mu_);
        parkHelper(); // seeded defect: callee parks under mu_
    }

    void released()
    {
        {
            std::lock_guard<std::mutex> g(mu_);
        }
        wq_.wait(); // negative: the guard died with its block
    }
};
)src"}},
         {{"park-under-lock", 2}}});

    // ---- lock order -------------------------------------------------
    cases.push_back(
        {"lock-order",
         {{"corpus/locks.cc", R"src(
struct Inverted
{
    std::mutex a_;
    std::mutex b_;
    void ab()
    {
        std::lock_guard<std::mutex> g1(a_);
        std::lock_guard<std::mutex> g2(b_);
    }
    void ba()
    {
        std::lock_guard<std::mutex> g1(b_);
        std::lock_guard<std::mutex> g2(a_); // seeded defect: AB/BA
    }
};

struct Triangle
{
    std::mutex a_;
    std::mutex b_;
    std::mutex c_;
    void ab()
    {
        std::lock_guard<std::mutex> g1(a_);
        std::lock_guard<std::mutex> g2(b_);
    }
    void bc()
    {
        std::lock_guard<std::mutex> g1(b_);
        std::lock_guard<std::mutex> g2(c_);
    }
    void ca()
    {
        std::lock_guard<std::mutex> g1(c_);
        std::lock_guard<std::mutex> g2(a_); // seeded defect: 3-cycle
    }
};

struct Recursive
{
    std::mutex m_;
    void again()
    {
        std::lock_guard<std::mutex> g(m_);
        std::lock_guard<std::mutex> h(m_); // seeded defect: self-lock
    }
};

struct ThroughCalls
{
    std::mutex x_;
    std::mutex y_;
    void takeY() { std::lock_guard<std::mutex> g(y_); }
    void lockX() { std::lock_guard<std::mutex> g(x_); }
    void first()
    {
        std::lock_guard<std::mutex> g(x_);
        takeY();
    }
    void second()
    {
        std::lock_guard<std::mutex> g(y_);
        lockX(); // seeded defect: inversion through the call graph
    }
};

struct Consistent
{
    std::mutex a_;
    std::mutex b_;
    void one()
    {
        std::lock_guard<std::mutex> g1(a_);
        std::lock_guard<std::mutex> g2(b_);
    }
    void two()
    {
        std::lock_guard<std::mutex> g1(a_);
        std::lock_guard<std::mutex> g2(b_); // negative: same order
    }
    void atomicPair(std::mutex &m, std::mutex &n)
    {
        std::scoped_lock<std::mutex, std::mutex> g(m, n); // negative
    }
};
)src"}},
         {{"lock-order-cycle", 4}}});

    // ---- ordering discipline ----------------------------------------
    cases.push_back(
        {"ordering-discipline",
         {{"corpus/ordering.cc", R"src(
struct Ring
{
    int entries_[16];
    unsigned long loadHeadAcquire() const;
    unsigned long loadTailAcquire() const;
    void storeHeadRelease(unsigned long v);
    void storeTailRelease(unsigned long v);

    void goodPublish(Gsan *g)
    {
        unsigned long t = loadTailAcquire();
        storeTailRelease(t + 1);
        g->ringPublish(1, 1); // negative: store + annotation paired
    }

    void badPublish()
    {
        storeTailRelease(7); // seeded defect: no acquire load first
    }

    void badAnnotation(Gsan *g)
    {
        g->ringPublish(1, 1); // seeded defect: annotation, no store
    }

    int badPeek()
    {
        return entries_[0]; // seeded defect: unannotated read
    }

    int goodPop(Gsan *g)
    {
        g->ringConsume(1);
        int v = entries_[indexOf(loadHeadAcquire())];
        storeHeadRelease(loadHeadAcquire() + 1); // load inside args
        return v;
    }
};

void
touchRaw(Ring &r)
{
    r.headRaw_ = 1; // seeded defect: raw counter outside core/ring.hh
}
)src"}},
         {{"unannotated-consume", 1},
          {"unpaired-hb-annotation", 1},
          {"unpaired-release", 1},
          {"raw-counter-access", 1}}});

    // ---- suppressions -----------------------------------------------
    cases.push_back(
        {"suppressions",
         {{"corpus/suppress.cc", R"src(
struct Near
{
    void storeTailRelease(unsigned long v);
    // Intentional: exercises the allow() window.
    // gstat: allow(unpaired-release)
    void resetTail() { storeTailRelease(0); }
};

struct Far
{
    void storeTailRelease(unsigned long v);
    // gstat: allow(unpaired-release)
    //
    //
    //
    void resetTail() { storeTailRelease(0); } // allow is out of range
};
)src"}},
         {{"unpaired-release", 1}},
         1});

    // ---- raw string literals must not desync the lexer --------------
    cases.push_back(
        {"raw-string-literals",
         {{"corpus/rawstring.cc", R"src(
const char *kScript = R"(storeTailRelease(99); " stray quote ' )";

struct Q
{
    void storeTailRelease(unsigned long v);
    void bad()
    {
        storeTailRelease(1); // seeded defect: proves lexing stayed
                             // in sync past the raw string
    }
};
)src"}},
         {{"unpaired-release", 1}}});

    return cases;
}

bool
runCase(const CorpusCase &c)
{
    const AnalysisResult result = analyzeSources(c.files);
    std::map<std::string, int> got;
    bool ok = true;
    for (const Finding &f : result.findings) {
        ++got[f.rule];
        if (witnessRules().count(f.rule) != 0 && f.witness.empty()) {
            std::printf("FAIL %s: finding without witness: %s\n",
                        c.name, f.render().c_str());
            ok = false;
        }
    }
    std::map<std::string, int> want;
    for (const Expect &e : c.expects)
        want[e.rule] = e.count;
    if (got != want) {
        std::printf("FAIL %s: expected vs got findings differ\n",
                    c.name);
        for (const auto &w : want)
            std::printf("  want %-28s x%d\n", w.first.c_str(),
                        w.second);
        for (const Finding &f : result.findings)
            std::printf("  got  %s\n", f.render().c_str());
        ok = false;
    }
    if (result.suppressed != c.suppressed) {
        std::printf("FAIL %s: expected %d suppressed, got %d\n",
                    c.name, c.suppressed, result.suppressed);
        ok = false;
    }
    if (ok)
        std::printf("PASS %s\n", c.name);
    return ok;
}

} // namespace

int
runSelfTest()
{
    int failures = 0;
    int defects = 0;
    const std::vector<CorpusCase> corpus = buildCorpus();
    for (const CorpusCase &c : corpus) {
        if (!runCase(c))
            ++failures;
        for (const Expect &e : c.expects)
            defects += e.count;
    }
    std::printf("gstat self-test: %zu cases, %d seeded defects, "
                "%d failure(s)\n",
                corpus.size(), defects, failures);
    return failures == 0 ? 0 : 1;
}

} // namespace genesys::analysis
