/**
 * @file
 * Open file descriptions and per-process descriptor tables.
 *
 * Mirrors the Linux split between the descriptor (an index) and the
 * open file description (inode + file position + flags). Statefulness
 * of read/write via the shared file position is exactly the hazard the
 * paper discusses for work-item granularity invocation (Section IV),
 * so the position lives here, shared by every dup of the descriptor.
 */

#ifndef GENESYS_OSK_FILE_HH
#define GENESYS_OSK_FILE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "osk/vfs.hh"

namespace genesys::osk
{

// open(2) flag subset (values match Linux).
inline constexpr int O_RDONLY = 0;
inline constexpr int O_WRONLY = 1;
inline constexpr int O_RDWR = 2;
inline constexpr int O_CREAT = 0100;
inline constexpr int O_TRUNC = 01000;
inline constexpr int O_APPEND = 02000;

// lseek whence values.
inline constexpr int SEEK_SET_ = 0;
inline constexpr int SEEK_CUR_ = 1;
inline constexpr int SEEK_END_ = 2;

/** Open file description (struct file). */
struct OpenFile
{
    Inode *inode = nullptr;
    /** Keeps path-less inodes (pipes) alive for this description. */
    std::shared_ptr<Inode> owned;
    std::uint64_t pos = 0;
    int flags = 0;
    std::string path;
    /** Snapshot for /proc files (content generated at open). */
    std::string procSnapshot;
    /** UDP socket index when this fd is a datagram socket (-1 if not). */
    int socketId = -1;
    /** TCP socket index when this fd is a stream socket (-1 if not). */
    int tcpId = -1;
    /** Epoll instance index when this fd is an epoll fd (-1 if not). */
    int epollId = -1;
    /**
     * Zero-copy loan generation: wire-segment buffers handed to the
     * caller by the last recvmsg(MSG_ZEROCOPY) on this description.
     * The refs keep the segments alive while the caller parses them
     * in place; the next MSG_ZEROCOPY recvmsg (or close) retires the
     * generation. One generation per description is the whole
     * contract — callers that need two batches live at once must copy.
     */
    std::vector<std::shared_ptr<std::vector<std::uint8_t>>> loanedSegs;

    bool readable() const
    {
        return (flags & O_RDWR) == O_RDWR ||
               (flags & (O_WRONLY | O_RDWR)) == 0;
    }
    bool writable() const
    {
        return (flags & (O_WRONLY | O_RDWR)) != 0;
    }
};

/** Per-process descriptor table. */
class FdTable
{
  public:
    /** Allocate the lowest free descriptor for @p file. */
    int allocate(std::shared_ptr<OpenFile> file);

    /** @return the open file, or nullptr for a bad descriptor. */
    OpenFile *get(int fd) const;

    std::shared_ptr<OpenFile> getShared(int fd) const;

    /** Place @p file at exactly @p fd (dup2), growing the table. */
    void installAt(int fd, std::shared_ptr<OpenFile> file);

    /** Close @p fd. @return true if it was open. */
    bool close(int fd);

    std::size_t openCount() const;

  private:
    std::vector<std::shared_ptr<OpenFile>> table_;
};

} // namespace genesys::osk

#endif // GENESYS_OSK_FILE_HH
