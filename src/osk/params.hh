/**
 * @file
 * Timing parameters of the OS-kernel substrate.
 *
 * These model the CPU-side costs GENESYS pays when servicing GPU system
 * calls on the platform of Table III (AMD FX-9800P, 4 cores @ 2.7 GHz,
 * Linux 4.11 / ROCm 1.6). Absolute values are calibration; the
 * evaluation only relies on their relative magnitudes (documented in
 * EXPERIMENTS.md).
 */

#ifndef GENESYS_OSK_PARAMS_HH
#define GENESYS_OSK_PARAMS_HH

#include <cstdint>

#include "support/types.hh"

namespace genesys::osk
{

struct OskParams
{
    // --- generic syscall path -------------------------------------
    /// Kernel entry/exit, dispatch, permission checks.
    Tick syscallBase = ticks::ns(1200);
    /// Extra path-resolution cost for open() per component.
    Tick pathComponent = ticks::ns(400);

    // --- filesystem ------------------------------------------------
    /// tmpfs is memory resident: reads/writes are memcpy-speed.
    double tmpfsBytesPerSec = 6.0e9;
    /// Page-cache lookup overhead per read/write call.
    Tick pageCacheLookup = ticks::ns(600);

    // --- memory management ------------------------------------------
    Tick mmapBase = ticks::ns(2500);
    Tick munmapBase = ticks::ns(2000);
    Tick madviseBase = ticks::ns(1800);
    /// Cost to unmap/free one 4 KiB page (TLB shootdown amortized).
    Tick perPageRelease = ticks::ns(90);
    /// Minor fault service (allocate + zero a page).
    Tick minorFault = ticks::us(3);
    /// Major fault: page must come back from swap.
    Tick swapInPerPage = ticks::us(60);
    /// Writing a dirty page out to swap under memory pressure.
    Tick swapOutPerPage = ticks::us(45);

    // --- network -----------------------------------------------------
    Tick udpSendBase = ticks::us(3);
    Tick udpRecvBase = ticks::us(2);
    double netBytesPerSec = 1.2e9; ///< on-host/loopback path.

    // --- TCP (gnet) --------------------------------------------------
    Tick tcpConnectBase = ticks::us(5); ///< kernel-side handshake work.
    Tick tcpSendBase = ticks::us(3);    ///< per-write kernel path.
    Tick tcpRecvBase = ticks::us(2);    ///< per-read kernel path.
    Tick tcpRtt = ticks::us(30);        ///< modeled link round-trip.
    Tick tcpRto = ticks::us(200);       ///< retransmit timeout.
    /// Per-segment loss probability in parts per million.
    std::uint32_t tcpLossPpm = 0;
    std::uint32_t tcpMss = 1460;          ///< max segment size, bytes.
    std::uint32_t tcpWindowBytes = 16384; ///< receive buffer bound.
    /// Retransmit attempts per segment before the connection resets.
    std::uint32_t tcpMaxAttempts = 8;
    std::uint32_t tcpAcceptBacklog = 128; ///< default listen backlog.

    // --- epoll (gnet readiness) --------------------------------------
    Tick epollCtlBase = ticks::ns(800);
    Tick epollWaitBase = ticks::us(1);

    // --- signals -------------------------------------------------------
    Tick signalQueue = ticks::us(2);   ///< rt_sigqueueinfo enqueue.
    Tick signalDeliver = ticks::us(4); ///< dequeue + handler dispatch.

    // --- misc ----------------------------------------------------------
    Tick getrusage = ticks::ns(900);
    Tick ioctlBase = ticks::us(2);
    Tick lseek = ticks::ns(300);

    // --- scheduling ------------------------------------------------------
    /// Enqueue a kernel task onto a workqueue.
    Tick workqueueEnqueue = ticks::us(1);
    /// Latency until a worker picks a queued task up ("at an
    /// expedient future point in time an OS worker thread executes
    /// this task", Section VI).
    Tick workerDispatch = ticks::us(10);
    /// Context switch to the context of the original CPU process.
    Tick contextSwitch = ticks::us(2); // Section VI
    /// Interrupt delivery from GPU to a CPU core (s_sendmsg path).
    Tick interruptDeliver = ticks::us(4);
    /// Interrupt handler prologue/epilogue on the CPU.
    Tick interruptHandler = ticks::us(1);
};

} // namespace genesys::osk

#endif // GENESYS_OSK_PARAMS_HH
