/**
 * @file
 * Minimal UDP stack.
 *
 * Supports the memcached case study (Section VIII-D): sockets with
 * bind/sendto/recvfrom semantics, bounded receive queues with drop-on-
 * overflow (UDP), and a modeled on-host delivery path. The paper's
 * GENESYS memcached deliberately avoids RDMA; plain sendto/recvfrom
 * through the OS stack is the whole point, so the stack charges normal
 * kernel send/receive costs.
 */

#ifndef GENESYS_OSK_NET_HH
#define GENESYS_OSK_NET_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "osk/params.hh"
#include "sim/event_queue.hh"
#include "sim/sync.hh"
#include "sim/task.hh"
#include "support/types.hh"

namespace genesys::osk
{

/**
 * Scatter/gather element; mirrors struct iovec (base, len). Lives at
 * the bottom of the osk stack because every layer speaks it: the
 * syscall ABI (readv/writev/sendmsg/recvmsg take an IoVec array), the
 * stream sockets (gather transmit, scatter receive), and the GPU
 * client's vectored submission window (core/client.hh), whose
 * per-shard descriptor pages are arrays of exactly this struct.
 */
struct IoVec
{
    std::uint64_t base = 0; ///< pointer value (SyscallArgs::fromPtr).
    std::uint64_t len = 0;

    void *
    asPtr() const
    {
        return reinterpret_cast<void *>(
            static_cast<std::uintptr_t>(base));
    }
};

/** (address, port) endpoint; address is an opaque host id. */
struct SockAddr
{
    std::uint32_t host = 0;
    std::uint16_t port = 0;

    bool
    operator<(const SockAddr &o) const
    {
        return host != o.host ? host < o.host : port < o.port;
    }
    bool
    operator==(const SockAddr &o) const
    {
        return host == o.host && port == o.port;
    }
};

struct Datagram
{
    SockAddr from;
    std::vector<std::uint8_t> payload;
};

class UdpStack;

/** One UDP socket: a bound endpoint plus a receive queue. */
class UdpSocket
{
  public:
    UdpSocket(UdpStack &stack, int id);

    int id() const { return id_; }
    const SockAddr &local() const { return local_; }

    /** @return 0 or negative errno (EADDRINUSE). */
    int bind(SockAddr addr);

    /**
     * Send @p payload to @p dst, charging kernel + wire time.
     * @return bytes sent or negative errno.
     */
    sim::Task<std::int64_t> sendTo(SockAddr dst,
                                   std::vector<std::uint8_t> payload);

    /**
     * Receive one datagram (waits if the queue is empty).
     * Datagram semantics: excess bytes beyond @p maxLen are discarded.
     */
    sim::Task<Datagram> recvFrom(std::uint64_t maxLen);

    /** Non-blocking variant. @return false if no datagram pending. */
    bool tryRecv(Datagram &out);

    std::size_t queued() const { return rx_.size(); }
    std::uint64_t dropped() const { return dropped_; }

  private:
    friend class UdpStack;

    void enqueue(Datagram dgram);

    UdpStack &stack_;
    int id_;
    SockAddr local_;
    std::deque<Datagram> rx_;
    std::unique_ptr<sim::WaitQueue> rxWait_;
    std::uint64_t dropped_ = 0;
    static constexpr std::size_t kMaxQueue = 1024;
};

/** Host-wide UDP state: port table + delivery. */
class UdpStack
{
  public:
    UdpStack(sim::EventQueue &eq, const OskParams &params)
        : eq_(eq), params_(params)
    {}

    /** Create a socket; returned pointer owned by the stack. */
    UdpSocket *createSocket();

    UdpSocket *socket(int id) const;
    bool closeSocket(int id);

    sim::EventQueue &events() { return eq_; }
    const OskParams &params() const { return params_; }

    /** Deliver to the socket bound to @p dst (drop if none). */
    void deliver(SockAddr dst, Datagram dgram);

    std::uint64_t deliveredDatagrams() const { return delivered_; }
    std::uint64_t unroutable() const { return unroutable_; }
    /** Datagrams dropped on receive-queue overflow, stack-wide
     *  (survives socket close, unlike UdpSocket::dropped()). */
    std::uint64_t dropped() const { return dropped_; }

    /**
     * Readiness observer: called with a socket id whenever a datagram
     * lands on that socket (the epoll layer wakes waiters off it).
     */
    void setReadyCallback(std::function<void(int)> cb)
    {
        readyCb_ = std::move(cb);
    }

  private:
    friend class UdpSocket;

    sim::EventQueue &eq_;
    const OskParams &params_;
    std::function<void(int)> readyCb_;
    std::map<int, std::unique_ptr<UdpSocket>> sockets_;
    std::map<SockAddr, int> bound_;
    int nextId_ = 1;
    std::uint64_t delivered_ = 0;
    std::uint64_t unroutable_ = 0;
    std::uint64_t dropped_ = 0;
};

} // namespace genesys::osk

#endif // GENESYS_OSK_NET_HH
