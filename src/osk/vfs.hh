/**
 * @file
 * Virtual filesystem substrate.
 *
 * A functional in-memory VFS mirroring the Linux pieces GENESYS
 * exercises: tmpfs regular files, directories, character devices
 * (terminal, /dev/null, /dev/fb0) and /proc-style generated files.
 * "Everything is a file" (Section IV) is load-bearing for the paper —
 * grep prints to the terminal through the same write() path it uses for
 * regular files, and the framebuffer demo drives ioctl/mmap through
 * open("/dev/fb0").
 *
 * Regular files have two storage modes:
 *  - materialized: bytes held in memory (tests, small corpora), and
 *  - synthetic:    size + deterministic content generator, so multi-GiB
 *                  benchmark files (Fig 7 reads up to 2 GiB) cost no
 *                  host RAM.
 */

#ifndef GENESYS_OSK_VFS_HH
#define GENESYS_OSK_VFS_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "support/types.hh"

namespace genesys::osk
{

class BlockDevice;
class Process;

enum class InodeType
{
    Regular,
    Directory,
    CharDevice,
    Proc,
    Pipe,
};

/** ioctl request handler result. */
struct IoctlResult
{
    std::int64_t ret = 0;
};

/** Base inode. Concrete behaviour lives in the subclasses. */
class Inode
{
  public:
    explicit Inode(InodeType type) : type_(type) {}
    virtual ~Inode() = default;

    Inode(const Inode &) = delete;
    Inode &operator=(const Inode &) = delete;

    InodeType type() const { return type_; }
    virtual std::uint64_t size() const { return 0; }

  private:
    InodeType type_;
};

/** tmpfs regular file; optionally backed by a block device for timing. */
class RegularFile : public Inode
{
  public:
    RegularFile() : Inode(InodeType::Regular) {}

    std::uint64_t size() const override { return size_; }

    /** Replace contents with @p data (materialized mode). */
    void setData(std::string_view data);
    void setData(std::vector<std::uint8_t> data);

    /**
     * Make the file synthetic: @p bytes long, with content produced by
     * @p gen(offset) per byte (nullptr => zero-filled reads).
     */
    void setSynthetic(std::uint64_t bytes,
                      std::function<std::uint8_t(std::uint64_t)> gen = {});

    bool synthetic() const { return synthetic_; }

    /**
     * Copy up to @p len bytes starting at @p offset into @p dst (which
     * may be nullptr to model a read whose payload is not inspected).
     * @return bytes read (0 at or past EOF).
     */
    std::uint64_t readAt(std::uint64_t offset, void *dst,
                         std::uint64_t len) const;

    /**
     * Write @p len bytes at @p offset, extending the file as needed.
     * Synthetic files accept writes by materializing nothing and only
     * growing their size (benchmark sinks).
     * @return bytes written.
     */
    std::uint64_t writeAt(std::uint64_t offset, const void *src,
                          std::uint64_t len);

    void truncate(std::uint64_t new_size);

    /** Attach SSD timing: reads pay block-device service time. */
    void setBacking(BlockDevice *dev) { backing_ = dev; }
    BlockDevice *backing() const { return backing_; }

    const std::vector<std::uint8_t> &data() const { return data_; }

  private:
    std::vector<std::uint8_t> data_;
    std::uint64_t size_ = 0;
    bool synthetic_ = false;
    std::function<std::uint8_t(std::uint64_t)> gen_;
    BlockDevice *backing_ = nullptr;
};

/** Directory mapping names to child inodes. */
class Directory : public Inode
{
  public:
    Directory() : Inode(InodeType::Directory) {}

    Inode *lookup(const std::string &name) const;
    void add(const std::string &name, std::shared_ptr<Inode> child);
    bool remove(const std::string &name);
    const std::map<std::string, std::shared_ptr<Inode>> &
    entries() const
    {
        return children_;
    }

  private:
    std::map<std::string, std::shared_ptr<Inode>> children_;
};

/** Character device: read/write/ioctl/mmap hooks. */
class CharDevice : public Inode
{
  public:
    CharDevice() : Inode(InodeType::CharDevice) {}

    virtual std::uint64_t
    read(std::uint64_t offset, void *dst, std::uint64_t len)
    {
        (void)offset;
        (void)dst;
        (void)len;
        return 0;
    }

    virtual std::uint64_t
    write(std::uint64_t offset, const void *src, std::uint64_t len)
    {
        (void)offset;
        (void)src;
        (void)len;
        return len; // default: sink
    }

    /** @return negative errno or a request-specific value. */
    virtual std::int64_t
    ioctl(std::uint64_t request, void *argp)
    {
        (void)request;
        (void)argp;
        return -1;
    }

    /**
     * Device memory exposed via mmap, or empty if unsupported.
     * The span stays valid for the device's lifetime.
     */
    virtual std::uint8_t *mmapMemory(std::uint64_t &length)
    {
        length = 0;
        return nullptr;
    }
};

/** /proc-style file whose content is generated at open(). */
class ProcFile : public Inode
{
  public:
    using Generator = std::function<std::string()>;

    explicit ProcFile(Generator gen)
        : Inode(InodeType::Proc), gen_(std::move(gen))
    {}

    std::string generate() const { return gen_(); }

  private:
    Generator gen_;
};

/**
 * The filesystem tree plus path resolution.
 * Paths are absolute, '/'-separated; "." and ".." are not supported
 * (the workloads never use them; attempting to returns -ENOENT).
 */
class Vfs
{
  public:
    Vfs();

    /** Resolve @p path to an inode, or nullptr. */
    Inode *resolve(const std::string &path) const;

    /** Number of components in @p path (for open() timing). */
    static std::size_t componentCount(const std::string &path);

    /**
     * Create (or truncate) a regular file at @p path, creating parent
     * directories on demand. @return the file, or nullptr on conflict
     * (existing non-regular inode).
     */
    RegularFile *createFile(const std::string &path);

    /** Install a device / proc node at @p path. */
    bool install(const std::string &path, std::shared_ptr<Inode> node);

    /** Remove the directory entry at @p path. */
    bool unlink(const std::string &path);

    Directory &root() { return *root_; }

    /** List regular-file paths under @p dirPath (non-recursive). */
    std::vector<std::string> listFiles(const std::string &dirPath) const;

  private:
    Directory *
    ensureDir(const std::string &dirPath);

    static std::vector<std::string> split(const std::string &path);

    std::shared_ptr<Directory> root_;
};

} // namespace genesys::osk

#endif // GENESYS_OSK_VFS_HH
