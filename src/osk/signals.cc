/**
 * @file
 * SignalManager implementation.
 */

#include "signals.hh"

#include <cerrno>

namespace genesys::osk
{

int
SignalManager::queueInfo(const SigInfo &info)
{
    if (info.signo < 1 || info.signo > SIGRTMAX_)
        return -EINVAL;
    queue_.push_back(info);
    ++totalQueued_;
    wait_->notifyOne(params_.signalQueue);
    return 0;
}

sim::Task<SigInfo>
SignalManager::waitInfo()
{
    while (queue_.empty())
        co_await wait_->wait();
    co_await sim::Delay(eq_, params_.signalDeliver);
    SigInfo info = queue_.front();
    queue_.pop_front();
    co_return info;
}

bool
SignalManager::tryDequeue(SigInfo &out)
{
    if (queue_.empty())
        return false;
    out = queue_.front();
    queue_.pop_front();
    return true;
}

} // namespace genesys::osk
