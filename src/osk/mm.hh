/**
 * @file
 * Per-process memory manager.
 *
 * Supports the paper's memory-management case study (Section VIII-A):
 * miniAMR mmaps a large arena, uses getrusage to watch its resident set
 * size, and madvise(MADV_DONTNEED) to return cold pages to the OS. When
 * the RSS exceeds the physical memory available to the GPU, touching
 * pages forces swap traffic; sustained swap stalls trip the GPU driver
 * timeout (the paper's no-madvise baseline "simply does not complete").
 *
 * Anonymous mappings are accounting-only (no host memory is committed),
 * so multi-GiB experiments are cheap. Device-backed mappings (e.g. the
 * framebuffer) expose real backing bytes via resolve().
 */

#ifndef GENESYS_OSK_MM_HH
#define GENESYS_OSK_MM_HH

#include <cstdint>
#include <map>
#include <vector>

#include <memory>

#include "osk/params.hh"
#include "sim/event_queue.hh"
#include "sim/sync.hh"
#include "sim/task.hh"
#include "support/types.hh"

namespace genesys::osk
{

class CharDevice;

using Addr = std::uint64_t;

inline constexpr std::uint64_t kPageSize = 4096;

// madvise advice values (match Linux).
inline constexpr int MADV_WILLNEED_ = 3;
inline constexpr int MADV_DONTNEED_ = 4;

struct MmStats
{
    std::uint64_t minorFaults = 0;
    std::uint64_t majorFaults = 0;
    std::uint64_t swapOuts = 0;
    Tick swapStall = 0; ///< cumulative stall attributable to swapping
};

class CpuCluster;

class MemoryManager
{
  public:
    MemoryManager(sim::EventQueue &eq, const OskParams &params,
                  std::uint64_t phys_limit_bytes);

    /**
     * Route fault-service time through the CPU cores (the IOMMU/ATS
     * fault handler runs on the host CPU). Without a cluster, fault
     * time is charged as a plain delay.
     */
    void setCpuCluster(CpuCluster *cpus) { cpus_ = cpus; }

    /**
     * Map @p length bytes of anonymous memory.
     * @return the mapping's base address (page aligned), or 0 on error.
     */
    Addr mmapAnon(std::uint64_t length);

    /**
     * Map a character device's memory (e.g. /dev/fb0).
     * @return base address, or 0 if the device does not support mmap.
     */
    Addr mmapDevice(CharDevice *dev);

    /** Unmap a whole mapping previously returned by mmap*. */
    bool munmap(Addr base, std::uint64_t length);

    /**
     * madvise over [addr, addr+length). MADV_DONTNEED releases present
     * pages (dropping RSS); MADV_WILLNEED is accepted as a hint.
     * @return 0 or negative errno.
     */
    int madvise(Addr addr, std::uint64_t length, int advice);

    /** Pages released by the last MADV_DONTNEED call (for timing). */
    std::uint64_t lastReleasedPages() const { return lastReleased_; }

    /**
     * Simulate the owning execution context touching every page of
     * [addr, addr+length): absent pages minor-fault, swapped pages
     * major-fault, and exceeding the physical limit swaps victims out.
     * Suspends the caller for the accumulated fault time. Fault
     * service serializes on the address-space lock (mmap_sem), so
     * concurrent faulting contexts queue behind each other as they do
     * on Linux 4.11.
     */
    sim::Task<> touch(Addr addr, std::uint64_t length);

    /** Bookkeeping-only variant (no simulated time); for tests. */
    void touchUntimed(Addr addr, std::uint64_t length);

    /** @return real backing bytes for device mappings, else nullptr. */
    std::uint8_t *resolve(Addr addr, std::uint64_t length) const;

    std::uint64_t rssBytes() const { return rssPages_ * kPageSize; }
    std::uint64_t peakRssBytes() const { return peakRssPages_ * kPageSize; }
    std::uint64_t swappedBytes() const { return swappedPages_ * kPageSize; }
    std::uint64_t physLimitBytes() const { return physLimit_ * kPageSize; }
    const MmStats &stats() const { return stats_; }
    std::size_t vmaCount() const { return vmas_.size(); }

  private:
    enum class PageState : std::uint8_t
    {
        Absent,
        Present,
        Swapped,
    };

    struct Vma
    {
        Addr base = 0;
        std::uint64_t pages = 0;
        CharDevice *device = nullptr;
        std::uint8_t *backing = nullptr;
        std::vector<PageState> state;
    };

    /** Find the VMA containing @p addr, or nullptr. */
    Vma *find(Addr addr);
    const Vma *find(Addr addr) const;

    /**
     * Bookkeeping for touching pages; returns the simulated time the
     * faults cost (also accumulates swap stall into stats_).
     */
    Tick touchCost(Addr addr, std::uint64_t length);

    /** Evict present pages until RSS fits the physical limit. */
    Tick evictToFit();

    void
    addRss(std::uint64_t pages)
    {
        rssPages_ += pages;
        peakRssPages_ = std::max(peakRssPages_, rssPages_);
    }

    sim::EventQueue &eq_;
    const OskParams &params_;
    CpuCluster *cpus_ = nullptr;
    std::unique_ptr<sim::Semaphore> faultLock_; ///< mmap_sem analogue
    std::uint64_t physLimit_; ///< pages
    Addr nextBase_ = 0x7f00'0000'0000ull;
    std::map<Addr, Vma> vmas_;
    std::uint64_t rssPages_ = 0;
    std::uint64_t peakRssPages_ = 0;
    std::uint64_t swappedPages_ = 0;
    std::uint64_t lastReleased_ = 0;
    MmStats stats_;
};

} // namespace genesys::osk

#endif // GENESYS_OSK_MM_HH
