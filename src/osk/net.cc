/**
 * @file
 * UDP stack implementation.
 */

#include "net.hh"

#include <cerrno>

#include "support/logging.hh"

namespace genesys::osk
{

UdpSocket::UdpSocket(UdpStack &stack, int id)
    : stack_(stack), id_(id),
      rxWait_(std::make_unique<sim::WaitQueue>(stack.events()))
{}

int
UdpSocket::bind(SockAddr addr)
{
    if (stack_.bound_.contains(addr))
        return -EADDRINUSE;
    // Rebinding moves the endpoint.
    if (local_.port != 0)
        stack_.bound_.erase(local_);
    local_ = addr;
    stack_.bound_[addr] = id_;
    return 0;
}

sim::Task<std::int64_t>
UdpSocket::sendTo(SockAddr dst, std::vector<std::uint8_t> payload)
{
    // Wire/DMA time only: the kernel-side (CPU-active) cost is charged
    // by the sendto syscall handler, not by remote peers using the
    // socket directly.
    const auto &p = stack_.params();
    const Tick wire = transferTicks(payload.size(), p.netBytesPerSec);
    co_await sim::Delay(stack_.events(), wire);
    Datagram dgram;
    dgram.from = local_;
    dgram.payload = std::move(payload);
    const std::int64_t n = static_cast<std::int64_t>(dgram.payload.size());
    stack_.deliver(dst, std::move(dgram));
    co_return n;
}

sim::Task<Datagram>
UdpSocket::recvFrom(std::uint64_t maxLen)
{
    while (rx_.empty())
        co_await rxWait_->wait();
    Datagram dgram = std::move(rx_.front());
    rx_.pop_front();
    if (dgram.payload.size() > maxLen)
        dgram.payload.resize(maxLen); // UDP truncation
    co_return dgram;
}

bool
UdpSocket::tryRecv(Datagram &out)
{
    if (rx_.empty())
        return false;
    out = std::move(rx_.front());
    rx_.pop_front();
    return true;
}

void
UdpSocket::enqueue(Datagram dgram)
{
    if (rx_.size() >= kMaxQueue) {
        ++dropped_;
        ++stack_.dropped_;
        return;
    }
    rx_.push_back(std::move(dgram));
    rxWait_->notifyOne();
    if (stack_.readyCb_)
        stack_.readyCb_(id_);
}

UdpSocket *
UdpStack::createSocket()
{
    const int id = nextId_++;
    auto sock = std::make_unique<UdpSocket>(*this, id);
    UdpSocket *raw = sock.get();
    sockets_.emplace(id, std::move(sock));
    return raw;
}

UdpSocket *
UdpStack::socket(int id) const
{
    auto it = sockets_.find(id);
    return it == sockets_.end() ? nullptr : it->second.get();
}

bool
UdpStack::closeSocket(int id)
{
    auto it = sockets_.find(id);
    if (it == sockets_.end())
        return false;
    if (it->second->local().port != 0)
        bound_.erase(it->second->local());
    sockets_.erase(it);
    return true;
}

void
UdpStack::deliver(SockAddr dst, Datagram dgram)
{
    auto it = bound_.find(dst);
    if (it == bound_.end()) {
        ++unroutable_;
        return;
    }
    ++delivered_;
    socket(it->second)->enqueue(std::move(dgram));
}

} // namespace genesys::osk
