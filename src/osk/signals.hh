/**
 * @file
 * POSIX real-time signal queues.
 *
 * Implements the slice of the signal machinery the paper's
 * signal-search case study needs (Section VIII-B): rt_sigqueueinfo
 * queues a signal carrying a siginfo payload (the GPU passes a
 * work-group identifier through si_value), and a CPU-side consumer
 * dequeues and processes them. Real-time signals queue (they are not
 * collapsed like classic signals), preserving one notification per GPU
 * work-group completion.
 */

#ifndef GENESYS_OSK_SIGNALS_HH
#define GENESYS_OSK_SIGNALS_HH

#include <cstdint>
#include <deque>
#include <memory>

#include "osk/params.hh"
#include "sim/event_queue.hh"
#include "sim/sync.hh"
#include "sim/task.hh"

namespace genesys::osk
{

inline constexpr int SIGRTMIN_ = 34;
inline constexpr int SIGRTMAX_ = 64;

struct SigInfo
{
    int signo = 0;
    int code = 0;
    std::int64_t value = 0; ///< si_value payload
    std::uint64_t senderId = 0;
};

class SignalManager
{
  public:
    SignalManager(sim::EventQueue &eq, const OskParams &params)
        : eq_(eq), params_(params),
          wait_(std::make_unique<sim::WaitQueue>(eq))
    {}

    /**
     * rt_sigqueueinfo: queue @p info for the process.
     * @return 0 or -EINVAL for a bad signal number.
     */
    int queueInfo(const SigInfo &info);

    /** Await and dequeue the next pending signal (sigwaitinfo-like). */
    sim::Task<SigInfo> waitInfo();

    /** Non-blocking dequeue. */
    bool tryDequeue(SigInfo &out);

    std::size_t pending() const { return queue_.size(); }
    std::uint64_t totalQueued() const { return totalQueued_; }

  private:
    sim::EventQueue &eq_;
    const OskParams &params_;
    std::deque<SigInfo> queue_;
    std::unique_ptr<sim::WaitQueue> wait_;
    std::uint64_t totalQueued_ = 0;
};

} // namespace genesys::osk

#endif // GENESYS_OSK_SIGNALS_HH
