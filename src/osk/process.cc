/**
 * @file
 * Process and Kernel implementation.
 */

#include "process.hh"

#include "support/logging.hh"

namespace genesys::osk
{

Process::Process(Kernel &kernel, int pid, std::uint64_t phys_limit_bytes)
    : kernel_(kernel), pid_(pid),
      mm_(kernel.sim().events(), kernel.params(), phys_limit_bytes),
      signals_(kernel.sim().events(), kernel.params())
{
    mm_.setCpuCluster(&kernel.cpus());
}

Kernel::Kernel(sim::Sim &sim, const KernelConfig &config)
    : sim_(sim), config_(config), udp_(sim.events(), config_.params),
      tcp_(sim.events(), config_.params),
      epoll_(sim.events(), config_.params, udp_, tcp_),
      cpus_(sim, config.cpuCores),
      workqueue_(sim, cpus_, config_.params, config.workqueueWorkers),
      ssd_(sim.events(), config.ssd)
{
    populateDevTree();
    ssd_.setFaultInjector(&faults_);
    faults_.installSysfs(vfs_);
}

void
Kernel::populateDevTree()
{
    auto term = std::make_shared<TerminalDevice>();
    terminal_ = term.get();
    GENESYS_ASSERT(vfs_.install("/dev/console", term), "vfs setup");

    auto null_dev = std::make_shared<NullDevice>();
    GENESYS_ASSERT(vfs_.install("/dev/null", std::move(null_dev)),
                   "vfs setup");

    auto fb = std::make_shared<FramebufferDevice>(
        config_.fbWidth, config_.fbHeight, config_.fbBpp);
    framebuffer_ = fb.get();
    GENESYS_ASSERT(vfs_.install("/dev/fb0", std::move(fb)), "vfs setup");

    // /proc/meminfo-style generated file (everything-is-a-file demo).
    auto meminfo = std::make_shared<ProcFile>([this]() {
        std::string out;
        for (const auto &proc : processes_) {
            out += logging::format(
                "pid %d rss_bytes %llu peak_bytes %llu\n", proc->pid(),
                static_cast<unsigned long long>(proc->mm().rssBytes()),
                static_cast<unsigned long long>(
                    proc->mm().peakRssBytes()));
        }
        return out;
    });
    GENESYS_ASSERT(vfs_.install("/proc/meminfo", std::move(meminfo)),
                   "vfs setup");
}

Process &
Kernel::createProcess()
{
    const int pid = static_cast<int>(processes_.size()) + 1;
    processes_.push_back(
        std::make_unique<Process>(*this, pid, config_.physMemBytes));
    Process &proc = *processes_.back();
    // Standard descriptors 0/1/2 are the controlling terminal, so
    // write(1, ...) prints to the console like any Unix process.
    for (int fd = 0; fd < 3; ++fd) {
        auto file = std::make_shared<OpenFile>();
        file->inode = terminal_;
        file->flags = fd == 0 ? O_RDONLY : O_WRONLY;
        file->path = "/dev/console";
        // gstat: allow(must-release-fd) — stdio descriptors live for
        // the process's whole lifetime by design.
        const int got = proc.fds().allocate(std::move(file));
        GENESYS_ASSERT(got == fd, "stdio setup");
    }
    return proc;
}

Process &
Kernel::process(int pid)
{
    GENESYS_ASSERT(pid >= 1 &&
                       static_cast<std::size_t>(pid) <= processes_.size(),
                   "bad pid %d", pid);
    return *processes_[static_cast<std::size_t>(pid - 1)];
}

RegularFile *
Kernel::createSsdFile(const std::string &path)
{
    RegularFile *file = vfs_.createFile(path);
    if (file != nullptr)
        file->setBacking(&ssd_);
    return file;
}

} // namespace genesys::osk
