/**
 * @file
 * The syscall census data.
 *
 * Classification rationale follows Section IV of the paper:
 *  - Calls whose semantics need a kernel-side representation of an
 *    individual GPU thread (capabilities, namespaces, memory policies,
 *    per-thread ids) or control over the GPU's hardware scheduler /
 *    per-work-item program counters (scheduling, synchronous signal
 *    handling, futexes) need hardware changes first.
 *  - Calls that would clone or replace the whole GPU execution state
 *    (fork/exec/exit family, module/boot administration) would need
 *    extensive, low-value OS modification.
 *  - Everything else is readily implementable: the CPU can execute it
 *    on the GPU's behalf from an OS worker thread.
 */

#include "classification.hh"

namespace genesys::osk
{

namespace
{

constexpr const char *kNeedsThreadRepr =
    "needs GPU thread representation in the kernel";
constexpr const char *kNeedsScheduler =
    "needs better control over the GPU scheduler";
constexpr const char *kNeedsPcControl =
    "cannot pause/resume or retarget individual GPU work-item PCs";
constexpr const char *kNotAccessible = "not accessible from GPU";
constexpr const char *kClonesState =
    "would clone/replace whole-GPU execution state";
constexpr const char *kAdminPath =
    "administrative path; no GPU execution context to apply it to";

std::vector<ClassifiedSyscall>
buildCensus()
{
    std::vector<ClassifiedSyscall> v;
    auto ok = [&v](const char *name, const char *type) {
        v.push_back({name, SyscallClass::ReadilyImplementable, type, ""});
    };
    auto hw = [&v](const char *name, const char *type,
                   const char *reason) {
        v.push_back(
            {name, SyscallClass::NeedsHardwareChanges, type, reason});
    };
    auto ext = [&v](const char *name, const char *type,
                    const char *reason) {
        v.push_back(
            {name, SyscallClass::ExtensiveModification, type, reason});
    };

    // ---- filesystem & I/O (readily) --------------------------------
    for (const char *n :
         {"read", "write", "open", "close", "stat", "fstat",
          "lstat", "poll", "lseek", "pread64", "pwrite64", "readv",
          "writev", "access", "pipe", "select", "dup", "dup2", "dup3",
          "pipe2", "sendfile", "fcntl", "flock", "fsync", "fdatasync",
          "truncate", "ftruncate", "getdents", "getdents64", "getcwd",
          "chdir", "fchdir", "rename", "renameat", "renameat2", "mkdir",
          "rmdir", "creat", "link", "unlink", "symlink", "readlink",
          "chmod", "fchmod", "chown", "fchown", "lchown", "umask",
          "mknod", "mkdirat", "mknodat", "fchownat", "futimesat",
          "newfstatat", "unlinkat", "linkat", "symlinkat", "readlinkat",
          "fchmodat", "faccessat", "openat", "utime", "utimes",
          "utimensat", "statfs", "fstatfs", "sync", "syncfs",
          "sync_file_range", "fallocate", "readahead", "splice", "tee",
          "vmsplice", "copy_file_range", "preadv", "pwritev", "preadv2",
          "pwritev2", "statx", "lookup_dcookie", "quotactl", "ustat",
          "sysfs", "fadvise64", "setxattr", "lsetxattr", "fsetxattr",
          "getxattr", "lgetxattr", "fgetxattr", "listxattr",
          "llistxattr", "flistxattr", "removexattr", "lremovexattr",
          "fremovexattr"}) {
        ok(n, "filesystem");
    }
    for (const char *n :
         {"io_setup", "io_destroy", "io_getevents", "io_submit",
          "io_cancel", "inotify_init", "inotify_add_watch",
          "inotify_rm_watch", "inotify_init1", "fanotify_init",
          "fanotify_mark", "name_to_handle_at", "open_by_handle_at",
          "epoll_create", "epoll_ctl", "epoll_wait", "epoll_pwait",
          "epoll_create1", "eventfd", "eventfd2", "signalfd",
          "signalfd4", "timerfd_create", "timerfd_settime",
          "timerfd_gettime", "ppoll", "pselect6"}) {
        ok(n, "async I/O & events");
    }

    // ---- memory management (readily) -------------------------------
    for (const char *n :
         {"mmap", "mprotect", "munmap", "brk", "mremap", "msync",
          "mincore", "madvise", "mlock", "munlock", "mlockall",
          "munlockall", "mlock2", "remap_file_pages", "memfd_create",
          "pkey_alloc", "pkey_free", "pkey_mprotect",
          "process_vm_readv", "process_vm_writev"}) {
        ok(n, "memory management");
    }

    // ---- System V / POSIX IPC (readily) -----------------------------
    for (const char *n :
         {"shmget", "shmat", "shmctl", "shmdt", "semget", "semop",
          "semctl", "semtimedop", "msgget", "msgsnd", "msgrcv",
          "msgctl", "mq_open", "mq_unlink", "mq_timedsend",
          "mq_timedreceive", "mq_notify", "mq_getsetattr"}) {
        ok(n, "IPC");
    }

    // ---- networking (readily) ----------------------------------------
    for (const char *n :
         {"socket", "connect", "accept", "accept4", "sendto",
          "recvfrom", "sendmsg", "recvmsg", "sendmmsg", "recvmmsg",
          "shutdown", "bind", "listen", "getsockname", "getpeername",
          "socketpair", "setsockopt", "getsockopt"}) {
        ok(n, "network");
    }

    // ---- identity & credentials (readily: CPU process context) ------
    for (const char *n :
         {"getpid", "getppid", "getuid", "geteuid", "getgid",
          "getegid", "setuid", "setgid", "setpgid", "getpgrp",
          "getpgid", "setsid", "getsid", "setreuid", "setregid",
          "getgroups", "setgroups", "setresuid", "getresuid",
          "setresgid", "getresgid", "setfsuid", "setfsgid"}) {
        ok(n, "identity");
    }

    // ---- time (readily) ------------------------------------------------
    for (const char *n :
         {"gettimeofday", "settimeofday", "time", "times",
          "clock_gettime", "clock_settime", "clock_getres",
          "clock_nanosleep", "nanosleep", "alarm", "getitimer",
          "setitimer", "timer_create", "timer_settime",
          "timer_gettime", "timer_getoverrun", "timer_delete",
          "adjtimex", "clock_adjtime"}) {
        ok(n, "time");
    }

    // ---- signals: asynchronous queueing is readily; synchronous
    //      delivery/handling needs PC control (Table II) --------------
    for (const char *n : {"kill", "rt_sigqueueinfo", "rt_tgsigqueueinfo"})
        ok(n, "signals");
    for (const char *n :
         {"rt_sigaction", "rt_sigprocmask", "rt_sigsuspend",
          "rt_sigreturn", "rt_sigpending", "rt_sigtimedwait",
          "sigaltstack", "pause"}) {
        hw(n, "signals", kNeedsPcControl);
    }

    // ---- resource query & control (readily) --------------------------
    for (const char *n :
         {"getrusage", "sysinfo", "syslog", "getrlimit", "setrlimit",
          "prlimit64", "getpriority", "setpriority", "uname",
          "getrandom", "kcmp", "ioctl", "prctl", "bpf",
          "perf_event_open", "add_key", "request_key", "keyctl",
          "restart_syscall", "mount", "umount2", "sethostname",
          "setdomainname"}) {
        ok(n, "resource & control");
    }

    // ---- capabilities & namespaces (Table II rows) --------------------
    hw("capget", "capabilities", kNeedsThreadRepr);
    hw("capset", "capabilities", kNeedsThreadRepr);
    hw("setns", "namespace", kNeedsThreadRepr);
    hw("set_mempolicy", "policies", kNeedsThreadRepr);
    hw("get_mempolicy", "policies", kNeedsThreadRepr);
    hw("mbind", "policies", kNeedsThreadRepr);
    hw("migrate_pages", "policies", kNeedsThreadRepr);
    hw("move_pages", "policies", kNeedsThreadRepr);

    // ---- thread scheduling (Table II rows) ----------------------------
    for (const char *n :
         {"sched_yield", "sched_setaffinity", "sched_getaffinity",
          "sched_setparam", "sched_getparam", "sched_setscheduler",
          "sched_getscheduler", "sched_get_priority_max",
          "sched_get_priority_min", "sched_rr_get_interval",
          "sched_setattr", "sched_getattr", "ioprio_set",
          "ioprio_get", "getcpu"}) {
        hw(n, "thread scheduling", kNeedsScheduler);
    }

    // ---- thread identity & synchronization ---------------------------
    for (const char *n :
         {"gettid", "futex", "set_tid_address", "set_robust_list",
          "get_robust_list", "tkill", "tgkill", "membarrier"}) {
        hw(n, "thread identity/sync", kNeedsThreadRepr);
    }

    // ---- architecture specific (Table II rows) ------------------------
    for (const char *n :
         {"ioperm", "iopl", "arch_prctl", "modify_ldt",
          "personality"}) {
        hw(n, "architecture specific", kNotAccessible);
    }

    // ---- process lifecycle: extensive modification --------------------
    for (const char *n :
         {"fork", "vfork", "clone", "execve", "execveat", "exit",
          "exit_group", "wait4", "waitid", "ptrace", "seccomp",
          "unshare", "userfaultfd"}) {
        ext(n, "process lifecycle", kClonesState);
    }

    // ---- system administration: extensive modification ----------------
    for (const char *n :
         {"kexec_load", "kexec_file_load", "reboot", "init_module",
          "delete_module", "finit_module", "pivot_root", "swapon",
          "swapoff", "acct", "vhangup", "nfsservctl", "_sysctl"}) {
        ext(n, "system administration", kAdminPath);
    }

    return v;
}

} // namespace

const std::vector<ClassifiedSyscall> &
syscallCensus()
{
    static const std::vector<ClassifiedSyscall> census = buildCensus();
    return census;
}

CensusCounts
censusCounts()
{
    CensusCounts c;
    for (const auto &e : syscallCensus()) {
        ++c.total;
        switch (e.cls) {
          case SyscallClass::ReadilyImplementable:
            ++c.readily;
            break;
          case SyscallClass::NeedsHardwareChanges:
            ++c.needsHw;
            break;
          case SyscallClass::ExtensiveModification:
            ++c.extensive;
            break;
        }
    }
    return c;
}

std::vector<ClassifiedSyscall>
entriesOf(SyscallClass cls)
{
    std::vector<ClassifiedSyscall> out;
    for (const auto &e : syscallCensus()) {
        if (e.cls == cls)
            out.push_back(e);
    }
    return out;
}

const char *
className(SyscallClass cls)
{
    switch (cls) {
      case SyscallClass::ReadilyImplementable:
        return "readily-implementable";
      case SyscallClass::NeedsHardwareChanges:
        return "needs-GPU-hardware-changes";
      case SyscallClass::ExtensiveModification:
        return "extensive-modification";
    }
    return "?";
}

} // namespace genesys::osk
