/**
 * @file
 * PipeInode implementation.
 */

#include "pipe.hh"

#include <algorithm>
#include <cerrno>

namespace genesys::osk
{

sim::Task<std::int64_t>
PipeInode::readBlocking(void *dst, std::uint64_t len)
{
    if (len == 0)
        co_return 0;
    while (buffer_.empty()) {
        if (writers_ == 0)
            co_return 0; // EOF
        co_await readWait_->wait();
    }
    const std::uint64_t n =
        std::min<std::uint64_t>(len, buffer_.size());
    if (dst != nullptr) {
        auto *out = static_cast<std::uint8_t *>(dst);
        for (std::uint64_t i = 0; i < n; ++i)
            out[i] = buffer_[i];
    }
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(n));
    writeWait_->notifyAll();
    co_return static_cast<std::int64_t>(n);
}

sim::Task<std::int64_t>
PipeInode::writeBlocking(const void *src, std::uint64_t len)
{
    const auto *in = static_cast<const std::uint8_t *>(src);
    std::uint64_t written = 0;
    while (written < len) {
        if (readers_ == 0)
            co_return written > 0 ? static_cast<std::int64_t>(written)
                                  : -EPIPE;
        if (buffer_.size() >= capacity_) {
            co_await writeWait_->wait();
            continue;
        }
        const std::uint64_t room = capacity_ - buffer_.size();
        const std::uint64_t n =
            std::min<std::uint64_t>(room, len - written);
        for (std::uint64_t i = 0; i < n; ++i)
            buffer_.push_back(in == nullptr ? 0 : in[written + i]);
        written += n;
        readWait_->notifyAll();
    }
    co_return static_cast<std::int64_t>(written);
}

void
PipeInode::closeReader()
{
    if (--readers_ == 0)
        writeWait_->notifyAll(); // writers see EPIPE
}

void
PipeInode::closeWriter()
{
    if (--writers_ == 0)
        readWait_->notifyAll(); // readers see EOF
}

} // namespace genesys::osk
