/**
 * @file
 * BlockDevice implementation.
 */

#include "block_device.hh"

#include <algorithm>

#include "osk/fault.hh"

namespace genesys::osk
{

sim::Task<>
BlockDevice::read(std::uint64_t bytes)
{
    // A single stream issues its sub-requests back to back (readahead
    // keeps at most one in flight), so one reader is latency-bound.
    std::uint64_t remaining = bytes;
    while (remaining > 0) {
        const std::uint64_t chunk =
            std::min(remaining, params_.maxRequestBytes);
        co_await channels_.acquire();
        // Access phase: requests from different streams overlap here.
        Tick access = params_.accessLatency;
        if (faults_ != nullptr) {
            const Tick spike = faults_->deviceDelay();
            if (spike > 0) {
                access += spike;
                ++delayedRequests_;
            }
        }
        co_await sim::Delay(eq_, access);
        // Transfer phase: shared device interface bandwidth.
        co_await band_.acquire();
        co_await sim::Delay(eq_,
                            transferTicks(chunk, params_.bytesPerSec));
        band_.release();
        channels_.release();
        bytesRead_ += chunk;
        ++requests_;
        remaining -= chunk;
    }
}

} // namespace genesys::osk
