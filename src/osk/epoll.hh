/**
 * @file
 * epoll-style readiness multiplexing (gnet).
 *
 * Level-triggered by default: epoll_wait reports every registered fd
 * whose readiness condition *currently* holds, re-probing the
 * underlying socket each time rather than replaying edge events. The
 * wait path is a plain blocking syscall handler, so a GPU work-group
 * that invokes epoll_wait through a syscall slot halts in waitSlots()
 * and is resumed by the normal doorbell/interrupt-coalescing machinery
 * once the handler returns — readiness integrates with halt/resume for
 * free, under both service backends.
 *
 * Edge-triggered (EPOLLET): readiness is delivered once per 0→1
 * transition of each condition bit. noteEvent() computes the edge set
 * (newly-ready bits relative to the last probe), records it on the
 * interest, and epoll_wait replays each recorded edge exactly once —
 * a waiter that arrives after the transition still sees it (replayed-
 * edge semantics), but a consumer that fails to drain to EAGAIN sees
 * nothing further until the level drops and rises again. EPOLLONESHOT
 * disarms the interest after one delivery; EPOLL_CTL_MOD re-arms it
 * and replays the current level as a fresh edge. Interests without
 * either mode bit take exactly the level-triggered code path above,
 * bit-for-bit.
 *
 * The check-then-sleep window in the wait loop is the classic lost-
 * wakeup shape; the gsan epollCheck/epollSleep/epollNotify hooks track
 * a per-instance notification sequence so a waiter that sleeps across
 * a missed notification is reported (and a seeded test hook can open
 * the window on purpose).
 */

#ifndef GENESYS_OSK_EPOLL_HH
#define GENESYS_OSK_EPOLL_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "osk/net.hh"
#include "osk/params.hh"
#include "osk/tcp.hh"
#include "sim/event_queue.hh"
#include "sim/sync.hh"
#include "sim/task.hh"
#include "support/types.hh"

namespace genesys::gsan
{
class Sanitizer;
}

namespace genesys::osk
{

// epoll_ctl ops and event bits (values match Linux).
inline constexpr int EPOLL_CTL_ADD_ = 1;
inline constexpr int EPOLL_CTL_DEL_ = 2;
inline constexpr int EPOLL_CTL_MOD_ = 3;
inline constexpr std::uint32_t EPOLLIN_ = 0x1;
inline constexpr std::uint32_t EPOLLOUT_ = 0x4;
inline constexpr std::uint32_t EPOLLERR_ = 0x8;
inline constexpr std::uint32_t EPOLLHUP_ = 0x10;
inline constexpr std::uint32_t EPOLLONESHOT_ = 0x40000000u;
inline constexpr std::uint32_t EPOLLET_ = 0x80000000u;

/** Mode bits (not readiness conditions) masked out of probes. */
inline constexpr std::uint32_t kEpollModeBits =
    EPOLLET_ | EPOLLONESHOT_;

/** Waiter cookie used by CPU-side epoll_wait callers (no wave slot). */
inline constexpr std::uint64_t kEpollHostWaiter = ~0ull;

/** Userspace event record (a compact epoll_event). */
struct EpollEvent
{
    std::uint32_t events = 0; ///< EPOLL* bits that hold.
    std::uint64_t data = 0;   ///< caller cookie from epoll_ctl.
};

/** Which socket table an interest resolves into. */
enum class SockKind : std::uint8_t
{
    Udp,
    Tcp,
};

class EpollSystem;

/** One epoll instance: an interest list plus its wait queue. */
class EpollInstance
{
  public:
    EpollInstance(EpollSystem &sys, int id);

    int id() const { return id_; }

    /** @return 0 or negative errno (EEXIST, ENOENT, EINVAL). */
    int ctl(int op, int fd, SockKind kind, int sock_id,
            std::uint32_t mask, std::uint64_t data);

    /**
     * Collect ready fds (up to @p max_events), blocking up to
     * @p timeout_ns (-1 = forever, 0 = poll). @p waiter is an opaque
     * cookie identifying the blocked requester (the GPU passes its
     * hardware wave slot) used for per-shard wake accounting and gsan.
     * @return number of events, 0 on timeout, negative errno.
     */
    sim::Task<std::int64_t> wait(EpollEvent *events, int max_events,
                                 std::int64_t timeout_ns,
                                 std::uint64_t waiter);

    /** Drop any interest registered for process fd @p fd. */
    void forgetFd(int fd);

    /** Drop interests resolving to @p kind/@p sock_id. */
    void forgetSocket(SockKind kind, int sock_id);

    bool watches(SockKind kind, int sock_id) const;

    std::size_t interestCount() const { return interests_.size(); }

    /**
     * Test hook: open a simulated-time gap between the readiness probe
     * and the sleep *without re-probing* — the seeded lost-wakeup bug
     * gsan's epoll hooks exist to catch.
     */
    void setTestSleepGap(Tick gap) { test_sleep_gap_ = gap; }

  private:
    friend class EpollSystem;

    struct Interest
    {
        SockKind kind = SockKind::Udp;
        int sockId = -1;
        std::uint32_t mask = 0;
        std::uint64_t data = 0;
        // Edge-triggered state (unused — all zero — for pure-LT
        // interests, which never touch these fields).
        std::uint32_t lastReady = 0; ///< readiness at the last probe.
        std::uint32_t pending = 0;   ///< recorded, undelivered edges.
        bool armed = true;           ///< false after ONESHOT delivery.

        bool edgeMode() const
        {
            return (mask & kEpollModeBits) != 0;
        }
        /** Condition bits this interest reports (ERR/HUP always). */
        std::uint32_t condMask() const
        {
            return (mask & ~kEpollModeBits) | EPOLLERR_ | EPOLLHUP_;
        }
    };

    int collectReady(EpollEvent *events, int max_events);

    /**
     * Record readiness edges for edge-mode interests watching
     * @p kind/@p sock_id. @return true when a fresh pending edge
     * appeared on an armed interest (the waiters need a wake).
     */
    bool noteEdges(SockKind kind, int sock_id);

    /**
     * Latch @p edges as pending on @p in (unless the seeded lost-edge
     * mutant eats it). @return true when waiters should be woken.
     */
    bool recordEdge(Interest &in, std::uint32_t edges);

    /** True if a level-triggered interest watches @p kind/@p sock_id. */
    bool hasLtInterest(SockKind kind, int sock_id) const;

    /** gsan readiness-channel key (instance id). */
    std::uint64_t gsanKey() const
    {
        return static_cast<std::uint64_t>(id_);
    }

    EpollSystem &sys_;
    int id_;
    bool closed_ = false;
    std::map<int, Interest> interests_; ///< keyed by process fd.
    std::shared_ptr<sim::WaitQueue> wait_q_;
    /// Waiter cookies currently blocked (for wake fanout accounting).
    std::map<std::uint64_t, std::uint32_t> blocked_;
    Tick test_sleep_gap_ = 0;
};

/**
 * Kernel-wide epoll state: instance table plus the readiness fanout
 * from the socket stacks to blocked waiters.
 */
class EpollSystem
{
  public:
    EpollSystem(sim::EventQueue &eq, const OskParams &params,
                UdpStack &udp, TcpStack &tcp);

    /** Create an instance. @return its id. */
    int create();
    EpollInstance *instance(int id) const;
    bool close(int id);

    /** Readiness change on @p kind/@p sock_id: wake watchers. */
    void noteEvent(SockKind kind, int sock_id);

    /** Remove a closing socket from every instance's interests. */
    void forgetSocket(SockKind kind, int sock_id);

    void setSanitizer(gsan::Sanitizer *gsan) { gsan_ = gsan; }

    /**
     * Observer invoked once per blocked waiter each time a readiness
     * event wakes it (cookie = the waiter hint from epoll_wait). The
     * System maps GPU cookies to syscall-area shards for the per-shard
     * fanout counters under /sys/genesys/net/epoll/.
     */
    void setWakeObserver(std::function<void(std::uint64_t)> cb)
    {
        wake_observer_ = std::move(cb);
    }

    sim::EventQueue &events() { return eq_; }
    const OskParams &params() const { return params_; }
    UdpStack &udp() { return udp_; }
    TcpStack &tcp() { return tcp_; }

    std::uint64_t waits() const { return waits_; }
    std::uint64_t wakeups() const { return wakeups_; }
    std::uint64_t notifies() const { return notifies_; }
    std::uint64_t timeouts() const { return timeouts_; }
    std::uint64_t edgesRecorded() const { return edgesRecorded_; }
    std::uint64_t edgesDelivered() const { return edgesDelivered_; }

    /**
     * Test hook (gmc mutant): drop the next readiness edge on the
     * floor — the probe state advances but no pending bit is recorded,
     * so an edge-triggered consumer that relies on replayed edges
     * sleeps forever. gsan's edge channel sees the probe without the
     * record and reports the loss.
     */
    void setTestLostEdge(bool v)
    {
        test_lost_edge_ = v;
        lost_edge_fired_ = false;
    }

  private:
    friend class EpollInstance;

    /** Level-triggered readiness of one socket. */
    std::uint32_t probe(SockKind kind, int sock_id) const;

    sim::EventQueue &eq_;
    const OskParams &params_;
    UdpStack &udp_;
    TcpStack &tcp_;
    gsan::Sanitizer *gsan_ = nullptr;
    std::function<void(std::uint64_t)> wake_observer_;
    std::map<int, std::unique_ptr<EpollInstance>> instances_;
    /** Closed instances with possibly-live waiters (see close()). */
    std::vector<std::unique_ptr<EpollInstance>> graveyard_;
    int next_id_ = 1;
    std::uint64_t waits_ = 0;
    std::uint64_t wakeups_ = 0;
    std::uint64_t notifies_ = 0;
    std::uint64_t timeouts_ = 0;
    std::uint64_t edgesRecorded_ = 0;
    std::uint64_t edgesDelivered_ = 0;
    bool test_lost_edge_ = false;
    bool lost_edge_fired_ = false;
};

} // namespace genesys::osk

#endif // GENESYS_OSK_EPOLL_HH
