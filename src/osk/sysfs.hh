/**
 * @file
 * sysfs-style tunable files.
 *
 * Section VI: "GENESYS uses Linux's sysfs interface to communicate
 * coalescing parameters." A SysfsFile is a character device whose
 * read() renders an integer attribute and whose write() parses one —
 * the standard /sys/<subsystem>/<attr> contract.
 */

#ifndef GENESYS_OSK_SYSFS_HH
#define GENESYS_OSK_SYSFS_HH

#include <cstdint>
#include <functional>
#include <string>

#include "osk/vfs.hh"

namespace genesys::osk
{

class SysfsFile : public CharDevice
{
  public:
    using Getter = std::function<std::uint64_t()>;
    using Setter = std::function<bool(std::uint64_t)>;

    SysfsFile(Getter getter, Setter setter)
        : getter_(std::move(getter)), setter_(std::move(setter))
    {}

    std::uint64_t
    read(std::uint64_t offset, void *dst, std::uint64_t len) override;

    /** Parses a decimal integer; @return 0 bytes on parse/set error. */
    std::uint64_t
    write(std::uint64_t offset, const void *src,
          std::uint64_t len) override;

  private:
    Getter getter_;
    Setter setter_;
};

} // namespace genesys::osk

#endif // GENESYS_OSK_SYSFS_HH
