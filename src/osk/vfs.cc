/**
 * @file
 * VFS implementation.
 */

#include "vfs.hh"

#include <algorithm>
#include <cstring>

#include "support/logging.hh"

namespace genesys::osk
{

namespace
{

// Per-file backing-store ceiling (RLIMIT_FSIZE stand-in). write,
// pwrite, and ftruncate all reach RegularFile with GPU-supplied
// (offset, length) pairs; the clamp lives here so every path that can
// grow data_ is bounded at the single allocation site.
constexpr std::uint64_t kMaxRegularFileBytes = 1ull << 31;

} // namespace

// ------------------------------------------------------------ RegularFile

void
RegularFile::setData(std::string_view data)
{
    data_.assign(data.begin(), data.end());
    size_ = data_.size();
    synthetic_ = false;
    gen_ = {};
}

void
RegularFile::setData(std::vector<std::uint8_t> data)
{
    data_ = std::move(data);
    size_ = data_.size();
    synthetic_ = false;
    gen_ = {};
}

void
RegularFile::setSynthetic(std::uint64_t bytes,
                          std::function<std::uint8_t(std::uint64_t)> gen)
{
    data_.clear();
    size_ = bytes;
    synthetic_ = true;
    gen_ = std::move(gen);
}

std::uint64_t
RegularFile::readAt(std::uint64_t offset, void *dst,
                    std::uint64_t len) const
{
    if (offset >= size_)
        return 0;
    const std::uint64_t n = std::min(len, size_ - offset);
    if (dst == nullptr)
        return n;
    auto *out = static_cast<std::uint8_t *>(dst);
    if (synthetic_) {
        if (gen_) {
            for (std::uint64_t i = 0; i < n; ++i)
                out[i] = gen_(offset + i);
        } else {
            std::memset(out, 0, n);
        }
    } else {
        std::memcpy(out, data_.data() + offset, n);
    }
    return n;
}

std::uint64_t
RegularFile::writeAt(std::uint64_t offset, const void *src,
                     std::uint64_t len)
{
    if (offset >= kMaxRegularFileBytes)
        return 0; // short write at the size ceiling, like RLIMIT_FSIZE
    len = std::min(len, kMaxRegularFileBytes - offset);
    if (synthetic_) {
        // Benchmark sink: account size only.
        size_ = std::max(size_, offset + len);
        return len;
    }
    if (offset + len > data_.size())
        data_.resize(offset + len, 0);
    if (src != nullptr)
        std::memcpy(data_.data() + offset, src, len);
    size_ = data_.size();
    return len;
}

void
RegularFile::truncate(std::uint64_t new_size)
{
    new_size = std::min(new_size, kMaxRegularFileBytes);
    if (!synthetic_)
        data_.resize(new_size, 0);
    size_ = new_size;
}

// -------------------------------------------------------------- Directory

Inode *
Directory::lookup(const std::string &name) const
{
    auto it = children_.find(name);
    return it == children_.end() ? nullptr : it->second.get();
}

void
Directory::add(const std::string &name, std::shared_ptr<Inode> child)
{
    children_[name] = std::move(child);
}

bool
Directory::remove(const std::string &name)
{
    return children_.erase(name) > 0;
}

// -------------------------------------------------------------------- Vfs

Vfs::Vfs() : root_(std::make_shared<Directory>()) {}

std::vector<std::string>
Vfs::split(const std::string &path)
{
    std::vector<std::string> parts;
    std::size_t start = 0;
    while (start < path.size()) {
        if (path[start] == '/') {
            ++start;
            continue;
        }
        std::size_t end = path.find('/', start);
        if (end == std::string::npos)
            end = path.size();
        parts.push_back(path.substr(start, end - start));
        start = end;
    }
    return parts;
}

std::size_t
Vfs::componentCount(const std::string &path)
{
    return split(path).size();
}

Inode *
Vfs::resolve(const std::string &path) const
{
    if (path.empty() || path[0] != '/')
        return nullptr;
    Inode *cur = root_.get();
    for (const auto &part : split(path)) {
        if (cur->type() != InodeType::Directory)
            return nullptr;
        cur = static_cast<Directory *>(cur)->lookup(part);
        if (cur == nullptr)
            return nullptr;
    }
    return cur;
}

Directory *
Vfs::ensureDir(const std::string &dirPath)
{
    Directory *cur = root_.get();
    for (const auto &part : split(dirPath)) {
        Inode *next = cur->lookup(part);
        if (next == nullptr) {
            auto dir = std::make_shared<Directory>();
            Directory *raw = dir.get();
            cur->add(part, std::move(dir));
            cur = raw;
            continue;
        }
        if (next->type() != InodeType::Directory)
            return nullptr;
        cur = static_cast<Directory *>(next);
    }
    return cur;
}

RegularFile *
Vfs::createFile(const std::string &path)
{
    const auto slash = path.find_last_of('/');
    if (slash == std::string::npos)
        return nullptr;
    const std::string dir = path.substr(0, slash);
    const std::string name = path.substr(slash + 1);
    if (name.empty())
        return nullptr;
    Directory *parent = ensureDir(dir);
    if (parent == nullptr)
        return nullptr;
    if (Inode *existing = parent->lookup(name)) {
        if (existing->type() != InodeType::Regular)
            return nullptr;
        auto *file = static_cast<RegularFile *>(existing);
        file->truncate(0);
        return file;
    }
    auto file = std::make_shared<RegularFile>();
    RegularFile *raw = file.get();
    parent->add(name, std::move(file));
    return raw;
}

bool
Vfs::install(const std::string &path, std::shared_ptr<Inode> node)
{
    const auto slash = path.find_last_of('/');
    if (slash == std::string::npos)
        return false;
    Directory *parent = ensureDir(path.substr(0, slash));
    if (parent == nullptr)
        return false;
    const std::string name = path.substr(slash + 1);
    if (name.empty() || parent->lookup(name) != nullptr)
        return false;
    parent->add(name, std::move(node));
    return true;
}

bool
Vfs::unlink(const std::string &path)
{
    const auto slash = path.find_last_of('/');
    if (slash == std::string::npos)
        return false;
    Inode *dir = resolve(slash == 0 ? "/" : path.substr(0, slash));
    if (dir == nullptr || dir->type() != InodeType::Directory)
        return false;
    return static_cast<Directory *>(dir)->remove(path.substr(slash + 1));
}

std::vector<std::string>
Vfs::listFiles(const std::string &dirPath) const
{
    std::vector<std::string> out;
    Inode *dir = resolve(dirPath);
    if (dir == nullptr || dir->type() != InodeType::Directory)
        return out;
    const std::string prefix =
        dirPath.back() == '/' ? dirPath : dirPath + "/";
    for (const auto &[name, node] :
         static_cast<Directory *>(dir)->entries()) {
        if (node->type() == InodeType::Regular)
            out.push_back(prefix + name);
    }
    return out;
}

} // namespace genesys::osk
