/**
 * @file
 * Block device (SSD) timing model.
 *
 * Figures 13b/14 read the wordcount corpus from an SSD. The effect the
 * paper reports — the GPU extracting 170 MB/s from a device the CPU
 * version drives at 30 MB/s — is a queue-depth effect: many concurrent
 * GPU work-group reads keep the device's internal channels busy, while
 * the serial CPU loop leaves them idle between requests ("the GPU's
 * ability to launch more concurrent I/O requests enabled the I/O
 * scheduler to make better scheduling decisions").
 *
 * The model: @c channels independent service slots, each request pays a
 * fixed access latency, then transfers over a shared bandwidth gate.
 * Throughput at queue depth 1 is latency-bound; at high queue depth it
 * approaches the bandwidth limit.
 */

#ifndef GENESYS_OSK_BLOCK_DEVICE_HH
#define GENESYS_OSK_BLOCK_DEVICE_HH

#include <cstdint>

#include "sim/event_queue.hh"
#include "sim/sync.hh"
#include "sim/task.hh"
#include "support/stats.hh"
#include "support/types.hh"

namespace genesys::osk
{

class FaultInjector;

struct BlockDeviceParams
{
    /// Internal parallelism (flash channels / NCQ effective depth).
    std::uint32_t channels = 8;
    /// Per-request access latency (lookup + flash read).
    Tick accessLatency = ticks::us(90);
    /// Aggregate sequential bandwidth.
    double bytesPerSec = 520.0e6;
    /// One stream's read is split into device requests of at most this
    /// size (the kernel readahead window): a single sequential reader
    /// is therefore latency-bound while many concurrent readers can
    /// overlap access phases across channels.
    std::uint64_t maxRequestBytes = 32 * 1024;
};

class BlockDevice
{
  public:
    BlockDevice(sim::EventQueue &eq, const BlockDeviceParams &params)
        : eq_(eq), params_(params), channels_(eq, params.channels),
          band_(eq, 1)
    {}

    /** Service a read of @p bytes; suspends for the full device time. */
    sim::Task<> read(std::uint64_t bytes);

    std::uint64_t bytesRead() const { return bytesRead_; }
    std::uint64_t requests() const { return requests_; }

    /** Achieved read throughput over [from, to] in bytes/sec. */
    double
    throughput(Tick from, Tick to) const
    {
        if (to <= from)
            return 0.0;
        return static_cast<double>(bytesRead_) / ticks::toSec(to - from);
    }

    void
    resetStats()
    {
        bytesRead_ = 0;
        requests_ = 0;
        delayedRequests_ = 0;
    }

    /**
     * Attach a fault injector: each device request then rolls for a
     * tail-latency spike (flash GC pause / retry-after-ECC model).
     */
    void setFaultInjector(FaultInjector *faults) { faults_ = faults; }

    std::uint64_t delayedRequests() const { return delayedRequests_; }

  private:
    sim::EventQueue &eq_;
    BlockDeviceParams params_;
    sim::Semaphore channels_; ///< concurrent requests in service
    sim::Semaphore band_;     ///< serializes the shared transfer phase
    FaultInjector *faults_ = nullptr;
    std::uint64_t bytesRead_ = 0;
    std::uint64_t requests_ = 0;
    std::uint64_t delayedRequests_ = 0;
};

} // namespace genesys::osk

#endif // GENESYS_OSK_BLOCK_DEVICE_HH
