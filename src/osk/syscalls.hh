/**
 * @file
 * System call numbers, argument marshalling, and the dispatch table.
 *
 * Numbers follow the Linux x86-64 ABI so the "generic" claim of the
 * paper is structural: GENESYS forwards (number, args[6]) pairs and
 * supporting another system call is one more row in this table. The
 * fourteen calls the paper implements (Section IV: filesystem,
 * networking, memory management, resource query, signals, plus ioctl)
 * are all present.
 *
 * Following the kernel convention, handlers return a non-negative
 * result or a negative errno.
 */

#ifndef GENESYS_OSK_SYSCALLS_HH
#define GENESYS_OSK_SYSCALLS_HH

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "sim/task.hh"

namespace genesys::osk
{

class FaultInjector;
class Kernel;
class Process;

namespace sysno
{

inline constexpr int read = 0;
inline constexpr int write = 1;
inline constexpr int open = 2;
inline constexpr int close = 3;
inline constexpr int fstat = 5;
inline constexpr int lseek = 8;
inline constexpr int mmap = 9;
inline constexpr int munmap = 11;
inline constexpr int ioctl = 16;
inline constexpr int pread64 = 17;
inline constexpr int pwrite64 = 18;
inline constexpr int readv = 19;
inline constexpr int writev = 20;
inline constexpr int pipe = 22;
inline constexpr int madvise = 28;
inline constexpr int dup = 32;
inline constexpr int dup2 = 33;
inline constexpr int nanosleep = 35;
inline constexpr int getpid = 39;
inline constexpr int socket = 41;
inline constexpr int connect = 42;
inline constexpr int accept = 43;
inline constexpr int sendto = 44;
inline constexpr int recvfrom = 45;
inline constexpr int sendmsg = 46;
inline constexpr int recvmsg = 47;
inline constexpr int shutdown = 48;
inline constexpr int bind = 49;
inline constexpr int listen = 50;
inline constexpr int ftruncate = 77;
inline constexpr int unlink = 87;
inline constexpr int getrusage = 98;
inline constexpr int rt_sigqueueinfo = 129;
inline constexpr int epoll_create = 213;
inline constexpr int epoll_wait = 232;
inline constexpr int epoll_ctl = 233;

} // namespace sysno

/** Raw argument block: up to six 64-bit registers, Linux-style. */
struct SyscallArgs
{
    std::array<std::uint64_t, 6> a{};

    template <typename T>
    T
    as(std::size_t i) const
    {
        static_assert(sizeof(T) <= sizeof(std::uint64_t));
        return static_cast<T>(a[i]);
    }

    template <typename T>
    T *
    ptr(std::size_t i) const
    {
        return reinterpret_cast<T *>(static_cast<std::uintptr_t>(a[i]));
    }

    static std::uint64_t
    fromPtr(const void *p)
    {
        return static_cast<std::uint64_t>(
            reinterpret_cast<std::uintptr_t>(p));
    }
};

/** Build an args block from a mixed list of integers and pointers. */
template <typename... Ts>
SyscallArgs
makeArgs(Ts... vals)
{
    static_assert(sizeof...(Ts) <= 6);
    SyscallArgs args;
    [[maybe_unused]] std::size_t i = 0;
    [[maybe_unused]] auto put = [&](auto v) {
        using V = decltype(v);
        if constexpr (std::is_null_pointer_v<V>) {
            args.a[i++] = 0;
        } else if constexpr (std::is_pointer_v<V>) {
            args.a[i++] = SyscallArgs::fromPtr(v);
        } else {
            args.a[i++] = static_cast<std::uint64_t>(v);
        }
    };
    (put(vals), ...);
    return args;
}

/**
 * True for the byte-transfer calls whose return value counts bytes and
 * which POSIX allows to complete partially: read/write/pread64/pwrite64.
 * These are the calls eligible for short-transfer injection and for
 * continuation loops on the requester side.
 */
inline constexpr bool
transferSyscall(int num)
{
    return num == sysno::read || num == sysno::write ||
           num == sysno::pread64 || num == sysno::pwrite64;
}

/**
 * Advance a transfer call's argument block past @p done bytes so the
 * same call can be reissued for the remainder (the libc readn/writen
 * convention): buffer and count always move; the positioned variants
 * also move the explicit file offset. read/write on a seekable fd
 * need no offset fixup because the fd's own offset already advanced.
 */
inline void
advanceTransferArgs(int num, SyscallArgs &args, std::uint64_t done)
{
    args.a[1] += done;
    args.a[2] -= done;
    if (num == sysno::pread64 || num == sysno::pwrite64)
        args.a[3] += done;
}

/** Minimal stat(2) result block. */
struct StatLite
{
    std::uint64_t stSize = 0;
    /// File-type nibble, simplified: 1=regular 2=dir 3=chardev
    /// 4=proc 5=pipe 6=socket.
    std::uint32_t stMode = 0;
};

/** nanosleep(2) request. */
struct TimeSpec
{
    std::int64_t tvSec = 0;
    std::int64_t tvNsec = 0;
};

/** getrusage result block (ru_maxrss is KiB, as in Linux). */
struct RUsage
{
    std::uint64_t ruMaxRssKib = 0;
    std::uint64_t ruMinFlt = 0;
    std::uint64_t ruMajFlt = 0;
    /// Extension: current RSS in bytes. Real deployments poll
    /// /proc/self/statm for this; we surface it here so the miniAMR
    /// watermark check is a single call (documented in DESIGN.md).
    std::uint64_t curRssBytes = 0;
};

class SyscallTable
{
  public:
    using Handler = std::function<sim::Task<std::int64_t>(
        Kernel &, Process &, const SyscallArgs &)>;

    /** Constructs the table with every supported call installed. */
    SyscallTable();

    void install(int num, std::string name, Handler handler);
    bool supported(int num) const { return handlers_.contains(num); }
    std::string name(int num) const;
    std::size_t count() const { return handlers_.size(); }

    /**
     * Dispatch: charges the base syscall cost, then runs the handler.
     * Unknown numbers complete with -ENOSYS.
     *
     * With @p faults armed, the injector gets a decision point before
     * the handler runs: transient (-EINTR/-EAGAIN) and hard (-errno)
     * injections return without side effects, exactly like a call
     * interrupted before doing any work; short-transfer injections run
     * the real handler with a truncated count, so the bytes that are
     * reported transferred really were.
     */
    sim::Task<std::int64_t> invoke(Kernel &kernel, Process &proc, int num,
                                   const SyscallArgs &args,
                                   FaultInjector *faults = nullptr) const;

  private:
    struct Entry
    {
        std::string name;
        Handler handler;
    };

    std::map<int, Entry> handlers_;
};

} // namespace genesys::osk

#endif // GENESYS_OSK_SYSCALLS_HH
