/**
 * @file
 * Connection-oriented stream sockets (gnet).
 *
 * Models TCP at the level GENESYS needs: a per-socket state machine
 * (LISTEN / SYN / ESTABLISHED / FIN states), bounded receive windows
 * with sender backpressure, and a modeled wire with per-link RTT and a
 * deterministic per-segment loss process driven by an explicitly
 * seeded support/random.hh stream. Lost segments are retransmitted
 * after an RTO; a segment that exhausts its attempt budget resets the
 * connection. No checksum/sequence machinery is modeled — the wire is
 * lossy but not reordering, which is all the timing study requires.
 *
 * Receive buffering is a chain of refcounted wire segments (NetSeg)
 * living in GPU-visible memory rather than a flat byte deque: write()
 * materializes each wire segment exactly once (the tx DMA), deposit()
 * moves the reference into the peer's chain, and readers choose
 * between the classic copy-out path (read/readv, counted in
 * copiedBytes) and the zero-copy path (readSegments, which transfers
 * segment ownership to the caller and counts zerocopyBytes). The two
 * counters under /sys/genesys/net/tcp/ are how benchmarks prove a
 * serving path never copied on its hot path.
 *
 * Readiness changes (data arrival, accept-queue growth, window space,
 * EOF, reset) are reported through a stack-level callback so the epoll
 * layer (osk/epoll.hh) can wake multi-socket waiters.
 */

#ifndef GENESYS_OSK_TCP_HH
#define GENESYS_OSK_TCP_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "osk/net.hh"
#include "osk/params.hh"
#include "sim/event_queue.hh"
#include "sim/sync.hh"
#include "sim/task.hh"
#include "support/random.hh"
#include "support/types.hh"

namespace genesys::osk
{

/** Collapsed TCP state machine (TIME_WAIT and friends elided). */
enum class TcpState
{
    Closed,      ///< no connection (initial and terminal state)
    Listen,      ///< passive open, accepting
    SynSent,     ///< active open in flight
    SynRcvd,     ///< passive side mid-handshake
    Established, ///< data flows both ways
    FinWait,     ///< we sent FIN; peer may still send
    CloseWait    ///< peer sent FIN; we may still send
};

const char *tcpStateName(TcpState s);

// shutdown(2) `how` values (match Linux).
inline constexpr int SHUT_RD_ = 0;
inline constexpr int SHUT_WR_ = 1;
inline constexpr int SHUT_RDWR_ = 2;

// sendmsg/recvmsg flag subset (values match Linux). MSG_DONTWAIT
// turns an empty receive chain into -EAGAIN instead of a park — the
// drain loop primitive edge-triggered consumers are built on.
// MSG_ZEROCOPY switches recvmsg to the loaned-segment protocol: the
// caller's iovec entries are rewritten to point into refcounted wire
// segments instead of being copied into.
inline constexpr int MSG_DONTWAIT_ = 0x40;
inline constexpr int MSG_ZEROCOPY_ = 0x4000000;

/**
 * One refcounted wire segment. The backing vector is allocated once by
 * the sender (the single tx copy the DMA model charges for) and then
 * only referenced: deposit() moves it into the receiver's chain and
 * readSegments() hands it to the consumer without copying. (off, len)
 * window the live bytes so partial copy-out reads can coexist with
 * whole-segment loans on the same chain.
 */
struct NetSeg
{
    std::shared_ptr<std::vector<std::uint8_t>> data;
    std::uint32_t off = 0;
    std::uint32_t len = 0;

    const std::uint8_t *
    bytes() const
    {
        return data->data() + off;
    }
};

/** Stack-wide counters, exported through /sys/genesys/net/tcp/. */
struct TcpCounters
{
    std::uint64_t segsSent = 0;    ///< segments put on the wire.
    std::uint64_t segsLost = 0;    ///< wire drops (each retransmitted).
    std::uint64_t retransmits = 0; ///< RTO-driven resends.
    std::uint64_t backpressureStalls = 0; ///< writes blocked on window.
    std::uint64_t accepts = 0;
    std::uint64_t connects = 0;
    std::uint64_t refused = 0; ///< connects with no listener/backlog.
    std::uint64_t resets = 0;  ///< attempt budget exhausted.
    std::uint64_t copiedBytes = 0;   ///< rx bytes copied out (read/readv).
    std::uint64_t zerocopyBytes = 0; ///< rx bytes loaned (readSegments).
};

class TcpStack;

/** One endpoint of (at most) one stream connection. */
class TcpSocket
{
  public:
    TcpSocket(TcpStack &stack, int id);

    int id() const { return id_; }
    TcpState state() const { return tcpState_; }
    const SockAddr &local() const { return local_; }
    const SockAddr &peer() const { return peer_; }

    /** @return 0 or negative errno (EADDRINUSE, EINVAL). */
    int bind(SockAddr addr);

    /** Passive open. @return 0 or negative errno. */
    int listen(int backlog);

    /**
     * Active open: charges handshake RTT (SYN is retransmitted like
     * any segment) and rendezvouses with a listener.
     * @return 0 or negative errno (ECONNREFUSED, ECONNRESET, EISCONN).
     */
    sim::Task<int> connect(SockAddr dst);

    /**
     * Pop one established connection, waiting while the queue is
     * empty. @return new socket id or negative errno (EINVAL).
     */
    sim::Task<int> accept();

    /** Non-blocking variant. @return false if nothing is queued. */
    bool tryAccept(int &out_id);

    /**
     * Stream read: returns immediately-available bytes (up to
     * @p max_len), waits while the receive buffer is empty, returns 0
     * at EOF (peer FIN, buffer drained). Copy-out path: bytes are
     * counted in TcpCounters::copiedBytes.
     */
    sim::Task<std::int64_t> read(void *buf, std::uint64_t max_len);

    /**
     * Scatter read: like read() but fills @p iov[0..iov_cnt) in order.
     * One wait, then as many immediately-available bytes as fit.
     */
    sim::Task<std::int64_t> readv(const IoVec *iov, int iov_cnt);

    /**
     * Zero-copy read: pops up to @p max_segs whole segments off the
     * receive chain into @p out, transferring ownership (the caller's
     * NetSeg refs keep the buffers alive). Bytes are counted in
     * TcpCounters::zerocopyBytes, never copiedBytes.
     * @return segment count (> 0), 0 at EOF, or negative errno;
     * -EAGAIN when @p nonblock and the chain is empty.
     */
    sim::Task<std::int64_t> readSegments(NetSeg *out, int max_segs,
                                         bool nonblock);

    /**
     * Stream write: segments the payload, charges wire time per
     * segment (including retransmits), blocks while the peer's
     * receive window is full. Writes everything or fails.
     * @return @p len or negative errno (EPIPE, ECONNRESET).
     */
    sim::Task<std::int64_t> write(const void *buf, std::uint64_t len);

    /**
     * Gather write: transmits @p iov[0..iov_cnt) as one stream, wire
     * segments packed across iovec boundaries (one tx copy per wire
     * segment, same as write()).
     */
    sim::Task<std::int64_t> writev(const IoVec *iov, int iov_cnt);

    /** Half/full close. @return 0 or negative errno. */
    sim::Task<int> shutdown(int how);

    // Readiness probes for the epoll layer.
    std::size_t rxQueued() const { return rx_bytes_; }
    std::size_t acceptQueued() const { return accept_q_.size(); }
    bool eofPending() const { return fin_rcvd_; }
    bool errorPending() const { return error_ != 0; }
    /** True when a write of one byte would not block. */
    bool writeReady() const;

  private:
    friend class TcpStack;

    /** Free space in this socket's receive window. */
    std::uint64_t rxSpace() const;

    /** Take ownership of a wire segment arriving from the peer. */
    void deposit(NetSeg seg);

    /** Peer sent FIN: mark EOF and wake readers. */
    void finFromPeer();

    /** Hard error (reset): fail pending and future operations. */
    void resetFromPeer();

    /**
     * Shared wait/validate prologue for the read family: waits until
     * data is queued or a terminal condition holds. @return 1 when
     * data is available, else 0 (EOF) or negative errno.
     */
    sim::Task<std::int64_t> awaitReadable(bool nonblock);

    /** Post-consume bookkeeping: open window, wake, note readiness. */
    void consumed(std::uint64_t n);

    /** Gather-send over an iovec cursor; shared by write/writev. */
    sim::Task<std::int64_t> gatherSend(const IoVec *iov, int iov_cnt,
                                       std::uint64_t total);

    TcpStack &stack_;
    int id_;
    TcpState tcpState_ = TcpState::Closed;
    SockAddr local_;
    SockAddr peer_;
    int peer_id_ = -1;
    int error_ = 0; ///< sticky errno after a reset.

    std::deque<NetSeg> rx_;     ///< receive chain (refcounted segs).
    std::uint64_t rx_bytes_ = 0; ///< live bytes across the chain.
    bool fin_rcvd_ = false;
    bool fin_sent_ = false;

    int backlog_ = 0;
    std::deque<int> accept_q_; ///< established, not yet accepted.

    std::unique_ptr<sim::WaitQueue> rx_wait_;     ///< readers.
    std::unique_ptr<sim::WaitQueue> space_wait_;  ///< peer's writers.
    std::unique_ptr<sim::WaitQueue> accept_wait_; ///< accept().
};

/** Host-wide TCP state: socket table, listeners, the modeled wire. */
class TcpStack
{
  public:
    /**
     * The loss process draws from its own seeded stream (never from
     * Sim::random(): workload data generation consumes that stream and
     * the wire must not perturb it).
     */
    TcpStack(sim::EventQueue &eq, const OskParams &params,
             std::uint64_t seed = 0x67EE7u /* "gnet" */);

    TcpSocket *createSocket();
    TcpSocket *socket(int id) const;
    bool closeSocket(int id);

    sim::EventQueue &events() { return eq_; }
    const OskParams &params() const { return params_; }
    const TcpCounters &counters() const { return counters_; }

    /** Override the params loss rate (tests, sysfs knob). */
    void setLossPpm(std::uint32_t ppm) { loss_ppm_ = ppm; }
    std::uint32_t lossPpm() const { return loss_ppm_; }

    /**
     * Readiness observer: called with a socket id whenever that
     * socket's readiness may have changed.
     */
    void setReadyCallback(std::function<void(int)> cb)
    {
        ready_cb_ = std::move(cb);
    }

  private:
    friend class TcpSocket;

    void noteReady(int sock_id);

    /**
     * Wire time for one segment of @p bytes including retransmits.
     * @return the delay to charge, or 0 with @p reset set when the
     * attempt budget is exhausted.
     */
    Tick segmentDelay(std::uint64_t bytes, bool &reset);

    sim::EventQueue &eq_;
    const OskParams &params_;
    Random rng_;
    std::uint32_t loss_ppm_;
    TcpCounters counters_;
    std::function<void(int)> ready_cb_;
    std::map<int, std::unique_ptr<TcpSocket>> sockets_;
    /** Closed sockets with possibly-live waiters; see closeSocket(). */
    std::vector<std::unique_ptr<TcpSocket>> graveyard_;
    std::map<SockAddr, int> bound_;     ///< all bound endpoints.
    std::map<SockAddr, int> listeners_; ///< subset in LISTEN.
    int next_id_ = 1;
    std::uint16_t next_ephemeral_ = 49152;
};

} // namespace genesys::osk

#endif // GENESYS_OSK_TCP_HH
