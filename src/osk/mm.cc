/**
 * @file
 * MemoryManager implementation.
 */

#include "mm.hh"

#include <cerrno>

#include "osk/vfs.hh"
#include "osk/workqueue.hh"
#include "sim/sync.hh"
#include "support/logging.hh"

namespace genesys::osk
{

namespace
{

std::uint64_t
pagesFor(std::uint64_t bytes)
{
    return (bytes + kPageSize - 1) / kPageSize;
}

} // namespace

MemoryManager::MemoryManager(sim::EventQueue &eq, const OskParams &params,
                             std::uint64_t phys_limit_bytes)
    : eq_(eq), params_(params),
      faultLock_(std::make_unique<sim::Semaphore>(eq, 1)),
      physLimit_(pagesFor(phys_limit_bytes))
{}

Addr
MemoryManager::mmapAnon(std::uint64_t length)
{
    if (length == 0)
        return 0;
    Vma vma;
    vma.base = nextBase_;
    vma.pages = pagesFor(length);
    vma.state.assign(vma.pages, PageState::Absent);
    nextBase_ += (vma.pages + 16) * kPageSize; // guard gap
    const Addr base = vma.base;
    vmas_.emplace(base, std::move(vma));
    return base;
}

Addr
MemoryManager::mmapDevice(CharDevice *dev)
{
    if (dev == nullptr)
        return 0;
    std::uint64_t length = 0;
    std::uint8_t *backing = dev->mmapMemory(length);
    if (backing == nullptr || length == 0)
        return 0;
    Vma vma;
    vma.base = nextBase_;
    vma.pages = pagesFor(length);
    vma.device = dev;
    vma.backing = backing;
    // Device memory is pinned: counts as resident immediately.
    vma.state.assign(vma.pages, PageState::Present);
    addRss(vma.pages);
    nextBase_ += (vma.pages + 16) * kPageSize;
    const Addr base = vma.base;
    vmas_.emplace(base, std::move(vma));
    return base;
}

bool
MemoryManager::munmap(Addr base, std::uint64_t length)
{
    // POSIX munmap: addr must be page-aligned and may name any
    // page-aligned run inside one mapping — unmapping the middle
    // splits the VMA in two (Linux's split_vma).
    if (base % kPageSize != 0)
        return false;
    Vma *vma = find(base);
    if (vma == nullptr)
        return false;
    const std::uint64_t first = (base - vma->base) / kPageSize;
    const std::uint64_t count =
        length == 0 ? vma->pages - first : pagesFor(length);
    if (count == 0 || first + count > vma->pages)
        return false; // range spills past the mapping

    for (std::uint64_t i = first; i < first + count; ++i) {
        const PageState s = vma->state[i];
        if (s == PageState::Present) {
            GENESYS_ASSERT(rssPages_ > 0, "rss underflow");
            --rssPages_;
        } else if (s == PageState::Swapped) {
            --swappedPages_;
        }
    }

    const std::uint64_t tail_pages = vma->pages - (first + count);
    if (tail_pages > 0) {
        // Carve the surviving tail into its own VMA.
        Vma tail;
        tail.base = vma->base + (first + count) * kPageSize;
        tail.pages = tail_pages;
        tail.device = vma->device;
        tail.backing =
            vma->backing == nullptr
                ? nullptr
                : vma->backing + (first + count) * kPageSize;
        tail.state.assign(vma->state.begin() +
                              static_cast<std::ptrdiff_t>(first + count),
                          vma->state.end());
        const Addr tail_base = tail.base;
        vmas_.emplace(tail_base, std::move(tail));
    }
    if (first > 0) {
        // Head survives: shrink the original in place.
        vma->pages = first;
        vma->state.resize(first);
    } else {
        vmas_.erase(vma->base);
    }
    return true;
}

MemoryManager::Vma *
MemoryManager::find(Addr addr)
{
    auto it = vmas_.upper_bound(addr);
    if (it == vmas_.begin())
        return nullptr;
    --it;
    Vma &vma = it->second;
    if (addr >= vma.base && addr < vma.base + vma.pages * kPageSize)
        return &vma;
    return nullptr;
}

const MemoryManager::Vma *
MemoryManager::find(Addr addr) const
{
    return const_cast<MemoryManager *>(this)->find(addr);
}

int
MemoryManager::madvise(Addr addr, std::uint64_t length, int advice)
{
    lastReleased_ = 0;
    if (advice != MADV_DONTNEED_ && advice != MADV_WILLNEED_)
        return -EINVAL;
    Vma *vma = find(addr);
    if (vma == nullptr || addr % kPageSize != 0)
        return -EINVAL;
    const std::uint64_t first = (addr - vma->base) / kPageSize;
    GENESYS_ASSERT(first < vma->pages,
                   "madvise page index outside its own VMA");
    const std::uint64_t count =
        std::min(pagesFor(length), vma->pages - first);
    if (advice == MADV_WILLNEED_)
        return 0; // hint accepted; prefetch modeling not needed
    if (vma->device != nullptr)
        return -EINVAL; // cannot drop pinned device pages
    std::uint64_t released = 0;
    for (std::uint64_t i = first; i < first + count; ++i) {
        if (vma->state[i] == PageState::Present) {
            vma->state[i] = PageState::Absent;
            --rssPages_;
            ++released;
        } else if (vma->state[i] == PageState::Swapped) {
            vma->state[i] = PageState::Absent;
            --swappedPages_;
        }
    }
    lastReleased_ = released;
    return 0;
}

Tick
MemoryManager::evictToFit()
{
    Tick cost = 0;
    if (rssPages_ <= physLimit_)
        return cost;
    // Evict from the lowest-addressed VMAs first (deterministic victim
    // selection; miniamr's arena behaves like a FIFO of cold blocks).
    for (auto &[base, vma] : vmas_) {
        if (rssPages_ <= physLimit_)
            break;
        if (vma.device != nullptr)
            continue; // pinned
        for (auto &s : vma.state) {
            if (rssPages_ <= physLimit_)
                break;
            if (s == PageState::Present) {
                s = PageState::Swapped;
                --rssPages_;
                ++swappedPages_;
                ++stats_.swapOuts;
                cost += params_.swapOutPerPage;
            }
        }
    }
    return cost;
}

Tick
MemoryManager::touchCost(Addr addr, std::uint64_t length)
{
    Vma *vma = find(addr);
    if (vma == nullptr)
        panic("touch of unmapped address %llx",
              static_cast<unsigned long long>(addr));
    const std::uint64_t first = (addr - vma->base) / kPageSize;
    const std::uint64_t last_page =
        (addr + (length == 0 ? 0 : length - 1) - vma->base) / kPageSize;
    GENESYS_ASSERT(last_page < vma->pages, "touch beyond mapping");
    Tick cost = 0;
    for (std::uint64_t i = first; i <= last_page; ++i) {
        switch (vma->state[i]) {
          case PageState::Present:
            break;
          case PageState::Absent:
            vma->state[i] = PageState::Present;
            addRss(1);
            ++stats_.minorFaults;
            cost += params_.minorFault;
            cost += evictToFit();
            break;
          case PageState::Swapped:
            vma->state[i] = PageState::Present;
            --swappedPages_;
            addRss(1);
            ++stats_.majorFaults;
            cost += params_.swapInPerPage;
            stats_.swapStall += params_.swapInPerPage;
            cost += evictToFit();
            break;
        }
    }
    return cost;
}

sim::Task<>
MemoryManager::touch(Addr addr, std::uint64_t length)
{
    co_await faultLock_->acquire();
    const Tick cost = touchCost(addr, length);
    if (cost > 0) {
        if (cpus_ != nullptr)
            co_await cpus_->compute(cost);
        else
            co_await sim::Delay(eq_, cost);
    }
    faultLock_->release();
}

void
MemoryManager::touchUntimed(Addr addr, std::uint64_t length)
{
    (void)touchCost(addr, length);
}

std::uint8_t *
MemoryManager::resolve(Addr addr, std::uint64_t length) const
{
    const Vma *vma = find(addr);
    if (vma == nullptr || vma->backing == nullptr)
        return nullptr;
    const std::uint64_t off = addr - vma->base;
    if (off + length > vma->pages * kPageSize)
        return nullptr;
    return vma->backing + off;
}

} // namespace genesys::osk
