/**
 * @file
 * FdTable implementation.
 */

#include "file.hh"

namespace genesys::osk
{

int
FdTable::allocate(std::shared_ptr<OpenFile> file)
{
    for (std::size_t i = 0; i < table_.size(); ++i) {
        if (table_[i] == nullptr) {
            table_[i] = std::move(file);
            return static_cast<int>(i);
        }
    }
    table_.push_back(std::move(file));
    return static_cast<int>(table_.size() - 1);
}

void
FdTable::installAt(int fd, std::shared_ptr<OpenFile> file)
{
    if (static_cast<std::size_t>(fd) >= table_.size())
        table_.resize(static_cast<std::size_t>(fd) + 1);
    table_[static_cast<std::size_t>(fd)] = std::move(file);
}

OpenFile *
FdTable::get(int fd) const
{
    if (fd < 0 || static_cast<std::size_t>(fd) >= table_.size())
        return nullptr;
    return table_[static_cast<std::size_t>(fd)].get();
}

std::shared_ptr<OpenFile>
FdTable::getShared(int fd) const
{
    if (fd < 0 || static_cast<std::size_t>(fd) >= table_.size())
        return nullptr;
    return table_[static_cast<std::size_t>(fd)];
}

bool
FdTable::close(int fd)
{
    if (fd < 0 || static_cast<std::size_t>(fd) >= table_.size() ||
        table_[static_cast<std::size_t>(fd)] == nullptr) {
        return false;
    }
    table_[static_cast<std::size_t>(fd)] = nullptr;
    return true;
}

std::size_t
FdTable::openCount() const
{
    std::size_t n = 0;
    for (const auto &f : table_)
        n += (f != nullptr);
    return n;
}

} // namespace genesys::osk
