/**
 * @file
 * Census of Linux system calls classified by GPU implementability.
 *
 * Section IV of the paper classifies all of Linux's 300+ system calls
 * into three groups:
 *  1. readily implementable          (~79%)
 *  2. needs GPU hardware changes     (~13%)  -- Table II
 *  3. requires extensive OS surgery   (~8%)
 *
 * This module encodes the full census (Linux 4.11-era x86-64 table)
 * with a reason string for every non-readily entry, and aggregation
 * helpers used by the Table II reproduction and tests.
 */

#ifndef GENESYS_OSK_CLASSIFICATION_HH
#define GENESYS_OSK_CLASSIFICATION_HH

#include <cstddef>
#include <string>
#include <vector>

namespace genesys::osk
{

enum class SyscallClass
{
    ReadilyImplementable,
    NeedsHardwareChanges,
    ExtensiveModification,
};

/** Higher-level grouping used by Table II's "Type" column. */
struct ClassifiedSyscall
{
    std::string name;
    SyscallClass cls;
    std::string type;   ///< e.g. "signals", "thread scheduling"
    std::string reason; ///< why it is not readily implementable
};

/** The full census; stable order. */
const std::vector<ClassifiedSyscall> &syscallCensus();

struct CensusCounts
{
    std::size_t total = 0;
    std::size_t readily = 0;
    std::size_t needsHw = 0;
    std::size_t extensive = 0;

    double
    fraction(std::size_t part) const
    {
        return total == 0 ? 0.0
                          : static_cast<double>(part) /
                                static_cast<double>(total);
    }
};

CensusCounts censusCounts();

/** Entries in a class, for printing Table II. */
std::vector<ClassifiedSyscall> entriesOf(SyscallClass cls);

const char *className(SyscallClass cls);

} // namespace genesys::osk

#endif // GENESYS_OSK_CLASSIFICATION_HH
