/**
 * @file
 * System call handler implementations.
 *
 * Each handler is functional (data really moves) and charges the
 * service time of its class from OskParams as plain simulated delays.
 * CPU-core occupancy is the *caller's* responsibility: GENESYS worker
 * tasks and CPU-side workload threads hold a core (run-to-completion)
 * around handler execution, releasing it only across truly-blocking
 * sections such as recvfrom on an empty socket.
 */

#include "syscalls.hh"

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "osk/block_device.hh"
#include "osk/devices.hh"
#include "osk/epoll.hh"
#include "osk/fault.hh"
#include "osk/file.hh"
#include "osk/mm.hh"
#include "osk/net.hh"
#include "osk/pipe.hh"
#include "osk/tcp.hh"
#include "osk/process.hh"
#include "osk/signals.hh"
#include "osk/vfs.hh"
#include "sim/sync.hh"
#include "support/logging.hh"

namespace genesys::osk
{

namespace
{

// GPU waves hand in raw register blocks, so every count/length that
// sizes a host-side buffer or walk must be clamped here, at the
// boundary — the wave may be buggy or hostile. Bounds follow Linux:
// UIO_MAXIOV for vectored I/O, the UDP datagram payload maximum, and
// explicit ceilings where Linux uses rlimits.
constexpr int kMaxIovSegments = 1024;            // UIO_MAXIOV
constexpr std::uint64_t kMaxUdpPayload = 65507;  // 64KiB - headers
constexpr int kMaxEpollEvents = 4096;
constexpr int kMaxFds = 4096;                    // RLIMIT_NOFILE stand-in
constexpr std::uint64_t kMaxFileBytes = 1ull << 31; // RLIMIT_FSIZE stand-in

sim::Task<std::int64_t>
sysOpen(Kernel &k, Process &p, const SyscallArgs &args)
{
    const char *path_c = args.ptr<const char>(0);
    const int flags = args.as<int>(1);
    if (path_c == nullptr)
        co_return -EFAULT;
    const std::string path(path_c);
    co_await sim::Delay(k.sim().events(),
                        k.params().pathComponent *
                            Vfs::componentCount(path));
    Inode *inode = k.vfs().resolve(path);
    if (inode == nullptr) {
        if ((flags & O_CREAT) == 0)
            co_return -ENOENT;
        inode = k.vfs().createFile(path);
        if (inode == nullptr)
            co_return -EACCES;
    } else if ((flags & O_TRUNC) != 0 &&
               inode->type() == InodeType::Regular) {
        static_cast<RegularFile *>(inode)->truncate(0);
    }
    if (inode->type() == InodeType::Directory)
        co_return -EISDIR;
    auto file = std::make_shared<OpenFile>();
    file->inode = inode;
    file->flags = flags;
    file->path = path;
    if (inode->type() == InodeType::Proc)
        file->procSnapshot = static_cast<ProcFile *>(inode)->generate();
    co_return p.fds().allocate(std::move(file));
}

sim::Task<std::int64_t>
sysClose(Kernel &k, Process &p, const SyscallArgs &args)
{
    const int fd = args.as<int>(0);
    OpenFile *file = p.fds().get(fd);
    if (file == nullptr)
        co_return -EBADF;
    if (file->socketId >= 0) {
        k.epoll().forgetSocket(SockKind::Udp, file->socketId);
        k.udp().closeSocket(file->socketId);
    }
    if (file->tcpId >= 0) {
        k.epoll().forgetSocket(SockKind::Tcp, file->tcpId);
        k.tcp().closeSocket(file->tcpId);
    }
    if (file->epollId >= 0)
        k.epoll().close(file->epollId);
    if (file->inode != nullptr &&
        file->inode->type() == InodeType::Pipe) {
        auto *pipe = static_cast<PipeInode *>(file->inode);
        if (file->writable())
            pipe->closeWriter();
        else
            pipe->closeReader();
    }
    p.fds().close(fd);
    co_return 0;
}

/** Shared read path for read/pread64. */
sim::Task<std::int64_t>
doRead(Kernel &k, Process &p, int fd, void *buf, std::uint64_t count,
       std::int64_t pos_override)
{
    OpenFile *file = p.fds().get(fd);
    if (file == nullptr)
        co_return -EBADF;
    if (!file->readable())
        co_return -EBADF;
    if (file->tcpId >= 0) {
        if (pos_override >= 0)
            co_return -ESPIPE; // streams are not seekable
        TcpSocket *sock = k.tcp().socket(file->tcpId);
        if (sock == nullptr)
            co_return -EBADF;
        co_await sim::Delay(k.sim().events(), k.params().tcpRecvBase);
        co_return co_await sock->read(buf, count);
    }
    const std::uint64_t pos =
        pos_override >= 0 ? static_cast<std::uint64_t>(pos_override)
                          : file->pos;

    std::uint64_t n = 0;
    switch (file->inode->type()) {
      case InodeType::Regular: {
        auto *reg = static_cast<RegularFile *>(file->inode);
        n = reg->readAt(pos, buf, count);
        if (reg->backing() != nullptr && n > 0)
            co_await reg->backing()->read(n);
        co_await sim::Delay(k.sim().events(),
                            k.params().pageCacheLookup +
                                transferTicks(
                                    n, k.params().tmpfsBytesPerSec));
        break;
      }
      case InodeType::CharDevice: {
        auto *dev = static_cast<CharDevice *>(file->inode);
        n = dev->read(pos, buf, count);
        co_await sim::Delay(k.sim().events(), k.params().pageCacheLookup);
        break;
      }
      case InodeType::Proc: {
        const auto &content = file->procSnapshot;
        if (pos < content.size()) {
            n = std::min<std::uint64_t>(count, content.size() - pos);
            if (buf != nullptr)
                std::memcpy(buf, content.data() + pos, n);
        }
        co_await sim::Delay(k.sim().events(), k.params().pageCacheLookup);
        break;
      }
      case InodeType::Pipe: {
        if (pos_override >= 0)
            co_return -ESPIPE; // pipes are not seekable
        auto *pipe = static_cast<PipeInode *>(file->inode);
        co_await sim::Delay(k.sim().events(), k.params().pageCacheLookup);
        co_return co_await pipe->readBlocking(buf, count);
      }
      case InodeType::Directory:
        co_return -EISDIR;
    }
    if (pos_override < 0)
        file->pos = pos + n;
    co_return static_cast<std::int64_t>(n);
}

/** Shared write path for write/pwrite64. */
sim::Task<std::int64_t>
doWrite(Kernel &k, Process &p, int fd, const void *buf,
        std::uint64_t count, std::int64_t pos_override)
{
    OpenFile *file = p.fds().get(fd);
    if (file == nullptr)
        co_return -EBADF;
    if (!file->writable())
        co_return -EBADF;
    if (file->tcpId >= 0) {
        if (pos_override >= 0)
            co_return -ESPIPE;
        TcpSocket *sock = k.tcp().socket(file->tcpId);
        if (sock == nullptr)
            co_return -EBADF;
        co_await sim::Delay(k.sim().events(), k.params().tcpSendBase);
        co_return co_await sock->write(buf, count);
    }
    std::uint64_t pos =
        pos_override >= 0 ? static_cast<std::uint64_t>(pos_override)
                          : file->pos;

    std::uint64_t n = 0;
    switch (file->inode->type()) {
      case InodeType::Regular: {
        auto *reg = static_cast<RegularFile *>(file->inode);
        if (pos_override < 0 && (file->flags & O_APPEND) != 0)
            pos = reg->size();
        n = reg->writeAt(pos, buf, count);
        co_await sim::Delay(k.sim().events(),
                            k.params().pageCacheLookup +
                                transferTicks(
                                    n, k.params().tmpfsBytesPerSec));
        break;
      }
      case InodeType::CharDevice: {
        auto *dev = static_cast<CharDevice *>(file->inode);
        n = dev->write(pos, buf, count);
        co_await sim::Delay(k.sim().events(), k.params().pageCacheLookup);
        break;
      }
      case InodeType::Proc:
        co_return -EACCES;
      case InodeType::Pipe: {
        if (pos_override >= 0)
            co_return -ESPIPE;
        auto *pipe = static_cast<PipeInode *>(file->inode);
        co_await sim::Delay(k.sim().events(), k.params().pageCacheLookup);
        co_return co_await pipe->writeBlocking(buf, count);
      }
      case InodeType::Directory:
        co_return -EISDIR;
    }
    if (pos_override < 0)
        file->pos = pos + n;
    co_return static_cast<std::int64_t>(n);
}

sim::Task<std::int64_t>
sysRead(Kernel &k, Process &p, const SyscallArgs &args)
{
    return doRead(k, p, args.as<int>(0), args.ptr<void>(1), args.a[2], -1);
}

// write() to a full pipe or TCP send buffer parks the service core
// indefinitely; `write` is in mayBlockIndefinitely and the backend
// consults the fd type (ServiceCore::mayParkIndefinitely) to decide
// whether this particular call can actually park.
sim::Task<std::int64_t>
sysWrite(Kernel &k, Process &p, const SyscallArgs &args)
{
    return doWrite(k, p, args.as<int>(0), args.ptr<const void>(1),
                   args.a[2], -1);
}

sim::Task<std::int64_t>
sysPread(Kernel &k, Process &p, const SyscallArgs &args)
{
    const auto off = args.as<std::int64_t>(3);
    if (off < 0)
        co_return -EINVAL; // Linux rejects negative offsets up front
    co_return co_await doRead(k, p, args.as<int>(0), args.ptr<void>(1),
                              args.a[2], off);
}

sim::Task<std::int64_t>
sysPwrite(Kernel &k, Process &p, const SyscallArgs &args)
{
    const auto off = args.as<std::int64_t>(3);
    if (off < 0)
        co_return -EINVAL; // Linux rejects negative offsets up front
    co_return co_await doWrite(k, p, args.as<int>(0),
                               args.ptr<const void>(1), args.a[2], off);
}

sim::Task<std::int64_t>
sysLseek(Kernel &k, Process &p, const SyscallArgs &args)
{
    const int fd = args.as<int>(0);
    const auto offset = args.as<std::int64_t>(1);
    const int whence = args.as<int>(2);
    co_await sim::Delay(k.sim().events(), k.params().lseek);
    OpenFile *file = p.fds().get(fd);
    if (file == nullptr)
        co_return -EBADF;
    std::int64_t base = 0;
    switch (whence) {
      case SEEK_SET_:
        base = 0;
        break;
      case SEEK_CUR_:
        base = static_cast<std::int64_t>(file->pos);
        break;
      case SEEK_END_:
        base = static_cast<std::int64_t>(file->inode->size());
        break;
      default:
        co_return -EINVAL;
    }
    const std::int64_t target = base + offset;
    if (target < 0)
        co_return -EINVAL;
    file->pos = static_cast<std::uint64_t>(target);
    co_return target;
}

sim::Task<std::int64_t>
sysMmap(Kernel &k, Process &p, const SyscallArgs &args)
{
    const std::uint64_t length = args.a[1];
    const int fd = args.as<int>(4);
    co_await sim::Delay(k.sim().events(), k.params().mmapBase);
    if (length == 0)
        co_return -EINVAL;
    Addr base = 0;
    if (fd >= 0) {
        OpenFile *file = p.fds().get(fd);
        if (file == nullptr)
            co_return -EBADF;
        if (file->inode->type() != InodeType::CharDevice)
            co_return -ENODEV; // file-backed mmap not modeled
        base = p.mm().mmapDevice(static_cast<CharDevice *>(file->inode));
        if (base == 0)
            co_return -ENODEV;
    } else {
        base = p.mm().mmapAnon(length);
        if (base == 0)
            co_return -ENOMEM;
    }
    co_return static_cast<std::int64_t>(base);
}

sim::Task<std::int64_t>
sysMunmap(Kernel &k, Process &p, const SyscallArgs &args)
{
    co_await sim::Delay(k.sim().events(), k.params().munmapBase);
    co_return p.mm().munmap(args.a[0], args.a[1]) ? 0 : -EINVAL;
}

sim::Task<std::int64_t>
sysMadvise(Kernel &k, Process &p, const SyscallArgs &args)
{
    const int ret = p.mm().madvise(args.a[0], args.a[1], args.as<int>(2));
    const Tick cost = k.params().madviseBase +
                      k.params().perPageRelease *
                          p.mm().lastReleasedPages();
    co_await sim::Delay(k.sim().events(), cost);
    co_return ret;
}

sim::Task<std::int64_t>
sysGetrusage(Kernel &k, Process &p, const SyscallArgs &args)
{
    auto *usage = args.ptr<RUsage>(1);
    co_await sim::Delay(k.sim().events(), k.params().getrusage);
    if (usage == nullptr)
        co_return -EFAULT;
    const auto &mm = p.mm();
    usage->ruMaxRssKib = mm.peakRssBytes() / 1024;
    usage->ruMinFlt = mm.stats().minorFaults;
    usage->ruMajFlt = mm.stats().majorFaults;
    usage->curRssBytes = mm.rssBytes();
    co_return 0;
}

sim::Task<std::int64_t>
sysRtSigqueueinfo(Kernel &k, Process &p, const SyscallArgs &args)
{
    const int target_pid = args.as<int>(0);
    const int signo = args.as<int>(1);
    const auto *info = args.ptr<const SigInfo>(2);
    co_await sim::Delay(k.sim().events(), k.params().signalQueue);
    SigInfo payload;
    if (info != nullptr)
        payload = *info;
    payload.signo = signo;
    payload.senderId = static_cast<std::uint64_t>(p.pid());
    Process &target =
        target_pid == 0 ? p : k.process(target_pid);
    co_return target.signals().queueInfo(payload);
}

// socket(2) type values (match Linux).
inline constexpr int SOCK_STREAM_ = 1;

/** Hidden inode shared by every socket/epoll fd: sockets have no path;
 *  the NullDevice sink keeps the generic fd plumbing uniform. */
Inode *
socketInode()
{
    static NullDevice socket_inode;
    return &socket_inode;
}

sim::Task<std::int64_t>
sysSocket(Kernel &k, Process &p, const SyscallArgs &args)
{
    const int type = args.as<int>(1);
    co_await sim::Delay(k.sim().events(), k.params().udpSendBase);
    auto file = std::make_shared<OpenFile>();
    file->flags = O_RDWR;
    file->inode = socketInode();
    if (type == SOCK_STREAM_)
        file->tcpId = k.tcp().createSocket()->id();
    else
        file->socketId = k.udp().createSocket()->id();
    co_return p.fds().allocate(std::move(file));
}

sim::Task<std::int64_t>
sysBind(Kernel &k, Process &p, const SyscallArgs &args)
{
    const int fd = args.as<int>(0);
    const auto *addr = args.ptr<const SockAddr>(1);
    co_await sim::Delay(k.sim().events(), k.params().udpRecvBase);
    OpenFile *file = p.fds().get(fd);
    if (file == nullptr ||
        (file->socketId < 0 && file->tcpId < 0))
        co_return -EBADF;
    if (addr == nullptr)
        co_return -EFAULT;
    if (file->tcpId >= 0)
        co_return k.tcp().socket(file->tcpId)->bind(*addr);
    co_return k.udp().socket(file->socketId)->bind(*addr);
}

sim::Task<std::int64_t>
sysConnect(Kernel &k, Process &p, const SyscallArgs &args)
{
    const int fd = args.as<int>(0);
    const auto *addr = args.ptr<const SockAddr>(1);
    co_await sim::Delay(k.sim().events(), k.params().tcpConnectBase);
    OpenFile *file = p.fds().get(fd);
    if (file == nullptr || file->tcpId < 0)
        co_return -EBADF;
    if (addr == nullptr)
        co_return -EFAULT;
    co_return co_await k.tcp().socket(file->tcpId)->connect(*addr);
}

sim::Task<std::int64_t>
sysListen(Kernel &k, Process &p, const SyscallArgs &args)
{
    const int fd = args.as<int>(0);
    const int backlog = args.as<int>(1);
    co_await sim::Delay(k.sim().events(), k.params().udpRecvBase);
    OpenFile *file = p.fds().get(fd);
    if (file == nullptr || file->tcpId < 0)
        co_return -EBADF;
    co_return k.tcp().socket(file->tcpId)->listen(backlog);
}

sim::Task<std::int64_t>
sysAccept(Kernel &k, Process &p, const SyscallArgs &args)
{
    const int fd = args.as<int>(0);
    auto *peer_out = args.ptr<SockAddr>(1);
    co_await sim::Delay(k.sim().events(), k.params().tcpConnectBase);
    OpenFile *file = p.fds().get(fd);
    if (file == nullptr || file->tcpId < 0)
        co_return -EBADF;
    const int sid = co_await k.tcp().socket(file->tcpId)->accept();
    if (sid < 0)
        co_return sid;
    auto conn = std::make_shared<OpenFile>();
    conn->flags = O_RDWR;
    conn->inode = socketInode();
    conn->tcpId = sid;
    if (peer_out != nullptr)
        *peer_out = k.tcp().socket(sid)->peer();
    co_return p.fds().allocate(std::move(conn));
}

sim::Task<std::int64_t>
sysShutdown(Kernel &k, Process &p, const SyscallArgs &args)
{
    const int fd = args.as<int>(0);
    const int how = args.as<int>(1);
    co_await sim::Delay(k.sim().events(), k.params().tcpSendBase);
    OpenFile *file = p.fds().get(fd);
    if (file == nullptr || file->tcpId < 0)
        co_return -EBADF;
    co_return co_await k.tcp().socket(file->tcpId)->shutdown(how);
}

sim::Task<std::int64_t>
sysEpollCreate(Kernel &k, Process &p, const SyscallArgs &)
{
    co_await sim::Delay(k.sim().events(), k.params().epollCtlBase);
    auto file = std::make_shared<OpenFile>();
    file->flags = O_RDWR;
    file->inode = socketInode();
    file->epollId = k.epoll().create();
    co_return p.fds().allocate(std::move(file));
}

sim::Task<std::int64_t>
sysEpollCtl(Kernel &k, Process &p, const SyscallArgs &args)
{
    const int epfd = args.as<int>(0);
    const int op = args.as<int>(1);
    const int fd = args.as<int>(2);
    const auto *event = args.ptr<const EpollEvent>(3);
    co_await sim::Delay(k.sim().events(), k.params().epollCtlBase);
    OpenFile *efile = p.fds().get(epfd);
    if (efile == nullptr || efile->epollId < 0)
        co_return -EBADF;
    EpollInstance *inst = k.epoll().instance(efile->epollId);
    if (inst == nullptr)
        co_return -EBADF;
    OpenFile *target = p.fds().get(fd);
    if (target == nullptr)
        co_return -EBADF;
    if (target->socketId < 0 && target->tcpId < 0)
        co_return -EPERM; // only sockets are pollable here
    if (event == nullptr && op != EPOLL_CTL_DEL_)
        co_return -EFAULT;
    const SockKind kind =
        target->tcpId >= 0 ? SockKind::Tcp : SockKind::Udp;
    const int sock_id =
        target->tcpId >= 0 ? target->tcpId : target->socketId;
    co_return inst->ctl(op, fd, kind, sock_id,
                        event != nullptr ? event->events : 0,
                        event != nullptr ? event->data : 0);
}

sim::Task<std::int64_t>
sysEpollWait(Kernel &k, Process &p, const SyscallArgs &args)
{
    const int epfd = args.as<int>(0);
    auto *events = args.ptr<EpollEvent>(1);
    const int max_events = args.as<int>(2);
    const auto timeout_ns = args.as<std::int64_t>(3);
    // Slot payload extension: the requester's hardware wave slot rides
    // in arg[4] so readiness wake-ups can be attributed to a
    // syscall-area shard (kEpollHostWaiter for CPU-side callers).
    const std::uint64_t waiter = args.a[4];
    co_await sim::Delay(k.sim().events(), k.params().epollWaitBase);
    OpenFile *efile = p.fds().get(epfd);
    if (efile == nullptr || efile->epollId < 0)
        co_return -EBADF;
    EpollInstance *inst = k.epoll().instance(efile->epollId);
    if (inst == nullptr)
        co_return -EBADF;
    // max_events bounds the collectReady() walk of the caller's
    // events window; a GPU wave must not pick the bound itself.
    if (max_events <= 0 || max_events > kMaxEpollEvents)
        co_return -EINVAL;
    co_return co_await inst->wait(events, max_events, timeout_ns,
                                  waiter);
}

// sendto on a connected stream falls through to TcpSocket::write,
// which parks when the send buffer is full; `sendto` is classified
// blocking and the backend's fd-aware check scopes the park to
// socket/pipe fds.
sim::Task<std::int64_t>
sysSendto(Kernel &k, Process &p, const SyscallArgs &args)
{
    const int fd = args.as<int>(0);
    const auto *buf = args.ptr<const std::uint8_t>(1);
    const std::uint64_t len = args.a[2];
    const auto *dest = args.ptr<const SockAddr>(4);
    OpenFile *file = p.fds().get(fd);
    if (file == nullptr)
        co_return -EBADF;
    if (file->tcpId >= 0) {
        // sendto on a connected stream: the address is ignored.
        TcpSocket *sock = k.tcp().socket(file->tcpId);
        if (sock == nullptr)
            co_return -EBADF;
        co_await sim::Delay(k.sim().events(), k.params().tcpSendBase);
        co_return co_await sock->write(buf, len);
    }
    if (file->socketId < 0)
        co_return -EBADF;
    if (buf == nullptr || dest == nullptr)
        co_return -EFAULT;
    if (len > kMaxUdpPayload)
        co_return -EMSGSIZE; // GPU-supplied length sizes this buffer
    std::vector<std::uint8_t> payload(buf, buf + len);
    co_await sim::Delay(k.sim().events(), k.params().udpSendBase);
    co_return co_await k.udp().socket(file->socketId)
        ->sendTo(*dest, std::move(payload));
}

sim::Task<std::int64_t>
sysRecvfrom(Kernel &k, Process &p, const SyscallArgs &args)
{
    const int fd = args.as<int>(0);
    auto *buf = args.ptr<std::uint8_t>(1);
    const std::uint64_t len = args.a[2];
    auto *src = args.ptr<SockAddr>(4);
    OpenFile *file = p.fds().get(fd);
    if (file == nullptr)
        co_return -EBADF;
    if (file->tcpId >= 0) {
        TcpSocket *sock = k.tcp().socket(file->tcpId);
        if (sock == nullptr)
            co_return -EBADF;
        co_await sim::Delay(k.sim().events(), k.params().tcpRecvBase);
        if (src != nullptr)
            *src = sock->peer();
        co_return co_await sock->read(buf, len);
    }
    if (file->socketId < 0)
        co_return -EBADF;
    Datagram dgram =
        co_await k.udp().socket(file->socketId)->recvFrom(len);
    co_await sim::Delay(k.sim().events(), k.params().udpRecvBase);
    if (buf != nullptr && !dgram.payload.empty())
        std::memcpy(buf, dgram.payload.data(), dgram.payload.size());
    if (src != nullptr)
        *src = dgram.from;
    co_return static_cast<std::int64_t>(dgram.payload.size());
}

/**
 * Vectored I/O family. The msghdr of the real ABI is collapsed to the
 * only part the data path needs — the iovec array — so the register
 * block is (fd, iov*, iovcnt[, flags]). sendmsg/recvmsg add the flag
 * word; recvmsg(MSG_ZEROCOPY) is the loaned-segment protocol that
 * makes the gkv hot path copy-free (see OpenFile::loanedSegs).
 */
sim::Task<std::int64_t>
sysReadv(Kernel &k, Process &p, const SyscallArgs &args)
{
    const int fd = args.as<int>(0);
    const auto *iov = args.ptr<const IoVec>(1);
    const int cnt = args.as<int>(2);
    if (iov == nullptr)
        co_return -EFAULT;
    if (cnt < 0 || cnt > kMaxIovSegments)
        co_return -EINVAL;
    OpenFile *file = p.fds().get(fd);
    if (file == nullptr || !file->readable())
        co_return -EBADF;
    if (file->tcpId >= 0) {
        TcpSocket *sock = k.tcp().socket(file->tcpId);
        if (sock == nullptr)
            co_return -EBADF;
        co_await sim::Delay(k.sim().events(), k.params().tcpRecvBase);
        co_return co_await sock->readv(iov, cnt);
    }
    // Non-stream fds: sequential per-iovec reads; a short read stops
    // the scan, matching POSIX readv semantics.
    std::int64_t total = 0;
    for (int i = 0; i < cnt; ++i) {
        if (iov[i].len == 0)
            continue;
        const auto n =
            co_await doRead(k, p, fd, iov[i].asPtr(), iov[i].len, -1);
        if (n < 0)
            co_return total > 0 ? total : n;
        total += n;
        if (static_cast<std::uint64_t>(n) < iov[i].len)
            break;
    }
    co_return total;
}

sim::Task<std::int64_t>
sysWritev(Kernel &k, Process &p, const SyscallArgs &args)
{
    const int fd = args.as<int>(0);
    const auto *iov = args.ptr<const IoVec>(1);
    const int cnt = args.as<int>(2);
    if (iov == nullptr)
        co_return -EFAULT;
    if (cnt < 0 || cnt > kMaxIovSegments)
        co_return -EINVAL;
    OpenFile *file = p.fds().get(fd);
    if (file == nullptr || !file->writable())
        co_return -EBADF;
    if (file->tcpId >= 0) {
        TcpSocket *sock = k.tcp().socket(file->tcpId);
        if (sock == nullptr)
            co_return -EBADF;
        co_await sim::Delay(k.sim().events(), k.params().tcpSendBase);
        co_return co_await sock->writev(iov, cnt);
    }
    std::int64_t total = 0;
    for (int i = 0; i < cnt; ++i) {
        if (iov[i].len == 0)
            continue;
        const auto n =
            co_await doWrite(k, p, fd, iov[i].asPtr(), iov[i].len, -1);
        if (n < 0)
            co_return total > 0 ? total : n;
        total += n;
        if (static_cast<std::uint64_t>(n) < iov[i].len)
            break;
    }
    co_return total;
}

sim::Task<std::int64_t>
sysSendmsg(Kernel &k, Process &p, const SyscallArgs &args)
{
    const int fd = args.as<int>(0);
    const auto *iov = args.ptr<const IoVec>(1);
    const int cnt = args.as<int>(2);
    OpenFile *file = p.fds().get(fd);
    if (file == nullptr)
        co_return -EBADF;
    if (file->tcpId < 0)
        co_return -EOPNOTSUPP; // datagram msghdr routing not modeled
    if (iov == nullptr)
        co_return -EFAULT;
    if (cnt < 0 || cnt > kMaxIovSegments)
        co_return -EINVAL;
    TcpSocket *sock = k.tcp().socket(file->tcpId);
    if (sock == nullptr)
        co_return -EBADF;
    co_await sim::Delay(k.sim().events(), k.params().tcpSendBase);
    co_return co_await sock->writev(iov, cnt);
}

sim::Task<std::int64_t>
sysRecvmsg(Kernel &k, Process &p, const SyscallArgs &args)
{
    const int fd = args.as<int>(0);
    auto *iov = args.ptr<IoVec>(1);
    const int cnt = args.as<int>(2);
    const int flags = args.as<int>(3);
    OpenFile *file = p.fds().get(fd);
    if (file == nullptr)
        co_return -EBADF;
    if (file->tcpId < 0)
        co_return -EOPNOTSUPP;
    if (iov == nullptr)
        co_return -EFAULT;
    if (cnt <= 0 || cnt > kMaxIovSegments)
        co_return -EINVAL;
    TcpSocket *sock = k.tcp().socket(file->tcpId);
    if (sock == nullptr)
        co_return -EBADF;
    co_await sim::Delay(k.sim().events(), k.params().tcpRecvBase);
    const bool nonblock = (flags & MSG_DONTWAIT_) != 0;
    if ((flags & MSG_ZEROCOPY_) == 0) {
        // Scatter copy-out. The DONTWAIT probe is race-free here: the
        // sim is cooperatively scheduled, so nothing drains the chain
        // between the probe and readv's no-wait fast path.
        if (nonblock && sock->rxQueued() == 0 && !sock->eofPending() &&
            !sock->errorPending())
            co_return -EAGAIN;
        co_return co_await sock->readv(iov, cnt);
    }
    // Zero-copy: retire the previous loan generation on this fd (the
    // caller is done parsing those segments), then hand out whole
    // segments — each iovec entry is rewritten to point INTO the
    // refcounted segment buffer, which loanedSegs keeps alive until
    // the next MSG_ZEROCOPY recvmsg or close.
    file->loanedSegs.clear();
    std::vector<NetSeg> segs(static_cast<std::size_t>(cnt));
    const auto got =
        co_await sock->readSegments(segs.data(), cnt, nonblock);
    if (got <= 0)
        co_return got;
    std::int64_t total = 0;
    for (std::int64_t i = 0; i < got; ++i) {
        auto &seg = segs[static_cast<std::size_t>(i)];
        iov[i].base = SyscallArgs::fromPtr(seg.bytes());
        iov[i].len = seg.len;
        total += seg.len;
        file->loanedSegs.push_back(std::move(seg.data));
    }
    for (int i = static_cast<int>(got); i < cnt; ++i)
        iov[i] = IoVec{};
    co_return total;
}

sim::Task<std::int64_t>
sysIoctl(Kernel &k, Process &p, const SyscallArgs &args)
{
    const int fd = args.as<int>(0);
    const std::uint64_t request = args.a[1];
    void *argp = args.ptr<void>(2);
    co_await sim::Delay(k.sim().events(), k.params().ioctlBase);
    OpenFile *file = p.fds().get(fd);
    if (file == nullptr)
        co_return -EBADF;
    if (file->inode->type() != InodeType::CharDevice)
        co_return -ENOTTY;
    co_return static_cast<CharDevice *>(file->inode)
        ->ioctl(request, argp);
}

sim::Task<std::int64_t>
sysPipe(Kernel &k, Process &p, const SyscallArgs &args)
{
    int *fds_out = args.ptr<int>(0);
    co_await sim::Delay(k.sim().events(), k.params().syscallBase);
    if (fds_out == nullptr)
        co_return -EFAULT;
    auto pipe = std::make_shared<PipeInode>(k.sim().events());
    auto rd = std::make_shared<OpenFile>();
    rd->inode = pipe.get();
    rd->owned = pipe;
    rd->flags = O_RDONLY;
    pipe->addReader();
    auto wr = std::make_shared<OpenFile>();
    wr->inode = pipe.get();
    wr->owned = pipe;
    wr->flags = O_WRONLY;
    pipe->addWriter();
    fds_out[0] = p.fds().allocate(std::move(rd));
    fds_out[1] = p.fds().allocate(std::move(wr));
    co_return 0;
}

/** Shared tail for dup/dup2: duplicate an endpoint reference. */
std::int64_t
finishDup(Process &p, const std::shared_ptr<OpenFile> &file, int newfd)
{
    if (file->inode != nullptr &&
        file->inode->type() == InodeType::Pipe) {
        auto *pipe = static_cast<PipeInode *>(file->inode);
        if (file->writable())
            pipe->addWriter();
        else
            pipe->addReader();
    }
    if (newfd < 0)
        return p.fds().allocate(file);
    p.fds().installAt(newfd, file);
    return newfd;
}

sim::Task<std::int64_t>
sysDup(Kernel &k, Process &p, const SyscallArgs &args)
{
    co_await sim::Delay(k.sim().events(), k.params().lseek);
    auto file = p.fds().getShared(args.as<int>(0));
    if (file == nullptr)
        co_return -EBADF;
    co_return finishDup(p, file, -1);
}

sim::Task<std::int64_t>
sysDup2(Kernel &k, Process &p, const SyscallArgs &args)
{
    const int oldfd = args.as<int>(0);
    const int newfd = args.as<int>(1);
    co_await sim::Delay(k.sim().events(), k.params().lseek);
    auto file = p.fds().getShared(oldfd);
    // installAt() grows the fd table to cover newfd, so the GPU-
    // chosen slot must sit under the descriptor ceiling.
    if (file == nullptr || newfd < 0 || newfd >= kMaxFds)
        co_return -EBADF;
    if (oldfd == newfd)
        co_return newfd;
    if (p.fds().get(newfd) != nullptr) {
        // Implicitly close the old occupant (including pipe refs).
        co_await sysClose(k, p, makeArgs(newfd));
    }
    co_return finishDup(p, file, newfd);
}

sim::Task<std::int64_t>
sysFstat(Kernel &k, Process &p, const SyscallArgs &args)
{
    auto *out = args.ptr<StatLite>(1);
    co_await sim::Delay(k.sim().events(), k.params().lseek);
    OpenFile *file = p.fds().get(args.as<int>(0));
    if (file == nullptr)
        co_return -EBADF;
    if (out == nullptr)
        co_return -EFAULT;
    out->stSize = file->inode != nullptr ? file->inode->size() : 0;
    if (file->socketId >= 0) {
        out->stMode = 6;
    } else {
        switch (file->inode->type()) {
          case InodeType::Regular:
            out->stMode = 1;
            break;
          case InodeType::Directory:
            out->stMode = 2;
            break;
          case InodeType::CharDevice:
            out->stMode = 3;
            break;
          case InodeType::Proc:
            out->stMode = 4;
            break;
          case InodeType::Pipe:
            out->stMode = 5;
            break;
        }
    }
    co_return 0;
}

sim::Task<std::int64_t>
sysFtruncate(Kernel &k, Process &p, const SyscallArgs &args)
{
    co_await sim::Delay(k.sim().events(), k.params().lseek);
    OpenFile *file = p.fds().get(args.as<int>(0));
    if (file == nullptr || !file->writable())
        co_return -EBADF;
    if (file->inode->type() != InodeType::Regular)
        co_return -EINVAL;
    const std::uint64_t new_size = args.a[1];
    if (new_size > kMaxFileBytes)
        co_return -EFBIG; // truncate() eagerly allocates the backing
    static_cast<RegularFile *>(file->inode)->truncate(new_size);
    co_return 0;
}

sim::Task<std::int64_t>
sysUnlink(Kernel &k, Process &, const SyscallArgs &args)
{
    const char *path = args.ptr<const char>(0);
    if (path == nullptr)
        co_return -EFAULT;
    co_await sim::Delay(k.sim().events(),
                        k.params().pathComponent *
                            Vfs::componentCount(path));
    co_return k.vfs().unlink(path) ? 0 : -ENOENT;
}

sim::Task<std::int64_t>
sysGetpid(Kernel &k, Process &p, const SyscallArgs &)
{
    co_await sim::Delay(k.sim().events(), k.params().lseek);
    co_return p.pid();
}

sim::Task<std::int64_t>
sysNanosleep(Kernel &k, Process &, const SyscallArgs &args)
{
    const auto *req = args.ptr<const TimeSpec>(0);
    if (req == nullptr)
        co_return -EFAULT;
    if (req->tvSec < 0 || req->tvNsec < 0 || req->tvNsec >= 1000000000)
        co_return -EINVAL;
    co_await sim::Delay(k.sim().events(),
                        ticks::sec(static_cast<std::uint64_t>(
                            req->tvSec)) +
                            static_cast<Tick>(req->tvNsec));
    co_return 0;
}

} // namespace

SyscallTable::SyscallTable()
{
    install(sysno::read, "read", sysRead);
    install(sysno::write, "write", sysWrite);
    install(sysno::open, "open", sysOpen);
    install(sysno::close, "close", sysClose);
    install(sysno::lseek, "lseek", sysLseek);
    install(sysno::mmap, "mmap", sysMmap);
    install(sysno::munmap, "munmap", sysMunmap);
    install(sysno::ioctl, "ioctl", sysIoctl);
    install(sysno::pread64, "pread64", sysPread);
    install(sysno::pwrite64, "pwrite64", sysPwrite);
    install(sysno::readv, "readv", sysReadv);
    install(sysno::writev, "writev", sysWritev);
    install(sysno::madvise, "madvise", sysMadvise);
    install(sysno::socket, "socket", sysSocket);
    install(sysno::connect, "connect", sysConnect);
    install(sysno::accept, "accept", sysAccept);
    install(sysno::sendto, "sendto", sysSendto);
    install(sysno::recvfrom, "recvfrom", sysRecvfrom);
    install(sysno::sendmsg, "sendmsg", sysSendmsg);
    install(sysno::recvmsg, "recvmsg", sysRecvmsg);
    install(sysno::shutdown, "shutdown", sysShutdown);
    install(sysno::bind, "bind", sysBind);
    install(sysno::listen, "listen", sysListen);
    install(sysno::epoll_create, "epoll_create", sysEpollCreate);
    install(sysno::epoll_wait, "epoll_wait", sysEpollWait);
    install(sysno::epoll_ctl, "epoll_ctl", sysEpollCtl);
    install(sysno::getrusage, "getrusage", sysGetrusage);
    install(sysno::pipe, "pipe", sysPipe);
    install(sysno::dup, "dup", sysDup);
    install(sysno::dup2, "dup2", sysDup2);
    install(sysno::fstat, "fstat", sysFstat);
    install(sysno::ftruncate, "ftruncate", sysFtruncate);
    install(sysno::unlink, "unlink", sysUnlink);
    install(sysno::getpid, "getpid", sysGetpid);
    install(sysno::nanosleep, "nanosleep", sysNanosleep);
    install(sysno::rt_sigqueueinfo, "rt_sigqueueinfo",
            sysRtSigqueueinfo);
}

void
SyscallTable::install(int num, std::string name, Handler handler)
{
    handlers_[num] = Entry{std::move(name), std::move(handler)};
}

std::string
SyscallTable::name(int num) const
{
    auto it = handlers_.find(num);
    return it == handlers_.end() ? logging::format("sys_%d", num)
                                 : it->second.name;
}

sim::Task<std::int64_t>
SyscallTable::invoke(Kernel &kernel, Process &proc, int num,
                     const SyscallArgs &args, FaultInjector *faults) const
{
    co_await sim::Delay(kernel.sim().events(),
                        kernel.params().syscallBase);
    auto it = handlers_.find(num);
    if (it == handlers_.end())
        co_return -ENOSYS;

    if (faults != nullptr && faults->armed()) {
        // Short-transfer injection needs a count that can shrink and
        // still stay positive; everything else is count-independent.
        const std::uint64_t transfer_bytes =
            transferSyscall(num) ? args.a[2] : 0;
        const FaultDecision d = faults->decide(num, transfer_bytes);
        switch (d.kind) {
        case FaultKind::Eintr:
            co_return -EINTR;
        case FaultKind::Eagain:
            co_return -EAGAIN;
        case FaultKind::Errno:
            co_return -d.err;
        case FaultKind::ShortTransfer: {
            SyscallArgs trimmed = args;
            const std::uint64_t keep = std::max<std::uint64_t>(
                1, args.a[2] * d.keepPermille / 1000);
            trimmed.a[2] = keep;
            co_return co_await it->second.handler(kernel, proc,
                                                  trimmed);
        }
        default:
            break;
        }
    }
    co_return co_await it->second.handler(kernel, proc, args);
}

} // namespace genesys::osk
