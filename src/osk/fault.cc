#include "osk/fault.hh"

#include <memory>

#include "osk/sysfs.hh"
#include "osk/vfs.hh"

namespace genesys::osk
{

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
    case FaultKind::None: return "none";
    case FaultKind::Errno: return "errno";
    case FaultKind::Eintr: return "eintr";
    case FaultKind::Eagain: return "eagain";
    case FaultKind::ShortTransfer: return "short_transfer";
    case FaultKind::DeviceDelay: return "device_delay";
    }
    return "?";
}

namespace
{

std::uint64_t
splitmix64(std::uint64_t x)
{
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

} // namespace

std::uint64_t
FaultInjector::draw(std::uint64_t stream, std::uint64_t index) const
{
    // One stateless mix per event: the decision for (stream, index)
    // never depends on how many other events interleaved with it.
    std::uint64_t h = splitmix64(config_.seed);
    h = splitmix64(h ^ stream);
    h = splitmix64(h ^ index);
    return h;
}

FaultDecision
FaultInjector::decide(int sysno, std::uint64_t transfer_bytes)
{
    const std::uint64_t nth = ++invocations_[sysno];

    if (!plan_.empty()) {
        auto it = plan_.find({sysno, nth});
        if (it != plan_.end()) {
            FaultDecision d = it->second;
            plan_.erase(it);
            if (d.kind == FaultKind::ShortTransfer &&
                transfer_bytes <= 1) {
                d.kind = FaultKind::None;
            }
            if (d.kind != FaultKind::None)
                count(d.kind);
            return d;
        }
    }

    // PIPE_BUF-style atomicity: random rolls never split a transfer
    // small enough that POSIX would complete it in one piece, so
    // concurrent writers cannot tear each other's records.
    const bool splittable = transfer_bytes > config_.atomicTransferBytes;
    const std::uint32_t eintr = config_.eintrPpm;
    const std::uint32_t eagain = config_.eagainPpm;
    const std::uint32_t shrt = splittable ? config_.shortPpm : 0;
    const std::uint32_t hard = config_.errnoPpm;
    if (eintr + eagain + shrt + hard == 0)
        return {};

    const std::uint64_t h =
        draw(0x5CA11 ^ static_cast<std::uint64_t>(sysno) << 20, nth);
    const std::uint64_t roll = h % 1'000'000;

    // The classes occupy stacked bands of the [0, 1e6) roll, so one
    // draw decides everything and raising one rate never reshuffles
    // which invocations the other classes hit... within a band.
    FaultDecision d;
    if (roll < eintr) {
        d.kind = FaultKind::Eintr;
    } else if (roll < eintr + eagain) {
        d.kind = FaultKind::Eagain;
    } else if (roll < eintr + eagain + shrt) {
        d.kind = FaultKind::ShortTransfer;
        // High hash bits (independent of the band roll) pick how much
        // of the transfer survives: 1..999 permille.
        d.keepPermille = static_cast<std::uint32_t>((h >> 40) % 999) + 1;
    } else if (roll < eintr + eagain + shrt + hard) {
        d.kind = FaultKind::Errno;
        d.err = config_.errnoValue;
    } else {
        return {};
    }
    count(d.kind);
    return d;
}

Tick
FaultInjector::deviceDelay()
{
    const std::uint64_t nth = ++deviceRequests_;
    if (config_.deviceDelayPpm == 0 || config_.deviceDelay == 0)
        return 0;
    const std::uint64_t roll = draw(0xB10CDE1A, nth) % 1'000'000;
    if (roll >= config_.deviceDelayPpm)
        return 0;
    count(FaultKind::DeviceDelay);
    return config_.deviceDelay;
}

void
FaultInjector::reset()
{
    plan_.clear();
    invocations_.clear();
    deviceRequests_ = 0;
    injected_ = 0;
    for (auto &n : injectedByKind_)
        n = 0;
}

void
FaultInjector::installSysfs(Vfs &vfs)
{
    auto knob = [&vfs, this](const std::string &name,
                             std::uint32_t FaultConfig::*field) {
        vfs.install("/sys/genesys/fault/" + name,
                    std::make_shared<SysfsFile>(
                        [this, field]() -> std::uint64_t {
                            return config_.*field;
                        },
                        [this, field](std::uint64_t v) {
                            if (v > 1'000'000)
                                return false;
                            config_.*field =
                                static_cast<std::uint32_t>(v);
                            return true;
                        }));
    };
    knob("eintr_ppm", &FaultConfig::eintrPpm);
    knob("eagain_ppm", &FaultConfig::eagainPpm);
    knob("short_ppm", &FaultConfig::shortPpm);
    knob("errno_ppm", &FaultConfig::errnoPpm);
    knob("device_delay_ppm", &FaultConfig::deviceDelayPpm);

    vfs.install("/sys/genesys/fault/seed",
                std::make_shared<SysfsFile>(
                    [this]() -> std::uint64_t { return config_.seed; },
                    [this](std::uint64_t v) {
                        config_.seed = v;
                        return true;
                    }));
    vfs.install("/sys/genesys/fault/errno_value",
                std::make_shared<SysfsFile>(
                    [this]() -> std::uint64_t {
                        return static_cast<std::uint64_t>(
                            config_.errnoValue);
                    },
                    [this](std::uint64_t v) {
                        if (v == 0 || v > 4095)
                            return false;
                        config_.errnoValue = static_cast<int>(v);
                        return true;
                    }));
    vfs.install("/sys/genesys/fault/atomic_transfer_bytes",
                std::make_shared<SysfsFile>(
                    [this]() -> std::uint64_t {
                        return config_.atomicTransferBytes;
                    },
                    [this](std::uint64_t v) {
                        if (v > UINT32_MAX)
                            return false;
                        config_.atomicTransferBytes =
                            static_cast<std::uint32_t>(v);
                        return true;
                    }));
    vfs.install("/sys/genesys/fault/device_delay_ns",
                std::make_shared<SysfsFile>(
                    [this]() -> std::uint64_t {
                        return config_.deviceDelay;
                    },
                    [this](std::uint64_t v) {
                        config_.deviceDelay = v;
                        return true;
                    }));
    // Read-only observability: total faults fired so far.
    vfs.install("/sys/genesys/fault/injected",
                std::make_shared<SysfsFile>(
                    [this]() -> std::uint64_t { return injected_; },
                    [](std::uint64_t) { return false; }));
}

} // namespace genesys::osk
