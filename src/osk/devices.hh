/**
 * @file
 * Character devices: terminal, /dev/null, and the framebuffer.
 *
 * The framebuffer device implements the subset of the Linux fbdev ioctl
 * interface the paper's bmp-display case study uses (Section VIII-E):
 * FBIOGET_VSCREENINFO / FBIOPUT_VSCREENINFO to query and set the mode,
 * and mmap of the pixel memory for the raster copy (Figure 16).
 */

#ifndef GENESYS_OSK_DEVICES_HH
#define GENESYS_OSK_DEVICES_HH

#include <cstdint>
#include <string>
#include <vector>

#include "osk/vfs.hh"

namespace genesys::osk
{

/** Console: write() appends to a captured transcript. */
class TerminalDevice : public CharDevice
{
  public:
    std::uint64_t
    write(std::uint64_t offset, const void *src,
          std::uint64_t len) override;

    std::uint64_t
    read(std::uint64_t offset, void *dst, std::uint64_t len) override;

    /** Everything written so far (what the user would see). */
    const std::string &transcript() const { return transcript_; }
    void clearTranscript() { transcript_.clear(); }

    /** Pre-load data to be returned by read() (stdin redirection). */
    void setInput(std::string input) { input_ = std::move(input); }

  private:
    std::string transcript_;
    std::string input_;
    std::uint64_t inputPos_ = 0;
};

/** Bit bucket. */
class NullDevice : public CharDevice
{
  public:
    std::uint64_t
    read(std::uint64_t, void *, std::uint64_t) override
    {
        return 0; // EOF
    }
};

// --- Linux fbdev ABI subset -------------------------------------------

inline constexpr std::uint64_t FBIOGET_VSCREENINFO = 0x4600;
inline constexpr std::uint64_t FBIOPUT_VSCREENINFO = 0x4601;
inline constexpr std::uint64_t FBIOGET_FSCREENINFO = 0x4602;
inline constexpr std::uint64_t FBIOPAN_DISPLAY = 0x4606;

struct FbVarScreenInfo
{
    std::uint32_t xres = 0;
    std::uint32_t yres = 0;
    std::uint32_t xresVirtual = 0;
    std::uint32_t yresVirtual = 0;
    std::uint32_t xoffset = 0;
    std::uint32_t yoffset = 0;
    std::uint32_t bitsPerPixel = 0;
};

struct FbFixScreenInfo
{
    std::uint64_t smemLen = 0;  ///< framebuffer size in bytes
    std::uint32_t lineLength = 0; ///< bytes per scanline
};

/** Framebuffer with real pixel memory (RGBA8888 or RGB565). */
class FramebufferDevice : public CharDevice
{
  public:
    FramebufferDevice(std::uint32_t xres, std::uint32_t yres,
                      std::uint32_t bits_per_pixel);

    std::int64_t ioctl(std::uint64_t request, void *argp) override;

    std::uint8_t *mmapMemory(std::uint64_t &length) override;

    std::uint64_t
    write(std::uint64_t offset, const void *src,
          std::uint64_t len) override;

    std::uint64_t
    read(std::uint64_t offset, void *dst, std::uint64_t len) override;

    std::uint64_t size() const override { return pixels_.size(); }

    const FbVarScreenInfo &var() const { return var_; }
    const std::vector<std::uint8_t> &pixels() const { return pixels_; }
    std::uint32_t panCount() const { return panCount_; }

  private:
    void reshape();

    FbVarScreenInfo var_;
    std::vector<std::uint8_t> pixels_;
    std::uint32_t panCount_ = 0;
};

} // namespace genesys::osk

#endif // GENESYS_OSK_DEVICES_HH
