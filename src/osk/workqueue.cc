/**
 * @file
 * CpuCluster and WorkQueue implementation.
 */

#include "workqueue.hh"

#include <algorithm>

#include "support/gmc_probe.hh"

namespace genesys::osk
{

void
CpuCluster::recordAcquire()
{
    ++busyNow_;
    steps_.emplace_back(sim_.now(), busyNow_);
}

void
CpuCluster::recordRelease()
{
    --busyNow_;
    steps_.emplace_back(sim_.now(), busyNow_);
}

sim::Task<>
CpuCluster::run(sim::Task<> work)
{
    co_await gate_.acquire();
    recordAcquire();
    try {
        co_await std::move(work);
    } catch (...) {
        recordRelease();
        gate_.release();
        throw;
    }
    recordRelease();
    gate_.release();
}

sim::Task<>
CpuCluster::compute(Tick duration)
{
    co_await gate_.acquire();
    recordAcquire();
    co_await sim_.delay(duration);
    recordRelease();
    gate_.release();
}

sim::Task<>
CpuCluster::acquireCore()
{
    co_await gate_.acquire();
    recordAcquire();
}

void
CpuCluster::releaseCore()
{
    recordRelease();
    gate_.release();
}

double
CpuCluster::utilization(Tick from, Tick to) const
{
    if (to <= from || cores_ == 0)
        return 0.0;
    // Integrate the step function of busy cores over [from, to].
    double busy_integral = 0.0;
    std::uint32_t level = 0;
    Tick prev = from;
    for (const auto &[when, count] : steps_) {
        if (when <= from) {
            level = count;
            continue;
        }
        const Tick seg_end = std::min(when, to);
        if (seg_end > prev) {
            busy_integral +=
                static_cast<double>(seg_end - prev) * level;
            prev = seg_end;
        }
        if (when >= to)
            break;
        level = count;
    }
    if (prev < to)
        busy_integral += static_cast<double>(to - prev) * level;
    return busy_integral /
           (static_cast<double>(to - from) * static_cast<double>(cores_));
}

WorkQueue::WorkQueue(sim::Sim &sim, CpuCluster &cpus,
                     const OskParams &params, std::uint32_t max_workers)
    : sim_(sim), cpus_(cpus), params_(params),
      queues_(max_workers == 0 ? 1 : max_workers),
      loopLive_(queues_.size(), true),
      activeWorkers_(static_cast<std::uint32_t>(queues_.size())),
      wait_(std::make_unique<sim::WaitQueue>(sim.events())),
      executedBy_(queues_.size(), 0)
{
    for (std::uint32_t i = 0; i < workerCap(); ++i)
        sim_.spawn(workerLoop(i));
}

void
WorkQueue::enqueue(TaskFactory factory)
{
    enqueueOn(0, std::move(factory));
}

void
WorkQueue::enqueueOn(std::uint32_t worker, TaskFactory factory)
{
    std::uint32_t target = worker % activeWorkers_;
    if (queues_[target].size() >= queueBound_) {
        // Preferred queue is full: spill to the least-loaded active
        // queue (first minimum wins, keeping the choice deterministic).
        std::uint32_t best = target;
        for (std::uint32_t w = 0; w < activeWorkers_; ++w) {
            if (queues_[w].size() < queues_[best].size())
                best = w;
        }
        if (best != target) {
            target = best;
            ++spills_;
        }
    }
    // gmc footprint: the enqueuing event writes this worker's queue.
    gmc::Probe::instance().touch(gmc::ProbeKind::Worker, target);
    queues_[target].push_back(std::move(factory));
    ++totalQueued_;
    // workerDispatch models the latency until an idle worker notices
    // the queued task.
    wait_->notifyOne(params_.workerDispatch);
}

void
WorkQueue::setMaxWorkers(std::uint32_t n)
{
    n = std::max<std::uint32_t>(1, std::min(n, workerCap()));
    const std::uint32_t prev = activeWorkers_;
    activeWorkers_ = n;
    // Respawn loops for workers re-entering the active set. Retired
    // loops exit on their own at the next wakeup (workerLoop checks).
    for (std::uint32_t i = prev; i < n; ++i) {
        if (!loopLive_[i]) {
            loopLive_[i] = true;
            sim_.spawn(workerLoop(i));
        }
    }
}

void
WorkQueue::setQueueBound(std::uint32_t n)
{
    queueBound_ = std::max<std::uint32_t>(1, n);
}

sim::Task<>
WorkQueue::workerLoop(std::uint32_t worker)
{
    for (;;) {
        while (totalQueued_ == 0) {
            co_await wait_->wait();
            if (worker >= activeWorkers_) {
                // Retired by setMaxWorkers: hand the wakeup to a live
                // worker (each retiree forwards at most once before
                // exiting, so the chain terminates) and exit; a later
                // setMaxWorkers() respawns this loop.
                loopLive_[worker] = false;
                if (totalQueued_ > 0)
                    wait_->notifyOne(0);
                co_return;
            }
        }
        if (worker >= activeWorkers_) {
            loopLive_[worker] = false;
            wait_->notifyOne(0);
            co_return;
        }
        // Own queue first; otherwise steal from the lowest-indexed
        // backlogged queue. With every producer targeting worker 0
        // (plain enqueue()) this is exactly the classic shared deque.
        std::uint32_t from = worker;
        if (queues_[from].empty()) {
            for (std::uint32_t w = 0; w < workerCap(); ++w) {
                if (!queues_[w].empty()) {
                    from = w;
                    break;
                }
            }
            ++steals_;
        }
        // gmc footprint: the pickup event consumes from this queue.
        gmc::Probe::instance().touch(gmc::ProbeKind::Worker, from);
        TaskFactory factory = std::move(queues_[from].front());
        queues_[from].pop_front();
        --totalQueued_;
        // Like Linux's concurrency-managed workqueue, a worker that
        // blocks (e.g. in recvfrom) parks without pinning a CPU core;
        // tasks charge their *active* CPU time through the cluster
        // themselves.
        co_await factory(worker);
        ++executed_;
        ++executedBy_[worker];
    }
}

} // namespace genesys::osk
