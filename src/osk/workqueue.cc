/**
 * @file
 * CpuCluster and WorkQueue implementation.
 */

#include "workqueue.hh"

namespace genesys::osk
{

void
CpuCluster::recordAcquire()
{
    ++busyNow_;
    steps_.emplace_back(sim_.now(), busyNow_);
}

void
CpuCluster::recordRelease()
{
    --busyNow_;
    steps_.emplace_back(sim_.now(), busyNow_);
}

sim::Task<>
CpuCluster::run(sim::Task<> work)
{
    co_await gate_.acquire();
    recordAcquire();
    try {
        co_await std::move(work);
    } catch (...) {
        recordRelease();
        gate_.release();
        throw;
    }
    recordRelease();
    gate_.release();
}

sim::Task<>
CpuCluster::compute(Tick duration)
{
    co_await gate_.acquire();
    recordAcquire();
    co_await sim_.delay(duration);
    recordRelease();
    gate_.release();
}

sim::Task<>
CpuCluster::acquireCore()
{
    co_await gate_.acquire();
    recordAcquire();
}

void
CpuCluster::releaseCore()
{
    recordRelease();
    gate_.release();
}

double
CpuCluster::utilization(Tick from, Tick to) const
{
    if (to <= from || cores_ == 0)
        return 0.0;
    // Integrate the step function of busy cores over [from, to].
    double busy_integral = 0.0;
    std::uint32_t level = 0;
    Tick prev = from;
    for (const auto &[when, count] : steps_) {
        if (when <= from) {
            level = count;
            continue;
        }
        const Tick seg_end = std::min(when, to);
        if (seg_end > prev) {
            busy_integral +=
                static_cast<double>(seg_end - prev) * level;
            prev = seg_end;
        }
        if (when >= to)
            break;
        level = count;
    }
    if (prev < to)
        busy_integral += static_cast<double>(to - prev) * level;
    return busy_integral /
           (static_cast<double>(to - from) * static_cast<double>(cores_));
}

WorkQueue::WorkQueue(sim::Sim &sim, CpuCluster &cpus,
                     const OskParams &params, std::uint32_t max_workers)
    : sim_(sim), cpus_(cpus), params_(params),
      wait_(std::make_unique<sim::WaitQueue>(sim.events()))
{
    for (std::uint32_t i = 0; i < max_workers; ++i)
        sim_.spawn(workerLoop(i));
}

void
WorkQueue::enqueue(TaskFactory factory)
{
    queue_.push_back(std::move(factory));
    // workerDispatch models the latency until an idle worker notices
    // the queued task.
    wait_->notifyOne(params_.workerDispatch);
}

sim::Task<>
WorkQueue::workerLoop(std::uint32_t worker)
{
    for (;;) {
        while (queue_.empty())
            co_await wait_->wait();
        TaskFactory factory = std::move(queue_.front());
        queue_.pop_front();
        // Like Linux's concurrency-managed workqueue, a worker that
        // blocks (e.g. in recvfrom) parks without pinning a CPU core;
        // tasks charge their *active* CPU time through the cluster
        // themselves.
        co_await factory(worker);
        ++executed_;
    }
}

} // namespace genesys::osk
