/**
 * @file
 * Seeded, deterministic fault injection for the syscall pipeline.
 *
 * The paper's "generic" claim (Section IV) means GENESYS forwards
 * real POSIX system calls — and real POSIX calls fail: short reads
 * and writes, transient EINTR/EAGAIN, hard errno returns, and storage
 * latency spikes. Section IX additionally worries about in-flight
 * syscalls at teardown. The FaultInjector makes all of those failure
 * modes reproducible: every decision is a pure function of
 * (seed, syscall number, per-syscall invocation index), so a fixed
 * seed gives a bit-identical fault schedule on every run, independent
 * of wall-clock effects.
 *
 * Two sources feed the decision:
 *  - a scripted plan: "on the Nth invocation of sysno S, inject D" —
 *    exact, consumed once; what the regression tests use;
 *  - probabilistic rates in parts-per-million per dispatch, hashed
 *    from the seed; what the resilience sweeps use.
 *
 * Injection happens at SyscallTable dispatch (before the handler runs,
 * so a suppressed call has no side effects) and, for latency spikes,
 * inside BlockDevice request service. Knobs are exposed through the
 * same sysfs surface the paper uses for coalescing parameters
 * (files under /sys/genesys/fault/).
 */

#ifndef GENESYS_OSK_FAULT_HH
#define GENESYS_OSK_FAULT_HH

#include <cerrno>
#include <cstdint>
#include <map>
#include <utility>

#include "support/types.hh"

namespace genesys::osk
{

class Vfs;

enum class FaultKind : std::uint8_t
{
    None,
    Errno,         ///< hard failure: return a configured -errno
    Eintr,         ///< transient: interrupted before doing any work
    Eagain,        ///< transient: resource temporarily unavailable
    ShortTransfer, ///< truncate a read/write count (partial transfer)
    DeviceDelay,   ///< block-device latency spike (no error return)
};

const char *faultKindName(FaultKind kind);

/** One injected fault, fully specified. */
struct FaultDecision
{
    FaultKind kind = FaultKind::None;
    /// Positive errno for FaultKind::Errno.
    int err = 0;
    /// Surviving fraction of the transfer count, in permille (1..999),
    /// for FaultKind::ShortTransfer.
    std::uint32_t keepPermille = 500;
    /// Added service latency for FaultKind::DeviceDelay.
    Tick extraLatency = 0;
};

/** Probabilistic fault plan; all rates are per-dispatch, in ppm. */
struct FaultConfig
{
    std::uint64_t seed = 1;
    std::uint32_t eintrPpm = 0;
    std::uint32_t eagainPpm = 0;
    /// Applies only to read/write/pread64/pwrite64 with count above
    /// atomicTransferBytes.
    std::uint32_t shortPpm = 0;
    /// POSIX PIPE_BUF-style atomicity: random ShortTransfer faults
    /// never split transfers of at most this many bytes, so small
    /// writes (e.g. one output line) stay atomic and concurrent
    /// writers cannot tear each other's records. Scripted planFault()
    /// entries ignore this and split anything with count > 1.
    std::uint32_t atomicTransferBytes = 512;
    std::uint32_t errnoPpm = 0;
    /// Which errno the probabilistic Errno class returns.
    int errnoValue = EIO;
    /// Per block-device request spike rate and magnitude.
    std::uint32_t deviceDelayPpm = 0;
    Tick deviceDelay = ticks::us(400);
};

class FaultInjector
{
  public:
    FaultInjector() = default;

    void configure(const FaultConfig &config) { config_ = config; }
    const FaultConfig &config() const { return config_; }
    FaultConfig &config() { return config_; }

    /** True if any fault source could fire. */
    bool
    armed() const
    {
        return !plan_.empty() || config_.eintrPpm != 0 ||
               config_.eagainPpm != 0 || config_.shortPpm != 0 ||
               config_.errnoPpm != 0 || config_.deviceDelayPpm != 0;
    }

    /**
     * Script one exact fault: the @p nth dispatch (1-based) of
     * @p sysno receives @p decision. Consumed when it fires.
     */
    void
    planFault(int sysno, std::uint64_t nth, FaultDecision decision)
    {
        plan_[{sysno, nth}] = decision;
    }

    std::size_t plannedRemaining() const { return plan_.size(); }

    /**
     * Per-dispatch decision point; advances the invocation counter of
     * @p sysno. @p transfer_bytes is the transfer count for
     * read/write-family calls and 0 otherwise; it gates the
     * ShortTransfer class (scripted faults split anything > 1 byte,
     * random rolls only transfers above atomicTransferBytes — the
     * PIPE_BUF atomicity rule).
     */
    FaultDecision decide(int sysno, std::uint64_t transfer_bytes);

    /** Per-block-device-request latency spike (0 = none). */
    Tick deviceDelay();

    /** Dispatches seen for @p sysno so far (plan indices are 1-based). */
    std::uint64_t
    invocations(int sysno) const
    {
        auto it = invocations_.find(sysno);
        return it == invocations_.end() ? 0 : it->second;
    }

    // --- stats ------------------------------------------------------
    std::uint64_t injected() const { return injected_; }
    std::uint64_t
    injectedOf(FaultKind kind) const
    {
        return injectedByKind_[static_cast<std::size_t>(kind)];
    }

    /** Forget all counters and pending scripted faults (not config). */
    void reset();

    /** Expose the knobs under /sys/genesys/fault/ (paper Section VI). */
    void installSysfs(Vfs &vfs);

  private:
    /** Deterministic per-event draw in [0, 1'000'000). */
    std::uint64_t draw(std::uint64_t stream, std::uint64_t index) const;

    void
    count(FaultKind kind)
    {
        ++injected_;
        ++injectedByKind_[static_cast<std::size_t>(kind)];
    }

    FaultConfig config_;
    std::map<std::pair<int, std::uint64_t>, FaultDecision> plan_;
    std::map<int, std::uint64_t> invocations_;
    std::uint64_t deviceRequests_ = 0;
    std::uint64_t injected_ = 0;
    std::uint64_t injectedByKind_[6] = {};
};

} // namespace genesys::osk

#endif // GENESYS_OSK_FAULT_HH
