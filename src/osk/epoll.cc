/**
 * @file
 * epoll-style readiness layer implementation (gnet).
 */

#include "epoll.hh"

#include <cerrno>

#include "support/gsan.hh"
#include "support/logging.hh"

namespace genesys::osk
{

EpollInstance::EpollInstance(EpollSystem &sys, int id)
    : sys_(sys), id_(id),
      wait_q_(std::make_shared<sim::WaitQueue>(sys.events()))
{}

int
EpollInstance::ctl(int op, int fd, SockKind kind, int sock_id,
                   std::uint32_t mask, std::uint64_t data)
{
    switch (op) {
      case EPOLL_CTL_ADD_: {
        if (interests_.contains(fd))
            return -EEXIST;
        Interest in{kind, sock_id, mask, data};
        bool wake = false;
        if (in.edgeMode()) {
            // Registration probes once: an already-ready condition is
            // the initial edge, so a consumer that registers after
            // data arrived still sees it.
            in.lastReady = sys_.probe(kind, sock_id) & in.condMask();
            if (in.lastReady != 0)
                wake = recordEdge(in, in.lastReady);
        }
        interests_[fd] = in;
        if (wake)
            wait_q_->notifyAll();
        return 0;
      }
      case EPOLL_CTL_MOD_: {
        auto it = interests_.find(fd);
        if (it == interests_.end())
            return -ENOENT;
        Interest &in = it->second;
        in.mask = mask;
        in.data = data;
        in.armed = true;
        in.pending = 0;
        in.lastReady = 0;
        if (in.edgeMode()) {
            // Re-arm replays the current level as a fresh edge: a
            // ONESHOT consumer that drained and re-armed must not
            // miss bytes that arrived while it was disarmed.
            in.lastReady = sys_.probe(in.kind, in.sockId) &
                           in.condMask();
            if (in.lastReady != 0 && recordEdge(in, in.lastReady))
                wait_q_->notifyAll();
        }
        return 0;
      }
      case EPOLL_CTL_DEL_: {
        return interests_.erase(fd) > 0 ? 0 : -ENOENT;
      }
      default:
        return -EINVAL;
    }
}

int
EpollInstance::collectReady(EpollEvent *events, int max_events)
{
    int n = 0;
    for (auto &[fd, interest] : interests_) {
        std::uint32_t ready;
        if (interest.edgeMode()) {
            if (!interest.armed)
                continue;
            // Replay recorded edges; no live re-probe in edge mode.
            ready = interest.pending;
        } else {
            // EPOLLERR/EPOLLHUP are always reported, as in Linux.
            ready = sys_.probe(interest.kind, interest.sockId) &
                    interest.condMask();
        }
        if (ready == 0)
            continue;
        if (events != nullptr && n < max_events) {
            events[n].events = ready;
            events[n].data = interest.data;
            if (interest.edgeMode()) {
                // Delivered exactly once; silent until the level
                // drops and rises again (or EPOLL_CTL_MOD re-arms).
                interest.pending = 0;
                ++sys_.edgesDelivered_;
                if (sys_.gsan_ != nullptr)
                    sys_.gsan_->epollEdgeDeliver(gsanKey());
                if ((interest.mask & EPOLLONESHOT_) != 0)
                    interest.armed = false;
            }
        }
        if (++n >= max_events)
            break;
    }
    return n;
}

bool
EpollInstance::recordEdge(Interest &in, std::uint32_t edges)
{
    if (sys_.gsan_ != nullptr)
        sys_.gsan_->epollEdgeSeen(gsanKey());
    if (sys_.test_lost_edge_ && !sys_.lost_edge_fired_) {
        // Seeded bug (gmc mutant): the transition is observed but
        // never latched — the probe state has already advanced, so no
        // later noteEvent re-derives it and the consumer sleeps
        // forever. gsan's edge channel sees the probe without the
        // matching record.
        sys_.lost_edge_fired_ = true;
        return false;
    }
    in.pending |= edges;
    ++sys_.edgesRecorded_;
    if (sys_.gsan_ != nullptr)
        sys_.gsan_->epollEdgeRecord(gsanKey());
    return in.armed;
}

bool
EpollInstance::noteEdges(SockKind kind, int sock_id)
{
    bool wake = false;
    for (auto &[fd, in] : interests_) {
        if (in.kind != kind || in.sockId != sock_id || !in.edgeMode())
            continue;
        const std::uint32_t now =
            sys_.probe(kind, sock_id) & in.condMask();
        const std::uint32_t edges = now & ~in.lastReady;
        in.lastReady = now;
        if (edges == 0)
            continue;
        if (recordEdge(in, edges))
            wake = true;
    }
    return wake;
}

bool
EpollInstance::hasLtInterest(SockKind kind, int sock_id) const
{
    for (const auto &[fd, in] : interests_) {
        if (in.kind == kind && in.sockId == sock_id && !in.edgeMode())
            return true;
    }
    return false;
}

sim::Task<std::int64_t>
EpollInstance::wait(EpollEvent *events, int max_events,
                    std::int64_t timeout_ns, std::uint64_t waiter)
{
    if (max_events <= 0)
        co_return -EINVAL;
    ++sys_.waits_;
    const bool infinite = timeout_ns < 0;
    const Tick deadline =
        infinite ? 0
                 : sys_.events().now() + static_cast<Tick>(timeout_ns);
    // The queue outlives the instance: a timer or a racing close may
    // fire after this epfd is gone.
    auto wq = wait_q_;
    bool timer_armed = false;
    for (;;) {
        if (closed_)
            co_return -EBADF;
        const int n = collectReady(events, max_events);
        if (n > 0)
            co_return n;
        if (!infinite && sys_.events().now() >= deadline) {
            ++sys_.timeouts_;
            co_return 0;
        }
        // The probe above found nothing; between here and the wait()
        // below is the lost-wakeup window gsan brackets.
        if (sys_.gsan_ != nullptr)
            sys_.gsan_->epollCheck(gsanKey(), waiter);
        if (test_sleep_gap_ > 0) {
            // Seeded bug: suspend inside the window without re-probing,
            // so a notification landing in the gap is really lost.
            co_await sim::Delay(sys_.events(), test_sleep_gap_);
        }
        if (sys_.gsan_ != nullptr)
            sys_.gsan_->epollSleep(gsanKey(), waiter);
        if (!infinite && !timer_armed) {
            timer_armed = true;
            const Tick now = sys_.events().now();
            sys_.events().scheduleIn(
                deadline > now ? deadline - now : 0,
                [wq] { wq->notifyAll(); });
        }
        ++blocked_[waiter];
        co_await wq->wait();
        auto it = blocked_.find(waiter);
        if (it != blocked_.end() && --it->second == 0)
            blocked_.erase(it);
        if (sys_.gsan_ != nullptr)
            sys_.gsan_->epollWake(gsanKey(), waiter);
    }
}

void
EpollInstance::forgetFd(int fd)
{
    interests_.erase(fd);
}

void
EpollInstance::forgetSocket(SockKind kind, int sock_id)
{
    bool removed = false;
    for (auto it = interests_.begin(); it != interests_.end();) {
        if (it->second.kind == kind && it->second.sockId == sock_id) {
            it = interests_.erase(it);
            removed = true;
        } else {
            ++it;
        }
    }
    if (removed)
        wait_q_->notifyAll(); // waiters re-probe the smaller set
}

bool
EpollInstance::watches(SockKind kind, int sock_id) const
{
    for (const auto &[fd, interest] : interests_) {
        if (interest.kind == kind && interest.sockId == sock_id)
            return true;
    }
    return false;
}

EpollSystem::EpollSystem(sim::EventQueue &eq, const OskParams &params,
                         UdpStack &udp, TcpStack &tcp)
    : eq_(eq), params_(params), udp_(udp), tcp_(tcp)
{
    // Readiness changes in the stacks fan out to blocked waiters.
    udp_.setReadyCallback(
        [this](int id) { noteEvent(SockKind::Udp, id); });
    tcp_.setReadyCallback(
        [this](int id) { noteEvent(SockKind::Tcp, id); });
}

int
EpollSystem::create()
{
    const int id = next_id_++;
    instances_.emplace(id, std::make_unique<EpollInstance>(*this, id));
    return id;
}

EpollInstance *
EpollSystem::instance(int id) const
{
    auto it = instances_.find(id);
    return it == instances_.end() ? nullptr : it->second.get();
}

bool
EpollSystem::close(int id)
{
    auto it = instances_.find(id);
    if (it == instances_.end())
        return false;
    it->second->closed_ = true;
    it->second->wait_q_->notifyAll(); // blocked waiters return -EBADF
    graveyard_.push_back(std::move(it->second));
    instances_.erase(it);
    return true;
}

void
EpollSystem::noteEvent(SockKind kind, int sock_id)
{
    ++notifies_;
    for (const auto &[id, inst] : instances_) {
        if (!inst->watches(kind, sock_id))
            continue;
        if (gsan_ != nullptr)
            gsan_->epollNotify(inst->gsanKey());
        // Edges are latched whether or not anyone is waiting — that
        // is the point of edge mode: the transition is recorded now
        // and replayed to whichever waiter arrives next.
        const bool fresh_edge = inst->noteEdges(kind, sock_id);
        if (inst->wait_q_->waiting() == 0)
            continue;
        // LT waiters re-probe on every change; ET-only waiters need
        // a wake only when a fresh edge was latched.
        if (!fresh_edge && !inst->hasLtInterest(kind, sock_id))
            continue;
        ++wakeups_;
        if (wake_observer_) {
            for (const auto &[cookie, count] : inst->blocked_) {
                for (std::uint32_t i = 0; i < count; ++i)
                    wake_observer_(cookie);
            }
        }
        inst->wait_q_->notifyAll();
    }
}

void
EpollSystem::forgetSocket(SockKind kind, int sock_id)
{
    for (const auto &[id, inst] : instances_)
        inst->forgetSocket(kind, sock_id);
}

std::uint32_t
EpollSystem::probe(SockKind kind, int sock_id) const
{
    std::uint32_t ready = 0;
    if (kind == SockKind::Udp) {
        const UdpSocket *sock = udp_.socket(sock_id);
        if (sock == nullptr)
            return EPOLLERR_ | EPOLLHUP_;
        if (sock->queued() > 0)
            ready |= EPOLLIN_;
        ready |= EPOLLOUT_; // UDP sends never block
    } else {
        const TcpSocket *sock = tcp_.socket(sock_id);
        if (sock == nullptr)
            return EPOLLERR_ | EPOLLHUP_;
        if (sock->rxQueued() > 0 || sock->acceptQueued() > 0 ||
            sock->eofPending())
            ready |= EPOLLIN_;
        if (sock->writeReady())
            ready |= EPOLLOUT_;
        if (sock->errorPending())
            ready |= EPOLLERR_;
        if (sock->eofPending() && sock->state() == TcpState::Closed)
            ready |= EPOLLHUP_;
    }
    return ready;
}

} // namespace genesys::osk
