/**
 * @file
 * epoll-style readiness layer implementation (gnet).
 */

#include "epoll.hh"

#include <cerrno>

#include "support/gsan.hh"
#include "support/logging.hh"

namespace genesys::osk
{

EpollInstance::EpollInstance(EpollSystem &sys, int id)
    : sys_(sys), id_(id),
      wait_q_(std::make_shared<sim::WaitQueue>(sys.events()))
{}

int
EpollInstance::ctl(int op, int fd, SockKind kind, int sock_id,
                   std::uint32_t mask, std::uint64_t data)
{
    switch (op) {
      case EPOLL_CTL_ADD_: {
        if (interests_.contains(fd))
            return -EEXIST;
        interests_[fd] = Interest{kind, sock_id, mask, data};
        return 0;
      }
      case EPOLL_CTL_MOD_: {
        auto it = interests_.find(fd);
        if (it == interests_.end())
            return -ENOENT;
        it->second.mask = mask;
        it->second.data = data;
        return 0;
      }
      case EPOLL_CTL_DEL_: {
        return interests_.erase(fd) > 0 ? 0 : -ENOENT;
      }
      default:
        return -EINVAL;
    }
}

int
EpollInstance::collectReady(EpollEvent *events, int max_events) const
{
    int n = 0;
    for (const auto &[fd, interest] : interests_) {
        // EPOLLERR/EPOLLHUP are always reported, as in Linux.
        const std::uint32_t ready =
            sys_.probe(interest.kind, interest.sockId) &
            (interest.mask | EPOLLERR_ | EPOLLHUP_);
        if (ready == 0)
            continue;
        if (events != nullptr && n < max_events) {
            events[n].events = ready;
            events[n].data = interest.data;
        }
        if (++n >= max_events)
            break;
    }
    return n;
}

sim::Task<std::int64_t>
EpollInstance::wait(EpollEvent *events, int max_events,
                    std::int64_t timeout_ns, std::uint64_t waiter)
{
    if (max_events <= 0)
        co_return -EINVAL;
    ++sys_.waits_;
    const bool infinite = timeout_ns < 0;
    const Tick deadline =
        infinite ? 0
                 : sys_.events().now() + static_cast<Tick>(timeout_ns);
    // The queue outlives the instance: a timer or a racing close may
    // fire after this epfd is gone.
    auto wq = wait_q_;
    bool timer_armed = false;
    for (;;) {
        if (closed_)
            co_return -EBADF;
        const int n = collectReady(events, max_events);
        if (n > 0)
            co_return n;
        if (!infinite && sys_.events().now() >= deadline) {
            ++sys_.timeouts_;
            co_return 0;
        }
        // The probe above found nothing; between here and the wait()
        // below is the lost-wakeup window gsan brackets.
        if (sys_.gsan_ != nullptr)
            sys_.gsan_->epollCheck(gsanKey(), waiter);
        if (test_sleep_gap_ > 0) {
            // Seeded bug: suspend inside the window without re-probing,
            // so a notification landing in the gap is really lost.
            co_await sim::Delay(sys_.events(), test_sleep_gap_);
        }
        if (sys_.gsan_ != nullptr)
            sys_.gsan_->epollSleep(gsanKey(), waiter);
        if (!infinite && !timer_armed) {
            timer_armed = true;
            const Tick now = sys_.events().now();
            sys_.events().scheduleIn(
                deadline > now ? deadline - now : 0,
                [wq] { wq->notifyAll(); });
        }
        ++blocked_[waiter];
        co_await wq->wait();
        auto it = blocked_.find(waiter);
        if (it != blocked_.end() && --it->second == 0)
            blocked_.erase(it);
        if (sys_.gsan_ != nullptr)
            sys_.gsan_->epollWake(gsanKey(), waiter);
    }
}

void
EpollInstance::forgetFd(int fd)
{
    interests_.erase(fd);
}

void
EpollInstance::forgetSocket(SockKind kind, int sock_id)
{
    bool removed = false;
    for (auto it = interests_.begin(); it != interests_.end();) {
        if (it->second.kind == kind && it->second.sockId == sock_id) {
            it = interests_.erase(it);
            removed = true;
        } else {
            ++it;
        }
    }
    if (removed)
        wait_q_->notifyAll(); // waiters re-probe the smaller set
}

bool
EpollInstance::watches(SockKind kind, int sock_id) const
{
    for (const auto &[fd, interest] : interests_) {
        if (interest.kind == kind && interest.sockId == sock_id)
            return true;
    }
    return false;
}

EpollSystem::EpollSystem(sim::EventQueue &eq, const OskParams &params,
                         UdpStack &udp, TcpStack &tcp)
    : eq_(eq), params_(params), udp_(udp), tcp_(tcp)
{
    // Readiness changes in the stacks fan out to blocked waiters.
    udp_.setReadyCallback(
        [this](int id) { noteEvent(SockKind::Udp, id); });
    tcp_.setReadyCallback(
        [this](int id) { noteEvent(SockKind::Tcp, id); });
}

int
EpollSystem::create()
{
    const int id = next_id_++;
    instances_.emplace(id, std::make_unique<EpollInstance>(*this, id));
    return id;
}

EpollInstance *
EpollSystem::instance(int id) const
{
    auto it = instances_.find(id);
    return it == instances_.end() ? nullptr : it->second.get();
}

bool
EpollSystem::close(int id)
{
    auto it = instances_.find(id);
    if (it == instances_.end())
        return false;
    it->second->closed_ = true;
    it->second->wait_q_->notifyAll(); // blocked waiters return -EBADF
    graveyard_.push_back(std::move(it->second));
    instances_.erase(it);
    return true;
}

void
EpollSystem::noteEvent(SockKind kind, int sock_id)
{
    ++notifies_;
    for (const auto &[id, inst] : instances_) {
        if (!inst->watches(kind, sock_id))
            continue;
        if (gsan_ != nullptr)
            gsan_->epollNotify(inst->gsanKey());
        if (inst->wait_q_->waiting() == 0)
            continue;
        ++wakeups_;
        if (wake_observer_) {
            for (const auto &[cookie, count] : inst->blocked_) {
                for (std::uint32_t i = 0; i < count; ++i)
                    wake_observer_(cookie);
            }
        }
        inst->wait_q_->notifyAll();
    }
}

void
EpollSystem::forgetSocket(SockKind kind, int sock_id)
{
    for (const auto &[id, inst] : instances_)
        inst->forgetSocket(kind, sock_id);
}

std::uint32_t
EpollSystem::probe(SockKind kind, int sock_id) const
{
    std::uint32_t ready = 0;
    if (kind == SockKind::Udp) {
        const UdpSocket *sock = udp_.socket(sock_id);
        if (sock == nullptr)
            return EPOLLERR_ | EPOLLHUP_;
        if (sock->queued() > 0)
            ready |= EPOLLIN_;
        ready |= EPOLLOUT_; // UDP sends never block
    } else {
        const TcpSocket *sock = tcp_.socket(sock_id);
        if (sock == nullptr)
            return EPOLLERR_ | EPOLLHUP_;
        if (sock->rxQueued() > 0 || sock->acceptQueued() > 0 ||
            sock->eofPending())
            ready |= EPOLLIN_;
        if (sock->writeReady())
            ready |= EPOLLOUT_;
        if (sock->errorPending())
            ready |= EPOLLERR_;
        if (sock->eofPending() && sock->state() == TcpState::Closed)
            ready |= EPOLLHUP_;
    }
    return ready;
}

} // namespace genesys::osk
