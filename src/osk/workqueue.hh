/**
 * @file
 * CPU core pool and kernel work-queue.
 *
 * GENESYS services GPU system calls in OS worker threads scheduled on
 * the host CPU (Section VI): the interrupt handler enqueues a kernel
 * task; "at an expedient future point in time an OS worker thread
 * executes this task". CpuCluster models the four FX-9800P cores as a
 * pool that any simulated computation must occupy while it runs;
 * WorkQueue models Linux's system workqueue with dispatch latency and
 * a bounded worker count.
 *
 * Busy-core accounting feeds the CPU-utilization traces of Figure 14.
 */

#ifndef GENESYS_OSK_WORKQUEUE_HH
#define GENESYS_OSK_WORKQUEUE_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "osk/params.hh"
#include "sim/sim.hh"
#include "sim/sync.hh"
#include "sim/task.hh"
#include "support/types.hh"

namespace genesys::osk
{

class CpuCluster
{
  public:
    CpuCluster(sim::Sim &sim, std::uint32_t cores)
        : sim_(sim), cores_(cores), gate_(sim.events(), cores)
    {}

    /** Occupy one core for the duration of @p work. */
    sim::Task<> run(sim::Task<> work);

    /** Occupy one core for a fixed compute time. */
    sim::Task<> compute(Tick duration);

    /**
     * Manual occupancy for run-to-completion service tasks that must
     * release the core around truly-blocking sections (e.g. recvfrom
     * with an empty queue). Pair every acquireCore with releaseCore.
     */
    sim::Task<> acquireCore();
    void releaseCore();

    std::uint32_t cores() const { return cores_; }
    std::uint32_t busyNow() const { return busyNow_; }

    /**
     * Average fraction of cores busy over [from, to], integrating the
     * recorded busy-count step function. In [0, 1].
     */
    double utilization(Tick from, Tick to) const;

  private:
    void recordAcquire();
    void recordRelease();

    sim::Sim &sim_;
    std::uint32_t cores_;
    sim::Semaphore gate_;
    std::uint32_t busyNow_ = 0;
    /// (tick, busy count after the change); monotone in tick.
    std::vector<std::pair<Tick, std::uint32_t>> steps_;
};

/**
 * Deferred-work queue: enqueue() hands a task factory to one of
 * @p maxWorkers worker loops; each execution occupies a CPU core.
 */
class WorkQueue
{
  public:
    /**
     * A queued task, instantiated by the worker loop that picks it up.
     * The factory receives the worker's index in [0, maxWorkers) — the
     * identity of the OS worker thread executing the task, which e.g.
     * the gsan happens-before checker uses to attribute CPU-side slot
     * accesses.
     */
    using TaskFactory = std::function<sim::Task<>(std::uint32_t worker)>;

    WorkQueue(sim::Sim &sim, CpuCluster &cpus, const OskParams &params,
              std::uint32_t max_workers);

    /** Queue work; returns after the enqueue cost (bookkeeping only). */
    void enqueue(TaskFactory factory);

    std::uint64_t executedTasks() const { return executed_; }
    std::size_t queuedNow() const { return queue_.size(); }

  private:
    sim::Task<> workerLoop(std::uint32_t worker);

    sim::Sim &sim_;
    CpuCluster &cpus_;
    const OskParams &params_;
    std::deque<TaskFactory> queue_;
    std::unique_ptr<sim::WaitQueue> wait_;
    std::uint64_t executed_ = 0;
};

} // namespace genesys::osk

#endif // GENESYS_OSK_WORKQUEUE_HH
