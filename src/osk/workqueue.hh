/**
 * @file
 * CPU core pool and kernel work-queue.
 *
 * GENESYS services GPU system calls in OS worker threads scheduled on
 * the host CPU (Section VI): the interrupt handler enqueues a kernel
 * task; "at an expedient future point in time an OS worker thread
 * executes this task". CpuCluster models the four FX-9800P cores as a
 * pool that any simulated computation must occupy while it runs;
 * WorkQueue models Linux's system workqueue with dispatch latency and
 * a bounded worker count.
 *
 * Busy-core accounting feeds the CPU-utilization traces of Figure 14.
 */

#ifndef GENESYS_OSK_WORKQUEUE_HH
#define GENESYS_OSK_WORKQUEUE_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "osk/params.hh"
#include "sim/sim.hh"
#include "sim/sync.hh"
#include "sim/task.hh"
#include "support/types.hh"

namespace genesys::osk
{

class CpuCluster
{
  public:
    CpuCluster(sim::Sim &sim, std::uint32_t cores)
        : sim_(sim), cores_(cores), gate_(sim.events(), cores)
    {}

    /** Occupy one core for the duration of @p work. */
    sim::Task<> run(sim::Task<> work);

    /** Occupy one core for a fixed compute time. */
    sim::Task<> compute(Tick duration);

    /**
     * Manual occupancy for run-to-completion service tasks that must
     * release the core around truly-blocking sections (e.g. recvfrom
     * with an empty queue). Pair every acquireCore with releaseCore.
     */
    sim::Task<> acquireCore();
    void releaseCore();

    std::uint32_t cores() const { return cores_; }
    std::uint32_t busyNow() const { return busyNow_; }

    /**
     * Average fraction of cores busy over [from, to], integrating the
     * recorded busy-count step function. In [0, 1].
     */
    double utilization(Tick from, Tick to) const;

  private:
    void recordAcquire();
    void recordRelease();

    sim::Sim &sim_;
    std::uint32_t cores_;
    sim::Semaphore gate_;
    std::uint32_t busyNow_ = 0;
    /// (tick, busy count after the change); monotone in tick.
    std::vector<std::pair<Tick, std::uint32_t>> steps_;
};

/**
 * Deferred-work queue with per-worker dispatch: every worker owns a
 * bounded task queue; enqueueOn() steers work to a preferred worker
 * (callers encode their steering policy — e.g. the GENESYS shard ->
 * worker affinity — by picking the target), and idle workers steal
 * from the lowest-indexed backlogged queue so no queue strands work.
 * The active worker count is a runtime knob (setMaxWorkers), taking
 * effect at the next dispatch; each execution occupies a CPU core.
 */
class WorkQueue
{
  public:
    /**
     * A queued task, instantiated by the worker loop that picks it up.
     * The factory receives the worker's index in [0, maxWorkers) — the
     * identity of the OS worker thread executing the task, which e.g.
     * the gsan happens-before checker uses to attribute CPU-side slot
     * accesses.
     */
    using TaskFactory = std::function<sim::Task<>(std::uint32_t worker)>;

    WorkQueue(sim::Sim &sim, CpuCluster &cpus, const OskParams &params,
              std::uint32_t max_workers);

    /**
     * Queue work on worker 0's queue (the "global" queue; with steal
     * this behaves exactly like the classic single-deque workqueue).
     * Returns after the enqueue cost (bookkeeping only).
     */
    void enqueue(TaskFactory factory);

    /**
     * Queue work preferring @p worker's queue (clamped into the active
     * set). If that queue is at queueBound(), the task spills to the
     * least-loaded active queue instead.
     */
    void enqueueOn(std::uint32_t worker, TaskFactory factory);

    /**
     * Shrink or re-grow the active worker pool at runtime, in
     * [1, workerCap()]. Shrinking retires surplus worker loops at
     * their next wakeup (in-flight tasks finish); growing respawns
     * them. Takes effect on the next dispatch.
     */
    void setMaxWorkers(std::uint32_t n);
    std::uint32_t maxWorkers() const { return activeWorkers_; }
    /** Construction-time bound on the worker pool. */
    std::uint32_t workerCap() const
    {
        return static_cast<std::uint32_t>(queues_.size());
    }

    /** Per-worker queue capacity before enqueueOn() spills. */
    void setQueueBound(std::uint32_t n);
    std::uint32_t queueBound() const { return queueBound_; }

    std::uint64_t executedTasks() const { return executed_; }
    std::uint64_t executedBy(std::uint32_t worker) const
    {
        return executedBy_[worker];
    }
    std::size_t queuedNow() const { return totalQueued_; }
    std::size_t queuedOn(std::uint32_t worker) const
    {
        return queues_[worker].size();
    }
    /** Tasks an idle worker took from another worker's queue. */
    std::uint64_t steals() const { return steals_; }
    /** Tasks redirected off a full preferred queue at enqueue. */
    std::uint64_t spills() const { return spills_; }

  private:
    sim::Task<> workerLoop(std::uint32_t worker);

    sim::Sim &sim_;
    CpuCluster &cpus_;
    const OskParams &params_;
    std::vector<std::deque<TaskFactory>> queues_;
    std::vector<bool> loopLive_;
    std::uint32_t activeWorkers_;
    std::uint32_t queueBound_ = 4096;
    std::size_t totalQueued_ = 0;
    std::unique_ptr<sim::WaitQueue> wait_;
    std::uint64_t executed_ = 0;
    std::vector<std::uint64_t> executedBy_;
    std::uint64_t steals_ = 0;
    std::uint64_t spills_ = 0;
};

} // namespace genesys::osk

#endif // GENESYS_OSK_WORKQUEUE_HH
