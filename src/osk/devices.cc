/**
 * @file
 * Device implementations.
 */

#include "devices.hh"

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace genesys::osk
{

// --------------------------------------------------------- TerminalDevice

std::uint64_t
TerminalDevice::write(std::uint64_t, const void *src, std::uint64_t len)
{
    transcript_.append(static_cast<const char *>(src), len);
    return len;
}

std::uint64_t
TerminalDevice::read(std::uint64_t, void *dst, std::uint64_t len)
{
    if (inputPos_ >= input_.size())
        return 0;
    const std::uint64_t n =
        std::min<std::uint64_t>(len, input_.size() - inputPos_);
    std::memcpy(dst, input_.data() + inputPos_, n);
    inputPos_ += n;
    return n;
}

// ------------------------------------------------------ FramebufferDevice

FramebufferDevice::FramebufferDevice(std::uint32_t xres,
                                     std::uint32_t yres,
                                     std::uint32_t bits_per_pixel)
{
    var_.xres = var_.xresVirtual = xres;
    var_.yres = var_.yresVirtual = yres;
    var_.bitsPerPixel = bits_per_pixel;
    reshape();
}

void
FramebufferDevice::reshape()
{
    const std::uint64_t bytes = std::uint64_t(var_.xresVirtual) *
                                var_.yresVirtual *
                                (var_.bitsPerPixel / 8);
    pixels_.assign(bytes, 0);
}

std::int64_t
FramebufferDevice::ioctl(std::uint64_t request, void *argp)
{
    switch (request) {
      case FBIOGET_VSCREENINFO: {
        if (argp == nullptr)
            return -EFAULT;
        *static_cast<FbVarScreenInfo *>(argp) = var_;
        return 0;
      }
      case FBIOPUT_VSCREENINFO: {
        if (argp == nullptr)
            return -EFAULT;
        const auto &req = *static_cast<const FbVarScreenInfo *>(argp);
        if (req.bitsPerPixel != 16 && req.bitsPerPixel != 32)
            return -EINVAL;
        if (req.xres == 0 || req.yres == 0)
            return -EINVAL;
        var_ = req;
        var_.xresVirtual = std::max(req.xres, req.xresVirtual);
        var_.yresVirtual = std::max(req.yres, req.yresVirtual);
        reshape();
        return 0;
      }
      case FBIOGET_FSCREENINFO: {
        if (argp == nullptr)
            return -EFAULT;
        auto &fix = *static_cast<FbFixScreenInfo *>(argp);
        fix.smemLen = pixels_.size();
        fix.lineLength = var_.xresVirtual * (var_.bitsPerPixel / 8);
        return 0;
      }
      case FBIOPAN_DISPLAY: {
        ++panCount_;
        return 0;
      }
      default:
        return -ENOTTY;
    }
}

std::uint8_t *
FramebufferDevice::mmapMemory(std::uint64_t &length)
{
    length = pixels_.size();
    return pixels_.data();
}

std::uint64_t
FramebufferDevice::write(std::uint64_t offset, const void *src,
                         std::uint64_t len)
{
    if (offset >= pixels_.size())
        return 0;
    const std::uint64_t n =
        std::min<std::uint64_t>(len, pixels_.size() - offset);
    std::memcpy(pixels_.data() + offset, src, n);
    return n;
}

std::uint64_t
FramebufferDevice::read(std::uint64_t offset, void *dst,
                        std::uint64_t len)
{
    if (offset >= pixels_.size())
        return 0;
    const std::uint64_t n =
        std::min<std::uint64_t>(len, pixels_.size() - offset);
    std::memcpy(dst, pixels_.data() + offset, n);
    return n;
}

} // namespace genesys::osk
