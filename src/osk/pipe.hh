/**
 * @file
 * Anonymous pipes.
 *
 * Section IV highlights that POSIX fidelity buys GENESYS "pipes
 * (including redirection of stdin, stdout, and stderr)" for free.
 * This is the kernel object behind pipe(2): a bounded byte queue with
 * blocking reads (empty) and writes (full), EOF on writer close, and
 * EPIPE on reader close.
 */

#ifndef GENESYS_OSK_PIPE_HH
#define GENESYS_OSK_PIPE_HH

#include <cstdint>
#include <deque>
#include <memory>

#include "osk/vfs.hh"
#include "sim/event_queue.hh"
#include "sim/sync.hh"
#include "sim/task.hh"

namespace genesys::osk
{

class PipeInode : public Inode
{
  public:
    PipeInode(sim::EventQueue &eq, std::size_t capacity = 65536)
        : Inode(InodeType::Pipe), capacity_(capacity),
          readWait_(std::make_unique<sim::WaitQueue>(eq)),
          writeWait_(std::make_unique<sim::WaitQueue>(eq))
    {}

    /**
     * Read up to @p len bytes; waits while the pipe is empty and a
     * writer exists. @return bytes read; 0 = EOF (no writers).
     */
    sim::Task<std::int64_t> readBlocking(void *dst, std::uint64_t len);

    /**
     * Write @p len bytes; waits while the pipe is full and a reader
     * exists. @return bytes written or -EPIPE (no readers).
     */
    sim::Task<std::int64_t> writeBlocking(const void *src,
                                          std::uint64_t len);

    void
    addReader()
    {
        ++readers_;
    }
    void
    addWriter()
    {
        ++writers_;
    }
    void closeReader();
    void closeWriter();

    std::size_t buffered() const { return buffer_.size(); }
    std::uint64_t size() const override { return buffer_.size(); }
    int readers() const { return readers_; }
    int writers() const { return writers_; }

  private:
    std::size_t capacity_;
    std::deque<std::uint8_t> buffer_;
    int readers_ = 0;
    int writers_ = 0;
    std::unique_ptr<sim::WaitQueue> readWait_;
    std::unique_ptr<sim::WaitQueue> writeWait_;
};

} // namespace genesys::osk

#endif // GENESYS_OSK_PIPE_HH
