/**
 * @file
 * Processes and the kernel aggregate.
 *
 * Kernel wires together every OS subsystem (VFS, devices, SSD, UDP,
 * CPU cores, system workqueue) and owns the processes. A Process is the
 * CPU-side context a GPU kernel is launched from: its descriptor table,
 * address space, and signal queue are what GENESYS "borrows" when
 * servicing GPU system calls in OS worker threads (Section VI).
 */

#ifndef GENESYS_OSK_PROCESS_HH
#define GENESYS_OSK_PROCESS_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "osk/block_device.hh"
#include "osk/devices.hh"
#include "osk/epoll.hh"
#include "osk/fault.hh"
#include "osk/file.hh"
#include "osk/mm.hh"
#include "osk/net.hh"
#include "osk/tcp.hh"
#include "osk/params.hh"
#include "osk/signals.hh"
#include "osk/syscalls.hh"
#include "osk/vfs.hh"
#include "osk/workqueue.hh"
#include "sim/sim.hh"

namespace genesys::osk
{

class Kernel;

class Process
{
  public:
    Process(Kernel &kernel, int pid, std::uint64_t phys_limit_bytes);

    int pid() const { return pid_; }
    Kernel &kernel() { return kernel_; }
    FdTable &fds() { return fds_; }
    MemoryManager &mm() { return mm_; }
    SignalManager &signals() { return signals_; }

  private:
    Kernel &kernel_;
    int pid_;
    FdTable fds_;
    MemoryManager mm_;
    SignalManager signals_;
};

struct KernelConfig
{
    std::uint32_t cpuCores = 4;
    std::uint32_t workqueueWorkers = 32; ///< cmwq-style elastic pool
    /// Physical memory available to a process before swapping
    /// (Fig 11 caps this below the miniAMR dataset size).
    std::uint64_t physMemBytes = 16ull * 1024 * 1024 * 1024;
    OskParams params;
    BlockDeviceParams ssd;
    std::uint32_t fbWidth = 1024;
    std::uint32_t fbHeight = 768;
    std::uint32_t fbBpp = 32;
};

class Kernel
{
  public:
    Kernel(sim::Sim &sim, const KernelConfig &config);

    sim::Sim &sim() { return sim_; }
    const OskParams &params() const { return config_.params; }
    const KernelConfig &config() const { return config_; }

    Vfs &vfs() { return vfs_; }
    UdpStack &udp() { return udp_; }
    TcpStack &tcp() { return tcp_; }
    EpollSystem &epoll() { return epoll_; }
    CpuCluster &cpus() { return cpus_; }
    WorkQueue &workqueue() { return workqueue_; }
    BlockDevice &ssd() { return ssd_; }
    TerminalDevice &terminal() { return *terminal_; }
    FramebufferDevice &framebuffer() { return *framebuffer_; }
    const SyscallTable &syscalls() const { return syscalls_; }
    FaultInjector &faults() { return faults_; }
    const FaultInjector &faults() const { return faults_; }

    /** Dispatch a system call in the context of @p proc. */
    sim::Task<std::int64_t>
    doSyscall(Process &proc, int num, const SyscallArgs &args)
    {
        return syscalls_.invoke(*this, proc, num, args);
    }

    /**
     * Dispatch with fault injection armed. Only the GPU service path
     * (GenesysHost workers and the polling daemon) uses this variant:
     * the GPU client and host implement POSIX recovery, while CPU-side
     * workload code calling doSyscall() keeps the exact-once semantics
     * it was written against.
     */
    sim::Task<std::int64_t>
    doSyscallFaultable(Process &proc, int num, const SyscallArgs &args)
    {
        return syscalls_.invoke(*this, proc, num, args, &faults_);
    }

    Process &createProcess();
    Process &process(int pid);

    /**
     * Create a file under the SSD mount: reads through it pay block
     * device time in addition to the copy.
     */
    RegularFile *createSsdFile(const std::string &path);

  private:
    void populateDevTree();

    sim::Sim &sim_;
    KernelConfig config_;
    Vfs vfs_;
    UdpStack udp_;
    TcpStack tcp_;
    EpollSystem epoll_;
    CpuCluster cpus_;
    WorkQueue workqueue_;
    BlockDevice ssd_;
    TerminalDevice *terminal_ = nullptr;
    FramebufferDevice *framebuffer_ = nullptr;
    SyscallTable syscalls_;
    FaultInjector faults_;
    std::vector<std::unique_ptr<Process>> processes_;
};

} // namespace genesys::osk

#endif // GENESYS_OSK_PROCESS_HH
