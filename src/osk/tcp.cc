/**
 * @file
 * Stream socket implementation (gnet).
 */

#include "tcp.hh"

#include <algorithm>
#include <cerrno>

#include "support/logging.hh"

namespace genesys::osk
{

const char *
tcpStateName(TcpState s)
{
    switch (s) {
      case TcpState::Closed:
        return "CLOSED";
      case TcpState::Listen:
        return "LISTEN";
      case TcpState::SynSent:
        return "SYN_SENT";
      case TcpState::SynRcvd:
        return "SYN_RCVD";
      case TcpState::Established:
        return "ESTABLISHED";
      case TcpState::FinWait:
        return "FIN_WAIT";
      case TcpState::CloseWait:
        return "CLOSE_WAIT";
    }
    return "?";
}

TcpSocket::TcpSocket(TcpStack &stack, int id)
    : stack_(stack), id_(id),
      rx_wait_(std::make_unique<sim::WaitQueue>(stack.events())),
      space_wait_(std::make_unique<sim::WaitQueue>(stack.events())),
      accept_wait_(std::make_unique<sim::WaitQueue>(stack.events()))
{}

int
TcpSocket::bind(SockAddr addr)
{
    if (tcpState_ != TcpState::Closed)
        return -EINVAL;
    if (addr.port == 0)
        return -EINVAL;
    if (stack_.bound_.contains(addr))
        return -EADDRINUSE;
    if (local_.port != 0)
        stack_.bound_.erase(local_);
    local_ = addr;
    stack_.bound_[addr] = id_;
    return 0;
}

int
TcpSocket::listen(int backlog)
{
    if (tcpState_ != TcpState::Closed)
        return -EINVAL;
    if (local_.port == 0)
        return -EINVAL; // bind first; ephemeral listeners not modeled
    backlog_ = backlog > 0
                   ? backlog
                   : static_cast<int>(stack_.params().tcpAcceptBacklog);
    tcpState_ = TcpState::Listen;
    stack_.listeners_[local_] = id_;
    return 0;
}

sim::Task<int>
TcpSocket::connect(SockAddr dst)
{
    if (tcpState_ == TcpState::Established ||
        tcpState_ == TcpState::SynSent)
        co_return -EISCONN;
    if (tcpState_ != TcpState::Closed)
        co_return -EINVAL;
    if (error_ != 0)
        co_return -error_;
    if (local_.port == 0) {
        // Ephemeral port assignment.
        SockAddr addr = local_;
        do {
            addr.port = stack_.next_ephemeral_++;
        } while (stack_.bound_.contains(addr));
        local_ = addr;
        stack_.bound_[addr] = id_;
    }
    tcpState_ = TcpState::SynSent;
    bool reset = false;
    const Tick syn = stack_.segmentDelay(0, reset);
    if (reset) {
        ++stack_.counters_.resets;
        tcpState_ = TcpState::Closed;
        error_ = ETIMEDOUT;
        co_return -ETIMEDOUT;
    }
    co_await sim::Delay(stack_.events(), syn);

    auto it = stack_.listeners_.find(dst);
    TcpSocket *lst =
        it == stack_.listeners_.end() ? nullptr
                                      : stack_.socket(it->second);
    if (lst == nullptr || lst->tcpState_ != TcpState::Listen ||
        lst->accept_q_.size() >=
            static_cast<std::size_t>(lst->backlog_)) {
        ++stack_.counters_.refused;
        // RST comes straight back.
        co_await sim::Delay(stack_.events(), stack_.params().tcpRtt / 2);
        tcpState_ = TcpState::Closed;
        co_return -ECONNREFUSED;
    }

    // Passive endpoint for this connection.
    TcpSocket *srv = stack_.createSocket();
    srv->tcpState_ = TcpState::SynRcvd;
    srv->local_ = lst->local_;
    srv->peer_ = local_;
    srv->peer_id_ = id_;
    peer_ = dst;
    peer_id_ = srv->id_;

    // SYN-ACK back, final ACK piggybacks on first data.
    co_await sim::Delay(stack_.events(), stack_.params().tcpRtt / 2);
    tcpState_ = TcpState::Established;
    srv->tcpState_ = TcpState::Established;
    ++stack_.counters_.connects;
    lst->accept_q_.push_back(srv->id_);
    lst->accept_wait_->notifyAll();
    stack_.noteReady(lst->id_);
    co_return 0;
}

sim::Task<int>
TcpSocket::accept()
{
    for (;;) {
        if (tcpState_ != TcpState::Listen)
            co_return -EINVAL;
        if (!accept_q_.empty())
            break;
        co_await accept_wait_->wait();
    }
    const int sid = accept_q_.front();
    accept_q_.pop_front();
    ++stack_.counters_.accepts;
    stack_.noteReady(id_); // readiness level may have dropped
    co_return sid;
}

bool
TcpSocket::tryAccept(int &out_id)
{
    if (accept_q_.empty())
        return false;
    out_id = accept_q_.front();
    accept_q_.pop_front();
    ++stack_.counters_.accepts;
    return true;
}

sim::Task<std::int64_t>
TcpSocket::awaitReadable(bool nonblock)
{
    for (;;) {
        if (!rx_.empty())
            co_return 1;
        if (error_ != 0)
            co_return -error_;
        if (fin_rcvd_)
            co_return 0; // EOF
        if (tcpState_ == TcpState::Listen)
            co_return -EINVAL;
        if (tcpState_ == TcpState::Closed ||
            tcpState_ == TcpState::SynSent)
            co_return -ENOTCONN;
        if (nonblock)
            co_return -EAGAIN;
        co_await rx_wait_->wait();
    }
}

void
TcpSocket::consumed(std::uint64_t n)
{
    rx_bytes_ -= n;
    // Window opened: unblock the peer's writers and let epoll watchers
    // of the peer re-evaluate EPOLLOUT.
    space_wait_->notifyAll();
    stack_.noteReady(id_);
    if (TcpSocket *pp = stack_.socket(peer_id_))
        stack_.noteReady(pp->id());
}

sim::Task<std::int64_t>
TcpSocket::read(void *buf, std::uint64_t max_len)
{
    if (max_len == 0)
        co_return 0;
    const std::int64_t rdy = co_await awaitReadable(false);
    if (rdy <= 0)
        co_return rdy;
    auto *dst = static_cast<std::uint8_t *>(buf);
    std::uint64_t n = 0;
    while (n < max_len && !rx_.empty()) {
        NetSeg &s = rx_.front();
        const auto take = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(max_len - n, s.len));
        if (dst != nullptr)
            std::copy_n(s.bytes(), take, dst + n);
        s.off += take;
        s.len -= take;
        if (s.len == 0)
            rx_.pop_front();
        n += take;
    }
    stack_.counters_.copiedBytes += n;
    consumed(n);
    co_return static_cast<std::int64_t>(n);
}

sim::Task<std::int64_t>
TcpSocket::readv(const IoVec *iov, int iov_cnt)
{
    std::uint64_t cap = 0;
    for (int i = 0; i < iov_cnt; ++i)
        cap += iov[i].len;
    if (cap == 0)
        co_return 0;
    const std::int64_t rdy = co_await awaitReadable(false);
    if (rdy <= 0)
        co_return rdy;
    std::uint64_t n = 0;
    int vi = 0;
    std::uint64_t voff = 0;
    while (n < cap && !rx_.empty()) {
        while (vi < iov_cnt && voff >= iov[vi].len) {
            ++vi;
            voff = 0;
        }
        NetSeg &s = rx_.front();
        const auto take = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(iov[vi].len - voff, s.len));
        auto *dst = static_cast<std::uint8_t *>(iov[vi].asPtr());
        if (dst != nullptr)
            std::copy_n(s.bytes(), take, dst + voff);
        s.off += take;
        s.len -= take;
        if (s.len == 0)
            rx_.pop_front();
        voff += take;
        n += take;
    }
    stack_.counters_.copiedBytes += n;
    consumed(n);
    co_return static_cast<std::int64_t>(n);
}

sim::Task<std::int64_t>
TcpSocket::readSegments(NetSeg *out, int max_segs, bool nonblock)
{
    if (max_segs <= 0)
        co_return -EINVAL;
    const std::int64_t rdy = co_await awaitReadable(nonblock);
    if (rdy <= 0)
        co_return rdy;
    int count = 0;
    std::uint64_t n = 0;
    while (count < max_segs && !rx_.empty()) {
        n += rx_.front().len;
        out[count++] = std::move(rx_.front());
        rx_.pop_front();
    }
    stack_.counters_.zerocopyBytes += n;
    consumed(n);
    co_return static_cast<std::int64_t>(count);
}

sim::Task<std::int64_t>
TcpSocket::gatherSend(const IoVec *iov, int iov_cnt,
                      std::uint64_t total)
{
    if (error_ != 0)
        co_return -error_;
    if (tcpState_ == TcpState::FinWait)
        co_return -EPIPE; // we already sent FIN
    if (tcpState_ != TcpState::Established &&
        tcpState_ != TcpState::CloseWait)
        co_return -ENOTCONN;
    std::uint64_t sent = 0;
    int vi = 0;
    std::uint64_t voff = 0;
    while (sent < total) {
        if (error_ != 0)
            co_return -error_;
        if (fin_sent_)
            co_return -EPIPE;
        TcpSocket *peer = stack_.socket(peer_id_);
        if (peer == nullptr) {
            error_ = ECONNRESET;
            co_return -ECONNRESET;
        }
        const std::uint64_t space = peer->rxSpace();
        if (space == 0) {
            // Receive window full: block until the reader drains.
            ++stack_.counters_.backpressureStalls;
            co_await peer->space_wait_->wait();
            continue; // re-validate the peer after waking
        }
        const std::uint64_t seg_len = std::min<std::uint64_t>(
            {total - sent, space,
             static_cast<std::uint64_t>(stack_.params().tcpMss)});
        // Materialize the wire segment: the one tx copy, gathered
        // across iovec boundaries. Receivers only reference it.
        NetSeg seg;
        seg.data = std::make_shared<std::vector<std::uint8_t>>(seg_len);
        seg.len = static_cast<std::uint32_t>(seg_len);
        std::uint64_t filled = 0;
        while (filled < seg_len) {
            while (vi < iov_cnt && voff >= iov[vi].len) {
                ++vi;
                voff = 0;
            }
            const std::uint64_t take =
                std::min(seg_len - filled, iov[vi].len - voff);
            const auto *src =
                static_cast<const std::uint8_t *>(iov[vi].asPtr());
            if (src != nullptr)
                std::copy_n(src + voff, take,
                            seg.data->data() + filled);
            else
                std::fill_n(seg.data->data() + filled, take, 0);
            voff += take;
            filled += take;
        }
        bool reset = false;
        const Tick delay = stack_.segmentDelay(seg_len, reset);
        if (reset) {
            ++stack_.counters_.resets;
            error_ = ECONNRESET;
            tcpState_ = TcpState::Closed;
            if (TcpSocket *pp = stack_.socket(peer_id_))
                pp->resetFromPeer();
            co_return -ECONNRESET;
        }
        co_await sim::Delay(stack_.events(), delay);
        if (error_ != 0)
            co_return -error_;
        peer = stack_.socket(peer_id_); // may have closed meanwhile
        if (peer == nullptr) {
            error_ = ECONNRESET;
            co_return -ECONNRESET;
        }
        peer->deposit(std::move(seg));
        sent += seg_len;
    }
    co_return static_cast<std::int64_t>(total);
}

sim::Task<std::int64_t>
TcpSocket::write(const void *buf, std::uint64_t len)
{
    IoVec one;
    one.base = static_cast<std::uint64_t>(
        reinterpret_cast<std::uintptr_t>(buf));
    one.len = len;
    co_return co_await gatherSend(&one, 1, len);
}

sim::Task<std::int64_t>
TcpSocket::writev(const IoVec *iov, int iov_cnt)
{
    std::uint64_t total = 0;
    for (int i = 0; i < iov_cnt; ++i)
        total += iov[i].len;
    co_return co_await gatherSend(iov, iov_cnt, total);
}

sim::Task<int>
TcpSocket::shutdown(int how)
{
    if (how < SHUT_RD_ || how > SHUT_RDWR_)
        co_return -EINVAL;
    if (tcpState_ == TcpState::Closed || tcpState_ == TcpState::Listen ||
        tcpState_ == TcpState::SynSent)
        co_return -ENOTCONN;
    if (how == SHUT_RD_ || how == SHUT_RDWR_) {
        fin_rcvd_ = true; // further reads see EOF
        rx_wait_->notifyAll();
        stack_.noteReady(id_);
        if (how == SHUT_RD_)
            co_return 0;
    }
    if (fin_sent_)
        co_return 0;
    fin_sent_ = true;
    bool reset = false;
    const Tick fin = stack_.segmentDelay(0, reset);
    if (reset) {
        ++stack_.counters_.resets;
        error_ = ECONNRESET;
        tcpState_ = TcpState::Closed;
        if (TcpSocket *pp = stack_.socket(peer_id_))
            pp->resetFromPeer();
        co_return -ECONNRESET;
    }
    tcpState_ = tcpState_ == TcpState::CloseWait ? TcpState::Closed
                                           : TcpState::FinWait;
    co_await sim::Delay(stack_.events(), fin);
    if (TcpSocket *pp = stack_.socket(peer_id_))
        pp->finFromPeer();
    co_return 0;
}

bool
TcpSocket::writeReady() const
{
    if (tcpState_ != TcpState::Established &&
        tcpState_ != TcpState::CloseWait)
        return false;
    if (fin_sent_)
        return false;
    const TcpSocket *peer = stack_.socket(peer_id_);
    return peer != nullptr && peer->rxSpace() > 0;
}

std::uint64_t
TcpSocket::rxSpace() const
{
    const std::uint64_t window = stack_.params().tcpWindowBytes;
    return rx_bytes_ >= window ? 0 : window - rx_bytes_;
}

void
TcpSocket::deposit(NetSeg seg)
{
    const auto n = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(seg.len, rxSpace()));
    if (n == 0)
        return;
    seg.len = n; // window shrank in flight: excess trimmed (as before)
    rx_.push_back(std::move(seg));
    rx_bytes_ += n;
    rx_wait_->notifyAll();
    stack_.noteReady(id_);
}

void
TcpSocket::finFromPeer()
{
    if (fin_rcvd_)
        return;
    fin_rcvd_ = true;
    if (tcpState_ == TcpState::Established)
        tcpState_ = TcpState::CloseWait;
    else if (tcpState_ == TcpState::FinWait)
        tcpState_ = TcpState::Closed; // both FINs exchanged
    rx_wait_->notifyAll();
    stack_.noteReady(id_);
}

void
TcpSocket::resetFromPeer()
{
    if (error_ != 0)
        return;
    error_ = ECONNRESET;
    tcpState_ = TcpState::Closed;
    rx_wait_->notifyAll();
    space_wait_->notifyAll();
    accept_wait_->notifyAll();
    stack_.noteReady(id_);
}

TcpStack::TcpStack(sim::EventQueue &eq, const OskParams &params,
                   std::uint64_t seed)
    : eq_(eq), params_(params), rng_(seed), loss_ppm_(params.tcpLossPpm)
{}

TcpSocket *
TcpStack::createSocket()
{
    const int id = next_id_++;
    auto sock = std::make_unique<TcpSocket>(*this, id);
    TcpSocket *raw = sock.get();
    sockets_.emplace(id, std::move(sock));
    return raw;
}

TcpSocket *
TcpStack::socket(int id) const
{
    auto it = sockets_.find(id);
    return it == sockets_.end() ? nullptr : it->second.get();
}

bool
TcpStack::closeSocket(int id)
{
    auto it = sockets_.find(id);
    if (it == sockets_.end())
        return false;
    TcpSocket &s = *it->second;
    // Accepted sockets share local_ with their listener; only drop
    // the address-map entries that actually point at this socket.
    if (s.local_.port != 0) {
        auto bit = bound_.find(s.local_);
        if (bit != bound_.end() && bit->second == id)
            bound_.erase(bit);
        auto lit = listeners_.find(s.local_);
        if (lit != listeners_.end() && lit->second == id)
            listeners_.erase(lit);
    }
    // close() implies FIN in both directions; the FIN's wire time is
    // unobservable (the fd is gone) so it is delivered immediately.
    if (TcpSocket *pp = socket(s.peer_id_))
        pp->finFromPeer();
    // Queued-but-never-accepted connections are reset.
    const std::deque<int> orphans = std::move(s.accept_q_);
    s.accept_q_.clear();
    s.tcpState_ = TcpState::Closed;
    s.rx_wait_->notifyAll();
    s.space_wait_->notifyAll();
    s.accept_wait_->notifyAll();
    noteReady(id);
    // The object moves to a graveyard rather than being destroyed:
    // in-flight coroutines (a peer's write mid-wire-delay, a blocked
    // reader) still hold pointers to it and resolve their fate on the
    // next loop iteration via socket(), which now returns nullptr.
    graveyard_.push_back(std::move(it->second));
    sockets_.erase(it);
    for (const int qid : orphans) {
        if (TcpSocket *q = socket(qid)) {
            if (TcpSocket *qp = socket(q->peer_id_))
                qp->resetFromPeer();
            closeSocket(qid);
        }
    }
    return true;
}

void
TcpStack::noteReady(int sock_id)
{
    if (ready_cb_)
        ready_cb_(sock_id);
}

Tick
TcpStack::segmentDelay(std::uint64_t bytes, bool &reset)
{
    reset = false;
    constexpr std::uint64_t kHeaderBytes = 40; // IP + TCP
    std::uint32_t attempts = 1;
    while (loss_ppm_ > 0 && rng_.below(1000000) < loss_ppm_) {
        if (attempts >= params_.tcpMaxAttempts) {
            counters_.segsSent += attempts;
            counters_.segsLost += attempts;
            counters_.retransmits += attempts - 1;
            reset = true;
            return 0;
        }
        ++attempts;
    }
    counters_.segsSent += attempts;
    counters_.segsLost += attempts - 1;
    counters_.retransmits += attempts - 1;
    return (attempts - 1) * params_.tcpRto + params_.tcpRtt / 2 +
           transferTicks(bytes + kHeaderBytes, params_.netBytesPerSec);
}

} // namespace genesys::osk
