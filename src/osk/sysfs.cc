/**
 * @file
 * SysfsFile implementation.
 */

#include "sysfs.hh"

#include <cctype>
#include <cstring>

#include "support/logging.hh"

namespace genesys::osk
{

std::uint64_t
SysfsFile::read(std::uint64_t offset, void *dst, std::uint64_t len)
{
    const std::string content =
        logging::format("%llu\n",
                        static_cast<unsigned long long>(getter_()));
    if (offset >= content.size())
        return 0;
    const std::uint64_t n =
        std::min<std::uint64_t>(len, content.size() - offset);
    if (dst != nullptr)
        std::memcpy(dst, content.data() + offset, n);
    return n;
}

std::uint64_t
SysfsFile::write(std::uint64_t, const void *src, std::uint64_t len)
{
    if (src == nullptr || len == 0)
        return 0;
    const auto *text = static_cast<const char *>(src);
    std::uint64_t value = 0;
    bool any = false;
    for (std::uint64_t i = 0; i < len; ++i) {
        const char c = text[i];
        if (c == '\n' || c == '\0')
            break;
        if (!std::isdigit(static_cast<unsigned char>(c)))
            return 0; // reject non-numeric writes
        value = value * 10 + static_cast<std::uint64_t>(c - '0');
        any = true;
    }
    if (!any || !setter_(value))
        return 0;
    return len;
}

} // namespace genesys::osk
