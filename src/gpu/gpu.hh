/**
 * @file
 * GCN3-like GPU execution model.
 *
 * Models the execution hierarchy the paper's design space is built on
 * (Section IV): work-items execute in lockstep as 64-lane wavefronts,
 * wavefronts group into work-groups resident on a compute unit (CU),
 * and hundreds of work-groups form a kernel. The model captures the
 * properties GENESYS depends on:
 *
 *  - Limited residency: each CU holds at most a fixed number of
 *    work-groups/wavefronts; excess work-groups queue. This is why
 *    strong ordering at kernel scope can deadlock and why non-blocking
 *    invocation (which lets a work-group retire early) wins (Fig 8).
 *  - Hardware slot IDs: each resident wavefront occupies a hardware
 *    wave slot; slot ids index the GENESYS syscall area (Section VI).
 *  - Work-group scope barriers: cheap CU-local synchronization.
 *  - Wavefront halt/resume: a wave can relinquish its SIMD resources
 *    and be woken by a CPU message (Section V-C).
 *  - A scalar-message interrupt port towards the CPU (s_sendmsg).
 *
 * Wavefront programs are C++20 coroutines over the simulated clock;
 * per-lane work is expressed as loops over [0, ctx.laneCount()).
 */

#ifndef GENESYS_GPU_GPU_HH
#define GENESYS_GPU_GPU_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "mem/cache_model.hh"
#include "mem/mem_bus.hh"
#include "sim/future.hh"
#include "sim/sim.hh"
#include "sim/sync.hh"
#include "sim/task.hh"
#include "support/stats.hh"
#include "support/types.hh"

namespace genesys::gsan
{
class Sanitizer;
}

namespace genesys::gpu
{

struct GpuConfig
{
    std::uint32_t numCus = 8;            ///< GCN3 iGPU (Table III class)
    std::uint32_t wavefrontSize = 64;
    std::uint32_t maxWavesPerCu = 40;
    std::uint32_t maxWorkGroupsPerCu = 8; ///< residency (LDS/VGPR abstract)
    double clockHz = 758e6;               ///< Table III
    /// Host-side kernel dispatch latency (one CPU->GPU round trip).
    Tick kernelLaunchLatency = ticks::us(15);
    /// Latency to resume a halted wavefront from a CPU message.
    Tick waveResumeLatency = ticks::us(5);
    /// Device-side dynamic kernel enqueue (ref [46]): a doorbell
    /// write, far below the host dispatch path.
    Tick dynamicLaunchLatency = ticks::us(3);

    /// GPU L2 (CPU-coherent) used for syscall-area polling; 256 KiB =
    /// 4096 lines of 64 B, the capacity knee of Figure 9.
    std::uint64_t l2Bytes = 256 * 1024;
    std::uint32_t l2LineBytes = 64;
    std::uint32_t l2Assoc = 16;
    Tick l2HitLatency = ticks::ns(180);

    // Profiled syscall-area access costs (Table IV): CPU-coherent
    // atomics bypass the non-coherent L1 and hit the L2/fabric.
    Tick atomicCmpSwap = ticks::ns(2100);
    Tick atomicSwap = ticks::ns(1800);
    Tick atomicLoad = ticks::ns(1400);
    Tick plainLoad = ticks::ns(80);

    /** Active work-item slots = CUs x waves/CU x wavefront size. */
    std::uint64_t
    activeWorkItemSlots() const
    {
        return std::uint64_t(numCus) * maxWavesPerCu * wavefrontSize;
    }

    Tick
    cyclesToTicks(std::uint64_t cycles) const
    {
        const double ns = static_cast<double>(cycles) / clockHz * 1e9;
        return ns < 1.0 && cycles > 0 ? Tick{1} : static_cast<Tick>(ns);
    }
};

class GpuDevice;
class WavefrontCtx;

/** A wavefront program: executed once per wavefront. */
using WaveProgram = std::function<sim::Task<>(WavefrontCtx &)>;

struct KernelLaunch
{
    std::uint64_t workItems = 0;  ///< grid size
    std::uint32_t wgSize = 256;   ///< work-items per work-group
    WaveProgram program;
    /// Device-side dynamic launches bypass the host dispatch path;
    /// negative = use the device's configured launch latency.
    std::int64_t kernelLaunchLatencyOverride = -1;
};

/** Runtime state shared by the wavefronts of one work-group. */
struct WorkGroupState
{
    std::uint32_t wgId = 0;
    std::uint32_t cu = 0;
    std::uint32_t waves = 0;
    std::uint32_t livingWaves = 0;
    std::uint32_t sizeItems = 0;
    std::unique_ptr<sim::Barrier> barrier;
};

/**
 * Per-wavefront execution context handed to the program. Lives for the
 * duration of the wavefront.
 */
class WavefrontCtx
{
  public:
    WavefrontCtx(GpuDevice &dev, WorkGroupState &wg,
                 std::uint32_t wave_in_group, std::uint32_t lane_count,
                 std::uint64_t first_item, std::uint32_t hw_wave_slot);

    GpuDevice &device() { return dev_; }
    sim::Sim &sim();

    // --- identification -------------------------------------------
    std::uint32_t workgroupId() const { return wg_.wgId; }
    std::uint32_t waveInGroup() const { return wave_; }
    std::uint32_t laneCount() const { return laneCount_; }
    /** Global id of this wave's lane 0 work-item. */
    std::uint64_t firstWorkItem() const { return firstItem_; }
    /** Hardware wave slot (indexes the syscall area). */
    std::uint32_t hwWaveSlot() const { return hwSlot_; }
    /** Hardware slot of a specific lane's work-item. */
    std::uint32_t
    hwItemSlot(std::uint32_t lane) const;

    /** True for the work-group leader (wave 0). */
    bool isGroupLeader() const { return wave_ == 0; }

    /**
     * Device-side dynamic kernel launch (the hardware capability the
     * paper cites as [46]): enqueue a child kernel from GPU code
     * without a CPU round trip; completes when the child retires.
     */
    sim::Task<> launchKernel(KernelLaunch child);

    // --- execution -------------------------------------------------
    /** SIMD compute for @p cycles GPU cycles. */
    sim::Delay compute(std::uint64_t cycles);

    /**
     * Work-group scope barrier across all waves of the group. A lazy
     * Task wrapper around the barrier awaiter (timing-neutral:
     * symmetric transfer runs it synchronously) so gsan can record the
     * happens-before edges every arrival/departure creates.
     */
    sim::Task<> wgBarrier();

    /**
     * Halt this wavefront, releasing its SIMD resources, until a CPU
     * message resumes it (resume latency charged on wake).
     */
    sim::Task<> halt();

    /** Wake a halted wavefront (no-op if it is not halted). */
    void resumeFromHost();

    WorkGroupState &group() { return wg_; }

  private:
    GpuDevice &dev_;
    WorkGroupState &wg_;
    std::uint32_t wave_;
    std::uint32_t laneCount_;
    std::uint64_t firstItem_;
    std::uint32_t hwSlot_;
    bool halted_ = false;
    std::unique_ptr<sim::WaitQueue> haltWait_;
};

/**
 * The GPU device: CU residency management, kernel dispatch, the
 * interrupt port towards the CPU, and the L2/memory path used for
 * syscall-area polling.
 */
class GpuDevice
{
  public:
    GpuDevice(sim::Sim &sim, const GpuConfig &config,
              mem::MemBus *mem_bus = nullptr);

    sim::Sim &sim() { return sim_; }
    const GpuConfig &config() const { return config_; }
    mem::CacheModel &l2() { return l2_; }

    /**
     * Launch a kernel; completes when every work-group has retired.
     * Multiple launches may be in flight (they share CU resources).
     */
    sim::Task<> launch(KernelLaunch launch_desc);

    /**
     * Register the CPU-side interrupt sink. The wavefront's scalar
     * s_sendmsg ends up here, carrying the originating compute unit
     * (the hardware routes the message per CU, which is what lets the
     * host steer it to a per-shard service path) and the hardware
     * wave slot id.
     */
    using InterruptSink =
        std::function<void(std::uint32_t cu, std::uint32_t hw_wave_slot)>;
    void
    setInterruptSink(InterruptSink sink)
    {
        interruptSink_ = std::move(sink);
    }

    /** Raise a GPU->CPU interrupt for @p hw_wave_slot. */
    void sendInterrupt(std::uint32_t hw_wave_slot);

    /** Attach/query the happens-before sanitizer (may be null). */
    void setSanitizer(gsan::Sanitizer *gsan) { gsan_ = gsan; }
    gsan::Sanitizer *sanitizer() const { return gsan_; }

    /** Wake the (halted) wavefront in @p hw_wave_slot. */
    void resumeWave(std::uint32_t hw_wave_slot);

    /**
     * Timed access to a syscall-area cache line from the GPU:
     * atomics bypass L1 and hit the coherent L2; L2 misses travel
     * over the shared memory bus (feeding Figure 9's contention).
     */
    sim::Task<> accessLine(mem::Addr addr, Tick op_latency);

    // --- stats ------------------------------------------------------
    std::uint64_t launchedKernels() const { return launchedKernels_; }
    std::uint64_t launchedWorkGroups() const { return launchedWgs_; }
    std::uint64_t launchedWavefronts() const { return launchedWaves_; }
    std::uint32_t residentWorkGroups() const { return residentWgs_; }

  private:
    struct CuState
    {
        std::uint32_t freeWgSlots = 0;
        std::uint32_t freeWaveSlots = 0;
        std::vector<std::uint32_t> freeHwWaveIds; // stack
    };

    struct PendingWg
    {
        std::uint32_t wgId;
        std::uint32_t sizeItems;      ///< actual items in this group
        std::uint32_t nominalWgSize;  ///< launch-time work-group size
        std::shared_ptr<struct LaunchState> launch;
    };

    void tryDispatch();
    sim::Task<> runWave(std::shared_ptr<struct LaunchState> launch,
                        std::shared_ptr<WorkGroupState> wg,
                        std::unique_ptr<WavefrontCtx> ctx);

    sim::Sim &sim_;
    GpuConfig config_;
    mem::CacheModel l2_;
    mem::MemBus *memBus_;
    std::vector<CuState> cus_;
    std::deque<PendingWg> pendingWgs_;
    gsan::Sanitizer *gsan_ = nullptr;
    InterruptSink interruptSink_;
    /// hw wave slot -> live wavefront context (for halt/resume).
    std::vector<WavefrontCtx *> waveBySlot_;

    std::uint64_t launchedKernels_ = 0;
    std::uint64_t launchedWgs_ = 0;
    std::uint64_t launchedWaves_ = 0;
    std::uint32_t residentWgs_ = 0;
};

} // namespace genesys::gpu

#endif // GENESYS_GPU_GPU_HH
