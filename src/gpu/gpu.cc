/**
 * @file
 * GpuDevice implementation.
 */

#include "gpu.hh"

#include <algorithm>

#include "support/gmc_probe.hh"
#include "support/gsan.hh"
#include "support/logging.hh"
#include "support/trace.hh"

namespace genesys::gpu
{

namespace
{

mem::CacheParams
l2Params(const GpuConfig &cfg)
{
    mem::CacheParams p;
    p.name = "gpu.l2";
    p.sizeBytes = cfg.l2Bytes;
    p.lineBytes = cfg.l2LineBytes;
    p.associativity = cfg.l2Assoc;
    return p;
}

} // namespace

/** Book-keeping for one in-flight kernel launch. */
struct LaunchState
{
    explicit LaunchState(sim::EventQueue &eq) : done(eq) {}

    WaveProgram program;
    std::uint32_t totalWgs = 0;
    std::uint32_t retiredWgs = 0;
    sim::Promise<int> done;
};

// ------------------------------------------------------------ WavefrontCtx

WavefrontCtx::WavefrontCtx(GpuDevice &dev, WorkGroupState &wg,
                           std::uint32_t wave_in_group,
                           std::uint32_t lane_count,
                           std::uint64_t first_item,
                           std::uint32_t hw_wave_slot)
    : dev_(dev), wg_(wg), wave_(wave_in_group), laneCount_(lane_count),
      firstItem_(first_item), hwSlot_(hw_wave_slot),
      haltWait_(std::make_unique<sim::WaitQueue>(dev.sim().events()))
{}

sim::Sim &
WavefrontCtx::sim()
{
    return dev_.sim();
}

std::uint32_t
WavefrontCtx::hwItemSlot(std::uint32_t lane) const
{
    GENESYS_ASSERT(lane < laneCount_, "lane %u out of range", lane);
    return hwSlot_ * dev_.config().wavefrontSize + lane;
}

sim::Delay
WavefrontCtx::compute(std::uint64_t cycles)
{
    return sim::Delay(dev_.sim().events(),
                      dev_.config().cyclesToTicks(cycles));
}

sim::Task<>
WavefrontCtx::wgBarrier()
{
    gsan::Sanitizer *g = dev_.sanitizer();
    const bool on = g != nullptr && g->enabled();
    // The barrier object is per work-group instance, so its address
    // is a unique, stable sync-object key for this group's lifetime.
    const auto key = reinterpret_cast<std::uint64_t>(wg_.barrier.get());
    if (on)
        g->barrierArrive(key, g->waveThread(hwSlot_));
    // gmc footprint: barrier arrival/release touches every
    // participating wave's context (the wake fans out from the last
    // arrival's event).
    gmc::Probe::instance().touch(gmc::ProbeKind::Wave, hwSlot_);
    co_await wg_.barrier->arriveAndWait();
    gmc::Probe::instance().touch(gmc::ProbeKind::Wave, hwSlot_);
    if (on)
        g->barrierLeave(key, g->waveThread(hwSlot_));
}

sim::Task<>
WavefrontCtx::halt()
{
    if (gsan::Sanitizer *g = dev_.sanitizer(); g && g->enabled())
        g->waveHalt(hwSlot_);
    // gmc footprint: halting writes this wave's halt/resume word, and
    // so does the event that later resumes it.
    gmc::Probe::instance().touch(gmc::ProbeKind::Wave, hwSlot_);
    halted_ = true;
    co_await haltWait_->wait();
    gmc::Probe::instance().touch(gmc::ProbeKind::Wave, hwSlot_);
    halted_ = false;
    if (gsan::Sanitizer *g = dev_.sanitizer(); g && g->enabled())
        g->waveWake(hwSlot_);
}

sim::Task<>
WavefrontCtx::launchKernel(KernelLaunch child)
{
    child.kernelLaunchLatencyOverride =
        static_cast<std::int64_t>(dev_.config().dynamicLaunchLatency);
    GENESYS_TRACE(dev_.sim(), "gpu",
                  "dynamic launch from wave %u: %llu items", hwSlot_,
                  static_cast<unsigned long long>(child.workItems));
    co_await dev_.launch(std::move(child));
}

void
WavefrontCtx::resumeFromHost()
{
    // gmc footprint: the wake (delivered or dropped) reads the halt
    // word; its order against the halt and the slot complete is
    // exactly the lost-wakeup hazard gmc explores.
    gmc::Probe::instance().touch(gmc::ProbeKind::Wave, hwSlot_);
    gsan::Sanitizer *g = dev_.sanitizer();
    const bool on = g != nullptr && g->enabled();
    if (haltWait_->waiting() > 0) {
        if (on)
            g->resumeDelivered(hwSlot_);
        haltWait_->notifyOne(dev_.config().waveResumeLatency);
    } else if (on) {
        // The wake message found nobody halted and evaporates. If the
        // wave halts *after* this, it sleeps forever on hardware —
        // gsan reports it at the halt site unless the wave observes
        // the finished slot first (poll + consume).
        g->resumeDropped(hwSlot_);
    }
}

// --------------------------------------------------------------- GpuDevice

GpuDevice::GpuDevice(sim::Sim &sim, const GpuConfig &config,
                     mem::MemBus *mem_bus)
    : sim_(sim), config_(config), l2_(l2Params(config)), memBus_(mem_bus)
{
    cus_.resize(config_.numCus);
    for (std::uint32_t cu = 0; cu < config_.numCus; ++cu) {
        cus_[cu].freeWgSlots = config_.maxWorkGroupsPerCu;
        cus_[cu].freeWaveSlots = config_.maxWavesPerCu;
        // Allocate hw wave ids in descending order so pops are in
        // ascending id order (determinism + readable traces).
        for (std::uint32_t w = config_.maxWavesPerCu; w > 0; --w) {
            cus_[cu].freeHwWaveIds.push_back(
                cu * config_.maxWavesPerCu + w - 1);
        }
    }
    waveBySlot_.assign(
        std::size_t(config_.numCus) * config_.maxWavesPerCu, nullptr);
}

sim::Task<>
GpuDevice::launch(KernelLaunch launch_desc)
{
    GENESYS_ASSERT(launch_desc.workItems > 0, "empty kernel");
    GENESYS_ASSERT(launch_desc.wgSize >= 1 &&
                       launch_desc.wgSize <=
                           16 * config_.wavefrontSize,
                   "work-group size %u unsupported", launch_desc.wgSize);
    GENESYS_ASSERT(launch_desc.program != nullptr, "kernel needs code");

    const Tick launch_latency =
        launch_desc.kernelLaunchLatencyOverride >= 0
            ? static_cast<Tick>(launch_desc.kernelLaunchLatencyOverride)
            : config_.kernelLaunchLatency;
    co_await sim::Delay(sim_.events(), launch_latency);

    auto state = std::make_shared<LaunchState>(sim_.events());
    state->program = std::move(launch_desc.program);
    const std::uint64_t wgs =
        (launch_desc.workItems + launch_desc.wgSize - 1) /
        launch_desc.wgSize;
    state->totalWgs = static_cast<std::uint32_t>(wgs);
    ++launchedKernels_;
    GENESYS_TRACE(sim_, "gpu",
                  "kernel launch: %llu items in %llu group(s) of %u",
                  static_cast<unsigned long long>(
                      launch_desc.workItems),
                  static_cast<unsigned long long>(wgs),
                  launch_desc.wgSize);

    for (std::uint64_t wg = 0; wg < wgs; ++wg) {
        const std::uint64_t first = wg * launch_desc.wgSize;
        const std::uint32_t size = static_cast<std::uint32_t>(std::min<
            std::uint64_t>(launch_desc.wgSize,
                           launch_desc.workItems - first));
        pendingWgs_.push_back(PendingWg{static_cast<std::uint32_t>(wg),
                                        size, launch_desc.wgSize,
                                        state});
    }
    tryDispatch();

    co_await state->done.future();
}

void
GpuDevice::tryDispatch()
{
    while (!pendingWgs_.empty()) {
        PendingWg &next = pendingWgs_.front();
        const std::uint32_t waves =
            (next.sizeItems + config_.wavefrontSize - 1) /
            config_.wavefrontSize;
        // First CU with a free WG slot and enough wave slots.
        CuState *target = nullptr;
        std::uint32_t target_cu = 0;
        for (std::uint32_t cu = 0; cu < cus_.size(); ++cu) {
            if (cus_[cu].freeWgSlots > 0 &&
                cus_[cu].freeWaveSlots >= waves) {
                target = &cus_[cu];
                target_cu = cu;
                break;
            }
        }
        if (target == nullptr)
            return; // device full; retry when a work-group retires

        PendingWg pending = std::move(next);
        pendingWgs_.pop_front();

        --target->freeWgSlots;
        target->freeWaveSlots -= waves;
        ++residentWgs_;
        ++launchedWgs_;

        auto wg = std::make_shared<WorkGroupState>();
        wg->wgId = pending.wgId;
        wg->cu = target_cu;
        wg->waves = waves;
        wg->livingWaves = waves;
        wg->sizeItems = pending.sizeItems;
        wg->barrier = std::make_unique<sim::Barrier>(sim_.events(),
                                                     waves);

        for (std::uint32_t w = 0; w < waves; ++w) {
            const std::uint32_t hw_id = target->freeHwWaveIds.back();
            target->freeHwWaveIds.pop_back();
            const std::uint32_t lane_count = std::min(
                config_.wavefrontSize,
                pending.sizeItems - w * config_.wavefrontSize);
            const std::uint64_t first_item =
                std::uint64_t(pending.wgId) * pending.nominalWgSize +
                std::uint64_t(w) * config_.wavefrontSize;
            auto ctx = std::make_unique<WavefrontCtx>(
                *this, *wg, w, lane_count, first_item, hw_id);
            waveBySlot_[hw_id] = ctx.get();
            ++launchedWaves_;
            sim_.spawn(runWave(pending.launch, wg, std::move(ctx)));
        }
    }
}

sim::Task<>
GpuDevice::runWave(std::shared_ptr<LaunchState> launch,
                   std::shared_ptr<WorkGroupState> wg,
                   std::unique_ptr<WavefrontCtx> ctx)
{
    co_await launch->program(*ctx);

    const std::uint32_t hw_id = ctx->hwWaveSlot();
    if (gsan_ != nullptr && gsan_->enabled())
        gsan_->waveRetire(hw_id);
    waveBySlot_[hw_id] = nullptr;
    CuState &cu = cus_[wg->cu];
    cu.freeHwWaveIds.push_back(hw_id);
    ++cu.freeWaveSlots;

    if (--wg->livingWaves == 0) {
        ++cu.freeWgSlots;
        --residentWgs_;
        GENESYS_TRACE(sim_, "gpu", "work-group %u retired (cu %u)",
                      wg->wgId, wg->cu);
        if (++launch->retiredWgs == launch->totalWgs)
            launch->done.set(0);
        tryDispatch();
    }
}

void
GpuDevice::sendInterrupt(std::uint32_t hw_wave_slot)
{
    if (gsan_ != nullptr && gsan_->enabled())
        gsan_->interruptSend(hw_wave_slot);
    // Hardware wave ids are allocated in per-CU blocks, so the
    // message's routing tag is recoverable from the slot id.
    const std::uint32_t cu = hw_wave_slot / config_.maxWavesPerCu;
    if (interruptSink_)
        interruptSink_(cu, hw_wave_slot);
    else
        warn("GPU interrupt with no CPU sink (slot %u)", hw_wave_slot);
}

void
GpuDevice::resumeWave(std::uint32_t hw_wave_slot)
{
    GENESYS_ASSERT(hw_wave_slot < waveBySlot_.size(),
                   "bad hw wave slot %u", hw_wave_slot);
    if (WavefrontCtx *ctx = waveBySlot_[hw_wave_slot])
        ctx->resumeFromHost();
}

sim::Task<>
GpuDevice::accessLine(mem::Addr addr, Tick op_latency)
{
    const bool hit = l2_.access(addr);
    co_await sim::Delay(sim_.events(), op_latency + config_.l2HitLatency);
    if (!hit && memBus_ != nullptr)
        co_await memBus_->transfer("gpu", config_.l2LineBytes);
}

} // namespace genesys::gpu
