/**
 * @file
 * gmc footprint probe: records which shared protocol objects each
 * simulated event touches.
 *
 * The gmc model checker (DESIGN.md §11) explores permutations of
 * same-tick event commutations. Its partial-order reduction needs to
 * know when two events are independent — i.e. touch disjoint protocol
 * state — so instrumented call sites (slot FSM entry points, doorbell
 * lines, workqueue queues, wavefront halt/resume, CPU core grants)
 * report every touch here. The ScheduleDriver drains the buffer after
 * each event callback, attributing the accumulated touches to the
 * event that just ran.
 *
 * Disabled (the default) the probe is a single branch per call site;
 * nothing in the modeled-time path changes, so default-schedule runs
 * stay bit-identical.
 */

#ifndef GENESYS_SUPPORT_GMC_PROBE_HH
#define GENESYS_SUPPORT_GMC_PROBE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace genesys::gmc
{

/** Classes of shared protocol objects the checker tracks. */
enum class ProbeKind : std::uint8_t
{
    Slot = 1,     ///< one syscall-area slot (id = slot index)
    Doorbell = 2, ///< one shard's doorbell/interrupt line (id = shard)
    Worker = 3,   ///< one workqueue worker's queue (id = worker index)
    Wave = 4,     ///< one wavefront's halt/resume word (id = hw slot)
    Core = 5,     ///< the CPU core grant (id unused, always 0)
    Ring = 6,     ///< one SQ/CQ counter line (id = 2*shard [+1 for CQ])
};

/** Packed footprint key: kind in the top byte, object id below. */
using ProbeKey = std::uint64_t;

constexpr ProbeKey
probeKey(ProbeKind kind, std::uint64_t id)
{
    return (static_cast<std::uint64_t>(kind) << 56) |
           (id & 0x00FF'FFFF'FFFF'FFFFull);
}

class Probe
{
  public:
    /** Process-global instance shared by all instrumented sites. */
    static Probe &instance();

    void setEnabled(bool on)
    {
        enabled_ = on;
        buf_.clear();
    }
    bool enabled() const { return enabled_; }

    /** Record that the currently-running event touched (kind, id). */
    void
    touch(ProbeKind kind, std::uint64_t id)
    {
        if (enabled_)
            buf_.push_back(probeKey(kind, id));
    }

    /**
     * Return the touches accumulated since the last drain (sorted,
     * deduplicated) and reset the buffer.
     */
    std::vector<ProbeKey> drain();

    /** Human-readable key, e.g. "slot:3" (counterexample reports). */
    static std::string describe(ProbeKey key);

  private:
    Probe() = default;

    bool enabled_ = false;
    std::vector<ProbeKey> buf_;
};

} // namespace genesys::gmc

#endif // GENESYS_SUPPORT_GMC_PROBE_HH
