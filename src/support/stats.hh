/**
 * @file
 * Lightweight statistics package, loosely modeled on gem5's.
 *
 * Three kinds of statistics cover everything the evaluation needs:
 *  - Scalar:       monotonically accumulated counter.
 *  - Distribution: streaming samples with mean / stdev / min / max and
 *                  percentile queries (samples retained).
 *  - TimeSeries:   (tick, value) samples for utilization/throughput
 *                  traces such as the paper's Figure 14.
 *
 * Statistics register themselves with an optional Registry so that a
 * bench binary can dump every counter at end of simulation.
 */

#ifndef GENESYS_SUPPORT_STATS_HH
#define GENESYS_SUPPORT_STATS_HH

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "types.hh"

namespace genesys::stats
{

class Registry;

/** Base class carrying the name and registry hookup. */
class StatBase
{
  public:
    StatBase(Registry *registry, std::string name);
    virtual ~StatBase();

    StatBase(const StatBase &) = delete;
    StatBase &operator=(const StatBase &) = delete;

    const std::string &name() const { return name_; }

    /** One-line human readable rendering. */
    virtual std::string render() const = 0;

  private:
    Registry *registry_;
    std::string name_;
};

/** Accumulating counter. */
class Scalar : public StatBase
{
  public:
    explicit Scalar(std::string name, Registry *registry = nullptr)
        : StatBase(registry, std::move(name))
    {}

    Scalar &operator+=(double v) { value_ += v; return *this; }
    Scalar &operator++() { value_ += 1.0; return *this; }
    void set(double v) { value_ = v; }
    double value() const { return value_; }

    std::string render() const override;

  private:
    double value_ = 0.0;
};

/** Streaming distribution that retains its samples. */
class Distribution : public StatBase
{
  public:
    explicit Distribution(std::string name, Registry *registry = nullptr)
        : StatBase(registry, std::move(name))
    {}

    void sample(double v) { samples_.push_back(v); sorted_ = false; }
    std::size_t count() const { return samples_.size(); }
    bool empty() const { return samples_.empty(); }

    double sum() const;
    double mean() const;
    /** Sample standard deviation (n-1 denominator; 0 for n < 2). */
    double stdev() const;
    double min() const;
    double max() const;
    /** Linear-interpolated percentile; @p p in [0, 100]. */
    double percentile(double p) const;

    const std::vector<double> &samples() const { return samples_; }
    void reset() { samples_.clear(); sorted_ = false; }

    std::string render() const override;

  private:
    void ensureSorted() const;

    std::vector<double> samples_;
    mutable std::vector<double> sorted_samples_;
    mutable bool sorted_ = false;
};

/** Time-stamped samples for throughput / utilization traces. */
class TimeSeries : public StatBase
{
  public:
    explicit TimeSeries(std::string name, Registry *registry = nullptr)
        : StatBase(registry, std::move(name))
    {}

    void sample(Tick when, double v) { points_.emplace_back(when, v); }
    const std::vector<std::pair<Tick, double>> &points() const
    {
        return points_;
    }

    /**
     * Average of all samples whose tick lies in [from, to).
     * Returns 0 when the window is empty.
     */
    double windowAverage(Tick from, Tick to) const;

    std::string render() const override;

  private:
    std::vector<std::pair<Tick, double>> points_;
};

/** Flat collection of statistics for end-of-run dumps. */
class Registry
{
  public:
    void add(StatBase *stat) { stats_.push_back(stat); }
    void remove(StatBase *stat)
    {
        std::erase(stats_, stat);
    }

    /** Render every registered stat, one per line, name-sorted. */
    std::string dump() const;

  private:
    std::vector<StatBase *> stats_;
};

} // namespace genesys::stats

#endif // GENESYS_SUPPORT_STATS_HH
