/**
 * @file
 * Fundamental scalar types and unit helpers shared across the simulator.
 *
 * Simulated time is measured in integer nanoseconds ("ticks"). The
 * workloads the paper evaluates span microseconds to tens of seconds, so
 * nanosecond resolution leaves ample headroom in 64 bits (~584 years).
 */

#ifndef GENESYS_SUPPORT_TYPES_HH
#define GENESYS_SUPPORT_TYPES_HH

#include <cstdint>
#include <limits>

namespace genesys
{

/** Simulated time in nanoseconds. */
using Tick = std::uint64_t;

/** Sentinel for "never". */
inline constexpr Tick kMaxTick = std::numeric_limits<Tick>::max();

namespace ticks
{

inline constexpr Tick ns(std::uint64_t v) { return v; }
inline constexpr Tick us(std::uint64_t v) { return v * 1000ull; }
inline constexpr Tick ms(std::uint64_t v) { return v * 1000'000ull; }
inline constexpr Tick sec(std::uint64_t v) { return v * 1000'000'000ull; }

inline constexpr double toUs(Tick t) { return static_cast<double>(t) / 1e3; }
inline constexpr double toMs(Tick t) { return static_cast<double>(t) / 1e6; }
inline constexpr double toSec(Tick t) { return static_cast<double>(t) / 1e9; }

} // namespace ticks

namespace size_literals
{

inline constexpr std::uint64_t operator""_KiB(unsigned long long v)
{
    return v * 1024ull;
}

inline constexpr std::uint64_t operator""_MiB(unsigned long long v)
{
    return v * 1024ull * 1024ull;
}

inline constexpr std::uint64_t operator""_GiB(unsigned long long v)
{
    return v * 1024ull * 1024ull * 1024ull;
}

} // namespace size_literals

/**
 * Convert a byte count moved at @p bytes_per_sec into elapsed ticks,
 * rounding up so that tiny transfers still cost at least one tick.
 */
inline constexpr Tick
transferTicks(std::uint64_t bytes, double bytes_per_sec)
{
    if (bytes == 0 || bytes_per_sec <= 0.0)
        return 0;
    const double secs = static_cast<double>(bytes) / bytes_per_sec;
    const double ns = secs * 1e9;
    return ns < 1.0 ? Tick{1} : static_cast<Tick>(ns);
}

} // namespace genesys

#endif // GENESYS_SUPPORT_TYPES_HH
