/**
 * @file
 * Plain-text table formatter used by the benchmark harness to print the
 * rows/series corresponding to each table and figure of the paper.
 */

#ifndef GENESYS_SUPPORT_TABLE_HH
#define GENESYS_SUPPORT_TABLE_HH

#include <initializer_list>
#include <string>
#include <vector>

namespace genesys
{

class TextTable
{
  public:
    explicit TextTable(std::string title = "") : title_(std::move(title)) {}

    /** Define the header row. Resets any existing contents. */
    void setHeader(std::vector<std::string> columns);

    /** Append a data row; it may be shorter than the header. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: format cells from doubles with a fixed precision. */
    void addRow(const std::string &label,
                std::initializer_list<double> values, int precision = 3);

    std::size_t rowCount() const { return rows_.size(); }

    /** Render with column alignment and a rule under the header. */
    std::string render() const;

    /** Render as comma-separated values (header + rows). */
    std::string renderCsv() const;

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace genesys

#endif // GENESYS_SUPPORT_TABLE_HH
