/**
 * @file
 * TextTable implementation.
 */

#include "table.hh"

#include <algorithm>
#include <sstream>

#include "logging.hh"

namespace genesys
{

void
TextTable::setHeader(std::vector<std::string> columns)
{
    header_ = std::move(columns);
    rows_.clear();
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

void
TextTable::addRow(const std::string &label,
                  std::initializer_list<double> values, int precision)
{
    std::vector<std::string> cells;
    cells.reserve(values.size() + 1);
    cells.push_back(label);
    for (double v : values)
        cells.push_back(logging::format("%.*f", precision, v));
    rows_.push_back(std::move(cells));
}

std::string
TextTable::render() const
{
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c >= widths.size())
                widths.resize(c + 1, 0);
            widths[c] = std::max(widths[c], row[c].size());
        }
    }

    std::ostringstream os;
    if (!title_.empty())
        os << "== " << title_ << " ==\n";

    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < widths.size(); ++c) {
            const std::string &cell = c < cells.size() ? cells[c] : "";
            os << cell << std::string(widths[c] - cell.size(), ' ');
            if (c + 1 < widths.size())
                os << "  ";
        }
        os << '\n';
    };

    emit(header_);
    std::size_t rule = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        rule += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    os << std::string(rule, '-') << '\n';
    for (const auto &row : rows_)
        emit(row);
    return os.str();
}

std::string
TextTable::renderCsv() const
{
    std::ostringstream os;
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            if (c)
                os << ',';
            os << cells[c];
        }
        os << '\n';
    };
    emit(header_);
    for (const auto &row : rows_)
        emit(row);
    return os.str();
}

} // namespace genesys
