/**
 * @file
 * Implementation of the logging helpers.
 */

#include "logging.hh"

#include <cstdlib>
#include <vector>

namespace genesys
{

namespace logging
{

namespace
{
int g_verbosity = 2;
} // namespace

int
verbosity()
{
    return g_verbosity;
}

void
setVerbosity(int level)
{
    g_verbosity = level;
}

std::string
vformat(const char *fmt, std::va_list ap)
{
    std::va_list ap_copy;
    va_copy(ap_copy, ap);
    const int needed = std::vsnprintf(nullptr, 0, fmt, ap_copy);
    va_end(ap_copy);
    if (needed < 0)
        return std::string(fmt);
    std::vector<char> buf(static_cast<size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap);
    return std::string(buf.data(), static_cast<size_t>(needed));
}

std::string
format(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string s = vformat(fmt, ap);
    va_end(ap);
    return s;
}

} // namespace logging

void
panic(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string msg = logging::vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    throw PanicError(msg);
}

void
fatal(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string msg = logging::vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    throw FatalError(msg);
}

void
warn(const char *fmt, ...)
{
    if (logging::verbosity() < 1)
        return;
    std::va_list ap;
    va_start(ap, fmt);
    std::string msg = logging::vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
inform(const char *fmt, ...)
{
    if (logging::verbosity() < 2)
        return;
    std::va_list ap;
    va_start(ap, fmt);
    std::string msg = logging::vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

} // namespace genesys
