/**
 * @file
 * Category-based debug tracing, in the spirit of gem5's DPRINTF.
 *
 * Models register trace points under named categories ("genesys",
 * "gpu", "syscall", ...). Categories are disabled by default and can
 * be enabled individually or with "all"; every emitted record carries
 * the simulated timestamp of its event queue. Sinks are pluggable: the
 * default sink writes to stderr, and tests install a capturing sink.
 *
 * Usage:
 *     GENESYS_TRACE(eq, "syscall", "slot %u -> ready", slot_id);
 *
 * The macro evaluates its arguments only when the category is enabled,
 * so disabled tracing costs one hash lookup per call site.
 */

#ifndef GENESYS_SUPPORT_TRACE_HH
#define GENESYS_SUPPORT_TRACE_HH

#include <functional>
#include <string>

#include "support/types.hh"

namespace genesys::trace
{

/** Receives every emitted record. */
using Sink =
    std::function<void(Tick when, const std::string &category,
                       const std::string &message)>;

/** Enable one category (or "all"). */
void enable(const std::string &category);

/** Disable one category (or "all", which also clears the wildcard). */
void disable(const std::string &category);

/** True when records for @p category would be emitted. */
bool enabled(const std::string &category);

/** Disable everything. */
void reset();

/** Replace the sink (nullptr restores the stderr default). */
void setSink(Sink sink);

/** Emit a record (call through GENESYS_TRACE, not directly). */
void emit(Tick when, const std::string &category, const char *fmt,
          ...) __attribute__((format(printf, 3, 4)));

/** Records emitted since process start (cheap health metric). */
std::uint64_t emittedRecords();

} // namespace genesys::trace

/**
 * Trace macro: @p eq_expr is anything with a now() returning Tick
 * (an EventQueue, a Sim, ...).
 */
#define GENESYS_TRACE(eq_expr, category, ...)                            \
    do {                                                                 \
        if (::genesys::trace::enabled(category)) {                       \
            ::genesys::trace::emit((eq_expr).now(), category,            \
                                   __VA_ARGS__);                         \
        }                                                                \
    } while (0)

#endif // GENESYS_SUPPORT_TRACE_HH
