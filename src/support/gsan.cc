#include "support/gsan.hh"

#include "support/logging.hh"

namespace genesys::gsan
{

using logging::format;

const char *
reportKindName(ReportKind kind)
{
    switch (kind) {
    case ReportKind::PayloadRace: return "payload-race";
    case ReportKind::OrderingViolation: return "ordering-violation";
    case ReportKind::LostWakeup: return "lost-wakeup";
    case ReportKind::LostEdge: return "lost-edge";
    }
    return "?";
}

std::string
Report::render() const
{
    return format("gsan#%llu @%llu [%s] %s",
                  static_cast<unsigned long long>(seq),
                  static_cast<unsigned long long>(tick),
                  reportKindName(kind), what.c_str());
}

// ---- thread management -------------------------------------------------

Sanitizer::ThreadId
Sanitizer::makeThread(std::string name)
{
    const ThreadId t = static_cast<ThreadId>(threads_.size());
    ThreadState ts;
    ts.name = std::move(name);
    ts.clock.resize(t + 1, 0);
    ts.clock[t] = 1; // the thread's own epoch starts at 1
    threads_.push_back(std::move(ts));
    return t;
}

Sanitizer::ThreadState &
Sanitizer::thread(ThreadId t)
{
    GENESYS_ASSERT(t < threads_.size(), "gsan: bad thread id %u", t);
    return threads_[t];
}

Sanitizer::ThreadId
Sanitizer::waveThread(std::uint32_t hw_wave_slot)
{
    auto it = waveThreads_.find(hw_wave_slot);
    if (it != waveThreads_.end())
        return it->second;
    const ThreadId t = makeThread(format("wave%u", hw_wave_slot));
    waveThreads_.emplace(hw_wave_slot, t);
    return t;
}

Sanitizer::ThreadId
Sanitizer::workerThread(std::uint32_t worker)
{
    auto it = workerThreads_.find(worker);
    if (it != workerThreads_.end())
        return it->second;
    const ThreadId t = makeThread(format("cpu-worker%u", worker));
    workerThreads_.emplace(worker, t);
    return t;
}

Sanitizer::ThreadId
Sanitizer::namedThread(const std::string &name)
{
    auto it = namedThreads_.find(name);
    if (it != namedThreads_.end())
        return it->second;
    const ThreadId t = makeThread(name);
    namedThreads_.emplace(name, t);
    return t;
}

Sanitizer::ThreadId
Sanitizer::findWaveThread(std::uint32_t hw_wave_slot) const
{
    auto it = waveThreads_.find(hw_wave_slot);
    return it == waveThreads_.end() ? kNoThread : it->second;
}

const std::string &
Sanitizer::threadName(ThreadId t) const
{
    GENESYS_ASSERT(t < threads_.size(), "gsan: bad thread id %u", t);
    return threads_[t].name;
}

// ---- clock algebra -----------------------------------------------------

void
Sanitizer::tick(ThreadId t)
{
    ++thread(t).clock[t];
}

void
Sanitizer::join(Clock &dst, const Clock &src)
{
    if (dst.size() < src.size())
        dst.resize(src.size(), 0);
    for (std::size_t i = 0; i < src.size(); ++i) {
        if (src[i] > dst[i])
            dst[i] = src[i];
    }
}

bool
Sanitizer::ordered(const Epoch &e, const Clock &by)
{
    if (e.tid == kNoThread)
        return true; // no prior access
    return e.tid < by.size() && e.clk <= by[e.tid];
}

void
Sanitizer::edge(ThreadId from, ThreadId to)
{
    if (!enabled_ || from == kNoThread || to == kNoThread)
        return;
    const Clock src = thread(from).clock; // copy: self-edges are no-ops
    join(thread(to).clock, src);
    tick(from);
}

// ---- reporting ---------------------------------------------------------

void
Sanitizer::report(ReportKind kind, std::string what)
{
    const std::uint64_t seq = totalReports_++;
    ++byKind_[static_cast<std::size_t>(kind)];
    if (reports_.size() >= maxStored_)
        return;
    Report r;
    r.kind = kind;
    r.seq = seq;
    r.tick = now_ ? now_() : 0;
    r.what = std::move(what);
    reports_.push_back(std::move(r));
}

std::string
Sanitizer::renderReports() const
{
    std::string out;
    for (const Report &r : reports_) {
        out += r.render();
        out += '\n';
    }
    if (totalReports_ > reports_.size()) {
        out += format("gsan: ... and %llu more report(s) beyond the "
                      "storage cap of %u\n",
                      static_cast<unsigned long long>(
                          totalReports_ - reports_.size()),
                      maxStored_);
    }
    return out;
}

void
Sanitizer::reset()
{
    threads_.clear();
    waveThreads_.clear();
    workerThreads_.clear();
    namedThreads_.clear();
    actor_ = kNoThread;
    slots_.clear();
    barriers_.clear();
    interruptChannel_.clear();
    wakeChannel_.clear();
    droppedWakes_.clear();
    epollChannels_.clear();
    edgeChannels_.clear();
    ringChannels_.clear();
    reports_.clear();
    totalReports_ = 0;
    for (auto &n : byKind_)
        n = 0;
}

// ---- slot protocol -----------------------------------------------------

void
Sanitizer::slotAcquire(std::uint32_t slot)
{
    if (!enabled_ || actor_ == kNoThread)
        return;
    join(thread(actor_).clock, slots_[slot].release);
}

void
Sanitizer::slotRelease(std::uint32_t slot)
{
    if (!enabled_ || actor_ == kNoThread)
        return;
    ThreadState &ts = thread(actor_);
    join(slots_[slot].release, ts.clock);
    tick(actor_);
}

void
Sanitizer::slotWrite(std::uint32_t slot, const char *field)
{
    if (!enabled_ || actor_ == kNoThread)
        return;
    SlotSync &s = slots_[slot];
    const ThreadState &ts = thread(actor_);
    if (s.lastWrite.tid != actor_ && !ordered(s.lastWrite, ts.clock)) {
        report(ReportKind::PayloadRace,
               format("slot %u: %s writes '%s' with no happens-before "
                      "edge from %s's write of '%s'",
                      slot, ts.name.c_str(), field,
                      threadName(s.lastWrite.tid).c_str(),
                      s.lastWriteField.c_str()));
    }
    for (const auto &[rt, rclk] : s.reads) {
        if (rt == actor_)
            continue;
        const Epoch re{rt, rclk};
        if (!ordered(re, ts.clock)) {
            report(ReportKind::PayloadRace,
                   format("slot %u: %s writes '%s' with no "
                          "happens-before edge from %s's read",
                          slot, ts.name.c_str(), field,
                          threadName(rt).c_str()));
        }
    }
    s.lastWrite = {actor_, ts.clock[actor_]};
    s.lastWriteField = field;
    s.reads.clear();
}

void
Sanitizer::slotRead(std::uint32_t slot, const char *field)
{
    if (!enabled_ || actor_ == kNoThread)
        return;
    SlotSync &s = slots_[slot];
    const ThreadState &ts = thread(actor_);
    if (s.lastWrite.tid != actor_ && !ordered(s.lastWrite, ts.clock)) {
        report(ReportKind::PayloadRace,
               format("slot %u: %s reads '%s' with no happens-before "
                      "edge from %s's write of '%s' (payload consumed "
                      "before the Finished transition was observed)",
                      slot, ts.name.c_str(), field,
                      threadName(s.lastWrite.tid).c_str(),
                      s.lastWriteField.c_str()));
    }
    s.reads[actor_] = ts.clock[actor_];
}

void
Sanitizer::slotConsumed(std::uint32_t slot, std::uint32_t hw_wave_slot)
{
    (void)slot;
    if (!enabled_)
        return;
    // The wave drained this finished slot before any halt: whatever
    // wake messages were dropped while it polled are now harmless.
    auto it = droppedWakes_.find(hw_wave_slot);
    if (it != droppedWakes_.end())
        it->second.count = 0;
}

// ---- work-group barriers ----------------------------------------------

void
Sanitizer::barrierArrive(std::uint64_t key, ThreadId t)
{
    if (!enabled_ || t == kNoThread)
        return;
    join(barriers_[key], thread(t).clock);
    tick(t);
}

void
Sanitizer::barrierLeave(std::uint64_t key, ThreadId t)
{
    if (!enabled_ || t == kNoThread)
        return;
    ThreadState &ts = thread(t);
    join(ts.clock, barriers_[key]);
    ts.lastBarrierEvent = ++ts.events;
    // A barrier after a producer/strong invocation discharges the
    // pending post-invocation obligation.
    ts.pendingPostBarrier = false;
}

// ---- interrupt channel -------------------------------------------------

void
Sanitizer::interruptSend(std::uint32_t hw_wave_slot)
{
    if (!enabled_)
        return;
    const ThreadId t = waveThread(hw_wave_slot);
    join(interruptChannel_[hw_wave_slot], thread(t).clock);
    tick(t);
}

void
Sanitizer::interruptReceive(std::uint32_t hw_wave_slot, ThreadId t)
{
    if (!enabled_ || t == kNoThread)
        return;
    join(thread(t).clock, interruptChannel_[hw_wave_slot]);
}

// ---- halt / resume -----------------------------------------------------

void
Sanitizer::waveHalt(std::uint32_t hw_wave_slot)
{
    if (!enabled_)
        return;
    auto it = droppedWakes_.find(hw_wave_slot);
    if (it != droppedWakes_.end() && it->second.count > 0) {
        report(ReportKind::LostWakeup,
               format("wave slot %u halts after %u wake message(s) "
                      "(last from %s) already fired and were dropped; "
                      "on hardware the wavefront would sleep forever",
                      hw_wave_slot, it->second.count,
                      it->second.lastSender.c_str()));
        it->second.count = 0;
    }
}

void
Sanitizer::waveWake(std::uint32_t hw_wave_slot)
{
    if (!enabled_)
        return;
    const ThreadId t = waveThread(hw_wave_slot);
    join(thread(t).clock, wakeChannel_[hw_wave_slot]);
}

void
Sanitizer::resumeDelivered(std::uint32_t hw_wave_slot)
{
    if (!enabled_ || actor_ == kNoThread)
        return;
    join(wakeChannel_[hw_wave_slot], thread(actor_).clock);
    tick(actor_);
}

void
Sanitizer::resumeDropped(std::uint32_t hw_wave_slot)
{
    if (!enabled_)
        return;
    DroppedWake &d = droppedWakes_[hw_wave_slot];
    ++d.count;
    d.lastSender =
        actor_ == kNoThread ? std::string("?") : threadName(actor_);
    // The wake still releases its clock: if the wave later *does*
    // observe the result (by polling), the edge is real.
    if (actor_ != kNoThread) {
        join(wakeChannel_[hw_wave_slot], thread(actor_).clock);
        tick(actor_);
    }
}

// ---- epoll readiness channel -------------------------------------------

void
Sanitizer::epollCheck(std::uint64_t key, std::uint64_t waiter)
{
    if (!enabled_)
        return;
    EpollChannel &ch = epollChannels_[key];
    ch.seen[waiter] = ch.seq;
}

void
Sanitizer::epollSleep(std::uint64_t key, std::uint64_t waiter)
{
    if (!enabled_)
        return;
    EpollChannel &ch = epollChannels_[key];
    auto it = ch.seen.find(waiter);
    if (it == ch.seen.end())
        return; // sleep without a recorded check: nothing to compare
    if (ch.seq != it->second) {
        report(ReportKind::LostWakeup,
               format("epoll instance %llu: waiter %llu sleeps after "
                      "%llu readiness notification(s) (last from %s) "
                      "fired inside its check-then-sleep window; the "
                      "level-triggered wait would block forever",
                      static_cast<unsigned long long>(key),
                      static_cast<unsigned long long>(waiter),
                      static_cast<unsigned long long>(ch.seq -
                                                      it->second),
                      ch.lastNotifier.empty() ? "?"
                                              : ch.lastNotifier.c_str()));
        it->second = ch.seq; // one report per missed window
    }
}

void
Sanitizer::epollWake(std::uint64_t key, std::uint64_t waiter)
{
    if (!enabled_)
        return;
    EpollChannel &ch = epollChannels_[key];
    ch.seen.erase(waiter);
    if (actor_ != kNoThread)
        join(thread(actor_).clock, ch.clock);
}

void
Sanitizer::epollNotify(std::uint64_t key)
{
    if (!enabled_)
        return;
    EpollChannel &ch = epollChannels_[key];
    ++ch.seq;
    ch.lastNotifier =
        actor_ == kNoThread ? std::string("?") : threadName(actor_);
    if (actor_ != kNoThread) {
        join(ch.clock, thread(actor_).clock);
        tick(actor_);
    }
}

// ---- epoll edge-event channel ------------------------------------------

void
Sanitizer::epollEdgeSeen(std::uint64_t key)
{
    if (!enabled_)
        return;
    EdgeChannel &ch = edgeChannels_[key];
    if (ch.seen > ch.recorded) {
        // A previously-observed transition was never latched. The
        // probe state advanced past it, so no later notification can
        // re-derive the edge: the consumer on the other end sleeps
        // until the level drops and rises again — possibly forever.
        report(ReportKind::LostEdge,
               format("epoll instance %llu: %llu readiness edge(s) "
                      "(last observed by %s) were seen but never "
                      "recorded as pending; an edge-triggered waiter "
                      "relying on replayed edges blocks forever",
                      static_cast<unsigned long long>(key),
                      static_cast<unsigned long long>(ch.seen -
                                                      ch.recorded),
                      ch.lastSeer.empty() ? "?" : ch.lastSeer.c_str()));
        ch.seen = ch.recorded; // one report per loss
    }
    ++ch.seen;
    ch.lastSeer =
        actor_ == kNoThread ? std::string("?") : threadName(actor_);
}

void
Sanitizer::epollEdgeRecord(std::uint64_t key)
{
    if (!enabled_)
        return;
    EdgeChannel &ch = edgeChannels_[key];
    ++ch.recorded;
    if (actor_ != kNoThread) {
        join(ch.clock, thread(actor_).clock);
        tick(actor_);
    }
}

void
Sanitizer::epollEdgeDeliver(std::uint64_t key)
{
    if (!enabled_)
        return;
    EdgeChannel &ch = edgeChannels_[key];
    ++ch.delivered;
    if (actor_ != kNoThread)
        join(thread(actor_).clock, ch.clock);
}

// ---- SQ/CQ ring channel ------------------------------------------------

void
Sanitizer::ringPublish(std::uint64_t key, std::uint64_t entries)
{
    if (!enabled_ || actor_ == kNoThread)
        return;
    RingChannel &ch = ringChannels_[key];
    ThreadState &ts = thread(actor_);
    join(ch.clock, ts.clock);
    ch.lastPublish = {actor_, ts.clock[actor_]};
    ch.lastPublisher = ts.name;
    ch.published += entries;
    tick(actor_);
}

void
Sanitizer::ringDoorbell(std::uint64_t key)
{
    if (!enabled_ || actor_ == kNoThread)
        return;
    // The doorbell releases too: a consumer woken by it must observe
    // everything published before it rang.
    RingChannel &ch = ringChannels_[key];
    join(ch.clock, thread(actor_).clock);
    tick(actor_);
}

void
Sanitizer::ringConsume(std::uint64_t key)
{
    if (!enabled_ || actor_ == kNoThread)
        return;
    RingChannel &ch = ringChannels_[key];
    if (ch.consumed + 1 > ch.published) {
        report(ReportKind::OrderingViolation,
               format("ring %llu: %s consumes entry %llu but only "
                      "%llu publish(es) happened; the consume "
                      "overtakes the publish",
                      static_cast<unsigned long long>(key),
                      threadName(actor_).c_str(),
                      static_cast<unsigned long long>(ch.consumed),
                      static_cast<unsigned long long>(ch.published)));
    }
    ++ch.consumed;
    join(thread(actor_).clock, ch.clock);
    tick(actor_);
}

void
Sanitizer::ringObserve(std::uint64_t key)
{
    if (!enabled_ || actor_ == kNoThread)
        return;
    // Pure acquire: a waiter's baseline tail read legitimately
    // precedes the first publish, so no overtake check here.
    RingChannel &ch = ringChannels_[key];
    join(thread(actor_).clock, ch.clock);
    tick(actor_);
}

void
Sanitizer::ringConsumeRacy(std::uint64_t key)
{
    if (!enabled_ || actor_ == kNoThread)
        return;
    RingChannel &ch = ringChannels_[key];
    const ThreadState &ts = thread(actor_);
    if (ch.lastPublish.tid != actor_ &&
        !ordered(ch.lastPublish, ts.clock)) {
        report(ReportKind::PayloadRace,
               format("ring %llu: %s reads an entry with no "
                      "happens-before edge from %s's publish (entry "
                      "consumed without the ring acquire)",
                      static_cast<unsigned long long>(key),
                      ts.name.c_str(),
                      ch.lastPublisher.empty()
                          ? "?"
                          : ch.lastPublisher.c_str()));
    }
}

// ---- ordering contract -------------------------------------------------

void
Sanitizer::invocationBegin(ThreadId t, bool need_pre_barrier, int sysno,
                           const char *ordering)
{
    if (!enabled_ || t == kNoThread)
        return;
    ThreadState &ts = thread(t);
    if (ts.pendingPostBarrier) {
        report(ReportKind::OrderingViolation,
               format("%s: new invocation (sysno %d) begins before the "
                      "post-invocation work-group barrier required by "
                      "the previous %s",
                      ts.name.c_str(), sysno,
                      ts.pendingPostWhat.c_str()));
        ts.pendingPostBarrier = false;
    }
    if (need_pre_barrier && ts.lastBarrierEvent <= ts.lastInvocationEvent) {
        report(ReportKind::OrderingViolation,
               format("%s: %s invocation of sysno %d is missing its "
                      "pre-invocation work-group barrier",
                      ts.name.c_str(), ordering, sysno));
    }
    ++ts.events;
}

void
Sanitizer::invocationEnd(ThreadId t, bool need_post_barrier, int sysno,
                         const char *ordering)
{
    if (!enabled_ || t == kNoThread)
        return;
    ThreadState &ts = thread(t);
    ts.lastInvocationEvent = ++ts.events;
    if (need_post_barrier) {
        ts.pendingPostBarrier = true;
        ts.pendingPostWhat = format("%s invocation of sysno %d",
                                    ordering, sysno);
    }
}

void
Sanitizer::waveRetire(std::uint32_t hw_wave_slot)
{
    if (!enabled_)
        return;
    const ThreadId t = findWaveThread(hw_wave_slot);
    if (t == kNoThread)
        return;
    ThreadState &ts = thread(t);
    if (ts.pendingPostBarrier) {
        report(ReportKind::OrderingViolation,
               format("%s: wavefront retires without the "
                      "post-invocation work-group barrier required by "
                      "its %s",
                      ts.name.c_str(), ts.pendingPostWhat.c_str()));
        ts.pendingPostBarrier = false;
    }
    // Hardware wave slots are recycled: the next wavefront occupying
    // this slot must earn its own barrier credit, not inherit the
    // retiring wave's.
    ts.lastBarrierEvent = 0;
    ts.lastInvocationEvent = ts.events;
}

} // namespace genesys::gsan
