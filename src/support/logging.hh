/**
 * @file
 * gem5-style status and error reporting helpers.
 *
 * Severity ladder (Section "M5 Status Messages" of the gem5 style guide):
 *  - panic():  an internal invariant was violated; this is a simulator bug.
 *              Aborts so a debugger/core dump can inspect the state.
 *  - fatal():  the simulation cannot continue because of a user error
 *              (bad configuration, invalid arguments). Exits cleanly.
 *  - warn():   something is off but execution can continue.
 *  - inform(): plain status output, no connotation of misbehaviour.
 */

#ifndef GENESYS_SUPPORT_LOGGING_HH
#define GENESYS_SUPPORT_LOGGING_HH

#include <cstdarg>
#include <cstdio>
#include <stdexcept>
#include <string>

namespace genesys
{

/** Thrown by fatal()/panic() so tests can assert on error paths. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &what_arg)
        : std::runtime_error(what_arg)
    {}
};

class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &what_arg)
        : std::logic_error(what_arg)
    {}
};

namespace logging
{

/** Verbosity control: 0 = errors only, 1 = warn, 2 = inform (default). */
int verbosity();
void setVerbosity(int level);

std::string vformat(const char *fmt, std::va_list ap);
std::string format(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace logging

/**
 * Report an internal simulator bug and throw PanicError.
 * Never returns normally.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an unrecoverable user/configuration error and throw FatalError.
 * Never returns normally.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report a recoverable anomaly. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Report plain status. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** panic() unless the condition holds. */
#define GENESYS_ASSERT(cond, ...)                                          \
    do {                                                                   \
        if (!(cond)) {                                                     \
            ::genesys::panic("assertion '%s' failed: %s", #cond,           \
                             ::genesys::logging::format(__VA_ARGS__)       \
                                 .c_str());                                \
        }                                                                  \
    } while (0)

} // namespace genesys

#endif // GENESYS_SUPPORT_LOGGING_HH
