/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic element of the simulator (workload data, request
 * inter-arrival jitter, hash keys) draws from an explicitly seeded
 * Random instance so that each experiment is exactly reproducible.
 * The generator is xoshiro256** — fast, high quality, and independent
 * of the C++ standard library's unspecified distributions.
 */

#ifndef GENESYS_SUPPORT_RANDOM_HH
#define GENESYS_SUPPORT_RANDOM_HH

#include <cstdint>
#include <string>

namespace genesys
{

class Random
{
  public:
    explicit Random(std::uint64_t seed = 0x9E3779B97F4A7C15ull)
    {
        // SplitMix64 seeding, as recommended by the xoshiro authors.
        std::uint64_t x = seed;
        for (auto &word : state_) {
            x += 0x9E3779B97F4A7C15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
            z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @p bound must be non-zero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Lemire's nearly-divisionless bounded generation (biased by at
        // most 2^-64 per draw, irrelevant for workload generation).
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Uniform integer in [lo, hi], inclusive. */
    std::int64_t
    between(std::int64_t lo, std::int64_t hi)
    {
        return lo + static_cast<std::int64_t>(
                        below(static_cast<std::uint64_t>(hi - lo) + 1));
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw. */
    bool chance(double p) { return uniform() < p; }

    /** Random lowercase-alpha string of @p len characters. */
    std::string
    lowerAlpha(std::size_t len)
    {
        std::string s(len, 'a');
        for (auto &c : s)
            c = static_cast<char>('a' + below(26));
        return s;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4] = {};
};

} // namespace genesys

#endif // GENESYS_SUPPORT_RANDOM_HH
