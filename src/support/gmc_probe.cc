/**
 * @file
 * gmc footprint probe implementation.
 */

#include "gmc_probe.hh"

#include <algorithm>

#include "support/logging.hh"

namespace genesys::gmc
{

using logging::format;

Probe &
Probe::instance()
{
    static Probe probe;
    return probe;
}

std::vector<ProbeKey>
Probe::drain()
{
    std::vector<ProbeKey> out = std::move(buf_);
    buf_.clear();
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
}

std::string
Probe::describe(ProbeKey key)
{
    const auto kind = static_cast<ProbeKind>(key >> 56);
    const std::uint64_t id = key & 0x00FF'FFFF'FFFF'FFFFull;
    const char *name = "?";
    switch (kind) {
      case ProbeKind::Slot:
        name = "slot";
        break;
      case ProbeKind::Doorbell:
        name = "doorbell";
        break;
      case ProbeKind::Worker:
        name = "worker";
        break;
      case ProbeKind::Wave:
        name = "wave";
        break;
      case ProbeKind::Core:
        name = "core";
        break;
      case ProbeKind::Ring:
        name = "ring";
        break;
    }
    return format("%s:%llu", name, static_cast<unsigned long long>(id));
}

} // namespace genesys::gmc
