/**
 * @file
 * gsan — a happens-before race & ordering sanitizer for the GENESYS
 * syscall area.
 *
 * The paper's correctness argument lives in its ordering/blocking
 * design space (Section V, Fig 6): a relaxed-ordered invocation is
 * only safe with the right work-group barrier before/after it, and a
 * slot's payload (arguments / repurposed return value, Fig 5) may only
 * be read after the Finished state has been observed through the
 * coherent L2. Nothing in the simulator *checked* those invariants: a
 * dropped barrier or a payload read racing the CPU writer would
 * silently produce wrong results. gsan checks them mechanically, the
 * way TSan checks a pthread program.
 *
 * Model. The unit of logical concurrency is a scheduled agent: one
 * thread per resident hardware wavefront (lanes execute in lockstep
 * inside the wave's coroutine, and each lane owns a private slot, so
 * per-lane accesses are distinguished by *variable*, not by thread)
 * and one thread per OS workqueue worker (plus the polling daemon).
 * Every thread carries a vector clock. Happens-before edges are
 * created by exactly the events the hardware/OS contract provides:
 *
 *   - slot FSM transitions: each Fig 6 edge is an atomic RMW on the
 *     slot's cache line, so every transition is an acquire of the
 *     slot's release clock; publish (Populating->Ready) and complete
 *     (Processing->Finished/Free) additionally release, because they
 *     are the two points that hand payload ownership across the
 *     CPU/GPU boundary;
 *   - work-group barriers (all arrivals join, all departures acquire);
 *   - the s_sendmsg interrupt (wave -> servicing worker);
 *   - halt/resume wake messages (completing CPU thread -> woken wave).
 *
 * On top of the clocks gsan reports three violation classes:
 *  (a) PayloadRace      — a slot payload access with no happens-before
 *                         edge from the last conflicting access;
 *  (b) OrderingViolation — a work-group invocation missing the
 *                         barrier its ordering/role contract requires
 *                         (strong: before and after; relaxed consumer:
 *                         before; relaxed producer: after);
 *  (c) LostWakeup       — a wavefront halts after the CPU's wake
 *                         message already fired and was dropped (the
 *                         requester would sleep forever on hardware).
 *
 * gsan is always compiled in and toggled at runtime (default off; all
 * hooks are an early-out branch when disabled). Reports carry a
 * monotone sequence number and the simulated tick, so a fixed seed
 * yields byte-identical report text that CI can diff. Knobs live
 * under /sys/genesys/gsan/, mirroring the fault subsystem.
 */

#ifndef GENESYS_SUPPORT_GSAN_HH
#define GENESYS_SUPPORT_GSAN_HH

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

namespace genesys::gsan
{

enum class ReportKind : std::uint8_t
{
    PayloadRace,
    OrderingViolation,
    LostWakeup,
    LostEdge,
};

const char *reportKindName(ReportKind kind);

/** One sanitizer finding; rendering is deterministic for a fixed seed. */
struct Report
{
    ReportKind kind = ReportKind::PayloadRace;
    std::uint64_t seq = 0;  ///< 0-based, in detection order
    std::uint64_t tick = 0; ///< simulated time of detection
    std::string what;

    std::string render() const;
};

class Sanitizer
{
  public:
    using ThreadId = std::uint32_t;
    static constexpr ThreadId kNoThread = 0xFFFFFFFFu;

    // ---- configuration / toggling ---------------------------------
    void setEnabled(bool on) { enabled_ = on; }
    bool enabled() const { return enabled_; }

    /** Reports beyond this many are counted but not stored. */
    void setMaxStoredReports(std::uint32_t n) { maxStored_ = n; }
    std::uint32_t maxStoredReports() const { return maxStored_; }

    /** Clock source for report timestamps (simulated ticks). */
    void setNow(std::function<std::uint64_t()> now)
    {
        now_ = std::move(now);
    }

    // ---- logical threads ------------------------------------------
    /** Thread of the wavefront in hardware wave slot @p hw (lazy). */
    ThreadId waveThread(std::uint32_t hw_wave_slot);
    /** Thread of OS workqueue worker @p worker (lazy). */
    ThreadId workerThread(std::uint32_t worker);
    /** Ad-hoc named thread (e.g. the polling daemon; lazy). */
    ThreadId namedThread(const std::string &name);
    /** Existing wave thread, or kNoThread if it never registered. */
    ThreadId findWaveThread(std::uint32_t hw_wave_slot) const;
    const std::string &threadName(ThreadId t) const;
    std::size_t threadCount() const { return threads_.size(); }

    /**
     * The thread performing subsequent slot operations. Slot hooks run
     * inside SyscallSlot (which does not know its caller), so every
     * protocol call site names itself first. Safe because slot methods
     * never suspend between setActor() and the hook.
     */
    void setActor(ThreadId t) { actor_ = t; }
    ThreadId actor() const { return actor_; }

    /** Generic happens-before edge from @p from to @p to. */
    void edge(ThreadId from, ThreadId to);

    // ---- slot protocol (payload + release clocks; use the actor) --
    void slotAcquire(std::uint32_t slot);
    void slotRelease(std::uint32_t slot);
    void slotWrite(std::uint32_t slot, const char *field);
    void slotRead(std::uint32_t slot, const char *field);
    /** A finished slot of @p hw_wave_slot was consumed by its wave. */
    void slotConsumed(std::uint32_t slot, std::uint32_t hw_wave_slot);

    // ---- work-group barriers --------------------------------------
    void barrierArrive(std::uint64_t key, ThreadId t);
    void barrierLeave(std::uint64_t key, ThreadId t);

    // ---- interrupt channel (per hardware wave slot) ---------------
    void interruptSend(std::uint32_t hw_wave_slot);
    void interruptReceive(std::uint32_t hw_wave_slot, ThreadId t);

    // ---- halt / resume (lost-wakeup detection) --------------------
    /** The wave in @p hw_wave_slot is about to halt. */
    void waveHalt(std::uint32_t hw_wave_slot);
    /** The wave in @p hw_wave_slot woke from a halt. */
    void waveWake(std::uint32_t hw_wave_slot);
    /** A wake message reached a halted wave (sender = actor). */
    void resumeDelivered(std::uint32_t hw_wave_slot);
    /** A wake message found the wave not halted and was dropped. */
    void resumeDropped(std::uint32_t hw_wave_slot);

    // ---- epoll readiness channel (lost-wakeup detection) ----------
    /**
     * Waiter @p waiter probed epoll instance @p key and found nothing
     * ready. Records the channel's notification sequence so a sleep
     * across a later notification is detectable.
     */
    void epollCheck(std::uint64_t key, std::uint64_t waiter);
    /**
     * Waiter is about to block on instance @p key. If the channel's
     * sequence advanced since its epollCheck, the readiness event
     * landed in the check-then-sleep window and the wake is lost.
     */
    void epollSleep(std::uint64_t key, std::uint64_t waiter);
    /** Waiter woke from its epoll sleep (acquires the channel). */
    void epollWake(std::uint64_t key, std::uint64_t waiter);
    /** A readiness event fired on instance @p key (sender = actor). */
    void epollNotify(std::uint64_t key);

    // ---- epoll edge-event channel (lost-edge detection) -----------
    /**
     * An edge-mode interest on instance @p key observed a readiness
     * transition (probe state advanced). Every observation must be
     * followed by an epollEdgeRecord — an observation with no record
     * means the edge was dropped and, since the probe state already
     * moved past it, can never be re-derived: reported as LostEdge.
     */
    void epollEdgeSeen(std::uint64_t key);
    /** The observed edge was latched as pending (release). */
    void epollEdgeRecord(std::uint64_t key);
    /** A latched edge was replayed to a waiter (acquire). */
    void epollEdgeDeliver(std::uint64_t key);

    // ---- SQ/CQ ring channel (DESIGN.md §13) -----------------------
    /**
     * The actor release-published @p entries entries on ring @p key
     * (tail advance): its clock joins the ring's channel clock and the
     * publish is recorded as the channel's last release epoch.
     */
    void ringPublish(std::uint64_t key, std::uint64_t entries);
    /** The actor rang the batch doorbell for ring @p key (release). */
    void ringDoorbell(std::uint64_t key);
    /**
     * The actor acquire-consumed the oldest entry of ring @p key
     * (head advance). Reports an OrderingViolation if consumes
     * overtake publishes.
     */
    void ringConsume(std::uint64_t key);
    /**
     * The actor acquire-observed ring @p key's published tail without
     * consuming (a CQ waiter noticing the completion counter moved).
     */
    void ringObserve(std::uint64_t key);
    /**
     * The actor read an entry of ring @p key WITHOUT an acquire.
     * Reports a PayloadRace unless the last publish already
     * happens-before the actor (seeded-bug hook; never a clean path).
     */
    void ringConsumeRacy(std::uint64_t key);

    // ---- ordering contract (work-group granularity) ---------------
    void invocationBegin(ThreadId t, bool need_pre_barrier, int sysno,
                         const char *ordering);
    void invocationEnd(ThreadId t, bool need_post_barrier, int sysno,
                       const char *ordering);
    /** The wavefront program of @p hw_wave_slot completed. */
    void waveRetire(std::uint32_t hw_wave_slot);

    // ---- reports ---------------------------------------------------
    std::uint64_t reportCount() const { return totalReports_; }
    std::uint64_t countOf(ReportKind kind) const
    {
        return byKind_[static_cast<std::size_t>(kind)];
    }
    const std::vector<Report> &reports() const { return reports_; }
    /** All stored reports, one per line, in detection order. */
    std::string renderReports() const;

    /** Forget clocks, threads, and reports; keep configuration. */
    void reset();

  private:
    /// Vector clock indexed by ThreadId; missing entries read as 0.
    using Clock = std::vector<std::uint32_t>;

    struct Epoch
    {
        ThreadId tid = kNoThread;
        std::uint32_t clk = 0;
    };

    struct ThreadState
    {
        std::string name;
        Clock clock;
        // Ordering-contract bookkeeping (monotone event counter).
        std::uint64_t events = 0;
        std::uint64_t lastBarrierEvent = 0;
        std::uint64_t lastInvocationEvent = 0;
        bool pendingPostBarrier = false;
        std::string pendingPostWhat;
    };

    struct SlotSync
    {
        Clock release;
        Epoch lastWrite;
        std::string lastWriteField;
        /// Reads since the last write (std::map: deterministic order).
        std::map<ThreadId, std::uint32_t> reads;
    };

    ThreadId makeThread(std::string name);
    ThreadState &thread(ThreadId t);
    void tick(ThreadId t);
    static void join(Clock &dst, const Clock &src);
    static bool ordered(const Epoch &e, const Clock &by);
    void report(ReportKind kind, std::string what);

    bool enabled_ = false;
    std::uint32_t maxStored_ = 256;
    std::function<std::uint64_t()> now_;

    std::vector<ThreadState> threads_;
    std::unordered_map<std::uint32_t, ThreadId> waveThreads_;
    std::unordered_map<std::uint32_t, ThreadId> workerThreads_;
    std::unordered_map<std::string, ThreadId> namedThreads_;
    ThreadId actor_ = kNoThread;

    std::unordered_map<std::uint32_t, SlotSync> slots_;
    std::unordered_map<std::uint64_t, Clock> barriers_;
    std::unordered_map<std::uint32_t, Clock> interruptChannel_;
    std::unordered_map<std::uint32_t, Clock> wakeChannel_;
    struct DroppedWake
    {
        std::uint32_t count = 0;
        std::string lastSender;
    };
    std::unordered_map<std::uint32_t, DroppedWake> droppedWakes_;
    struct EpollChannel
    {
        Clock clock;
        std::uint64_t seq = 0; ///< notifications so far.
        std::string lastNotifier;
        /// Sequence last observed by each waiter's epollCheck
        /// (std::map: deterministic order).
        std::map<std::uint64_t, std::uint64_t> seen;
    };
    std::unordered_map<std::uint64_t, EpollChannel> epollChannels_;
    struct EdgeChannel
    {
        Clock clock;
        std::uint64_t seen = 0;      ///< transitions observed.
        std::uint64_t recorded = 0;  ///< transitions latched.
        std::uint64_t delivered = 0; ///< latched edges replayed.
        std::string lastSeer;
    };
    std::unordered_map<std::uint64_t, EdgeChannel> edgeChannels_;
    struct RingChannel
    {
        Clock clock;
        std::uint64_t published = 0; ///< publish events so far
        std::uint64_t consumed = 0;  ///< consume events so far
        Epoch lastPublish;
        std::string lastPublisher;
    };
    std::unordered_map<std::uint64_t, RingChannel> ringChannels_;

    std::vector<Report> reports_;
    std::uint64_t totalReports_ = 0;
    std::uint64_t byKind_[4] = {};
};

} // namespace genesys::gsan

#endif // GENESYS_SUPPORT_GSAN_HH
