/**
 * @file
 * Statistics package implementation.
 */

#include "stats.hh"

#include <sstream>

#include "logging.hh"

namespace genesys::stats
{

StatBase::StatBase(Registry *registry, std::string name)
    : registry_(registry), name_(std::move(name))
{
    if (registry_)
        registry_->add(this);
}

StatBase::~StatBase()
{
    if (registry_)
        registry_->remove(this);
}

std::string
Scalar::render() const
{
    return logging::format("%-40s %.6g", name().c_str(), value_);
}

double
Distribution::sum() const
{
    double s = 0.0;
    for (double v : samples_)
        s += v;
    return s;
}

double
Distribution::mean() const
{
    return samples_.empty() ? 0.0
                            : sum() / static_cast<double>(samples_.size());
}

double
Distribution::stdev() const
{
    const std::size_t n = samples_.size();
    if (n < 2)
        return 0.0;
    const double m = mean();
    double acc = 0.0;
    for (double v : samples_)
        acc += (v - m) * (v - m);
    return std::sqrt(acc / static_cast<double>(n - 1));
}

double
Distribution::min() const
{
    if (samples_.empty())
        return 0.0;
    return *std::min_element(samples_.begin(), samples_.end());
}

double
Distribution::max() const
{
    if (samples_.empty())
        return 0.0;
    return *std::max_element(samples_.begin(), samples_.end());
}

void
Distribution::ensureSorted() const
{
    if (sorted_)
        return;
    sorted_samples_ = samples_;
    std::sort(sorted_samples_.begin(), sorted_samples_.end());
    sorted_ = true;
}

double
Distribution::percentile(double p) const
{
    if (samples_.empty())
        return 0.0;
    if (p < 0.0 || p > 100.0)
        panic("percentile %f out of range", p);
    ensureSorted();
    const double rank =
        p / 100.0 * static_cast<double>(sorted_samples_.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const auto hi = std::min(lo + 1, sorted_samples_.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return sorted_samples_[lo] * (1.0 - frac) + sorted_samples_[hi] * frac;
}

std::string
Distribution::render() const
{
    return logging::format(
        "%-40s n=%zu mean=%.6g stdev=%.6g min=%.6g max=%.6g",
        name().c_str(), count(), mean(), stdev(), min(), max());
}

double
TimeSeries::windowAverage(Tick from, Tick to) const
{
    double sum = 0.0;
    std::size_t n = 0;
    for (const auto &[when, v] : points_) {
        if (when >= from && when < to) {
            sum += v;
            ++n;
        }
    }
    return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

std::string
TimeSeries::render() const
{
    return logging::format("%-40s points=%zu", name().c_str(),
                           points_.size());
}

std::string
Registry::dump() const
{
    std::vector<StatBase *> ordered = stats_;
    std::sort(ordered.begin(), ordered.end(),
              [](const StatBase *a, const StatBase *b) {
                  return a->name() < b->name();
              });
    std::ostringstream os;
    for (const StatBase *s : ordered)
        os << s->render() << '\n';
    return os.str();
}

} // namespace genesys::stats
