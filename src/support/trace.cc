/**
 * @file
 * Trace implementation.
 */

#include "trace.hh"

#include <cstdarg>
#include <cstdio>
#include <unordered_set>

#include "support/logging.hh"

namespace genesys::trace
{

namespace
{

struct State
{
    std::unordered_set<std::string> categories;
    bool all = false;
    Sink sink;
    std::uint64_t emitted = 0;
};

State &
state()
{
    static State s;
    return s;
}

void
defaultSink(Tick when, const std::string &category,
            const std::string &message)
{
    std::fprintf(stderr, "%12llu: [%s] %s\n",
                 static_cast<unsigned long long>(when),
                 category.c_str(), message.c_str());
}

} // namespace

void
enable(const std::string &category)
{
    if (category == "all")
        state().all = true;
    else
        state().categories.insert(category);
}

void
disable(const std::string &category)
{
    if (category == "all") {
        state().all = false;
    } else {
        state().categories.erase(category);
    }
}

bool
enabled(const std::string &category)
{
    const State &s = state();
    return s.all || s.categories.contains(category);
}

void
reset()
{
    state().all = false;
    state().categories.clear();
}

void
setSink(Sink sink)
{
    state().sink = std::move(sink);
}

void
emit(Tick when, const std::string &category, const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    const std::string msg = logging::vformat(fmt, ap);
    va_end(ap);
    ++state().emitted;
    if (state().sink)
        state().sink(when, category, msg);
    else
        defaultSink(when, category, msg);
}

std::uint64_t
emittedRecords()
{
    return state().emitted;
}

} // namespace genesys::trace
