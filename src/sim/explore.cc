/**
 * @file
 * gmc schedule-space explorer implementation.
 */

#include "explore.hh"

#include <algorithm>
#include <utility>

#include "support/gmc_probe.hh"
#include "support/logging.hh"

namespace genesys::sim::gmc
{

using logging::format;

std::string
renderSchedule(const Schedule &schedule)
{
    if (schedule.empty())
        return "fifo";
    std::string out;
    for (std::size_t i = 0; i < schedule.size(); ++i) {
        if (i > 0)
            out += '.';
        out += std::to_string(schedule[i]);
    }
    return out;
}

bool
parseSchedule(const std::string &text, Schedule &out)
{
    out.clear();
    if (text.empty() || text == "fifo")
        return true;
    std::size_t pos = 0;
    while (pos < text.size()) {
        std::size_t end = text.find('.', pos);
        if (end == std::string::npos)
            end = text.size();
        if (end == pos)
            return false; // empty component ("1..2", ".1", "1.")
        std::uint64_t value = 0;
        for (std::size_t i = pos; i < end; ++i) {
            const char c = text[i];
            if (c < '0' || c > '9')
                return false;
            value = value * 10 + static_cast<std::uint64_t>(c - '0');
            if (value > 0xFFFF'FFFFull)
                return false;
        }
        out.push_back(static_cast<Choice>(value));
        pos = end + 1;
    }
    if (text.back() == '.')
        return false;
    // Canonicalize: trailing zeros are implied FIFO choices.
    while (!out.empty() && out.back() == 0)
        out.pop_back();
    return true;
}

std::size_t
ScheduleDriver::pick(Tick now,
                     const std::vector<TieBreakCandidate> &candidates)
{
    (void)now;
    const std::size_t point = points_.size();
    std::size_t chosen = 0;
    if (point < prefix_.size()) {
        chosen = prefix_[point];
        if (chosen >= candidates.size()) {
            panic("gmc replay: choice %zu at point %zu out of range "
                  "(%zu candidates) — schedule is not from this "
                  "scenario/config",
                  chosen, point, candidates.size());
        }
    }
    ChoicePoint cp;
    cp.execIndex = trace_.size();
    cp.candidates.reserve(candidates.size());
    for (const TieBreakCandidate &c : candidates)
        cp.candidates.push_back(c.id);
    cp.chosen = chosen;
    points_.push_back(std::move(cp));
    return chosen;
}

void
ScheduleDriver::onExecute(EventId id, Tick when)
{
    ExecRecord rec;
    rec.id = id;
    rec.when = when;
    rec.footprint = genesys::gmc::Probe::instance().drain();
    trace_.push_back(std::move(rec));
}

Schedule
ScheduleDriver::chosenSchedule() const
{
    Schedule out;
    out.reserve(points_.size());
    for (const ChoicePoint &cp : points_)
        out.push_back(static_cast<Choice>(cp.chosen));
    while (!out.empty() && out.back() == 0)
        out.pop_back();
    return out;
}

namespace
{

bool
footprintsIntersect(const std::vector<std::uint64_t> &a,
                    const std::vector<std::uint64_t> &b)
{
    // Both sides are sorted (Probe::drain()).
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < a.size() && j < b.size()) {
        if (a[i] == b[j])
            return true;
        if (a[i] < b[j])
            ++i;
        else
            ++j;
    }
    return false;
}

/**
 * Partial-order reduction test: can the alternative candidate at
 * index @p alt of choice point @p point be skipped because running it
 * first provably commutes into an already-covered interleaving?
 *
 * The alternative commutes when every event executed from the choice
 * point until the alternative's own execution touched a disjoint
 * footprint: swapping it to the front yields a Mazurkiewicz-equivalent
 * trace *of this run*. An alternative that never executed in this run
 * (descheduled, or the run ended/violated first) must be explored.
 *
 * This is a heuristic, not a sound DPOR: equivalence of the immediate
 * commutation says nothing about the choice points that only arise
 * deeper in the pruned subtree, and a bug needing several dependent
 * flips stays hidden (observed: the doorbell-before-publish mutant is
 * found exhaustively but pruned away here). Hence ExploreOptions::por
 * defaults to off; bench/abl_gmc quantifies the reduction ratio and
 * cross-checks POR against exhaustive enumeration per config.
 */
bool
porPrunable(const ScheduleDriver &driver, std::size_t point,
            std::size_t alt)
{
    const ChoicePoint &cp = driver.points()[point];
    const EventId altId = cp.candidates[alt];
    const auto &trace = driver.trace();
    std::size_t altExec = trace.size();
    for (std::size_t k = cp.execIndex; k < trace.size(); ++k) {
        if (trace[k].id == altId) {
            altExec = k;
            break;
        }
    }
    if (altExec == trace.size())
        return false; // never executed: behavior unknown, explore it
    const auto &altFoot = trace[altExec].footprint;
    for (std::size_t k = cp.execIndex; k < altExec; ++k) {
        if (footprintsIntersect(trace[k].footprint, altFoot))
            return false; // dependent pair: order can matter
    }
    return true;
}

} // namespace

ExploreResult
explore(const RunFn &run, const ExploreOptions &options)
{
    ExploreResult result;
    std::vector<Schedule> work;
    work.push_back(Schedule{});
    bool first = true;
    bool stopped = false;

    while (!work.empty() && !stopped) {
        Schedule prefix = std::move(work.back());
        work.pop_back();

        ScheduleDriver driver(std::move(prefix));
        RunOutcome outcome = run(driver);
        ++result.stats.schedulesRun;
        result.stats.choicePoints += driver.points().size();
        result.stats.eventsExecuted += driver.trace().size();

        if (first) {
            result.reference = outcome;
            first = false;
        } else if (!outcome.violation && !result.reference.violation &&
                   outcome.digest != result.reference.digest) {
            outcome.violation = true;
            outcome.kind = "divergence";
            outcome.detail = format(
                "final state digest %016llx differs from the FIFO "
                "reference %016llx (results must be schedule-invariant)",
                static_cast<unsigned long long>(outcome.digest),
                static_cast<unsigned long long>(
                    result.reference.digest));
        }
        if (outcome.violation) {
            result.violations.push_back(
                Counterexample{driver.chosenSchedule(), outcome});
            if (result.violations.size() >=
                options.maxCounterexamples) {
                result.stats.exhaustive = false;
                break;
            }
        }

        // Expand alternatives at every point this run decided freely
        // (points inside the prefix were prescribed, and are expanded
        // by the run that created the prefix). Each schedule in
        // canonical form is generated exactly once: from the run whose
        // prefix is the schedule minus its trailing [0...0, c] tail.
        const std::size_t prefixLen = driver.prefix().size();
        for (std::size_t point = prefixLen;
             point < driver.points().size(); ++point) {
            if (options.maxDepth != 0 && point >= options.maxDepth) {
                for (std::size_t p = point;
                     p < driver.points().size(); ++p) {
                    result.stats.branchesDeferred +=
                        driver.points()[p].candidates.size() - 1;
                }
                result.stats.exhaustive = false;
                break;
            }
            const ChoicePoint &cp = driver.points()[point];
            for (std::size_t alt = 1; alt < cp.candidates.size();
                 ++alt) {
                if (options.maxBranch != 0 &&
                    alt > options.maxBranch) {
                    result.stats.branchesDeferred +=
                        cp.candidates.size() - alt;
                    result.stats.exhaustive = false;
                    break;
                }
                if (options.por && porPrunable(driver, point, alt)) {
                    ++result.stats.branchesPruned;
                    continue;
                }
                Schedule next;
                next.reserve(point + 1);
                for (std::size_t p = 0; p < point; ++p) {
                    next.push_back(static_cast<Choice>(
                        driver.points()[p].chosen));
                }
                next.push_back(static_cast<Choice>(alt));
                work.push_back(std::move(next));
            }
        }

        if (options.maxSchedules != 0 &&
            result.stats.schedulesRun >= options.maxSchedules &&
            !work.empty()) {
            result.stats.exhaustive = false;
            stopped = true;
        }
    }
    return result;
}

RunOutcome
replay(const RunFn &run, const Schedule &schedule)
{
    ScheduleDriver driver(schedule);
    return run(driver);
}

} // namespace genesys::sim::gmc
