/**
 * @file
 * Lazy coroutine task with symmetric transfer.
 *
 * Task<T> is the unit of concurrency in the simulator: a wavefront, a
 * CPU core loop, an OS worker thread, a memcached client — each is a
 * coroutine returning Task<>. Tasks are lazy (nothing runs until they
 * are awaited or spawned as a root via Spawner) and propagate both
 * values and exceptions to their awaiter.
 */

#ifndef GENESYS_SIM_TASK_HH
#define GENESYS_SIM_TASK_HH

#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

#include "support/logging.hh"

namespace genesys::sim
{

template <typename T = void>
class Task;

namespace detail
{

struct PromiseBase
{
    std::coroutine_handle<> continuation;
    std::exception_ptr error;

    struct FinalAwaiter
    {
        bool await_ready() const noexcept { return false; }

        template <typename Promise>
        std::coroutine_handle<>
        await_suspend(std::coroutine_handle<Promise> h) noexcept
        {
            // Resume whoever co_awaited us; if nobody did (detached
            // completion), park on the noop coroutine.
            auto cont = h.promise().continuation;
            return cont ? cont : std::noop_coroutine();
        }

        void await_resume() const noexcept {}
    };

    std::suspend_always initial_suspend() noexcept { return {}; }
    FinalAwaiter final_suspend() noexcept { return {}; }
    void unhandled_exception() { error = std::current_exception(); }
};

} // namespace detail

/** A lazily-started coroutine producing a T (or void). */
template <typename T>
class [[nodiscard]] Task
{
  public:
    struct promise_type : detail::PromiseBase
    {
        std::optional<T> value;

        Task
        get_return_object()
        {
            return Task(
                std::coroutine_handle<promise_type>::from_promise(*this));
        }

        template <typename U>
        void
        return_value(U &&v)
        {
            value.emplace(std::forward<U>(v));
        }
    };

    using Handle = std::coroutine_handle<promise_type>;

    Task() = default;
    explicit Task(Handle h) : handle_(h) {}
    Task(Task &&other) noexcept
        : handle_(std::exchange(other.handle_, nullptr))
    {}
    Task &
    operator=(Task &&other) noexcept
    {
        if (this != &other) {
            destroy();
            handle_ = std::exchange(other.handle_, nullptr);
        }
        return *this;
    }
    Task(const Task &) = delete;
    Task &operator=(const Task &) = delete;
    ~Task() { destroy(); }

    bool valid() const { return handle_ != nullptr; }

    // Awaiter protocol: `co_await task` starts the task and suspends the
    // awaiter until the task finishes.
    bool await_ready() const noexcept { return !handle_ || handle_.done(); }

    std::coroutine_handle<>
    await_suspend(std::coroutine_handle<> cont) noexcept
    {
        handle_.promise().continuation = cont;
        return handle_;
    }

    T
    await_resume()
    {
        auto &p = handle_.promise();
        if (p.error)
            std::rethrow_exception(p.error);
        GENESYS_ASSERT(p.value.has_value(), "task finished without value");
        return std::move(*p.value);
    }

  private:
    void
    destroy()
    {
        if (handle_) {
            handle_.destroy();
            handle_ = nullptr;
        }
    }

    Handle handle_ = nullptr;
};

/** void specialization. */
template <>
class [[nodiscard]] Task<void>
{
  public:
    struct promise_type : detail::PromiseBase
    {
        Task
        get_return_object()
        {
            return Task(
                std::coroutine_handle<promise_type>::from_promise(*this));
        }

        void return_void() {}
    };

    using Handle = std::coroutine_handle<promise_type>;

    Task() = default;
    explicit Task(Handle h) : handle_(h) {}
    Task(Task &&other) noexcept
        : handle_(std::exchange(other.handle_, nullptr))
    {}
    Task &
    operator=(Task &&other) noexcept
    {
        if (this != &other) {
            destroy();
            handle_ = std::exchange(other.handle_, nullptr);
        }
        return *this;
    }
    Task(const Task &) = delete;
    Task &operator=(const Task &) = delete;
    ~Task() { destroy(); }

    bool valid() const { return handle_ != nullptr; }

    bool await_ready() const noexcept { return !handle_ || handle_.done(); }

    std::coroutine_handle<>
    await_suspend(std::coroutine_handle<> cont) noexcept
    {
        handle_.promise().continuation = cont;
        return handle_;
    }

    void
    await_resume()
    {
        auto &p = handle_.promise();
        if (p.error)
            std::rethrow_exception(p.error);
    }

  private:
    void
    destroy()
    {
        if (handle_) {
            handle_.destroy();
            handle_ = nullptr;
        }
    }

    Handle handle_ = nullptr;
};

} // namespace genesys::sim

#endif // GENESYS_SIM_TASK_HH
