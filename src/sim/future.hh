/**
 * @file
 * Single-assignment awaitable future/promise pair.
 *
 * Used wherever one simulated agent produces a value that another agent
 * waits on: syscall completion, interrupt acknowledgment, a memcached
 * reply. Multiple coroutines may await the same Future; all are woken
 * when the value (or an error) is set.
 */

#ifndef GENESYS_SIM_FUTURE_HH
#define GENESYS_SIM_FUTURE_HH

#include <coroutine>
#include <exception>
#include <memory>
#include <optional>
#include <vector>

#include "sim/event_queue.hh"
#include "support/logging.hh"

namespace genesys::sim
{

template <typename T>
class Future;

namespace detail
{

template <typename T>
struct FutureState
{
    explicit FutureState(EventQueue &eq_ref) : eq(eq_ref) {}

    EventQueue &eq;
    std::optional<T> value;
    std::exception_ptr error;
    std::vector<std::coroutine_handle<>> waiters;

    bool ready() const { return value.has_value() || error != nullptr; }

    void
    wakeAll()
    {
        for (auto h : waiters)
            eq.scheduleIn(0, [h] { h.resume(); });
        waiters.clear();
    }
};

} // namespace detail

/** Producer side. Movable and copyable (shared state). */
template <typename T>
class Promise
{
  public:
    explicit Promise(EventQueue &eq)
        : state_(std::make_shared<detail::FutureState<T>>(eq))
    {}

    void
    set(T value)
    {
        GENESYS_ASSERT(!state_->ready(), "promise already satisfied");
        state_->value.emplace(std::move(value));
        state_->wakeAll();
    }

    void
    setError(std::exception_ptr e)
    {
        GENESYS_ASSERT(!state_->ready(), "promise already satisfied");
        state_->error = e;
        state_->wakeAll();
    }

    bool satisfied() const { return state_->ready(); }

    Future<T> future() const { return Future<T>(state_); }

  private:
    std::shared_ptr<detail::FutureState<T>> state_;
};

/** Consumer side; co_await yields the value (or rethrows). */
template <typename T>
class Future
{
  public:
    Future() = default;
    explicit Future(std::shared_ptr<detail::FutureState<T>> s)
        : state_(std::move(s))
    {}

    bool valid() const { return state_ != nullptr; }
    bool ready() const { return state_ && state_->ready(); }

    bool await_ready() const { return ready(); }

    void
    await_suspend(std::coroutine_handle<> h)
    {
        state_->waiters.push_back(h);
    }

    T
    await_resume()
    {
        if (state_->error)
            std::rethrow_exception(state_->error);
        return *state_->value;
    }

    /** Peek at the value without consuming; requires ready(). */
    const T &
    peek() const
    {
        GENESYS_ASSERT(ready() && !state_->error, "future not ready");
        return *state_->value;
    }

  private:
    std::shared_ptr<detail::FutureState<T>> state_;
};

} // namespace genesys::sim

#endif // GENESYS_SIM_FUTURE_HH
