/**
 * @file
 * Simulation context: event queue + root-task spawner + RNG + stats.
 *
 * A Sim owns everything a model needs to run. Root tasks (spawned via
 * spawn()) execute concurrently over the shared event queue; run()
 * drives the queue and rethrows the first exception any root task
 * raised, so test failures inside coroutines surface normally.
 */

#ifndef GENESYS_SIM_SIM_HH
#define GENESYS_SIM_SIM_HH

#include <cstddef>
#include <exception>
#include <string>

#include "sim/event_queue.hh"
#include "sim/sync.hh"
#include "sim/task.hh"
#include "support/random.hh"
#include "support/stats.hh"
#include "support/types.hh"

namespace genesys::sim
{

class Sim
{
  public:
    explicit Sim(std::uint64_t seed = 1) : random_(seed) {}

    EventQueue &events() { return eq_; }
    Tick now() const { return eq_.now(); }
    Random &random() { return random_; }
    stats::Registry &statsRegistry() { return statsRegistry_; }

    /** Awaitable fixed delay. */
    Delay delay(Tick ticks) { return Delay(eq_, ticks); }

    /**
     * Launch @p task as a root coroutine. It starts at the current tick
     * and runs to completion as events fire. An escaping exception is
     * captured and rethrown from run()/runFor().
     */
    void spawn(Task<> task);

    /** Number of spawned root tasks that have not yet finished. */
    std::size_t liveTasks() const { return liveTasks_; }

    /**
     * Run until the event queue drains or @p limit is reached. When
     * @p max_events is non-zero, additionally stop after that many
     * events (model-checking budget for schedules that never quiesce).
     * Rethrows the first exception any root task raised either way.
     * @return final simulated time.
     */
    Tick run(Tick limit = kMaxTick, std::uint64_t max_events = 0);

    /** Run for a further @p duration ticks. */
    Tick runFor(Tick duration) { return run(eq_.now() + duration); }

  private:
    // Eager, self-destroying wrapper coroutine that owns a root Task.
    struct RootTask
    {
        struct promise_type
        {
            RootTask get_return_object() { return {}; }
            std::suspend_never initial_suspend() noexcept { return {}; }
            std::suspend_never final_suspend() noexcept { return {}; }
            void return_void() {}
            void unhandled_exception() { std::terminate(); }
        };
    };

    RootTask runRoot(Task<> task);

    EventQueue eq_;
    Random random_;
    stats::Registry statsRegistry_;
    std::size_t liveTasks_ = 0;
    std::exception_ptr firstError_;
};

} // namespace genesys::sim

#endif // GENESYS_SIM_SIM_HH
