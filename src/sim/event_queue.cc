/**
 * @file
 * EventQueue implementation.
 */

#include "event_queue.hh"

#include <utility>

#include "support/logging.hh"

namespace genesys::sim
{

EventId
EventQueue::schedule(Tick when, Callback cb)
{
    if (when < now_)
        panic("event scheduled in the past (when=%llu now=%llu)",
              static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(now_));
    const EventId id = nextId_++;
    queue_.push(Event{when, nextSeq_++, id, std::move(cb)});
    pending_.insert(id);
    return id;
}

bool
EventQueue::deschedule(EventId id)
{
    // Only ids that are still pending can be cancelled; already-fired
    // or already-cancelled ids are a no-op. The queue entry remains as
    // a tombstone and is dropped when popped.
    return pending_.erase(id) > 0;
}

bool
EventQueue::runOne()
{
    while (!queue_.empty()) {
        Event ev = std::move(const_cast<Event &>(queue_.top()));
        queue_.pop();
        if (pending_.erase(ev.id) == 0)
            continue; // tombstone of a cancelled event
        now_ = ev.when;
        ++executed_;
        ev.cb();
        return true;
    }
    return false;
}

Tick
EventQueue::run(Tick limit)
{
    while (!queue_.empty()) {
        // Skip tombstones without advancing time.
        if (!pending_.contains(queue_.top().id)) {
            queue_.pop();
            continue;
        }
        if (queue_.top().when > limit) {
            now_ = limit;
            return now_;
        }
        runOne();
    }
    return now_;
}

} // namespace genesys::sim
