/**
 * @file
 * EventQueue implementation.
 */

#include "event_queue.hh"

#include <utility>

#include "support/logging.hh"

namespace genesys::sim
{

EventId
EventQueue::schedule(Tick when, Callback cb)
{
    if (when < now_)
        panic("event scheduled in the past (when=%llu now=%llu)",
              static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(now_));
    const EventId id = nextId_++;
    queue_.push(Event{when, nextSeq_++, id, std::move(cb)});
    pending_.insert(id);
    return id;
}

bool
EventQueue::deschedule(EventId id)
{
    // Only ids that are still pending can be cancelled; already-fired
    // or already-cancelled ids are a no-op. The queue entry remains as
    // a tombstone and is dropped when popped.
    return pending_.erase(id) > 0;
}

bool
EventQueue::runOne()
{
    if (tieBreaker_ != nullptr)
        return runOneWithPolicy();
    while (!queue_.empty()) {
        Event ev = std::move(const_cast<Event &>(queue_.top()));
        queue_.pop();
        if (pending_.erase(ev.id) == 0)
            continue; // tombstone of a cancelled event
        now_ = ev.when;
        ++executed_;
        ev.cb();
        return true;
    }
    return false;
}

bool
EventQueue::runOneWithPolicy()
{
    // Gather every live event tied at the earliest tick. Pops arrive in
    // (when, seq) order, so `tied` is FIFO-ordered by construction.
    std::vector<Event> tied;
    while (!queue_.empty()) {
        Event ev = std::move(const_cast<Event &>(queue_.top()));
        queue_.pop();
        if (!pending_.contains(ev.id))
            continue; // tombstone of a cancelled event
        if (!tied.empty() && ev.when != tied.front().when) {
            queue_.push(std::move(ev)); // first strictly-later event
            break;
        }
        tied.push_back(std::move(ev));
    }
    if (tied.empty())
        return false;

    std::size_t choice = 0;
    if (tied.size() > 1) {
        std::vector<TieBreakCandidate> candidates;
        candidates.reserve(tied.size());
        for (const Event &ev : tied)
            candidates.push_back(TieBreakCandidate{ev.id, ev.seq});
        choice = tieBreaker_->pick(tied.front().when, candidates);
        GENESYS_ASSERT(choice < tied.size(),
                       "tie-break policy chose %zu of %zu candidates",
                       choice, tied.size());
    }

    // Re-queue the losers with their original seq numbers (their FIFO
    // rank among themselves is preserved) *before* running the winner,
    // so the callback can deschedule them normally.
    for (std::size_t i = 0; i < tied.size(); ++i) {
        if (i != choice)
            queue_.push(std::move(tied[i]));
    }
    Event chosen = std::move(tied[choice]);
    pending_.erase(chosen.id);
    now_ = chosen.when;
    ++executed_;
    chosen.cb();
    tieBreaker_->onExecute(chosen.id, chosen.when);
    return true;
}

Tick
EventQueue::run(Tick limit, std::uint64_t max_events)
{
    std::uint64_t ran = 0;
    while (!queue_.empty()) {
        // Skip tombstones without advancing time.
        if (!pending_.contains(queue_.top().id)) {
            queue_.pop();
            continue;
        }
        if (queue_.top().when > limit) {
            now_ = limit;
            return now_;
        }
        if (max_events != 0 && ran >= max_events)
            return now_;
        runOne();
        ++ran;
    }
    return now_;
}

} // namespace genesys::sim
