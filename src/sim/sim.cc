/**
 * @file
 * Sim implementation.
 */

#include "sim.hh"

#include <utility>

#include "support/logging.hh"

namespace genesys::sim
{

Sim::RootTask
Sim::runRoot(Task<> task)
{
    ++liveTasks_;
    try {
        co_await std::move(task);
    } catch (...) {
        if (!firstError_)
            firstError_ = std::current_exception();
    }
    --liveTasks_;
}

void
Sim::spawn(Task<> task)
{
    // The RootTask coroutine is eager: it runs the wrapped task up to
    // its first suspension immediately, then continues via the queue.
    runRoot(std::move(task));
}

Tick
Sim::run(Tick limit, std::uint64_t max_events)
{
    const Tick end = eq_.run(limit, max_events);
    if (firstError_) {
        auto e = std::exchange(firstError_, nullptr);
        std::rethrow_exception(e);
    }
    return end;
}

} // namespace genesys::sim
