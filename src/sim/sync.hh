/**
 * @file
 * Awaitable synchronization primitives over the EventQueue.
 *
 * All wake-ups are delivered *through the event queue* (never by direct
 * resumption from inside the notifier), which bounds native stack depth
 * and gives deterministic FIFO wake order.
 */

#ifndef GENESYS_SIM_SYNC_HH
#define GENESYS_SIM_SYNC_HH

#include <coroutine>
#include <cstddef>
#include <deque>
#include <vector>

#include "sim/event_queue.hh"
#include "support/logging.hh"
#include "support/types.hh"

namespace genesys::sim
{

/** Suspend the awaiting coroutine for a fixed number of ticks. */
class Delay
{
  public:
    Delay(EventQueue &eq, Tick delay) : eq_(eq), delay_(delay) {}

    bool await_ready() const noexcept { return false; }

    void
    await_suspend(std::coroutine_handle<> h)
    {
        eq_.scheduleIn(delay_, [h] { h.resume(); });
    }

    void await_resume() const noexcept {}

  private:
    EventQueue &eq_;
    Tick delay_;
};

/**
 * FIFO wait queue: coroutines suspend on wait() and are woken by
 * notifyOne()/notifyAll() in arrival order.
 */
class WaitQueue
{
  public:
    explicit WaitQueue(EventQueue &eq) : eq_(eq) {}

    class Awaiter
    {
      public:
        explicit Awaiter(WaitQueue &q) : q_(q) {}
        bool await_ready() const noexcept { return false; }
        void
        await_suspend(std::coroutine_handle<> h)
        {
            q_.waiters_.push_back(h);
        }
        void await_resume() const noexcept {}

      private:
        WaitQueue &q_;
    };

    /** Unconditionally suspend until notified. */
    Awaiter wait() { return Awaiter(*this); }

    /** Wake the oldest waiter after @p latency ticks. */
    void
    notifyOne(Tick latency = 0)
    {
        if (waiters_.empty())
            return;
        auto h = waiters_.front();
        waiters_.pop_front();
        eq_.scheduleIn(latency, [h] { h.resume(); });
    }

    /** Wake every current waiter after @p latency ticks. */
    void
    notifyAll(Tick latency = 0)
    {
        while (!waiters_.empty())
            notifyOne(latency);
    }

    std::size_t waiting() const { return waiters_.size(); }

  private:
    EventQueue &eq_;
    std::deque<std::coroutine_handle<>> waiters_;
};

/**
 * Counting semaphore. release() hands the permit directly to the oldest
 * waiter (no lost wake-ups, no thundering herd).
 */
class Semaphore
{
  public:
    Semaphore(EventQueue &eq, std::size_t initial)
        : eq_(eq), count_(initial)
    {}

    class Acquire
    {
      public:
        explicit Acquire(Semaphore &s) : s_(s) {}
        bool
        await_ready()
        {
            if (s_.count_ > 0) {
                --s_.count_;
                return true;
            }
            return false;
        }
        void
        await_suspend(std::coroutine_handle<> h)
        {
            s_.waiters_.push_back(h);
        }
        void await_resume() const noexcept {}

      private:
        Semaphore &s_;
    };

    /** Await one permit. */
    Acquire acquire() { return Acquire(*this); }

    /** Non-blocking attempt. */
    bool
    tryAcquire()
    {
        if (count_ == 0)
            return false;
        --count_;
        return true;
    }

    /** Return one permit (or transfer it to a waiter). */
    void
    release()
    {
        if (!waiters_.empty()) {
            auto h = waiters_.front();
            waiters_.pop_front();
            eq_.scheduleIn(0, [h] { h.resume(); });
        } else {
            ++count_;
        }
    }

    std::size_t available() const { return count_; }
    std::size_t waiting() const { return waiters_.size(); }

  private:
    EventQueue &eq_;
    std::size_t count_;
    std::deque<std::coroutine_handle<>> waiters_;
};

/**
 * Reusable rendezvous barrier for a fixed party count, used to model
 * GPU work-group scope barriers. The last arrival releases everyone and
 * resets the barrier for the next round.
 */
class Barrier
{
  public:
    Barrier(EventQueue &eq, std::size_t parties)
        : eq_(eq), parties_(parties)
    {
        GENESYS_ASSERT(parties > 0, "barrier needs at least one party");
    }

    class ArriveAndWait
    {
      public:
        explicit ArriveAndWait(Barrier &b) : b_(b) {}
        bool
        await_ready()
        {
            if (b_.arrived_ + 1 == b_.parties_) {
                // Last arrival: wake the others, do not suspend.
                b_.arrived_ = 0;
                for (auto h : b_.waiters_)
                    b_.eq_.scheduleIn(0, [h] { h.resume(); });
                b_.waiters_.clear();
                return true;
            }
            return false;
        }
        void
        await_suspend(std::coroutine_handle<> h)
        {
            ++b_.arrived_;
            b_.waiters_.push_back(h);
        }
        void await_resume() const noexcept {}

      private:
        Barrier &b_;
    };

    /** Await until all parties arrive. */
    ArriveAndWait arriveAndWait() { return ArriveAndWait(*this); }

    std::size_t parties() const { return parties_; }
    std::size_t arrived() const { return arrived_; }

  private:
    EventQueue &eq_;
    std::size_t parties_;
    std::size_t arrived_ = 0;
    std::vector<std::coroutine_handle<>> waiters_;
};

} // namespace genesys::sim

#endif // GENESYS_SIM_SYNC_HH
