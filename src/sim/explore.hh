/**
 * @file
 * gmc schedule-space explorer (DESIGN.md §11).
 *
 * A stateless model checker in the CHESS/Verisoft style, layered on the
 * EventQueue's pluggable tie-break policy: a *schedule* is the sequence
 * of choices taken at the points where two or more events were runnable
 * at the same tick. Re-executing the (deterministic) scenario under a
 * prescribed choice prefix replays the run exactly up to the end of the
 * prefix; the explorer enumerates prefixes depth-first so that every
 * distinct same-tick commutation of the scenario is executed exactly
 * once, either exhaustively or pruned by footprint-based partial-order
 * reduction and bounded by depth/branch/schedule budgets.
 *
 * The explorer is scenario-agnostic: callers provide a RunFn that
 * builds a fresh world, installs the given ScheduleDriver as the
 * tie-break policy, runs to quiescence (or budget), applies its
 * invariant oracles, and returns a RunOutcome. src/core/gmc.cc binds
 * this to the GENESYS slot protocol.
 */

#ifndef GENESYS_SIM_EXPLORE_HH
#define GENESYS_SIM_EXPLORE_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/event_queue.hh"
#include "support/types.hh"

namespace genesys::sim::gmc
{

/** Index into a choice point's FIFO-ordered candidate list. */
using Choice = std::uint32_t;

/**
 * A schedule: choice i is taken at the i-th tie point of the run; all
 * points beyond the vector take choice 0 (FIFO). The canonical form
 * has no trailing zeros, so the empty schedule is the FIFO run.
 */
using Schedule = std::vector<Choice>;

/** Compact replay string: "2.0.1" (dot-separated); "fifo" if empty. */
std::string renderSchedule(const Schedule &schedule);

/**
 * Parse renderSchedule() output. @return false on malformed input
 * (anything but dot-separated decimal numbers, "fifo", or "").
 */
bool parseSchedule(const std::string &text, Schedule &out);

/** One tie point observed during a run. */
struct ChoicePoint
{
    /// Index in the execution trace of the event chosen here.
    std::uint64_t execIndex = 0;
    /// Runnable events at this point, FIFO (seq) order.
    std::vector<EventId> candidates;
    /// Index of the candidate that was run.
    std::size_t chosen = 0;
};

/** One executed event and the protocol footprint it touched. */
struct ExecRecord
{
    EventId id = 0;
    Tick when = 0;
    std::vector<std::uint64_t> footprint; // sorted gmc::ProbeKeys
};

/**
 * The tie-break policy a checked run installs: consumes a prescribed
 * choice prefix (FIFO beyond it) while recording every choice point
 * and, via the gmc footprint probe, every executed event's footprint.
 */
class ScheduleDriver : public TieBreakPolicy
{
  public:
    explicit ScheduleDriver(Schedule prefix)
        : prefix_(std::move(prefix))
    {}

    std::size_t pick(Tick now,
                     const std::vector<TieBreakCandidate> &candidates)
        override;
    void onExecute(EventId id, Tick when) override;

    const std::vector<ChoicePoint> &points() const { return points_; }
    const std::vector<ExecRecord> &trace() const { return trace_; }
    const Schedule &prefix() const { return prefix_; }

    /** Choices actually taken, trimmed to canonical form. */
    Schedule chosenSchedule() const;

  private:
    Schedule prefix_;
    std::vector<ChoicePoint> points_;
    std::vector<ExecRecord> trace_;
};

/** What one scheduled execution of the scenario produced. */
struct RunOutcome
{
    bool violation = false;
    std::string kind;   ///< "panic", "gsan", "stuck", "quiescence", ...
    std::string detail; ///< first report / exception text
    /// Scenario-defined fingerprint of the schedule-invariant final
    /// state (results, payload bytes, counters). Compared against the
    /// FIFO reference run by the equivalence oracle.
    std::uint64_t digest = 0;
    Tick endTick = 0;
    std::uint64_t events = 0;
};

/**
 * Execute the scenario once under @p driver's schedule. The callee
 * must build a fresh deterministic world, install the driver via
 * EventQueue::setTieBreaker(), run, and report the outcome.
 */
using RunFn = std::function<RunOutcome(ScheduleDriver &driver)>;

struct ExploreOptions
{
    /// Footprint-based partial-order reduction: skip an alternative
    /// when every event executed from its choice point until its own
    /// execution has a disjoint footprint.
    ///
    /// Off by default because it is a *heuristic*, not a sound DPOR:
    /// the commutation check only covers the executed window of this
    /// run, while the pruned subtree can branch differently deeper in
    /// (a bug may need several dependent flips that only become
    /// runnable after the first). Exhaustive exploration found the
    /// doorbell-before-publish mutant in 37 schedules; POR pruned the
    /// path to it. Use POR for bounded big-config sweeps where
    /// exhaustive enumeration is hopeless anyway, never to certify a
    /// config clean.
    bool por = false;
    /// Stop after this many executed schedules (0 = unlimited).
    std::uint64_t maxSchedules = 0;
    /// Expand alternatives only at the first maxDepth choice points of
    /// each run (0 = unlimited).
    std::size_t maxDepth = 0;
    /// Expand at most this many non-FIFO alternatives per choice point
    /// (0 = all).
    std::size_t maxBranch = 0;
    /// Stop after recording this many violating schedules.
    std::size_t maxCounterexamples = 8;
};

struct ExploreStats
{
    std::uint64_t schedulesRun = 0;
    std::uint64_t choicePoints = 0;     ///< total across all runs
    std::uint64_t branchesPruned = 0;   ///< POR-eliminated alternatives
    std::uint64_t branchesDeferred = 0; ///< budget-skipped alternatives
    std::uint64_t eventsExecuted = 0;   ///< total across all runs
    /// True iff the schedule space was fully covered: nothing was
    /// budget-skipped and exploration was not stopped early. POR
    /// pruning does NOT clear this flag, so with options.por a true
    /// value only means "exhaustive up to the heuristic" — see
    /// ExploreOptions::por.
    bool exhaustive = true;
};

struct Counterexample
{
    Schedule schedule;
    RunOutcome outcome;
};

struct ExploreResult
{
    ExploreStats stats;
    std::vector<Counterexample> violations;
    RunOutcome reference; ///< outcome of the FIFO (empty) schedule
};

/**
 * Enumerate the scenario's schedule space. The first run executes the
 * FIFO schedule and becomes the equivalence-oracle reference; every
 * later non-violating run whose digest differs is itself reported as a
 * "divergence" violation.
 */
ExploreResult explore(const RunFn &run, const ExploreOptions &options);

/** Re-execute one schedule (counterexample replay). */
RunOutcome replay(const RunFn &run, const Schedule &schedule);

} // namespace genesys::sim::gmc

#endif // GENESYS_SIM_EXPLORE_HH
