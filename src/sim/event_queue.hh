/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single EventQueue drives the whole simulated machine: GPU wavefronts,
 * CPU cores, OS worker threads, interrupt delivery, NIC peers and the
 * memory system all interact exclusively by scheduling events. Events at
 * the same tick execute in FIFO scheduling order (a monotone sequence
 * number breaks ties), which makes every run bit-for-bit deterministic.
 */

#ifndef GENESYS_SIM_EVENT_QUEUE_HH
#define GENESYS_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "support/types.hh"

namespace genesys::sim
{

/** Handle for cancelling a scheduled event. */
using EventId = std::uint64_t;

class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /**
     * Schedule @p cb to run at absolute tick @p when.
     * Scheduling in the past is a simulator bug.
     * @return an id usable with deschedule().
     */
    EventId schedule(Tick when, Callback cb);

    /** Schedule @p cb to run @p delay ticks from now. */
    EventId scheduleIn(Tick delay, Callback cb)
    {
        return schedule(now_ + delay, std::move(cb));
    }

    /**
     * Cancel a pending event. Cancelling an already-fired or unknown
     * event is a no-op and returns false.
     */
    bool deschedule(EventId id);

    /** True when no runnable events remain. */
    bool empty() const { return pending_.empty(); }

    std::size_t pendingEvents() const { return pending_.size(); }

    /**
     * Execute the next event (advancing time to it).
     * @return false if the queue was empty.
     */
    bool runOne();

    /**
     * Run until the queue drains or the next event would fire past
     * @p limit. Time is left at the tick of the last executed event
     * (or advanced to @p limit if events remain beyond it).
     * @return the final value of now().
     */
    Tick run(Tick limit = kMaxTick);

    /** Total events executed so far (for stats / leak checks). */
    std::uint64_t executedEvents() const { return executed_; }

  private:
    struct Event
    {
        Tick when;
        std::uint64_t seq;
        EventId id;
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
    EventId nextId_ = 1;
    std::uint64_t executed_ = 0;
    std::priority_queue<Event, std::vector<Event>, Later> queue_;
    /// Ids scheduled but neither executed nor cancelled. Cancelled
    /// entries stay in queue_ as tombstones until popped.
    std::unordered_set<EventId> pending_;
};

} // namespace genesys::sim

#endif // GENESYS_SIM_EVENT_QUEUE_HH
