/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single EventQueue drives the whole simulated machine: GPU wavefronts,
 * CPU cores, OS worker threads, interrupt delivery, NIC peers and the
 * memory system all interact exclusively by scheduling events. Events at
 * the same tick execute in FIFO scheduling order (a monotone sequence
 * number breaks ties), which makes every run bit-for-bit deterministic.
 */

#ifndef GENESYS_SIM_EVENT_QUEUE_HH
#define GENESYS_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "support/types.hh"

namespace genesys::sim
{

/** Handle for cancelling a scheduled event. */
using EventId = std::uint64_t;

/**
 * One runnable event offered to a TieBreakPolicy. @p seq is the
 * monotone scheduling sequence number: candidates are always presented
 * in seq-ascending (FIFO) order, so index 0 is what the default policy
 * would run.
 */
struct TieBreakCandidate
{
    EventId id;
    std::uint64_t seq;
};

/**
 * Pluggable same-tick tie-break policy (the gmc model checker's hook
 * into the engine). When installed, every point where two or more live
 * events are runnable at the same tick becomes an explicit choice:
 * pick() selects which one executes next. With no policy installed the
 * queue keeps its original FIFO order on the original code path, so
 * default-schedule runs stay bit-identical.
 */
class TieBreakPolicy
{
  public:
    virtual ~TieBreakPolicy() = default;

    /**
     * Choose which of @p candidates (>= 2, FIFO order) runs next at
     * tick @p now. Return an index into @p candidates.
     */
    virtual std::size_t pick(Tick now,
                             const std::vector<TieBreakCandidate> &candidates)
        = 0;

    /**
     * Called after every event callback finishes (including unique,
     * non-tied events). Lets a schedule recorder attribute side effects
     * (e.g. footprint probes) to the event that produced them.
     */
    virtual void onExecute(EventId id, Tick when) { (void)id; (void)when; }
};

class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /**
     * Schedule @p cb to run at absolute tick @p when.
     * Scheduling in the past is a simulator bug.
     * @return an id usable with deschedule().
     */
    EventId schedule(Tick when, Callback cb);

    /** Schedule @p cb to run @p delay ticks from now. */
    EventId scheduleIn(Tick delay, Callback cb)
    {
        return schedule(now_ + delay, std::move(cb));
    }

    /**
     * Cancel a pending event. Cancelling an already-fired or unknown
     * event is a no-op and returns false.
     */
    bool deschedule(EventId id);

    /** True when no runnable events remain. */
    bool empty() const { return pending_.empty(); }

    std::size_t pendingEvents() const { return pending_.size(); }

    /**
     * Execute the next event (advancing time to it).
     * @return false if the queue was empty.
     */
    bool runOne();

    /**
     * Run until the queue drains or the next event would fire past
     * @p limit. Time is left at the tick of the last executed event
     * (or advanced to @p limit if events remain beyond it). When
     * @p max_events is non-zero, stop after executing that many events
     * in this call even if runnable work remains (model-checking budget
     * against schedules that never quiesce).
     * @return the final value of now().
     */
    Tick run(Tick limit = kMaxTick, std::uint64_t max_events = 0);

    /** Total events executed so far (for stats / leak checks). */
    std::uint64_t executedEvents() const { return executed_; }

    /**
     * Install (or clear, with nullptr) a same-tick tie-break policy.
     * Non-owning; the policy must outlive the queue or be cleared
     * first. Null keeps the original FIFO fast path.
     */
    void setTieBreaker(TieBreakPolicy *policy) { tieBreaker_ = policy; }

    TieBreakPolicy *tieBreaker() const { return tieBreaker_; }

  private:
    bool runOneWithPolicy();
    struct Event
    {
        Tick when;
        std::uint64_t seq;
        EventId id;
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
    EventId nextId_ = 1;
    std::uint64_t executed_ = 0;
    std::priority_queue<Event, std::vector<Event>, Later> queue_;
    /// Ids scheduled but neither executed nor cancelled. Cancelled
    /// entries stay in queue_ as tombstones until popped.
    std::unordered_set<EventId> pending_;
    TieBreakPolicy *tieBreaker_ = nullptr;
};

} // namespace genesys::sim

#endif // GENESYS_SIM_EVENT_QUEUE_HH
