/**
 * @file
 * signal-search map-reduce (paper Section VIII-B, Figure 12).
 *
 * Phase 1 is a massively parallel lookup over a data array — a good
 * fit for the GPU. Phase 2 computes SHA-512 checksums over the blocks
 * phase 1 selects — a good fit for the CPU. Without GPU signal
 * support the phases serialize: the CPU must wait for the whole kernel
 * before hashing anything. With GENESYS, each work-group emits
 * rt_sigqueueinfo carrying its block id (through siginfo.si_value) the
 * moment its share of the search finishes, and the CPU starts hashing
 * that block immediately, overlapping the phases (~14% in the paper).
 */

#ifndef GENESYS_WORKLOADS_SIGNAL_SEARCH_HH
#define GENESYS_WORKLOADS_SIGNAL_SEARCH_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/system.hh"
#include "workloads/sha512.hh"

namespace genesys::workloads
{

struct SignalSearchConfig
{
    std::uint32_t numBlocks = 512;
    std::uint32_t blockBytes = 64 * 1024;
    /// Fraction of blocks that contain a needle (get selected).
    double selectFraction = 0.10;
    bool useSignals = true; ///< false = serialized baseline
    /// Phase-1 lookup intensity: each block answers this many probes
    /// into its index (binary-search style), shared across the
    /// work-group's items.
    std::uint64_t lookupQueriesPerBlock = 1'000'000;
    std::uint32_t probesPerQuery = 17;
    std::uint32_t cyclesPerProbe = 7;
    std::uint32_t wgSize = 64;
    /// CPU SHA-512 rate (with SHA extensions), bytes/second.
    double cpuShaBytesPerSec = 1.4e9;
};

struct SignalSearchResult
{
    Tick elapsed = 0;
    std::uint32_t blocksSelected = 0;
    std::uint32_t blocksHashed = 0;
    bool correct = false; ///< digests match the reference
    std::vector<std::string> digests; ///< hex digests, by block order
};

SignalSearchResult runSignalSearch(core::System &sys,
                                   const SignalSearchConfig &config);

} // namespace genesys::workloads

#endif // GENESYS_WORKLOADS_SIGNAL_SEARCH_HH
